# Warm-restart test of the ArtifactCache disk tier, run as a ctest
# entry:
#
#   cmake -DDRIVER_BIN=... -DCACHECTL_BIN=... -DOUT_DIR=...
#         -P warm_restart.cmake
#
# Runs the warm_restart fixture twice against the same *fresh*
# UCX_CACHE_DIR — two separate processes, so the second run's memory
# tier starts empty — and asserts the disk tier's contract:
#
#   1. run 1 populated the store (disk_writes > 0);
#   2. run 2 recomputed zero synthesis passes (pass_runs=0) and took
#      artifacts from disk (disk_hits > 0, disk_corrupt = 0);
#   3. both runs' stdout is byte-identical — a disk hit feeds the
#      pipeline exactly the bytes a recompute would;
#   4. ucx_cachectl can ls/stat/verify the store run 1 wrote, and gc
#      down to an empty store.

foreach(var DRIVER_BIN CACHECTL_BIN OUT_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "warm_restart.cmake needs -D${var}=...")
    endif()
endforeach()

set(cache_dir "${OUT_DIR}/store")
file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${cache_dir}")

function(run_driver label)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env
                "UCX_CACHE_DIR=${cache_dir}"
                "${DRIVER_BIN}"
                --stats "${OUT_DIR}/stats_${label}.txt"
        OUTPUT_FILE "${OUT_DIR}/stdout_${label}.txt"
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "warm_restart run ${label} exited with ${rc}")
    endif()
endfunction()

# "name=value" stats file -> stat_<name> variables in the caller.
function(read_stats label)
    file(STRINGS "${OUT_DIR}/stats_${label}.txt" lines)
    foreach(line IN LISTS lines)
        if(line MATCHES "^([a-z_]+)=([0-9]+)$")
            set(stat_${CMAKE_MATCH_1} "${CMAKE_MATCH_2}"
                PARENT_SCOPE)
        endif()
    endforeach()
endfunction()

run_driver(cold)
run_driver(warm)

read_stats(cold)
if(stat_pass_runs EQUAL 0)
    message(FATAL_ERROR "cold run recomputed no passes — the "
                        "fixture exercised nothing")
endif()
if(stat_disk_writes EQUAL 0)
    message(FATAL_ERROR "cold run wrote nothing to the disk tier")
endif()

read_stats(warm)
if(NOT stat_pass_runs EQUAL 0)
    message(FATAL_ERROR
            "warm restart recomputed ${stat_pass_runs} synthesis "
            "passes; every artifact should have come from disk")
endif()
if(stat_disk_hits EQUAL 0)
    message(FATAL_ERROR "warm restart had no disk hits")
endif()
if(NOT stat_disk_corrupt EQUAL 0)
    message(FATAL_ERROR
            "warm restart found ${stat_disk_corrupt} corrupt "
            "entries in a store it just wrote")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/stdout_cold.txt"
            "${OUT_DIR}/stdout_warm.txt"
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
            "cold and warm stdout differ — disk hits changed "
            "observable output")
endif()

# ---- ucx_cachectl over the populated store ----------------------

execute_process(
    COMMAND "${CACHECTL_BIN}" --dir "${cache_dir}" verify
    OUTPUT_VARIABLE verify_out
    RESULT_VARIABLE verify_rc)
if(NOT verify_rc EQUAL 0)
    message(FATAL_ERROR
            "ucx_cachectl verify failed on a freshly written "
            "store:\n${verify_out}")
endif()
if(NOT verify_out MATCHES "0 bad")
    message(FATAL_ERROR
            "ucx_cachectl verify reported bad entries:\n"
            "${verify_out}")
endif()

execute_process(
    COMMAND "${CACHECTL_BIN}" --dir "${cache_dir}" ls
    OUTPUT_VARIABLE ls_out
    RESULT_VARIABLE ls_rc)
if(NOT ls_rc EQUAL 0 OR NOT ls_out MATCHES "Netlist")
    message(FATAL_ERROR
            "ucx_cachectl ls did not list the expected artifacts:\n"
            "${ls_out}")
endif()
if(NOT ls_out MATCHES "DfaSummary")
    message(FATAL_ERROR
            "ucx_cachectl ls did not list a persisted DfaSummary "
            "artifact:\n${ls_out}")
endif()

execute_process(
    COMMAND "${CACHECTL_BIN}" --dir "${cache_dir}" stat
    OUTPUT_VARIABLE stat_out
    RESULT_VARIABLE stat_rc)
if(NOT stat_rc EQUAL 0 OR NOT stat_out MATCHES "bad:      0")
    message(FATAL_ERROR
            "ucx_cachectl stat failed or found bad entries:\n"
            "${stat_out}")
endif()

execute_process(
    COMMAND "${CACHECTL_BIN}" --dir "${cache_dir}" gc --max-bytes 0
    OUTPUT_VARIABLE gc_out
    RESULT_VARIABLE gc_rc)
if(NOT gc_rc EQUAL 0 OR NOT gc_out MATCHES "0 bytes remain")
    message(FATAL_ERROR
            "ucx_cachectl gc --max-bytes 0 did not empty the "
            "store:\n${gc_out}")
endif()

message(STATUS "warm restart OK: pass_runs=0, disk_hits="
               "${stat_disk_hits}, stdout byte-identical")
