/**
 * @file
 * ucx_obsdiff — regression diff over BENCH_<name>.json run reports.
 *
 * Usage:
 *
 *     ucx_obsdiff [options] BASE NEW
 *     ucx_obsdiff [options] --self-check INPUT
 *
 * BASE and NEW are either two report files or two directories; a
 * directory contributes every BENCH_*.json inside it, and reports
 * are paired across the two sides by file name. --self-check diffs
 * INPUT against itself — a pipeline smoke test that must exit 0.
 *
 * Deterministic metrics (counters, histogram counts, span call
 * counts) are compared exactly by default; timing metrics (gauges,
 * span total_ms, wall_ms) are thresholded so run-to-run noise does
 * not trip the gate. Span times gate one-sided: only slowdowns
 * count, and only past both a relative and an absolute floor.
 *
 * Options:
 *
 *     --json                JSON output (schema ucx.obsdiff.v1).
 *     --self-check          Diff one input against itself.
 *     --force               Diff despite schema or settings
 *                           mismatches (otherwise exit 2 — an
 *                           apples-to-oranges comparison is an
 *                           input error, not a regression).
 *     --counter-rel-tol X   Relative tolerance for counters,
 *                           histogram counts, and span call counts
 *                           (default 0 — exact).
 *     --gauge-rel-tol X     Relative tolerance for gauges
 *                           (default 0.5).
 *     --gauge-abs-tol X     Absolute tolerance for gauges
 *                           (default 1e-9).
 *     --span-rel-tol X      One-sided relative slowdown tolerance
 *                           for span/wall times (default 0.5).
 *     --span-min-ms X       Absolute floor below which span/wall
 *                           slowdowns never gate (default 5).
 *
 * Exit status: 0 when no comparison regressed, 1 when at least one
 * did, 2 on usage or input errors (unreadable files, malformed
 * JSON, schema or settings mismatch without --force).
 */

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hh"
#include "util/error.hh"
#include "util/json.hh"

using namespace ucx;

namespace
{

struct CliOptions
{
    std::vector<std::string> inputs;
    bool json = false;
    bool selfCheck = false;
    bool force = false;
    double counterRelTol = 0.0;
    double gaugeRelTol = 0.5;
    double gaugeAbsTol = 1e-9;
    double spanRelTol = 0.5;
    double spanMinMs = 5.0;
};

int
usage(std::ostream &out, int code)
{
    out << "usage: ucx_obsdiff [--json] [--force]\n"
           "                   [--counter-rel-tol X] "
           "[--gauge-rel-tol X]\n"
           "                   [--gauge-abs-tol X] "
           "[--span-rel-tol X]\n"
           "                   [--span-min-ms X] BASE NEW\n"
           "       ucx_obsdiff [options] --self-check INPUT\n";
    return code;
}

double
parseDouble(const std::string &flag, const std::string &text)
{
    try {
        size_t used = 0;
        double v = std::stod(text, &used);
        if (used != text.size() || !std::isfinite(v) || v < 0.0)
            throw UcxError("");
        return v;
    } catch (...) {
        throw UcxError(flag + " needs a non-negative number, got '" +
                       text + "'");
    }
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const std::string &flag) {
            if (i + 1 >= argc)
                throw UcxError(flag + " needs an argument");
            return std::string(argv[++i]);
        };
        if (arg == "--json")
            opts.json = true;
        else if (arg == "--self-check")
            opts.selfCheck = true;
        else if (arg == "--force")
            opts.force = true;
        else if (arg == "--counter-rel-tol")
            opts.counterRelTol = parseDouble(arg, value(arg));
        else if (arg == "--gauge-rel-tol")
            opts.gaugeRelTol = parseDouble(arg, value(arg));
        else if (arg == "--gauge-abs-tol")
            opts.gaugeAbsTol = parseDouble(arg, value(arg));
        else if (arg == "--span-rel-tol")
            opts.spanRelTol = parseDouble(arg, value(arg));
        else if (arg == "--span-min-ms")
            opts.spanMinMs = parseDouble(arg, value(arg));
        else if (arg == "--help" || arg == "-h")
            throw UcxError("help");
        else if (!arg.empty() && arg[0] == '-')
            throw UcxError("unknown option '" + arg + "'");
        else
            opts.inputs.push_back(arg);
    }
    size_t want = opts.selfCheck ? 1 : 2;
    if (opts.inputs.size() != want) {
        throw UcxError(opts.selfCheck
                           ? "--self-check takes exactly one input"
                           : "expected BASE and NEW inputs");
    }
    return opts;
}

/** One comparison finding. */
struct Finding
{
    bool regression = false; ///< Gating (true) vs informational.
    std::string kind;        ///< counter|gauge|histogram|span|wall|report
    std::string name;        ///< Metric name or span path.
    std::string detail;      ///< Human-readable delta.
    double base = 0.0;
    double next = 0.0;
};

/** Diff result for one BASE/NEW report pair. */
struct PairResult
{
    std::string label; ///< Report file name (or bench name).
    std::vector<Finding> findings;

    size_t
    regressions() const
    {
        size_t n = 0;
        for (const Finding &f : findings)
            n += f.regression ? 1 : 0;
        return n;
    }
};

std::string
fmtValue(double v)
{
    std::ostringstream out;
    out << v;
    return out.str();
}

void
addFinding(PairResult &pair, bool regression, std::string kind,
           std::string name, double base, double next,
           std::string note = "")
{
    Finding f;
    f.regression = regression;
    f.kind = std::move(kind);
    f.name = std::move(name);
    f.base = base;
    f.next = next;
    f.detail = fmtValue(base) + " -> " + fmtValue(next);
    if (!note.empty())
        f.detail += " (" + note + ")";
    pair.findings.push_back(std::move(f));
}

json::Value
loadReport(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw UcxError("cannot read '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return json::Value::parse(text.str());
    } catch (const UcxError &e) {
        throw UcxError(path + ": " + e.what());
    }
}

/**
 * Guard against apples-to-oranges diffs: both reports must carry a
 * known schema and identical settings (thread count, cache state).
 * Returns findings describing the mismatches; with --force they
 * demote to informational notes instead of input errors.
 */
std::vector<std::string>
compatibilityErrors(const json::Value &base, const json::Value &next)
{
    std::vector<std::string> errors;
    auto schemaOf = [](const json::Value &v) {
        const json::Value *s = v.find("schema");
        return s && s->isString() ? s->asString() : std::string();
    };
    std::string bs = schemaOf(base);
    std::string ns = schemaOf(next);
    for (const std::string &s : {bs, ns}) {
        if (s != "ucx.bench.v1" && s != "ucx.bench.v2")
            errors.push_back("unknown report schema '" + s + "'");
    }
    if (bs != ns)
        errors.push_back("schema mismatch: base '" + bs +
                         "' vs new '" + ns + "'");
    const json::Value *bset = base.find("settings");
    const json::Value *nset = next.find("settings");
    if ((bset != nullptr) != (nset != nullptr)) {
        errors.push_back("one report has no settings block");
    } else if (bset && nset && bset->isObject() && nset->isObject()) {
        for (const auto &[key, bval] : bset->members()) {
            const json::Value *nval = nset->find(key);
            std::string bv = bval.isString() ? bval.asString() : "";
            std::string nv = nval && nval->isString()
                                 ? nval->asString()
                                 : "";
            if (bv != nv)
                errors.push_back("settings." + key + " mismatch: '" +
                                 bv + "' vs '" + nv + "'");
        }
        // Symmetric check: a key only the *new* report carries (e.g.
        // ucx_cache_dir turning the disk tier on) is just as much of
        // an apples-to-oranges setup as a differing value.
        for (const auto &[key, nval] : nset->members()) {
            if (bset->find(key) != nullptr)
                continue;
            std::string nv = nval.isString() ? nval.asString() : "";
            if (!nv.empty())
                errors.push_back("settings." + key + " mismatch: '" +
                                 "' vs '" + nv + "'");
        }
    }
    return errors;
}

/** Exact-by-default comparison for deterministic integer metrics. */
void
diffExactMap(PairResult &pair, const CliOptions &opts,
             const std::string &kind, const json::Value *base,
             const json::Value *next,
             const std::string &member = "")
{
    auto numberOf = [&](const json::Value &v) {
        if (member.empty())
            return v.asNumber();
        return v.at(member).asNumber();
    };
    if (base && base->isObject()) {
        for (const auto &[name, bval] : base->members()) {
            const json::Value *nval =
                next && next->isObject() ? next->find(name) : nullptr;
            double b = numberOf(bval);
            if (!nval) {
                addFinding(pair, true, kind, name, b, 0.0,
                           "missing in new report");
                continue;
            }
            double n = numberOf(*nval);
            double tol = opts.counterRelTol * std::fabs(b);
            if (std::fabs(n - b) > tol)
                addFinding(pair, true, kind, name, b, n);
        }
    }
    if (next && next->isObject()) {
        for (const auto &[name, nval] : next->members()) {
            if (!base || !base->isObject() || !base->find(name))
                addFinding(pair, false, kind, name, 0.0,
                           numberOf(nval), "new metric");
        }
    }
}

/** Thresholded two-sided comparison for noisy numeric gauges. */
void
diffGauges(PairResult &pair, const CliOptions &opts,
           const json::Value *base, const json::Value *next)
{
    if (base && base->isObject()) {
        for (const auto &[name, bval] : base->members()) {
            const json::Value *nval =
                next && next->isObject() ? next->find(name) : nullptr;
            if (!bval.isNumber())
                continue; // null = non-finite sample; skip
            double b = bval.asNumber();
            if (!nval) {
                addFinding(pair, true, "gauge", name, b, 0.0,
                           "missing in new report");
                continue;
            }
            if (!nval->isNumber())
                continue;
            double n = nval->asNumber();
            double tol = std::max(opts.gaugeAbsTol,
                                  opts.gaugeRelTol * std::fabs(b));
            if (std::fabs(n - b) > tol)
                addFinding(pair, true, "gauge", name, b, n);
        }
    }
    if (next && next->isObject()) {
        for (const auto &[name, nval] : next->members()) {
            if (!base || !base->isObject() || !base->find(name))
                addFinding(pair, false, "gauge", name, 0.0,
                           nval.isNumber() ? nval.asNumber() : 0.0,
                           "new metric");
        }
    }
}

/** One-sided slowdown gate for span/wall times. */
bool
timeRegressed(const CliOptions &opts, double base_ms, double new_ms)
{
    return new_ms - base_ms > opts.spanMinMs &&
           new_ms > base_ms * (1.0 + opts.spanRelTol);
}

void
diffSpanTree(PairResult &pair, const CliOptions &opts,
             const std::string &path, const json::Value &base,
             const json::Value &next)
{
    const std::string label = path.empty() ? "(root)" : path;
    double bcalls = base.at("calls").asNumber();
    double ncalls = next.at("calls").asNumber();
    double tol = opts.counterRelTol * std::fabs(bcalls);
    if (std::fabs(ncalls - bcalls) > tol) {
        addFinding(pair, true, "span", label, bcalls, ncalls,
                   "call count");
    }
    double bms = base.at("total_ms").asNumber();
    double nms = next.at("total_ms").asNumber();
    if (timeRegressed(opts, bms, nms))
        addFinding(pair, true, "span", label, bms, nms, "total_ms");

    auto childByName = [](const json::Value &node,
                          const std::string &name)
        -> const json::Value * {
        for (const json::Value &child : node.at("children").items())
            if (child.at("name").asString() == name)
                return &child;
        return nullptr;
    };
    for (const json::Value &bchild : base.at("children").items()) {
        const std::string &name = bchild.at("name").asString();
        std::string child_path =
            path.empty() ? name : path + "/" + name;
        if (const json::Value *nchild = childByName(next, name)) {
            diffSpanTree(pair, opts, child_path, bchild, *nchild);
        } else {
            addFinding(pair, true, "span", child_path,
                       bchild.at("calls").asNumber(), 0.0,
                       "missing in new report");
        }
    }
    for (const json::Value &nchild : next.at("children").items()) {
        const std::string &name = nchild.at("name").asString();
        if (!childByName(base, name)) {
            addFinding(pair, false, "span",
                       path.empty() ? name : path + "/" + name, 0.0,
                       nchild.at("calls").asNumber(), "new span");
        }
    }
}

PairResult
diffReports(const CliOptions &opts, const std::string &label,
            const json::Value &base, const json::Value &next)
{
    PairResult pair;
    pair.label = label;

    std::vector<std::string> errors =
        compatibilityErrors(base, next);
    if (!errors.empty() && !opts.force) {
        std::string all;
        for (const std::string &e : errors)
            all += (all.empty() ? "" : "; ") + e;
        throw UcxError(label + ": " + all + " (--force to compare "
                       "anyway)");
    }
    for (const std::string &e : errors)
        addFinding(pair, false, "report", label, 0.0, 0.0, e);

    double bwall = base.at("wall_ms").asNumber();
    double nwall = next.at("wall_ms").asNumber();
    if (timeRegressed(opts, bwall, nwall))
        addFinding(pair, true, "wall", "wall_ms", bwall, nwall);

    const json::Value &bobs = base.at("obs");
    const json::Value &nobs = next.at("obs");
    diffExactMap(pair, opts, "counter", bobs.find("counters"),
                 nobs.find("counters"));
    diffGauges(pair, opts, bobs.find("gauges"), nobs.find("gauges"));
    diffExactMap(pair, opts, "histogram", bobs.find("histograms"),
                 nobs.find("histograms"), "count");
    diffSpanTree(pair, opts, "", bobs.at("spans"), nobs.at("spans"));
    return pair;
}

/** A report file, or every BENCH_*.json in a directory. */
std::vector<std::string>
expandInput(const std::string &input)
{
    namespace fs = std::filesystem;
    if (!fs::exists(input))
        throw UcxError("no such file or directory: '" + input + "'");
    if (!fs::is_directory(input))
        return {input};
    std::vector<std::string> out;
    for (const auto &entry : fs::directory_iterator(input)) {
        std::string name = entry.path().filename().string();
        if (entry.is_regular_file() &&
            name.rfind("BENCH_", 0) == 0 &&
            name.size() > 5 + 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            out.push_back(entry.path().string());
    }
    std::sort(out.begin(), out.end());
    if (out.empty())
        throw UcxError("no BENCH_*.json reports in '" + input + "'");
    return out;
}

std::string
fileName(const std::string &path)
{
    return std::filesystem::path(path).filename().string();
}

std::string
resultsJson(const std::vector<PairResult> &pairs)
{
    std::ostringstream out;
    size_t regressions = 0;
    out << "{\"schema\":\"ucx.obsdiff.v1\",\"reports\":[";
    for (size_t i = 0; i < pairs.size(); ++i) {
        const PairResult &pair = pairs[i];
        regressions += pair.regressions();
        if (i > 0)
            out << ",";
        out << "{\"report\":\"" << obs::jsonEscape(pair.label)
            << "\",\"regressions\":" << pair.regressions()
            << ",\"findings\":[";
        for (size_t j = 0; j < pair.findings.size(); ++j) {
            const Finding &f = pair.findings[j];
            if (j > 0)
                out << ",";
            out << "{\"kind\":\"" << obs::jsonEscape(f.kind)
                << "\",\"name\":\"" << obs::jsonEscape(f.name)
                << "\",\"regression\":"
                << (f.regression ? "true" : "false")
                << ",\"base\":" << obs::jsonNumber(f.base)
                << ",\"new\":" << obs::jsonNumber(f.next)
                << ",\"detail\":\"" << obs::jsonEscape(f.detail)
                << "\"}";
        }
        out << "]}";
    }
    out << "],\"regressions\":" << regressions << "}\n";
    return out.str();
}

std::string
resultsText(const std::vector<PairResult> &pairs)
{
    std::ostringstream out;
    size_t regressions = 0;
    for (const PairResult &pair : pairs) {
        regressions += pair.regressions();
        out << pair.label << ": " << pair.regressions()
            << " regression(s), " << pair.findings.size()
            << " finding(s)\n";
        for (const Finding &f : pair.findings) {
            out << "  " << (f.regression ? "[REGRESSION] " : "[info] ")
                << f.kind << " " << f.name << ": " << f.detail
                << "\n";
        }
    }
    out << (regressions == 0 ? "OK: no regressions\n"
                             : "FAIL: " +
                                   std::to_string(regressions) +
                                   " regression(s)\n");
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        CliOptions opts;
        try {
            opts = parseArgs(argc, argv);
        } catch (const UcxError &e) {
            if (std::string(e.what()) == "help")
                return usage(std::cout, 0);
            std::cerr << "ucx_obsdiff: " << e.what() << "\n";
            return usage(std::cerr, 2);
        }

        std::vector<std::string> baseFiles =
            expandInput(opts.inputs[0]);
        std::vector<std::string> nextFiles =
            opts.selfCheck ? baseFiles
                           : expandInput(opts.inputs[1]);

        // Pair reports across the two sides by file name; a file
        // mode input is a single pair regardless of names.
        std::vector<PairResult> pairs;
        if (baseFiles.size() == 1 && nextFiles.size() == 1) {
            pairs.push_back(diffReports(
                opts, fileName(baseFiles[0]),
                loadReport(baseFiles[0]), loadReport(nextFiles[0])));
        } else {
            auto findByName =
                [](const std::vector<std::string> &files,
                   const std::string &name) -> const std::string * {
                for (const std::string &f : files)
                    if (fileName(f) == name)
                        return &f;
                return nullptr;
            };
            for (const std::string &bfile : baseFiles) {
                std::string name = fileName(bfile);
                if (const std::string *nfile =
                        findByName(nextFiles, name)) {
                    pairs.push_back(
                        diffReports(opts, name, loadReport(bfile),
                                    loadReport(*nfile)));
                } else {
                    PairResult pair;
                    pair.label = name;
                    addFinding(pair, true, "report", name, 0.0, 0.0,
                               "missing in new directory");
                    pairs.push_back(std::move(pair));
                }
            }
            for (const std::string &nfile : nextFiles) {
                std::string name = fileName(nfile);
                if (!findByName(baseFiles, name)) {
                    PairResult pair;
                    pair.label = name;
                    addFinding(pair, false, "report", name, 0.0, 0.0,
                               "only in new directory");
                    pairs.push_back(std::move(pair));
                }
            }
        }

        if (opts.json)
            std::cout << resultsJson(pairs);
        else
            std::cout << resultsText(pairs);

        for (const PairResult &pair : pairs)
            if (pair.regressions() > 0)
                return 1;
        return 0;
    } catch (const UcxError &e) {
        std::cerr << "ucx_obsdiff: " << e.what() << "\n";
        return 2;
    }
}
