/**
 * @file
 * ucx_lint — command-line HDL/netlist linter and accounting-rule
 * validator.
 *
 * Usage:
 *
 *     ucx_lint [options] [design ...]
 *
 * Each positional argument is a shipped-design registry key (e.g.
 * "fetch") or a µHDL source file; with no arguments every shipped
 * design is linted. Options:
 *
 *     --top NAME         Top module for file inputs (default: the
 *                        last module in the file).
 *     --fit              Also lint the published calibration
 *                        dataset (acct.* and fit.* rules).
 *     --json             JSON output (schema ucx.lint.v1).
 *     --suppress FILE    Drop findings matching a suppression file.
 *     --write-baseline FILE
 *                        Write a suppression file freezing every
 *                        current finding, then exit 0.
 *     --min-severity S   Exit-code threshold: note|warning|error
 *                        (default warning).
 *     --list-rules       Print the rule catalog and exit.
 *     --explain RULE     Print one rule's catalog entry (id,
 *                        family, severity, summary) and exit.
 *
 * Exit status: 0 when no finding reaches the threshold, 1 when one
 * does, 2 on usage or input errors.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/session.hh"
#include "util/error.hh"
#include "util/table.hh"

using namespace ucx;

namespace
{

struct CliOptions
{
    std::vector<std::string> inputs;
    std::string top;
    std::string suppressPath;
    std::string baselinePath;
    std::vector<std::string> explainRules;
    LintSeverity threshold = LintSeverity::Warning;
    bool fit = false;
    bool json = false;
    bool listRules = false;
};

int
usage(std::ostream &out, int code)
{
    out << "usage: ucx_lint [--top NAME] [--fit] [--json]\n"
           "                [--suppress FILE] [--write-baseline "
           "FILE]\n"
           "                [--min-severity note|warning|error]\n"
           "                [--list-rules] [--explain RULE]\n"
           "                [design ...]\n";
    return code;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const std::string &flag) {
            if (i + 1 >= argc)
                throw UcxError(flag + " needs an argument");
            return std::string(argv[++i]);
        };
        if (arg == "--top")
            opts.top = value(arg);
        else if (arg == "--fit")
            opts.fit = true;
        else if (arg == "--json")
            opts.json = true;
        else if (arg == "--suppress")
            opts.suppressPath = value(arg);
        else if (arg == "--write-baseline")
            opts.baselinePath = value(arg);
        else if (arg == "--min-severity")
            opts.threshold = lintSeverityFromName(value(arg));
        else if (arg == "--list-rules")
            opts.listRules = true;
        else if (arg == "--explain")
            opts.explainRules.push_back(value(arg));
        else if (arg == "--help" || arg == "-h")
            throw UcxError("help");
        else if (!arg.empty() && arg[0] == '-')
            throw UcxError("unknown option '" + arg + "'");
        else
            opts.inputs.push_back(arg);
    }
    return opts;
}

bool
isShippedName(const std::string &name)
{
    for (const ShippedDesign &sd : shippedDesigns())
        if (sd.name == name)
            return true;
    return false;
}

LintReport
lintFile(EstimationSession &session, const std::string &path,
         const std::string &top)
{
    std::ifstream in(path);
    if (!in)
        throw UcxError("cannot read '" + path +
                       "' (not a shipped design or readable file)");
    std::ostringstream text;
    text << in.rdbuf();
    Design design;
    design.addSource(text.str(), path);
    if (design.moduleNames().empty())
        throw UcxError("'" + path + "' contains no modules");
    std::string use_top =
        top.empty() ? design.moduleNames().back() : top;
    return session.lint(design, use_top, path);
}

void
explainRule(const std::string &id)
{
    // lintRule throws a typed error for unknown ids, which main
    // reports with exit 2 like any other bad input.
    const LintRuleInfo &rule = lintRule(id);
    std::cout << rule.id << "\n"
              << "  family:   " << rule.family << "\n"
              << "  severity: " << lintSeverityName(rule.severity)
              << "\n"
              << "  summary:  " << rule.summary << "\n";
}

void
printRules()
{
    Table t({"Rule", "Family", "Severity", "Summary"});
    t.setAlign(3, Align::Left);
    for (const LintRuleInfo &rule : lintRuleCatalog())
        t.addRow({rule.id, rule.family,
                  lintSeverityName(rule.severity), rule.summary});
    std::cout << t.render();
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opts;
    try {
        opts = parseArgs(argc, argv);
    } catch (const UcxError &e) {
        if (std::string(e.what()) == "help")
            return usage(std::cout, 0);
        std::cerr << "ucx_lint: " << e.what() << "\n";
        return usage(std::cerr, 2);
    }

    try {
        if (opts.listRules) {
            printRules();
            return 0;
        }
        if (!opts.explainRules.empty()) {
            for (const std::string &id : opts.explainRules)
                explainRule(id);
            return 0;
        }

        EstimationSession session;
        LintReport report;
        if (opts.inputs.empty()) {
            report = session.lintAllShipped();
        } else {
            for (const std::string &input : opts.inputs) {
                if (isShippedName(input))
                    report.merge(session.lintShipped(input));
                else
                    report.merge(
                        lintFile(session, input, opts.top));
            }
        }
        if (opts.fit) {
            EstimatorSpec all;
            for (Metric m : allMetrics())
                all.metrics.push_back(m);
            report.merge(session.lintFit(session.accountedDataset(),
                                         all, "accounted"));
        }
        report.sortCanonical();

        if (!opts.baselinePath.empty()) {
            LintSuppressions baseline =
                LintSuppressions::baselineOf(report, "baselined");
            std::ofstream out(opts.baselinePath);
            if (!out)
                throw UcxError("cannot write '" +
                               opts.baselinePath + "'");
            out << baseline.serialize();
            std::cout << "wrote " << baseline.entries().size()
                      << " suppression(s) to " << opts.baselinePath
                      << "\n";
            return 0;
        }

        size_t suppressed = 0;
        if (!opts.suppressPath.empty()) {
            LintSuppressions suppressions =
                LintSuppressions::fromFile(opts.suppressPath);
            suppressed = suppressions.apply(report);
        }

        if (opts.json) {
            std::cout << report.json() << "\n";
        } else if (report.empty()) {
            std::cout << "no findings";
            if (suppressed > 0)
                std::cout << " (" << suppressed << " suppressed)";
            std::cout << "\n";
        } else {
            std::cout << report.text();
            if (suppressed > 0)
                std::cout << suppressed << " suppressed\n";
        }
        return report.count(opts.threshold) > 0 ? 1 : 0;
    } catch (const UcxError &e) {
        std::cerr << "ucx_lint: " << e.what() << "\n";
        return 2;
    }
}
