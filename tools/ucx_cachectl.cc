/**
 * @file
 * ucx_cachectl — inspect and maintain an on-disk artifact cache
 * (the UCX_CACHE_DIR tier of the ArtifactCache).
 *
 * Usage:
 *
 *     ucx_cachectl [--dir DIR] ls
 *     ucx_cachectl [--dir DIR] stat
 *     ucx_cachectl [--dir DIR] verify
 *     ucx_cachectl [--dir DIR] gc --max-bytes N
 *
 * Commands:
 *
 *     ls      One line per entry: type, schema version, payload
 *             bytes, and the cache key, sorted by key.
 *     stat    Store summary: entry/byte totals and a per-type
 *             breakdown.
 *     verify  Fully decode every entry through the registered
 *             codecs (checksums, schema versions, payload shape).
 *             Malformed entries are reported; exit 1 when any.
 *     gc      Delete oldest entries (by file modification time)
 *             until the store fits in --max-bytes bytes.
 *
 * The store directory comes from --dir or UCX_CACHE_DIR. Exit
 * status: 0 on success, 1 when verify finds bad entries, 2 on usage
 * or input errors.
 */

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "io/artifact_serde.hh"
#include "io/disk_store.hh"
#include "io/registry.hh"
#include "io/serde.hh"
#include "util/error.hh"
#include "util/table.hh"

namespace fs = std::filesystem;
using namespace ucx;

namespace
{

int
usage(std::ostream &out, int code)
{
    out << "usage: ucx_cachectl [--dir DIR] "
           "{ls | stat | verify | gc --max-bytes N}\n";
    return code;
}

/** One parsed store entry (or the reason it would not parse). */
struct EntryInfo
{
    std::string path;
    std::string key;
    uint64_t fileBytes = 0;
    io::FrameHeader header;
    std::string typeName;  ///< Codec name or the raw fourcc.
    std::string error;     ///< "" when the container parsed.
};

/** Scan every *.ucx entry under the store root, sorted by key. */
std::vector<EntryInfo>
scanStore(const std::string &dir)
{
    require(fs::is_directory(dir),
            "'" + dir + "' is not a directory");
    std::vector<EntryInfo> entries;
    for (const auto &de : fs::recursive_directory_iterator(dir)) {
        if (!de.is_regular_file() ||
            de.path().extension() != ".ucx")
            continue;
        EntryInfo info;
        info.path = de.path().string();
        info.fileBytes = static_cast<uint64_t>(de.file_size());
        std::string bytes;
        std::string framed;
        if (!io::DiskStore::readFile(info.path, bytes)) {
            info.error = "unreadable file";
        } else if (!io::DiskStore::unpackEntry(bytes, info.key,
                                               framed)) {
            info.error = "malformed entry container";
        } else {
            try {
                info.header = io::peekFrame(framed);
                const io::ArtifactCodec *codec =
                    io::SerdeRegistry::global().byTag(
                        info.header.typeTag);
                info.typeName =
                    codec != nullptr
                        ? codec->name
                        : io::fourccName(info.header.typeTag);
            } catch (const io::SerdeError &e) {
                info.error = e.what();
            }
        }
        entries.push_back(std::move(info));
    }
    std::sort(entries.begin(), entries.end(),
              [](const EntryInfo &a, const EntryInfo &b) {
                  if (a.key != b.key)
                      return a.key < b.key;
                  return a.path < b.path;
              });
    return entries;
}

int
cmdLs(const std::string &dir)
{
    Table t({"Type", "Ver", "Bytes", "Key"});
    for (const EntryInfo &e : scanStore(dir)) {
        if (!e.error.empty()) {
            t.addRow({"<bad>", "-", std::to_string(e.fileBytes),
                      e.path + ": " + e.error});
            continue;
        }
        t.addRow({e.typeName, std::to_string(e.header.version),
                  std::to_string(e.header.payloadSize), e.key});
    }
    std::cout << t.render();
    return 0;
}

int
cmdStat(const std::string &dir)
{
    std::vector<EntryInfo> entries = scanStore(dir);
    uint64_t bytes = 0;
    size_t bad = 0;
    std::map<std::string, std::pair<size_t, uint64_t>> byType;
    for (const EntryInfo &e : entries) {
        bytes += e.fileBytes;
        if (!e.error.empty()) {
            ++bad;
            continue;
        }
        auto &[count, size] = byType[e.typeName];
        ++count;
        size += e.fileBytes;
    }
    std::cout << "store:    " << dir << "\n"
              << "entries:  " << entries.size() << "\n"
              << "bytes:    " << bytes << "\n"
              << "bad:      " << bad << "\n";
    if (!byType.empty()) {
        Table t({"Type", "Entries", "Bytes"});
        for (const auto &[name, stats] : byType) {
            t.addRow({name, std::to_string(stats.first),
                      std::to_string(stats.second)});
        }
        std::cout << t.render();
    }
    return 0;
}

int
cmdVerify(const std::string &dir)
{
    size_t checked = 0;
    size_t bad = 0;
    size_t skipped = 0;
    for (const EntryInfo &e : scanStore(dir)) {
        if (!e.error.empty()) {
            std::cout << "BAD  " << e.path << ": " << e.error
                      << "\n";
            ++bad;
            continue;
        }
        const io::ArtifactCodec *codec =
            io::SerdeRegistry::global().byTag(e.header.typeTag);
        if (codec == nullptr) {
            // An unknown tag is not corruption — a newer build may
            // know codecs this one does not.
            ++skipped;
            continue;
        }
        std::string bytes;
        std::string key;
        std::string framed;
        if (!io::DiskStore::readFile(e.path, bytes) ||
            !io::DiskStore::unpackEntry(bytes, key, framed)) {
            std::cout << "BAD  " << e.path
                      << ": entry vanished or went malformed\n";
            ++bad;
            continue;
        }
        try {
            codec->decode(framed);
            ++checked;
        } catch (const io::SerdeError &err) {
            std::cout << "BAD  " << e.path << " (" << e.key
                      << "): " << err.what() << "\n";
            ++bad;
        }
    }
    std::cout << "verified " << checked << " entries, " << bad
              << " bad, " << skipped << " unknown-type\n";
    return bad == 0 ? 0 : 1;
}

int
cmdGc(const std::string &dir, uint64_t max_bytes)
{
    struct Victim
    {
        std::string path;
        uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Victim> files;
    uint64_t total = 0;
    for (const auto &de : fs::recursive_directory_iterator(dir)) {
        if (!de.is_regular_file() ||
            de.path().extension() != ".ucx")
            continue;
        Victim v;
        v.path = de.path().string();
        v.bytes = static_cast<uint64_t>(de.file_size());
        v.mtime = de.last_write_time();
        total += v.bytes;
        files.push_back(std::move(v));
    }
    // Oldest first; path breaks mtime ties so a gc run is
    // reproducible.
    std::sort(files.begin(), files.end(),
              [](const Victim &a, const Victim &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });
    size_t removed = 0;
    uint64_t freed = 0;
    for (const Victim &v : files) {
        if (total <= max_bytes)
            break;
        std::error_code ec;
        if (fs::remove(v.path, ec) && !ec) {
            total -= v.bytes;
            freed += v.bytes;
            ++removed;
        }
    }
    std::cout << "removed " << removed << " entries, freed " << freed
              << " bytes, " << total << " bytes remain\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir = io::DiskStore::dirFromEnv();
    std::string command;
    bool haveMaxBytes = false;
    uint64_t maxBytes = 0;
    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto value = [&](const std::string &flag) {
                if (i + 1 >= argc)
                    throw UcxError(flag + " needs an argument");
                return std::string(argv[++i]);
            };
            if (arg == "--dir") {
                dir = value(arg);
            } else if (arg == "--max-bytes") {
                std::string v = value(arg);
                size_t end = 0;
                maxBytes = std::stoull(v, &end);
                if (end != v.size())
                    throw UcxError("--max-bytes needs an integer, "
                                   "got '" + v + "'");
                haveMaxBytes = true;
            } else if (arg == "--help" || arg == "-h") {
                return usage(std::cout, 0);
            } else if (!arg.empty() && arg[0] == '-') {
                throw UcxError("unknown option '" + arg + "'");
            } else if (command.empty()) {
                command = arg;
            } else {
                throw UcxError("unexpected argument '" + arg + "'");
            }
        }
        if (command.empty())
            return usage(std::cerr, 2);
        require(!dir.empty(),
                "no store directory: pass --dir or set "
                "UCX_CACHE_DIR");

        io::registerArtifactSerdes();
        if (command == "ls")
            return cmdLs(dir);
        if (command == "stat")
            return cmdStat(dir);
        if (command == "verify")
            return cmdVerify(dir);
        if (command == "gc") {
            require(haveMaxBytes, "gc needs --max-bytes N");
            return cmdGc(dir, maxBytes);
        }
        throw UcxError("unknown command '" + command + "'");
    } catch (const UcxError &e) {
        std::cerr << "ucx_cachectl: " << e.what() << "\n";
        return 2;
    }
}
