# Smoke test of the bench-report pipeline, run as a ctest entry:
#
#   cmake -DPERF_BIN=... -DOBSDIFF_BIN=... -DOUT_DIR=...
#         -P bench_smoke.cmake
#
# Runs perf_microbench in smoke mode (UCX_BENCH_SMOKE=1 skips the
# multi-second custom workloads; the benchmark filter trims the
# google-benchmark suite to one fast case), writes
# BENCH_perf_microbench.json into OUT_DIR via UCX_BENCH_DIR, and
# then self-diffs the report with ucx_obsdiff --self-check — proving
# the report is written where CI archives it, parses as valid JSON,
# and diffs clean against itself.

foreach(var PERF_BIN OBSDIFF_BIN OUT_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "bench_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            UCX_BENCH_SMOKE=1
            "UCX_BENCH_DIR=${OUT_DIR}"
            UCX_THREADS=2
            "${PERF_BIN}"
            --benchmark_filter=BM_ParsePipeline
            --benchmark_min_time=0.0001
    RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR "perf_microbench exited with ${bench_rc}")
endif()

if(NOT EXISTS "${OUT_DIR}/BENCH_perf_microbench.json")
    message(FATAL_ERROR
            "perf_microbench did not write its report into "
            "UCX_BENCH_DIR (${OUT_DIR})")
endif()

# The graph-vs-flat scheduler comparison runs even in smoke mode;
# its gauges prove the task-graph build path executed end to end.
file(READ "${OUT_DIR}/BENCH_perf_microbench.json" bench_report)
string(FIND "${bench_report}" "bench.graph.flat_ms" graph_gauge)
if(graph_gauge EQUAL -1)
    message(FATAL_ERROR
            "BENCH_perf_microbench.json is missing the "
            "bench.graph.flat_ms gauge")
endif()

# The disk-tier comparison also runs in smoke mode; its gauges prove
# the serde write-through/read-back path executed end to end.
foreach(gauge bench.disk.cold_ms bench.disk.warm_ms
        bench.disk.speedup)
    string(FIND "${bench_report}" "${gauge}" found)
    if(found EQUAL -1)
        message(FATAL_ERROR
                "BENCH_perf_microbench.json is missing the "
                "${gauge} gauge")
    endif()
endforeach()

# The fit-kernel workload also runs in smoke mode; its gauges prove
# the SoA kernel, analytic-gradient, and workspace paths executed.
foreach(gauge bench.fit.evals_per_sec bench.fit.legacy_evals_per_sec
        bench.fit.kernel_speedup bench.fit.serial_ms
        bench.fit.parallel_ms bench.fit.grad_speedup
        bench.fit.steady_allocs)
    string(FIND "${bench_report}" "${gauge}" found)
    if(found EQUAL -1)
        message(FATAL_ERROR
                "BENCH_perf_microbench.json is missing the "
                "${gauge} gauge")
    endif()
endforeach()

# Steady-state likelihood evaluation must not touch the heap: the
# counting allocator saw zero operator-new calls across the warmed
# batch, so the gauge serializes as exactly 0 (gauges render as
# "name":value with no space).
string(FIND "${bench_report}" "\"bench.fit.steady_allocs\":0,"
       zero_allocs)
if(zero_allocs EQUAL -1)
    string(FIND "${bench_report}" "\"bench.fit.steady_allocs\":0}"
           zero_allocs)
endif()
if(zero_allocs EQUAL -1)
    message(FATAL_ERROR
            "bench.fit.steady_allocs is non-zero: the fit hot path "
            "allocated during steady-state likelihood evaluation")
endif()

execute_process(
    COMMAND "${OBSDIFF_BIN}" --self-check "${OUT_DIR}"
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "ucx_obsdiff --self-check exited with "
                        "${diff_rc}")
endif()
