#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(Descriptive, MeanAndVariance)
{
    std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, MeanEmptyThrows)
{
    EXPECT_THROW(mean({}), UcxError);
    EXPECT_THROW(variance({1.0}), UcxError);
}

TEST(Descriptive, QuantileType7)
{
    std::vector<double> xs = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Descriptive, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
    EXPECT_DOUBLE_EQ(median({7}), 7.0);
}

TEST(Descriptive, PearsonPerfectAndInverse)
{
    std::vector<double> x = {1, 2, 3, 4};
    std::vector<double> y = {2, 4, 6, 8};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> yneg = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, yneg), -1.0, 1e-12);
}

TEST(Descriptive, PearsonConstantThrows)
{
    EXPECT_THROW(pearson({1, 1, 1}, {1, 2, 3}), UcxError);
}

TEST(Descriptive, SpearmanMonotoneNonlinear)
{
    // Monotone but nonlinear: Spearman is exactly 1.
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {1, 8, 27, 64, 125};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
    EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Descriptive, SpearmanHandlesTies)
{
    std::vector<double> x = {1, 2, 2, 3};
    std::vector<double> y = {10, 20, 20, 30};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Descriptive, RmsLogErrorKnown)
{
    // est = 2*actual everywhere -> rms log error = log 2.
    std::vector<double> est = {2, 4, 8};
    std::vector<double> act = {1, 2, 4};
    EXPECT_NEAR(rmsLogError(est, act), std::log(2.0), 1e-12);
}

TEST(Descriptive, RmsLogErrorZeroForPerfect)
{
    std::vector<double> v = {1.5, 2.5, 9.0};
    EXPECT_DOUBLE_EQ(rmsLogError(v, v), 0.0);
}

TEST(Descriptive, RmsLogErrorRejectsNonPositive)
{
    EXPECT_THROW(rmsLogError({0.0}, {1.0}), UcxError);
    EXPECT_THROW(rmsLogError({1.0}, {-1.0}), UcxError);
}

} // namespace
} // namespace ucx
