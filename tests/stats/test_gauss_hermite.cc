#include <cmath>

#include <gtest/gtest.h>

#include "stats/gauss_hermite.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(GaussHermite, WeightsSumToSqrtPi)
{
    // Integral of e^{-x^2} over R is sqrt(pi).
    for (size_t n : {1u, 2u, 5u, 10u, 20u, 40u}) {
        GaussHermiteRule rule = gaussHermite(n);
        double sum = 0.0;
        for (double w : rule.weights)
            sum += w;
        EXPECT_NEAR(sum, std::sqrt(M_PI), 1e-10) << "n=" << n;
    }
}

TEST(GaussHermite, NodesSymmetric)
{
    GaussHermiteRule rule = gaussHermite(9);
    for (size_t i = 0; i < rule.nodes.size(); ++i) {
        EXPECT_NEAR(rule.nodes[i],
                    -rule.nodes[rule.nodes.size() - 1 - i], 1e-10);
    }
    EXPECT_NEAR(rule.nodes[4], 0.0, 1e-12); // odd rule centers at 0
}

TEST(GaussHermite, TwoPointRuleExact)
{
    // Known: nodes +-1/sqrt(2), weights sqrt(pi)/2.
    GaussHermiteRule rule = gaussHermite(2);
    EXPECT_NEAR(std::abs(rule.nodes[0]), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(rule.weights[0], std::sqrt(M_PI) / 2.0, 1e-12);
}

TEST(GaussHermite, IntegratesPolynomialsExactly)
{
    // An n-point rule integrates x^k e^{-x^2} exactly for
    // k <= 2n - 1. Moments: integral x^2 e^{-x^2} = sqrt(pi)/2,
    // x^4 -> 3 sqrt(pi)/4.
    GaussHermiteRule rule = gaussHermite(5);
    double m2 = 0.0;
    double m4 = 0.0;
    for (size_t i = 0; i < rule.nodes.size(); ++i) {
        double x = rule.nodes[i];
        m2 += rule.weights[i] * x * x;
        m4 += rule.weights[i] * x * x * x * x;
    }
    EXPECT_NEAR(m2, std::sqrt(M_PI) / 2.0, 1e-10);
    EXPECT_NEAR(m4, 3.0 * std::sqrt(M_PI) / 4.0, 1e-10);
}

TEST(GaussHermite, NormalExpectationOfVariance)
{
    // E[Z^2] = 1 for Z ~ N(0,1).
    GaussHermiteRule rule = gaussHermite(10);
    double v = normalExpectation(rule,
                                 [](double z) { return z * z; });
    EXPECT_NEAR(v, 1.0, 1e-10);
}

TEST(GaussHermite, NormalExpectationLognormalMean)
{
    // E[e^Z] = e^{1/2}.
    GaussHermiteRule rule = gaussHermite(20);
    double v = normalExpectation(rule,
                                 [](double z) { return std::exp(z); });
    EXPECT_NEAR(v, std::exp(0.5), 1e-8);
}

TEST(GaussHermite, RejectsBadCounts)
{
    EXPECT_THROW(gaussHermite(0), UcxError);
    EXPECT_THROW(gaussHermite(65), UcxError);
}

TEST(GaussHermite, CachedRuleBitIdenticalToFresh)
{
    // The compute-once table must hand back exactly what a fresh
    // computation produces — the AGHQ fitters changed from per-call
    // recomputes to the cache, and printed results are pinned to the
    // bit.
    for (size_t n : {1u, 2u, 5u, 15u, 31u, 64u}) {
        const GaussHermiteRule &cached = gaussHermiteCached(n);
        GaussHermiteRule fresh = gaussHermite(n);
        ASSERT_EQ(cached.nodes.size(), fresh.nodes.size()) << "n=" << n;
        for (size_t i = 0; i < fresh.nodes.size(); ++i) {
            EXPECT_EQ(cached.nodes[i], fresh.nodes[i])
                << "n=" << n << " node " << i;
            EXPECT_EQ(cached.weights[i], fresh.weights[i])
                << "n=" << n << " weight " << i;
        }
    }
}

TEST(GaussHermite, CachedRuleIsStableAcrossCalls)
{
    // Repeated lookups return the same object (one compute per
    // order, shared by every thread thereafter).
    const GaussHermiteRule &a = gaussHermiteCached(15);
    const GaussHermiteRule &b = gaussHermiteCached(15);
    EXPECT_EQ(&a, &b);
    EXPECT_THROW(gaussHermiteCached(0), UcxError);
    EXPECT_THROW(gaussHermiteCached(65), UcxError);
}

/** Convergence sweep: expectation of a smooth nonlinearity. */
class GhConvergence : public ::testing::TestWithParam<size_t>
{};

TEST_P(GhConvergence, CosExpectation)
{
    // E[cos Z] = e^{-1/2}.
    GaussHermiteRule rule = gaussHermite(GetParam());
    double v = normalExpectation(rule,
                                 [](double z) { return std::cos(z); });
    EXPECT_NEAR(v, std::exp(-0.5), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GhConvergence,
                         ::testing::Values(8, 12, 16, 24, 32, 48, 64));

} // namespace
} // namespace ucx
