#include <cmath>

#include <gtest/gtest.h>

#include "stats/lognormal.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(Lognormal, ModeMedianMeanOrdering)
{
    // Paper Figure 2: for mu = 0, mode < median < mean.
    Lognormal d(0.0, 0.5);
    EXPECT_LT(d.mode(), d.median());
    EXPECT_LT(d.median(), d.mean());
}

TEST(Lognormal, MedianIsOneForMuZero)
{
    // The paper chooses mu = 0 so that the median productivity and
    // error are exactly 1.
    for (double s : {0.1, 0.46, 1.0, 2.0})
        EXPECT_DOUBLE_EQ(Lognormal(0.0, s).median(), 1.0);
}

TEST(Lognormal, Figure2Annotations)
{
    // Figure 2 marks mode ~= 0.75 and mean ~= 1.16 for its example
    // lognormal; those annotations correspond to sigma ~= 0.54.
    Lognormal d(0.0, 0.54);
    EXPECT_NEAR(d.mode(), 0.75, 0.02);
    EXPECT_NEAR(d.mean(), 1.16, 0.02);
}

TEST(Lognormal, MeanFormula)
{
    Lognormal d(0.3, 0.8);
    EXPECT_NEAR(d.mean(), std::exp(0.3 + 0.8 * 0.8 / 2.0), 1e-12);
}

TEST(Lognormal, PdfIntegratesToOne)
{
    Lognormal d(0.0, 0.5);
    double sum = 0.0;
    double dx = 0.001;
    for (double x = dx / 2; x < 20.0; x += dx)
        sum += d.pdf(x) * dx;
    EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(Lognormal, PdfZeroForNonPositive)
{
    Lognormal d(0.0, 0.5);
    EXPECT_DOUBLE_EQ(d.pdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.pdf(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);
}

TEST(Lognormal, CdfQuantileRoundTrip)
{
    Lognormal d(0.2, 0.7);
    for (double p : {0.05, 0.25, 0.5, 0.75, 0.95})
        EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-10);
}

TEST(Lognormal, CentralIntervalCoverage)
{
    Lognormal d(0.0, 0.45);
    auto [lo, hi] = d.centralInterval(0.90);
    EXPECT_NEAR(d.cdf(hi) - d.cdf(lo), 0.90, 1e-10);
}

TEST(Lognormal, Figure3ReferencePoint)
{
    // Paper Figure 3: sigma = 0.45 gives a 90% interval of about
    // (0.5, 2.1).
    auto [yl, yh] = errorFactors(0.45, 0.90);
    EXPECT_NEAR(yl, 0.5, 0.03);
    EXPECT_NEAR(yh, 2.1, 0.05);
}

TEST(Lognormal, PaperConfidenceIntervals)
{
    // Section 5.1: sigma 0.50 -> (0.44, 2.28); 0.55 -> (0.40, 2.47).
    {
        auto [yl, yh] = errorFactors(0.50, 0.90);
        EXPECT_NEAR(yl, 0.44, 0.01);
        EXPECT_NEAR(yh, 2.28, 0.01);
    }
    {
        auto [yl, yh] = errorFactors(0.55, 0.90);
        EXPECT_NEAR(yl, 0.40, 0.01);
        EXPECT_NEAR(yh, 2.47, 0.01);
    }
    // Section 5.1: AreaS 2.07 -> (0.03, 30.11); FFs 2.14 ->
    // (0.03, 33.78).
    {
        auto [yl, yh] = errorFactors(2.07, 0.90);
        EXPECT_NEAR(yl, 0.03, 0.005);
        EXPECT_NEAR(yh, 30.11, 0.5);
    }
    {
        auto [yl, yh] = errorFactors(2.14, 0.90);
        EXPECT_NEAR(yh, 33.78, 0.5);
    }
}

TEST(Lognormal, ErrorFactorsZeroSigma)
{
    auto [yl, yh] = errorFactors(0.0, 0.90);
    EXPECT_DOUBLE_EQ(yl, 1.0);
    EXPECT_DOUBLE_EQ(yh, 1.0);
}

TEST(Lognormal, ErrorFactorsSymmetricInLog)
{
    // yl * yh == 1 for a median-1 lognormal.
    auto [yl, yh] = errorFactors(0.6, 0.90);
    EXPECT_NEAR(yl * yh, 1.0, 1e-10);
}

TEST(Lognormal, RejectsBadArguments)
{
    EXPECT_THROW(Lognormal(0.0, 0.0), UcxError);
    EXPECT_THROW(errorFactors(-0.1, 0.9), UcxError);
    EXPECT_THROW(Lognormal(0.0, 1.0).centralInterval(0.0), UcxError);
    EXPECT_THROW(Lognormal(0.0, 1.0).centralInterval(1.0), UcxError);
}

/** Property sweep: interval widens monotonically with sigma. */
class ErrorFactorSweep : public ::testing::TestWithParam<double>
{};

TEST_P(ErrorFactorSweep, WiderThanSmallerSigma)
{
    double s = GetParam();
    auto [lo_s, hi_s] = errorFactors(s, 0.90);
    auto [lo_t, hi_t] = errorFactors(s + 0.1, 0.90);
    EXPECT_LT(lo_t, lo_s);
    EXPECT_GT(hi_t, hi_s);
    EXPECT_LT(lo_s, 1.0);
    EXPECT_GT(hi_s, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ErrorFactorSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.45, 0.5,
                                           0.6, 0.7, 1.0, 1.5, 2.0));

} // namespace
} // namespace ucx
