#include <gtest/gtest.h>

#include "stats/ks_test.hh"
#include "stats/lognormal.hh"
#include "stats/normal.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

TEST(KsTest, AcceptsCorrectDistribution)
{
    Rng rng(31);
    std::vector<double> sample;
    for (int i = 0; i < 2000; ++i)
        sample.push_back(rng.normal(0.0, 1.0));
    Normal n(0.0, 1.0);
    KsResult res =
        ksTest(sample, [&](double x) { return n.cdf(x); });
    EXPECT_GT(res.pValue, 0.01);
    EXPECT_LT(res.statistic, 0.05);
}

TEST(KsTest, RejectsWrongLocation)
{
    Rng rng(33);
    std::vector<double> sample;
    for (int i = 0; i < 2000; ++i)
        sample.push_back(rng.normal(0.5, 1.0));
    Normal n(0.0, 1.0);
    KsResult res =
        ksTest(sample, [&](double x) { return n.cdf(x); });
    EXPECT_LT(res.pValue, 1e-6);
}

TEST(KsTest, LognormalSamplesMatchLognormal)
{
    // The productivity / error law assumed by the model: samples of
    // exp(N(0, s)) must pass a lognormal KS test.
    Rng rng(37);
    std::vector<double> sample;
    for (int i = 0; i < 2000; ++i)
        sample.push_back(rng.lognormal(0.0, 0.45));
    Lognormal d(0.0, 0.45);
    KsResult res =
        ksTest(sample, [&](double x) { return d.cdf(x); });
    EXPECT_GT(res.pValue, 0.01);
}

TEST(KsTest, LognormalSamplesFailNormalTest)
{
    Rng rng(41);
    std::vector<double> sample;
    for (int i = 0; i < 2000; ++i)
        sample.push_back(rng.lognormal(0.0, 1.0));
    Normal n(1.65, 2.16); // matched mean/sd, wrong shape
    KsResult res =
        ksTest(sample, [&](double x) { return n.cdf(x); });
    EXPECT_LT(res.pValue, 1e-4);
}

TEST(KsTest, EmptySampleThrows)
{
    EXPECT_THROW(ksTest({}, [](double) { return 0.5; }), UcxError);
}

TEST(KsTest, StatisticBoundedByOne)
{
    KsResult res = ksTest({1.0, 2.0, 3.0},
                          [](double) { return 0.0; });
    EXPECT_LE(res.statistic, 1.0);
    EXPECT_GT(res.statistic, 0.9);
}

} // namespace
} // namespace ucx
