#include <cmath>

#include <gtest/gtest.h>

#include "stats/normal.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(Normal, PdfAtMean)
{
    Normal n(0.0, 1.0);
    EXPECT_NEAR(n.pdf(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-12);
}

TEST(Normal, PdfScalesWithSigma)
{
    Normal wide(0.0, 2.0);
    EXPECT_NEAR(wide.pdf(0.0), 0.5 / std::sqrt(2.0 * M_PI), 1e-12);
}

TEST(Normal, LogPdfConsistent)
{
    Normal n(1.5, 0.7);
    for (double x : {-2.0, 0.0, 1.5, 3.0})
        EXPECT_NEAR(std::log(n.pdf(x)), n.logPdf(x), 1e-10);
}

TEST(Normal, CdfKnownValues)
{
    Normal n(0.0, 1.0);
    EXPECT_NEAR(n.cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(n.cdf(1.0), 0.8413447460685429, 1e-10);
    EXPECT_NEAR(n.cdf(-1.96), 0.024997895, 1e-7);
}

TEST(Normal, CdfSymmetry)
{
    Normal n(0.0, 1.0);
    for (double z : {0.3, 1.1, 2.7})
        EXPECT_NEAR(n.cdf(z) + n.cdf(-z), 1.0, 1e-12);
}

TEST(Normal, QuantileInvertsCore)
{
    Normal n(0.0, 1.0);
    for (double p : {0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999}) {
        double z = n.quantile(p);
        EXPECT_NEAR(n.cdf(z), p, 1e-10);
    }
}

TEST(Normal, QuantileKnownValues)
{
    EXPECT_NEAR(Normal::stdQuantile(0.5), 0.0, 1e-12);
    EXPECT_NEAR(Normal::stdQuantile(0.975), 1.959963984540054, 1e-8);
    EXPECT_NEAR(Normal::stdQuantile(0.95), 1.644853626951473, 1e-8);
    EXPECT_NEAR(Normal::stdQuantile(0.84), 0.994457883209753, 1e-8);
}

TEST(Normal, QuantileShiftScale)
{
    Normal n(10.0, 2.0);
    EXPECT_NEAR(n.quantile(0.975), 10.0 + 2.0 * 1.959963984540054,
                1e-7);
}

TEST(Normal, QuantileRejectsBadP)
{
    Normal n(0.0, 1.0);
    EXPECT_THROW(n.quantile(0.0), UcxError);
    EXPECT_THROW(n.quantile(1.0), UcxError);
    EXPECT_THROW(n.quantile(-0.5), UcxError);
}

TEST(Normal, RejectsBadSigma)
{
    EXPECT_THROW(Normal(0.0, 0.0), UcxError);
    EXPECT_THROW(Normal(0.0, -1.0), UcxError);
}

/** Quantile accuracy across the whole open interval. */
class NormalQuantileSweep : public ::testing::TestWithParam<double>
{};

TEST_P(NormalQuantileSweep, RoundTrip)
{
    double p = GetParam();
    double z = Normal::stdQuantile(p);
    EXPECT_NEAR(Normal::stdCdf(z), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NormalQuantileSweep,
    ::testing::Values(1e-8, 1e-6, 1e-4, 0.01, 0.05, 0.2, 0.35, 0.5,
                      0.65, 0.8, 0.95, 0.99, 1.0 - 1e-4, 1.0 - 1e-6,
                      1.0 - 1e-8));

} // namespace
} // namespace ucx
