#include <cmath>

#include <gtest/gtest.h>

#include "opt/multistart.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(Multistart, EscapesLocalMinimum)
{
    // Double well: local minimum near x = -1.1 (value ~0.05), global
    // near x = 1 (value 0). A single start at the local well stays
    // there; multi-start jitter should find the global one.
    Objective f = [](const std::vector<double> &x) {
        double v = x[0];
        return (v * v - 1.0) * (v * v - 1.0) + 0.05 * (1.0 - v);
    };
    MultistartConfig cfg;
    cfg.starts = 12;
    cfg.jitterSigma = 2.0;
    OptResult r = multistartMinimize(f, {-1.0}, cfg);
    EXPECT_NEAR(r.x[0], 1.0, 0.05);
}

TEST(Multistart, SingleStartStillWorks)
{
    Objective f = [](const std::vector<double> &x) {
        return (x[0] - 2.0) * (x[0] - 2.0);
    };
    MultistartConfig cfg;
    cfg.starts = 1;
    OptResult r = multistartMinimize(f, {0.0}, cfg);
    EXPECT_NEAR(r.x[0], 2.0, 1e-5);
}

TEST(Multistart, DeterministicForFixedSeed)
{
    Objective f = [](const std::vector<double> &x) {
        return std::sin(3.0 * x[0]) + x[0] * x[0] * 0.1;
    };
    MultistartConfig cfg;
    cfg.seed = 99;
    OptResult a = multistartMinimize(f, {0.0}, cfg);
    OptResult b = multistartMinimize(f, {0.0}, cfg);
    EXPECT_DOUBLE_EQ(a.x[0], b.x[0]);
    EXPECT_DOUBLE_EQ(a.fx, b.fx);
}

TEST(Multistart, ZeroStartsThrows)
{
    Objective f = [](const std::vector<double> &) { return 0.0; };
    MultistartConfig cfg;
    cfg.starts = 0;
    EXPECT_THROW(multistartMinimize(f, {0.0}, cfg), UcxError);
}

TEST(Multistart, BfgsPolishImprovesPrecision)
{
    Objective f = [](const std::vector<double> &x) {
        return (x[0] - 1.0) * (x[0] - 1.0) +
               (x[1] - 2.0) * (x[1] - 2.0);
    };
    MultistartConfig with;
    with.polishWithBfgs = true;
    OptResult r = multistartMinimize(f, {5.0, 5.0}, with);
    EXPECT_LT(r.fx, 1e-10);
}

} // namespace
} // namespace ucx
