#include <cmath>

#include <gtest/gtest.h>

#include "opt/bfgs.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(Bfgs, QuadraticConvergesFast)
{
    Objective f = [](const std::vector<double> &x) {
        return 3.0 * (x[0] - 1.0) * (x[0] - 1.0) +
               (x[1] - 2.0) * (x[1] - 2.0);
    };
    OptResult r = bfgs(f, {10.0, -10.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 1.0, 1e-5);
    EXPECT_NEAR(r.x[1], 2.0, 1e-5);
    EXPECT_LT(r.iterations, 50u);
}

TEST(Bfgs, Rosenbrock)
{
    Objective f = [](const std::vector<double> &x) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    OptResult r = bfgs(f, {-1.2, 1.0});
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
    EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(Bfgs, NumericGradientAccuracy)
{
    Objective f = [](const std::vector<double> &x) {
        return std::sin(x[0]) * std::exp(x[1]);
    };
    std::vector<double> x = {0.7, 0.3};
    std::vector<double> g = numericGradient(f, x);
    EXPECT_NEAR(g[0], std::cos(0.7) * std::exp(0.3), 1e-6);
    EXPECT_NEAR(g[1], std::sin(0.7) * std::exp(0.3), 1e-6);
}

TEST(Bfgs, NumericHessianAccuracy)
{
    // f = x^2 y + y^3; Hxx = 2y, Hxy = 2x, Hyy = 6y.
    Objective f = [](const std::vector<double> &x) {
        return x[0] * x[0] * x[1] + x[1] * x[1] * x[1];
    };
    std::vector<double> x = {1.5, 2.0};
    std::vector<double> h = numericHessian(f, x);
    EXPECT_NEAR(h[0], 2.0 * 2.0, 1e-4);
    EXPECT_NEAR(h[1], 2.0 * 1.5, 1e-4);
    EXPECT_NEAR(h[2], 2.0 * 1.5, 1e-4);
    EXPECT_NEAR(h[3], 6.0 * 2.0, 1e-4);
}

TEST(Bfgs, StartsAtOptimum)
{
    Objective f = [](const std::vector<double> &x) {
        return x[0] * x[0];
    };
    OptResult r = bfgs(f, {0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 0.0, 1e-8);
}

TEST(Bfgs, EmptyStartThrows)
{
    Objective f = [](const std::vector<double> &) { return 0.0; };
    EXPECT_THROW(bfgs(f, {}), UcxError);
}

} // namespace
} // namespace ucx
