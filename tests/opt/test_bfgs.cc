#include <cmath>

#include <gtest/gtest.h>

#include "opt/bfgs.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(Bfgs, QuadraticConvergesFast)
{
    Objective f = [](const std::vector<double> &x) {
        return 3.0 * (x[0] - 1.0) * (x[0] - 1.0) +
               (x[1] - 2.0) * (x[1] - 2.0);
    };
    OptResult r = bfgs(f, {10.0, -10.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 1.0, 1e-5);
    EXPECT_NEAR(r.x[1], 2.0, 1e-5);
    EXPECT_LT(r.iterations, 50u);
}

TEST(Bfgs, Rosenbrock)
{
    Objective f = [](const std::vector<double> &x) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    OptResult r = bfgs(f, {-1.2, 1.0});
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
    EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(Bfgs, NumericGradientAccuracy)
{
    Objective f = [](const std::vector<double> &x) {
        return std::sin(x[0]) * std::exp(x[1]);
    };
    std::vector<double> x = {0.7, 0.3};
    std::vector<double> g = numericGradient(f, x);
    EXPECT_NEAR(g[0], std::cos(0.7) * std::exp(0.3), 1e-6);
    EXPECT_NEAR(g[1], std::sin(0.7) * std::exp(0.3), 1e-6);
}

TEST(Bfgs, NumericHessianAccuracy)
{
    // f = x^2 y + y^3; Hxx = 2y, Hxy = 2x, Hyy = 6y.
    Objective f = [](const std::vector<double> &x) {
        return x[0] * x[0] * x[1] + x[1] * x[1] * x[1];
    };
    std::vector<double> x = {1.5, 2.0};
    std::vector<double> h = numericHessian(f, x);
    EXPECT_NEAR(h[0], 2.0 * 2.0, 1e-4);
    EXPECT_NEAR(h[1], 2.0 * 1.5, 1e-4);
    EXPECT_NEAR(h[2], 2.0 * 1.5, 1e-4);
    EXPECT_NEAR(h[3], 6.0 * 2.0, 1e-4);
}

TEST(Bfgs, AnalyticGradientQuadratic)
{
    Objective f = [](const std::vector<double> &x) {
        return 3.0 * (x[0] - 1.0) * (x[0] - 1.0) +
               (x[1] - 2.0) * (x[1] - 2.0);
    };
    Gradient g = [](const std::vector<double> &x,
                    std::vector<double> &grad) {
        grad[0] = 6.0 * (x[0] - 1.0);
        grad[1] = 2.0 * (x[1] - 2.0);
    };
    OptResult r = bfgs(f, g, {10.0, -10.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 1.0, 1e-6);
    EXPECT_NEAR(r.x[1], 2.0, 1e-6);
    // FD probes are excluded from the evaluation count on purpose —
    // both paths must report identical bookkeeping so convergence
    // traces stay byte-identical when the gradient source changes.
    OptResult fd = bfgs(f, {10.0, -10.0});
    EXPECT_EQ(r.evaluations, fd.evaluations);
    EXPECT_EQ(r.iterations, fd.iterations);
}

TEST(Bfgs, AnalyticGradientMatchesFdOnRosenbrock)
{
    Objective f = [](const std::vector<double> &x) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    Gradient g = [](const std::vector<double> &x,
                    std::vector<double> &grad) {
        double b = x[1] - x[0] * x[0];
        grad[0] = -2.0 * (1.0 - x[0]) - 400.0 * x[0] * b;
        grad[1] = 200.0 * b;
    };
    OptResult an = bfgs(f, g, {-1.2, 1.0});
    OptResult fd = bfgs(f, {-1.2, 1.0});
    EXPECT_NEAR(an.x[0], 1.0, 1e-3);
    EXPECT_NEAR(an.x[1], 1.0, 1e-3);
    // Both paths land on the same optimum.
    EXPECT_NEAR(an.x[0], fd.x[0], 1e-3);
    EXPECT_NEAR(an.x[1], fd.x[1], 1e-3);
}

TEST(Bfgs, AnalyticGradientEmptyStartThrows)
{
    Objective f = [](const std::vector<double> &) { return 0.0; };
    Gradient g = [](const std::vector<double> &,
                    std::vector<double> &) {};
    EXPECT_THROW(bfgs(f, g, {}), UcxError);
}

TEST(Bfgs, StartsAtOptimum)
{
    Objective f = [](const std::vector<double> &x) {
        return x[0] * x[0];
    };
    OptResult r = bfgs(f, {0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 0.0, 1e-8);
}

TEST(Bfgs, EmptyStartThrows)
{
    Objective f = [](const std::vector<double> &) { return 0.0; };
    EXPECT_THROW(bfgs(f, {}), UcxError);
}

} // namespace
} // namespace ucx
