#include <cmath>

#include <gtest/gtest.h>

#include "opt/nelder_mead.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(NelderMead, QuadraticBowl)
{
    Objective f = [](const std::vector<double> &x) {
        return (x[0] - 3.0) * (x[0] - 3.0) +
               2.0 * (x[1] + 1.0) * (x[1] + 1.0);
    };
    OptResult r = nelderMead(f, {0.0, 0.0});
    EXPECT_NEAR(r.x[0], 3.0, 1e-5);
    EXPECT_NEAR(r.x[1], -1.0, 1e-5);
    EXPECT_LT(r.fx, 1e-8);
}

TEST(NelderMead, Rosenbrock2d)
{
    Objective f = [](const std::vector<double> &x) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    OptResult r = nelderMead(f, {-1.2, 1.0});
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
    EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, OneDimensional)
{
    Objective f = [](const std::vector<double> &x) {
        return std::cosh(x[0] - 0.5);
    };
    OptResult r = nelderMead(f, {5.0});
    EXPECT_NEAR(r.x[0], 0.5, 1e-5);
}

TEST(NelderMead, HandlesInfiniteRegions)
{
    // Objective returns +inf outside a valid region; the simplex
    // must still find the constrained minimum.
    Objective f = [](const std::vector<double> &x) {
        if (x[0] <= 0.0)
            return std::numeric_limits<double>::infinity();
        return x[0] - std::log(x[0]); // min at x = 1
    };
    OptResult r = nelderMead(f, {4.0});
    EXPECT_NEAR(r.x[0], 1.0, 1e-4);
}

TEST(NelderMead, RespectsEvaluationBudget)
{
    size_t calls = 0;
    Objective f = [&](const std::vector<double> &x) {
        ++calls;
        return x[0] * x[0];
    };
    NelderMeadConfig cfg;
    cfg.maxEvaluations = 50;
    nelderMead(f, {100.0}, cfg);
    EXPECT_LE(calls, 52u); // initial simplex may add a couple
}

TEST(NelderMead, EmptyStartThrows)
{
    Objective f = [](const std::vector<double> &) { return 0.0; };
    EXPECT_THROW(nelderMead(f, {}), UcxError);
}

TEST(NelderMead, FiveDimensionalSphere)
{
    Objective f = [](const std::vector<double> &x) {
        double s = 0.0;
        for (size_t i = 0; i < x.size(); ++i) {
            double d = x[i] - static_cast<double>(i);
            s += d * d;
        }
        return s;
    };
    OptResult r = nelderMead(f, std::vector<double>(5, 10.0));
    for (size_t i = 0; i < 5; ++i)
        EXPECT_NEAR(r.x[i], static_cast<double>(i), 1e-3);
}

} // namespace
} // namespace ucx
