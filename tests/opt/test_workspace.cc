/**
 * @file
 * Thread-local fit-workspace pool tests: per-thread isolation,
 * grow-only reuse, and a hammer test across an ExecContext pool
 * (included in the tsan preset's filter via the "Workspace" name).
 */

#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "exec/context.hh"
#include "opt/workspace.hh"

namespace ucx
{
namespace
{

TEST(Workspace, EnsureGrowsOnceAndReuses)
{
    FitWorkspace ws;
    EXPECT_EQ(ws.growths, 0u);

    ws.ensure(16, 4);
    EXPECT_GE(ws.lin.size(), 16u);
    EXPECT_GE(ws.resid.size(), 16u);
    EXPECT_GE(ws.coef.size(), 16u);
    EXPECT_GE(ws.theta.size(), 4u);
    EXPECT_GE(ws.grad.size(), 4u);
    uint64_t after_first = ws.growths;
    EXPECT_GT(after_first, 0u);

    // Same or smaller sizes: no buffer moves, no growth counted.
    ws.ensure(16, 4);
    ws.ensure(8, 2);
    EXPECT_EQ(ws.growths, after_first);

    // Larger: grows again, keeps capacity monotone.
    ws.ensure(32, 4);
    EXPECT_GT(ws.growths, after_first);
    EXPECT_GE(ws.lin.size(), 32u);
}

TEST(Workspace, ThreadSlotIsStable)
{
    FitWorkspace &a = threadFitWorkspace();
    FitWorkspace &b = threadFitWorkspace();
    EXPECT_EQ(&a, &b);
}

TEST(Workspace, PoolWorkersGetDistinctSlots)
{
    ExecContext ctx = ExecContext::withThreads(4);
    std::vector<FitWorkspace *> slots =
        ctx.parallelMap(64, [](size_t) {
            FitWorkspace &ws = threadFitWorkspace();
            ws.ensure(64, 8);
            return &ws;
        });

    // Every task saw a live slot; distinct threads saw distinct
    // slots (at most pool-size + caller distinct addresses).
    std::set<FitWorkspace *> distinct(slots.begin(), slots.end());
    EXPECT_GE(distinct.size(), 1u);
    EXPECT_LE(distinct.size(), 5u);
    for (FitWorkspace *ws : slots)
        ASSERT_NE(ws, nullptr);
}

TEST(Workspace, HammerAcrossPoolNoContention)
{
    // Many concurrent writers into their thread-local buffers; tsan
    // (which runs this via the Workspace filter) must see no races,
    // and each task's scratch writes must be self-consistent.
    ExecContext ctx = ExecContext::withThreads(8);
    std::vector<int> ok = ctx.parallelMap(256, [](size_t i) {
        FitWorkspace &ws = threadFitWorkspace();
        ws.ensure(128, 8);
        double stamp = static_cast<double>(i + 1);
        for (size_t j = 0; j < 128; ++j)
            ws.lin[j] = stamp;
        for (size_t j = 0; j < 128; ++j)
            ws.resid[j] = ws.lin[j] * 2.0;
        for (size_t j = 0; j < 128; ++j)
            if (ws.resid[j] != stamp * 2.0)
                return 0;
        return 1;
    });
    for (int v : ok)
        EXPECT_EQ(v, 1);
}

TEST(Workspace, PoolStatsCountThreadsAndGrowths)
{
    WorkspacePoolStats before = workspacePoolStats();
    FitWorkspace &ws = threadFitWorkspace();
    // Force at least one growth past anything earlier tests did.
    ws.ensure(ws.lin.size() + 64, 8);
    WorkspacePoolStats after = workspacePoolStats();
    EXPECT_GE(after.threads, 1u);
    EXPECT_GT(after.growths, before.growths);
    EXPECT_GE(after.threads, before.threads);
}

} // namespace
} // namespace ucx
