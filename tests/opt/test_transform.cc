#include <cmath>

#include <gtest/gtest.h>

#include "opt/transform.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(Transform, SoftplusBasics)
{
    EXPECT_NEAR(softplus(0.0), std::log(2.0), 1e-12);
    EXPECT_NEAR(softplus(100.0), 100.0, 1e-9);
    EXPECT_GT(softplus(-100.0), 0.0);
    EXPECT_LT(softplus(-100.0), 1e-20);
}

TEST(Transform, SoftplusInverseRoundTrip)
{
    for (double y : {0.01, 0.5, 1.0, 5.0, 50.0})
        EXPECT_NEAR(softplus(softplusInv(y)), y, 1e-9);
    EXPECT_THROW(softplusInv(0.0), UcxError);
}

TEST(Transform, PositiveRoundTrip)
{
    ParamTransform t({Constraint::Positive, Constraint::Positive});
    std::vector<double> theta = {0.25, 3.0};
    std::vector<double> u = t.toUnconstrained(theta);
    std::vector<double> back = t.toConstrained(u);
    EXPECT_NEAR(back[0], 0.25, 1e-12);
    EXPECT_NEAR(back[1], 3.0, 1e-12);
}

TEST(Transform, PositiveAlwaysPositive)
{
    ParamTransform t({Constraint::Positive});
    for (double u : {-50.0, -1.0, 0.0, 1.0, 50.0})
        EXPECT_GT(t.toConstrained({u})[0], 0.0);
}

TEST(Transform, NoneIsIdentity)
{
    ParamTransform t({Constraint::None});
    EXPECT_DOUBLE_EQ(t.toConstrained({-7.5})[0], -7.5);
    EXPECT_DOUBLE_EQ(t.toUnconstrained({-7.5})[0], -7.5);
}

TEST(Transform, NonNegativeRoundTrip)
{
    ParamTransform t({Constraint::NonNegative});
    for (double y : {0.001, 0.1, 1.0, 10.0}) {
        auto u = t.toUnconstrained({y});
        EXPECT_NEAR(t.toConstrained(u)[0], y, 1e-9);
    }
}

TEST(Transform, MixedConstraints)
{
    ParamTransform t({Constraint::None, Constraint::Positive,
                      Constraint::NonNegative});
    std::vector<double> theta = {-2.0, 0.5, 1.5};
    auto back = t.toConstrained(t.toUnconstrained(theta));
    for (size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(back[i], theta[i], 1e-9);
}

TEST(Transform, RejectsSizeMismatch)
{
    ParamTransform t({Constraint::None});
    EXPECT_THROW(t.toConstrained({1.0, 2.0}), UcxError);
    EXPECT_THROW(t.toUnconstrained({}), UcxError);
}

TEST(Transform, RejectsNonPositiveForPositive)
{
    ParamTransform t({Constraint::Positive});
    EXPECT_THROW(t.toUnconstrained({0.0}), UcxError);
    EXPECT_THROW(t.toUnconstrained({-1.0}), UcxError);
}

} // namespace
} // namespace ucx
