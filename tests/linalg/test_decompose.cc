#include <cmath>

#include <gtest/gtest.h>

#include "linalg/decompose.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

Matrix
randomSpd(size_t n, uint64_t seed)
{
    // A A^T + n I is symmetric positive definite.
    Rng rng(seed);
    Matrix a(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1.0, 1.0);
    Matrix spd = matmul(a, a.transposed());
    for (size_t i = 0; i < n; ++i)
        spd(i, i) += static_cast<double>(n);
    return spd;
}

TEST(Cholesky, ReconstructsMatrix)
{
    Matrix a = randomSpd(5, 1);
    Cholesky chol(a);
    Matrix rebuilt = matmul(chol.lower(), chol.lower().transposed());
    EXPECT_LT(maxAbsDiff(rebuilt, a), 1e-10);
}

TEST(Cholesky, SolvesSystem)
{
    Matrix a = randomSpd(6, 2);
    Vector x_true = {1, -2, 3, 0.5, -0.25, 4};
    Vector b = matvec(a, x_true);
    Vector x = Cholesky(a).solve(b);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Cholesky, LogDetMatchesLu)
{
    Matrix a = randomSpd(4, 3);
    double log_det = Cholesky(a).logDet();
    double det = Lu(a).det();
    EXPECT_NEAR(log_det, std::log(det), 1e-9);
}

TEST(Cholesky, RejectsNonSpd)
{
    Matrix a = Matrix::fromRows({{1, 2}, {2, 1}}); // indefinite
    EXPECT_THROW((Cholesky(a)), UcxError);
}

TEST(Cholesky, RejectsNonSquare)
{
    EXPECT_THROW((Cholesky(Matrix(2, 3))), UcxError);
}

TEST(Cholesky, SmallNFastPathBitIdentical)
{
    // n <= 4 takes a stack-buffer elimination; it must reproduce the
    // generic checked-accessor loop to the bit, because fitted
    // variance components feed printed output that is pinned
    // byte-for-byte.
    for (size_t n = 1; n <= 4; ++n) {
        Matrix a = randomSpd(n, 40 + n);

        // Reference: the original generic algorithm, verbatim.
        Matrix ref(n, n);
        for (size_t j = 0; j < n; ++j) {
            double diag = a(j, j);
            for (size_t k = 0; k < j; ++k)
                diag -= ref(j, k) * ref(j, k);
            ASSERT_GT(diag, 0.0);
            ref(j, j) = std::sqrt(diag);
            for (size_t i = j + 1; i < n; ++i) {
                double sum = a(i, j);
                for (size_t k = 0; k < j; ++k)
                    sum -= ref(i, k) * ref(j, k);
                ref(i, j) = sum / ref(j, j);
            }
        }

        Cholesky chol(a);
        for (size_t r = 0; r < n; ++r)
            for (size_t c = 0; c <= r; ++c)
                EXPECT_EQ(chol.lower()(r, c), ref(r, c))
                    << "n=" << n << " (" << r << "," << c << ")";
    }
}

TEST(Cholesky, SmallNSolveBitIdentical)
{
    for (size_t n = 1; n <= 4; ++n) {
        Matrix a = randomSpd(n, 50 + n);
        Vector b(n);
        for (size_t i = 0; i < n; ++i)
            b[i] = 0.25 * static_cast<double>(i + 1);

        Cholesky chol(a);
        Vector x = chol.solve(b);

        // Reference substitutions against the same factor, using the
        // generic checked-accessor order.
        const Matrix &l = chol.lower();
        Vector y(n);
        for (size_t i = 0; i < n; ++i) {
            double sum = b[i];
            for (size_t k = 0; k < i; ++k)
                sum -= l(i, k) * y[k];
            y[i] = sum / l(i, i);
        }
        Vector xref(n);
        for (size_t ii = n; ii-- > 0;) {
            double sum = y[ii];
            for (size_t k = ii + 1; k < n; ++k)
                sum -= l(k, ii) * xref[k];
            xref[ii] = sum / l(ii, ii);
        }

        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(x[i], xref[i]) << "n=" << n << " i=" << i;

        // And the solution actually solves the system.
        Vector back = matvec(a, x);
        for (size_t i = 0; i < n; ++i)
            EXPECT_NEAR(back[i], b[i], 1e-10);
    }
}

TEST(Cholesky, SmallNRejectsNonSpd)
{
    // The fast path keeps the positive-definiteness guard.
    Matrix a = Matrix::fromRows({{1, 2}, {2, 1}});
    EXPECT_THROW((Cholesky(a)), UcxError);
    Matrix z = Matrix::fromRows({{0.0}});
    EXPECT_THROW((Cholesky(z)), UcxError);
}

TEST(Lu, SolvesGeneralSystem)
{
    Matrix a = Matrix::fromRows({{0, 2, 1}, {3, -1, 2}, {1, 1, 1}});
    Vector x_true = {2, -1, 3};
    Vector b = matvec(a, x_true);
    Vector x = Lu(a).solve(b);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Lu, DetOfKnownMatrix)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_NEAR(Lu(a).det(), -2.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal)
{
    Matrix a = Matrix::fromRows({{0, 1}, {1, 0}});
    Vector x = Lu(a).solve({2, 3});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows)
{
    Matrix a = Matrix::fromRows({{1, 2}, {2, 4}});
    EXPECT_THROW((Lu(a)), UcxError);
}

TEST(Qr, SolvesExactSystem)
{
    Matrix a = Matrix::fromRows({{2, 1}, {1, 3}});
    Vector x = Qr(a).solveLeastSquares({5, 10});
    EXPECT_NEAR(2 * x[0] + x[1], 5.0, 1e-10);
    EXPECT_NEAR(x[0] + 3 * x[1], 10.0, 1e-10);
}

TEST(Qr, LeastSquaresMatchesNormalEquations)
{
    // Overdetermined: fit y = b0 + b1 x.
    Matrix x = Matrix::fromRows(
        {{1, 0}, {1, 1}, {1, 2}, {1, 3}, {1, 4}});
    Vector y = {1.1, 2.9, 5.2, 6.8, 9.1};
    Vector beta = Qr(x).solveLeastSquares(y);
    // Normal equations solution.
    Matrix xtx = matmul(x.transposed(), x);
    Vector xty = matvec(x.transposed(), y);
    Vector beta_ne = Cholesky(xtx).solve(xty);
    EXPECT_NEAR(beta[0], beta_ne[0], 1e-9);
    EXPECT_NEAR(beta[1], beta_ne[1], 1e-9);
}

TEST(Qr, FullRankDetection)
{
    Matrix good = Matrix::fromRows({{1, 0}, {0, 1}, {1, 1}});
    EXPECT_TRUE(Qr(good).fullRank());
    Matrix bad = Matrix::fromRows({{1, 2}, {2, 4}, {3, 6}});
    EXPECT_FALSE(Qr(bad).fullRank());
}

TEST(Qr, RandomizedRoundTrip)
{
    Rng rng(9);
    for (int trial = 0; trial < 20; ++trial) {
        size_t m = 4 + rng.below(5);
        size_t n = 2 + rng.below(3);
        Matrix a(m, n);
        for (size_t r = 0; r < m; ++r)
            for (size_t c = 0; c < n; ++c)
                a(r, c) = rng.normal();
        Vector x_true(n);
        for (auto &v : x_true)
            v = rng.normal();
        // Consistent rhs -> exact recovery.
        Vector b = matvec(a, x_true);
        Vector x = Qr(a).solveLeastSquares(b);
        for (size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], x_true[i], 1e-8);
    }
}

} // namespace
} // namespace ucx
