#include <cmath>

#include <gtest/gtest.h>

#include "linalg/decompose.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

Matrix
randomSpd(size_t n, uint64_t seed)
{
    // A A^T + n I is symmetric positive definite.
    Rng rng(seed);
    Matrix a(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1.0, 1.0);
    Matrix spd = matmul(a, a.transposed());
    for (size_t i = 0; i < n; ++i)
        spd(i, i) += static_cast<double>(n);
    return spd;
}

TEST(Cholesky, ReconstructsMatrix)
{
    Matrix a = randomSpd(5, 1);
    Cholesky chol(a);
    Matrix rebuilt = matmul(chol.lower(), chol.lower().transposed());
    EXPECT_LT(maxAbsDiff(rebuilt, a), 1e-10);
}

TEST(Cholesky, SolvesSystem)
{
    Matrix a = randomSpd(6, 2);
    Vector x_true = {1, -2, 3, 0.5, -0.25, 4};
    Vector b = matvec(a, x_true);
    Vector x = Cholesky(a).solve(b);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Cholesky, LogDetMatchesLu)
{
    Matrix a = randomSpd(4, 3);
    double log_det = Cholesky(a).logDet();
    double det = Lu(a).det();
    EXPECT_NEAR(log_det, std::log(det), 1e-9);
}

TEST(Cholesky, RejectsNonSpd)
{
    Matrix a = Matrix::fromRows({{1, 2}, {2, 1}}); // indefinite
    EXPECT_THROW((Cholesky(a)), UcxError);
}

TEST(Cholesky, RejectsNonSquare)
{
    EXPECT_THROW((Cholesky(Matrix(2, 3))), UcxError);
}

TEST(Lu, SolvesGeneralSystem)
{
    Matrix a = Matrix::fromRows({{0, 2, 1}, {3, -1, 2}, {1, 1, 1}});
    Vector x_true = {2, -1, 3};
    Vector b = matvec(a, x_true);
    Vector x = Lu(a).solve(b);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Lu, DetOfKnownMatrix)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_NEAR(Lu(a).det(), -2.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal)
{
    Matrix a = Matrix::fromRows({{0, 1}, {1, 0}});
    Vector x = Lu(a).solve({2, 3});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows)
{
    Matrix a = Matrix::fromRows({{1, 2}, {2, 4}});
    EXPECT_THROW((Lu(a)), UcxError);
}

TEST(Qr, SolvesExactSystem)
{
    Matrix a = Matrix::fromRows({{2, 1}, {1, 3}});
    Vector x = Qr(a).solveLeastSquares({5, 10});
    EXPECT_NEAR(2 * x[0] + x[1], 5.0, 1e-10);
    EXPECT_NEAR(x[0] + 3 * x[1], 10.0, 1e-10);
}

TEST(Qr, LeastSquaresMatchesNormalEquations)
{
    // Overdetermined: fit y = b0 + b1 x.
    Matrix x = Matrix::fromRows(
        {{1, 0}, {1, 1}, {1, 2}, {1, 3}, {1, 4}});
    Vector y = {1.1, 2.9, 5.2, 6.8, 9.1};
    Vector beta = Qr(x).solveLeastSquares(y);
    // Normal equations solution.
    Matrix xtx = matmul(x.transposed(), x);
    Vector xty = matvec(x.transposed(), y);
    Vector beta_ne = Cholesky(xtx).solve(xty);
    EXPECT_NEAR(beta[0], beta_ne[0], 1e-9);
    EXPECT_NEAR(beta[1], beta_ne[1], 1e-9);
}

TEST(Qr, FullRankDetection)
{
    Matrix good = Matrix::fromRows({{1, 0}, {0, 1}, {1, 1}});
    EXPECT_TRUE(Qr(good).fullRank());
    Matrix bad = Matrix::fromRows({{1, 2}, {2, 4}, {3, 6}});
    EXPECT_FALSE(Qr(bad).fullRank());
}

TEST(Qr, RandomizedRoundTrip)
{
    Rng rng(9);
    for (int trial = 0; trial < 20; ++trial) {
        size_t m = 4 + rng.below(5);
        size_t n = 2 + rng.below(3);
        Matrix a(m, n);
        for (size_t r = 0; r < m; ++r)
            for (size_t c = 0; c < n; ++c)
                a(r, c) = rng.normal();
        Vector x_true(n);
        for (auto &v : x_true)
            v = rng.normal();
        // Consistent rhs -> exact recovery.
        Vector b = matvec(a, x_true);
        Vector x = Qr(a).solveLeastSquares(b);
        for (size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], x_true[i], 1e-8);
    }
}

} // namespace
} // namespace ucx
