#include <gtest/gtest.h>

#include "linalg/matrix.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(Matrix, ConstructAndIndex)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 0) = 7.0;
    EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
}

TEST(Matrix, FromRows)
{
    Matrix m = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, FromRowsRaggedThrows)
{
    EXPECT_THROW(Matrix::fromRows({{1, 2}, {3}}), UcxError);
}

TEST(Matrix, Identity)
{
    Matrix id = Matrix::identity(3);
    for (size_t r = 0; r < 3; ++r)
        for (size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Transpose)
{
    Matrix m = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(Matrix, IndexOutOfRangePanics)
{
    Matrix m(2, 2);
    EXPECT_THROW(m(2, 0), UcxPanic);
    EXPECT_THROW(m(0, 2), UcxPanic);
}

TEST(Matrix, Matmul)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    Matrix c = matmul(a, b);
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulDimensionMismatchThrows)
{
    Matrix a(2, 3);
    Matrix b(2, 3);
    EXPECT_THROW(matmul(a, b), UcxError);
}

TEST(Matrix, MatmulIdentityIsNoop)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_DOUBLE_EQ(maxAbsDiff(matmul(a, Matrix::identity(2)), a),
                     0.0);
    EXPECT_DOUBLE_EQ(maxAbsDiff(matmul(Matrix::identity(2), a), a),
                     0.0);
}

TEST(Matrix, Matvec)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Vector x = {1, 1};
    Vector y = matvec(a, x);
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Vector, Arithmetic)
{
    Vector a = {1, 2, 3};
    Vector b = {4, 5, 6};
    Vector sum = add(a, b);
    Vector diff = sub(b, a);
    EXPECT_DOUBLE_EQ(sum[2], 9.0);
    EXPECT_DOUBLE_EQ(diff[0], 3.0);
    EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
    EXPECT_DOUBLE_EQ(norm(Vector{3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(maxAbs(Vector{-7, 2}), 7.0);
    Vector s = scale(a, 2.0);
    EXPECT_DOUBLE_EQ(s[1], 4.0);
}

TEST(Vector, SizeMismatchThrows)
{
    EXPECT_THROW(add(Vector{1}, Vector{1, 2}), UcxError);
    EXPECT_THROW(dot(Vector{1}, Vector{1, 2}), UcxError);
}

TEST(Matrix, AddAndScale)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix b = add(a, scale(a, 1.0));
    EXPECT_DOUBLE_EQ(b(1, 1), 8.0);
}

} // namespace
} // namespace ucx
