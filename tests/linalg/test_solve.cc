#include <gtest/gtest.h>

#include "linalg/solve.hh"

namespace ucx
{
namespace
{

TEST(Solve, LinearAgainstKnown)
{
    Matrix a = Matrix::fromRows({{4, 1}, {1, 3}});
    // b = A * (2, 1).
    Vector x = solveLinear(a, {9, 5});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Solve, SpdMatchesLinear)
{
    Matrix a = Matrix::fromRows({{5, 2}, {2, 3}});
    Vector b = {1, 2};
    Vector x1 = solveLinear(a, b);
    Vector x2 = solveSpd(a, b);
    EXPECT_NEAR(x1[0], x2[0], 1e-10);
    EXPECT_NEAR(x1[1], x2[1], 1e-10);
}

TEST(Solve, LeastSquaresResidualOrthogonal)
{
    Matrix x = Matrix::fromRows({{1, 0}, {1, 1}, {1, 2}});
    Vector y = {0.0, 1.1, 1.9};
    Vector beta = leastSquares(x, y);
    // Residual must be orthogonal to the column space.
    Vector fit = matvec(x, beta);
    Vector resid = sub(y, fit);
    Vector xtres = matvec(x.transposed(), resid);
    EXPECT_NEAR(maxAbs(xtres), 0.0, 1e-10);
}

TEST(Solve, InverseTimesMatrixIsIdentity)
{
    Matrix a = Matrix::fromRows({{2, 1, 0}, {1, 3, 1}, {0, 1, 4}});
    Matrix inv = inverse(a);
    Matrix prod = matmul(a, inv);
    EXPECT_LT(maxAbsDiff(prod, Matrix::identity(3)), 1e-10);
}

} // namespace
} // namespace ucx
