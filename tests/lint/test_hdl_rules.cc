#include <gtest/gtest.h>

#include <string>

#include "hdl/design.hh"
#include "lint/lint.hh"

namespace ucx
{
namespace
{

/** Parse one fixture and run the AST rules. */
LintReport
lintSrc(const std::string &src)
{
    Design design;
    design.addSource(src, "fixture.v");
    return lintModules(design, "fixture");
}

/** Parse one fixture and lint it end to end (default options). */
LintReport
lintFull(const std::string &src, const std::string &top)
{
    Design design;
    design.addSource(src, "fixture.v");
    return lintHdlDesign(design, top, "fixture");
}

size_t
countRule(const LintReport &report, const std::string &rule)
{
    size_t n = 0;
    for (const LintDiagnostic &d : report.diagnostics())
        if (d.rule == rule)
            ++n;
    return n;
}

const LintDiagnostic *
findRule(const LintReport &report, const std::string &rule)
{
    for (const LintDiagnostic &d : report.diagnostics())
        if (d.rule == rule)
            return &d;
    return nullptr;
}

// ------------------------------------------------- hdl.undriven

TEST(HdlLint, UndrivenFires)
{
    LintReport r = lintSrc(
        "module m (input wire a, output wire y);\n"
        "  wire b;\n"
        "  assign y = a & b;\n"
        "endmodule\n");
    const LintDiagnostic *d = findRule(r, "hdl.undriven");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->object, "m.b");
    EXPECT_EQ(d->severity, LintSeverity::Warning);
}

TEST(HdlLint, UndrivenSilentWhenDriven)
{
    LintReport r = lintSrc(
        "module m (input wire a, output wire y);\n"
        "  wire b;\n"
        "  assign b = ~a;\n"
        "  assign y = a & b;\n"
        "endmodule\n");
    EXPECT_EQ(countRule(r, "hdl.undriven"), 0u);
}

TEST(HdlLint, GenerateIndexedAssignCountsAsDriver)
{
    // Regression: the Index lvalue keeps its base signal in the
    // nested expression, not in the node's own name. z must not be
    // reported undriven and g must count as read.
    LintReport r = lintSrc(
        "module m (input wire [3:0] a, output wire y);\n"
        "  wire [3:0] z;\n"
        "  genvar g;\n"
        "  generate\n"
        "    for (g = 0; g < 4; g = g + 1) begin : lane\n"
        "      assign z[g] = ~a[g];\n"
        "    end\n"
        "  endgenerate\n"
        "  assign y = z[0] & z[1] & z[2] & z[3];\n"
        "endmodule\n");
    EXPECT_EQ(countRule(r, "hdl.undriven"), 0u) << r.text();
    EXPECT_EQ(countRule(r, "hdl.unused"), 0u) << r.text();
}

// --------------------------------------------------- hdl.unused

TEST(HdlLint, UnusedFires)
{
    LintReport r = lintSrc(
        "module m (input wire a, output wire y);\n"
        "  wire b;\n"
        "  assign b = ~a;\n"
        "  assign y = a;\n"
        "endmodule\n");
    const LintDiagnostic *d = findRule(r, "hdl.unused");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->object, "m.b");
}

TEST(HdlLint, UnusedSilentForOutputsAndReads)
{
    LintReport r = lintSrc(
        "module m (input wire a, output wire y);\n"
        "  wire b;\n"
        "  assign b = ~a;\n"
        "  assign y = b;\n"
        "endmodule\n");
    EXPECT_EQ(countRule(r, "hdl.unused"), 0u);
}

// --------------------------------------------- hdl.multi-driven

TEST(HdlLint, MultiDrivenFiresOnTwoWholeDrivers)
{
    LintReport r = lintSrc(
        "module m (input wire a, input wire b, output wire y);\n"
        "  assign y = a;\n"
        "  assign y = b;\n"
        "endmodule\n");
    const LintDiagnostic *d = findRule(r, "hdl.multi-driven");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->object, "m.y");
    EXPECT_EQ(d->severity, LintSeverity::Error);
}

TEST(HdlLint, MultiDrivenFiresOnRegWithContinuousDriver)
{
    LintReport r = lintSrc(
        "module m (input wire clk, input wire a, output wire y);\n"
        "  reg r;\n"
        "  always @(posedge clk) r <= a;\n"
        "  assign r = ~a;\n"
        "  assign y = r;\n"
        "endmodule\n");
    EXPECT_GE(countRule(r, "hdl.multi-driven"), 1u) << r.text();
}

TEST(HdlLint, MultiDrivenSilentOnDisjointFieldDrivers)
{
    LintReport r = lintSrc(
        "module m (input wire a, input wire b,\n"
        "          output wire [1:0] y);\n"
        "  assign y[0] = a;\n"
        "  assign y[1] = b;\n"
        "endmodule\n");
    EXPECT_EQ(countRule(r, "hdl.multi-driven"), 0u) << r.text();
}

// ------------------------------------------- hdl.width-mismatch

TEST(HdlLint, WidthMismatchTruncationIsWarning)
{
    LintReport r = lintSrc(
        "module m (input wire [7:0] a, output wire [3:0] y);\n"
        "  assign y = a;\n"
        "endmodule\n");
    const LintDiagnostic *d = findRule(r, "hdl.width-mismatch");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, LintSeverity::Warning);
    EXPECT_NE(d->message.find("truncates"), std::string::npos);
}

TEST(HdlLint, WidthMismatchZeroExtensionIsNote)
{
    LintReport r = lintSrc(
        "module m (input wire [3:0] a, output wire [7:0] y);\n"
        "  assign y = a;\n"
        "endmodule\n");
    const LintDiagnostic *d = findRule(r, "hdl.width-mismatch");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, LintSeverity::Note);
}

TEST(HdlLint, WidthMismatchSilentOnEqualWidthsAndMemoryWords)
{
    // Regression: a memory word select is the element width, not a
    // single bit.
    LintReport r = lintSrc(
        "module m (input wire clk, input wire [1:0] i,\n"
        "          input wire [7:0] d, output wire [7:0] y);\n"
        "  reg [7:0] mem [0:3];\n"
        "  always @(posedge clk) mem[i] <= d;\n"
        "  assign y = mem[i];\n"
        "endmodule\n");
    EXPECT_EQ(countRule(r, "hdl.width-mismatch"), 0u) << r.text();
}

// ------------------------------------------- hdl.inferred-latch

TEST(HdlLint, InferredLatchFires)
{
    LintReport r = lintSrc(
        "module m (input wire sel, input wire a,\n"
        "          output reg y);\n"
        "  always @(*) begin\n"
        "    if (sel) y = a;\n"
        "  end\n"
        "endmodule\n");
    const LintDiagnostic *d = findRule(r, "hdl.inferred-latch");
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("'y'"), std::string::npos);
}

TEST(HdlLint, InferredLatchSilentWithFullPaths)
{
    LintReport r = lintSrc(
        "module m (input wire sel, input wire a, input wire b,\n"
        "          output reg y);\n"
        "  always @(*) begin\n"
        "    if (sel) y = a;\n"
        "    else y = b;\n"
        "  end\n"
        "endmodule\n");
    EXPECT_EQ(countRule(r, "hdl.inferred-latch"), 0u) << r.text();
}

TEST(HdlLint, InferredLatchSilentInSequentialBlocks)
{
    LintReport r = lintSrc(
        "module m (input wire clk, input wire sel, input wire a,\n"
        "          output reg y);\n"
        "  always @(posedge clk) begin\n"
        "    if (sel) y <= a;\n"
        "  end\n"
        "endmodule\n");
    EXPECT_EQ(countRule(r, "hdl.inferred-latch"), 0u) << r.text();
}

// ------------------------------------------ hdl.const-condition

TEST(HdlLint, ConstConditionFires)
{
    LintReport r = lintSrc(
        "module m (input wire a, input wire b, output reg y);\n"
        "  always @(*) begin\n"
        "    if (1'b1) y = a;\n"
        "    else y = b;\n"
        "  end\n"
        "endmodule\n");
    EXPECT_GE(countRule(r, "hdl.const-condition"), 1u) << r.text();
}

TEST(HdlLint, ConstConditionSilentOnLiveConditions)
{
    LintReport r = lintSrc(
        "module m (input wire sel, input wire a, input wire b,\n"
        "          output reg y);\n"
        "  always @(*) begin\n"
        "    if (sel) y = a;\n"
        "    else y = b;\n"
        "  end\n"
        "endmodule\n");
    EXPECT_EQ(countRule(r, "hdl.const-condition"), 0u) << r.text();
}

// ------------------------------------------------ hdl.comb-loop

TEST(HdlLint, CombLoopFires)
{
    LintReport r = lintFull(
        "module m (input wire a, output wire y);\n"
        "  wire p;\n"
        "  wire q;\n"
        "  assign p = q & a;\n"
        "  assign q = p | a;\n"
        "  assign y = q;\n"
        "endmodule\n",
        "m");
    const LintDiagnostic *d = findRule(r, "hdl.comb-loop");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->severity, LintSeverity::Error);
    EXPECT_NE(d->message.find("->"), std::string::npos);
    EXPECT_TRUE(r.hasError());
}

TEST(HdlLint, CombLoopSilentOnAcyclicLogic)
{
    LintReport r = lintFull(
        "module m (input wire a, input wire b, output wire y);\n"
        "  wire p;\n"
        "  assign p = a & b;\n"
        "  assign y = p | a;\n"
        "endmodule\n",
        "m");
    EXPECT_EQ(countRule(r, "hdl.comb-loop"), 0u) << r.text();
}

TEST(HdlLint, CombLoopSilentOnSelfReferentialRippleChain)
{
    // Regression: a word-level self-reference whose bit-level
    // dependency graph is acyclic (each slice depends only on lower
    // bits of the same signal) is legal and must not be flagged.
    LintReport r = lintFull(
        "module m (input wire [3:0] a, output wire y);\n"
        "  wire [4:0] c;\n"
        "  assign c[0] = 1'b0;\n"
        "  genvar g;\n"
        "  generate\n"
        "    for (g = 0; g < 4; g = g + 1) begin : rip\n"
        "      assign c[g+1] = c[g] | a[g];\n"
        "    end\n"
        "  endgenerate\n"
        "  assign y = c[4];\n"
        "endmodule\n",
        "m");
    EXPECT_EQ(countRule(r, "hdl.comb-loop"), 0u) << r.text();
    EXPECT_FALSE(r.hasError()) << r.text();
}

// ----------------------------------------------- hdl.elab-error

TEST(HdlLint, ElabErrorReplacesThrow)
{
    LintReport r = lintFull(
        "module m (input wire a, output wire y);\n"
        "  missing u0 (.x(a), .y(y));\n"
        "endmodule\n",
        "m");
    const LintDiagnostic *d = findRule(r, "hdl.elab-error");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->severity, LintSeverity::Error);
}

TEST(HdlLint, ElabErrorSilentOnCleanDesign)
{
    LintReport r = lintFull(
        "module m (input wire a, output wire y);\n"
        "  assign y = ~a;\n"
        "endmodule\n",
        "m");
    EXPECT_EQ(countRule(r, "hdl.elab-error"), 0u) << r.text();
}

// ---------------------------------- elaboration-warning mapping

TEST(HdlLint, ElabWarningsMapToRules)
{
    LintReport r = lintElabWarnings(
        {"input port 'en' of instance 'u0' is unconnected (tied "
         "to 0)",
         "wire 'w' is undriven (tied to 0)",
         "register 'r' is never assigned",
         "something else entirely"},
        "fixture");
    const LintDiagnostic *port =
        findRule(r, "hdl.unconnected-input");
    ASSERT_NE(port, nullptr);
    EXPECT_EQ(port->object, "u0.en");
    EXPECT_EQ(countRule(r, "hdl.undriven"), 2u);
    EXPECT_EQ(countRule(r, "hdl.elab-warning"), 1u);
}

TEST(HdlLint, UnconnectedInputFiresEndToEnd)
{
    LintReport r = lintFull(
        "module leaf (input wire a, input wire en,\n"
        "             output wire y);\n"
        "  assign y = a & en;\n"
        "endmodule\n"
        "module m (input wire a, output wire y);\n"
        "  leaf u0 (.a(a), .y(y));\n"
        "endmodule\n",
        "m");
    const LintDiagnostic *d = findRule(r, "hdl.unconnected-input");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->object, "u0.en");
}

// ----------------------------------------------- hdl.dead-logic

TEST(HdlLint, DeadLogicNoteOnUnreachableCone)
{
    // Gate lowering materializes every bit of a logic operator, so
    // the adder's upper-bit gates exist in the netlist but reach no
    // output once only t[0] is consumed.
    LintReport r = lintFull(
        "module m (input wire [3:0] a, input wire [3:0] b,\n"
        "          output wire y);\n"
        "  wire [3:0] t;\n"
        "  assign t = a + b;\n"
        "  assign y = t[0];\n"
        "endmodule\n",
        "m");
    const LintDiagnostic *d = findRule(r, "hdl.dead-logic");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->severity, LintSeverity::Note);
}

TEST(HdlLint, DeadLogicSilentWhenEverythingReachesOutputs)
{
    LintReport r = lintFull(
        "module m (input wire a, input wire b, output wire y);\n"
        "  wire t;\n"
        "  assign t = a ^ b;\n"
        "  assign y = t & a;\n"
        "endmodule\n",
        "m");
    EXPECT_EQ(countRule(r, "hdl.dead-logic"), 0u) << r.text();
}

// ------------------------------------------------- full report

TEST(HdlLint, FullReportIsCanonicallySorted)
{
    Design design;
    design.addSource(
        "module m (input wire a, output wire y);\n"
        "  wire u;\n"
        "  wire v;\n"
        "  assign u = ~a;\n"
        "  assign v = ~a;\n"
        "  assign y = a;\n"
        "endmodule\n",
        "fixture.v");
    LintReport r = lintHdlDesign(design, "m", "fixture");
    ASSERT_GE(r.size(), 2u);
    for (size_t i = 1; i < r.size(); ++i) {
        const LintDiagnostic &p = r.diagnostics()[i - 1];
        const LintDiagnostic &q = r.diagnostics()[i];
        EXPECT_GE(static_cast<int>(p.severity),
                  static_cast<int>(q.severity));
    }
}

} // namespace
} // namespace ucx
