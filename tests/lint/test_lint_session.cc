#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "engine/session.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

Design
combLoopDesign()
{
    Design design;
    design.addSource(
        "module m (input wire a, output wire y);\n"
        "  wire p;\n"
        "  wire q;\n"
        "  assign p = q & a;\n"
        "  assign q = p | a;\n"
        "  assign y = q;\n"
        "endmodule\n",
        "fixture.v");
    return design;
}

Component
makeComponent(const std::string &project, const std::string &name,
              double effort, double stmts, double loc)
{
    Component c;
    c.project = project;
    c.name = name;
    c.effort = effort;
    c.metrics.fill(1.0);
    c.metrics[static_cast<size_t>(Metric::Stmts)] = stmts;
    c.metrics[static_cast<size_t>(Metric::LoC)] = loc;
    return c;
}

TEST(SessionLint, FromEnvHonorsUcxLint)
{
    ::setenv("UCX_LINT", "0", 1);
    EXPECT_FALSE(SessionConfig::fromEnv().lintEnabled);
    ::setenv("UCX_LINT", "1", 1);
    EXPECT_TRUE(SessionConfig::fromEnv().lintEnabled);
    ::unsetenv("UCX_LINT");
    EXPECT_TRUE(SessionConfig::fromEnv().lintEnabled);
}

TEST(SessionLint, LintFacadeReportsAndRepeats)
{
    EstimationSession session;
    Design design = combLoopDesign();
    LintReport first = session.lint(design, "m", "fixture");
    EXPECT_TRUE(first.hasError());
    const LintDiagnostic *d =
        first.firstAtLeast(LintSeverity::Error);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->rule, "hdl.comb-loop");
    // Second run goes through the artifact cache; same report.
    LintReport second = session.lint(design, "m", "fixture");
    EXPECT_EQ(second.text(), first.text());
}

TEST(SessionLint, MeasureFailsEarlyNamingTheRule)
{
    EstimationSession session;
    Design design = combLoopDesign();
    try {
        session.measure(design, "m");
        FAIL() << "measure() accepted a combinational loop";
    } catch (const UcxError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("component 'm'"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("lint [hdl.comb-loop]"),
                  std::string::npos)
            << msg;
    }
}

TEST(SessionLint, MeasureSkipsGateWhenDisabled)
{
    SessionConfig config;
    config.lintEnabled = false;
    EstimationSession session(config, ExecContext());
    Design design = combLoopDesign();
    // The loop still fails, but in the pipeline itself — the error
    // is not a lint finding.
    try {
        session.measure(design, "m");
        FAIL() << "a combinational loop cannot be measured";
    } catch (const UcxError &e) {
        EXPECT_EQ(std::string(e.what()).find("lint ["),
                  std::string::npos)
            << e.what();
    }
}

TEST(SessionLint, MeasureCleanDesignUnaffectedByGate)
{
    Design design;
    design.addSource(
        "module m (input wire clk, input wire [3:0] a,\n"
        "          output reg [3:0] y);\n"
        "  always @(posedge clk) y <= ~a;\n"
        "endmodule\n",
        "fixture.v");
    SessionConfig on;
    SessionConfig off;
    off.lintEnabled = false;
    ComponentMeasurement with =
        EstimationSession(on, ExecContext()).measure(design, "m");
    ComponentMeasurement without =
        EstimationSession(off, ExecContext()).measure(design, "m");
    EXPECT_EQ(with.metrics, without.metrics);
    EXPECT_EQ(with.moduleCounts, without.moduleCounts);
}

TEST(SessionLint, FitFailsEarlyNamingTheRule)
{
    Dataset ds;
    // LoC is exactly 3 * Stmts: |r| = 1, an Error-severity
    // fit.collinear finding.
    ds.add(makeComponent("A", "c1", 4.0, 100.0, 300.0));
    ds.add(makeComponent("A", "c2", 7.0, 220.0, 660.0));
    ds.add(makeComponent("A", "c3", 5.0, 160.0, 480.0));
    EstimatorSpec spec;
    spec.metrics = {Metric::Stmts, Metric::LoC};
    EstimationSession session;
    try {
        session.fitOn(ds, spec);
        FAIL() << "fitOn() accepted perfectly collinear columns";
    } catch (const UcxError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("fit '" + spec.name() + "'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("lint [fit.collinear]"),
                  std::string::npos)
            << msg;
    }
}

TEST(SessionLint, LintFitPublishedDatasetHasNoErrors)
{
    EstimationSession session;
    LintReport r = session.lintFit(session.accountedDataset(),
                                   EstimatorSpec::dee1(),
                                   "accounted");
    EXPECT_FALSE(r.hasError()) << r.text();
    EXPECT_EQ(r.count(LintSeverity::Warning), 0u) << r.text();
}

TEST(SessionLint, BundledDesignsCleanUnderBaseline)
{
    EstimationSession session;
    LintReport report = session.lintAllShipped();
    EXPECT_FALSE(report.hasError()) << report.text();
    // The two genuinely unused flag wires are frozen in
    // tools/lint.baseline; everything else must be warning-free.
    LintSuppressions baseline = LintSuppressions::parse(
        "hdl.unused exec_cluster exec_cluster.n\n"
        "hdl.unused pipeline pipeline.alu_neg\n");
    EXPECT_EQ(baseline.apply(report), 2u) << report.text();
    EXPECT_EQ(report.count(LintSeverity::Warning), 0u)
        << report.text();
}

TEST(SessionLint, ReportsAreThreadCountInvariant)
{
    SessionConfig config;
    EstimationSession serial(config, ExecContext::withThreads(1));
    EstimationSession pooled(config, ExecContext::withThreads(8));
    LintReport a = serial.lintAllShipped();
    LintReport b = pooled.lintAllShipped();
    EXPECT_EQ(a.text(), b.text());
    EXPECT_EQ(a.json(), b.json());
}

} // namespace
} // namespace ucx
