#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "lint/dataset_rules.hh"

namespace ucx
{
namespace
{

size_t
countRule(const LintReport &report, const std::string &rule)
{
    size_t n = 0;
    for (const LintDiagnostic &d : report.diagnostics())
        if (d.rule == rule)
            ++n;
    return n;
}

const LintDiagnostic *
findRule(const LintReport &report, const std::string &rule)
{
    for (const LintDiagnostic &d : report.diagnostics())
        if (d.rule == rule)
            return &d;
    return nullptr;
}

Component
makeComponent(const std::string &project, const std::string &name,
              double effort, double stmts, double loc,
              double fanin)
{
    Component c;
    c.project = project;
    c.name = name;
    c.effort = effort;
    c.metrics.fill(1.0);
    c.metrics[static_cast<size_t>(Metric::Stmts)] = stmts;
    c.metrics[static_cast<size_t>(Metric::LoC)] = loc;
    c.metrics[static_cast<size_t>(Metric::FanInLC)] = fanin;
    return c;
}

/** A healthy three-team dataset with independent columns. */
Dataset
healthyDataset()
{
    Dataset ds;
    ds.add(makeComponent("A", "c1", 4.0, 100.0, 310.0, 50.0));
    ds.add(makeComponent("A", "c2", 7.0, 220.0, 410.0, 95.0));
    ds.add(makeComponent("A", "c3", 5.0, 160.0, 820.0, 20.0));
    ds.add(makeComponent("B", "c1", 9.0, 300.0, 520.0, 140.0));
    ds.add(makeComponent("B", "c2", 3.0, 90.0, 130.0, 260.0));
    ds.add(makeComponent("B", "c3", 6.0, 180.0, 950.0, 70.0));
    return ds;
}

const std::vector<Metric> kThree = {Metric::Stmts, Metric::LoC,
                                    Metric::FanInLC};

// ------------------------------------------------ fit.nonfinite

TEST(FitLint, NonfiniteMetricFiresAndShortCircuits)
{
    Dataset ds = healthyDataset();
    Component bad = makeComponent(
        "C", "c1", 5.0, std::numeric_limits<double>::quiet_NaN(),
        200.0, 30.0);
    ds.add(bad);
    LintReport r = lintFitInputs(ds, kThree,
                                 ZeroPolicy::ClampToOne, "ds");
    const LintDiagnostic *d = findRule(r, "fit.nonfinite");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->object, "C-c1");
    EXPECT_NE(d->message.find("Stmts"), std::string::npos);
    // Non-finite input stops further column analysis.
    EXPECT_EQ(r.size(), countRule(r, "fit.nonfinite"));
}

TEST(FitLint, NonfiniteSilentOnFiniteData)
{
    LintReport r = lintFitInputs(healthyDataset(), kThree,
                                 ZeroPolicy::ClampToOne, "ds");
    EXPECT_EQ(countRule(r, "fit.nonfinite"), 0u) << r.text();
}

// ---------------------------------------------------- fit.empty

TEST(FitLint, EmptyFiresOnNoMetrics)
{
    LintReport r = lintFitInputs(healthyDataset(), {},
                                 ZeroPolicy::ClampToOne, "ds");
    const LintDiagnostic *d = findRule(r, "fit.empty");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, LintSeverity::Error);
}

TEST(FitLint, EmptyFiresWhenZeroPolicyDropsEverything)
{
    Dataset ds;
    ds.add(makeComponent("A", "c1", 4.0, 0.0, 0.0, 0.0));
    ds.add(makeComponent("A", "c2", 6.0, 0.0, 0.0, 0.0));
    LintReport r = lintFitInputs(ds, kThree, ZeroPolicy::Drop,
                                 "ds");
    EXPECT_GE(countRule(r, "fit.empty"), 1u) << r.text();
}

TEST(FitLint, EmptySilentOnUsableDataset)
{
    LintReport r = lintFitInputs(healthyDataset(), kThree,
                                 ZeroPolicy::ClampToOne, "ds");
    EXPECT_EQ(countRule(r, "fit.empty"), 0u) << r.text();
}

// -------------------------------------------- fit.zero-variance

TEST(FitLint, ZeroVarianceFiresOnConstantColumn)
{
    Dataset ds;
    ds.add(makeComponent("A", "c1", 4.0, 100.0, 42.0, 50.0));
    ds.add(makeComponent("A", "c2", 7.0, 220.0, 42.0, 95.0));
    ds.add(makeComponent("A", "c3", 5.0, 160.0, 42.0, 20.0));
    LintReport r = lintFitInputs(ds, kThree,
                                 ZeroPolicy::ClampToOne, "ds");
    const LintDiagnostic *d = findRule(r, "fit.zero-variance");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->object, "LoC");
    EXPECT_EQ(d->severity, LintSeverity::Warning);
}

TEST(FitLint, ZeroVarianceSilentOnVaryingColumns)
{
    LintReport r = lintFitInputs(healthyDataset(), kThree,
                                 ZeroPolicy::ClampToOne, "ds");
    EXPECT_EQ(countRule(r, "fit.zero-variance"), 0u) << r.text();
}

// ------------------------------------------------ fit.collinear

TEST(FitLint, CollinearErrorOnExactMultiple)
{
    Dataset ds;
    ds.add(makeComponent("A", "c1", 4.0, 100.0, 300.0, 50.0));
    ds.add(makeComponent("A", "c2", 7.0, 220.0, 660.0, 95.0));
    ds.add(makeComponent("A", "c3", 5.0, 160.0, 480.0, 20.0));
    // LoC == 3 * Stmts exactly: |r| = 1.
    LintReport r = lintFitInputs(ds,
                                 {Metric::Stmts, Metric::LoC},
                                 ZeroPolicy::ClampToOne, "ds");
    const LintDiagnostic *d = findRule(r, "fit.collinear");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->object, "Stmts/LoC");
    EXPECT_EQ(d->severity, LintSeverity::Error);
}

TEST(FitLint, CollinearWarningOnNearMultiple)
{
    Dataset ds;
    ds.add(makeComponent("A", "c1", 4.0, 100.0, 300.1, 50.0));
    ds.add(makeComponent("A", "c2", 7.0, 220.0, 659.8, 95.0));
    ds.add(makeComponent("A", "c3", 5.0, 160.0, 480.2, 20.0));
    LintReport r = lintFitInputs(ds,
                                 {Metric::Stmts, Metric::LoC},
                                 ZeroPolicy::ClampToOne, "ds");
    const LintDiagnostic *d = findRule(r, "fit.collinear");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->severity, LintSeverity::Warning);
}

TEST(FitLint, CollinearSilentOnIndependentColumns)
{
    LintReport r = lintFitInputs(healthyDataset(), kThree,
                                 ZeroPolicy::ClampToOne, "ds");
    EXPECT_EQ(countRule(r, "fit.collinear"), 0u) << r.text();
}

// ---------------------------------------------- fit.small-group

TEST(FitLint, SmallGroupWarningOnSingletonTeam)
{
    Dataset ds = healthyDataset();
    ds.add(makeComponent("Solo", "c1", 5.0, 140.0, 260.0, 80.0));
    LintReport r = lintFitInputs(ds, kThree,
                                 ZeroPolicy::ClampToOne, "ds");
    const LintDiagnostic *d = findRule(r, "fit.small-group");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->object, "Solo");
    EXPECT_EQ(d->severity, LintSeverity::Warning);
}

TEST(FitLint, SmallGroupNoteOnTwoComponentTeam)
{
    Dataset ds = healthyDataset();
    ds.add(makeComponent("Duo", "c1", 5.0, 140.0, 260.0, 80.0));
    ds.add(makeComponent("Duo", "c2", 8.0, 250.0, 720.0, 170.0));
    LintReport r = lintFitInputs(ds, kThree,
                                 ZeroPolicy::ClampToOne, "ds");
    const LintDiagnostic *d = findRule(r, "fit.small-group");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->object, "Duo");
    EXPECT_EQ(d->severity, LintSeverity::Note);
}

TEST(FitLint, SmallGroupSilentAtSoftMinimum)
{
    LintReport r = lintFitInputs(healthyDataset(), kThree,
                                 ZeroPolicy::ClampToOne, "ds");
    EXPECT_EQ(countRule(r, "fit.small-group"), 0u) << r.text();
}

TEST(FitLint, ThresholdsAreConfigurable)
{
    FitLintOptions strict;
    strict.softMinGroup = 4; // all healthy teams now too small
    LintReport r =
        lintFitInputs(healthyDataset(), kThree,
                      ZeroPolicy::ClampToOne, "ds", strict);
    EXPECT_EQ(countRule(r, "fit.small-group"), 2u) << r.text();
}

} // namespace
} // namespace ucx
