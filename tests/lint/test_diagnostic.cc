#include <gtest/gtest.h>

#include <algorithm>

#include "lint/diagnostic.hh"
#include "obs/metrics.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(LintCatalog, SortedUniqueNonEmpty)
{
    const auto &rules = lintRuleCatalog();
    ASSERT_FALSE(rules.empty());
    for (size_t i = 1; i < rules.size(); ++i)
        EXPECT_LT(rules[i - 1].id, rules[i].id);
    for (const LintRuleInfo &rule : rules) {
        EXPECT_FALSE(rule.summary.empty()) << rule.id;
        EXPECT_TRUE(rule.family == "hdl" || rule.family == "acct" ||
                    rule.family == "fit" || rule.family == "dfa")
            << rule.id;
        EXPECT_EQ(rule.id.rfind(rule.family + ".", 0), 0u)
            << rule.id;
    }
}

TEST(LintCatalog, LookupKnownAndUnknown)
{
    const LintRuleInfo &rule = lintRule("hdl.comb-loop");
    EXPECT_EQ(rule.severity, LintSeverity::Error);
    EXPECT_EQ(rule.family, "hdl");
    EXPECT_THROW(lintRule("hdl.no-such-rule"), UcxError);
}

TEST(LintCatalog, SeverityNamesRoundTrip)
{
    EXPECT_STREQ(lintSeverityName(LintSeverity::Note), "note");
    EXPECT_STREQ(lintSeverityName(LintSeverity::Warning),
                 "warning");
    EXPECT_STREQ(lintSeverityName(LintSeverity::Error), "error");
    EXPECT_EQ(lintSeverityFromName("warning"),
              LintSeverity::Warning);
    EXPECT_EQ(lintSeverityFromName("WARN"), LintSeverity::Warning);
    EXPECT_EQ(lintSeverityFromName("Note"), LintSeverity::Note);
    EXPECT_EQ(lintSeverityFromName("error"), LintSeverity::Error);
    EXPECT_THROW(lintSeverityFromName("fatal"), UcxError);
}

TEST(LintReport, AddTakesCatalogSeverity)
{
    LintReport report;
    report.add("hdl.unused", "d", "m.x", "never read");
    report.add("hdl.comb-loop", "d", "m", "loop");
    report.add("hdl.dead-logic", "d", "netlist", "dead gates");
    ASSERT_EQ(report.size(), 3u);
    EXPECT_EQ(report.diagnostics()[0].severity,
              LintSeverity::Warning);
    EXPECT_EQ(report.diagnostics()[1].severity,
              LintSeverity::Error);
    EXPECT_EQ(report.diagnostics()[2].severity, LintSeverity::Note);
    EXPECT_THROW(report.add("bogus.rule", "d", "o", "m"), UcxError);
}

TEST(LintReport, SortCanonicalOrdersAndDedupes)
{
    LintReport report;
    report.add("hdl.unused", "b", "m.x", "never read");
    report.add("hdl.unused", "a", "m.x", "never read");
    report.add("hdl.comb-loop", "z", "m", "loop");
    report.add("hdl.unused", "b", "m.x", "never read"); // duplicate
    report.sortCanonical();
    ASSERT_EQ(report.size(), 3u);
    // Errors first, then warnings ordered by design.
    EXPECT_EQ(report.diagnostics()[0].rule, "hdl.comb-loop");
    EXPECT_EQ(report.diagnostics()[1].design, "a");
    EXPECT_EQ(report.diagnostics()[2].design, "b");
}

TEST(LintReport, CountFirstAtLeastAndHasError)
{
    LintReport report;
    EXPECT_FALSE(report.hasError());
    EXPECT_EQ(report.firstAtLeast(LintSeverity::Note), nullptr);
    report.add("hdl.dead-logic", "d", "netlist", "note");
    report.add("hdl.unused", "d", "m.x", "warn");
    report.add("hdl.multi-driven", "d", "m.y", "error");
    EXPECT_EQ(report.count(LintSeverity::Note), 3u);
    EXPECT_EQ(report.count(LintSeverity::Warning), 2u);
    EXPECT_EQ(report.count(LintSeverity::Error), 1u);
    EXPECT_TRUE(report.hasError());
    const LintDiagnostic *first =
        report.firstAtLeast(LintSeverity::Error);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->rule, "hdl.multi-driven");
}

TEST(LintReport, KeyUsesDashForEmptyFields)
{
    LintDiagnostic d;
    d.rule = "fit.empty";
    EXPECT_EQ(d.key(), "fit.empty - -");
    d.design = "dataset";
    d.object = "Leon3-IU";
    EXPECT_EQ(d.key(), "fit.empty dataset Leon3-IU");
}

TEST(LintReport, TextListsFindingsAndSummary)
{
    LintReport report;
    EXPECT_EQ(report.text(), "");
    report.add("hdl.unused", "fetch", "fetch.tmp", "never read");
    std::string text = report.text();
    EXPECT_NE(text.find("hdl.unused"), std::string::npos);
    EXPECT_NE(text.find("fetch.tmp"), std::string::npos);
    EXPECT_NE(text.find("1 warning"), std::string::npos);
}

TEST(LintReport, JsonSchemaAndCounts)
{
    LintReport report;
    report.add("hdl.comb-loop", "d", "m", "a -> b -> a");
    report.add("hdl.unused", "d", "m.x", "never read");
    std::string json = report.json();
    EXPECT_NE(json.find("\"schema\":\"ucx.lint.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"error\":1"), std::string::npos);
    EXPECT_NE(json.find("\"warning\":1"), std::string::npos);
    EXPECT_NE(json.find("\"hdl.comb-loop\""), std::string::npos);
}

TEST(LintReport, FilterRemovesAndCounts)
{
    LintReport report;
    report.add("hdl.unused", "d", "m.x", "never read");
    report.add("hdl.undriven", "d", "m.y", "never driven");
    size_t removed = report.filter([](const LintDiagnostic &d) {
        return d.rule != "hdl.unused";
    });
    EXPECT_EQ(removed, 1u);
    ASSERT_EQ(report.size(), 1u);
    EXPECT_EQ(report.diagnostics()[0].rule, "hdl.undriven");
}

TEST(LintReport, MergeAppendsEverything)
{
    LintReport a;
    a.add("hdl.unused", "d", "m.x", "never read");
    LintReport b;
    b.add("hdl.undriven", "d", "m.y", "never driven");
    b.add("hdl.dead-logic", "d", "netlist", "dead");
    a.merge(b);
    EXPECT_EQ(a.size(), 3u);
}

TEST(LintObs, RecordsCountersAndGauge)
{
    bool was = obs::enabled();
    obs::setEnabled(true);
    obs::Counter &c = obs::counter("lint.rule.hdl.unused");
    uint64_t before = c.value();
    LintReport report;
    report.add("hdl.unused", "d", "m.x", "never read");
    report.add("hdl.unused", "d", "m.y", "never read");
    recordLintObs(report);
    EXPECT_EQ(c.value(), before + 2);
    EXPECT_EQ(obs::gauge("lint.findings").value(), 2.0);
    obs::setEnabled(was);
}

} // namespace
} // namespace ucx
