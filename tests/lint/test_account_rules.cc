#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/measure.hh"
#include "hdl/design.hh"
#include "lint/account_rules.hh"

namespace ucx
{
namespace
{

size_t
countRule(const LintReport &report, const std::string &rule)
{
    size_t n = 0;
    for (const LintDiagnostic &d : report.diagnostics())
        if (d.rule == rule)
            ++n;
    return n;
}

const LintDiagnostic *
findRule(const LintReport &report, const std::string &rule)
{
    for (const LintDiagnostic &d : report.diagnostics())
        if (d.rule == rule)
            return &d;
    return nullptr;
}

/** A two-level parameterized fixture with a repeated leaf type. */
Design
paramDesign()
{
    Design design;
    design.addSource(
        "module leaf #(parameter W = 8)\n"
        "    (input wire [W-1:0] a, output wire [W-1:0] y);\n"
        "  assign y = ~a;\n"
        "endmodule\n"
        "module top (input wire [7:0] a, output wire [7:0] y);\n"
        "  wire [7:0] t;\n"
        "  leaf #(.W(8)) u0 (.a(a), .y(t));\n"
        "  leaf #(.W(8)) u1 (.a(t), .y(y));\n"
        "endmodule\n",
        "fixture.v");
    return design;
}

// -------------------------------------- acct.duplicate-type

TEST(AccountLint, DuplicateTypeFiresOnPerInstanceMeasurement)
{
    ComponentMeasurement m;
    m.moduleCounts = {{"leaf", 2}, {"top", 1}};
    // No per-type parameter record: the census was taken per
    // instance, so the repeated leaf type was counted twice.
    LintReport r = lintAccountingMeasurement(paramDesign(), "top",
                                             "fixture", m);
    const LintDiagnostic *d = findRule(r, "acct.duplicate-type");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->object, "leaf");
    EXPECT_EQ(d->severity, LintSeverity::Warning);
}

TEST(AccountLint, DuplicateTypeSilentOnProcedureMeasurement)
{
    Design design = paramDesign();
    ComponentMeasurement m =
        measureComponent(design, "top",
                         AccountingMode::WithProcedure);
    LintReport r =
        lintAccountingMeasurement(design, "top", "fixture", m);
    EXPECT_EQ(countRule(r, "acct.duplicate-type"), 0u) << r.text();
}

// ---------------------------------- acct.non-minimal-params

TEST(AccountLint, NonMinimalParamsFires)
{
    Design design = paramDesign();
    ComponentMeasurement m;
    m.moduleCounts = {{"leaf", 2}, {"top", 1}};
    m.measuredParams["top"] = {};
    m.measuredParams["leaf"] = {{"W", 8}}; // as-written, not minimal
    LintReport r =
        lintAccountingMeasurement(design, "top", "fixture", m);
    const LintDiagnostic *d =
        findRule(r, "acct.non-minimal-params");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->object, "leaf");
    // The message shows both bindings verbatim (cache-key form).
    EXPECT_NE(d->message.find("W=8"), std::string::npos);
}

TEST(AccountLint, NonMinimalParamsSilentOnMinimalBinding)
{
    Design design = paramDesign();
    ComponentMeasurement m;
    m.moduleCounts = {{"leaf", 2}, {"top", 1}};
    m.measuredParams["top"] = minimizeParameters(design, "top");
    m.measuredParams["leaf"] = minimizeParameters(design, "leaf");
    LintReport r =
        lintAccountingMeasurement(design, "top", "fixture", m);
    EXPECT_EQ(countRule(r, "acct.non-minimal-params"), 0u)
        << r.text();
}

// ------------------------ acct.overlap / duplicate-component

TEST(AccountLint, OverlapFiresOnSharedModuleType)
{
    ComponentMeasurement a;
    a.moduleCounts = {{"alu", 1}, {"shifter", 1}};
    ComponentMeasurement b;
    b.moduleCounts = {{"alu", 1}, {"mult", 1}};
    LintReport r = lintAccountingPartition(
        {{"exec", a}, {"issue", b}});
    const LintDiagnostic *d = findRule(r, "acct.overlap");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->object, "alu");
    EXPECT_EQ(d->severity, LintSeverity::Error);
    EXPECT_NE(d->message.find("exec"), std::string::npos);
    EXPECT_NE(d->message.find("issue"), std::string::npos);
}

TEST(AccountLint, PartitionCleanWhenDisjoint)
{
    ComponentMeasurement a;
    a.moduleCounts = {{"alu", 1}};
    ComponentMeasurement b;
    b.moduleCounts = {{"mult", 1}};
    LintReport r = lintAccountingPartition(
        {{"exec", a}, {"issue", b}});
    EXPECT_TRUE(r.empty()) << r.text();
}

TEST(AccountLint, DuplicateComponentFiresInPartition)
{
    ComponentMeasurement a;
    a.moduleCounts = {{"alu", 1}};
    LintReport r =
        lintAccountingPartition({{"exec", a}, {"exec", a}});
    EXPECT_EQ(countRule(r, "acct.duplicate-component"), 1u)
        << r.text();
    // The same module type under the same component name is not an
    // overlap — only the duplicate identity is reported.
    EXPECT_EQ(countRule(r, "acct.overlap"), 0u) << r.text();
}

// --------------------------------------- dataset accounting

Component
makeComponent(const std::string &project, const std::string &name,
              double effort, double stmts)
{
    Component c;
    c.project = project;
    c.name = name;
    c.effort = effort;
    c.metrics.fill(1.0);
    c.metrics[0] = stmts;
    return c;
}

TEST(AccountLint, DatasetDuplicateComponentFires)
{
    Dataset ds;
    ds.add(makeComponent("Leon3", "IU", 10.0, 100.0));
    ds.add(makeComponent("Leon3", "IU", 12.0, 200.0));
    LintReport r = lintDatasetAccounting(ds, "dataset");
    const LintDiagnostic *d =
        findRule(r, "acct.duplicate-component");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->object, "Leon3-IU");
    EXPECT_EQ(d->design, "dataset");
}

TEST(AccountLint, DatasetNonpositiveEffortFiresOnInfinity)
{
    // Dataset::add rejects effort <= 0 and NaN outright, so the
    // reachable bad value is an infinite effort, which still makes
    // log(effort) useless for the fit.
    Dataset ds;
    ds.add(makeComponent("Leon3", "IU",
                         std::numeric_limits<double>::infinity(),
                         100.0));
    LintReport r = lintDatasetAccounting(ds, "dataset");
    const LintDiagnostic *d =
        findRule(r, "acct.nonpositive-effort");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->severity, LintSeverity::Error);
}

TEST(AccountLint, DatasetDuplicateMetricsFiresWithinProject)
{
    Dataset ds;
    ds.add(makeComponent("Leon3", "IU", 10.0, 100.0));
    ds.add(makeComponent("Leon3", "FPU", 12.0, 100.0));
    // Same metric vector in another project is fine.
    ds.add(makeComponent("PUMA", "IU", 9.0, 100.0));
    LintReport r = lintDatasetAccounting(ds, "dataset");
    const LintDiagnostic *d = findRule(r, "acct.duplicate-metrics");
    ASSERT_NE(d, nullptr) << r.text();
    EXPECT_EQ(d->object, "Leon3-IU/Leon3-FPU");
    EXPECT_EQ(countRule(r, "acct.duplicate-metrics"), 1u);
}

TEST(AccountLint, DatasetCleanWhenWellFormed)
{
    Dataset ds;
    ds.add(makeComponent("Leon3", "IU", 10.0, 100.0));
    ds.add(makeComponent("Leon3", "FPU", 12.0, 250.0));
    ds.add(makeComponent("PUMA", "LSQ", 9.0, 100.0));
    LintReport r = lintDatasetAccounting(ds, "dataset");
    EXPECT_TRUE(r.empty()) << r.text();
}

} // namespace
} // namespace ucx
