#include <gtest/gtest.h>

#include <string>

#include "lint/suppress.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

LintDiagnostic
makeDiag(const std::string &rule, const std::string &design,
         const std::string &object)
{
    LintDiagnostic d;
    d.rule = rule;
    d.severity = LintSeverity::Warning;
    d.design = design;
    d.object = object;
    d.message = "fixture";
    return d;
}

TEST(LintSuppress, ParsesFieldsCommentsAndBlanks)
{
    LintSuppressions s = LintSuppressions::parse(
        "# header comment\n"
        "\n"
        "hdl.unused fetch fetch.tmp  # known dead wire\n"
        "* pipeline *\n");
    ASSERT_EQ(s.entries().size(), 2u);
    EXPECT_EQ(s.entries()[0].rule, "hdl.unused");
    EXPECT_EQ(s.entries()[0].design, "fetch");
    EXPECT_EQ(s.entries()[0].object, "fetch.tmp");
    EXPECT_EQ(s.entries()[0].comment, "known dead wire");
    EXPECT_EQ(s.entries()[1].rule, "*");
}

TEST(LintSuppress, RejectsMalformedLines)
{
    EXPECT_THROW(LintSuppressions::parse("hdl.unused fetch\n"),
                 UcxError);
    EXPECT_THROW(
        LintSuppressions::parse("hdl.bogus-rule fetch x\n"),
        UcxError);
    EXPECT_THROW(
        LintSuppressions::parse("hdl.unused a b extra-field\n"),
        UcxError);
}

TEST(LintSuppress, MatchingHonorsWildcardsAndDash)
{
    LintSuppressions s = LintSuppressions::parse(
        "hdl.unused fetch fetch.tmp\n"
        "hdl.undriven * *\n"
        "fit.empty - -\n");
    EXPECT_TRUE(
        s.matches(makeDiag("hdl.unused", "fetch", "fetch.tmp")));
    EXPECT_FALSE(
        s.matches(makeDiag("hdl.unused", "fetch", "fetch.other")));
    EXPECT_FALSE(
        s.matches(makeDiag("hdl.unused", "decode", "fetch.tmp")));
    // Full wildcard on design/object.
    EXPECT_TRUE(
        s.matches(makeDiag("hdl.undriven", "anything", "at.all")));
    // "-" matches only empty fields.
    EXPECT_TRUE(s.matches(makeDiag("fit.empty", "", "")));
    EXPECT_FALSE(s.matches(makeDiag("fit.empty", "ds", "")));
}

TEST(LintSuppress, ApplyRemovesMatchesAndReportsCount)
{
    LintReport report;
    report.add("hdl.unused", "fetch", "fetch.tmp", "never read");
    report.add("hdl.unused", "decode", "decode.x", "never read");
    report.add("hdl.undriven", "fetch", "fetch.y", "never driven");
    LintSuppressions s =
        LintSuppressions::parse("hdl.unused fetch *\n");
    EXPECT_EQ(s.apply(report), 1u);
    ASSERT_EQ(report.size(), 2u);
    for (const LintDiagnostic &d : report.diagnostics())
        EXPECT_NE(d.key(), "hdl.unused fetch fetch.tmp");
}

TEST(LintSuppress, SerializeParseRoundTrip)
{
    LintSuppressions s = LintSuppressions::parse(
        "hdl.unused fetch fetch.tmp  # keep\n"
        "fit.small-group dataset RAT\n"
        "* pipeline *  # everything there\n");
    LintSuppressions reparsed =
        LintSuppressions::parse(s.serialize());
    ASSERT_EQ(reparsed.entries().size(), s.entries().size());
    for (size_t i = 0; i < s.entries().size(); ++i) {
        EXPECT_EQ(reparsed.entries()[i].rule, s.entries()[i].rule);
        EXPECT_EQ(reparsed.entries()[i].design,
                  s.entries()[i].design);
        EXPECT_EQ(reparsed.entries()[i].object,
                  s.entries()[i].object);
        EXPECT_EQ(reparsed.entries()[i].comment,
                  s.entries()[i].comment);
    }
    EXPECT_EQ(reparsed.serialize(), s.serialize());
}

TEST(LintSuppress, BaselineFreezesFindingsExactly)
{
    LintReport report;
    report.add("hdl.unused", "fetch", "fetch.tmp", "never read");
    report.add("hdl.unused", "fetch", "fetch.tmp", "duplicate");
    report.add("fit.empty", "", "", "no metrics");
    LintSuppressions baseline =
        LintSuppressions::baselineOf(report, "frozen");
    // One line per distinct (rule, design, object) triple.
    ASSERT_EQ(baseline.entries().size(), 2u);
    for (const LintSuppression &e : baseline.entries())
        EXPECT_EQ(e.comment, "frozen");

    // The baseline suppresses everything it was built from...
    LintReport again;
    again.add("hdl.unused", "fetch", "fetch.tmp", "never read");
    again.add("fit.empty", "", "", "no metrics");
    EXPECT_EQ(baseline.apply(again), 2u);
    EXPECT_TRUE(again.empty());

    // ...but not a new finding.
    LintReport fresh;
    fresh.add("hdl.unused", "decode", "decode.x", "never read");
    EXPECT_EQ(baseline.apply(fresh), 0u);
    EXPECT_EQ(fresh.size(), 1u);

    // And it round-trips through the file format.
    LintSuppressions reparsed =
        LintSuppressions::parse(baseline.serialize());
    EXPECT_EQ(reparsed.serialize(), baseline.serialize());
}

} // namespace
} // namespace ucx
