#include <gtest/gtest.h>

#include <string>

#include "lint/suppress.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

LintDiagnostic
makeDiag(const std::string &rule, const std::string &design,
         const std::string &object)
{
    LintDiagnostic d;
    d.rule = rule;
    d.severity = LintSeverity::Warning;
    d.design = design;
    d.object = object;
    d.message = "fixture";
    return d;
}

TEST(LintSuppress, ParsesFieldsCommentsAndBlanks)
{
    LintSuppressions s = LintSuppressions::parse(
        "# header comment\n"
        "\n"
        "hdl.unused fetch fetch.tmp  # known dead wire\n"
        "* pipeline *\n");
    ASSERT_EQ(s.entries().size(), 2u);
    EXPECT_EQ(s.entries()[0].rule, "hdl.unused");
    EXPECT_EQ(s.entries()[0].design, "fetch");
    EXPECT_EQ(s.entries()[0].object, "fetch.tmp");
    EXPECT_EQ(s.entries()[0].comment, "known dead wire");
    EXPECT_EQ(s.entries()[1].rule, "*");
}

TEST(LintSuppress, TolerantOfCrlfTabsAndCommentOnlyLines)
{
    // Files edited on other platforms arrive with CRLF endings,
    // tab indentation, and stray comment-only lines; none of that
    // may change what is suppressed.
    LintSuppressions s = LintSuppressions::parse(
        "# frozen findings\r\n"
        "\r\n"
        "\t \r\n"
        "\thdl.unused\tfetch\tfetch.tmp\t# tabs\r\n"
        "   dfa.dead-signal   pipeline   alu_neg   \r\n"
        "#\n"
        "dfa.cdc-unsync * *\r\n");
    ASSERT_EQ(s.entries().size(), 3u);
    EXPECT_EQ(s.entries()[0].rule, "hdl.unused");
    EXPECT_EQ(s.entries()[0].object, "fetch.tmp");
    EXPECT_EQ(s.entries()[0].comment, "tabs");
    EXPECT_EQ(s.entries()[1].rule, "dfa.dead-signal");
    EXPECT_EQ(s.entries()[1].design, "pipeline");
    EXPECT_TRUE(s.entries()[1].comment.empty());
    EXPECT_TRUE(s.matches(
        makeDiag("dfa.cdc-unsync", "anything", "x.y")));
    // A round trip through serialize drops none of it.
    LintSuppressions reparsed =
        LintSuppressions::parse(s.serialize());
    ASSERT_EQ(reparsed.entries().size(), 3u);
    EXPECT_EQ(reparsed.serialize(), s.serialize());
}

TEST(LintSuppress, DfaRuleIdsAreKnownToTheParser)
{
    // The parser validates rule ids against the catalog; every
    // dfa.* id must be accepted so baselines can freeze them.
    LintSuppressions s = LintSuppressions::parse(
        "dfa.cdc-unsync a b\n"
        "dfa.clock-as-data a b\n"
        "dfa.const-condition a b\n"
        "dfa.const-output a b\n"
        "dfa.const-signal a b\n"
        "dfa.dead-signal a b\n"
        "dfa.read-before-write a b\n"
        "dfa.write-never-read a b\n");
    EXPECT_EQ(s.entries().size(), 8u);
    EXPECT_THROW(LintSuppressions::parse("dfa.bogus a b\n"),
                 UcxError);
}

TEST(LintSuppress, RejectsMalformedLines)
{
    EXPECT_THROW(LintSuppressions::parse("hdl.unused fetch\n"),
                 UcxError);
    EXPECT_THROW(
        LintSuppressions::parse("hdl.bogus-rule fetch x\n"),
        UcxError);
    EXPECT_THROW(
        LintSuppressions::parse("hdl.unused a b extra-field\n"),
        UcxError);
}

TEST(LintSuppress, MatchingHonorsWildcardsAndDash)
{
    LintSuppressions s = LintSuppressions::parse(
        "hdl.unused fetch fetch.tmp\n"
        "hdl.undriven * *\n"
        "fit.empty - -\n");
    EXPECT_TRUE(
        s.matches(makeDiag("hdl.unused", "fetch", "fetch.tmp")));
    EXPECT_FALSE(
        s.matches(makeDiag("hdl.unused", "fetch", "fetch.other")));
    EXPECT_FALSE(
        s.matches(makeDiag("hdl.unused", "decode", "fetch.tmp")));
    // Full wildcard on design/object.
    EXPECT_TRUE(
        s.matches(makeDiag("hdl.undriven", "anything", "at.all")));
    // "-" matches only empty fields.
    EXPECT_TRUE(s.matches(makeDiag("fit.empty", "", "")));
    EXPECT_FALSE(s.matches(makeDiag("fit.empty", "ds", "")));
}

TEST(LintSuppress, ApplyRemovesMatchesAndReportsCount)
{
    LintReport report;
    report.add("hdl.unused", "fetch", "fetch.tmp", "never read");
    report.add("hdl.unused", "decode", "decode.x", "never read");
    report.add("hdl.undriven", "fetch", "fetch.y", "never driven");
    LintSuppressions s =
        LintSuppressions::parse("hdl.unused fetch *\n");
    EXPECT_EQ(s.apply(report), 1u);
    ASSERT_EQ(report.size(), 2u);
    for (const LintDiagnostic &d : report.diagnostics())
        EXPECT_NE(d.key(), "hdl.unused fetch fetch.tmp");
}

TEST(LintSuppress, SerializeParseRoundTrip)
{
    LintSuppressions s = LintSuppressions::parse(
        "hdl.unused fetch fetch.tmp  # keep\n"
        "fit.small-group dataset RAT\n"
        "* pipeline *  # everything there\n");
    LintSuppressions reparsed =
        LintSuppressions::parse(s.serialize());
    ASSERT_EQ(reparsed.entries().size(), s.entries().size());
    for (size_t i = 0; i < s.entries().size(); ++i) {
        EXPECT_EQ(reparsed.entries()[i].rule, s.entries()[i].rule);
        EXPECT_EQ(reparsed.entries()[i].design,
                  s.entries()[i].design);
        EXPECT_EQ(reparsed.entries()[i].object,
                  s.entries()[i].object);
        EXPECT_EQ(reparsed.entries()[i].comment,
                  s.entries()[i].comment);
    }
    EXPECT_EQ(reparsed.serialize(), s.serialize());
}

TEST(LintSuppress, BaselineFreezesFindingsExactly)
{
    LintReport report;
    report.add("hdl.unused", "fetch", "fetch.tmp", "never read");
    report.add("hdl.unused", "fetch", "fetch.tmp", "duplicate");
    report.add("fit.empty", "", "", "no metrics");
    LintSuppressions baseline =
        LintSuppressions::baselineOf(report, "frozen");
    // One line per distinct (rule, design, object) triple.
    ASSERT_EQ(baseline.entries().size(), 2u);
    for (const LintSuppression &e : baseline.entries())
        EXPECT_EQ(e.comment, "frozen");

    // The baseline suppresses everything it was built from...
    LintReport again;
    again.add("hdl.unused", "fetch", "fetch.tmp", "never read");
    again.add("fit.empty", "", "", "no metrics");
    EXPECT_EQ(baseline.apply(again), 2u);
    EXPECT_TRUE(again.empty());

    // ...but not a new finding.
    LintReport fresh;
    fresh.add("hdl.unused", "decode", "decode.x", "never read");
    EXPECT_EQ(baseline.apply(fresh), 0u);
    EXPECT_EQ(fresh.size(), 1u);

    // And it round-trips through the file format.
    LintSuppressions reparsed =
        LintSuppressions::parse(baseline.serialize());
    EXPECT_EQ(reparsed.serialize(), baseline.serialize());
}

} // namespace
} // namespace ucx
