/**
 * @file
 * Round-trip property tests of every artifact codec: for each type
 * the two-tier cache can persist, build a real instance through the
 * production pipeline, then check encode → decode → re-encode is
 * byte-identical. Byte identity is a stronger contract than field
 * equality — it proves decode loses nothing the encoder writes and
 * that a disk hit feeds downstream passes exactly the bytes a
 * recompute would.
 */

#include <string>

#include <gtest/gtest.h>

#include "core/estimator.hh"
#include "core/measure.hh"
#include "data/paper_data.hh"
#include "designs/registry.hh"
#include "io/artifact_serde.hh"
#include "io/registry.hh"
#include "lint/lint.hh"
#include "synth/cones.hh"
#include "synth/elaborate.hh"
#include "synth/lower.hh"
#include "synth/mapper.hh"
#include "synth/metrics.hh"
#include "synth/power.hh"
#include "synth/timing.hh"

namespace ucx
{
namespace
{

/**
 * The property under test. Returns the decoded copy so callers can
 * spot-check semantic fields too.
 */
template <typename T>
T
expectRoundTrip(const T &value)
{
    std::string framed = io::encodeArtifact(value);
    T decoded = io::decodeArtifact<T>(framed);
    EXPECT_EQ(io::encodeArtifact(decoded), framed)
        << "re-encode of " << io::fourccName(io::Serde<T>::kTypeTag)
        << " is not byte-identical";
    return decoded;
}

/**
 * Elaborations of a hierarchical design with memories: exercises
 * the instance tree, generate stats, memory ports, and every RTL op
 * the shipped designs use.
 */
const ElabResult &
fetchElab()
{
    static const ElabResult elab = [] {
        Design d = shippedDesign("fetch").load();
        return elaborate(d, "fetch");
    }();
    return elab;
}

const Netlist &
fetchNetlist()
{
    static const Netlist netlist = lowerToGates(fetchElab().rtl);
    return netlist;
}

TEST(ArtifactSerde, RtlDesign)
{
    const RtlDesign &rtl = fetchElab().rtl;
    ASSERT_FALSE(rtl.signals.empty());
    RtlDesign decoded = expectRoundTrip(rtl);
    EXPECT_EQ(decoded.signals.size(), rtl.signals.size());
    EXPECT_EQ(decoded.nodes.size(), rtl.nodes.size());
    EXPECT_EQ(decoded.memories.size(), rtl.memories.size());
}

TEST(ArtifactSerde, ElabResult)
{
    const ElabResult &elab = fetchElab();
    ElabResult decoded = expectRoundTrip(elab);
    EXPECT_EQ(decoded.top.moduleName, elab.top.moduleName);
    EXPECT_EQ(decoded.stats.loopTrips.size(),
              elab.stats.loopTrips.size());
    EXPECT_EQ(decoded.warnings, elab.warnings);
}

TEST(ArtifactSerde, Netlist)
{
    const Netlist &netlist = fetchNetlist();
    ASSERT_FALSE(netlist.gates.empty());
    Netlist decoded = expectRoundTrip(netlist);
    EXPECT_EQ(decoded.gates.size(), netlist.gates.size());
}

TEST(ArtifactSerde, CellMapping)
{
    CellMapping mapping = mapToCells(fetchNetlist());
    CellMapping decoded = expectRoundTrip(mapping);
    EXPECT_EQ(decoded.cells, mapping.cells);
    EXPECT_EQ(decoded.areaLogicUm2, mapping.areaLogicUm2);
}

TEST(ArtifactSerde, LutMapping)
{
    LutMapping mapping = mapToLuts(fetchNetlist());
    LutMapping decoded = expectRoundTrip(mapping);
    EXPECT_EQ(decoded.luts.size(), mapping.luts.size());
}

TEST(ArtifactSerde, ConeReport)
{
    expectRoundTrip(extractCones(fetchNetlist()));
}

TEST(ArtifactSerde, TimingSummary)
{
    TimingSummary timing;
    timing.asic = staAsic(fetchNetlist());
    timing.fpga = staFpga(mapToLuts(fetchNetlist()));
    TimingSummary decoded = expectRoundTrip(timing);
    EXPECT_EQ(decoded.fpga.freqMHz, timing.fpga.freqMHz);
    EXPECT_EQ(decoded.asic.criticalPathNs,
              timing.asic.criticalPathNs);
}

TEST(ArtifactSerde, PowerReport)
{
    PowerReport power = estimatePower(fetchNetlist(), 250.0);
    PowerReport decoded = expectRoundTrip(power);
    EXPECT_EQ(decoded.dynamicMw, power.dynamicMw);
}

TEST(ArtifactSerde, SynthMetrics)
{
    SynthMetrics metrics = synthesize(fetchElab().rtl);
    SynthMetrics decoded = expectRoundTrip(metrics);
    EXPECT_EQ(decoded.freqMHz, metrics.freqMHz);
    EXPECT_EQ(decoded.fanInLC, metrics.fanInLC);
}

TEST(ArtifactSerde, ComponentMeasurement)
{
    Design d = shippedDesign("alu").load();
    ComponentMeasurement m = measureComponent(d, "alu");
    ComponentMeasurement decoded = expectRoundTrip(m);
    EXPECT_EQ(decoded.metrics, m.metrics);
}

TEST(ArtifactSerde, Dataset)
{
    const Dataset &dataset = paperDataset();
    ASSERT_GT(dataset.size(), 0u);
    Dataset decoded = expectRoundTrip(dataset);
    EXPECT_EQ(decoded.size(), dataset.size());
}

TEST(ArtifactSerde, ConvergenceTrace)
{
    obs::ConvergenceTrace trace;
    for (size_t i = 0; i < 40; ++i) {
        obs::IterationSample s;
        s.iteration = i;
        s.objective = 100.0 / static_cast<double>(i + 1);
        s.gradNorm = 1e-3 * static_cast<double>(40 - i);
        s.stepSize = 0.5;
        s.simplexSpread = 0.01;
        s.evaluations = i * 3;
        trace.record(s);
    }
    obs::ConvergenceTrace decoded = expectRoundTrip(trace);
    EXPECT_EQ(decoded.size(), trace.size());
}

TEST(ArtifactSerde, FittedEstimator)
{
    FittedEstimator fitted =
        fitDee1(paperDataset(), FitMode::Pooled);
    FittedEstimator decoded = expectRoundTrip(fitted);
    EXPECT_EQ(decoded.metrics(), fitted.metrics());
    EXPECT_EQ(decoded.mode(), fitted.mode());
}

TEST(ArtifactSerde, LintReport)
{
    Design d = shippedDesign("alu").load();
    LintReport report = lintHdlDesign(d, "alu", "alu");
    LintReport decoded = expectRoundTrip(report);
    EXPECT_EQ(decoded.size(), report.size());
}

/** A summary populated through the real analyses. */
const DfaSummary &
fetchDfaSummary()
{
    static const DfaSummary summary = [] {
        Design d = shippedDesign("fetch").load();
        return computeDfaSummary(d, fetchElab().rtl,
                                 fetchNetlist());
    }();
    return summary;
}

TEST(ArtifactSerde, DfaSummary)
{
    const DfaSummary &summary = fetchDfaSummary();
    ASSERT_FALSE(summary.domains.empty());
    DfaSummary decoded = expectRoundTrip(summary);
    EXPECT_EQ(decoded.constSignals.size(),
              summary.constSignals.size());
    EXPECT_EQ(decoded.deadWires, summary.deadWires);
    EXPECT_EQ(decoded.deadRegs, summary.deadRegs);
    EXPECT_EQ(decoded.deadCombGates, summary.deadCombGates);
    EXPECT_EQ(decoded.domains.size(), summary.domains.size());
    EXPECT_EQ(decoded.constIterations, summary.constIterations);
}

TEST(ArtifactSerde, DfaSummarySyntheticFieldsSurvive)
{
    // The bundled designs are single-clock, so exercise the CDC
    // fields with a hand-built summary.
    DfaSummary s;
    s.constSignals.push_back({"top.u.stuck", 3, 2, 1});
    s.constMuxSignals.push_back("top.sel_out");
    s.constMuxCount = 7;
    s.readBeforeWrite.push_back({"top", "tmp", 12});
    s.domains.push_back({"top", "r", "clk_a"});
    s.crossings.push_back({"top", "x", "clk_a", "clk_b", 9, false});
    s.crossings.push_back({"top", "y", "clk_b", "clk_a", 14, true});
    s.clockAsData.push_back({"top", "clk_a", 20});
    s.clockIterations = 99;
    DfaSummary decoded = expectRoundTrip(s);
    ASSERT_EQ(decoded.crossings.size(), 2u);
    EXPECT_EQ(decoded.crossings[0].fromClock, "clk_a");
    EXPECT_FALSE(decoded.crossings[0].synchronized);
    EXPECT_TRUE(decoded.crossings[1].synchronized);
    ASSERT_EQ(decoded.clockAsData.size(), 1u);
    EXPECT_EQ(decoded.clockAsData[0].line, 20);
    EXPECT_EQ(decoded.constSignals[0].kind, 1);
}

TEST(ArtifactSerde, DfaSummaryTruncationAndBitFlip)
{
    std::string framed = io::encodeArtifact(fetchDfaSummary());
    // Every truncation point must be a typed decode error, never a
    // crash or a silently short summary.
    for (size_t cut : {size_t(0), size_t(1), io::kFrameHeaderSize,
                       framed.size() / 2, framed.size() - 1}) {
        std::string trunc = framed.substr(0, cut);
        EXPECT_THROW(io::decodeArtifact<DfaSummary>(trunc),
                     io::SerdeError)
            << "truncated at " << cut;
    }
    for (size_t at = io::kFrameHeaderSize; at < framed.size();
         at += 7) {
        std::string flipped = framed;
        flipped[at] ^= 0x40;
        try {
            io::decodeArtifact<DfaSummary>(flipped);
        } catch (const io::SerdeError &) {
            // Checksum or structural failure: both acceptable.
        }
    }
}

TEST(ArtifactSerde, CorruptPayloadIsTypedPerType)
{
    // A payload bit-flip in a real artifact frame must surface as
    // SerdeError (checksum), which the cache maps to "recompute".
    std::string framed = io::encodeArtifact(fetchElab().rtl);
    framed[io::kFrameHeaderSize + framed.size() / 2] ^= 0x10;
    EXPECT_THROW(io::decodeArtifact<RtlDesign>(framed),
                 io::SerdeError);
}

TEST(ArtifactSerde, RegistryKnowsEveryArtifact)
{
    io::registerArtifactSerdes();
    const auto &reg = io::SerdeRegistry::global();
    for (const char *name :
         {"RtlDesign", "ElabResult", "Netlist", "CellMapping",
          "LutMapping", "ConeReport", "TimingSummary", "PowerReport",
          "SynthMetrics", "ComponentMeasurement", "Dataset",
          "ConvergenceTrace", "FittedEstimator", "LintReport",
          "DfaSummary"}) {
        bool found = false;
        for (const io::ArtifactCodec *codec : reg.codecs())
            found = found || codec->name == name;
        EXPECT_TRUE(found) << "codec missing: " << name;
    }
    EXPECT_NE(reg.byType(typeid(Netlist)), nullptr);
    EXPECT_EQ(reg.byTag(io::fourcc("NETL")),
              reg.byType(typeid(Netlist)));
}

} // namespace
} // namespace ucx
