/**
 * @file
 * Tests of the ArtifactCache disk tier: cross-instance warm starts
 * (the "second process" scenario), write-through, corruption and
 * schema-version degradation to recompute, key-collision safety,
 * unregistered-type bypass, eviction fallback, serde-exact byte
 * accounting, and single-flight ownership of disk I/O.
 */

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "cache/artifact_cache.hh"
#include "io/artifact_serde.hh"
#include "io/disk_store.hh"
#include "io/serde.hh"
#include "synth/mapper.hh"

namespace fs = std::filesystem;

namespace ucx
{
namespace
{

/** Self-deleting store directory, unique per test. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        static std::atomic<int> counter{0};
        path = fs::temp_directory_path() /
               ("ucx_disk_cache_test_" +
                std::to_string(::getpid()) + "_" +
                std::to_string(counter.fetch_add(1)));
        fs::create_directories(path);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }

    std::string
    str() const
    {
        return path.string();
    }
};

CellMapping
sampleMapping()
{
    CellMapping m;
    m.cells = 7;
    m.combCells = 5;
    m.seqCells = 2;
    m.areaLogicUm2 = 123.5;
    m.areaStorageUm2 = 48.25;
    m.leakageUw = 0.75;
    return m;
}

size_t
ucxFileCount(const fs::path &dir)
{
    size_t n = 0;
    for (const auto &de : fs::recursive_directory_iterator(dir)) {
        if (de.is_regular_file() &&
            de.path().extension() == ".ucx")
            ++n;
    }
    return n;
}

class DiskCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        io::registerArtifactSerdes();
    }
};

TEST_F(DiskCacheTest, CrossInstanceWarmStart)
{
    TempDir dir;
    CacheKey key("test");
    key.add("mapping").add("v1");

    {
        ArtifactCache cold(16, true, dir.str());
        auto v = cold.getOrCompute<CellMapping>(
            key, [] { return sampleMapping(); });
        ASSERT_NE(v, nullptr);
        auto s = cold.stats();
        EXPECT_EQ(s.misses, 1u);
        EXPECT_EQ(s.diskMisses, 1u); // probed before computing
        EXPECT_EQ(s.diskWrites, 1u);
        EXPECT_GT(s.diskBytes, 0u);
    }

    // A new cache on the same directory stands in for a second
    // process: the producer must NOT run.
    ArtifactCache warm(16, true, dir.str());
    bool ran = false;
    auto v = warm.getOrCompute<CellMapping>(key, [&ran] {
        ran = true;
        return CellMapping();
    });
    EXPECT_FALSE(ran);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->cells, 7u);
    EXPECT_EQ(v->areaLogicUm2, 123.5);
    auto s = warm.stats();
    EXPECT_EQ(s.diskHits, 1u);
    EXPECT_EQ(s.diskWrites, 0u); // a disk hit is not re-published

    // Once decoded, the artifact lives in the memory tier: a second
    // lookup is a pure memory hit, no further disk traffic.
    warm.getOrCompute<CellMapping>(key, [] { return CellMapping(); });
    s = warm.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.diskHits, 1u);
}

TEST_F(DiskCacheTest, DiskEntryIsSerdeExact)
{
    TempDir dir;
    CacheKey key("test");
    key.add("exact");
    CellMapping value = sampleMapping();

    ArtifactCache cache(16, true, dir.str());
    cache.put<CellMapping>(
        key, std::make_shared<const CellMapping>(value));

    io::DiskStore store(dir.str());
    std::string bytes;
    std::string stored_key;
    std::string framed;
    ASSERT_TRUE(io::DiskStore::readFile(
        store.pathFor(key.str()), bytes));
    ASSERT_TRUE(io::DiskStore::unpackEntry(bytes, stored_key, framed));
    EXPECT_EQ(stored_key, key.str());
    // The file holds exactly the frame a fresh encode produces —
    // the determinism contract behind "a disk hit is byte-identical
    // to a recompute".
    EXPECT_EQ(framed, io::encodeArtifact(value));
}

TEST_F(DiskCacheTest, CorruptEntryDegradesToRecompute)
{
    TempDir dir;
    CacheKey key("test");
    key.add("corrupt");
    std::string path;

    {
        ArtifactCache cold(16, true, dir.str());
        cold.getOrCompute<CellMapping>(
            key, [] { return sampleMapping(); });
        path = io::DiskStore(dir.str()).pathFor(key.str());
        ASSERT_TRUE(fs::exists(path));
    }

    // Flip the last payload byte on disk: the frame checksum must
    // catch it.
    std::string bytes;
    ASSERT_TRUE(io::DiskStore::readFile(path, bytes));
    bytes.back() = static_cast<char>(bytes.back() ^ 0x40);
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << bytes;

    ArtifactCache warm(16, true, dir.str());
    bool ran = false;
    auto v = warm.getOrCompute<CellMapping>(key, [&ran] {
        ran = true;
        return sampleMapping();
    });
    EXPECT_TRUE(ran); // corruption means recompute, never an error
    EXPECT_EQ(v->cells, 7u);
    auto s = warm.stats();
    EXPECT_EQ(s.diskCorrupt, 1u);
    EXPECT_EQ(s.diskHits, 0u);
    EXPECT_EQ(s.diskWrites, 1u); // the recompute healed the store

    // The healed entry reads back clean in a third instance.
    ArtifactCache third(16, true, dir.str());
    bool ran_again = false;
    third.getOrCompute<CellMapping>(key, [&ran_again] {
        ran_again = true;
        return CellMapping();
    });
    EXPECT_FALSE(ran_again);
    EXPECT_EQ(third.stats().diskHits, 1u);
}

TEST_F(DiskCacheTest, SchemaVersionBumpDegradesToRecompute)
{
    TempDir dir;
    CacheKey key("test");
    key.add("version");

    // Hand-write an entry whose frame claims a future schema
    // version (the payload checksum stays valid — only the version
    // check can reject it).
    std::string framed = io::encodeArtifact(sampleMapping());
    framed[io::kFrameOffVersion] = static_cast<char>(
        io::Serde<CellMapping>::kVersion + 1);
    io::DiskStore store(dir.str());
    std::string path = store.pathFor(key.str());
    fs::create_directories(fs::path(path).parent_path());
    std::ofstream(path, std::ios::binary)
        << io::DiskStore::packEntry(key.str(), framed);

    ArtifactCache cache(16, true, dir.str());
    bool ran = false;
    cache.getOrCompute<CellMapping>(key, [&ran] {
        ran = true;
        return sampleMapping();
    });
    EXPECT_TRUE(ran);
    auto s = cache.stats();
    EXPECT_EQ(s.diskCorrupt, 1u);
    EXPECT_EQ(s.diskHits, 0u);
}

TEST_F(DiskCacheTest, KeyMismatchInSharedPathIsMiss)
{
    // Simulate a hash collision: an entry stored under key A sits
    // at key B's path. The embedded key makes the read a Miss, not
    // wrong data and not corruption.
    TempDir dir;
    io::DiskStore store(dir.str());
    std::string framed = io::encodeArtifact(sampleMapping());
    std::string path = store.pathFor("test|keyB");
    fs::create_directories(fs::path(path).parent_path());
    std::ofstream(path, std::ios::binary)
        << io::DiskStore::packEntry("test|keyA", framed);

    std::string out;
    EXPECT_EQ(store.read("test|keyB", out),
              io::DiskStore::ReadStatus::Miss);
    EXPECT_TRUE(fs::exists(path)); // a miss never deletes
}

TEST_F(DiskCacheTest, UnregisteredTypeStaysMemoryOnly)
{
    struct Unregistered
    {
        int x = 0;
    };
    TempDir dir;
    CacheKey key("test");
    key.add("unregistered");

    ArtifactCache cache(16, true, dir.str());
    auto v = cache.getOrCompute<Unregistered>(
        key, [] { return Unregistered{41}; });
    EXPECT_EQ(v->x, 41);
    auto s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.diskMisses, 0u); // never probed
    EXPECT_EQ(s.diskWrites, 0u);
    EXPECT_EQ(ucxFileCount(dir.path), 0u);
}

TEST_F(DiskCacheTest, EvictedEntryComesBackFromDisk)
{
    TempDir dir;
    CacheKey first("test");
    first.add("first");
    CacheKey second("test");
    second.add("second");

    ArtifactCache cache(1, true, dir.str());
    cache.getOrCompute<CellMapping>(
        first, [] { return sampleMapping(); });
    cache.getOrCompute<CellMapping>(second, [] {
        CellMapping m;
        m.cells = 9;
        return m;
    });
    EXPECT_EQ(cache.stats().evictions, 1u);

    // "first" left the memory tier but not the disk.
    auto v = cache.get<CellMapping>(first);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->cells, 7u);
    EXPECT_EQ(cache.stats().diskHits, 1u);
}

TEST_F(DiskCacheTest, ByteAccountingUsesEncodedFrameSize)
{
    // No disk tier: the codec is still used to size the entry.
    CacheKey key("test");
    key.add("bytes");
    CellMapping value = sampleMapping();

    ArtifactCache cache(16, true, "");
    EXPECT_FALSE(cache.diskEnabled());
    cache.put<CellMapping>(
        key, std::make_shared<const CellMapping>(value));
    EXPECT_EQ(cache.stats().approxBytes,
              io::encodeArtifact(value).size() + key.str().size());
}

TEST_F(DiskCacheTest, DisabledCacheTouchesNothing)
{
    TempDir dir;
    CacheKey key("test");
    key.add("disabled");

    ArtifactCache cache(16, false, dir.str());
    bool ran = false;
    auto v = cache.getOrCompute<CellMapping>(key, [&ran] {
        ran = true;
        return sampleMapping();
    });
    EXPECT_TRUE(ran);
    ASSERT_NE(v, nullptr);
    auto s = cache.stats();
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.diskMisses, 0u);
    EXPECT_EQ(s.diskWrites, 0u);
    EXPECT_EQ(ucxFileCount(dir.path), 0u);
}

TEST_F(DiskCacheTest, SingleFlightOwnsTheDiskTraffic)
{
    TempDir dir;
    CacheKey key("test");
    key.add("flight");

    ArtifactCache cache(16, true, dir.str());
    std::atomic<int> produced{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < 8; ++i) {
        threads.emplace_back([&] {
            auto v = cache.getOrCompute<CellMapping>(key, [&] {
                ++produced;
                // Widen the in-flight window so other threads pile
                // onto the Flight instead of finding a memory hit.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                return sampleMapping();
            });
            EXPECT_EQ(v->cells, 7u);
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(produced.load(), 1);
    auto s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.diskMisses, 1u); // one probe: the owner's
    EXPECT_EQ(s.diskWrites, 1u); // one write-through: the owner's
    EXPECT_EQ(s.hits + s.dedupWaits, 7u);
}

} // namespace
} // namespace ucx
