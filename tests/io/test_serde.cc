/**
 * @file
 * Tests of the ucx::io codec core: primitive round-trips, the frame
 * container, the XXH64 checksum, and the malformed-input battery —
 * every truncation point and every flipped byte of a valid frame
 * must fail with a typed SerdeError (never crash, never decode to a
 * wrong value), and the error must name a byte offset.
 */

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "io/serde.hh"

namespace ucx
{
namespace io
{
namespace
{

/** Minimal serde-covered type for frame-level tests. */
struct Blob
{
    uint64_t a = 0;
    int64_t b = 0;
    double x = 0.0;
    std::string s;
    bool flag = false;
};

} // namespace

template <> struct Serde<Blob>
{
    static constexpr uint32_t kTypeTag = fourcc("BLOB");
    static constexpr uint16_t kVersion = 3;
    static void
    encode(Encoder &e, const Blob &v)
    {
        e.u64(v.a);
        e.i64(v.b);
        e.f64(v.x);
        e.str(v.s);
        e.boolean(v.flag);
    }
    static Blob
    decode(Decoder &d)
    {
        Blob v;
        v.a = d.u64();
        v.b = d.i64();
        v.x = d.f64();
        v.s = d.str();
        v.flag = d.boolean();
        return v;
    }
};

namespace
{

Blob
sampleBlob()
{
    Blob b;
    b.a = 0x0123456789abcdefull;
    b.b = -987654321;
    b.x = 3.141592653589793;
    b.s = "fetch|elab|W=8";
    b.flag = true;
    return b;
}

TEST(SerdePrimitives, VarintRoundTripsEdgeValues)
{
    const uint64_t values[] = {
        0,    1,    127,  128,   16383, 16384,
        1u << 31, std::numeric_limits<uint64_t>::max()};
    Encoder e;
    for (uint64_t v : values)
        e.u64(v);
    Decoder d(e.bytes().data(), e.bytes().size());
    for (uint64_t v : values)
        EXPECT_EQ(d.u64(), v);
    EXPECT_TRUE(d.done());
}

TEST(SerdePrimitives, ZigzagRoundTripsSignedEdges)
{
    const int64_t values[] = {0, -1, 1, -64, 64,
                              std::numeric_limits<int64_t>::min(),
                              std::numeric_limits<int64_t>::max()};
    Encoder e;
    for (int64_t v : values)
        e.i64(v);
    Decoder d(e.bytes().data(), e.bytes().size());
    for (int64_t v : values)
        EXPECT_EQ(d.i64(), v);
    EXPECT_TRUE(d.done());
}

TEST(SerdePrimitives, DoublesAreBitExact)
{
    const double values[] = {
        0.0,
        -0.0,
        1.0 / 3.0,
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max()};
    Encoder e;
    for (double v : values)
        e.f64(v);
    e.f64(std::nan(""));
    Decoder d(e.bytes().data(), e.bytes().size());
    for (double v : values) {
        double got = d.f64();
        EXPECT_EQ(std::signbit(got), std::signbit(v));
        EXPECT_EQ(got, v);
    }
    EXPECT_TRUE(std::isnan(d.f64())); // NaN survives (bit pattern).
    EXPECT_TRUE(d.done());
}

TEST(SerdePrimitives, StringsAndBools)
{
    Encoder e;
    e.str("");
    e.str(std::string("a\0b", 3)); // embedded NUL survives
    e.boolean(true);
    e.boolean(false);
    Decoder d(e.bytes().data(), e.bytes().size());
    EXPECT_EQ(d.str(), "");
    EXPECT_EQ(d.str(), std::string("a\0b", 3));
    EXPECT_TRUE(d.boolean());
    EXPECT_FALSE(d.boolean());
    d.expectEnd();
}

TEST(SerdePrimitives, DecoderRejectsBadBool)
{
    Encoder e;
    e.u8(2);
    Decoder d(e.bytes().data(), e.bytes().size());
    EXPECT_THROW(d.boolean(), SerdeError);
}

TEST(SerdePrimitives, SequenceGuardRejectsHugeLengths)
{
    // A claimed billion-element sequence in a 3-byte payload must
    // fail in the guard, not in an attempted allocation.
    Encoder e;
    e.u64(1000000000ull);
    Decoder d(e.bytes().data(), e.bytes().size());
    EXPECT_THROW(d.seq(8), SerdeError);
}

TEST(SerdePrimitives, OverlongVarintRejected)
{
    std::string bytes(10, '\x80'); // continuation forever
    bytes.push_back('\x01');
    Decoder d(bytes.data(), bytes.size());
    EXPECT_THROW(d.u64(), SerdeError);
}

TEST(Xxhash64, KnownAnswers)
{
    // Reference vectors of Yann Collet's XXH64.
    EXPECT_EQ(xxhash64("", 0), 0xef46db3751d8e999ull);
    EXPECT_EQ(xxhash64("abc", 3), 0x44bc2cf5ad770999ull);
    // Long enough to exercise the 32-byte stripe loop and the tail.
    std::string long_input;
    for (int i = 0; i < 100; ++i)
        long_input.push_back(static_cast<char>(i));
    uint64_t h1 = xxhash64(long_input.data(), long_input.size());
    uint64_t h2 = xxhash64(long_input.data(), long_input.size(), 7);
    EXPECT_NE(h1, h2); // the seed matters
    long_input[57] ^= 1;
    EXPECT_NE(xxhash64(long_input.data(), long_input.size()), h1);
}

TEST(SerdeFrame, RoundTripIsByteIdentical)
{
    Blob original = sampleBlob();
    std::string framed = encodeArtifact(original);
    ASSERT_GE(framed.size(), kFrameHeaderSize);
    EXPECT_EQ(framed.substr(0, 4), "UCXA");

    FrameHeader h = readFrame(framed);
    EXPECT_EQ(h.typeTag, Serde<Blob>::kTypeTag);
    EXPECT_EQ(h.version, Serde<Blob>::kVersion);
    EXPECT_EQ(h.payloadSize, framed.size() - kFrameHeaderSize);

    Blob decoded = decodeArtifact<Blob>(framed);
    EXPECT_EQ(decoded.a, original.a);
    EXPECT_EQ(decoded.b, original.b);
    EXPECT_EQ(decoded.x, original.x);
    EXPECT_EQ(decoded.s, original.s);
    EXPECT_EQ(decoded.flag, original.flag);

    // The real contract: re-encoding the decoded value reproduces
    // the original frame byte for byte.
    EXPECT_EQ(encodeArtifact(decoded), framed);
}

TEST(SerdeFrame, EveryTruncationFailsCleanly)
{
    std::string framed = encodeArtifact(sampleBlob());
    for (size_t len = 0; len < framed.size(); ++len) {
        std::string cut = framed.substr(0, len);
        EXPECT_THROW(decodeArtifact<Blob>(cut), SerdeError)
            << "truncation to " << len << " bytes slipped through";
    }
}

TEST(SerdeFrame, EveryBitFlipFailsCleanly)
{
    // Flip one bit in every byte of the frame. Header flips trip
    // the magic/version/tag/length checks; payload flips trip the
    // checksum. None may crash or decode "successfully".
    std::string framed = encodeArtifact(sampleBlob());
    for (size_t pos = 0; pos < framed.size(); ++pos) {
        for (int bit : {0, 7}) {
            std::string bad = framed;
            bad[pos] = static_cast<char>(bad[pos] ^ (1 << bit));
            try {
                decodeArtifact<Blob>(bad);
                FAIL() << "flip at byte " << pos << " bit " << bit
                       << " decoded successfully";
            } catch (const SerdeError &) {
                // expected
            }
        }
    }
}

TEST(SerdeFrame, ErrorNamesTheOffset)
{
    std::string framed = encodeArtifact(sampleBlob());
    framed[kFrameOffMagic] = 'X';
    try {
        decodeArtifact<Blob>(framed);
        FAIL() << "bad magic decoded successfully";
    } catch (const SerdeError &e) {
        EXPECT_EQ(e.offset(), kFrameOffMagic);
        EXPECT_NE(std::string(e.what()).find("offset 0"),
                  std::string::npos);
    }
}

TEST(SerdeFrame, VersionBumpIsTypedAndNamesTheOffset)
{
    // Re-frame the same payload under a bumped schema version: the
    // mismatch must be a SerdeError anchored at the version field.
    Encoder e;
    Serde<Blob>::encode(e, sampleBlob());
    std::string framed = frame(Serde<Blob>::kTypeTag,
                               Serde<Blob>::kVersion + 1, e.bytes());
    try {
        decodeArtifact<Blob>(framed);
        FAIL() << "version bump decoded successfully";
    } catch (const SerdeError &err) {
        EXPECT_EQ(err.offset(), kFrameOffVersion);
        EXPECT_NE(std::string(err.what()).find("version"),
                  std::string::npos);
    }
}

TEST(SerdeFrame, WrongTypeTagRejected)
{
    Encoder e;
    Serde<Blob>::encode(e, sampleBlob());
    std::string framed =
        frame(fourcc("OTHR"), Serde<Blob>::kVersion, e.bytes());
    try {
        decodeArtifact<Blob>(framed);
        FAIL() << "wrong tag decoded successfully";
    } catch (const SerdeError &err) {
        EXPECT_EQ(err.offset(), kFrameOffTypeTag);
    }
}

TEST(SerdeFrame, TrailingGarbageRejected)
{
    // Valid frame, one extra payload byte: the length check in
    // peekFrame must reject the mismatch.
    std::string framed = encodeArtifact(sampleBlob());
    framed.push_back('\0');
    EXPECT_THROW(decodeArtifact<Blob>(framed), SerdeError);
}

TEST(SerdeFrame, FourccNamesArePrintable)
{
    EXPECT_EQ(fourccName(fourcc("NETL")), "NETL");
    EXPECT_EQ(fourccName(0x01020304u), "????");
}

} // namespace
} // namespace io
} // namespace ucx
