#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.hh"

namespace ucx
{
namespace
{

TEST(Csv, PlainRow)
{
    std::ostringstream out;
    CsvWriter w(out);
    w.writeRow({"a", "b", "c"});
    EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotesCommas)
{
    std::ostringstream out;
    CsvWriter w(out);
    w.writeRow({"a,b", "c"});
    EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

TEST(Csv, EscapesQuotes)
{
    std::ostringstream out;
    CsvWriter w(out);
    w.writeRow({"say \"hi\""});
    EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(Csv, QuotesNewlines)
{
    std::ostringstream out;
    CsvWriter w(out);
    w.writeRow({"two\nlines"});
    EXPECT_EQ(out.str(), "\"two\nlines\"\n");
}

TEST(Csv, EmptyRow)
{
    std::ostringstream out;
    CsvWriter w(out);
    w.writeRow({});
    EXPECT_EQ(out.str(), "\n");
}

TEST(Csv, MultipleRows)
{
    std::ostringstream out;
    CsvWriter w(out);
    w.writeRow({"h1", "h2"});
    w.writeRow({"1", "2"});
    EXPECT_EQ(out.str(), "h1,h2\n1,2\n");
}

} // namespace
} // namespace ucx
