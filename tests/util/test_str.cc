#include <gtest/gtest.h>

#include "util/str.hh"

namespace ucx
{
namespace
{

TEST(Str, SplitBasic)
{
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Str, SplitEmptyFields)
{
    auto parts = split("a,,c,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[3], "");
}

TEST(Str, SplitEmptyString)
{
    auto parts = split("", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(Str, SplitWsDropsEmpty)
{
    auto parts = splitWs("  alpha \t beta\n gamma  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "alpha");
    EXPECT_EQ(parts[2], "gamma");
}

TEST(Str, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("x"), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Str, ToLower)
{
    EXPECT_EQ(toLower("FanInLC"), "faninlc");
    EXPECT_EQ(toLower("already"), "already");
}

TEST(Str, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("module foo", "module"));
    EXPECT_FALSE(startsWith("mod", "module"));
    EXPECT_TRUE(endsWith("file.v", ".v"));
    EXPECT_FALSE(endsWith("v", ".v"));
}

TEST(Str, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Str, FmtFixed)
{
    EXPECT_EQ(fmtFixed(0.456789, 2), "0.46");
    EXPECT_EQ(fmtFixed(24.0, 1), "24.0");
}

TEST(Str, FmtCompactIntegers)
{
    EXPECT_EQ(fmtCompact(24.0, 2), "24");
    EXPECT_EQ(fmtCompact(-3.0, 2), "-3");
    EXPECT_EQ(fmtCompact(0.0, 2), "0");
}

TEST(Str, FmtCompactTrimsZeros)
{
    EXPECT_EQ(fmtCompact(0.5, 4), "0.5");
    EXPECT_EQ(fmtCompact(0.46, 4), "0.46");
    EXPECT_EQ(fmtCompact(1.75, 1), "1.8");
}

} // namespace
} // namespace ucx
