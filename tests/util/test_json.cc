#include <string>

#include <gtest/gtest.h>

#include "util/error.hh"
#include "util/json.hh"

using namespace ucx;

namespace
{

TEST(JsonTest, ParsesScalars)
{
    EXPECT_TRUE(json::Value::parse("null").isNull());
    EXPECT_TRUE(json::Value::parse("true").asBool());
    EXPECT_FALSE(json::Value::parse("false").asBool());
    EXPECT_EQ(json::Value::parse("42").asNumber(), 42.0);
    EXPECT_EQ(json::Value::parse("-1.5e2").asNumber(), -150.0);
    EXPECT_EQ(json::Value::parse("\"hi\"").asString(), "hi");
}

TEST(JsonTest, ParsesStringEscapes)
{
    json::Value v =
        json::Value::parse("\"a\\\"b\\\\c\\n\\t\\u0041\"");
    EXPECT_EQ(v.asString(), "a\"b\\c\n\tA");
    // Surrogate pair: U+1D11E (musical G clef) as UTF-8.
    json::Value clef = json::Value::parse("\"\\uD834\\uDD1E\"");
    EXPECT_EQ(clef.asString(), "\xF0\x9D\x84\x9E");
}

TEST(JsonTest, ParsesNestedContainers)
{
    json::Value v = json::Value::parse(
        R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.members().size(), 3u);
    const auto &a = v.at("a").items();
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a[1].asNumber(), 2.0);
    EXPECT_TRUE(a[2].at("b").asBool());
    EXPECT_TRUE(v.at("c").at("d").isNull());
    EXPECT_EQ(v.at("e").asString(), "x");
}

TEST(JsonTest, MembersPreserveOrderAndFirstKeyWins)
{
    json::Value v =
        json::Value::parse(R"({"z":1,"a":2,"z":3})");
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "z");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.at("z").asNumber(), 1.0); // first occurrence
}

TEST(JsonTest, FindReturnsNullForMissingAndAtThrows)
{
    json::Value v = json::Value::parse(R"({"a":1})");
    EXPECT_NE(v.find("a"), nullptr);
    EXPECT_EQ(v.find("b"), nullptr);
    EXPECT_THROW(v.at("b"), UcxError);
    EXPECT_EQ(json::Value::parse("3").find("a"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru",
          "\"unterminated", "1 2", "{} trailing", "\"\\q\"",
          "nan", "+1", "01", "[1,2,,3]"}) {
        EXPECT_THROW(json::Value::parse(bad), UcxError)
            << "input: " << bad;
    }
}

TEST(JsonTest, ReportsByteOffsetInErrors)
{
    try {
        json::Value::parse("{\"a\": x}");
        FAIL() << "expected UcxError";
    } catch (const UcxError &e) {
        EXPECT_NE(std::string(e.what()).find("offset"),
                  std::string::npos);
    }
}

TEST(JsonTest, TypeMismatchThrows)
{
    json::Value v = json::Value::parse("[1]");
    EXPECT_THROW(v.asNumber(), UcxError);
    EXPECT_THROW(v.asString(), UcxError);
    EXPECT_THROW(v.members(), UcxError);
    EXPECT_THROW(json::Value::parse("1").items(), UcxError);
}

TEST(JsonTest, DepthLimitStopsRunawayNesting)
{
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    EXPECT_THROW(json::Value::parse(deep), UcxError);
}

} // namespace
