#include <gtest/gtest.h>

#include "util/error.hh"
#include "util/logging.hh"

namespace ucx
{
namespace
{

TEST(Error, FatalThrowsUcxError)
{
    EXPECT_THROW(fatal("boom"), UcxError);
}

TEST(Error, PanicThrowsUcxPanic)
{
    EXPECT_THROW(panic("bug"), UcxPanic);
}

TEST(Error, RequirePassesOnTrue)
{
    EXPECT_NO_THROW(require(true, "fine"));
}

TEST(Error, RequireThrowsWithMessage)
{
    try {
        require(false, "specific message");
        FAIL() << "expected UcxError";
    } catch (const UcxError &e) {
        EXPECT_STREQ(e.what(), "specific message");
    }
}

TEST(Error, EnsureThrowsPanic)
{
    EXPECT_NO_THROW(ensure(true, "fine"));
    EXPECT_THROW(ensure(false, "bug"), UcxPanic);
}

TEST(Error, PanicIsNotUcxError)
{
    // The two exception families are distinct: a panic must not be
    // swallowed by handlers for user errors.
    try {
        panic("bug");
    } catch (const UcxError &) {
        FAIL() << "UcxPanic must not derive from UcxError";
    } catch (const UcxPanic &) {
        SUCCEED();
    }
}

TEST(Logging, LevelFilteringRoundTrip)
{
    LogLevel original = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    // These must not crash even when suppressed.
    debug("d");
    inform("i");
    warn("w");
    setLogLevel(original);
}

} // namespace
} // namespace ucx
