#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-2.0, 3.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    const int n = 100000;
    double sum = 0.0;
    double ss = 0.0;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal(2.0, 3.0);
        sum += x;
        ss += x * x;
    }
    double mean = sum / n;
    double var = ss / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSigma)
{
    Rng rng(1);
    EXPECT_THROW(rng.normal(0.0, -1.0), UcxError);
}

TEST(Rng, LognormalMedian)
{
    Rng rng(17);
    const int n = 50000;
    std::vector<double> xs;
    xs.reserve(n);
    for (int i = 0; i < n; ++i)
        xs.push_back(rng.lognormal(0.0, 0.5));
    std::sort(xs.begin(), xs.end());
    // Median of exp(N(0, s)) is 1.
    EXPECT_NEAR(xs[n / 2], 1.0, 0.03);
}

TEST(Rng, BelowBounds)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowZeroThrows)
{
    Rng rng(1);
    EXPECT_THROW(rng.below(0), UcxError);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(23);
    std::vector<int> seen(5, 0);
    for (int i = 0; i < 5000; ++i)
        ++seen[rng.below(5)];
    for (int count : seen)
        EXPECT_GT(count, 800);
}

TEST(RngSplit, PureFunctionOfSeedAndStream)
{
    Rng a(42);
    Rng b(42);
    Rng childA = a.split(7);
    Rng childB = b.split(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(childA.next(), childB.next());
}

TEST(RngSplit, DoesNotAdvanceParent)
{
    Rng a(42);
    Rng b(42);
    (void)a.split(1);
    (void)a.split(2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngSplit, DistinctStreamsDecorrelated)
{
    Rng root(42);
    Rng a = root.split(0);
    Rng b = root.split(1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(RngSplit, IndependentOfParentDrawPosition)
{
    // The child stream must depend only on (parent state at split,
    // streamId) — drawing from one child must not perturb another.
    Rng root(42);
    Rng lateRef = root.split(5);
    std::vector<uint64_t> expected;
    for (int i = 0; i < 10; ++i)
        expected.push_back(lateRef.next());

    Rng root2(42);
    Rng early = root2.split(3);
    for (int i = 0; i < 17; ++i)
        (void)early.normal();
    Rng late = root2.split(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(late.next(), expected[static_cast<size_t>(i)]);
}

TEST(RngSplit, SpareDoesNotLeakIntoChild)
{
    // Regression: a parent mid-Box-Muller (spare cached) must hand
    // its children the same streams as a parent at the same state
    // position with no spare. normal() consumes exactly two raw
    // draws, so `plain` below sits at the same xoshiro state as
    // `parked` — they differ only in the cached spare.
    Rng parked(42);
    (void)parked.normal(); // leaves a spare cached
    Rng plain(42);
    (void)plain.next();
    (void)plain.next();
    Rng fromParked = parked.split(9);
    Rng fromPlain = plain.split(9);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(fromParked.normal(), fromPlain.normal());
}

TEST(RngSpare, StoresUnitNormalScaledAtDrawTime)
{
    // Regression: the Box-Muller spare is a *unit* normal scaled by
    // the sigma of the draw that consumes it, not the sigma of the
    // draw that produced it.
    Rng a(42);
    Rng b(42);
    double firstA = a.normal(0.0, 1.0);   // caches a unit spare
    double firstB = b.normal(0.0, 100.0); // same spare, other sigma
    EXPECT_DOUBLE_EQ(100.0 * firstA, firstB);
    double spareA = a.normal(0.0, 3.0);
    double spareB = b.normal(0.0, 3.0);
    EXPECT_DOUBLE_EQ(spareA, spareB);

    // And with a mean shift: spare scaling is mean + sigma * z.
    Rng c(42);
    (void)c.normal(0.0, 1.0);
    double shifted = c.normal(10.0, 3.0);
    EXPECT_DOUBLE_EQ(shifted, 10.0 + spareA / 3.0 * 3.0);
}

} // namespace
} // namespace ucx
