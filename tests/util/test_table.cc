#include <gtest/gtest.h>

#include "util/error.hh"
#include "util/table.hh"

namespace ucx
{
namespace
{

TEST(Table, RendersHeaderAndRows)
{
    Table t({"Name", "Value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    // Header rule is present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, ColumnsAligned)
{
    Table t({"A", "B"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2"});
    std::string out = t.render();
    // All lines must have equal length (fixed-width columns).
    size_t first_len = out.find('\n');
    size_t pos = 0;
    while (pos < out.size()) {
        size_t next = out.find('\n', pos);
        if (next == std::string::npos)
            break;
        EXPECT_EQ(next - pos, first_len);
        pos = next + 1;
    }
}

TEST(Table, RowWidthMismatchThrows)
{
    Table t({"A", "B"});
    EXPECT_THROW(t.addRow({"only-one"}), UcxError);
}

TEST(Table, EmptyHeaderThrows)
{
    EXPECT_THROW(Table({}), UcxError);
}

TEST(Table, RuleSeparatesSections)
{
    Table t({"A"});
    t.addRow({"above"});
    t.addRule();
    t.addRow({"below"});
    std::string out = t.render();
    size_t above = out.find("above");
    size_t below = out.find("below");
    size_t rule = out.find("---", above);
    EXPECT_LT(above, rule);
    EXPECT_LT(rule, below);
}

TEST(Table, RowCount)
{
    Table t({"A"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 3u); // rules count as rows internally
}

TEST(Table, AlignmentOutOfRangeThrows)
{
    Table t({"A"});
    EXPECT_THROW(t.setAlign(5, Align::Left), UcxError);
}

} // namespace
} // namespace ucx
