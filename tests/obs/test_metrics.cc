#include <cmath>
#include <limits>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.hh"

using namespace ucx;

namespace
{

class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setEnabled(true);
        obs::Registry::instance().reset();
    }

    void TearDown() override { obs::setEnabled(false); }
};

TEST_F(MetricsTest, CounterAccumulates)
{
    obs::Counter &c = obs::counter("test.counter.basic");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, RegistryReturnsSameInstrumentByName)
{
    obs::Counter &a = obs::counter("test.counter.same");
    obs::Counter &b = obs::counter("test.counter.same");
    EXPECT_EQ(&a, &b);
    obs::Histogram &h1 = obs::histogram("test.hist.same");
    obs::Histogram &h2 = obs::histogram("test.hist.same");
    EXPECT_EQ(&h1, &h2);
}

TEST_F(MetricsTest, GaugeLastWriteWins)
{
    obs::Gauge &g = obs::gauge("test.gauge.basic");
    g.set(1.5);
    g.set(-3.25);
    EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST_F(MetricsTest, HistogramBucketBoundaries)
{
    // Bucket 0 holds values below 1.
    EXPECT_EQ(obs::Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(0.5), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(0.999), 0u);
    // Bucket i holds [2^(i-1), 2^i).
    EXPECT_EQ(obs::Histogram::bucketIndex(1.0), 1u);
    EXPECT_EQ(obs::Histogram::bucketIndex(1.999), 1u);
    EXPECT_EQ(obs::Histogram::bucketIndex(2.0), 2u);
    EXPECT_EQ(obs::Histogram::bucketIndex(3.999), 2u);
    EXPECT_EQ(obs::Histogram::bucketIndex(4.0), 3u);
    EXPECT_EQ(obs::Histogram::bucketIndex(1024.0), 11u);
    // Everything huge lands in the last bucket.
    EXPECT_EQ(obs::Histogram::bucketIndex(1e30),
              obs::Histogram::kBuckets - 1);

    // Upper bounds line up with the bucket definition: le(0) = 1,
    // le(i) = 2^i, last = +inf.
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(0), 1.0);
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(1), 2.0);
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(11), 2048.0);
    EXPECT_TRUE(std::isinf(obs::Histogram::bucketUpperBound(
        obs::Histogram::kBuckets - 1)));

    // Every value sorts strictly below its bucket's upper bound and
    // at or above the previous bucket's.
    for (double v : {0.25, 1.0, 1.5, 2.0, 7.0, 100.0, 1e6}) {
        size_t b = obs::Histogram::bucketIndex(v);
        EXPECT_LT(v, obs::Histogram::bucketUpperBound(b)) << v;
        if (b > 0)
            EXPECT_GE(v, obs::Histogram::bucketUpperBound(b - 1)) << v;
    }
}

TEST_F(MetricsTest, HistogramStats)
{
    obs::Histogram &h = obs::histogram("test.hist.stats");
    h.observe(1.0);
    h.observe(3.0);
    h.observe(8.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 12.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 8.0);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    std::vector<uint64_t> buckets = h.bucketCounts();
    EXPECT_EQ(buckets[obs::Histogram::bucketIndex(1.0)], 1u);
    EXPECT_EQ(buckets[obs::Histogram::bucketIndex(3.0)], 1u);
    EXPECT_EQ(buckets[obs::Histogram::bucketIndex(8.0)], 1u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST_F(MetricsTest, CounterIsThreadSafe)
{
    obs::Counter &c = obs::counter("test.counter.threads");
    constexpr int kPerThread = 100000;
    auto work = [&c] {
        for (int i = 0; i < kPerThread; ++i)
            c.add();
    };
    std::thread a(work), b(work);
    a.join();
    b.join();
    EXPECT_EQ(c.value(), 2u * kPerThread);
}

TEST_F(MetricsTest, HistogramIsThreadSafe)
{
    obs::Histogram &h = obs::histogram("test.hist.threads");
    constexpr int kPerThread = 50000;
    auto work = [&h](double v) {
        for (int i = 0; i < kPerThread; ++i)
            h.observe(v);
    };
    std::thread a(work, 1.0), b(work, 3.0);
    a.join();
    b.join();
    EXPECT_EQ(h.count(), 2u * kPerThread);
    EXPECT_DOUBLE_EQ(h.sum(), kPerThread * 1.0 + kPerThread * 3.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST_F(MetricsTest, SnapshotIsSortedAndComplete)
{
    obs::counter("test.snap.b").add(2);
    obs::counter("test.snap.a").add(1);
    obs::gauge("test.snap.g").set(7.0);
    obs::histogram("test.snap.h").observe(5.0);
    obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].name, "test.snap.a");
    EXPECT_EQ(snap.counters[0].value, 1u);
    EXPECT_EQ(snap.counters[1].name, "test.snap.b");
    EXPECT_EQ(snap.counters[1].value, 2u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(snap.gauges[0].value, 7.0);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 1u);
    EXPECT_EQ(snap.histograms[0].buckets.size(),
              obs::Histogram::kBuckets);
}

TEST(MetricsDisabledTest, MutationsAreNoOpsWhenDisabled)
{
    obs::setEnabled(false);
    obs::Registry::instance().reset();
    EXPECT_FALSE(obs::enabled());

    obs::Counter &c = obs::counter("test.off.counter");
    c.add(100);
    EXPECT_EQ(c.value(), 0u);

    obs::Gauge &g = obs::gauge("test.off.gauge");
    g.set(3.0);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);

    obs::Histogram &h = obs::histogram("test.off.hist");
    h.observe(9.0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);

    // Re-enabling makes the same handles live again.
    obs::setEnabled(true);
    c.add(1);
    EXPECT_EQ(c.value(), 1u);
    obs::setEnabled(false);
}

TEST_F(MetricsTest, QuantileOfEmptyHistogramIsZero)
{
    obs::histogram("test.q.empty");
    obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(snap.histograms[0], 0.5),
                     0.0);
}

TEST_F(MetricsTest, QuantileOfSingleSampleIsThatSample)
{
    obs::histogram("test.q.single").observe(7.0);
    obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
    const obs::HistogramSample &h = snap.histograms[0];
    for (double q : {0.0, 0.01, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(obs::histogramQuantile(h, q), 7.0) << q;
}

TEST_F(MetricsTest, QuantilesAreOrderedAndInsideTheEnvelope)
{
    obs::Histogram &h = obs::histogram("test.q.spread");
    for (int i = 1; i <= 1000; ++i)
        h.observe(static_cast<double>(i));
    obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
    const obs::HistogramSample &s = snap.histograms[0];

    double p50 = obs::histogramQuantile(s, 0.50);
    double p90 = obs::histogramQuantile(s, 0.90);
    double p99 = obs::histogramQuantile(s, 0.99);
    EXPECT_LE(s.min, p50);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, s.max);
    // Log2 buckets bound the estimate by the bucket, not the exact
    // rank: p50 of 1..1000 is 500, inside [256, 1000].
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1000.0);
    // The extremes pin to the exact envelope.
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(s, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(obs::histogramQuantile(s, 1.0), 1000.0);
}

} // namespace
