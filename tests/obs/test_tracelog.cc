#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "exec/context.hh"
#include "obs/memory.hh"
#include "obs/metrics.hh"
#include "obs/tracelog.hh"
#include "util/json.hh"

using namespace ucx;

namespace
{

class TraceLogTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setTraceEnabled(true);
        obs::resetTraceLog();
    }

    void TearDown() override
    {
        obs::setTraceEnabled(false);
        obs::setTraceCapacity(65536);
        obs::resetTraceLog();
    }
};

/** Every non-metadata event of one run, normalized for comparison:
 *  (name, phase, args), timestamps and thread placement dropped. */
using EventKey =
    std::tuple<std::string, char,
               std::vector<std::pair<std::string, std::string>>>;

std::vector<EventKey>
normalizedEvents(const obs::TraceSnapshot &snap,
                 const std::string &name_filter = "")
{
    std::vector<EventKey> out;
    for (const auto &t : snap.threads) {
        for (const obs::TraceEvent &e : t.events) {
            if (!name_filter.empty() && e.name != name_filter)
                continue;
            out.emplace_back(e.name, static_cast<char>(e.phase),
                             e.args);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

TEST_F(TraceLogTest, DisabledPathRecordsNothing)
{
    obs::setTraceEnabled(false);
    EXPECT_FALSE(obs::traceEnabled());
    obs::traceInstant("off.instant", {{"k", "v"}});
    obs::traceCounter("off.counter", 1.0);
    {
        obs::TraceScope scope("off.scope");
        EXPECT_FALSE(scope.active());
        scope.arg("k", "v"); // must be a no-op, not a crash
    }
    EXPECT_EQ(obs::traceSnapshot().eventCount(), 0u);
}

TEST_F(TraceLogTest, ScopeEmitsBalancedBeginEndWithArgs)
{
    {
        obs::TraceScope scope("t.scope");
        ASSERT_TRUE(scope.active());
        scope.arg("pass", "lower").arg("cache", "hit");
    }
    obs::TraceSnapshot snap = obs::traceSnapshot();
    ASSERT_EQ(snap.eventCount(), 2u);

    std::vector<obs::TraceEvent> events;
    for (const auto &t : snap.threads)
        events.insert(events.end(), t.events.begin(),
                      t.events.end());
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].phase, obs::TraceEvent::Phase::Begin);
    EXPECT_EQ(events[0].name, "t.scope");
    EXPECT_TRUE(events[0].args.empty());
    EXPECT_EQ(events[1].phase, obs::TraceEvent::Phase::End);
    EXPECT_EQ(events[1].name, "t.scope");
    ASSERT_EQ(events[1].args.size(), 2u);
    EXPECT_EQ(events[1].args[0].first, "pass");
    EXPECT_EQ(events[1].args[0].second, "lower");
    EXPECT_GE(events[1].tsNs, events[0].tsNs);
}

TEST_F(TraceLogTest, FullBufferDropsAndCountsInsteadOfBlocking)
{
    obs::setTraceCapacity(4);
    obs::resetTraceLog();
    for (int i = 0; i < 10; ++i)
        obs::traceInstant("drop.instant");
    obs::TraceSnapshot snap = obs::traceSnapshot();
    EXPECT_EQ(snap.eventCount(), 4u);
    EXPECT_EQ(snap.droppedCount(), 6u);

    // resetTraceLog() clears both the events and the drop counts.
    obs::resetTraceLog();
    snap = obs::traceSnapshot();
    EXPECT_EQ(snap.eventCount(), 0u);
    EXPECT_EQ(snap.droppedCount(), 0u);
}

TEST_F(TraceLogTest, EventSetIsThreadCountInvariant)
{
    // The same attributed workload at 1 and at 8 threads must record
    // the same normalized event set — events move between worker
    // tracks but never change or disappear (the determinism contract
    // extended to traces).
    auto workload = [](const ExecContext &ctx) {
        ctx.parallelFor(64, [](size_t i) {
            obs::TraceScope scope("det.item");
            if (scope.active())
                scope.arg("i", std::to_string(i));
            obs::traceInstant("det.visit",
                              {{"i", std::to_string(i)}});
        });
    };

    workload(ExecContext::withThreads(1));
    obs::TraceSnapshot serial = obs::traceSnapshot();
    obs::resetTraceLog();
    workload(ExecContext::withThreads(8));
    obs::TraceSnapshot parallel = obs::traceSnapshot();

    ASSERT_EQ(serial.droppedCount(), 0u);
    ASSERT_EQ(parallel.droppedCount(), 0u);
    for (const char *name : {"det.item", "det.visit"}) {
        std::vector<EventKey> a = normalizedEvents(serial, name);
        std::vector<EventKey> b = normalizedEvents(parallel, name);
        EXPECT_EQ(a.size(), name == std::string("det.item") ? 128u
                                                            : 64u);
        EXPECT_EQ(a, b) << "event set for " << name
                        << " changed with the thread count";
    }
}

TEST_F(TraceLogTest, PerfettoJsonRoundTripsThroughParser)
{
    obs::setTraceThreadName("main-test");
    {
        obs::TraceScope scope("pj.scope");
        scope.arg("design", "pipeline");
        obs::traceInstant("pj.instant", {{"key", "va\"lue"}});
        obs::traceCounter("pj.counter", 2.5);
    }
    std::string text = obs::perfettoJson(obs::traceSnapshot());
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');

    json::Value root = json::Value::parse(text);
    EXPECT_EQ(root.at("otherData").at("schema").asString(),
              "ucx_tracelog.v1");
    EXPECT_EQ(root.at("otherData").at("dropped").asNumber(), 0.0);

    const auto &events = root.at("traceEvents").items();
    // process_name + thread_name + B + i + C + E at minimum.
    ASSERT_GE(events.size(), 6u);

    bool sawProcessName = false;
    bool sawThreadName = false;
    std::map<double, int> beginEndDepth; // tid -> open scopes
    for (const json::Value &e : events) {
        const std::string &ph = e.at("ph").asString();
        const std::string &name = e.at("name").asString();
        if (ph == "M") {
            sawProcessName |= name == "process_name";
            sawThreadName |= name == "thread_name" &&
                             e.at("args").at("name").asString() ==
                                 "main-test";
            continue;
        }
        double tid = e.at("tid").asNumber();
        EXPECT_GE(e.at("ts").asNumber(), 0.0);
        if (ph == "B")
            ++beginEndDepth[tid];
        else if (ph == "E")
            --beginEndDepth[tid];
        else
            EXPECT_TRUE(ph == "i" || ph == "C") << "phase " << ph;
        if (name == "pj.instant") {
            EXPECT_EQ(ph, "i");
            EXPECT_EQ(e.at("s").asString(), "t");
            EXPECT_EQ(e.at("args").at("key").asString(), "va\"lue");
        }
        if (name == "pj.counter") {
            EXPECT_EQ(ph, "C");
            EXPECT_EQ(e.at("args").at("value").asNumber(), 2.5);
        }
    }
    EXPECT_TRUE(sawProcessName);
    EXPECT_TRUE(sawThreadName);
    for (const auto &[tid, depth] : beginEndDepth)
        EXPECT_EQ(depth, 0) << "unbalanced B/E on tid " << tid;
}

TEST_F(TraceLogTest, ResetAllClearsEveryObservabilitySurface)
{
    obs::setEnabled(true);
    obs::counter("ra.counter").add(3);
    obs::traceInstant("ra.instant");
    ASSERT_GE(obs::traceSnapshot().eventCount(), 1u);

    obs::resetAll();
    EXPECT_EQ(obs::traceSnapshot().eventCount(), 0u);
    obs::MetricsSnapshot metrics =
        obs::Registry::instance().snapshot();
    for (const auto &c : metrics.counters)
        EXPECT_EQ(c.value, 0u) << c.name;
    obs::setEnabled(false);
}

TEST_F(TraceLogTest, MemoryGaugesReportResidentSet)
{
    obs::MemoryUsage usage = obs::readMemoryUsage();
#if defined(__linux__)
    ASSERT_TRUE(usage.valid);
    EXPECT_GT(usage.rssBytes, 0u);
    EXPECT_GE(usage.rssPeakBytes, usage.rssBytes);
#endif
    obs::setEnabled(true);
    obs::sampleMemoryGauges();
    if (usage.valid) {
        obs::MetricsSnapshot metrics =
            obs::Registry::instance().snapshot();
        bool sawRss = false;
        bool sawPeak = false;
        for (const auto &g : metrics.gauges) {
            sawRss |= g.name == "obs.rss_bytes" && g.value > 0.0;
            sawPeak |=
                g.name == "obs.rss_peak_bytes" && g.value > 0.0;
        }
        EXPECT_TRUE(sawRss);
        EXPECT_TRUE(sawPeak);
    }
    obs::setEnabled(false);
}

} // namespace
