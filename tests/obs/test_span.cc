#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "obs/span.hh"

using namespace ucx;

namespace
{

class SpanTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setEnabled(true);
        obs::resetSpans();
    }

    void TearDown() override { obs::setEnabled(false); }
};

void
busyWait(std::chrono::microseconds at_least)
{
    auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start < at_least) {
    }
}

TEST_F(SpanTest, NestedSpansFormTree)
{
    {
        obs::ScopedSpan outer("outer");
        busyWait(std::chrono::microseconds(200));
        {
            obs::ScopedSpan inner("inner");
            busyWait(std::chrono::microseconds(200));
        }
    }
    obs::SpanStats root = obs::spanSnapshot();
    EXPECT_EQ(root.name, "root");
    ASSERT_EQ(root.children.size(), 1u);
    const obs::SpanStats &outer = root.children[0];
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(outer.calls, 1u);
    const obs::SpanStats *inner = outer.child("inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->calls, 1u);
    EXPECT_GT(inner->totalNs, 0u);
    // A parent's total covers its children; self time is the rest.
    EXPECT_GE(outer.totalNs, inner->totalNs);
    EXPECT_EQ(outer.selfNs(), outer.totalNs - inner->totalNs);
    EXPECT_EQ(outer.child("missing"), nullptr);
}

TEST_F(SpanTest, RepeatedSpansAggregate)
{
    for (int i = 0; i < 3; ++i) {
        obs::ScopedSpan outer("stage");
        obs::ScopedSpan inner("sub");
    }
    obs::SpanStats root = obs::spanSnapshot();
    ASSERT_EQ(root.children.size(), 1u);
    EXPECT_EQ(root.children[0].calls, 3u);
    ASSERT_EQ(root.children[0].children.size(), 1u);
    EXPECT_EQ(root.children[0].children[0].calls, 3u);
}

TEST_F(SpanTest, SameNameUnderDifferentParentsStaysSeparate)
{
    {
        obs::ScopedSpan a("a");
        obs::ScopedSpan shared("shared");
    }
    {
        obs::ScopedSpan b("b");
        obs::ScopedSpan shared("shared");
    }
    obs::SpanStats root = obs::spanSnapshot();
    ASSERT_EQ(root.children.size(), 2u);
    for (const auto &top : root.children) {
        const obs::SpanStats *shared = top.child("shared");
        ASSERT_NE(shared, nullptr) << top.name;
        EXPECT_EQ(shared->calls, 1u);
    }
}

TEST_F(SpanTest, SiblingsAfterCloseAttachToSameParent)
{
    {
        obs::ScopedSpan outer("outer");
        {
            obs::ScopedSpan first("first");
        }
        {
            obs::ScopedSpan second("second");
        }
    }
    obs::SpanStats root = obs::spanSnapshot();
    ASSERT_EQ(root.children.size(), 1u);
    EXPECT_NE(root.children[0].child("first"), nullptr);
    EXPECT_NE(root.children[0].child("second"), nullptr);
}

TEST_F(SpanTest, ResetClearsRecordedSpans)
{
    {
        obs::ScopedSpan span("gone");
    }
    obs::resetSpans();
    obs::SpanStats root = obs::spanSnapshot();
    for (const auto &child : root.children) {
        EXPECT_EQ(child.calls, 0u);
        EXPECT_EQ(child.totalNs, 0u);
    }
}

TEST(SpanDisabledTest, SpansAreInertWhenDisabled)
{
    obs::setEnabled(false);
    obs::resetSpans();
    {
        obs::ScopedSpan span("invisible");
    }
    obs::SpanStats root = obs::spanSnapshot();
    for (const auto &child : root.children)
        EXPECT_NE(child.name, "invisible");
}

} // namespace
