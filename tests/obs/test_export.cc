#include <cctype>
#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

using namespace ucx;

namespace
{

class ExportTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setEnabled(true);
        obs::Registry::instance().reset();
        obs::resetSpans();
    }

    void TearDown() override { obs::setEnabled(false); }
};

// Minimal structural JSON check: balanced braces/brackets outside
// string literals, and no trailing commas before a closer.
void
expectBalancedJson(const std::string &text)
{
    int depth = 0;
    bool in_string = false;
    char prev = '\0';
    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i; // skip the escaped character
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            EXPECT_NE(prev, ',') << "trailing comma at offset " << i;
            --depth;
            EXPECT_GE(depth, 0);
        }
        if (!std::isspace(static_cast<unsigned char>(c)))
            prev = c;
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
}

TEST_F(ExportTest, JsonEscapeHandlesSpecials)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(obs::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST_F(ExportTest, JsonNumberRejectsNonFinite)
{
    EXPECT_EQ(obs::jsonNumber(1.5), "1.5");
    EXPECT_EQ(obs::jsonNumber(0.0), "0");
    EXPECT_EQ(obs::jsonNumber(std::nan("")), "null");
    EXPECT_EQ(obs::jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
}

TEST_F(ExportTest, SnapshotJsonShape)
{
    obs::counter("exp.counter").add(3);
    obs::gauge("exp.gauge").set(2.5);
    obs::histogram("exp.hist").observe(5.0);
    {
        obs::ScopedSpan outer("exp.outer");
        obs::ScopedSpan inner("exp.inner");
    }

    std::string json = obs::snapshotJson(
        obs::Registry::instance().snapshot(), obs::spanSnapshot());
    expectBalancedJson(json);
    EXPECT_NE(json.find("\"schema\":\"ucx.obs.v1\""), std::string::npos);
    EXPECT_NE(json.find("\"exp.counter\":3"), std::string::npos);
    EXPECT_NE(json.find("\"exp.gauge\":2.5"), std::string::npos);
    EXPECT_NE(json.find("\"exp.hist\":{\"count\":1"), std::string::npos);
    // A single sample pins every quantile to that sample's value.
    EXPECT_NE(json.find("\"p50\":5"), std::string::npos);
    EXPECT_NE(json.find("\"p90\":5"), std::string::npos);
    EXPECT_NE(json.find("\"p99\":5"), std::string::npos);
    // 5.0 falls in [4,8), so its bucket upper bound is 8.
    EXPECT_NE(json.find("{\"le\":8,\"count\":1}"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"exp.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"exp.inner\""), std::string::npos);
    // The inner span serializes inside the outer span's children.
    EXPECT_LT(json.find("\"name\":\"exp.outer\""),
              json.find("\"name\":\"exp.inner\""));
}

TEST_F(ExportTest, BenchReportWrapsSnapshot)
{
    obs::counter("exp.bench.counter").add(1);
    std::string json = obs::benchReportJson("unit_test", 12.5);
    expectBalancedJson(json);
    EXPECT_EQ(json.back(), '\n');
    EXPECT_NE(json.find("\"schema\":\"ucx.bench.v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"bench\":\"unit_test\""), std::string::npos);
    EXPECT_NE(json.find("\"wall_ms\":12.5"), std::string::npos);
    // v2 carries the run configuration so ucx_obsdiff can refuse
    // apples-to-oranges comparisons.
    EXPECT_NE(json.find("\"settings\":{\"ucx_threads\":"),
              std::string::npos);
    EXPECT_NE(json.find("\"ucx_cache\":"), std::string::npos);
    EXPECT_NE(json.find("\"ucx_cache_capacity\":"),
              std::string::npos);
    EXPECT_NE(json.find("\"obs\":{\"schema\":\"ucx.obs.v1\""),
              std::string::npos);
}

TEST_F(ExportTest, SnapshotTableMentionsEveryInstrument)
{
    obs::counter("tab.counter").add(2);
    obs::histogram("tab.hist").observe(1.0);
    {
        obs::ScopedSpan span("tab.span");
    }
    std::string text = obs::snapshotTable(
        obs::Registry::instance().snapshot(), obs::spanSnapshot());
    EXPECT_NE(text.find("tab.counter"), std::string::npos);
    EXPECT_NE(text.find("tab.hist"), std::string::npos);
    EXPECT_NE(text.find("tab.span"), std::string::npos);
}

} // namespace
