#include <cmath>

#include <gtest/gtest.h>

#include "obs/trace.hh"

using namespace ucx;

namespace
{

obs::IterationSample
sampleAt(size_t iteration, double objective)
{
    obs::IterationSample s;
    s.iteration = iteration;
    s.objective = objective;
    s.evaluations = iteration + 1;
    return s;
}

TEST(ConvergenceTraceTest, RecordsSamplesInOrder)
{
    obs::ConvergenceTrace trace;
    EXPECT_TRUE(trace.empty());
    trace.record(sampleAt(0, 10.0));
    trace.record(sampleAt(1, 5.0));
    trace.record(sampleAt(2, 2.5));
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_DOUBLE_EQ(trace.front().objective, 10.0);
    EXPECT_DOUBLE_EQ(trace.back().objective, 2.5);
    EXPECT_EQ(trace.back().iteration, 2u);
}

TEST(ConvergenceTraceTest, MonotoneCheck)
{
    obs::ConvergenceTrace trace;
    trace.record(sampleAt(0, 3.0));
    trace.record(sampleAt(1, 3.0)); // equal is allowed
    trace.record(sampleAt(2, 1.0));
    EXPECT_TRUE(trace.monotoneNonIncreasing());

    trace.record(sampleAt(3, 1.0 + 1e-9));
    EXPECT_FALSE(trace.monotoneNonIncreasing());
    EXPECT_TRUE(trace.monotoneNonIncreasing(1e-8));
}

TEST(ConvergenceTraceTest, DecimationKeepsSubsequenceAndEndpoints)
{
    obs::ConvergenceTrace trace;
    const size_t total = 10000;
    for (size_t i = 0; i < total; ++i)
        trace.record(sampleAt(i, static_cast<double>(total - i)));
    EXPECT_LE(trace.size(), obs::ConvergenceTrace::kMaxSamples);
    EXPECT_GE(trace.size(), obs::ConvergenceTrace::kMaxSamples / 2);
    // The first sample always survives decimation.
    EXPECT_EQ(trace.front().iteration, 0u);
    // Retained samples are a strictly increasing subsequence, so the
    // monotone diagnostic stays meaningful after decimation.
    for (size_t i = 1; i < trace.size(); ++i)
        EXPECT_LT(trace.samples()[i - 1].iteration,
                  trace.samples()[i].iteration);
    EXPECT_TRUE(trace.monotoneNonIncreasing());
}

TEST(ConvergenceTraceTest, AppendRenumbersAndAdoptsFlags)
{
    obs::ConvergenceTrace head;
    head.algorithm = "nelder_mead";
    head.restarts = 2;
    head.record(sampleAt(0, 8.0));
    head.record(sampleAt(5, 4.0));

    obs::ConvergenceTrace tail;
    tail.algorithm = "bfgs";
    tail.converged = true;
    obs::IterationSample t0 = sampleAt(0, 4.0);
    obs::IterationSample t1 = sampleAt(1, 3.0);
    tail.record(t0);
    tail.record(t1);

    head.append(tail);
    ASSERT_EQ(head.size(), 4u);
    EXPECT_EQ(head.algorithm, "nelder_mead+bfgs");
    EXPECT_TRUE(head.converged);
    EXPECT_EQ(head.restarts, 2u);
    // Tail iterations continue after the head's last iteration.
    EXPECT_GT(head.samples()[2].iteration, head.samples()[1].iteration);
    EXPECT_GT(head.samples()[3].iteration, head.samples()[2].iteration);
    EXPECT_DOUBLE_EQ(head.back().objective, 3.0);
    // Evaluation counts accumulate across the seam too.
    EXPECT_GT(head.samples()[2].evaluations,
              head.samples()[1].evaluations);
    EXPECT_TRUE(head.monotoneNonIncreasing());
}

TEST(ConvergenceTraceTest, ClearResetsEverything)
{
    obs::ConvergenceTrace trace;
    trace.record(sampleAt(0, 1.0));
    trace.clear();
    EXPECT_TRUE(trace.empty());
    trace.record(sampleAt(0, 2.0));
    EXPECT_EQ(trace.size(), 1u);
}

} // namespace
