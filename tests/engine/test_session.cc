/**
 * @file
 * Tests of the EstimationSession facade: fits match the underlying
 * fitEstimator/fitDee1 entry points exactly, memoization goes
 * through the session cache, predictions match the FittedEstimator
 * methods, the accounting ablation uses the no-accounting dataset,
 * and measurement errors carry the component name.
 */

#include <string>

#include <gtest/gtest.h>

#include "data/paper_data.hh"
#include "engine/session.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

void
expectSameFit(const FittedEstimator &a, const FittedEstimator &b)
{
    ASSERT_EQ(a.metrics(), b.metrics());
    ASSERT_EQ(a.weights().size(), b.weights().size());
    for (size_t i = 0; i < a.weights().size(); ++i)
        EXPECT_EQ(a.weights()[i], b.weights()[i]);
    EXPECT_EQ(a.sigmaEps(), b.sigmaEps());
    EXPECT_EQ(a.sigmaRho(), b.sigmaRho());
    EXPECT_EQ(a.logLik(), b.logLik());
    EXPECT_EQ(a.productivities(), b.productivities());
}

TEST(EstimatorSpec, NamesAndFingerprints)
{
    EstimatorSpec dee1 = EstimatorSpec::dee1();
    EXPECT_EQ(dee1.name(), "Stmts+FanInLC");
    EXPECT_EQ(dee1.fingerprint(), "Stmts+FanInLC|mixed|clamp");

    EstimatorSpec pooled =
        EstimatorSpec::single(Metric::Nets, FitMode::Pooled);
    EXPECT_EQ(pooled.fingerprint(), "Nets|pooled|clamp");
    EXPECT_NE(dee1.fingerprint(),
              EstimatorSpec::dee1(FitMode::Pooled).fingerprint());
}

TEST(Session, FitMatchesDirectFitDee1)
{
    EstimationSession session;
    FittedEstimator ours = session.fit(EstimatorSpec::dee1());
    FittedEstimator direct = fitDee1(
        paperDataset(), FitMode::MixedEffects, session.exec());
    expectSameFit(ours, direct);
}

TEST(Session, SingleMetricFitMatchesDirectFit)
{
    EstimationSession session;
    FittedEstimator ours =
        session.fit(EstimatorSpec::single(Metric::Nets));
    FittedEstimator direct =
        fitEstimator(paperDataset(), {Metric::Nets},
                     FitMode::MixedEffects, ZeroPolicy::ClampToOne,
                     session.exec());
    expectSameFit(ours, direct);
}

TEST(Session, FitIsMemoizedInTheSessionCache)
{
    EstimationSession session;
    FittedEstimator first = session.fit(EstimatorSpec::dee1());
    uint64_t misses = session.cache().stats().misses;
    uint64_t hits = session.cache().stats().hits;

    FittedEstimator second = session.fit(EstimatorSpec::dee1());
    expectSameFit(first, second);
    EXPECT_EQ(session.cache().stats().misses, misses);
    EXPECT_EQ(session.cache().stats().hits, hits + 1);
}

TEST(Session, DisabledCacheStillGivesIdenticalFits)
{
    SessionConfig off;
    off.cacheEnabled = false;
    EstimationSession uncached(off, ExecContext::serial());
    EstimationSession cached(SessionConfig{},
                             ExecContext::serial());
    expectSameFit(uncached.fit(EstimatorSpec::dee1()),
                  cached.fit(EstimatorSpec::dee1()));
    EXPECT_EQ(uncached.cache().stats().entries, 0u);
}

TEST(Session, AblateFitsTheNoAccountingDataset)
{
    EstimationSession session;
    FittedEstimator ablated =
        session.ablate(EstimatorSpec::single(Metric::FanInLC));
    FittedEstimator direct = fitEstimator(
        paperDatasetNoAccounting(), {Metric::FanInLC},
        FitMode::MixedEffects, ZeroPolicy::ClampToOne,
        session.exec());
    expectSameFit(ablated, direct);

    // The two datasets must key separately: fitting both leaves
    // both cached, and re-fitting either is pure hits.
    session.fit(EstimatorSpec::single(Metric::FanInLC));
    uint64_t misses = session.cache().stats().misses;
    session.ablate(EstimatorSpec::single(Metric::FanInLC));
    session.fit(EstimatorSpec::single(Metric::FanInLC));
    EXPECT_EQ(session.cache().stats().misses, misses);
}

TEST(Session, PredictMatchesEstimatorMethods)
{
    EstimationSession session;
    FittedEstimator dee1 = session.fit(EstimatorSpec::dee1());

    MetricValues v{};
    v[static_cast<size_t>(Metric::Stmts)] = 1500;
    v[static_cast<size_t>(Metric::FanInLC)] = 9000;

    Prediction p = session.predict(dee1, v, 0.8);
    EXPECT_EQ(p.median, dee1.predictMedian(v, 0.8));
    EXPECT_EQ(p.mean, dee1.predictMean(v, 0.8));
    auto [lo, hi] = dee1.confidenceInterval(p.median, 0.90);
    EXPECT_EQ(p.lo90, lo);
    EXPECT_EQ(p.hi90, hi);
    EXPECT_LT(p.lo90, p.median);
    EXPECT_GT(p.hi90, p.median);
}

TEST(Session, MeasureShippedMatchesUncachedMeasure)
{
    EstimationSession session;
    ComponentMeasurement ours = session.measureShipped("alu");

    const ShippedDesign &sd = shippedDesign("alu");
    Design design = sd.load();
    ComponentMeasurement direct = measureComponent(design, sd.top);
    for (Metric m : allMetrics()) {
        size_t i = static_cast<size_t>(m);
        EXPECT_EQ(ours.metrics[i], direct.metrics[i])
            << metricName(m);
    }
    EXPECT_EQ(ours.moduleCounts, direct.moduleCounts);
}

TEST(Session, BuildShippedMatchesBuildAll)
{
    EstimationSession session;
    std::vector<BuiltDesign> ours = session.buildShipped();
    std::vector<BuiltDesign> direct = buildAll();
    ASSERT_EQ(ours.size(), direct.size());
    for (size_t i = 0; i < ours.size(); ++i) {
        EXPECT_EQ(ours[i].name, direct[i].name);
        EXPECT_EQ(ours[i].metrics.cells, direct[i].metrics.cells);
        EXPECT_EQ(ours[i].metrics.freqMHz,
                  direct[i].metrics.freqMHz);
    }
}

TEST(Session, SynthesisReportMatchesDirectChain)
{
    EstimationSession session;
    DesignReport r = session.synthesisReport("fetch");
    EXPECT_EQ(r.name, "fetch");

    std::vector<BuiltDesign> built = buildAll();
    const BuiltDesign *fetch = nullptr;
    for (const auto &b : built)
        if (b.name == "fetch")
            fetch = &b;
    ASSERT_NE(fetch, nullptr);
    EXPECT_EQ(r.fpga.freqMHz, fetch->metrics.freqMHz);
    EXPECT_EQ(r.asic.freqMHz, fetch->metrics.freqAsicMHz);
    EXPECT_EQ(r.report.totalLuts, fetch->metrics.luts);
}

TEST(Session, MeasureErrorNamesComponent)
{
    EstimationSession session;
    Design d;
    d.addSource("module broken (input wire a, output wire y);\n"
                "  assign y = nosuchwire;\n"
                "endmodule");
    try {
        session.measure(d, "broken");
        FAIL() << "expected UcxError";
    } catch (const UcxError &e) {
        EXPECT_NE(std::string(e.what()).find("component 'broken'"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Session, EarlyEstimatorUsesSessionCache)
{
    EstimationSession session;
    const ShippedDesign &sd = shippedDesign("mmu_lite");
    Design design = sd.load();

    EarlyEstimator early =
        session.earlyEstimator(design, sd.top, "ENTRIES");
    early.calibrate({2, 4});
    EXPECT_GT(session.cache().stats().entries, 0u);

    // The uncached path agrees exactly.
    EarlyEstimator plain(design, sd.top, "ENTRIES");
    plain.calibrate({2, 4});
    MetricValues a = early.predictMetrics(16);
    MetricValues b = plain.predictMetrics(16);
    for (Metric m : allMetrics()) {
        size_t i = static_cast<size_t>(m);
        EXPECT_EQ(a[i], b[i]) << metricName(m);
    }
}

TEST(Session, ConfigFromEnvDefaults)
{
    // Default env in CI: cache on, capacity positive.
    SessionConfig cfg = SessionConfig::fromEnv();
    EXPECT_GT(cfg.cacheCapacity, 0u);
}

} // namespace
} // namespace ucx
