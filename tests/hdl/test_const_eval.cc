#include <gtest/gtest.h>

#include "hdl/const_eval.hh"
#include "hdl/parser.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

/** Parse a constant expression by wrapping it in a localparam. */
ExprPtr
expr(const std::string &text)
{
    SourceFile sf = parseSource(
        "module m (input wire a);\n  localparam X = " + text +
        ";\nendmodule");
    return std::move(sf.modules[0].items[0]->param.value);
}

TEST(ConstEval, Arithmetic)
{
    ConstEnv env;
    EXPECT_EQ(evalConst(*expr("2 + 3 * 4"), env), 14);
    EXPECT_EQ(evalConst(*expr("(2 + 3) * 4"), env), 20);
    EXPECT_EQ(evalConst(*expr("7 / 2"), env), 3);
    EXPECT_EQ(evalConst(*expr("7 % 2"), env), 1);
    EXPECT_EQ(evalConst(*expr("1 << 10"), env), 1024);
    EXPECT_EQ(evalConst(*expr("256 >> 4"), env), 16);
}

TEST(ConstEval, ComparisonAndLogic)
{
    ConstEnv env;
    EXPECT_EQ(evalConst(*expr("3 < 4"), env), 1);
    EXPECT_EQ(evalConst(*expr("4 <= 4"), env), 1);
    EXPECT_EQ(evalConst(*expr("3 == 4"), env), 0);
    EXPECT_EQ(evalConst(*expr("3 != 4"), env), 1);
    EXPECT_EQ(evalConst(*expr("1 && 0"), env), 0);
    EXPECT_EQ(evalConst(*expr("1 || 0"), env), 1);
    EXPECT_EQ(evalConst(*expr("!5"), env), 0);
}

TEST(ConstEval, Bitwise)
{
    ConstEnv env;
    EXPECT_EQ(evalConst(*expr("12 & 10"), env), 8);
    EXPECT_EQ(evalConst(*expr("12 | 10"), env), 14);
    EXPECT_EQ(evalConst(*expr("12 ^ 10"), env), 6);
    EXPECT_EQ(evalConst(*expr("~0"), env), -1);
}

TEST(ConstEval, Ternary)
{
    ConstEnv env;
    EXPECT_EQ(evalConst(*expr("1 ? 10 : 20"), env), 10);
    EXPECT_EQ(evalConst(*expr("0 ? 10 : 20"), env), 20);
}

TEST(ConstEval, ParameterLookup)
{
    ConstEnv env = {{"W", 8}, {"D", 4}};
    EXPECT_EQ(evalConst(*expr("W - 1"), env), 7);
    EXPECT_EQ(evalConst(*expr("W * D"), env), 32);
    EXPECT_EQ(evalConst(*expr("(1 << W) - 1"), env), 255);
}

TEST(ConstEval, UnboundNameThrows)
{
    ConstEnv env;
    EXPECT_THROW(evalConst(*expr("W + 1"), env), UcxError);
}

TEST(ConstEval, DivisionByZeroThrows)
{
    ConstEnv env;
    EXPECT_THROW(evalConst(*expr("1 / 0"), env), UcxError);
    EXPECT_THROW(evalConst(*expr("1 % 0"), env), UcxError);
}

TEST(ConstEval, NegativeResults)
{
    ConstEnv env = {{"W", 2}};
    EXPECT_EQ(evalConst(*expr("W - 5"), env), -3);
    EXPECT_EQ(evalConst(*expr("-W"), env), -2);
}

TEST(ConstEval, IsConstPredicate)
{
    ConstEnv env = {{"W", 8}};
    EXPECT_TRUE(isConst(*expr("W * 2 + 1"), env));
    EXPECT_FALSE(isConst(*expr("W + unknown"), env));
}

TEST(ConstEval, WideShiftsAreWellDefined)
{
    ConstEnv env = {{"W", 63}};
    // Shift by 63 is legal and must not trip signed-overflow UB:
    // 1 << 63 is the sign bit of the int64 result.
    EXPECT_EQ(static_cast<uint64_t>(evalConst(*expr("1 << W"), env)),
              0x8000000000000000ull);
    EXPECT_EQ(evalConst(*expr("1 << 62"), env),
              int64_t(1) << 62);
    // Shifting a negative value right is a logical (unsigned)
    // shift, matching hardware semantics.
    EXPECT_EQ(evalConst(*expr("(0 - 1) >> 63"), env), 1);
    // Amounts >= 64 shift every bit out: the result is 0, not UB
    // and not an error (width expressions like 1 << W with W = 64
    // appear in generate arithmetic).
    EXPECT_EQ(evalConst(*expr("1 << 64"), env), 0);
    EXPECT_EQ(evalConst(*expr("255 << 100"), env), 0);
    EXPECT_EQ(evalConst(*expr("255 >> 64"), env), 0);
    EXPECT_EQ(evalConst(*expr("(1 << 63) >> 70"), env), 0);
}

TEST(ConstEval, NegativeShiftThrows)
{
    ConstEnv env;
    EXPECT_THROW(evalConst(*expr("1 << (0 - 1)"), env), UcxError);
    EXPECT_THROW(evalConst(*expr("1 >> (0 - 2)"), env), UcxError);
}

TEST(ConstEval, SizedLiteralsKeepValue)
{
    ConstEnv env;
    EXPECT_EQ(evalConst(*expr("8'hFF"), env), 255);
    EXPECT_EQ(evalConst(*expr("4'b1010"), env), 10);
}

} // namespace
} // namespace ucx
