/**
 * @file
 * Failure-injection battery: every malformed source must be rejected
 * with a UcxError (never a crash, hang, or silent acceptance).
 */

#include <string>

#include <gtest/gtest.h>

#include "hdl/design.hh"
#include "synth/elaborate.hh"
#include "synth/lower.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

struct BadSource
{
    const char *label;
    const char *source;
};

class ErrorBattery : public ::testing::TestWithParam<BadSource>
{};

TEST_P(ErrorBattery, RejectedWithUcxError)
{
    const BadSource &bad = GetParam();
    EXPECT_THROW(
        {
            Design d;
            d.addSource(bad.source, "bad.v");
            // Some defects only surface at elaboration or lowering.
            if (d.hasModule("m"))
                lowerToGates(elaborate(d, "m").rtl);
        },
        UcxError)
        << bad.label;
}

const BadSource cases[] = {
    {"missing_module_keyword", "foo (input wire a); endmodule"},
    {"missing_endmodule", "module m (input wire a);"},
    {"missing_port_semicolon",
     "module m (input wire a)\nendmodule"},
    {"bad_port_direction",
     "module m (sideways wire a); endmodule"},
    {"unclosed_paren",
     "module m (input wire a;\nendmodule"},
    {"assign_without_lhs",
     "module m (input wire a);\n  assign = a;\nendmodule"},
    {"assign_missing_rhs",
     "module m (input wire a, output wire y);\n"
     "  assign y = ;\nendmodule"},
    {"stray_token_in_body",
     "module m (input wire a);\n  $$$\nendmodule"},
    {"unterminated_block_comment",
     "module m (input wire a); /* oops\nendmodule"},
    {"bad_based_literal",
     "module m (input wire a);\n  localparam X = 8'z12;\n"
     "endmodule"},
    {"zero_width_literal",
     "module m (input wire a);\n  localparam X = 0'd1;\n"
     "endmodule"},
    {"case_without_endcase",
     "module m (input wire a, output reg y);\n"
     "  always @* begin\n    case (a)\n      1'b0: y = 1'b0;\n"
     "  end\nendmodule"},
    {"if_without_condition",
     "module m (input wire a, output reg y);\n"
     "  always @* begin\n    if y = a;\n  end\nendmodule"},
    {"for_step_wrong_variable",
     "module m (input wire [3:0] a, output reg y);\n"
     "  integer i;\n  always @* begin\n"
     "    for (i = 0; i < 4; j = j + 1) y = a[0];\n"
     "  end\nendmodule"},
    {"unknown_identifier",
     "module m (input wire a, output wire y);\n"
     "  assign y = ghost;\nendmodule"},
    {"unknown_module_instance",
     "module m (input wire a);\n  ghost u (.x(a));\nendmodule"},
    {"unknown_port_connection",
     "module child (input wire p); endmodule\n"
     "module m (input wire a);\n  child u (.nope(a));\n"
     "endmodule"},
    {"unknown_parameter_override",
     "module child #(parameter W = 2) (input wire [W-1:0] p); "
     "endmodule\n"
     "module m (input wire a);\n"
     "  child #(.BOGUS(3)) u (.p(a));\nendmodule"},
    {"duplicate_port_connection",
     "module child (input wire p); endmodule\n"
     "module m (input wire a);\n"
     "  child u (.p(a), .p(a));\nendmodule"},
    {"duplicate_signal",
     "module m (input wire a);\n  wire t;\n  wire t;\nendmodule"},
    {"multiple_drivers",
     "module m (input wire a, output wire y);\n"
     "  assign y = a;\n  assign y = ~a;\nendmodule"},
    {"overlapping_part_drivers",
     "module m (input wire [7:0] a, output wire [7:0] y);\n"
     "  assign y[4:0] = a[4:0];\n  assign y[5:2] = a[7:4];\n"
     "endmodule"},
    {"reg_in_two_always_blocks",
     "module m (input wire clk, input wire a, output reg q);\n"
     "  always @(posedge clk) q <= a;\n"
     "  always @(posedge clk) q <= ~a;\nendmodule"},
    {"assign_to_reg",
     "module m (input wire a, output reg y);\n"
     "  assign y = a;\nendmodule"},
    {"nonblocking_in_comb",
     "module m (input wire a, output reg y);\n"
     "  always @* y <= a;\nendmodule"},
    {"bit_select_out_of_range",
     "module m (input wire [3:0] a, output wire y);\n"
     "  assign y = a[9];\nendmodule"},
    {"part_select_out_of_range",
     "module m (input wire [3:0] a, output wire [7:0] y);\n"
     "  assign y = a[11:4];\nendmodule"},
    {"reversed_range",
     "module m (input wire [0:7] a); endmodule"},
    {"variable_bit_write_to_vector",
     "module m (input wire clk, input wire [2:0] idx, "
     "input wire d, output reg [7:0] q);\n"
     "  always @(posedge clk) q[idx] <= d;\nendmodule"},
    {"memory_write_in_comb_block",
     "module m (input wire [1:0] addr, input wire [3:0] d, "
     "output wire [3:0] q);\n"
     "  reg [3:0] mem [0:3];\n"
     "  always @* mem[addr] = d;\n"
     "  assign q = mem[addr];\nendmodule"},
    {"division_by_non_power_of_two",
     "module m (input wire [7:0] a, output wire [7:0] y);\n"
     "  assign y = a / 3;\nendmodule"},
    {"division_by_signal",
     "module m (input wire [7:0] a, input wire [7:0] b, "
     "output wire [7:0] y);\n  assign y = a / b;\nendmodule"},
    {"non_constant_generate_bound",
     "module m (input wire [3:0] a, output wire [3:0] y);\n"
     "  genvar g;\n  generate\n"
     "    for (g = 0; g < a; g = g + 1) begin : l\n"
     "      assign y[g] = a[g];\n    end\n  endgenerate\n"
     "endmodule"},
    {"inout_port",
     "module m (inout wire a); endmodule"},
    {"recursive_instantiation",
     "module m (input wire a);\n  m u (.a(a));\nendmodule"},
    {"combinational_loop",
     "module m (input wire a, output wire y);\n"
     "  wire u;\n  wire v;\n"
     "  assign u = v & a;\n  assign v = u | a;\n"
     "  assign y = v;\nendmodule"},
    {"part_select_on_expression",
     "module m (input wire [7:0] a, output wire y);\n"
     "  assign y = (a + 1)[0];\nendmodule"},
};

INSTANTIATE_TEST_SUITE_P(
    Battery, ErrorBattery, ::testing::ValuesIn(cases),
    [](const ::testing::TestParamInfo<BadSource> &info) {
        return std::string(info.param.label);
    });

} // namespace
} // namespace ucx
