#include <gtest/gtest.h>

#include "hdl/design.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(Design, AddSourceAndLookup)
{
    Design d;
    d.addSource("module a (input wire x); endmodule\n"
                "module b (input wire y); endmodule");
    EXPECT_TRUE(d.hasModule("a"));
    EXPECT_TRUE(d.hasModule("b"));
    EXPECT_FALSE(d.hasModule("c"));
    EXPECT_EQ(d.module("a").name, "a");
    EXPECT_THROW(d.module("c"), UcxError);
}

TEST(Design, DuplicateModuleThrows)
{
    Design d;
    d.addSource("module a (input wire x); endmodule");
    EXPECT_THROW(
        d.addSource("module a (input wire x); endmodule"),
        UcxError);
}

TEST(Design, ModuleNamesInOrder)
{
    Design d;
    d.addSource("module z (input wire x); endmodule");
    d.addSource("module a (input wire x); endmodule");
    ASSERT_EQ(d.moduleNames().size(), 2u);
    EXPECT_EQ(d.moduleNames()[0], "z");
    EXPECT_EQ(d.moduleNames()[1], "a");
}

TEST(Design, SourceTextAccumulates)
{
    Design d;
    d.addSource("module a (input wire x); endmodule");
    d.addSource("module b (input wire y); endmodule");
    EXPECT_NE(d.sourceText().find("module a"), std::string::npos);
    EXPECT_NE(d.sourceText().find("module b"), std::string::npos);
}

} // namespace
} // namespace ucx
