#include <gtest/gtest.h>

#include "hdl/parser.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

Module
parseOne(const std::string &src)
{
    SourceFile sf = parseSource(src, "test.v");
    EXPECT_EQ(sf.modules.size(), 1u);
    return std::move(sf.modules[0]);
}

TEST(Parser, MinimalModule)
{
    Module m = parseOne("module m (input wire a); endmodule");
    EXPECT_EQ(m.name, "m");
    ASSERT_EQ(m.ports.size(), 1u);
    EXPECT_EQ(m.ports[0].name, "a");
    EXPECT_EQ(m.ports[0].dir, PortDir::Input);
    EXPECT_TRUE(m.items.empty());
}

TEST(Parser, ParameterList)
{
    Module m = parseOne(
        "module m #(parameter W = 8, parameter D = W * 2) "
        "(input wire [W-1:0] a); endmodule");
    ASSERT_EQ(m.params.size(), 2u);
    EXPECT_EQ(m.params[0].name, "W");
    EXPECT_EQ(m.params[1].name, "D");
    ASSERT_NE(m.ports[0].msb, nullptr);
}

TEST(Parser, PortDirectionsAndReg)
{
    Module m = parseOne(
        "module m (input wire a, output reg [3:0] b, "
        "output wire c); endmodule");
    ASSERT_EQ(m.ports.size(), 3u);
    EXPECT_FALSE(m.ports[0].isReg);
    EXPECT_TRUE(m.ports[1].isReg);
    EXPECT_EQ(m.ports[1].dir, PortDir::Output);
}

TEST(Parser, NetAndMemoryDeclarations)
{
    Module m = parseOne(
        "module m (input wire clk);\n"
        "  wire [7:0] a, b;\n"
        "  reg [15:0] mem [0:63];\n"
        "endmodule");
    ASSERT_EQ(m.items.size(), 2u);
    EXPECT_EQ(m.items[0]->kind, ItemKind::Net);
    EXPECT_EQ(m.items[0]->names.size(), 2u);
    EXPECT_FALSE(m.items[0]->isReg);
    EXPECT_EQ(m.items[1]->names[0], "mem");
    EXPECT_NE(m.items[1]->arrayLeft, nullptr);
    EXPECT_TRUE(m.items[1]->isReg);
}

TEST(Parser, ContinuousAssignPrecedence)
{
    Module m = parseOne(
        "module m (input wire [7:0] a, input wire [7:0] b, "
        "output wire [7:0] y);\n"
        "  assign y = a + b * 2 == 6 ? a : b;\n"
        "endmodule");
    const Item &item = *m.items[0];
    ASSERT_EQ(item.kind, ItemKind::ContAssign);
    // Top: ternary; condition is ==; its rhs multiplied before add.
    EXPECT_EQ(item.rhs->kind, ExprKind::Ternary);
    EXPECT_EQ(item.rhs->a->kind, ExprKind::Binary);
    EXPECT_EQ(item.rhs->a->binOp, BinOp::Eq);
    EXPECT_EQ(item.rhs->a->a->binOp, BinOp::Add);
    EXPECT_EQ(item.rhs->a->a->b->binOp, BinOp::Mul);
}

TEST(Parser, AlwaysCombStar)
{
    Module m = parseOne(
        "module m (input wire a, output reg y);\n"
        "  always @* y = a;\n"
        "  always @(*) begin y = a; end\n"
        "endmodule");
    EXPECT_FALSE(m.items[0]->sequential);
    EXPECT_FALSE(m.items[1]->sequential);
}

TEST(Parser, AlwaysSequentialEdges)
{
    Module m = parseOne(
        "module m (input wire clk, input wire rst_n, "
        "output reg q);\n"
        "  always @(posedge clk or negedge rst_n) q <= 1'b0;\n"
        "endmodule");
    const Item &item = *m.items[0];
    EXPECT_TRUE(item.sequential);
    ASSERT_EQ(item.edges.size(), 2u);
    EXPECT_TRUE(item.edges[0].posedge);
    EXPECT_EQ(item.edges[0].signal, "clk");
    EXPECT_FALSE(item.edges[1].posedge);
    EXPECT_EQ(item.body->kind, StmtKind::Assign);
    EXPECT_TRUE(item.body->nonBlocking);
}

TEST(Parser, IfElseChain)
{
    Module m = parseOne(
        "module m (input wire [1:0] s, output reg y);\n"
        "  always @* begin\n"
        "    if (s == 2'd0) y = 1'b0;\n"
        "    else if (s == 2'd1) y = 1'b1;\n"
        "    else y = 1'b0;\n"
        "  end\n"
        "endmodule");
    const Stmt &block = *m.items[0]->body;
    ASSERT_EQ(block.stmts.size(), 1u);
    const Stmt &iff = *block.stmts[0];
    EXPECT_EQ(iff.kind, StmtKind::If);
    ASSERT_NE(iff.elseStmt, nullptr);
    EXPECT_EQ(iff.elseStmt->kind, StmtKind::If);
}

TEST(Parser, CaseWithMultipleLabelsAndDefault)
{
    Module m = parseOne(
        "module m (input wire [1:0] s, output reg [1:0] y);\n"
        "  always @* begin\n"
        "    case (s)\n"
        "      2'd0, 2'd1: y = 2'd0;\n"
        "      2'd2: y = 2'd1;\n"
        "      default: y = 2'd3;\n"
        "    endcase\n"
        "  end\n"
        "endmodule");
    const Stmt &cs = *m.items[0]->body->stmts[0];
    ASSERT_EQ(cs.kind, StmtKind::Case);
    ASSERT_EQ(cs.items.size(), 3u);
    EXPECT_EQ(cs.items[0].labels.size(), 2u);
    EXPECT_TRUE(cs.items[2].labels.empty());
}

TEST(Parser, InstanceWithParamsAndConnections)
{
    Module m = parseOne(
        "module m (input wire clk);\n"
        "  sub #(.W(8), .D(16)) u_sub (.clk(clk), .q(), .en(1'b1));\n"
        "endmodule");
    const Item &inst = *m.items[0];
    ASSERT_EQ(inst.kind, ItemKind::Instance);
    EXPECT_EQ(inst.moduleName, "sub");
    EXPECT_EQ(inst.instName, "u_sub");
    ASSERT_EQ(inst.paramOverrides.size(), 2u);
    EXPECT_EQ(inst.paramOverrides[0].port, "W");
    ASSERT_EQ(inst.connections.size(), 3u);
    EXPECT_EQ(inst.connections[1].port, "q");
    EXPECT_EQ(inst.connections[1].expr, nullptr); // unconnected
}

TEST(Parser, GenerateForAndIf)
{
    Module m = parseOne(
        "module m (input wire [3:0] a, output wire [3:0] y);\n"
        "  genvar g;\n"
        "  generate\n"
        "    for (g = 0; g < 4; g = g + 1) begin : loop\n"
        "      assign y[g] = a[g];\n"
        "    end\n"
        "    if (1) begin\n"
        "      wire dummy;\n"
        "    end else begin\n"
        "      wire other;\n"
        "    end\n"
        "  endgenerate\n"
        "endmodule");
    // The generate region is wrapped in a constant-true GenIf.
    ASSERT_EQ(m.items.size(), 2u);
    EXPECT_EQ(m.items[0]->kind, ItemKind::Genvar);
    const Item &region = *m.items[1];
    EXPECT_EQ(region.kind, ItemKind::GenIf);
    ASSERT_EQ(region.genThen.size(), 2u);
    EXPECT_EQ(region.genThen[0]->kind, ItemKind::GenFor);
    EXPECT_EQ(region.genThen[0]->genvar, "g");
    EXPECT_EQ(region.genThen[1]->kind, ItemKind::GenIf);
    EXPECT_EQ(region.genThen[1]->genElse.size(), 1u);
}

TEST(Parser, ConcatAndReplication)
{
    Module m = parseOne(
        "module m (input wire [3:0] a, output wire [7:0] y);\n"
        "  assign y = {a, {4{1'b1}}};\n"
        "endmodule");
    const Expr &rhs = *m.items[0]->rhs;
    ASSERT_EQ(rhs.kind, ExprKind::Concat);
    ASSERT_EQ(rhs.parts.size(), 2u);
    EXPECT_EQ(rhs.parts[1]->kind, ExprKind::Repl);
}

TEST(Parser, LvalueForms)
{
    Module m = parseOne(
        "module m (input wire [7:0] a, output wire [7:0] y, "
        "output wire z);\n"
        "  assign y[3:0] = a[3:0];\n"
        "  assign {z, y[7:4]} = a[4:0];\n"
        "endmodule");
    EXPECT_EQ(m.items[0]->lhs->kind, ExprKind::Range);
    EXPECT_EQ(m.items[1]->lhs->kind, ExprKind::Concat);
}

TEST(Parser, ProceduralForLoop)
{
    Module m = parseOne(
        "module m (input wire [3:0] a, output reg [3:0] y);\n"
        "  integer i;\n"
        "  always @* begin\n"
        "    y = 4'd0;\n"
        "    for (i = 0; i < 4; i = i + 1) begin\n"
        "      if (a[i]) y = i;\n"
        "    end\n"
        "  end\n"
        "endmodule");
    const Stmt &block = *m.items[1]->body;
    ASSERT_EQ(block.stmts.size(), 2u);
    EXPECT_EQ(block.stmts[1]->kind, StmtKind::For);
    EXPECT_EQ(block.stmts[1]->loopVar, "i");
}

TEST(Parser, LessEqualInExpressionContext)
{
    // '<=' must parse as less-equal inside an expression but as
    // non-blocking assignment at statement level.
    Module m = parseOne(
        "module m (input wire clk, input wire [3:0] a, "
        "output reg y);\n"
        "  always @(posedge clk) y <= a <= 4'd7;\n"
        "endmodule");
    const Stmt &s = *m.items[0]->body;
    EXPECT_TRUE(s.nonBlocking);
    EXPECT_EQ(s.rhs->kind, ExprKind::Binary);
    EXPECT_EQ(s.rhs->binOp, BinOp::Le);
}

TEST(Parser, ErrorsCarryLineNumbers)
{
    try {
        parseSource("module m (input wire a);\n  assign = 1;\n"
                    "endmodule",
                    "file.v");
        FAIL() << "expected parse error";
    } catch (const UcxError &e) {
        EXPECT_NE(std::string(e.what()).find("file.v:2"),
                  std::string::npos);
    }
}

TEST(Parser, MissingSemicolonThrows)
{
    EXPECT_THROW(
        parseOne("module m (input wire a)\nendmodule"),
        UcxError);
}

TEST(Parser, UnterminatedModuleThrows)
{
    EXPECT_THROW(parseOne("module m (input wire a);"), UcxError);
}

TEST(Parser, MultipleModules)
{
    SourceFile sf = parseSource(
        "module a (input wire x); endmodule\n"
        "module b (input wire y); endmodule");
    ASSERT_EQ(sf.modules.size(), 2u);
    EXPECT_EQ(sf.modules[0].name, "a");
    EXPECT_EQ(sf.modules[1].name, "b");
}

TEST(Parser, CloneIsDeep)
{
    Module m = parseOne(
        "module m (input wire a, output wire y);\n"
        "  assign y = a ? 1'b1 : 1'b0;\n"
        "endmodule");
    ItemPtr copy = m.items[0]->clone();
    // Mutating the clone must not affect the original.
    copy->rhs->a->name = "changed";
    EXPECT_EQ(m.items[0]->rhs->a->name, "a");
}

} // namespace
} // namespace ucx
