#include <gtest/gtest.h>

#include "hdl/source_metrics.hh"

namespace ucx
{
namespace
{

TEST(SourceMetrics, LocSkipsBlankAndCommentLines)
{
    std::string src =
        "// header comment\n"
        "\n"
        "module m (input wire a);\n"
        "  /* block\n"
        "     comment */\n"
        "  wire b; // trailing comment still counts\n"
        "endmodule\n";
    EXPECT_EQ(countLoc(src), 3u);
}

TEST(SourceMetrics, LocHandlesCodeAroundBlockComment)
{
    std::string src = "wire a; /* c */ wire b;\n";
    EXPECT_EQ(countLoc(src), 1u);
    // Code before a block comment on its opening line counts.
    EXPECT_EQ(countLoc("wire a; /* open\n still comment */\n"), 1u);
    // Code after the close on the closing line counts.
    EXPECT_EQ(countLoc("/* open\n close */ wire b;\n"), 1u);
}

TEST(SourceMetrics, LocNoTrailingNewline)
{
    EXPECT_EQ(countLoc("wire a;"), 1u);
    EXPECT_EQ(countLoc(""), 0u);
}

TEST(SourceMetrics, StmtsCountsDeclarationsAndBehavior)
{
    SourceMetrics m = measureSource(
        "module m #(parameter W = 4) (input wire clk, "
        "input wire [W-1:0] d, output reg [W-1:0] q);\n"
        "  wire [W-1:0] t;\n"
        "  assign t = d;\n"
        "  always @(posedge clk) q <= t;\n"
        "endmodule");
    // 1 param + 3 ports + 1 net + 1 assign + (1 always + 1 stmt).
    EXPECT_EQ(m.stmts, 8u);
}

TEST(SourceMetrics, StmtsCountsControlStructure)
{
    SourceMetrics m = measureSource(
        "module m (input wire [1:0] s, output reg y);\n"
        "  always @* begin\n"
        "    if (s == 2'd0) y = 1'b0;\n"
        "    else y = 1'b1;\n"
        "    case (s)\n"
        "      2'd1: y = 1'b0;\n"
        "      default: y = 1'b1;\n"
        "    endcase\n"
        "  end\n"
        "endmodule");
    // 2 ports + always(1) + if(1) + 2 assigns + case(1) + 2 arms.
    EXPECT_EQ(m.stmts, 9u);
}

TEST(SourceMetrics, GenerateCountsOnceNotPerIteration)
{
    // The paper measures the *written* code: a generate loop is one
    // loop statement plus its body, independent of trip count.
    std::string body =
        "module m (input wire [7:0] a, output wire [7:0] y);\n"
        "  genvar g;\n"
        "  generate\n"
        "    for (g = 0; g < %N%; g = g + 1) begin : l\n"
        "      assign y[g] = a[g];\n"
        "    end\n"
        "  endgenerate\n"
        "endmodule";
    auto with_n = [&](const std::string &n) {
        std::string s = body;
        s.replace(s.find("%N%"), 3, n);
        return measureSource(s).stmts;
    };
    EXPECT_EQ(with_n("2"), with_n("8"));
}

TEST(SourceMetrics, MultipleModulesSummed)
{
    SourceMetrics one = measureSource(
        "module a (input wire x); endmodule");
    SourceMetrics two = measureSource(
        "module a (input wire x); endmodule\n"
        "module b (input wire y); endmodule");
    EXPECT_EQ(two.stmts, 2 * one.stmts);
}

TEST(SourceMetrics, NetListCountsPerName)
{
    SourceMetrics m = measureSource(
        "module m (input wire x);\n  wire a, b, c;\nendmodule");
    // 1 port + 3 declared names.
    EXPECT_EQ(m.stmts, 4u);
}

} // namespace
} // namespace ucx
