#include <gtest/gtest.h>

#include "hdl/lexer.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

std::vector<Token>
lex(const std::string &src)
{
    return Lexer(src, "test.v").tokenize();
}

TEST(Lexer, EmptyInputYieldsEof)
{
    auto toks = lex("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, Tok::Eof);
}

TEST(Lexer, KeywordsAndIdentifiers)
{
    auto toks = lex("module foo endmodule");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].kind, Tok::KwModule);
    EXPECT_EQ(toks[1].kind, Tok::Identifier);
    EXPECT_EQ(toks[1].text, "foo");
    EXPECT_EQ(toks[2].kind, Tok::KwEndmodule);
}

TEST(Lexer, DecimalNumbers)
{
    auto toks = lex("42 0 123_456");
    EXPECT_EQ(toks[0].value, 42u);
    EXPECT_EQ(toks[0].width, -1);
    EXPECT_EQ(toks[1].value, 0u);
    EXPECT_EQ(toks[2].value, 123456u);
}

TEST(Lexer, SizedLiterals)
{
    auto toks = lex("8'hFF 4'b1010 6'o17 10'd512 'd9");
    EXPECT_EQ(toks[0].value, 255u);
    EXPECT_EQ(toks[0].width, 8);
    EXPECT_EQ(toks[1].value, 10u);
    EXPECT_EQ(toks[1].width, 4);
    EXPECT_EQ(toks[2].value, 15u);
    EXPECT_EQ(toks[2].width, 6);
    EXPECT_EQ(toks[3].value, 512u);
    EXPECT_EQ(toks[3].width, 10);
    EXPECT_EQ(toks[4].value, 9u);
    EXPECT_EQ(toks[4].width, -1);
}

TEST(Lexer, ZeroWidthLiteralRejected)
{
    EXPECT_THROW(lex("0'd1"), UcxError);
}

TEST(Lexer, OperatorsGreedy)
{
    auto toks = lex("<= << < == = && & >= >> >");
    EXPECT_EQ(toks[0].kind, Tok::NonBlocking);
    EXPECT_EQ(toks[1].kind, Tok::Shl);
    EXPECT_EQ(toks[2].kind, Tok::Lt);
    EXPECT_EQ(toks[3].kind, Tok::EqEq);
    EXPECT_EQ(toks[4].kind, Tok::Assign);
    EXPECT_EQ(toks[5].kind, Tok::AmpAmp);
    EXPECT_EQ(toks[6].kind, Tok::Amp);
    EXPECT_EQ(toks[7].kind, Tok::GtEq);
    EXPECT_EQ(toks[8].kind, Tok::Shr);
    EXPECT_EQ(toks[9].kind, Tok::Gt);
}

TEST(Lexer, LineCommentsSkipped)
{
    auto toks = lex("a // comment with module keyword\nb");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[1].line, 2);
}

TEST(Lexer, BlockCommentsSkipped)
{
    auto toks = lex("a /* multi\nline\ncomment */ b");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[1].line, 3);
}

TEST(Lexer, UnterminatedBlockCommentThrows)
{
    EXPECT_THROW(lex("a /* never closed"), UcxError);
}

TEST(Lexer, LineNumbersTracked)
{
    auto toks = lex("one\ntwo\n\nthree");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, UnexpectedCharacterThrows)
{
    EXPECT_THROW(lex("a ` b"), UcxError);
}

TEST(Lexer, DollarAllowedInIdentifiers)
{
    auto toks = lex("sig$1");
    EXPECT_EQ(toks[0].kind, Tok::Identifier);
    EXPECT_EQ(toks[0].text, "sig$1");
}

TEST(Lexer, BadBaseCharacterThrows)
{
    EXPECT_THROW(lex("8'q12"), UcxError);
}

TEST(Lexer, DigitsOutOfBaseTerminate)
{
    // '9' is not a binary digit: literal ends, 9 lexes separately.
    auto toks = lex("2'b109");
    EXPECT_EQ(toks[0].value, 2u); // 0b10
    EXPECT_EQ(toks[1].value, 9u);
}

} // namespace
} // namespace ucx
