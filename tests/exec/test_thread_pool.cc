#include <atomic>
#include <functional>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

std::vector<std::function<void()>>
countingTasks(size_t n, std::atomic<size_t> &hits)
{
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < n; ++i)
        tasks.push_back([&hits] { ++hits; });
    return tasks;
}

TEST(ThreadPool, RunsEveryTask)
{
    exec::ThreadPool pool(4);
    std::atomic<size_t> hits{0};
    pool.run(countingTasks(100, hits));
    EXPECT_EQ(hits.load(), 100u);
}

TEST(ThreadPool, RunsMoreTasksThanThreads)
{
    exec::ThreadPool pool(2);
    std::atomic<size_t> hits{0};
    pool.run(countingTasks(64, hits));
    EXPECT_EQ(hits.load(), 64u);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    exec::ThreadPool pool(3);
    std::atomic<size_t> hits{0};
    for (int batch = 0; batch < 10; ++batch)
        pool.run(countingTasks(10, hits));
    EXPECT_EQ(hits.load(), 100u);
}

TEST(ThreadPool, EmptyBatchIsANoOp)
{
    exec::ThreadPool pool(2);
    pool.run({});
}

TEST(ThreadPool, ReportsThreadCount)
{
    exec::ThreadPool pool(3);
    EXPECT_EQ(pool.threads(), 3u);
}

TEST(ThreadPool, RejectsZeroThreads)
{
    EXPECT_THROW(exec::ThreadPool pool(0), UcxError);
}

TEST(ThreadPool, TasksSeeWorkerFlag)
{
    EXPECT_FALSE(exec::ThreadPool::onWorkerThread());
    exec::ThreadPool pool(2);
    std::atomic<int> onWorker{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back([&onWorker] {
            if (exec::ThreadPool::onWorkerThread())
                ++onWorker;
        });
    }
    pool.run(tasks);
    EXPECT_EQ(onWorker.load(), 8);
    EXPECT_FALSE(exec::ThreadPool::onWorkerThread());
}

TEST(ThreadPool, PropagatesFirstErrorInTaskOrder)
{
    exec::ThreadPool pool(4);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
        tasks.push_back([i] {
            if (i == 3)
                throw std::runtime_error("task three");
            if (i == 11)
                throw std::runtime_error("task eleven");
        });
    }
    try {
        pool.run(tasks);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        // Matches serial loop semantics: the earliest-index error
        // wins regardless of which task threw first in time.
        EXPECT_STREQ(e.what(), "task three");
    }
}

TEST(ThreadPool, KeepsRunningRemainingTasksAfterError)
{
    exec::ThreadPool pool(2);
    std::atomic<size_t> hits{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 12; ++i) {
        tasks.push_back([i, &hits] {
            if (i == 0)
                throw std::runtime_error("boom");
            ++hits;
        });
    }
    EXPECT_THROW(pool.run(tasks), std::runtime_error);
    // The batch drains fully before the error is rethrown.
    EXPECT_EQ(hits.load(), 11u);
}

} // namespace
} // namespace ucx
