#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/context.hh"

namespace ucx
{
namespace
{

TEST(ExecContext, SerialHasOneThreadAndNoPool)
{
    const ExecContext &ctx = ExecContext::serial();
    EXPECT_EQ(ctx.threads(), 1u);
    EXPECT_FALSE(ctx.parallel());
}

TEST(ExecContext, WithOneThreadIsSerial)
{
    ExecContext ctx = ExecContext::withThreads(1);
    EXPECT_FALSE(ctx.parallel());
    EXPECT_EQ(ctx.threads(), 1u);
}

TEST(ExecContext, WithThreadsReportsCount)
{
    ExecContext ctx = ExecContext::withThreads(4);
    EXPECT_TRUE(ctx.parallel());
    EXPECT_EQ(ctx.threads(), 4u);
}

TEST(ExecContext, FromEnvHonorsVariable)
{
    ASSERT_EQ(setenv("UCX_THREADS", "3", 1), 0);
    EXPECT_EQ(ExecContext::fromEnv().threads(), 3u);
    ASSERT_EQ(setenv("UCX_THREADS", "1", 1), 0);
    EXPECT_FALSE(ExecContext::fromEnv().parallel());
    ASSERT_EQ(unsetenv("UCX_THREADS"), 0);
    EXPECT_GE(ExecContext::fromEnv().threads(), 1u);
}

TEST(ExecContext, FromEnvIgnoresGarbage)
{
    ASSERT_EQ(setenv("UCX_THREADS", "banana", 1), 0);
    EXPECT_GE(ExecContext::fromEnv().threads(), 1u);
    ASSERT_EQ(unsetenv("UCX_THREADS"), 0);
}

TEST(ExecContext, FromEnvWarnsOnInvalidValue)
{
    // Rejected values (garbage, negative, absurdly large) fall back
    // to hardware concurrency and say so on stderr, naming the
    // offending value.
    for (const char *bad : {"banana", "-2", "999999999"}) {
        ASSERT_EQ(setenv("UCX_THREADS", bad, 1), 0);
        testing::internal::CaptureStderr();
        ExecContext ctx = ExecContext::fromEnv();
        std::string err = testing::internal::GetCapturedStderr();
        EXPECT_GE(ctx.threads(), 1u) << bad;
        EXPECT_NE(err.find("UCX_THREADS"), std::string::npos) << bad;
        EXPECT_NE(err.find(bad), std::string::npos) << bad;
    }
    ASSERT_EQ(unsetenv("UCX_THREADS"), 0);
}

TEST(ExecContext, FromEnvZeroMeansAutoWithoutWarning)
{
    ASSERT_EQ(setenv("UCX_THREADS", "0", 1), 0);
    testing::internal::CaptureStderr();
    ExecContext ctx = ExecContext::fromEnv();
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_GE(ctx.threads(), 1u);
    EXPECT_EQ(err.find("UCX_THREADS"), std::string::npos) << err;
    ASSERT_EQ(unsetenv("UCX_THREADS"), 0);
}

TEST(ExecContext, ParallelForVisitsEveryIndexOnce)
{
    ExecContext ctx = ExecContext::withThreads(4);
    const size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    ctx.parallelFor(n, [&](size_t i) { ++visits[i]; });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ExecContext, ParallelForSerialContextRunsInline)
{
    size_t sum = 0;
    ExecContext::serial().parallelFor(10, [&](size_t i) { sum += i; });
    EXPECT_EQ(sum, 45u);
}

TEST(ExecContext, ParallelMapOrdersResultsByIndex)
{
    ExecContext ctx = ExecContext::withThreads(8);
    std::vector<size_t> out =
        ctx.parallelMap(257, [](size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ExecContext, ParallelMapMatchesSerialExactly)
{
    auto work = [](size_t i) {
        return std::to_string(i) + ":" + std::to_string(i % 7);
    };
    auto serial = ExecContext::serial().parallelMap(100, work);
    for (size_t threads : {2u, 5u, 8u}) {
        auto parallel =
            ExecContext::withThreads(threads).parallelMap(100, work);
        EXPECT_EQ(parallel, serial) << threads << " threads";
    }
}

TEST(ExecContext, NestedParallelForRunsInlineWithoutDeadlock)
{
    ExecContext ctx = ExecContext::withThreads(2);
    std::atomic<size_t> inner{0};
    ctx.parallelFor(8, [&](size_t) {
        // A nested call on a worker thread must not wait on the same
        // pool it is occupying.
        ctx.parallelFor(8, [&](size_t) { ++inner; });
    });
    EXPECT_EQ(inner.load(), 64u);
}

TEST(ExecContext, ParallelForPropagatesFirstError)
{
    ExecContext ctx = ExecContext::withThreads(4);
    try {
        ctx.parallelFor(100, [](size_t i) {
            if (i == 17 || i == 63)
                throw std::runtime_error("index " +
                                         std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "index 17");
    }
}

TEST(ExecContext, SingleItemSkipsThePool)
{
    ExecContext ctx = ExecContext::withThreads(4);
    bool onWorker = true;
    ctx.parallelFor(1, [&](size_t) {
        onWorker = exec::ThreadPool::onWorkerThread();
    });
    EXPECT_FALSE(onWorker);
}

TEST(ExecContext, CopiesShareThePool)
{
    ExecContext ctx = ExecContext::withThreads(3);
    ExecContext copy = ctx;
    EXPECT_TRUE(copy.parallel());
    EXPECT_EQ(copy.threads(), 3u);
    std::atomic<size_t> hits{0};
    copy.parallelFor(10, [&](size_t) { ++hits; });
    EXPECT_EQ(hits.load(), 10u);
}

} // namespace
} // namespace ucx
