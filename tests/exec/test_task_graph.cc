#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/task_graph.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

TEST(TaskGraph, SubmitAndGet)
{
    ExecContext ctx = ExecContext::withThreads(4);
    TaskGraph graph(ctx);
    Future<int> f = graph.submit([] { return 42; });
    EXPECT_EQ(f.get(), 42);
    EXPECT_TRUE(f.done());
}

TEST(TaskGraph, VoidTaskRuns)
{
    ExecContext ctx = ExecContext::withThreads(2);
    std::atomic<bool> ran{false};
    TaskGraph graph(ctx);
    Future<void> f = graph.submit([&] { ran = true; });
    f.get();
    EXPECT_TRUE(ran.load());
}

TEST(TaskGraph, SerialContextDrainsInline)
{
    TaskGraph graph(ExecContext::serial());
    std::vector<int> order;
    graph.submit([&] { order.push_back(1); });
    graph.submit([&] { order.push_back(2); });
    graph.wait();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TaskGraph, DependentRunsAfterItsDependencies)
{
    ExecContext ctx = ExecContext::withThreads(4);
    for (int round = 0; round < 20; ++round) {
        TaskGraph graph(ctx);
        std::atomic<bool> a_done{false};
        std::atomic<bool> b_done{false};
        Future<int> a = graph.submit([&] {
            a_done = true;
            return 1;
        });
        Future<int> b = graph.submit([&] {
            b_done = true;
            return 2;
        });
        Future<int> sum = graph.submitAfter(
            {a.handle(), b.handle()}, [&] {
                // Both dependencies finished; their reads are free.
                EXPECT_TRUE(a_done.load());
                EXPECT_TRUE(b_done.load());
                return a.get() + b.get();
            });
        EXPECT_EQ(sum.get(), 3);
    }
}

TEST(TaskGraph, MapMatchesSerialAtAnyThreadCount)
{
    auto work = [](size_t i) {
        return std::to_string(i * 3) + ":" + std::to_string(i % 5);
    };
    TaskGraph serial(ExecContext::serial());
    std::vector<std::string> reference = serial.map(200, work);
    for (size_t threads : {2u, 8u}) {
        ExecContext ctx = ExecContext::withThreads(threads);
        TaskGraph graph(ctx);
        EXPECT_EQ(graph.map(200, work), reference)
            << threads << " threads";
    }
}

TEST(TaskGraph, PerNodeRngStreamsAreScheduleInvariant)
{
    // Stochastic tasks draw from Rng::split(node index): the draws
    // are a pure function of (seed, index), so the joined vector is
    // identical at every thread count.
    auto run = [](const ExecContext &ctx) {
        Rng root(12345);
        TaskGraph graph(ctx);
        return graph.map(64, [&root](size_t i) {
            Rng stream = root.split(i);
            double sum = 0.0;
            for (int k = 0; k < 10; ++k)
                sum += stream.uniform();
            return sum;
        });
    };
    std::vector<double> reference = run(ExecContext::serial());
    for (size_t threads : {2u, 8u})
        EXPECT_EQ(run(ExecContext::withThreads(threads)), reference)
            << threads << " threads";
}

TEST(TaskGraph, TaskSubmitsSubTasksIntoItsOwnGraph)
{
    // Re-entrant scheduling: a running task submits further nodes
    // into the same graph and joins them without deadlock — the
    // waiting task drains ready nodes itself.
    for (size_t threads : {1u, 2u, 8u}) {
        ExecContext ctx = ExecContext::withThreads(threads);
        TaskGraph graph(ctx);
        Future<size_t> total = graph.submit([&graph] {
            std::vector<size_t> parts =
                graph.map(16, [](size_t i) { return i * i; });
            size_t sum = 0;
            for (size_t p : parts)
                sum += p;
            return sum;
        });
        EXPECT_EQ(total.get(), 1240u) << threads << " threads";
    }
}

TEST(TaskGraph, TaskCallsNestedParallelFor)
{
    // A graph task entering a nested parallel region must keep its
    // results index-addressed and deadlock-free at any thread count.
    auto run = [](const ExecContext &ctx) {
        TaskGraph graph(ctx);
        return graph.map(8, [&ctx](size_t i) {
            std::vector<size_t> inner =
                ctx.parallelMap(32, [i](size_t j) { return i * j; });
            size_t sum = 0;
            for (size_t v : inner)
                sum += v;
            return sum;
        });
    };
    std::vector<size_t> reference = run(ExecContext::serial());
    for (size_t threads : {1u, 2u, 8u})
        EXPECT_EQ(run(ExecContext::withThreads(threads)), reference)
            << threads << " threads";
}

TEST(TaskGraph, GetRethrowsTaskError)
{
    ExecContext ctx = ExecContext::withThreads(2);
    TaskGraph graph(ctx);
    Future<int> f = graph.submit(
        []() -> int { throw std::runtime_error("boom"); });
    try {
        f.get();
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

TEST(TaskGraph, FailedDependencySkipsDependent)
{
    ExecContext ctx = ExecContext::withThreads(4);
    TaskGraph graph(ctx);
    std::atomic<bool> dependent_ran{false};
    Future<int> bad = graph.submit(
        []() -> int { throw std::runtime_error("dep failed"); });
    Future<int> after =
        graph.submitAfter({bad.handle()}, [&]() -> int {
            dependent_ran = true;
            return 0;
        });
    try {
        after.get();
        FAIL() << "expected the dependency's exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "dep failed");
    }
    EXPECT_FALSE(dependent_ran.load());
}

TEST(TaskGraph, WaitRethrowsFirstErrorInSubmissionOrder)
{
    ExecContext ctx = ExecContext::withThreads(8);
    TaskGraph graph(ctx);
    for (size_t i = 0; i < 50; ++i) {
        graph.submit([i] {
            if (i == 17 || i == 42)
                throw std::runtime_error("index " +
                                         std::to_string(i));
        });
    }
    try {
        graph.wait();
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "index 17");
    }
}

TEST(TaskGraph, MapRethrowsLowestIndexError)
{
    ExecContext ctx = ExecContext::withThreads(8);
    TaskGraph graph(ctx);
    try {
        graph.map(100, [](size_t i) -> int {
            if (i == 23 || i == 71)
                throw std::runtime_error("index " +
                                         std::to_string(i));
            return 0;
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "index 23");
    }
}

TEST(TaskGraph, FutureOutlivesGraph)
{
    ExecContext ctx = ExecContext::withThreads(2);
    Future<std::string> f;
    {
        TaskGraph graph(ctx);
        f = graph.submit([] { return std::string("kept"); });
        // ~TaskGraph waits for the task.
    }
    EXPECT_TRUE(f.done());
    EXPECT_EQ(f.get(), "kept");
}

TEST(TaskGraph, RejectsDependencyFromAnotherGraph)
{
    ExecContext ctx = ExecContext::withThreads(2);
    TaskGraph a(ctx);
    TaskGraph b(ctx);
    Future<int> fa = a.submit([] { return 1; });
    EXPECT_THROW(b.submitAfter({fa.handle()}, [] { return 2; }),
                 UcxError);
}

TEST(TaskGraph, RejectsInvalidDependencyHandle)
{
    ExecContext ctx = ExecContext::withThreads(2);
    TaskGraph graph(ctx);
    EXPECT_THROW(graph.submitAfter({TaskHandle()}, [] { return 1; }),
                 UcxError);
}

TEST(TaskGraph, DiamondDependencyJoins)
{
    ExecContext ctx = ExecContext::withThreads(4);
    TaskGraph graph(ctx);
    Future<int> root = graph.submit([] { return 10; });
    Future<int> left = graph.submitAfter(
        {root.handle()}, [&] { return root.get() + 1; });
    Future<int> right = graph.submitAfter(
        {root.handle()}, [&] { return root.get() + 2; });
    Future<int> join = graph.submitAfter(
        {left.handle(), right.handle()},
        [&] { return left.get() * right.get(); });
    EXPECT_EQ(join.get(), 132);
}

TEST(TaskGraph, ManyTasksAllRunExactlyOnce)
{
    ExecContext ctx = ExecContext::withThreads(8);
    const size_t n = 2000;
    std::vector<std::atomic<int>> visits(n);
    TaskGraph graph(ctx);
    for (size_t i = 0; i < n; ++i)
        graph.submit([&visits, i] { ++visits[i]; });
    graph.wait();
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(visits[i].load(), 1) << "index " << i;
}

} // namespace
} // namespace ucx
