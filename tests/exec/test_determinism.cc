/**
 * @file
 * The central guarantee of the exec layer: every stochastic result
 * is byte-identical at 1, 2, and 8 threads, and matches
 * ExecContext::serial(). Per-task RNG streams (Rng::split) plus
 * index-addressed result slots make each number a pure function of
 * the seed, so thread count and scheduling order cannot leak in.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/search.hh"
#include "core/validation.hh"
#include "data/paper_data.hh"
#include "exec/context.hh"
#include "nlme/bootstrap.hh"
#include "nlme/mixed_model.hh"
#include "opt/multistart.hh"

namespace ucx
{
namespace
{

const std::vector<size_t> kThreadCounts = {1, 2, 8};

void
expectSameFit(const MixedFit &a, const MixedFit &b)
{
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.sigmaEps, b.sigmaEps);
    EXPECT_EQ(a.sigmaRho, b.sigmaRho);
    EXPECT_EQ(a.logLik, b.logLik);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.productivity, b.productivity);
}

TEST(Determinism, MultistartIdenticalAtAnyThreadCount)
{
    // A multimodal objective: jittered starts land in different
    // basins, so the winner genuinely depends on the start set.
    Objective f = [](const std::vector<double> &x) {
        double v = 0.0;
        for (double xi : x)
            v += xi * xi + 3.0 * std::sin(3.0 * xi);
        return v;
    };
    MultistartConfig config;
    config.starts = 16;

    OptResult serial =
        multistartMinimize(f, {2.0, -1.5}, config);
    for (size_t threads : kThreadCounts) {
        ExecContext ctx = ExecContext::withThreads(threads);
        OptResult r = multistartMinimize(f, {2.0, -1.5}, config, ctx);
        EXPECT_EQ(r.x, serial.x) << threads << " threads";
        EXPECT_EQ(r.fx, serial.fx) << threads << " threads";
    }
}

TEST(Determinism, BootstrapIdenticalAtAnyThreadCount)
{
    NlmeData data = paperDataset().toNlmeData(
        {Metric::Stmts, Metric::FanInLC});
    MixedFit fit = MixedModel(data).fit();

    BootstrapConfig config;
    config.replicates = 24;
    config.starts = 1;

    BootstrapResult serial = parametricBootstrap(data, fit, config);
    ASSERT_EQ(serial.fits.size(), 24u);
    for (size_t threads : kThreadCounts) {
        ExecContext ctx = ExecContext::withThreads(threads);
        BootstrapResult r =
            parametricBootstrap(data, fit, config, ctx);
        ASSERT_EQ(r.fits.size(), serial.fits.size())
            << threads << " threads";
        for (size_t i = 0; i < r.fits.size(); ++i)
            expectSameFit(r.fits[i], serial.fits[i]);
        EXPECT_EQ(r.nonConverged, serial.nonConverged);
        EXPECT_EQ(r.sigmaEpsSamples(), serial.sigmaEpsSamples());
    }
}

TEST(Determinism, CrossValidationIdenticalAtAnyThreadCount)
{
    const Dataset &data = paperDataset();
    const std::vector<Metric> metrics = {Metric::Stmts};

    auto loco = leaveOneComponentOut(data, metrics);
    auto lopo = leaveOneProjectOut(data, metrics);
    for (size_t threads : kThreadCounts) {
        ExecContext ctx = ExecContext::withThreads(threads);
        auto loco_t = leaveOneComponentOut(
            data, metrics, FitMode::MixedEffects, ctx);
        auto lopo_t = leaveOneProjectOut(
            data, metrics, FitMode::MixedEffects, ctx);

        ASSERT_EQ(loco_t.records.size(), loco.records.size());
        for (size_t i = 0; i < loco.records.size(); ++i) {
            EXPECT_EQ(loco_t.records[i].component,
                      loco.records[i].component);
            EXPECT_EQ(loco_t.records[i].predicted,
                      loco.records[i].predicted);
        }
        ASSERT_EQ(lopo_t.records.size(), lopo.records.size());
        for (size_t i = 0; i < lopo.records.size(); ++i) {
            EXPECT_EQ(lopo_t.records[i].component,
                      lopo.records[i].component);
            EXPECT_EQ(lopo_t.records[i].predicted,
                      lopo.records[i].predicted);
        }
    }
}

TEST(Determinism, EstimatorSearchIdenticalAtAnyThreadCount)
{
    const Dataset &data = paperDataset();
    auto serial = rankSingleMetrics(data);
    for (size_t threads : kThreadCounts) {
        ExecContext ctx = ExecContext::withThreads(threads);
        auto r = rankSingleMetrics(data, FitMode::MixedEffects, ctx);
        ASSERT_EQ(r.size(), serial.size());
        for (size_t i = 0; i < r.size(); ++i) {
            EXPECT_EQ(r[i].metrics, serial[i].metrics)
                << "rank " << i << " at " << threads << " threads";
            EXPECT_EQ(r[i].fit.sigmaEps(), serial[i].fit.sigmaEps());
            EXPECT_EQ(r[i].fit.weights(), serial[i].fit.weights());
        }
    }
}

} // namespace
} // namespace ucx
