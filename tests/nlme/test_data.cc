#include <gtest/gtest.h>

#include "nlme/data.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

NlmeData
twoGroupData()
{
    NlmeData data;
    NlmeGroup a;
    a.name = "A";
    a.y = {0.0, 1.0};
    a.x = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    NlmeGroup b;
    b.name = "B";
    b.y = {2.0};
    b.x = Matrix::fromRows({{5.0, 6.0}});
    data.groups = {std::move(a), std::move(b)};
    return data;
}

TEST(NlmeData, Totals)
{
    NlmeData data = twoGroupData();
    EXPECT_EQ(data.totalObservations(), 3u);
    EXPECT_EQ(data.numCovariates(), 2u);
    EXPECT_NO_THROW(data.validate());
}

TEST(NlmeData, EmptyIsInvalid)
{
    NlmeData data;
    EXPECT_THROW(data.validate(), UcxError);
}

TEST(NlmeData, RowCountMismatchIsInvalid)
{
    NlmeData data = twoGroupData();
    data.groups[0].y.push_back(3.0); // now 3 y's but 2 x rows
    EXPECT_THROW(data.validate(), UcxError);
}

TEST(NlmeData, CovariateCountMismatchIsInvalid)
{
    NlmeData data = twoGroupData();
    data.groups[1].x = Matrix::fromRows({{1.0}});
    EXPECT_THROW(data.validate(), UcxError);
}

TEST(NlmeData, AllZeroRowIsInvalid)
{
    NlmeData data = twoGroupData();
    data.groups[0].x(0, 0) = 0.0;
    data.groups[0].x(0, 1) = 0.0;
    EXPECT_THROW(data.validate(), UcxError);
}

TEST(NlmeData, NegativeMetricIsInvalid)
{
    NlmeData data = twoGroupData();
    data.groups[0].x(0, 0) = -1.0;
    EXPECT_THROW(data.validate(), UcxError);
}

TEST(NlmeData, EmptyGroupIsInvalid)
{
    NlmeData data = twoGroupData();
    data.groups[1].y.clear();
    data.groups[1].x = Matrix(0, 2);
    EXPECT_THROW(data.validate(), UcxError);
}

} // namespace
} // namespace ucx
