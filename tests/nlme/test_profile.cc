#include <cmath>

#include <gtest/gtest.h>

#include "nlme/profile.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

NlmeData
profileData(uint64_t seed)
{
    Rng rng(seed);
    NlmeData data;
    for (size_t g = 0; g < 5; ++g) {
        NlmeGroup grp;
        grp.name = "g" + std::to_string(g);
        double b = rng.normal(0.0, 0.4);
        std::vector<std::vector<double>> rows;
        for (size_t j = 0; j < 6; ++j) {
            double m = rng.uniform(100.0, 5000.0);
            grp.y.push_back(b + std::log(0.01 * m) +
                            rng.normal(0.0, 0.3));
            rows.push_back({m});
        }
        grp.x = Matrix::fromRows(rows);
        data.groups.push_back(std::move(grp));
    }
    return data;
}

TEST(Profile, ProfileAtMleEqualsMaxLikelihood)
{
    NlmeData data = profileData(1);
    MixedModel model(data);
    MixedFit fit = model.fit();
    double pll = profileLogLik(model, fit, MixedParam::SigmaEps, 0,
                               fit.sigmaEps, 4);
    // Profiling at the MLE re-finds (at least) the maximum.
    EXPECT_NEAR(pll, fit.logLik, 0.02);
    EXPECT_LE(pll, fit.logLik + 0.02);
}

TEST(Profile, ProfileDropsAwayFromMle)
{
    NlmeData data = profileData(3);
    MixedModel model(data);
    MixedFit fit = model.fit();
    double at_mle = profileLogLik(model, fit, MixedParam::SigmaEps,
                                  0, fit.sigmaEps, 3);
    double far = profileLogLik(model, fit, MixedParam::SigmaEps, 0,
                               fit.sigmaEps * 4.0, 3);
    EXPECT_GT(at_mle, far + 1.0);
}

TEST(Profile, IntervalBracketsMle)
{
    NlmeData data = profileData(5);
    MixedModel model(data);
    MixedFit fit = model.fit();
    ProfileInterval ci =
        profileInterval(model, fit, MixedParam::SigmaEps);
    EXPECT_LT(ci.lower, fit.sigmaEps);
    EXPECT_GT(ci.upper, fit.sigmaEps);
    EXPECT_FALSE(ci.lowerOpen);
    EXPECT_FALSE(ci.upperOpen);
}

TEST(Profile, WiderIntervalAtHigherLevel)
{
    NlmeData data = profileData(7);
    MixedModel model(data);
    MixedFit fit = model.fit();
    ProfileConfig c68;
    c68.level = 0.68;
    ProfileConfig c95;
    c95.level = 0.95;
    ProfileInterval i68 = profileInterval(
        model, fit, MixedParam::SigmaEps, 0, c68);
    ProfileInterval i95 = profileInterval(
        model, fit, MixedParam::SigmaEps, 0, c95);
    EXPECT_LE(i95.lower, i68.lower + 1e-6);
    EXPECT_GE(i95.upper, i68.upper - 1e-6);
}

TEST(Profile, WeightIntervalBracketsMle)
{
    NlmeData data = profileData(9);
    MixedModel model(data);
    MixedFit fit = model.fit();
    ProfileConfig cfg;
    cfg.starts = 2;
    ProfileInterval ci = profileInterval(
        model, fit, MixedParam::Weight, 0, cfg);
    EXPECT_LT(ci.lower, fit.weights[0]);
    EXPECT_GT(ci.upper, fit.weights[0]);
    // Truth (0.01) should fall inside a 95% interval most of the
    // time; this seed's dataset is well behaved.
    EXPECT_LT(ci.lower, 0.01);
    EXPECT_GT(ci.upper, 0.01);
}

TEST(Profile, RejectsBadArguments)
{
    NlmeData data = profileData(11);
    MixedModel model(data);
    MixedFit fit = model.fit();
    EXPECT_THROW(
        profileLogLik(model, fit, MixedParam::Weight, 5, 0.5),
        UcxError);
    EXPECT_THROW(
        profileLogLik(model, fit, MixedParam::SigmaEps, 0, 0.0),
        UcxError);
    ProfileConfig bad;
    bad.level = 1.5;
    EXPECT_THROW(profileInterval(model, fit, MixedParam::SigmaEps,
                                 0, bad),
                 UcxError);
}

} // namespace
} // namespace ucx
