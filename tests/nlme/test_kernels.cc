/**
 * @file
 * Fitting-kernel layer tests: SoA flattening, bit-identity of the
 * fused kernels against the straightforward per-group evaluation,
 * analytic marginal gradients against central differences, and the
 * invalid-weights status channel.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "nlme/kernels.hh"
#include "nlme/mixed_model.hh"
#include "opt/workspace.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

NlmeData
syntheticData(uint64_t seed, double w1, double w2, double s_eps,
              double s_rho, size_t groups, size_t per_group)
{
    Rng rng(seed);
    NlmeData data;
    for (size_t g = 0; g < groups; ++g) {
        NlmeGroup grp;
        grp.name = "team" + std::to_string(g);
        double b = rng.normal(0.0, s_rho);
        std::vector<std::vector<double>> rows;
        for (size_t j = 0; j < per_group; ++j) {
            double m1 = rng.uniform(100.0, 4000.0);
            double m2 = rng.uniform(1000.0, 20000.0);
            double y = b + std::log(w1 * m1 + w2 * m2) +
                       rng.normal(0.0, s_eps);
            rows.push_back({m1, m2});
            grp.y.push_back(y);
        }
        grp.x = Matrix::fromRows(rows);
        data.groups.push_back(std::move(grp));
    }
    return data;
}

/** The scalar j-outer/k-inner evaluation the kernels replaced. */
double
referenceLogLik(const NlmeData &data, const std::vector<double> &w,
                double var_e, double var_r, bool *valid)
{
    *valid = true;
    double ll = 0.0;
    for (const auto &g : data.groups) {
        std::vector<double> r(g.y.size());
        for (size_t j = 0; j < g.y.size(); ++j) {
            double lin = 0.0;
            for (size_t k = 0; k < w.size(); ++k)
                lin += w[k] * g.x(j, k);
            if (!(lin > 0.0)) {
                *valid = false;
                return 0.0;
            }
            r[j] = g.y[j] - std::log(lin);
        }
        double n = static_cast<double>(r.size());
        double tau = var_e + n * var_r;
        double ss = 0.0;
        double s = 0.0;
        for (double v : r) {
            ss += v * v;
            s += v;
        }
        double log_det = (n - 1.0) * std::log(var_e) + std::log(tau);
        double quad = (ss - (var_r / tau) * s * s) / var_e;
        ll += -0.5 * (n * std::log(2.0 * M_PI) + log_det + quad);
    }
    return ll;
}

TEST(Kernels, SoaLayoutFlattensGroupMajor)
{
    NlmeData data = syntheticData(3, 0.004, 0.0005, 0.3, 0.4, 3, 4);
    nlme::SoaData soa = nlme::SoaData::fromData(data);

    ASSERT_EQ(soa.ngroups, 3u);
    ASSERT_EQ(soa.nobs, 12u);
    ASSERT_EQ(soa.ncov, 2u);
    ASSERT_EQ(soa.offsets.size(), 4u);
    EXPECT_EQ(soa.offsets[0], 0u);
    EXPECT_EQ(soa.offsets[3], 12u);

    // y is group-major; x columns are contiguous with the same row
    // order.
    size_t row = 0;
    for (const auto &g : data.groups) {
        for (size_t j = 0; j < g.y.size(); ++j, ++row) {
            EXPECT_EQ(soa.y[row], g.y[j]);
            EXPECT_EQ(soa.col(0)[row], g.x(j, 0));
            EXPECT_EQ(soa.col(1)[row], g.x(j, 1));
        }
    }
}

TEST(Kernels, LogLikBitIdenticalToReference)
{
    NlmeData data = syntheticData(5, 0.004, 0.0005, 0.4, 0.5, 5, 6);
    nlme::SoaData soa = nlme::SoaData::fromData(data);
    FitWorkspace ws;

    Rng rng(11);
    for (int i = 0; i < 20; ++i) {
        std::vector<double> w = {rng.uniform(0.001, 0.01),
                                 rng.uniform(0.0001, 0.001)};
        double ve = rng.uniform(0.05, 1.0);
        double vr = rng.uniform(0.05, 1.0);

        ASSERT_EQ(nlme::residualKernel(soa, w.data(), ws),
                  nlme::KernelStatus::Ok);
        double got = nlme::logLikKernel(soa, ws.resid.data(), ve, vr);

        bool valid = false;
        double expect = referenceLogLik(data, w, ve, vr, &valid);
        ASSERT_TRUE(valid);
        // Same operations in the same order: exactly equal, not just
        // close.
        EXPECT_EQ(got, expect);
    }
}

TEST(Kernels, GradKernelReturnsSameLogLik)
{
    NlmeData data = syntheticData(7, 0.003, 0.0004, 0.3, 0.4, 4, 5);
    nlme::SoaData soa = nlme::SoaData::fromData(data);
    FitWorkspace ws;
    ws.ensure(soa.nobs, soa.ncov + 2);

    std::vector<double> w = {0.003, 0.0004};
    double se = 0.35;
    double sr = 0.45;
    ASSERT_EQ(nlme::residualKernel(soa, w.data(), ws),
              nlme::KernelStatus::Ok);
    double ll_plain =
        nlme::logLikKernel(soa, ws.resid.data(), se * se, sr * sr);
    std::vector<double> grad(soa.ncov + 2);
    double ll_grad =
        nlme::logLikGradKernel(soa, se, sr, ws, grad.data());
    EXPECT_EQ(ll_plain, ll_grad);
}

TEST(Kernels, AnalyticGradientMatchesCentralDifferences)
{
    NlmeData data = syntheticData(13, 0.004, 0.0005, 0.35, 0.45, 6, 5);
    nlme::SoaData soa = nlme::SoaData::fromData(data);
    FitWorkspace ws;
    ws.ensure(soa.nobs, soa.ncov + 2);

    auto loglik = [&](const std::vector<double> &w, double se,
                      double sr) {
        EXPECT_EQ(nlme::residualKernel(soa, w.data(), ws),
                  nlme::KernelStatus::Ok);
        return nlme::logLikKernel(soa, ws.resid.data(), se * se,
                                  sr * sr);
    };

    Rng rng(29);
    const double h = 1e-6;
    for (int pt = 0; pt < 20; ++pt) {
        std::vector<double> w = {rng.uniform(0.002, 0.008),
                                 rng.uniform(0.0002, 0.0009)};
        double se = rng.uniform(0.2, 0.8);
        double sr = rng.uniform(0.2, 0.8);

        ASSERT_EQ(nlme::residualKernel(soa, w.data(), ws),
                  nlme::KernelStatus::Ok);
        std::vector<double> grad(soa.ncov + 2);
        nlme::logLikGradKernel(soa, se, sr, ws, grad.data());

        // Central differences at relative step h on each coordinate.
        for (size_t k = 0; k < soa.ncov; ++k) {
            std::vector<double> wp = w;
            std::vector<double> wm = w;
            double step = std::max(std::abs(w[k]), 1.0e-3) * h;
            wp[k] += step;
            wm[k] -= step;
            double fd = (loglik(wp, se, sr) - loglik(wm, se, sr)) /
                        (2.0 * step);
            double scale = std::max(std::abs(fd), 1.0);
            EXPECT_NEAR(grad[k], fd, 1e-4 * scale)
                << "point " << pt << " weight " << k;
        }
        double step_e = std::max(se, 1.0e-3) * h;
        double fd_se = (loglik(w, se + step_e, sr) -
                        loglik(w, se - step_e, sr)) /
                       (2.0 * step_e);
        EXPECT_NEAR(grad[soa.ncov], fd_se,
                    1e-4 * std::max(std::abs(fd_se), 1.0))
            << "point " << pt << " sigma_eps";
        double step_r = std::max(sr, 1.0e-3) * h;
        double fd_sr = (loglik(w, se, sr + step_r) -
                        loglik(w, se, sr - step_r)) /
                       (2.0 * step_r);
        EXPECT_NEAR(grad[soa.ncov + 1], fd_sr,
                    1e-4 * std::max(std::abs(fd_sr), 1.0))
            << "point " << pt << " sigma_rho";
    }
}

TEST(Kernels, NonPositiveLinearPredictorReportsInvalidWeights)
{
    NlmeData data = syntheticData(17, 0.004, 0.0005, 0.3, 0.4, 3, 4);
    nlme::SoaData soa = nlme::SoaData::fromData(data);
    FitWorkspace ws;

    std::vector<double> zero = {0.0, 0.0};
    EXPECT_EQ(nlme::residualKernel(soa, zero.data(), ws),
              nlme::KernelStatus::InvalidWeights);
    std::vector<double> negative = {-0.004, -0.0005};
    EXPECT_EQ(nlme::residualKernel(soa, negative.data(), ws),
              nlme::KernelStatus::InvalidWeights);
    std::vector<double> fine = {0.004, 0.0005};
    EXPECT_EQ(nlme::residualKernel(soa, fine.data(), ws),
              nlme::KernelStatus::Ok);
}

TEST(Kernels, EmpiricalBayesMatchesModel)
{
    NlmeData data = syntheticData(19, 0.003, 0.0004, 0.3, 0.5, 4, 6);
    MixedModel model(data);
    std::vector<double> w = {0.003, 0.0004};
    std::vector<double> via_model = model.empiricalBayes(w, 0.3, 0.5);

    nlme::SoaData soa = nlme::SoaData::fromData(data);
    FitWorkspace ws;
    ASSERT_EQ(nlme::residualKernel(soa, w.data(), ws),
              nlme::KernelStatus::Ok);
    std::vector<double> via_kernel(soa.ngroups);
    // 0.3 * 0.3 != 0.09 in binary floating point; match the exact
    // variance the model computes from its sigmas.
    nlme::empiricalBayesKernel(soa, ws.resid.data(), 0.3 * 0.3,
                               0.5 * 0.5, via_kernel.data());
    ASSERT_EQ(via_model.size(), via_kernel.size());
    for (size_t g = 0; g < via_model.size(); ++g)
        EXPECT_EQ(via_model[g], via_kernel[g]);
}

TEST(Kernels, AnalyticAndFdFitsAgree)
{
    NlmeData data =
        syntheticData(23, 0.003, 0.0004, 0.35, 0.45, 5, 6);
    MixedModelConfig fd;
    fd.analyticGradient = false;
    MixedModelConfig an;
    an.analyticGradient = true;
    MixedFit fit_fd = MixedModel(data, fd).fit();
    MixedFit fit_an = MixedModel(data, an).fit();

    ASSERT_TRUE(fit_fd.converged);
    ASSERT_TRUE(fit_an.converged);
    // Both paths polish the same Nelder-Mead winner; the optima they
    // land on must agree to optimizer tolerance.
    EXPECT_NEAR(fit_an.logLik, fit_fd.logLik,
                1e-6 * std::abs(fit_fd.logLik));
    for (size_t k = 0; k < fit_fd.weights.size(); ++k) {
        EXPECT_NEAR(fit_an.weights[k], fit_fd.weights[k],
                    1e-4 * std::abs(fit_fd.weights[k]));
    }
    EXPECT_NEAR(fit_an.sigmaEps, fit_fd.sigmaEps,
                1e-4 * fit_fd.sigmaEps);
    EXPECT_NEAR(fit_an.sigmaRho, fit_fd.sigmaRho,
                1e-4 * fit_fd.sigmaRho);
}

TEST(Kernels, ResidualsDistinguishInvalidWeightsFromData)
{
    NlmeData data = syntheticData(31, 0.004, 0.0005, 0.3, 0.4, 3, 4);
    MixedModel model(data);

    // Valid weights: per-group residual vectors, never empty
    // (validate() requires at least one group with observations).
    auto ok = model.residuals({0.004, 0.0005});
    ASSERT_TRUE(ok.has_value());
    ASSERT_EQ(ok->size(), 3u);
    for (const auto &r : *ok)
        EXPECT_EQ(r.size(), 4u);

    // Invalid weights: nullopt, not an empty vector — the historical
    // `return {}` conflated the two.
    auto bad = model.residuals({0.0, 0.0});
    EXPECT_FALSE(bad.has_value());

    // A wrong-arity weight vector is a caller bug, not an invalid
    // point in weight space.
    EXPECT_THROW(model.residuals({0.004}), UcxError);
}

TEST(Kernels, ResidualsMatchLogLikelihoodPath)
{
    NlmeData data = syntheticData(37, 0.004, 0.0005, 0.3, 0.4, 4, 5);
    MixedModel model(data);
    std::vector<double> w = {0.004, 0.0005};
    auto res = model.residuals(w);
    ASSERT_TRUE(res.has_value());
    // Products, not literals: 0.4 * 0.4 != 0.16 in binary floating
    // point, and this test asserts exact equality.
    double ve = 0.4 * 0.4;
    double vr = 0.5 * 0.5;
    double manual = 0.0;
    for (const auto &r : *res) {
        double n = static_cast<double>(r.size());
        double tau = ve + n * vr;
        double ss = 0.0;
        double s = 0.0;
        for (double v : r) {
            ss += v * v;
            s += v;
        }
        // Exact expression shape of the kernel (association order
        // matters for bitwise equality).
        double log_det = (n - 1.0) * std::log(ve) + std::log(tau);
        double quad = (ss - (vr / tau) * s * s) / ve;
        manual += -0.5 * (n * std::log(2.0 * M_PI) + log_det + quad);
    }
    EXPECT_EQ(manual, model.logLikelihood(w, 0.4, 0.5));
}

} // namespace
} // namespace ucx
