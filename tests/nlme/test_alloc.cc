/**
 * @file
 * Steady-state allocation accounting for the fitting hot path.
 *
 * This test binary links ucx_alloc_hook, so every operator new in
 * the process is counted per thread. After a warm-up batch grows the
 * thread-local workspaces, repeated logLikelihood / gradient
 * evaluations must perform exactly zero heap allocations — on the
 * calling thread and on every ExecContext pool worker (the suite
 * runs under UCX_THREADS=1 and 8 in CI, and the pool test pins an
 * 8-thread pool besides).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "exec/context.hh"
#include "nlme/kernels.hh"
#include "nlme/mixed_model.hh"
#include "opt/workspace.hh"
#include "util/alloc_hook.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

NlmeData
syntheticData(uint64_t seed, double w1, double w2, double s_eps,
              double s_rho, size_t groups, size_t per_group)
{
    Rng rng(seed);
    NlmeData data;
    for (size_t g = 0; g < groups; ++g) {
        NlmeGroup grp;
        grp.name = "team" + std::to_string(g);
        double b = rng.normal(0.0, s_rho);
        std::vector<std::vector<double>> rows;
        for (size_t j = 0; j < per_group; ++j) {
            double m1 = rng.uniform(100.0, 4000.0);
            double m2 = rng.uniform(1000.0, 20000.0);
            double y = b + std::log(w1 * m1 + w2 * m2) +
                       rng.normal(0.0, s_eps);
            rows.push_back({m1, m2});
            grp.y.push_back(y);
        }
        grp.x = Matrix::fromRows(rows);
        data.groups.push_back(std::move(grp));
    }
    return data;
}

TEST(AllocSteadyState, HookIsCounting)
{
    AllocCounts before = allocCountsThread();
    std::vector<double> *v = new std::vector<double>(100);
    AllocCounts mid = allocCountsThread();
    delete v;
    AllocCounts after = allocCountsThread();
    // At least the 800-byte buffer is counted (the vector object
    // itself may be elided by the optimizer, so >= 1, not 2).
    EXPECT_GE(mid.allocs - before.allocs, 1u);
    EXPECT_GE(after.frees - mid.frees, 1u);
    EXPECT_GE(mid.bytes - before.bytes, 100 * sizeof(double));
}

TEST(AllocSteadyState, LogLikelihoodIsAllocationFree)
{
    NlmeData data = syntheticData(3, 0.004, 0.0005, 0.3, 0.4, 5, 6);
    MixedModel model(data);
    std::vector<double> w = {0.004, 0.0005};

    // Warm-up: grows this thread's workspace to the dataset size.
    double sink = 0.0;
    for (int i = 0; i < 4; ++i)
        sink += model.logLikelihood(w, 0.3, 0.4);

    AllocCounts before = allocCountsThread();
    for (int i = 0; i < 200; ++i)
        sink += model.logLikelihood(w, 0.3, 0.4);
    AllocCounts after = allocCountsThread();

    EXPECT_EQ(after.allocs, before.allocs)
        << "steady-state logLikelihood allocated on the heap";
    EXPECT_EQ(after.bytes, before.bytes);
    EXPECT_TRUE(std::isfinite(sink));
}

TEST(AllocSteadyState, GradientKernelIsAllocationFree)
{
    NlmeData data = syntheticData(5, 0.003, 0.0004, 0.35, 0.45, 4, 6);
    nlme::SoaData soa = nlme::SoaData::fromData(data);
    std::vector<double> w = {0.003, 0.0004};
    std::vector<double> grad(soa.ncov + 2);

    FitWorkspace &ws = threadFitWorkspace();
    ws.ensure(soa.nobs, soa.ncov + 2);
    ASSERT_EQ(nlme::residualKernel(soa, w.data(), ws),
              nlme::KernelStatus::Ok);
    nlme::logLikGradKernel(soa, 0.35, 0.45, ws, grad.data());

    AllocCounts before = allocCountsThread();
    double sink = 0.0;
    for (int i = 0; i < 200; ++i) {
        ASSERT_EQ(nlme::residualKernel(soa, w.data(), ws),
                  nlme::KernelStatus::Ok);
        sink += nlme::logLikGradKernel(soa, 0.35, 0.45, ws,
                                       grad.data());
    }
    AllocCounts after = allocCountsThread();

    EXPECT_EQ(after.allocs, before.allocs)
        << "steady-state gradient kernel allocated on the heap";
    EXPECT_TRUE(std::isfinite(sink));
}

TEST(AllocSteadyState, PoolWorkersAreAllocationFree)
{
    NlmeData data = syntheticData(7, 0.004, 0.0005, 0.3, 0.4, 6, 5);
    MixedModel model(data);
    std::vector<double> w = {0.004, 0.0005};

    // Each task warms its own worker's workspace, then measures its
    // own thread-local counters across a steady-state batch —
    // per-thread counts, so concurrent workers cannot blur each
    // other's deltas.
    ExecContext ctx = ExecContext::withThreads(8);
    std::vector<uint64_t> leaked =
        ctx.parallelMap(64, [&](size_t) -> uint64_t {
            double sink = 0.0;
            for (int i = 0; i < 4; ++i)
                sink += model.logLikelihood(w, 0.3, 0.4);
            AllocCounts before = allocCountsThread();
            for (int i = 0; i < 50; ++i)
                sink += model.logLikelihood(w, 0.3, 0.4);
            AllocCounts after = allocCountsThread();
            if (!std::isfinite(sink))
                return ~uint64_t(0);
            return after.allocs - before.allocs;
        });

    for (uint64_t n : leaked)
        EXPECT_EQ(n, 0u)
            << "a pool worker allocated during steady-state "
               "likelihood evaluation";
}

TEST(AllocSteadyState, EnvThreadContextIsAllocationFree)
{
    // Same assertion through ExecContext::fromEnv(), so the CI runs
    // at UCX_THREADS=1 and UCX_THREADS=8 both exercise it on their
    // configured pool shape.
    NlmeData data = syntheticData(11, 0.004, 0.0005, 0.3, 0.4, 5, 5);
    MixedModel model(data);
    std::vector<double> w = {0.004, 0.0005};

    ExecContext ctx = ExecContext::fromEnv();
    std::vector<uint64_t> leaked =
        ctx.parallelMap(32, [&](size_t) -> uint64_t {
            double sink = 0.0;
            for (int i = 0; i < 4; ++i)
                sink += model.logLikelihood(w, 0.3, 0.4);
            AllocCounts before = allocCountsThread();
            for (int i = 0; i < 50; ++i)
                sink += model.logLikelihood(w, 0.3, 0.4);
            AllocCounts after = allocCountsThread();
            if (!std::isfinite(sink))
                return ~uint64_t(0);
            return after.allocs - before.allocs;
        });

    for (uint64_t n : leaked)
        EXPECT_EQ(n, 0u);
}

} // namespace
} // namespace ucx
