#include <cmath>

#include <gtest/gtest.h>

#include "nlme/mixed_model.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

/**
 * Parameter-recovery property test: generate data from the exact
 * generative model of paper Section 3.1 and confirm the fitter
 * recovers weights and variance components within sampling error.
 * Parameterized over (sigma_eps, sigma_rho) regimes.
 */
struct Regime
{
    double sigmaEps;
    double sigmaRho;
    uint64_t seed;
};

class Recovery : public ::testing::TestWithParam<Regime>
{};

TEST_P(Recovery, RecoversGenerativeParameters)
{
    const Regime regime = GetParam();
    const double w1 = 0.006;
    const double w2 = 0.0003;
    const size_t groups = 12;
    const size_t per_group = 10;

    Rng rng(regime.seed);
    NlmeData data;
    for (size_t g = 0; g < groups; ++g) {
        NlmeGroup grp;
        grp.name = "team" + std::to_string(g);
        double b = rng.normal(0.0, regime.sigmaRho);
        std::vector<std::vector<double>> rows;
        for (size_t j = 0; j < per_group; ++j) {
            double m1 = rng.uniform(100.0, 4000.0);
            double m2 = rng.uniform(1000.0, 20000.0);
            grp.y.push_back(b + std::log(w1 * m1 + w2 * m2) +
                            rng.normal(0.0, regime.sigmaEps));
            rows.push_back({m1, m2});
        }
        grp.x = Matrix::fromRows(rows);
        data.groups.push_back(std::move(grp));
    }

    MixedFit fit = MixedModel(data).fit();

    // Weights recovered within ~35% (120 observations, lognormal
    // noise).
    EXPECT_NEAR(fit.weights[0] / w1, 1.0, 0.35);
    EXPECT_NEAR(fit.weights[1] / w2, 1.0, 0.55);
    // Variance components within generous sampling bounds.
    EXPECT_NEAR(fit.sigmaEps, regime.sigmaEps,
                0.3 * regime.sigmaEps + 0.03);
    EXPECT_NEAR(fit.sigmaRho, regime.sigmaRho,
                0.6 * regime.sigmaRho + 0.08);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, Recovery,
    ::testing::Values(Regime{0.2, 0.3, 101}, Regime{0.4, 0.2, 202},
                      Regime{0.5, 0.5, 303}, Regime{0.3, 0.8, 404},
                      Regime{0.15, 0.15, 505}));

/**
 * Empirical-Bayes productivity recovery: simulated team offsets must
 * correlate strongly with the estimated ones.
 */
TEST(RecoveryRanef, ProductivitiesTrackTrueOffsets)
{
    Rng rng(777);
    const size_t groups = 10;
    NlmeData data;
    std::vector<double> true_b;
    for (size_t g = 0; g < groups; ++g) {
        NlmeGroup grp;
        grp.name = "team" + std::to_string(g);
        double b = rng.normal(0.0, 0.6);
        true_b.push_back(b);
        std::vector<std::vector<double>> rows;
        for (size_t j = 0; j < 8; ++j) {
            double m = rng.uniform(200.0, 6000.0);
            grp.y.push_back(b + std::log(0.01 * m) +
                            rng.normal(0.0, 0.2));
            rows.push_back({m});
        }
        grp.x = Matrix::fromRows(rows);
        data.groups.push_back(std::move(grp));
    }
    MixedFit fit = MixedModel(data).fit();
    // Pearson correlation between true and estimated offsets.
    double mx = 0.0;
    double my = 0.0;
    for (size_t g = 0; g < groups; ++g) {
        mx += true_b[g];
        my += fit.ranef[g];
    }
    mx /= groups;
    my /= groups;
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (size_t g = 0; g < groups; ++g) {
        sxy += (true_b[g] - mx) * (fit.ranef[g] - my);
        sxx += (true_b[g] - mx) * (true_b[g] - mx);
        syy += (fit.ranef[g] - my) * (fit.ranef[g] - my);
    }
    double corr = sxy / std::sqrt(sxx * syy);
    EXPECT_GT(corr, 0.9);

    // rho_i = exp(-b_i): a team with larger offset (slower) has a
    // smaller productivity.
    for (size_t g = 0; g < groups; ++g) {
        EXPECT_NEAR(fit.productivity[g], std::exp(-fit.ranef[g]),
                    1e-12);
    }
}

} // namespace
} // namespace ucx
