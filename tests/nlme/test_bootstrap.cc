#include <cmath>

#include <gtest/gtest.h>

#include "nlme/bootstrap.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

NlmeData
bootData(uint64_t seed)
{
    Rng rng(seed);
    NlmeData data;
    for (size_t g = 0; g < 4; ++g) {
        NlmeGroup grp;
        grp.name = "g" + std::to_string(g);
        double b = rng.normal(0.0, 0.35);
        std::vector<std::vector<double>> rows;
        for (size_t j = 0; j < 5; ++j) {
            double m = rng.uniform(100.0, 5000.0);
            grp.y.push_back(b + std::log(0.008 * m) +
                            rng.normal(0.0, 0.3));
            rows.push_back({m});
        }
        grp.x = Matrix::fromRows(rows);
        data.groups.push_back(std::move(grp));
    }
    return data;
}

TEST(Bootstrap, ReplicateCountRespected)
{
    NlmeData data = bootData(1);
    MixedFit fit = MixedModel(data).fit();
    BootstrapConfig cfg;
    cfg.replicates = 25;
    cfg.starts = 1;
    BootstrapResult res = parametricBootstrap(data, fit, cfg);
    EXPECT_EQ(res.fits.size(), 25u);
}

TEST(Bootstrap, SamplesCenterNearTruth)
{
    NlmeData data = bootData(3);
    MixedFit fit = MixedModel(data).fit();
    BootstrapConfig cfg;
    cfg.replicates = 60;
    cfg.starts = 1;
    BootstrapResult res = parametricBootstrap(data, fit, cfg);
    std::vector<double> sig = res.sigmaEpsSamples();
    double med = sig[sig.size() / 2];
    // The bootstrap distribution of sigma_eps centers near the
    // generating value (slight downward ML bias is expected).
    EXPECT_NEAR(med, fit.sigmaEps, 0.12);
}

TEST(Bootstrap, IntervalBracketsGeneratingValue)
{
    NlmeData data = bootData(5);
    MixedFit fit = MixedModel(data).fit();
    BootstrapConfig cfg;
    cfg.replicates = 80;
    cfg.starts = 1;
    BootstrapResult res = parametricBootstrap(data, fit, cfg);
    auto [lo, hi] = res.sigmaEpsInterval(0.90);
    EXPECT_LT(lo, fit.sigmaEps);
    EXPECT_GT(hi, lo);
    EXPECT_GT(hi, fit.sigmaEps * 0.8);
}

TEST(Bootstrap, DeterministicForFixedSeed)
{
    NlmeData data = bootData(7);
    MixedFit fit = MixedModel(data).fit();
    BootstrapConfig cfg;
    cfg.replicates = 10;
    cfg.starts = 1;
    BootstrapResult a = parametricBootstrap(data, fit, cfg);
    BootstrapResult b = parametricBootstrap(data, fit, cfg);
    for (size_t i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(a.fits[i].sigmaEps, b.fits[i].sigmaEps);
        EXPECT_DOUBLE_EQ(a.fits[i].weights[0],
                         b.fits[i].weights[0]);
    }
}

TEST(Bootstrap, SortedSamples)
{
    NlmeData data = bootData(9);
    MixedFit fit = MixedModel(data).fit();
    BootstrapConfig cfg;
    cfg.replicates = 15;
    cfg.starts = 1;
    BootstrapResult res = parametricBootstrap(data, fit, cfg);
    auto sig = res.sigmaEpsSamples();
    for (size_t i = 1; i < sig.size(); ++i)
        EXPECT_LE(sig[i - 1], sig[i]);
    auto rho = res.sigmaRhoSamples();
    EXPECT_EQ(rho.size(), 15u);
}

TEST(Bootstrap, RejectsBadArguments)
{
    NlmeData data = bootData(11);
    MixedFit fit = MixedModel(data).fit();
    BootstrapConfig cfg;
    cfg.replicates = 0;
    EXPECT_THROW(parametricBootstrap(data, fit, cfg), UcxError);
    BootstrapResult empty;
    EXPECT_THROW(empty.sigmaEpsInterval(0.9), UcxError);
}

TEST(Bootstrap, NonConvergedCountMatchesFits)
{
    NlmeData data = bootData(13);
    MixedFit fit = MixedModel(data).fit();
    BootstrapConfig cfg;
    cfg.replicates = 20;
    cfg.starts = 1;
    BootstrapResult res = parametricBootstrap(data, fit, cfg);
    size_t failed = 0;
    for (const MixedFit &f : res.fits)
        failed += f.converged ? 0 : 1;
    EXPECT_EQ(res.nonConverged, failed);
    // Replicates stay indexed by replicate even when some fail.
    EXPECT_EQ(res.fits.size(), 20u);
}

TEST(Bootstrap, AccessorsExcludeNonConvergedReplicates)
{
    BootstrapResult res;
    for (int i = 0; i < 6; ++i) {
        MixedFit f;
        f.sigmaEps = 0.1 * (i + 1);
        f.sigmaRho = 0.01 * (i + 1);
        f.converged = i % 2 == 0; // replicates 1, 3, 5 failed
        res.fits.push_back(f);
    }
    res.nonConverged = 3;

    std::vector<double> eps = res.sigmaEpsSamples();
    ASSERT_EQ(eps.size(), 3u);
    EXPECT_DOUBLE_EQ(eps[0], 0.1);
    EXPECT_DOUBLE_EQ(eps[1], 0.3);
    EXPECT_DOUBLE_EQ(eps[2], 0.5);
    EXPECT_EQ(res.sigmaRhoSamples().size(), 3u);

    auto [lo, hi] = res.sigmaEpsInterval(0.90);
    EXPECT_GE(lo, 0.1);
    EXPECT_LE(hi, 0.5);
}

TEST(Bootstrap, IntervalThrowsWhenNothingConverged)
{
    BootstrapResult res;
    MixedFit f;
    f.sigmaEps = 0.4;
    f.converged = false;
    res.fits.assign(5, f);
    res.nonConverged = 5;
    EXPECT_TRUE(res.sigmaEpsSamples().empty());
    EXPECT_THROW(res.sigmaEpsInterval(0.9), UcxError);
}

} // namespace
} // namespace ucx
