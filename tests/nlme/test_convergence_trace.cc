/**
 * @file
 * Regression: fitting the paper's DEE1 estimator on the bundled
 * 18-component dataset must converge and must leave a populated,
 * monotone convergence trace on the fit — the observability contract
 * the bench reports and the Table 4 reproduction rely on.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "data/paper_data.hh"
#include "nlme/mixed_model.hh"

namespace ucx
{
namespace
{

TEST(ConvergenceTraceRegression, Dee1FitTraceIsMonotone)
{
    NlmeData data = paperDataset().toNlmeData(
        {Metric::Stmts, Metric::FanInLC});
    MixedModel model(data);
    MixedFit fit = model.fit();

    EXPECT_TRUE(fit.converged);
    ASSERT_GE(fit.trace.size(), 1u);
    EXPECT_TRUE(fit.trace.converged);
    EXPECT_FALSE(fit.trace.algorithm.empty());

    // The trace records the negative log-likelihood, so its last
    // objective must match the reported fit up to sign.
    EXPECT_NEAR(fit.trace.back().objective, -fit.logLik,
                1e-6 * std::abs(fit.logLik) + 1e-8);

    // Nelder-Mead's best vertex and BFGS's accepted iterates never
    // regress, so the whole recorded history is non-increasing after
    // the first accepted step. Tolerance covers the multi-start seam
    // where the polish re-evaluates the same point.
    EXPECT_TRUE(fit.trace.monotoneNonIncreasing(1e-9))
        << "objective increased within the recorded trace";

    // Iteration numbering stays strictly increasing across the
    // multistart -> polish seam.
    for (size_t i = 1; i < fit.trace.size(); ++i)
        EXPECT_LT(fit.trace.samples()[i - 1].iteration,
                  fit.trace.samples()[i].iteration);
}

} // namespace
} // namespace ucx
