#include <cmath>

#include <gtest/gtest.h>

#include "nlme/generic.hh"
#include "nlme/mixed_model.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

NlmeData
smallData(uint64_t seed)
{
    Rng rng(seed);
    NlmeData data;
    for (size_t g = 0; g < 3; ++g) {
        NlmeGroup grp;
        grp.name = "g" + std::to_string(g);
        double b = rng.normal(0.0, 0.4);
        std::vector<std::vector<double>> rows;
        for (size_t j = 0; j < 4; ++j) {
            double m1 = rng.uniform(200.0, 3000.0);
            double m2 = rng.uniform(2000.0, 15000.0);
            double y = b + std::log(0.004 * m1 + 0.0004 * m2) +
                       rng.normal(0.0, 0.3);
            rows.push_back({m1, m2});
            grp.y.push_back(y);
        }
        grp.x = Matrix::fromRows(rows);
        data.groups.push_back(std::move(grp));
    }
    return data;
}

/**
 * The decisive cross-check: for the log-additive random intercept,
 * Laplace is *exact* (the integrand is Gaussian in b), so the
 * generic fitter's likelihood must equal the analytic one.
 */
TEST(GenericNlme, LaplaceMatchesAnalyticExactly)
{
    NlmeData data = smallData(3);
    MixedModel analytic(data);
    GenericNlmeConfig cfg;
    cfg.integration = Integration::Laplace;
    GenericNlme laplace(data, logLinearMean(), cfg);

    std::vector<double> w = {0.004, 0.0004};
    for (double se : {0.2, 0.4}) {
        for (double sr : {0.1, 0.5}) {
            double a = analytic.logLikelihood(w, se, sr);
            double l = laplace.logLikelihood(w, se, sr);
            EXPECT_NEAR(a, l, 1e-5)
                << "se=" << se << " sr=" << sr;
        }
    }
}

TEST(GenericNlme, AghqMatchesAnalytic)
{
    NlmeData data = smallData(5);
    MixedModel analytic(data);
    GenericNlmeConfig cfg;
    cfg.integration = Integration::Aghq;
    cfg.quadraturePoints = 15;
    GenericNlme aghq(data, logLinearMean(), cfg);

    std::vector<double> w = {0.004, 0.0004};
    double a = analytic.logLikelihood(w, 0.3, 0.4);
    double q = aghq.logLikelihood(w, 0.3, 0.4);
    EXPECT_NEAR(a, q, 1e-6);
}

TEST(GenericNlme, AghqConvergesWithNodeCount)
{
    NlmeData data = smallData(7);
    MixedModel analytic(data);
    std::vector<double> w = {0.004, 0.0004};
    double exact = analytic.logLikelihood(w, 0.35, 0.45);

    double err_few;
    double err_many;
    {
        GenericNlmeConfig cfg;
        cfg.quadraturePoints = 3;
        GenericNlme fitter(data, logLinearMean(), cfg);
        err_few =
            std::abs(fitter.logLikelihood(w, 0.35, 0.45) - exact);
    }
    {
        GenericNlmeConfig cfg;
        cfg.quadraturePoints = 25;
        GenericNlme fitter(data, logLinearMean(), cfg);
        err_many =
            std::abs(fitter.logLikelihood(w, 0.35, 0.45) - exact);
    }
    EXPECT_LE(err_many, err_few + 1e-12);
    EXPECT_LT(err_many, 1e-7);
}

TEST(GenericNlme, FitAgreesWithAnalyticFit)
{
    NlmeData data = smallData(9);
    MixedFit exact = MixedModel(data).fit();

    GenericNlmeConfig cfg;
    cfg.integration = Integration::Aghq;
    cfg.starts = 3;
    MixedFit approx =
        GenericNlme(data, logLinearMean(), cfg).fit();

    // Same model, same ML criterion: the maximized likelihoods agree
    // up to optimizer tolerance.
    EXPECT_NEAR(exact.logLik, approx.logLik,
                0.05 * std::abs(exact.logLik) + 0.05);
    EXPECT_NEAR(exact.sigmaEps, approx.sigmaEps, 0.05);
}

TEST(GenericNlme, CustomMeanFunction)
{
    // A different conditional mean: y = w0 * x0 + b (identity link).
    // The generic machinery must handle it.
    NlmeData data;
    Rng rng(21);
    for (size_t g = 0; g < 3; ++g) {
        NlmeGroup grp;
        grp.name = "g" + std::to_string(g);
        double b = rng.normal(0.0, 0.3);
        std::vector<std::vector<double>> rows;
        for (size_t j = 0; j < 5; ++j) {
            double x = rng.uniform(0.5, 2.0);
            rows.push_back({x});
            grp.y.push_back(2.5 * x + b + rng.normal(0.0, 0.1));
        }
        grp.x = Matrix::fromRows(rows);
        data.groups.push_back(std::move(grp));
    }
    MeanFn linear = [](const std::vector<double> &w,
                       const std::vector<double> &x, double b) {
        return w[0] * x[0] + b;
    };
    GenericNlmeConfig cfg;
    cfg.starts = 2;
    MixedFit fit = GenericNlme(data, linear, cfg).fit();
    EXPECT_NEAR(fit.weights[0], 2.5, 0.3);
}

} // namespace
} // namespace ucx
