#include <cmath>

#include <gtest/gtest.h>

#include "nlme/mixed_model.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

/**
 * Brute-force marginal log-likelihood by naive MVN evaluation:
 * build sigma_e^2 I + sigma_r^2 J explicitly and evaluate the
 * quadratic form via dense inversion (small n), to validate the
 * closed-form compound-symmetry evaluation.
 */
double
naiveGroupLogLik(const std::vector<double> &resid, double ve,
                 double vr)
{
    size_t n = resid.size();
    // Direct computation with Sherman-Morrison:
    // Sigma^{-1} = (1/ve)(I - (vr/(ve + n vr)) J).
    double ss = 0.0;
    double s = 0.0;
    for (double r : resid) {
        ss += r * r;
        s += r;
    }
    double tau = ve + static_cast<double>(n) * vr;
    double quad = (ss - vr / tau * s * s) / ve;
    double logdet =
        (static_cast<double>(n) - 1.0) * std::log(ve) + std::log(tau);
    return -0.5 * (static_cast<double>(n) * std::log(2.0 * M_PI) +
                   logdet + quad);
}

NlmeData
syntheticData(uint64_t seed, double w1, double w2, double s_eps,
              double s_rho, size_t groups, size_t per_group)
{
    Rng rng(seed);
    NlmeData data;
    for (size_t g = 0; g < groups; ++g) {
        NlmeGroup grp;
        grp.name = "team" + std::to_string(g);
        double b = rng.normal(0.0, s_rho);
        std::vector<std::vector<double>> rows;
        for (size_t j = 0; j < per_group; ++j) {
            double m1 = rng.uniform(100.0, 4000.0);
            double m2 = rng.uniform(1000.0, 20000.0);
            double y = b + std::log(w1 * m1 + w2 * m2) +
                       rng.normal(0.0, s_eps);
            rows.push_back({m1, m2});
            grp.y.push_back(y);
        }
        grp.x = Matrix::fromRows(rows);
        data.groups.push_back(std::move(grp));
    }
    return data;
}

TEST(MixedModel, LogLikelihoodMatchesNaive)
{
    NlmeData data =
        syntheticData(5, 0.004, 0.0005, 0.4, 0.5, 4, 5);
    MixedModel model(data);
    std::vector<double> w = {0.004, 0.0005};
    double got = model.logLikelihood(w, 0.4, 0.5);

    double expect = 0.0;
    for (const auto &g : data.groups) {
        std::vector<double> resid;
        for (size_t j = 0; j < g.y.size(); ++j) {
            double lin = w[0] * g.x(j, 0) + w[1] * g.x(j, 1);
            resid.push_back(g.y[j] - std::log(lin));
        }
        expect += naiveGroupLogLik(resid, 0.16, 0.25);
    }
    EXPECT_NEAR(got, expect, 1e-9);
}

TEST(MixedModel, LikelihoodDecreasesAwayFromTruth)
{
    NlmeData data =
        syntheticData(7, 0.004, 0.0005, 0.3, 0.4, 6, 8);
    MixedModel model(data);
    double at_truth =
        model.logLikelihood({0.004, 0.0005}, 0.3, 0.4);
    double off = model.logLikelihood({0.02, 0.0005}, 0.3, 0.4);
    EXPECT_GT(at_truth, off);
}

TEST(MixedModel, InvalidWeightsGiveMinusInfinity)
{
    NlmeData data = syntheticData(9, 0.004, 0.0005, 0.3, 0.4, 3, 4);
    MixedModel model(data);
    // Weights can never make w.m <= 0 here since metrics are
    // positive and weights are constrained positive; but a zero
    // weight vector would. logLikelihood requires positive sigmas
    // instead.
    EXPECT_THROW(model.logLikelihood({0.004, 0.0005}, 0.0, 0.4),
                 UcxError);
    EXPECT_THROW(model.logLikelihood({0.004, 0.0005}, 0.3, -0.1),
                 UcxError);
    EXPECT_THROW(model.logLikelihood({0.004}, 0.3, 0.4), UcxError);
}

TEST(MixedModel, ResidualsOptionalSeparatesInvalidFromEmpty)
{
    // residuals() returns nullopt for weights that push the linear
    // predictor non-positive — previously indistinguishable from a
    // dataset with no observations.
    NlmeData data = syntheticData(13, 0.004, 0.0005, 0.3, 0.4, 3, 4);
    MixedModel model(data);

    auto good = model.residuals({0.004, 0.0005});
    ASSERT_TRUE(good.has_value());
    ASSERT_EQ(good->size(), data.groups.size());
    for (size_t g = 0; g < data.groups.size(); ++g) {
        const auto &grp = data.groups[g];
        ASSERT_EQ((*good)[g].size(), grp.y.size());
        for (size_t j = 0; j < grp.y.size(); ++j) {
            double lin = 0.004 * grp.x(j, 0) + 0.0005 * grp.x(j, 1);
            EXPECT_EQ((*good)[g][j], grp.y[j] - std::log(lin));
        }
    }

    // Zero weights make every linear predictor zero: invalid, not
    // empty.
    EXPECT_FALSE(model.residuals({0.0, 0.0}).has_value());

    // Wrong arity is a caller bug, not an invalid-point signal.
    EXPECT_THROW(model.residuals({0.004}), UcxError);
}

TEST(MixedModel, EmpiricalBayesShrinkage)
{
    NlmeData data = syntheticData(11, 0.004, 0.0005, 0.3, 0.5, 4, 6);
    MixedModel model(data);
    std::vector<double> w = {0.004, 0.0005};

    // With sigma_rho -> 0 the random effects collapse to zero.
    std::vector<double> b_small = model.empiricalBayes(w, 0.3, 1e-9);
    for (double b : b_small)
        EXPECT_NEAR(b, 0.0, 1e-6);

    // With huge sigma_rho the estimate approaches the group residual
    // mean.
    std::vector<double> b_large =
        model.empiricalBayes(w, 0.3, 100.0);
    for (size_t i = 0; i < data.groups.size(); ++i) {
        const auto &g = data.groups[i];
        double mean_resid = 0.0;
        for (size_t j = 0; j < g.y.size(); ++j) {
            double lin = w[0] * g.x(j, 0) + w[1] * g.x(j, 1);
            mean_resid += g.y[j] - std::log(lin);
        }
        mean_resid /= static_cast<double>(g.y.size());
        EXPECT_NEAR(b_large[i], mean_resid, 1e-3);
    }
}

TEST(MixedModel, FitImprovesOnStart)
{
    NlmeData data =
        syntheticData(13, 0.003, 0.0004, 0.35, 0.45, 5, 6);
    MixedModel model(data);
    MixedFit fit = model.fit();
    EXPECT_GT(fit.sigmaEps, 0.0);
    EXPECT_GT(fit.sigmaRho, 0.0);
    EXPECT_EQ(fit.weights.size(), 2u);
    EXPECT_EQ(fit.nParams, 4u);
    // Fit log-likelihood must beat the likelihood at a perturbed
    // point.
    double perturbed = model.logLikelihood(
        {fit.weights[0] * 2.0, fit.weights[1] * 0.5},
        fit.sigmaEps, fit.sigmaRho);
    EXPECT_GE(fit.logLik, perturbed);
}

TEST(MixedModel, ProductivitiesCenterAroundOne)
{
    NlmeData data =
        syntheticData(17, 0.003, 0.0004, 0.3, 0.5, 8, 6);
    MixedFit fit = MixedModel(data).fit();
    ASSERT_EQ(fit.productivity.size(), 8u);
    // Median-1 lognormal: log productivities average near 0.
    double sum = 0.0;
    for (double rho : fit.productivity) {
        EXPECT_GT(rho, 0.0);
        sum += std::log(rho);
    }
    EXPECT_NEAR(sum / 8.0, 0.0, 0.5);
}

TEST(MixedModel, AicBicRelationship)
{
    NlmeData data =
        syntheticData(19, 0.003, 0.0004, 0.3, 0.4, 4, 5);
    MixedFit fit = MixedModel(data).fit();
    // BIC penalizes harder than AIC when ln(n) > 2 (n = 20).
    EXPECT_GT(fit.bic, fit.aic);
    EXPECT_NEAR(fit.aic, -2.0 * fit.logLik + 2.0 * 4.0, 1e-9);
    EXPECT_NEAR(fit.bic, -2.0 * fit.logLik + std::log(20.0) * 4.0,
                1e-9);
}

} // namespace
} // namespace ucx
