#include <cmath>

#include <gtest/gtest.h>

#include "nlme/pooled.hh"
#include "nlme/mixed_model.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

NlmeData
pooledData(uint64_t seed, double rho_spread)
{
    Rng rng(seed);
    NlmeData data;
    for (size_t g = 0; g < 4; ++g) {
        NlmeGroup grp;
        grp.name = "g" + std::to_string(g);
        double b = rng.normal(0.0, rho_spread);
        std::vector<std::vector<double>> rows;
        for (size_t j = 0; j < 6; ++j) {
            double m = rng.uniform(100.0, 5000.0);
            grp.y.push_back(b + std::log(0.01 * m) +
                            rng.normal(0.0, 0.2));
            rows.push_back({m});
        }
        grp.x = Matrix::fromRows(rows);
        data.groups.push_back(std::move(grp));
    }
    return data;
}

TEST(PooledModel, RecoversWeightWithoutGroupEffects)
{
    NlmeData data = pooledData(1, 0.0);
    PooledFit fit = PooledModel(data).fit();
    EXPECT_NEAR(fit.weights[0], 0.01, 0.002);
    EXPECT_NEAR(fit.sigmaEps, 0.2, 0.06);
    EXPECT_EQ(fit.nParams, 2u);
}

TEST(PooledModel, RssAtTruthIsSmall)
{
    NlmeData data = pooledData(3, 0.0);
    PooledModel model(data);
    double at_truth = model.rss({0.01});
    double off = model.rss({0.05});
    EXPECT_LT(at_truth, off);
}

TEST(PooledModel, RssInfinityForDegenerateWeights)
{
    NlmeData data = pooledData(5, 0.0);
    // A weight of exactly zero zeroes the linear predictor.
    EXPECT_TRUE(std::isinf(PooledModel(data).rss({0.0})));
}

TEST(PooledModel, SigmaInflatedByGroupEffects)
{
    // Key paper point (Section 3.2 / Table 4 last row): ignoring
    // productivity differences inflates sigma_eps.
    PooledFit no_spread = PooledModel(pooledData(7, 0.0)).fit();
    PooledFit spread = PooledModel(pooledData(7, 0.8)).fit();
    EXPECT_GT(spread.sigmaEps, no_spread.sigmaEps + 0.2);
}

TEST(PooledModel, MixedBeatsPooledWhenGroupsDiffer)
{
    NlmeData data = pooledData(9, 0.8);
    PooledFit pooled = PooledModel(data).fit();
    MixedFit mixed = MixedModel(data).fit();
    // The mixed model absorbs group offsets into sigma_rho, leaving
    // a smaller residual sigma_eps.
    EXPECT_LT(mixed.sigmaEps, pooled.sigmaEps);
    EXPECT_GT(mixed.sigmaRho, 0.3);
}

TEST(PooledModel, LogLikConsistentWithSigma)
{
    NlmeData data = pooledData(11, 0.0);
    PooledFit fit = PooledModel(data).fit();
    double n = static_cast<double>(data.totalObservations());
    double expect = -0.5 * n *
                    (std::log(2.0 * M_PI * fit.sigmaEps *
                              fit.sigmaEps) +
                     1.0);
    EXPECT_NEAR(fit.logLik, expect, 1e-9);
}

} // namespace
} // namespace ucx
