/**
 * @file
 * Unit tests of the ucx::dfa framework: the worklist engine and
 * constant lattice, the four analyses against hand-written µHDL
 * fixtures (one positive and one negative case per lint rule), and
 * fixpoint/determinism properties over every bundled design.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "designs/registry.hh"
#include "dfa/clock_domain.hh"
#include "dfa/const_prop.hh"
#include "dfa/lattice.hh"
#include "dfa/liveness.hh"
#include "dfa/reaching.hh"
#include "dfa/summary.hh"
#include "dfa/worklist.hh"
#include "io/artifact_serde.hh"
#include "lint/lint.hh"
#include "synth/elaborate.hh"
#include "synth/lower.hh"

namespace ucx
{
namespace
{

using dfa::ConstValue;
using dfa::maskToWidth;

Design
parseSrc(const std::string &src)
{
    Design design;
    design.addSource(src, "fixture.v");
    return design;
}

/** Elaborate one fixture and return its RTL. */
RtlDesign
elabSrc(const std::string &src, const std::string &top)
{
    return elaborate(parseSrc(src), top).rtl;
}

SigId
findSig(const RtlDesign &rtl, const std::string &name)
{
    for (SigId s = 0; s < rtl.signals.size(); ++s)
        if (rtl.signals[s].name == name)
            return s;
    ADD_FAILURE() << "no signal '" << name << "'";
    return 0;
}

// ------------------------------------------------------- lattice

TEST(DfaLattice, JoinFollowsTheOrder)
{
    ConstValue bot = ConstValue::bottom();
    ConstValue top = ConstValue::top();
    ConstValue one = ConstValue::constant(1);
    ConstValue two = ConstValue::constant(2);
    EXPECT_EQ(ConstValue::join(bot, one), one);
    EXPECT_EQ(ConstValue::join(one, bot), one);
    EXPECT_EQ(ConstValue::join(one, one), one);
    EXPECT_EQ(ConstValue::join(one, two), top);
    EXPECT_EQ(ConstValue::join(top, one), top);
    EXPECT_EQ(ConstValue::join(bot, bot), bot);
}

TEST(DfaLattice, MaskToWidthSaturatesAt64)
{
    EXPECT_EQ(maskToWidth(0xff, 4), 0xfu);
    EXPECT_EQ(maskToWidth(~uint64_t(0), 64), ~uint64_t(0));
    EXPECT_EQ(maskToWidth(~uint64_t(0), 70), ~uint64_t(0));
    EXPECT_EQ(maskToWidth(5, 1), 1u);
}

// ------------------------------------------------------ worklist

TEST(DfaWorklist, PropagatesAlongEdgesToFixpoint)
{
    // A chain 0 -> 1 -> 2: raising node 0 must revisit the rest.
    dfa::Worklist work(3);
    work.addEdge(0, 1);
    work.addEdge(1, 2);
    std::vector<int> value(3, 0);
    work.push(0);
    uint64_t iters = work.solve([&](uint32_t id) {
        int next = id == 0 ? 7 : value[id - 1];
        if (next != value[id]) {
            value[id] = next;
            return true;
        }
        return false;
    });
    EXPECT_EQ(value[2], 7);
    EXPECT_GE(iters, 3u);
}

TEST(DfaWorklist, NoReadyNodesMeansZeroIterations)
{
    dfa::Worklist work(4);
    EXPECT_EQ(work.solve([&](uint32_t) { return false; }), 0u);
}

// ------------------------------------------- constant propagation

TEST(DfaConstProp, DetectsAGenuineConstant)
{
    RtlDesign rtl = elabSrc(
        "module m (input wire a, output wire y);\n"
        "  wire stuck;\n"
        "  assign stuck = a & 1'b0;\n"
        "  assign y = stuck;\n"
        "endmodule\n",
        "m");
    dfa::ConstPropResult r = dfa::propagateConstants(rtl);
    const ConstValue &v = r.signals[findSig(rtl, "stuck")];
    ASSERT_TRUE(v.isConst());
    EXPECT_EQ(v.value, 0u);
    EXPECT_TRUE(r.signals[findSig(rtl, "y")].isConst());
    EXPECT_TRUE(r.signals[findSig(rtl, "a")].isTop());
}

TEST(DfaConstProp, CounterRegisterIsNotConstant)
{
    // Regression for the optimistic-cycle trap: pc feeds itself
    // through an Add inside a reset mux. With a Bottom-absorbing
    // cycle the reset value would win the join and pc would be
    // reported as the constant 0.
    RtlDesign rtl = elabSrc(
        "module m (input wire clk, input wire rst,\n"
        "          output wire [7:0] y);\n"
        "  reg [7:0] pc;\n"
        "  always @(posedge clk)\n"
        "    if (rst) pc <= 8'd0;\n"
        "    else     pc <= pc + 8'd1;\n"
        "  assign y = pc;\n"
        "endmodule\n",
        "m");
    dfa::ConstPropResult r = dfa::propagateConstants(rtl);
    EXPECT_FALSE(r.signals[findSig(rtl, "pc")].isConst());
    EXPECT_FALSE(r.signals[findSig(rtl, "pc")].isBottom());
}

TEST(DfaConstProp, MutuallyFedRegistersSettleToTopNotBottom)
{
    RtlDesign rtl = elabSrc(
        "module m (input wire clk, output wire y);\n"
        "  reg a;\n"
        "  reg b;\n"
        "  always @(posedge clk) a <= b;\n"
        "  always @(posedge clk) b <= a;\n"
        "  assign y = a;\n"
        "endmodule\n",
        "m");
    dfa::ConstPropResult r = dfa::propagateConstants(rtl);
    for (SigId s = 0; s < rtl.signals.size(); ++s)
        EXPECT_FALSE(r.signals[s].isBottom())
            << rtl.signals[s].name;
}

TEST(DfaConstProp, ValuesAreMaskedToSignalWidth)
{
    RtlDesign rtl = elabSrc(
        "module m (output wire [3:0] y);\n"
        "  wire [3:0] w;\n"
        "  assign w = 4'd9 + 4'd9;\n"
        "  assign y = w;\n"
        "endmodule\n",
        "m");
    dfa::ConstPropResult r = dfa::propagateConstants(rtl);
    const ConstValue &v = r.signals[findSig(rtl, "w")];
    ASSERT_TRUE(v.isConst());
    EXPECT_EQ(v.value, 2u); // 18 mod 16
}

// ------------------------------------------------------ liveness

TEST(DfaLiveness, DeadWireAndLiveOutput)
{
    RtlDesign rtl = elabSrc(
        "module m (input wire a, input wire b, output wire y);\n"
        "  wire dead;\n"
        "  wire alive;\n"
        "  assign dead = a & b;\n"
        "  assign alive = a | b;\n"
        "  assign y = alive;\n"
        "endmodule\n",
        "m");
    dfa::LivenessResult r = dfa::analyzeLiveness(rtl);
    EXPECT_FALSE(r.live[findSig(rtl, "dead")]);
    EXPECT_TRUE(r.live[findSig(rtl, "alive")]);
    EXPECT_TRUE(r.live[findSig(rtl, "y")]);
    EXPECT_TRUE(r.live[findSig(rtl, "a")]);
}

TEST(DfaLiveness, MemoryWritePortConeIsLive)
{
    RtlDesign rtl = elabSrc(
        "module m (input wire clk, input wire we,\n"
        "          input wire [1:0] addr, input wire [7:0] d,\n"
        "          input wire [1:0] raddr, output wire [7:0] q);\n"
        "  reg [7:0] ram [0:3];\n"
        "  wire [7:0] shaped;\n"
        "  assign shaped = d ^ 8'h5a;\n"
        "  always @(posedge clk)\n"
        "    if (we) ram[addr] <= shaped;\n"
        "  assign q = ram[raddr];\n"
        "endmodule\n",
        "m");
    dfa::LivenessResult r = dfa::analyzeLiveness(rtl);
    // shaped reaches state only through the write port.
    EXPECT_TRUE(r.live[findSig(rtl, "shaped")]);
    EXPECT_TRUE(r.live[findSig(rtl, "we")]);
}

TEST(DfaLiveness, NetlistDeadGatesMatchLintCount)
{
    // Lowering only emits cones someone references, so a fully
    // dead RTL wire never reaches the netlist; bit-level dead
    // logic (unread adder bits, partial slices) does. The bundled
    // alu pins the count the hdl.dead-logic note reports.
    Design d = shippedDesign("alu").load();
    Netlist net = lowerToGates(elaborate(d, "alu").rtl);
    dfa::NetlistLiveness r = dfa::analyzeNetlistLiveness(net);
    EXPECT_EQ(r.deadCombGates, 6u);
    EXPECT_GT(r.iterations, 0u);
}

// ------------------------------------------- reaching definitions

TEST(DfaReaching, ReadBeforeGuaranteedWriteFires)
{
    dfa::ReachingResult r = dfa::analyzeReachingDefs(parseSrc(
        "module m (input wire a, output reg y);\n"
        "  reg t;\n"
        "  always @(*) begin\n"
        "    if (a) t = 1'b1;\n"
        "    y = t;\n"
        "  end\n"
        "endmodule\n"));
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].module, "m");
    EXPECT_EQ(r.findings[0].signal, "t");
}

TEST(DfaReaching, BothBranchesAssigningIsClean)
{
    dfa::ReachingResult r = dfa::analyzeReachingDefs(parseSrc(
        "module m (input wire a, output reg y);\n"
        "  reg t;\n"
        "  always @(*) begin\n"
        "    if (a) t = 1'b1;\n"
        "    else   t = 1'b0;\n"
        "    y = t;\n"
        "  end\n"
        "endmodule\n"));
    EXPECT_TRUE(r.findings.empty());
}

TEST(DfaReaching, CaseWithoutDefaultDoesNotDefine)
{
    dfa::ReachingResult r = dfa::analyzeReachingDefs(parseSrc(
        "module m (input wire [1:0] s, output reg y);\n"
        "  reg t;\n"
        "  always @(*) begin\n"
        "    case (s)\n"
        "      2'd0: t = 1'b0;\n"
        "      2'd1: t = 1'b1;\n"
        "    endcase\n"
        "    y = t;\n"
        "  end\n"
        "endmodule\n"));
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].signal, "t");
}

TEST(DfaReaching, CaseWithDefaultDefines)
{
    dfa::ReachingResult r = dfa::analyzeReachingDefs(parseSrc(
        "module m (input wire [1:0] s, output reg y);\n"
        "  reg t;\n"
        "  always @(*) begin\n"
        "    case (s)\n"
        "      2'd0:    t = 1'b0;\n"
        "      default: t = 1'b1;\n"
        "    endcase\n"
        "    y = t;\n"
        "  end\n"
        "endmodule\n"));
    EXPECT_TRUE(r.findings.empty());
}

TEST(DfaReaching, SequentialBlocksAreExempt)
{
    // A flop reading its own previous value is normal hardware,
    // not a read-before-write.
    dfa::ReachingResult r = dfa::analyzeReachingDefs(parseSrc(
        "module m (input wire clk, input wire a, output reg q);\n"
        "  always @(posedge clk) q <= q ^ a;\n"
        "endmodule\n"));
    EXPECT_TRUE(r.findings.empty());
}

// ----------------------------------------------- clock domains

const char *kTwoClockSrc =
    "module m (input wire clka, input wire clkb,\n"
    "          input wire d, output wire y);\n"
    "  reg r1;\n"
    "  reg r2;\n"
    "  reg cap;\n"
    "  reg sync;\n"
    "  always @(posedge clka) r1 <= d;\n"
    "  always @(posedge clka) r2 <= ~d;\n"
    "  always @(posedge clkb) sync <= r2;\n"
    "  always @(posedge clkb) cap <= r1 ^ d;\n"
    "  assign y = cap & sync;\n"
    "endmodule\n";

TEST(DfaClockDomain, AssignsRegistersToTheirClock)
{
    dfa::ClockDomainResult r =
        dfa::analyzeClockDomains(parseSrc(kTwoClockSrc));
    bool saw_r1 = false;
    bool saw_r2 = false;
    for (const auto &d : r.domains) {
        if (d.reg == "r1") {
            saw_r1 = true;
            EXPECT_EQ(d.clock, "clka");
        }
        if (d.reg == "r2") {
            saw_r2 = true;
            EXPECT_EQ(d.clock, "clka");
        }
        if (d.reg == "sync") {
            EXPECT_EQ(d.clock, "clkb");
        }
    }
    EXPECT_TRUE(saw_r1);
    EXPECT_TRUE(saw_r2);
}

TEST(DfaClockDomain, FlagsCombinationalCrossingOnly)
{
    dfa::ClockDomainResult r =
        dfa::analyzeClockDomains(parseSrc(kTwoClockSrc));
    bool unsync = false;
    bool sync_flagged = false;
    for (const auto &c : r.crossings) {
        if (c.signal == "r1") {
            EXPECT_FALSE(c.synchronized);
            EXPECT_EQ(c.fromClock, "clka");
            EXPECT_EQ(c.toClock, "clkb");
            unsync = true;
        }
        if (c.signal == "r2") {
            EXPECT_TRUE(c.synchronized);
            sync_flagged = true;
        }
    }
    // cap <= r1 ^ d crosses through logic; sync <= r2 is a bare
    // capture flop and must be recorded as synchronized.
    EXPECT_TRUE(unsync);
    EXPECT_TRUE(sync_flagged);
}

TEST(DfaClockDomain, SingleClockDesignHasNoCrossings)
{
    dfa::ClockDomainResult r = dfa::analyzeClockDomains(parseSrc(
        "module m (input wire clk, input wire d, output wire y);\n"
        "  reg a;\n"
        "  reg b;\n"
        "  always @(posedge clk) a <= d;\n"
        "  always @(posedge clk) b <= a ^ d;\n"
        "  assign y = b;\n"
        "endmodule\n"));
    EXPECT_TRUE(r.crossings.empty());
    EXPECT_TRUE(r.clockAsData.empty());
}

TEST(DfaClockDomain, ClockReadAsDataIsReported)
{
    dfa::ClockDomainResult r = dfa::analyzeClockDomains(parseSrc(
        "module m (input wire clk, input wire d, output wire y);\n"
        "  reg q;\n"
        "  always @(posedge clk) q <= d;\n"
        "  assign y = clk & q;\n"
        "endmodule\n"));
    ASSERT_EQ(r.clockAsData.size(), 1u);
    EXPECT_EQ(r.clockAsData[0].clock, "clk");
}

// ---------------------------------------------- summary + rules

LintReport
lintFixture(const std::string &src, const std::string &top)
{
    Design design;
    design.addSource(src, "fixture.v");
    return lintHdlDesign(design, top, "fixture");
}

size_t
countRule(const LintReport &report, const std::string &rule)
{
    size_t n = 0;
    for (const LintDiagnostic &d : report.diagnostics())
        if (d.rule == rule)
            ++n;
    return n;
}

TEST(DfaRules, ConstOutputAndConstSignalFire)
{
    LintReport r = lintFixture(
        "module m (input wire a, output wire y);\n"
        "  wire stuck;\n"
        "  assign stuck = a & 1'b0;\n"
        "  assign y = stuck;\n"
        "endmodule\n",
        "m");
    EXPECT_EQ(countRule(r, "dfa.const-signal"), 1u);
    EXPECT_EQ(countRule(r, "dfa.const-output"), 1u);
}

TEST(DfaRules, ConstConditionFires)
{
    LintReport r = lintFixture(
        "module m (input wire a, input wire b, output wire y);\n"
        "  wire sel;\n"
        "  assign sel = 1'b1;\n"
        "  assign y = sel ? a : b;\n"
        "endmodule\n",
        "m");
    EXPECT_GE(countRule(r, "dfa.const-condition"), 1u);
}

TEST(DfaRules, WriteNeverReadFires)
{
    LintReport r = lintFixture(
        "module m (input wire clk, input wire a, output wire y);\n"
        "  reg shadow;\n"
        "  always @(posedge clk) shadow <= a;\n"
        "  assign y = a;\n"
        "endmodule\n",
        "m");
    EXPECT_EQ(countRule(r, "dfa.write-never-read"), 1u);
}

TEST(DfaRules, ReadBeforeWriteFires)
{
    // t IS assigned on every path, just after the read — so the
    // fixture elaborates without a latch (no comb loop) and the
    // only defect left is the stale read.
    LintReport r = lintFixture(
        "module m (input wire a, output reg y);\n"
        "  reg t;\n"
        "  always @(*) begin\n"
        "    y = t;\n"
        "    t = a;\n"
        "  end\n"
        "endmodule\n",
        "m");
    EXPECT_EQ(countRule(r, "dfa.read-before-write"), 1u);
}

TEST(DfaRules, CleanDesignRaisesNoDfaFindings)
{
    LintReport r = lintFixture(
        "module m (input wire clk, input wire a, output wire y);\n"
        "  reg q;\n"
        "  always @(posedge clk) q <= a;\n"
        "  assign y = q;\n"
        "endmodule\n",
        "m");
    for (const LintDiagnostic &d : r.diagnostics())
        EXPECT_NE(d.rule.rfind("dfa.", 0), 0u) << d.rule;
}

TEST(DfaRules, DisabledViaOptionsRunsNoDfaRules)
{
    Design design;
    design.addSource(
        "module m (input wire a, output wire y);\n"
        "  wire stuck;\n"
        "  assign stuck = a & 1'b0;\n"
        "  assign y = stuck;\n"
        "endmodule\n",
        "fixture.v");
    LintRunOptions opts;
    opts.dfaRules = false;
    LintReport r = lintHdlDesign(design, "m", "fixture", opts);
    for (const LintDiagnostic &d : r.diagnostics())
        EXPECT_NE(d.rule.rfind("dfa.", 0), 0u) << d.rule;
}

// ---------------------------------- bundled-design properties

TEST(DfaSummaryProps, FixpointAndDeterminismOnEveryBundledDesign)
{
    for (const ShippedDesign &sd : shippedDesigns()) {
        Design design = sd.load();
        ElabResult elab = elaborate(design, sd.top);
        Netlist net = lowerToGates(elab.rtl);
        DfaSummary a = computeDfaSummary(design, elab.rtl, net);
        DfaSummary b = computeDfaSummary(design, elab.rtl, net);
        // Every analysis visited at least one element. Reaching
        // defs walks combinational always blocks only, so its
        // count is legitimately zero on purely structural or
        // purely sequential designs.
        EXPECT_GT(a.constIterations, 0u) << sd.name;
        EXPECT_GT(a.livenessIterations, 0u) << sd.name;
        EXPECT_GT(a.clockIterations, 0u) << sd.name;
        // ...and two runs agree byte-for-byte.
        EXPECT_EQ(io::encodeArtifact(a), io::encodeArtifact(b))
            << sd.name;
        // The bundled designs are single-clock: no CDC findings.
        EXPECT_TRUE(a.crossings.empty()) << sd.name;
    }
}

} // namespace
} // namespace ucx
