/**
 * @file
 * Tests of the const_fold synthesis pass: folded netlists must stay
 * structurally valid, strictly shrink when the input has foldable
 * logic, keep every state element and port, and stay out of the
 * pipeline entirely unless PassConfig::constFold asks for it.
 *
 * lowerToGates peephole-folds direct constants, bypasses double
 * inverters, and hash-conses structurally equal gates while it
 * builds, so its output rarely leaves settled logic behind. The
 * fold/alias paths are therefore exercised on a hand-built netlist
 * (the shape a less aggressive producer would emit); lowered
 * fixtures cover what const_fold uniquely adds on top of lowering:
 * removing combinational cones no endpoint observes.
 */

#include <string>

#include <gtest/gtest.h>

#include "designs/registry.hh"
#include "synth/const_fold.hh"
#include "synth/elaborate.hh"
#include "synth/lower.hh"
#include "synth/pass.hh"

namespace ucx
{
namespace
{

Netlist
lowerSrc(const std::string &src, const std::string &top)
{
    Design design;
    design.addSource(src, "fixture.v");
    return lowerToGates(elaborate(design, top).rtl);
}

/**
 * a & 0 settles to a constant, 0 | b and a double inverter are
 * identities, and the inner inverter goes dead once its only
 * reader is bypassed — one gate for each fold statistic.
 */
Netlist
unfoldedNetlist()
{
    Netlist net;
    GateId c0 = net.add({GateOp::Const0, {}});
    net.add({GateOp::Const1, {}});
    GateId a = net.add({GateOp::Input, {}});
    GateId b = net.add({GateOp::Input, {}});
    GateId gated = net.add({GateOp::And, {a, c0}});
    GateId y = net.add({GateOp::Or, {gated, b}});
    GateId na = net.add({GateOp::Not, {a}});
    GateId z = net.add({GateOp::Not, {na}});
    net.outputBits = {y, z};
    net.check();
    return net;
}

TEST(ConstFold, StrictlyFewerCellsWithPinnedCounts)
{
    Netlist net = unfoldedNetlist();
    FoldStats stats;
    Netlist folded = constFoldNetlist(net, &stats);
    folded.check();

    EXPECT_EQ(stats.cellsBefore, 4u);
    EXPECT_EQ(stats.cellsAfter, 0u);
    EXPECT_LT(stats.cellsAfter, stats.cellsBefore);
    EXPECT_EQ(stats.foldedConst, 1u); // a & 0
    EXPECT_EQ(stats.aliased, 2u);     // 0 | b, ~~a
    EXPECT_EQ(stats.removedDead, 1u); // the inner inverter

    // Ports are untouchable, and both outputs now come straight
    // from the input bits the identities resolved to.
    EXPECT_EQ(folded.inputBits.size(), net.inputBits.size());
    ASSERT_EQ(folded.outputBits.size(), 2u);
    EXPECT_EQ(folded.gates[folded.outputBits[0]].op, GateOp::Input);
    EXPECT_EQ(folded.gates[folded.outputBits[1]].op, GateOp::Input);
}

TEST(ConstFold, IdempotentOnItsOwnOutput)
{
    Netlist once = constFoldNetlist(unfoldedNetlist());
    FoldStats stats;
    Netlist twice = constFoldNetlist(once, &stats);
    twice.check();
    EXPECT_EQ(stats.foldedConst, 0u);
    EXPECT_EQ(stats.aliased, 0u);
    EXPECT_EQ(stats.removedDead, 0u);
    EXPECT_EQ(once.gates.size(), twice.gates.size());
}

TEST(ConstFold, NoFoldableLogicIsANoOpOnCounts)
{
    Netlist net = lowerSrc(
        "module m (input wire a, input wire b, output wire y);\n"
        "  assign y = a ^ b;\n"
        "endmodule\n",
        "m");
    FoldStats stats;
    Netlist folded = constFoldNetlist(net, &stats);
    folded.check();
    EXPECT_EQ(stats.foldedConst, 0u);
    EXPECT_EQ(stats.cellsAfter, stats.cellsBefore);
}

TEST(ConstFold, LoweredConstantsAreAlreadyGoneBeforeTheFold)
{
    // Division of labour: direct constant gating, a settled mux
    // select, and constant wires all die inside lowerToGates — the
    // fold sees zero comb gates and must leave it that way.
    Netlist net = lowerSrc(
        "module m (input wire clk, input wire a, input wire b,\n"
        "          output wire y, output wire z);\n"
        "  wire gated;\n"
        "  wire sel;\n"
        "  reg q;\n"
        "  assign gated = a & 1'b0;\n"
        "  assign sel = 1'b1;\n"
        "  always @(posedge clk) q <= sel ? a : b;\n"
        "  assign y = gated | b;\n"
        "  assign z = q;\n"
        "endmodule\n",
        "m");
    EXPECT_EQ(net.numCombGates(), 0u);
    FoldStats stats;
    Netlist folded = constFoldNetlist(net, &stats);
    folded.check();
    EXPECT_EQ(stats.cellsAfter, 0u);
    EXPECT_EQ(folded.numDffs(), net.numDffs());
}

TEST(ConstFold, DeadInverterBehindALoweringBypassIsRemoved)
{
    // lowerToGates bypasses the double inversion itself (y is the
    // input bit), but the inner ~a gate is still emitted as part of
    // n1's cone and left dead. The fold sweeps it.
    Netlist net = lowerSrc(
        "module m (input wire a, output wire y);\n"
        "  wire n1;\n"
        "  assign n1 = ~a;\n"
        "  assign y = ~n1;\n"
        "endmodule\n",
        "m");
    FoldStats stats;
    Netlist folded = constFoldNetlist(net, &stats);
    folded.check();
    EXPECT_EQ(stats.cellsBefore, 1u);
    EXPECT_EQ(stats.removedDead, 1u);
    EXPECT_EQ(stats.cellsAfter, 0u);
    // y stays fed by the input bit directly.
    ASSERT_EQ(folded.outputBits.size(), 1u);
    EXPECT_EQ(folded.gates[folded.outputBits[0]].op, GateOp::Input);
}

TEST(ConstFold, EveryBundledDesignSurvivesAndNeverGrows)
{
    for (const ShippedDesign &sd : shippedDesigns()) {
        Design design = sd.load();
        Netlist net = lowerToGates(elaborate(design, sd.top).rtl);
        FoldStats stats;
        Netlist folded = constFoldNetlist(net, &stats);
        folded.check();
        EXPECT_LE(stats.cellsAfter, stats.cellsBefore) << sd.name;
        EXPECT_EQ(folded.numDffs(), net.numDffs()) << sd.name;
        EXPECT_EQ(folded.outputBits.size(), net.outputBits.size())
            << sd.name;
        EXPECT_EQ(folded.memoryBits, net.memoryBits) << sd.name;
    }
}

// ------------------------------------------------ pass plumbing

std::vector<std::string>
passNames(const std::vector<Pass> &passes)
{
    std::vector<std::string> names;
    for (const Pass &p : passes)
        names.push_back(p.name);
    return names;
}

TEST(ConstFoldPass, OffByDefaultLeavesThePassListUntouched)
{
    PassConfig config;
    EXPECT_FALSE(config.constFold);
    EXPECT_EQ(passNames(passListFor(config)),
              passNames(defaultPassList()));
}

TEST(ConstFoldPass, EnabledSplicesConstfoldAfterLower)
{
    PassConfig config;
    config.constFold = true;
    std::vector<std::string> names = passNames(passListFor(config));
    auto lower = std::find(names.begin(), names.end(), "lower");
    ASSERT_NE(lower, names.end());
    ASSERT_NE(lower + 1, names.end());
    EXPECT_EQ(*(lower + 1), "constfold");
    EXPECT_EQ(names.size(), defaultPassList().size() + 1);
}

TEST(ConstFoldPass, ConfigFingerprintSeparatesTheCacheKeys)
{
    PassConfig off;
    PassConfig on;
    on.constFold = true;
    EXPECT_NE(off.fingerprint(), on.fingerprint());
}

TEST(ConstFoldPass, PipelineProducesFoldedNetlist)
{
    // The shipped alu carries exactly six dead comb gates (pinned
    // by DfaLiveness.NetlistDeadGatesMatchLintCount); with the pass
    // enabled the pipeline's netlist must shed exactly those.
    const ShippedDesign &sd = shippedDesign("alu");
    Design design = sd.load();
    ElabResult elab = elaborate(design, sd.top);

    PassConfig off;
    PipelineRun run;
    PipelineContext plain =
        runPasses(elab.rtl, passListFor(off), off, run);

    PassConfig on;
    on.constFold = true;
    PipelineContext folded =
        runPasses(elab.rtl, passListFor(on), on, run);

    ASSERT_NE(plain.netlist, nullptr);
    ASSERT_NE(folded.netlist, nullptr);
    EXPECT_LT(folded.netlist->numCombGates(),
              plain.netlist->numCombGates());
    EXPECT_EQ(plain.netlist->numCombGates() -
                  folded.netlist->numCombGates(),
              6u);
    EXPECT_EQ(folded.netlist->numDffs(), plain.netlist->numDffs());
}

} // namespace
} // namespace ucx
