#include <gtest/gtest.h>

#include "hdl/design.hh"
#include "synth/elaborate.hh"
#include "synth/lower.hh"
#include "synth/mapper.hh"

namespace ucx
{
namespace
{

Netlist
lower(const std::string &src, const std::string &top)
{
    Design d;
    d.addSource(src);
    return lowerToGates(elaborate(d, top).rtl);
}

TEST(CellMapper, CountsAndAreas)
{
    Netlist n = lower(
        "module m (input wire clk, input wire a, input wire b, "
        "output reg q);\n"
        "  always @(posedge clk) q <= a ^ b;\n"
        "endmodule",
        "m");
    CellMapping cm = mapToCells(n);
    EXPECT_EQ(cm.cells, 2u); // one XOR + one DFF
    EXPECT_EQ(cm.combCells, 1u);
    EXPECT_EQ(cm.seqCells, 1u);
    EXPECT_GT(cm.areaLogicUm2, 0.0);
    EXPECT_GT(cm.areaStorageUm2, cm.areaLogicUm2); // DFF is bigger
    EXPECT_GT(cm.leakageUw, 0.0);
}

TEST(CellMapper, RamCountedAsStorageArea)
{
    Netlist n = lower(
        "module m (input wire clk, input wire we, "
        "input wire [3:0] addr, input wire [7:0] wd, "
        "output wire [7:0] rd);\n"
        "  reg [7:0] mem [0:15];\n"
        "  always @(posedge clk) begin\n"
        "    if (we) mem[addr] <= wd;\n"
        "  end\n"
        "  assign rd = mem[addr];\n"
        "endmodule",
        "m");
    CellMapping cm = mapToCells(n);
    const CellLibrary &lib = CellLibrary::generic180();
    EXPECT_GE(cm.areaStorageUm2, 128.0 * lib.ramBitAreaUm2);
}

TEST(LutMapper, SmallLogicFitsOneLut)
{
    Netlist n = lower(
        "module m (input wire [3:0] a, output wire y);\n"
        "  assign y = (a[0] & a[1]) | (a[2] ^ a[3]);\n"
        "endmodule",
        "m");
    LutMapping lm = mapToLuts(n);
    ASSERT_EQ(lm.luts.size(), 1u);
    EXPECT_EQ(lm.luts[0].inputs.size(), 4u);
    EXPECT_EQ(lm.maxDepth, 1);
    EXPECT_EQ(lm.fanInSum(), 4u);
}

TEST(LutMapper, WideLogicNeedsMultipleLuts)
{
    Netlist n = lower(
        "module m (input wire [31:0] a, output wire y);\n"
        "  assign y = &a;\n"
        "endmodule",
        "m");
    LutMapping lm = mapToLuts(n);
    // 32 inputs cannot fit an 8-input LUT.
    EXPECT_GT(lm.luts.size(), 1u);
    EXPECT_GE(lm.fanInSum(), 32u);
    EXPECT_GE(lm.maxDepth, 2);
}

TEST(LutMapper, FanInGrowsWithWidth)
{
    auto fanin = [&](int w) {
        std::string ws = std::to_string(w - 1);
        return mapToLuts(
                   lower("module m (input wire [" + ws +
                             ":0] a, input wire [" + ws +
                             ":0] b, output wire [" + ws +
                             ":0] y);\n  assign y = a + b;\n"
                             "endmodule",
                         "m"))
            .fanInSum();
    };
    EXPECT_GT(fanin(16), fanin(8));
    EXPECT_GT(fanin(32), fanin(16));
}

TEST(LutMapper, RegistersAreBoundaries)
{
    // Logic split by a register stage maps to shallower LUT levels.
    Netlist pipelined = lower(
        "module m (input wire clk, input wire [7:0] a, "
        "input wire [7:0] b, input wire [7:0] c, "
        "output reg [7:0] y);\n"
        "  reg [7:0] t;\n"
        "  always @(posedge clk) begin\n"
        "    t <= a + b;\n"
        "    y <= t + c;\n"
        "  end\n"
        "endmodule",
        "m");
    Netlist flat = lower(
        "module m (input wire clk, input wire [7:0] a, "
        "input wire [7:0] b, input wire [7:0] c, "
        "output reg [7:0] y);\n"
        "  always @(posedge clk) y <= a + b + c;\n"
        "endmodule",
        "m");
    EXPECT_LT(mapToLuts(pipelined).maxDepth,
              mapToLuts(flat).maxDepth + 1);
}

TEST(LutMapper, ConstantsNotCountedAsInputs)
{
    Netlist n = lower(
        "module m (input wire [2:0] a, output wire y);\n"
        "  assign y = a == 3'd5;\n"
        "endmodule",
        "m");
    LutMapping lm = mapToLuts(n);
    ASSERT_GE(lm.luts.size(), 1u);
    // Only the 3 signal bits count as LUT inputs.
    EXPECT_EQ(lm.fanInSum(), 3u);
}

} // namespace
} // namespace ucx
