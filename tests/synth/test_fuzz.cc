/**
 * @file
 * Differential fuzzing of the elaborate+lower pipeline: generate
 * random combinational µHDL expressions, run them through the full
 * flow and the gate simulator, and compare against a direct C++
 * evaluation implementing the documented µHDL width semantics
 * (operands zero-extend to the wider side; Mul widens to wa+wb;
 * shifts keep the left operand's width; the final assignment
 * truncates to the output width). Any divergence is an elaboration
 * or lowering bug.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hdl/design.hh"
#include "synth/elaborate.hh"
#include "util/rng.hh"

#include "gate_sim.hh"

namespace ucx
{
namespace
{

uint64_t
maskTo(uint64_t v, int w)
{
    if (w >= 64)
        return v;
    return v & ((1ull << w) - 1);
}

/** A randomly generated expression with exact reference semantics. */
struct GenExpr
{
    std::string text;
    int w = 8; ///< Result width under µHDL sizing rules.
    std::function<uint64_t(uint64_t, uint64_t, uint64_t)> eval;
};

/** Generate a random expression over inputs a, b, c (all 8-bit). */
GenExpr
genExpr(Rng &rng, int depth)
{
    auto leaf = [&]() -> GenExpr {
        switch (rng.below(4)) {
          case 0:
            return {"a", 8,
                    [](uint64_t a, uint64_t, uint64_t) {
                        return a;
                    }};
          case 1:
            return {"b", 8,
                    [](uint64_t, uint64_t b, uint64_t) {
                        return b;
                    }};
          case 2:
            return {"c", 8,
                    [](uint64_t, uint64_t, uint64_t c) {
                        return c;
                    }};
          default: {
            uint64_t v = rng.below(256);
            return {"8'd" + std::to_string(v), 8,
                    [v](uint64_t, uint64_t, uint64_t) { return v; }};
          }
        }
    };
    if (depth <= 0)
        return leaf();

    GenExpr x = genExpr(rng, depth - 1);
    GenExpr y = genExpr(rng, depth - 1);
    GenExpr z = genExpr(rng, depth - 1);
    auto fx = x.eval;
    auto fy = y.eval;
    auto fz = z.eval;
    int wmax = std::max(x.w, y.w);

    switch (rng.below(14)) {
      case 0:
        return {"(" + x.text + " + " + y.text + ")", wmax,
                [fx, fy, wmax](uint64_t a, uint64_t b, uint64_t c) {
                    return maskTo(fx(a, b, c) + fy(a, b, c), wmax);
                }};
      case 1:
        return {"(" + x.text + " - " + y.text + ")", wmax,
                [fx, fy, wmax](uint64_t a, uint64_t b, uint64_t c) {
                    return maskTo(fx(a, b, c) - fy(a, b, c), wmax);
                }};
      case 2:
        return {"(" + x.text + " & " + y.text + ")", wmax,
                [fx, fy](uint64_t a, uint64_t b, uint64_t c) {
                    return fx(a, b, c) & fy(a, b, c);
                }};
      case 3:
        return {"(" + x.text + " | " + y.text + ")", wmax,
                [fx, fy](uint64_t a, uint64_t b, uint64_t c) {
                    return fx(a, b, c) | fy(a, b, c);
                }};
      case 4:
        return {"(" + x.text + " ^ " + y.text + ")", wmax,
                [fx, fy](uint64_t a, uint64_t b, uint64_t c) {
                    return fx(a, b, c) ^ fy(a, b, c);
                }};
      case 5:
        return {"(~" + x.text + ")", x.w,
                [fx, xw = x.w](uint64_t a, uint64_t b, uint64_t c) {
                    return maskTo(~fx(a, b, c), xw);
                }};
      case 6:
        return {"((" + x.text + " == " + y.text +
                    ") ? 8'd1 : 8'd0)",
                8,
                [fx, fy](uint64_t a, uint64_t b, uint64_t c) {
                    return fx(a, b, c) == fy(a, b, c) ? 1ull : 0ull;
                }};
      case 7:
        return {"((" + x.text + " < " + y.text +
                    ") ? 8'd1 : 8'd0)",
                8,
                [fx, fy](uint64_t a, uint64_t b, uint64_t c) {
                    return fx(a, b, c) < fy(a, b, c) ? 1ull : 0ull;
                }};
      case 8: {
        int wsel = std::max(y.w, z.w);
        return {"(" + x.text + " ? " + y.text + " : " + z.text +
                    ")",
                wsel,
                [fx, fy, fz](uint64_t a, uint64_t b, uint64_t c) {
                    return fx(a, b, c) != 0 ? fy(a, b, c)
                                            : fz(a, b, c);
                }};
      }
      case 9: {
        int sh = static_cast<int>(rng.below(8));
        return {"(" + x.text + " << " + std::to_string(sh) + ")",
                x.w,
                [fx, sh, xw = x.w](uint64_t a, uint64_t b,
                                   uint64_t c) {
                    return maskTo(fx(a, b, c) << sh, xw);
                }};
      }
      case 10: {
        int sh = static_cast<int>(rng.below(8));
        return {"(" + x.text + " >> " + std::to_string(sh) + ")",
                x.w,
                [fx, sh](uint64_t a, uint64_t b, uint64_t c) {
                    return fx(a, b, c) >> sh;
                }};
      }
      case 11: {
        int wm = std::min(x.w + y.w, 64);
        return {"(" + x.text + " * " + y.text + ")", wm,
                [fx, fy, wm](uint64_t a, uint64_t b, uint64_t c) {
                    return maskTo(fx(a, b, c) * fy(a, b, c), wm);
                }};
      }
      case 12:
        return {"((" + x.text + " && " + y.text +
                    ") ? 8'd1 : 8'd0)",
                8,
                [fx, fy](uint64_t a, uint64_t b, uint64_t c) {
                    return (fx(a, b, c) != 0 && fy(a, b, c) != 0)
                               ? 1ull
                               : 0ull;
                }};
      default:
        return {"((!" + x.text + ") ? 8'd1 : 8'd0)", 8,
                [fx](uint64_t a, uint64_t b, uint64_t c) {
                    return fx(a, b, c) == 0 ? 1ull : 0ull;
                }};
    }
}

class FuzzLowering : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzLowering, NetlistMatchesReferenceSemantics)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 12; ++trial) {
        GenExpr e = genExpr(rng, 2 + static_cast<int>(rng.below(2)));
        std::string src =
            "module fuzz (input wire [7:0] a, input wire [7:0] b, "
            "input wire [7:0] c, output wire [7:0] y);\n"
            "  assign y = " +
            e.text + ";\nendmodule";

        Design d;
        d.addSource(src, "fuzz.v");
        RtlDesign rtl = elaborate(d, "fuzz").rtl;
        GateSim sim(rtl);

        for (int vec = 0; vec < 24; ++vec) {
            uint64_t a = rng.below(256);
            uint64_t b = rng.below(256);
            uint64_t c = rng.below(256);
            sim.poke("a", a);
            sim.poke("b", b);
            sim.poke("c", c);
            sim.eval();
            // The assignment truncates to the 8-bit output.
            uint64_t expect = maskTo(e.eval(a, b, c), 8);
            ASSERT_EQ(sim.peek("y"), expect)
                << "expr: " << e.text << "  a=" << a << " b=" << b
                << " c=" << c;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLowering,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u,
                                           66u, 77u, 88u));

} // namespace
} // namespace ucx
