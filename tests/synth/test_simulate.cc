/**
 * @file
 * End-to-end semantic checks: parse µHDL, elaborate, lower to gates,
 * and simulate against the behavior the source describes.
 */

#include <gtest/gtest.h>

#include "hdl/design.hh"
#include "synth/elaborate.hh"
#include "gate_sim.hh"

namespace ucx
{
namespace
{

RtlDesign
build(const std::string &src, const std::string &top)
{
    Design d;
    d.addSource(src);
    return elaborate(d, top).rtl;
}

TEST(Simulate, AdderSubtractor)
{
    RtlDesign rtl = build(
        "module m (input wire [7:0] a, input wire [7:0] b, "
        "output wire [7:0] sum, output wire [7:0] diff);\n"
        "  assign sum = a + b;\n"
        "  assign diff = a - b;\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    struct Case { uint64_t a, b; };
    for (Case c : {Case{5, 3}, Case{200, 100}, Case{255, 255},
                   Case{0, 0}, Case{3, 5}}) {
        sim.poke("a", c.a);
        sim.poke("b", c.b);
        sim.eval();
        EXPECT_EQ(sim.peek("sum"), (c.a + c.b) & 0xff);
        EXPECT_EQ(sim.peek("diff"), (c.a - c.b) & 0xff);
    }
}

TEST(Simulate, MultiplyAndCompare)
{
    RtlDesign rtl = build(
        "module m (input wire [3:0] a, input wire [3:0] b, "
        "output wire [7:0] prod, output wire lt, output wire eq, "
        "output wire ge);\n"
        "  assign prod = a * b;\n"
        "  assign lt = a < b;\n"
        "  assign eq = a == b;\n"
        "  assign ge = a >= b;\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    for (uint64_t a = 0; a < 16; a += 3) {
        for (uint64_t b = 0; b < 16; b += 5) {
            sim.poke("a", a);
            sim.poke("b", b);
            sim.eval();
            EXPECT_EQ(sim.peek("prod"), a * b);
            EXPECT_EQ(sim.peek("lt"), a < b ? 1u : 0u);
            EXPECT_EQ(sim.peek("eq"), a == b ? 1u : 0u);
            EXPECT_EQ(sim.peek("ge"), a >= b ? 1u : 0u);
        }
    }
}

TEST(Simulate, BitwiseAndReductions)
{
    RtlDesign rtl = build(
        "module m (input wire [7:0] a, input wire [7:0] b, "
        "output wire [7:0] x, output wire ra, output wire ro, "
        "output wire rx);\n"
        "  assign x = (a & b) | (~a ^ b);\n"
        "  assign ra = &a;\n"
        "  assign ro = |a;\n"
        "  assign rx = ^a;\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    for (uint64_t a : {0x00ull, 0xffull, 0x5aull, 0x81ull}) {
        sim.poke("a", a);
        sim.poke("b", 0x3c);
        sim.eval();
        uint64_t expect = ((a & 0x3c) | ((~a & 0xff) ^ 0x3c)) & 0xff;
        EXPECT_EQ(sim.peek("x"), expect);
        EXPECT_EQ(sim.peek("ra"), a == 0xff ? 1u : 0u);
        EXPECT_EQ(sim.peek("ro"), a != 0 ? 1u : 0u);
        EXPECT_EQ(sim.peek("rx"), __builtin_parityll(a));
    }
}

TEST(Simulate, VariableShifts)
{
    RtlDesign rtl = build(
        "module m (input wire [7:0] a, input wire [2:0] s, "
        "output wire [7:0] l, output wire [7:0] r);\n"
        "  assign l = a << s;\n"
        "  assign r = a >> s;\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    for (uint64_t s = 0; s < 8; ++s) {
        sim.poke("a", 0xc5);
        sim.poke("s", s);
        sim.eval();
        EXPECT_EQ(sim.peek("l"), (0xc5ull << s) & 0xff) << s;
        EXPECT_EQ(sim.peek("r"), 0xc5ull >> s) << s;
    }
}

TEST(Simulate, TernaryAndCase)
{
    RtlDesign rtl = build(
        "module m (input wire [1:0] sel, input wire [3:0] a, "
        "input wire [3:0] b, output reg [3:0] y);\n"
        "  always @* begin\n"
        "    case (sel)\n"
        "      2'd0: y = a;\n"
        "      2'd1: y = b;\n"
        "      2'd2: y = a + b;\n"
        "      default: y = 4'd15;\n"
        "    endcase\n"
        "  end\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    sim.poke("a", 5);
    sim.poke("b", 9);
    uint64_t expect[4] = {5, 9, 14, 15};
    for (uint64_t sel = 0; sel < 4; ++sel) {
        sim.poke("sel", sel);
        sim.eval();
        EXPECT_EQ(sim.peek("y"), expect[sel]) << sel;
    }
}

TEST(Simulate, CaseDefaultNotLast)
{
    // Default arm placed first: must still act as the no-match arm.
    RtlDesign rtl = build(
        "module m (input wire [1:0] sel, output reg [3:0] y);\n"
        "  always @* begin\n"
        "    case (sel)\n"
        "      default: y = 4'd7;\n"
        "      2'd1: y = 4'd1;\n"
        "    endcase\n"
        "  end\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    sim.poke("sel", 1);
    sim.eval();
    EXPECT_EQ(sim.peek("y"), 1u);
    sim.poke("sel", 2);
    sim.eval();
    EXPECT_EQ(sim.peek("y"), 7u);
}

TEST(Simulate, IfElsePriority)
{
    RtlDesign rtl = build(
        "module m (input wire [3:0] a, output reg [1:0] y);\n"
        "  always @* begin\n"
        "    y = 2'd0;\n"
        "    if (a > 4'd10) y = 2'd3;\n"
        "    else if (a > 4'd5) y = 2'd2;\n"
        "    else if (a > 4'd2) y = 2'd1;\n"
        "  end\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    struct Case { uint64_t a, y; };
    for (Case c : {Case{0, 0}, Case{3, 1}, Case{6, 2}, Case{12, 3},
                   Case{5, 1}, Case{11, 3}}) {
        sim.poke("a", c.a);
        sim.eval();
        EXPECT_EQ(sim.peek("y"), c.y) << c.a;
    }
}

TEST(Simulate, ConcatReplicationSelects)
{
    RtlDesign rtl = build(
        "module m (input wire [7:0] a, output wire [7:0] swapped, "
        "output wire [3:0] rep, output wire msb);\n"
        "  assign swapped = {a[3:0], a[7:4]};\n"
        "  assign rep = {4{a[0]}};\n"
        "  assign msb = a[7];\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    sim.poke("a", 0xa7);
    sim.eval();
    EXPECT_EQ(sim.peek("swapped"), 0x7au);
    EXPECT_EQ(sim.peek("rep"), 0xfu);
    EXPECT_EQ(sim.peek("msb"), 1u);
}

TEST(Simulate, SequentialCounterWithReset)
{
    RtlDesign rtl = build(
        "module m (input wire clk, input wire rst, "
        "input wire en, output reg [3:0] q);\n"
        "  always @(posedge clk) begin\n"
        "    if (rst) q <= 4'd0;\n"
        "    else if (en) q <= q + 4'd1;\n"
        "  end\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    sim.poke("rst", 1);
    sim.poke("en", 0);
    sim.step();
    EXPECT_EQ(sim.peek("q"), 0u);
    sim.poke("rst", 0);
    sim.poke("en", 1);
    for (uint64_t i = 1; i <= 5; ++i) {
        sim.step();
        EXPECT_EQ(sim.peek("q"), i);
    }
    // Hold when disabled.
    sim.poke("en", 0);
    sim.step();
    EXPECT_EQ(sim.peek("q"), 5u);
    // Wraps at 16.
    sim.poke("en", 1);
    for (int i = 0; i < 11; ++i)
        sim.step();
    EXPECT_EQ(sim.peek("q"), 0u);
}

TEST(Simulate, NonBlockingSwap)
{
    // The classic NBA test: two registers swap atomically.
    RtlDesign rtl = build(
        "module m (input wire clk, input wire load, "
        "input wire [3:0] a0, input wire [3:0] b0, "
        "output reg [3:0] a, output reg [3:0] b);\n"
        "  always @(posedge clk) begin\n"
        "    if (load) begin\n"
        "      a <= a0;\n"
        "      b <= b0;\n"
        "    end else begin\n"
        "      a <= b;\n"
        "      b <= a;\n"
        "    end\n"
        "  end\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    sim.poke("load", 1);
    sim.poke("a0", 3);
    sim.poke("b0", 12);
    sim.step();
    EXPECT_EQ(sim.peek("a"), 3u);
    EXPECT_EQ(sim.peek("b"), 12u);
    sim.poke("load", 0);
    sim.step();
    EXPECT_EQ(sim.peek("a"), 12u);
    EXPECT_EQ(sim.peek("b"), 3u);
    sim.step();
    EXPECT_EQ(sim.peek("a"), 3u);
    EXPECT_EQ(sim.peek("b"), 12u);
}

TEST(Simulate, BlockingSequenceInComb)
{
    // Blocking assignments see earlier updates in the same block.
    RtlDesign rtl = build(
        "module m (input wire [3:0] a, output reg [3:0] y);\n"
        "  reg [3:0] t;\n"
        "  always @* begin\n"
        "    t = a + 4'd1;\n"
        "    t = t + 4'd1;\n"
        "    y = t;\n"
        "  end\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    sim.poke("a", 7);
    sim.eval();
    EXPECT_EQ(sim.peek("y"), 9u);
}

TEST(Simulate, ProceduralForUnrolls)
{
    // Priority encoder via a descending for loop.
    RtlDesign rtl = build(
        "module m (input wire [7:0] a, output reg [3:0] y);\n"
        "  integer i;\n"
        "  always @* begin\n"
        "    y = 4'd15;\n"
        "    for (i = 7; i >= 0; i = i - 1) begin\n"
        "      if (a[i]) y = i;\n"
        "    end\n"
        "  end\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    struct Case { uint64_t a, y; };
    for (Case c : {Case{0x00, 15}, Case{0x01, 0}, Case{0x80, 7},
                   Case{0x06, 1}, Case{0xf0, 4}}) {
        sim.poke("a", c.a);
        sim.eval();
        EXPECT_EQ(sim.peek("y"), c.y) << c.a;
    }
}

TEST(Simulate, HierarchyAndGenerate)
{
    // A 4-lane generate instantiating a child adder per lane.
    RtlDesign rtl = build(
        "module addone #(parameter W = 4) (input wire [W-1:0] x, "
        "output wire [W-1:0] y);\n"
        "  assign y = x + 1;\n"
        "endmodule\n"
        "module m (input wire [15:0] a, output wire [15:0] y);\n"
        "  genvar g;\n"
        "  generate\n"
        "    for (g = 0; g < 4; g = g + 1) begin : lane\n"
        "      addone #(.W(4)) u (.x(a[g*4+3:g*4]), "
        ".y(y[g*4+3:g*4]));\n"
        "    end\n"
        "  endgenerate\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    sim.poke("a", 0x10f3);
    sim.eval();
    // Each nibble incremented (with wrap): 1->2, 0->1, f->0, 3->4.
    EXPECT_EQ(sim.peek("y"), 0x2104u);
}

TEST(Simulate, PartSelectWrite)
{
    RtlDesign rtl = build(
        "module m (input wire [3:0] lo, input wire [3:0] hi, "
        "output wire [7:0] y);\n"
        "  assign y[3:0] = lo;\n"
        "  assign y[7:4] = hi;\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    sim.poke("lo", 0x5);
    sim.poke("hi", 0xa);
    sim.eval();
    EXPECT_EQ(sim.peek("y"), 0xa5u);
}

TEST(Simulate, DivModByPowerOfTwo)
{
    RtlDesign rtl = build(
        "module m (input wire [7:0] a, output wire [7:0] q, "
        "output wire [1:0] r);\n"
        "  assign q = a / 4;\n"
        "  assign r = a % 4;\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    for (uint64_t a : {0ull, 7ull, 100ull, 255ull}) {
        sim.poke("a", a);
        sim.eval();
        EXPECT_EQ(sim.peek("q"), a / 4);
        EXPECT_EQ(sim.peek("r"), a % 4);
    }
}

TEST(Simulate, LogicalOperators)
{
    RtlDesign rtl = build(
        "module m (input wire [3:0] a, input wire [3:0] b, "
        "output wire land, output wire lor, output wire lnot);\n"
        "  assign land = a && b;\n"
        "  assign lor = a || b;\n"
        "  assign lnot = !a;\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    struct Case { uint64_t a, b; };
    for (Case c : {Case{0, 0}, Case{3, 0}, Case{0, 9}, Case{2, 5}}) {
        sim.poke("a", c.a);
        sim.poke("b", c.b);
        sim.eval();
        EXPECT_EQ(sim.peek("land"), (c.a && c.b) ? 1u : 0u);
        EXPECT_EQ(sim.peek("lor"), (c.a || c.b) ? 1u : 0u);
        EXPECT_EQ(sim.peek("lnot"), !c.a ? 1u : 0u);
    }
}

} // namespace
} // namespace ucx
