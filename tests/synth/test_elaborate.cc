#include <gtest/gtest.h>

#include "hdl/design.hh"
#include "synth/elaborate.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

ElabResult
elab(const std::string &src, const std::string &top,
     std::map<std::string, int64_t> params = {})
{
    Design d;
    d.addSource(src);
    ElabOptions opts;
    opts.topParams = std::move(params);
    return elaborate(d, top, opts);
}

TEST(Elaborate, PortsBecomeSignals)
{
    ElabResult r = elab(
        "module m (input wire clk, input wire [7:0] d, "
        "output wire [7:0] q);\n  assign q = d;\nendmodule",
        "m");
    EXPECT_EQ(r.rtl.inputs.size(), 2u);
    EXPECT_EQ(r.rtl.outputs.size(), 1u);
    EXPECT_EQ(r.rtl.signals[r.rtl.findSignal("d")].width, 8);
    EXPECT_EQ(r.rtl.signals[r.rtl.findSignal("q")].kind,
              SigKind::Wire);
}

TEST(Elaborate, ParameterOverridesApply)
{
    std::string src =
        "module m #(parameter W = 8) (input wire [W-1:0] d, "
        "output wire [W-1:0] q);\n  assign q = d;\nendmodule";
    ElabResult def = elab(src, "m");
    EXPECT_EQ(def.rtl.signals[def.rtl.findSignal("d")].width, 8);
    EXPECT_EQ(def.top.params.at("W"), 8);

    ElabResult ovr = elab(src, "m", {{"W", 16}});
    EXPECT_EQ(ovr.rtl.signals[ovr.rtl.findSignal("d")].width, 16);
    EXPECT_EQ(ovr.top.params.at("W"), 16);
}

TEST(Elaborate, UnknownParameterOverrideThrows)
{
    std::string src =
        "module m #(parameter W = 8) (input wire [W-1:0] d);\n"
        "endmodule";
    EXPECT_THROW(elab(src, "m", {{"BOGUS", 1}}), UcxError);
}

TEST(Elaborate, HierarchyFlattensWithDottedNames)
{
    ElabResult r = elab(
        "module child (input wire a, output wire y);\n"
        "  assign y = ~a;\n"
        "endmodule\n"
        "module top (input wire x, output wire z);\n"
        "  child u0 (.a(x), .y(z));\n"
        "endmodule",
        "top");
    EXPECT_TRUE(r.rtl.hasSignal("u0.a"));
    EXPECT_TRUE(r.rtl.hasSignal("u0.y"));
    ASSERT_EQ(r.top.children.size(), 1u);
    EXPECT_EQ(r.top.children[0].moduleName, "child");
    EXPECT_EQ(r.top.children[0].path, "u0");
}

TEST(Elaborate, InstanceTreeCounts)
{
    ElabResult r = elab(
        "module leaf (input wire a); endmodule\n"
        "module mid (input wire a);\n"
        "  leaf l0 (.a(a));\n"
        "  leaf l1 (.a(a));\n"
        "endmodule\n"
        "module top (input wire a);\n"
        "  mid m0 (.a(a));\n"
        "  mid m1 (.a(a));\n"
        "  leaf l (.a(a));\n"
        "endmodule",
        "top");
    EXPECT_EQ(r.top.totalInstances(), 8u); // top + 2 mid + 5 leaf
    std::map<std::string, size_t> counts;
    r.top.countModules(counts);
    EXPECT_EQ(counts["top"], 1u);
    EXPECT_EQ(counts["mid"], 2u);
    EXPECT_EQ(counts["leaf"], 5u);
}

TEST(Elaborate, GenerateLoopUnrollsAndRecordsTrips)
{
    ElabResult r = elab(
        "module m #(parameter N = 4) (input wire [N-1:0] a, "
        "output wire [N-1:0] y);\n"
        "  genvar g;\n"
        "  generate\n"
        "    for (g = 0; g < N; g = g + 1) begin : l\n"
        "      assign y[g] = ~a[g];\n"
        "    end\n"
        "  endgenerate\n"
        "endmodule",
        "m");
    ASSERT_EQ(r.stats.loopTrips.size(), 1u);
    EXPECT_EQ(*r.stats.loopTrips.begin()->second.begin(), 4);
}

TEST(Elaborate, GenerateIfBranchesRecorded)
{
    std::string src =
        "module m #(parameter FAST = 1) (input wire a, "
        "output wire y);\n"
        "  if (FAST) begin\n"
        "    assign y = a;\n"
        "  end else begin\n"
        "    assign y = ~a;\n"
        "  end\n"
        "endmodule";
    ElabResult fast = elab(src, "m");
    ElabResult slow = elab(src, "m", {{"FAST", 0}});
    ASSERT_EQ(fast.stats.ifBranches.size(), 1u);
    EXPECT_TRUE(fast.stats.ifBranches.begin()->second.count(1));
    EXPECT_TRUE(slow.stats.ifBranches.begin()->second.count(0));
    // Changing the branch is degenerate against the default.
    EXPECT_TRUE(slow.stats.degenerateAgainst(fast.stats));
    EXPECT_FALSE(fast.stats.degenerateAgainst(fast.stats));
}

TEST(Elaborate, ZeroTripLoopDegenerate)
{
    std::string src =
        "module m #(parameter N = 3) (input wire a, "
        "output wire y);\n"
        "  genvar g;\n"
        "  wire [7:0] t;\n"
        "  assign t[0] = a;\n"
        "  generate\n"
        "    for (g = 1; g < N; g = g + 1) begin : l\n"
        "      assign t[g] = t[g-1];\n"
        "    end\n"
        "  endgenerate\n"
        "  assign y = t[N-1];\n"
        "endmodule";
    ElabResult ref = elab(src, "m");
    ElabResult one = elab(src, "m", {{"N", 1}});
    EXPECT_TRUE(one.stats.degenerateAgainst(ref.stats));
    ElabResult two = elab(src, "m", {{"N", 2}});
    EXPECT_FALSE(two.stats.degenerateAgainst(ref.stats));
}

TEST(Elaborate, PerIterationNetsRenamed)
{
    // Nets declared inside a generate body must not collide across
    // iterations.
    ElabResult r = elab(
        "module m (input wire [1:0] a, output wire [1:0] y);\n"
        "  genvar g;\n"
        "  generate\n"
        "    for (g = 0; g < 2; g = g + 1) begin : l\n"
        "      wire t;\n"
        "      assign t = ~a[g];\n"
        "      assign y[g] = t;\n"
        "    end\n"
        "  endgenerate\n"
        "endmodule",
        "m");
    // Two distinct renamed wires exist.
    size_t renamed = 0;
    for (const auto &s : r.rtl.signals)
        if (s.name.find("t__") != std::string::npos)
            ++renamed;
    EXPECT_EQ(renamed, 2u);
}

TEST(Elaborate, MemoryDeclaredAndPorted)
{
    ElabResult r = elab(
        "module m (input wire clk, input wire we, "
        "input wire [3:0] addr, input wire [7:0] wd, "
        "output wire [7:0] rd);\n"
        "  reg [7:0] mem [0:15];\n"
        "  always @(posedge clk) begin\n"
        "    if (we) mem[addr] <= wd;\n"
        "  end\n"
        "  assign rd = mem[addr];\n"
        "endmodule",
        "m");
    ASSERT_EQ(r.rtl.memories.size(), 1u);
    const RtlMemory &mem = r.rtl.memories[0];
    EXPECT_EQ(mem.width, 8);
    EXPECT_EQ(mem.depth, 16);
    ASSERT_EQ(mem.writePorts.size(), 1u);
    EXPECT_NE(mem.writePorts[0].enable, invalidNode);
}

TEST(Elaborate, MultipleDriversThrow)
{
    EXPECT_THROW(
        elab("module m (input wire a, output wire y);\n"
             "  assign y = a;\n"
             "  assign y = ~a;\n"
             "endmodule",
             "m"),
        UcxError);
}

TEST(Elaborate, RegDrivenByTwoAlwaysBlocksThrows)
{
    EXPECT_THROW(
        elab("module m (input wire clk, input wire a, "
             "output reg q);\n"
             "  always @(posedge clk) q <= a;\n"
             "  always @(posedge clk) q <= ~a;\n"
             "endmodule",
             "m"),
        UcxError);
}

TEST(Elaborate, UndrivenWireWarnsAndTiesLow)
{
    ElabResult r = elab(
        "module m (input wire a, output wire y);\n"
        "  wire floating;\n"
        "  assign y = a & floating;\n"
        "endmodule",
        "m");
    bool warned = false;
    for (const auto &w : r.warnings)
        warned |= w.find("floating") != std::string::npos;
    EXPECT_TRUE(warned);
}

TEST(Elaborate, UnconnectedInputTiedLowWithWarning)
{
    ElabResult r = elab(
        "module child (input wire a, input wire b, "
        "output wire y);\n  assign y = a | b;\nendmodule\n"
        "module top (input wire x, output wire z);\n"
        "  child u (.a(x), .y(z));\n"
        "endmodule",
        "top");
    bool warned = false;
    for (const auto &w : r.warnings)
        warned |= w.find("'b'") != std::string::npos;
    EXPECT_TRUE(warned);
}

TEST(Elaborate, UnknownModuleThrows)
{
    EXPECT_THROW(elab("module top (input wire a);\n"
                      "  ghost u (.x(a));\nendmodule",
                      "top"),
                 UcxError);
}

TEST(Elaborate, UnknownPortThrows)
{
    EXPECT_THROW(
        elab("module child (input wire a); endmodule\n"
             "module top (input wire x);\n"
             "  child u (.bogus(x));\nendmodule",
             "top"),
        UcxError);
}

TEST(Elaborate, RecursiveInstantiationCapped)
{
    EXPECT_THROW(elab("module m (input wire a);\n"
                      "  m u (.a(a));\nendmodule",
                      "m"),
                 UcxError);
}

TEST(Elaborate, LoopIterationCapEnforced)
{
    Design d;
    d.addSource(
        "module m (input wire a);\n"
        "  genvar g;\n"
        "  generate\n"
        "    for (g = 0; g < 100000; g = g + 1) begin : l\n"
        "      wire t;\n"
        "    end\n"
        "  endgenerate\n"
        "endmodule");
    ElabOptions opts;
    opts.maxLoopIterations = 100;
    EXPECT_THROW(elaborate(d, "m", opts), UcxError);
}

TEST(Elaborate, LocalparamUsable)
{
    ElabResult r = elab(
        "module m (input wire [7:0] a, output wire [7:0] y);\n"
        "  localparam SHIFT = 2;\n"
        "  assign y = a << SHIFT;\n"
        "endmodule",
        "m");
    EXPECT_NO_THROW(r.rtl.check());
}

TEST(Elaborate, WidthMismatchResized)
{
    // Narrow to wide and wide to narrow assignments are legal and
    // zero-extend / truncate.
    ElabResult r = elab(
        "module m (input wire [3:0] a, output wire [7:0] wide, "
        "output wire [1:0] narrow);\n"
        "  assign wide = a;\n"
        "  assign narrow = a;\n"
        "endmodule",
        "m");
    EXPECT_NO_THROW(r.rtl.check());
}

} // namespace
} // namespace ucx
