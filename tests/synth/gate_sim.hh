/**
 * @file
 * Tiny gate-level simulator used by the tests to check that
 * elaboration + lowering preserve µHDL semantics, including
 * asynchronous-read RAMs with write ports.
 */

#ifndef UCX_TESTS_GATE_SIM_HH
#define UCX_TESTS_GATE_SIM_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "synth/lower.hh"
#include "synth/netlist.hh"
#include "synth/rtl.hh"
#include "util/error.hh"

namespace ucx
{

/** Cycle-accurate two-value simulator over a lowered netlist,
 * including asynchronous-read RAMs. */
class GateSim
{
  public:
    explicit GateSim(const RtlDesign &rtl)
        : rtl_(rtl), net_(lowerToGates(rtl))
    {
        for (const RtlMemory &mem : rtl_.memories) {
            require(mem.width <= 64,
                    "GateSim supports RAM words up to 64 bits");
            mems_.emplace_back(static_cast<size_t>(mem.depth), 0);
        }
        // Reconstruct the input-bit mapping: lowering creates Input
        // gates in signal order.
        size_t cursor = 0;
        for (SigId sig = 0; sig < rtl_.signals.size(); ++sig) {
            const RtlSignal &s = rtl_.signals[sig];
            if (s.kind != SigKind::Input)
                continue;
            std::vector<GateId> bits;
            for (int b = 0; b < s.width; ++b)
                bits.push_back(net_.inputBits.at(cursor++));
            inputBits_[s.name] = bits;
        }
        // Output bits are concatenated in rtl.outputs order.
        size_t out_cursor = 0;
        for (SigId sig : rtl_.outputs) {
            const RtlSignal &s = rtl_.signals[sig];
            std::vector<GateId> bits;
            for (int b = 0; b < s.width; ++b)
                bits.push_back(net_.outputBits.at(out_cursor++));
            outputBits_[s.name] = bits;
        }
        values_.assign(net_.gates.size(), 0);
        order_ = net_.topoOrder();
    }

    /** Set an input port value (truncated to the port width). */
    void
    poke(const std::string &name, uint64_t value)
    {
        auto it = inputBits_.find(name);
        require(it != inputBits_.end(), "no input '" + name + "'");
        for (size_t b = 0; b < it->second.size(); ++b)
            values_[it->second[b]] =
                b < 64 ? ((value >> b) & 1) : 0;
    }

    /** Evaluate combinational logic with current inputs/registers.
     * Runs multiple passes so asynchronous RAM reads (topological
     * sources whose addresses are combinational) settle. */
    void
    eval()
    {
        for (int pass = 0; pass < 3; ++pass)
            evalOnce();
    }

    void
    evalOnce()
    {
        for (GateId g : order_) {
            const Gate &gate = net_.gates[g];
            switch (gate.op) {
              case GateOp::Const0:
                values_[g] = 0;
                break;
              case GateOp::Const1:
                values_[g] = 1;
                break;
              case GateOp::Input:
              case GateOp::Dff:
                break; // externally set / state-held
              case GateOp::Not:
                values_[g] = !values_[gate.in[0]];
                break;
              case GateOp::And:
                values_[g] =
                    values_[gate.in[0]] & values_[gate.in[1]];
                break;
              case GateOp::Or:
                values_[g] =
                    values_[gate.in[0]] | values_[gate.in[1]];
                break;
              case GateOp::Xor:
                values_[g] =
                    values_[gate.in[0]] ^ values_[gate.in[1]];
                break;
              case GateOp::Mux:
                values_[g] = values_[gate.in[0]]
                                 ? values_[gate.in[1]]
                                 : values_[gate.in[2]];
                break;
              case GateOp::MemOut: {
                uint64_t addr = addrOf(gate);
                const RtlMemory &mem = rtl_.memories[gate.mem];
                uint64_t word =
                    addr < static_cast<uint64_t>(mem.depth)
                        ? mems_[gate.mem][addr]
                        : 0;
                values_[g] = (word >> gate.bit) & 1;
                break;
              }
              case GateOp::MemIn:
                break;
            }
        }
    }

    /** Advance one clock: commit RAM writes, latch every DFF. */
    void
    step()
    {
        eval();
        // Memory write ports sample the pre-edge values.
        for (const Gate &gate : net_.gates) {
            if (gate.op != GateOp::MemIn)
                continue;
            const RtlMemory &mem = rtl_.memories[gate.mem];
            size_t aw = addrWidthOf(mem);
            size_t w = static_cast<size_t>(mem.width);
            bool has_enable = gate.in.size() == aw + w + 1;
            ensure(gate.in.size() == aw + w ||
                       has_enable,
                   "unexpected MemIn pin count");
            if (has_enable && !values_[gate.in[aw + w]])
                continue;
            uint64_t addr = addrOf(gate);
            if (addr >= static_cast<uint64_t>(mem.depth))
                continue;
            uint64_t data = 0;
            for (size_t b = 0; b < w && b < 64; ++b) {
                data |= static_cast<uint64_t>(
                            values_[gate.in[aw + b]])
                        << b;
            }
            mems_[gate.mem][addr] = data;
        }
        std::vector<uint8_t> next(values_);
        for (GateId g = 0; g < net_.gates.size(); ++g) {
            const Gate &gate = net_.gates[g];
            if (gate.op == GateOp::Dff)
                next[g] = values_[gate.in[0]];
        }
        values_ = std::move(next);
        eval();
    }

    /** Directly read a RAM word (for assertions). */
    uint64_t
    peekMem(size_t mem, uint64_t addr) const
    {
        require(mem < mems_.size() &&
                    addr < mems_[mem].size(),
                "peekMem out of range");
        return mems_[mem][addr];
    }

    /** Read an output port value. */
    uint64_t
    peek(const std::string &name) const
    {
        auto it = outputBits_.find(name);
        require(it != outputBits_.end(), "no output '" + name + "'");
        uint64_t v = 0;
        for (size_t b = 0; b < it->second.size() && b < 64; ++b)
            v |= static_cast<uint64_t>(values_[it->second[b]]) << b;
        return v;
    }

    /** @return The lowered netlist (for structural assertions). */
    const Netlist &netlist() const { return net_; }

  private:
    static size_t
    addrWidthOf(const RtlMemory &mem)
    {
        size_t w = 0;
        while ((1u << w) < static_cast<unsigned>(mem.depth))
            ++w;
        return std::max<size_t>(w, 1);
    }

    /** Decode the address pins (always the leading fanins). */
    uint64_t
    addrOf(const Gate &gate) const
    {
        const RtlMemory &mem = rtl_.memories[gate.mem];
        size_t aw = addrWidthOf(mem);
        uint64_t addr = 0;
        for (size_t b = 0; b < aw && b < 64; ++b)
            addr |= static_cast<uint64_t>(values_[gate.in[b]]) << b;
        return addr;
    }

    const RtlDesign &rtl_;
    Netlist net_;
    std::map<std::string, std::vector<GateId>> inputBits_;
    std::map<std::string, std::vector<GateId>> outputBits_;
    std::vector<uint8_t> values_;
    std::vector<GateId> order_;
    std::vector<std::vector<uint64_t>> mems_;
};

} // namespace ucx

#endif // UCX_TESTS_GATE_SIM_HH
