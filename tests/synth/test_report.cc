#include <gtest/gtest.h>

#include "hdl/design.hh"
#include "synth/elaborate.hh"
#include "synth/lower.hh"
#include "synth/report.hh"

namespace ucx
{
namespace
{

Netlist
lower(const std::string &src, const std::string &top)
{
    Design d;
    d.addSource(src);
    return lowerToGates(elaborate(d, top).rtl);
}

TEST(Report, HistogramsSumToTotals)
{
    Netlist n = lower(
        "module m (input wire clk, input wire [7:0] a, "
        "input wire [7:0] b, output reg [7:0] q);\n"
        "  always @(posedge clk) q <= (a + b) ^ (a & b);\n"
        "endmodule",
        "m");
    SynthReport report = buildReport(n);

    size_t gate_sum = 0;
    for (const auto &[name, count] : report.gateHistogram) {
        (void)name;
        gate_sum += count;
    }
    EXPECT_EQ(gate_sum, report.totalGates);

    size_t lut_sum = 0;
    for (const auto &[inputs, count] : report.lutInputHistogram) {
        (void)inputs;
        lut_sum += count;
    }
    EXPECT_EQ(lut_sum, report.totalLuts);

    size_t cone_sum = 0;
    for (const auto &[bucket, count] : report.coneFanInHistogram) {
        (void)bucket;
        cone_sum += count;
    }
    EXPECT_EQ(cone_sum, report.totalCones);
}

TEST(Report, ExpectedGateKinds)
{
    Netlist n = lower(
        "module m (input wire clk, input wire d, output reg q);\n"
        "  always @(posedge clk) q <= ~d;\n"
        "endmodule",
        "m");
    SynthReport report = buildReport(n);
    EXPECT_EQ(report.gateHistogram.at("dff"), 1u);
    EXPECT_EQ(report.gateHistogram.at("not"), 1u);
    EXPECT_EQ(report.gateHistogram.at("input"), 2u); // clk + d
}

TEST(Report, FanInSumsMatchUnderlyingAnalyses)
{
    Netlist n = lower(
        "module m (input wire [15:0] a, input wire [15:0] b, "
        "output wire [15:0] y);\n"
        "  assign y = a + b;\n"
        "endmodule",
        "m");
    SynthReport report = buildReport(n);
    EXPECT_EQ(report.fanInSumLut, mapToLuts(n).fanInSum());
    EXPECT_EQ(report.fanInSumExact, extractCones(n).fanInSum);
    EXPECT_GT(report.fanInSumLut, 0u);
}

TEST(Report, LutInputCountsBounded)
{
    Netlist n = lower(
        "module m (input wire [31:0] a, output wire y);\n"
        "  assign y = ^a;\n"
        "endmodule",
        "m");
    SynthReport report = buildReport(n);
    for (const auto &[inputs, count] : report.lutInputHistogram) {
        (void)count;
        EXPECT_GE(inputs, 1u);
        EXPECT_LE(inputs, 8u);
    }
}

TEST(Report, RenderContainsSections)
{
    Netlist n = lower(
        "module m (input wire [3:0] a, output wire y);\n"
        "  assign y = &a;\n"
        "endmodule",
        "m");
    std::string text = buildReport(n).render();
    EXPECT_NE(text.find("Gate kind"), std::string::npos);
    EXPECT_NE(text.find("LUT inputs used"), std::string::npos);
    EXPECT_NE(text.find("Cone fan-in"), std::string::npos);
    EXPECT_NE(text.find("FanInLC"), std::string::npos);
}

} // namespace
} // namespace ucx
