#include <gtest/gtest.h>

#include "hdl/design.hh"
#include "synth/elaborate.hh"
#include "synth/lower.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

Netlist
lower(const std::string &src, const std::string &top)
{
    Design d;
    d.addSource(src);
    return lowerToGates(elaborate(d, top).rtl);
}

TEST(Lower, RegistersBecomeDffs)
{
    Netlist n = lower(
        "module m (input wire clk, input wire [7:0] d, "
        "output reg [7:0] q);\n"
        "  always @(posedge clk) q <= d;\n"
        "endmodule",
        "m");
    EXPECT_EQ(n.numDffs(), 8u);
    EXPECT_EQ(n.inputBits.size(), 9u); // clk + 8 data bits
    EXPECT_EQ(n.outputBits.size(), 8u);
}

TEST(Lower, PureWiringCreatesNoLogic)
{
    Netlist n = lower(
        "module m (input wire [7:0] a, output wire [7:0] y);\n"
        "  assign y = {a[3:0], a[7:4]};\n"
        "endmodule",
        "m");
    EXPECT_EQ(n.numCombGates(), 0u);
    EXPECT_EQ(n.numDffs(), 0u);
}

TEST(Lower, ConstantFoldingKillsDeadLogic)
{
    Netlist n = lower(
        "module m (input wire [7:0] a, output wire [7:0] y);\n"
        "  assign y = a & 8'h00;\n"
        "endmodule",
        "m");
    // AND with constant zero folds away entirely.
    EXPECT_EQ(n.numCombGates(), 0u);
}

TEST(Lower, StructuralHashingDeduplicates)
{
    Netlist twice = lower(
        "module m (input wire a, input wire b, output wire x, "
        "output wire y);\n"
        "  assign x = a & b;\n"
        "  assign y = a & b;\n"
        "endmodule",
        "m");
    // The two identical ANDs share one gate.
    EXPECT_EQ(twice.numCombGates(), 1u);
}

TEST(Lower, AdderGateCountLinearInWidth)
{
    auto count = [&](int w) {
        std::string src =
            "module m (input wire [" + std::to_string(w - 1) +
            ":0] a, input wire [" + std::to_string(w - 1) +
            ":0] b, output wire [" + std::to_string(w - 1) +
            ":0] y);\n  assign y = a + b;\nendmodule";
        return lower(src, "m").numCombGates();
    };
    size_t c8 = count(8);
    size_t c16 = count(16);
    size_t c32 = count(32);
    // Ripple-carry: roughly proportional to width.
    EXPECT_GT(c16, c8);
    EXPECT_LT(c32, 2 * c16 + 8);
    EXPECT_GT(c32, 2 * c16 - 16);
}

TEST(Lower, MultiplierQuadraticInWidth)
{
    auto count = [&](int w) {
        std::string src =
            "module m (input wire [" + std::to_string(w - 1) +
            ":0] a, input wire [" + std::to_string(w - 1) +
            ":0] b, output wire [" + std::to_string(2 * w - 1) +
            ":0] y);\n  assign y = a * b;\nendmodule";
        return lower(src, "m").numCombGates();
    };
    size_t c4 = count(4);
    size_t c8 = count(8);
    EXPECT_GT(c8, 3 * c4);
}

TEST(Lower, CombinationalLoopDetected)
{
    EXPECT_THROW(
        lower("module m (input wire a, output wire y);\n"
              "  wire u;\n  wire v;\n"
              "  assign u = v & a;\n"
              "  assign v = u | a;\n"
              "  assign y = v;\n"
              "endmodule",
              "m"),
        UcxError);
}

TEST(Lower, MemoryBitsCountedNotExpanded)
{
    Netlist n = lower(
        "module m (input wire clk, input wire we, "
        "input wire [5:0] addr, input wire [15:0] wd, "
        "output wire [15:0] rd);\n"
        "  reg [15:0] mem [0:63];\n"
        "  always @(posedge clk) begin\n"
        "    if (we) mem[addr] <= wd;\n"
        "  end\n"
        "  assign rd = mem[addr];\n"
        "endmodule",
        "m");
    EXPECT_EQ(n.memoryBits, 64u * 16u);
    // Memory storage contributes no DFFs.
    EXPECT_EQ(n.numDffs(), 0u);
    // Read port: one MemOut gate per data bit.
    size_t memouts = 0;
    size_t memins = 0;
    for (const auto &g : n.gates) {
        memouts += g.op == GateOp::MemOut;
        memins += g.op == GateOp::MemIn;
    }
    EXPECT_EQ(memouts, 16u);
    EXPECT_EQ(memins, 1u);
}

TEST(Lower, NetsCountsGateOutputsAndInputs)
{
    Netlist n = lower(
        "module m (input wire a, input wire b, output wire y);\n"
        "  assign y = a ^ b;\n"
        "endmodule",
        "m");
    // 2 consts + 2 inputs + 1 xor = 5 nets.
    EXPECT_EQ(n.numNets(), 5u);
}

TEST(Lower, DffDPinsPatched)
{
    Netlist n = lower(
        "module m (input wire clk, input wire d, output reg q);\n"
        "  always @(posedge clk) q <= ~d;\n"
        "endmodule",
        "m");
    for (const auto &g : n.gates) {
        if (g.op == GateOp::Dff) {
            EXPECT_NE(g.in[0], invalidGate);
        }
    }
    EXPECT_NO_THROW(n.check());
}

} // namespace
} // namespace ucx
