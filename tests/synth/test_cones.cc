#include <gtest/gtest.h>

#include "hdl/design.hh"
#include "synth/cones.hh"
#include "synth/elaborate.hh"
#include "synth/lower.hh"
#include "synth/mapper.hh"

namespace ucx
{
namespace
{

Netlist
lower(const std::string &src, const std::string &top)
{
    Design d;
    d.addSource(src);
    return lowerToGates(elaborate(d, top).rtl);
}

TEST(Cones, SimpleRegisterToRegisterCone)
{
    // q's next state depends on 3 register bits: that cone has
    // fan-in 3.
    Netlist n = lower(
        "module m (input wire clk, input wire [2:0] d, "
        "output reg q);\n"
        "  reg [2:0] r;\n"
        "  always @(posedge clk) begin\n"
        "    r <= d;\n"
        "    q <= r[0] & r[1] | r[2];\n"
        "  end\n"
        "endmodule",
        "m");
    ConeReport report = extractCones(n);
    size_t max_in = 0;
    for (const auto &cone : report.cones)
        max_in = std::max(max_in, cone.inputCount);
    EXPECT_EQ(max_in, 3u);
}

TEST(Cones, PassThroughConesCountOneInput)
{
    // r <= d: each bit's cone is just the input bit.
    Netlist n = lower(
        "module m (input wire clk, input wire [3:0] d, "
        "output reg [3:0] q);\n"
        "  always @(posedge clk) q <= d;\n"
        "endmodule",
        "m");
    ConeReport report = extractCones(n);
    // 4 d-pin cones + 4 output cones, all single-input.
    EXPECT_EQ(report.cones.size(), 8u);
    EXPECT_EQ(report.fanInSum, 8u);
    EXPECT_EQ(report.maxInputs, 1u);
}

TEST(Cones, SharedLogicCountedPerCone)
{
    // The paper accumulates inputs per primary output, so shared
    // cones count once per endpoint.
    Netlist n = lower(
        "module m (input wire [7:0] a, output wire x, "
        "output wire y);\n"
        "  wire t;\n"
        "  assign t = &a;\n"
        "  assign x = t;\n"
        "  assign y = ~t;\n"
        "endmodule",
        "m");
    ConeReport report = extractCones(n);
    EXPECT_EQ(report.cones.size(), 2u);
    EXPECT_EQ(report.fanInSum, 16u); // 8 + 8
}

TEST(Cones, ConstantsAreNotInputs)
{
    Netlist n = lower(
        "module m (input wire [3:0] a, output wire y);\n"
        "  assign y = a == 4'd9;\n"
        "endmodule",
        "m");
    ConeReport report = extractCones(n);
    ASSERT_EQ(report.cones.size(), 1u);
    EXPECT_EQ(report.cones[0].inputCount, 4u);
}

TEST(Cones, MemoryPortsAreBoundaries)
{
    Netlist n = lower(
        "module m (input wire clk, input wire we, "
        "input wire [3:0] addr, input wire [7:0] wd, "
        "output wire [7:0] rd);\n"
        "  reg [7:0] mem [0:15];\n"
        "  always @(posedge clk) begin\n"
        "    if (we) mem[addr] <= wd;\n"
        "  end\n"
        "  assign rd = mem[addr];\n"
        "endmodule",
        "m");
    ConeReport report = extractCones(n);
    // Output cones stop at MemOut gates (count 1 input each), and
    // the write-port pins generate cones over addr/data/we.
    EXPECT_GT(report.cones.size(), 8u);
    for (const auto &cone : report.cones)
        EXPECT_LE(cone.inputCount, 13u); // addr+data+we at most
}

TEST(Cones, ExactVsLutEstimateCorrelate)
{
    // The paper's FanInLC is the LUT-input-sum *estimate* of the
    // exact cone fan-in; both must grow together.
    auto both = [&](int w) {
        std::string ws = std::to_string(w - 1);
        Netlist n = lower(
            "module m (input wire clk, input wire [" + ws +
                ":0] a, input wire [" + ws +
                ":0] b, output reg [" + ws + ":0] q);\n"
                "  always @(posedge clk) q <= a + b;\n"
                "endmodule",
            "m");
        return std::make_pair(extractCones(n).fanInSum,
                              mapToLuts(n).fanInSum());
    };
    auto [exact8, lut8] = both(8);
    auto [exact16, lut16] = both(16);
    EXPECT_GT(exact16, exact8);
    EXPECT_GT(lut16, lut8);
}

} // namespace
} // namespace ucx
