#include <gtest/gtest.h>

#include "hdl/design.hh"
#include "synth/elaborate.hh"
#include "synth/lower.hh"
#include "synth/power.hh"
#include "synth/timing.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

Netlist
lower(const std::string &src, const std::string &top)
{
    Design d;
    d.addSource(src);
    return lowerToGates(elaborate(d, top).rtl);
}

Netlist
adderChain(int stages)
{
    // One register stage feeding `stages` chained adders.
    std::string body =
        "module m (input wire clk, input wire [15:0] a, "
        "output reg [15:0] q);\n"
        "  wire [15:0] t0;\n  assign t0 = a;\n";
    for (int s = 1; s <= stages; ++s) {
        body += "  wire [15:0] t" + std::to_string(s) + ";\n";
        body += "  assign t" + std::to_string(s) + " = t" +
                std::to_string(s - 1) + " + 16'd" +
                std::to_string(s) + ";\n";
    }
    body += "  always @(posedge clk) q <= t" +
            std::to_string(stages) + ";\nendmodule";
    return lower(body, "m");
}

TEST(Timing, LongerChainsAreSlower)
{
    TimingReport short_path = staAsic(adderChain(1));
    TimingReport long_path = staAsic(adderChain(4));
    EXPECT_GT(long_path.criticalPathNs, short_path.criticalPathNs);
    EXPECT_LT(long_path.freqMHz, short_path.freqMHz);
}

TEST(Timing, EmptyDesignHasFloorDelay)
{
    Netlist n = lower(
        "module m (input wire clk, input wire d, output reg q);\n"
        "  always @(posedge clk) q <= d;\n"
        "endmodule",
        "m");
    TimingReport t = staAsic(n);
    const CellLibrary &lib = CellLibrary::generic180();
    EXPECT_GE(t.criticalPathNs,
              lib.dffClkQNs + lib.dffSetupNs - 1e-9);
    EXPECT_GT(t.freqMHz, 0.0);
}

TEST(Timing, FreqInversesCriticalPath)
{
    TimingReport t = staAsic(adderChain(2));
    EXPECT_NEAR(t.freqMHz * t.criticalPathNs, 1000.0, 1e-6);
}

TEST(Timing, FpgaDepthDrivesFrequency)
{
    LutMapping shallow = mapToLuts(adderChain(1));
    LutMapping deep = mapToLuts(adderChain(6));
    TimingReport ts = staFpga(shallow);
    TimingReport td = staFpga(deep);
    EXPECT_GT(ts.freqMHz, td.freqMHz);
}

TEST(Timing, FpgaFrequencyPlausibleRange)
{
    // The paper's components run 41..159 MHz on the Stratix II; a
    // modest adder pipeline should land in the tens-to-hundreds.
    TimingReport t = staFpga(mapToLuts(adderChain(2)));
    EXPECT_GT(t.freqMHz, 20.0);
    EXPECT_LT(t.freqMHz, 600.0);
}

TEST(Power, ScalesWithFrequency)
{
    Netlist n = adderChain(3);
    PowerReport slow = estimatePower(n, 50.0);
    PowerReport fast = estimatePower(n, 100.0);
    EXPECT_NEAR(fast.dynamicMw, 2.0 * slow.dynamicMw, 1e-9);
    // Leakage is frequency-independent.
    EXPECT_DOUBLE_EQ(fast.staticUw, slow.staticUw);
}

TEST(Power, MoreLogicMorePower)
{
    PowerReport small = estimatePower(adderChain(1), 100.0);
    PowerReport big = estimatePower(adderChain(5), 100.0);
    EXPECT_GT(big.dynamicMw, small.dynamicMw);
    EXPECT_GT(big.staticUw, small.staticUw);
}

TEST(Power, RamLeaksButDoesNotSwitch)
{
    Netlist with_ram = lower(
        "module m (input wire clk, input wire we, "
        "input wire [7:0] addr, input wire [31:0] wd, "
        "output wire [31:0] rd);\n"
        "  reg [31:0] mem [0:255];\n"
        "  always @(posedge clk) begin\n"
        "    if (we) mem[addr] <= wd;\n"
        "  end\n"
        "  assign rd = mem[addr];\n"
        "endmodule",
        "m");
    PowerReport p = estimatePower(with_ram, 100.0);
    const CellLibrary &lib = CellLibrary::generic180();
    EXPECT_GE(p.staticUw, 256.0 * 32.0 * lib.ramBitLeakUw);
}

TEST(Power, RejectsNonPositiveFrequency)
{
    Netlist n = adderChain(1);
    EXPECT_THROW(estimatePower(n, 0.0), UcxError);
}

} // namespace
} // namespace ucx
