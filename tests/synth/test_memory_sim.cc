/**
 * @file
 * Behavioral tests of memory-bearing designs through the full
 * parse -> elaborate -> lower -> simulate path.
 */

#include <gtest/gtest.h>

#include "designs/registry.hh"
#include "hdl/design.hh"
#include "synth/elaborate.hh"

#include "gate_sim.hh"

namespace ucx
{
namespace
{

RtlDesign
build(const std::string &src, const std::string &top)
{
    Design d;
    d.addSource(src);
    return elaborate(d, top).rtl;
}

TEST(MemorySim, WriteThenReadBack)
{
    RtlDesign rtl = build(
        "module m (input wire clk, input wire we, "
        "input wire [3:0] addr, input wire [7:0] wd, "
        "output wire [7:0] rd);\n"
        "  reg [7:0] mem [0:15];\n"
        "  always @(posedge clk) begin\n"
        "    if (we) mem[addr] <= wd;\n"
        "  end\n"
        "  assign rd = mem[addr];\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    // Write distinct values to every address.
    sim.poke("we", 1);
    for (uint64_t a = 0; a < 16; ++a) {
        sim.poke("addr", a);
        sim.poke("wd", a * 9 + 3);
        sim.step();
    }
    // Read them all back.
    sim.poke("we", 0);
    for (uint64_t a = 0; a < 16; ++a) {
        sim.poke("addr", a);
        sim.eval();
        EXPECT_EQ(sim.peek("rd"), (a * 9 + 3) & 0xff) << a;
    }
}

TEST(MemorySim, WriteEnableGates)
{
    RtlDesign rtl = build(
        "module m (input wire clk, input wire we, "
        "input wire [1:0] addr, input wire [7:0] wd, "
        "output wire [7:0] rd);\n"
        "  reg [7:0] mem [0:3];\n"
        "  always @(posedge clk) begin\n"
        "    if (we) mem[addr] <= wd;\n"
        "  end\n"
        "  assign rd = mem[addr];\n"
        "endmodule",
        "m");
    GateSim sim(rtl);
    sim.poke("addr", 2);
    sim.poke("wd", 55);
    sim.poke("we", 1);
    sim.step();
    sim.poke("wd", 99);
    sim.poke("we", 0);
    sim.step(); // disabled write must not land
    sim.eval();
    EXPECT_EQ(sim.peek("rd"), 55u);
}

TEST(MemorySim, RegfileBypassAndStorage)
{
    Design d = shippedDesign("regfile").load();
    RtlDesign rtl = elaborate(d, "regfile").rtl;
    GateSim sim(rtl);

    // Write r3 = 1234.
    sim.poke("we", 1);
    sim.poke("waddr", 3);
    sim.poke("wdata", 1234);
    sim.poke("raddr0", 3);
    sim.poke("raddr1", 7);
    sim.eval();
    // Same-cycle bypass: read port 0 sees the in-flight write.
    EXPECT_EQ(sim.peek("rdata0"), 1234u);
    sim.step();
    // After the edge the RAM itself holds the value.
    sim.poke("we", 0);
    sim.eval();
    EXPECT_EQ(sim.peek("rdata0"), 1234u);
    EXPECT_EQ(sim.peek("rdata1"), 0u);
}

TEST(MemorySim, RobDispatchCompleteRetire)
{
    Design d = shippedDesign("rob").load();
    RtlDesign rtl = elaborate(d, "rob").rtl;
    GateSim sim(rtl);
    sim.poke("rst", 1);
    sim.step();
    sim.poke("rst", 0);

    // Dispatch two instructions.
    sim.poke("disp_valid", 1);
    sim.poke("disp_pc", 0x100);
    sim.poke("disp_dst", 5);
    sim.eval();
    uint64_t idx0 = sim.peek("disp_idx");
    sim.step();
    sim.poke("disp_pc", 0x104);
    sim.poke("disp_dst", 6);
    sim.eval();
    uint64_t idx1 = sim.peek("disp_idx");
    sim.step();
    sim.poke("disp_valid", 0);
    EXPECT_NE(idx0, idx1);

    // Nothing retires while the head is incomplete.
    sim.step();
    EXPECT_EQ(sim.peek("retire_valid"), 0u);

    // Complete out of order: the younger first.
    sim.poke("comp_valid", 1);
    sim.poke("comp_idx", idx1);
    sim.step();
    sim.poke("comp_idx", idx0);
    sim.step();
    sim.poke("comp_valid", 0);

    // Head retires first, in program order.
    sim.step();
    EXPECT_EQ(sim.peek("retire_valid"), 1u);
    EXPECT_EQ(sim.peek("retire_pc"), 0x100u);
    EXPECT_EQ(sim.peek("retire_dst"), 5u);
    sim.step();
    EXPECT_EQ(sim.peek("retire_valid"), 1u);
    EXPECT_EQ(sim.peek("retire_pc"), 0x104u);
}

TEST(MemorySim, LsqForwardsYoungestMatchingStore)
{
    Design d = shippedDesign("lsq").load();
    RtlDesign rtl = elaborate(d, "lsq").rtl;
    GateSim sim(rtl);
    sim.poke("rst", 1);
    sim.step();
    sim.poke("rst", 0);

    // Enqueue a store to 0x40 with data 77.
    sim.poke("st_valid", 1);
    sim.poke("st_addr", 0x40);
    sim.poke("st_data", 77);
    sim.poke("drain_en", 0);
    sim.step();
    sim.poke("st_valid", 0);

    // A load to the same address forwards.
    sim.poke("ld_valid", 1);
    sim.poke("ld_addr", 0x40);
    sim.eval();
    EXPECT_EQ(sim.peek("fwd_hit"), 1u);
    EXPECT_EQ(sim.peek("fwd_data"), 77u);

    // A load elsewhere misses.
    sim.poke("ld_addr", 0x44);
    sim.eval();
    EXPECT_EQ(sim.peek("fwd_hit"), 0u);

    // Drain the store; forwarding stops.
    sim.poke("ld_valid", 0);
    sim.poke("drain_en", 1);
    sim.eval();
    EXPECT_EQ(sim.peek("drain_valid"), 1u);
    EXPECT_EQ(sim.peek("drain_addr"), 0x40u);
    EXPECT_EQ(sim.peek("drain_data"), 77u);
    sim.step();
    sim.poke("drain_en", 0);
    sim.poke("ld_valid", 1);
    sim.poke("ld_addr", 0x40);
    sim.eval();
    EXPECT_EQ(sim.peek("fwd_hit"), 0u);
}

TEST(MemorySim, CacheMissRefillThenHit)
{
    Design d = shippedDesign("cache_ctrl").load();
    RtlDesign rtl = elaborate(d, "cache_ctrl").rtl;
    GateSim sim(rtl);
    sim.poke("rst", 1);
    sim.step();
    sim.poke("rst", 0);

    // Read miss: controller must go to memory.
    sim.poke("req_valid", 1);
    sim.poke("req_write", 0);
    sim.poke("req_addr", 0x1234);
    sim.poke("mem_ack", 0);
    sim.step(); // IDLE -> LOOKUP
    sim.poke("req_valid", 0);
    sim.step(); // LOOKUP -> REFILL (miss)
    EXPECT_EQ(sim.peek("busy"), 1u);
    EXPECT_EQ(sim.peek("mem_req"), 1u);
    // Memory answers.
    sim.poke("mem_ack", 1);
    sim.poke("mem_rdata", 0xabcd);
    sim.step();
    EXPECT_EQ(sim.peek("resp_valid"), 1u);
    sim.poke("mem_ack", 0);
    sim.step();
    EXPECT_EQ(sim.peek("busy"), 0u);

    // Same address again: hit, served without memory.
    sim.poke("req_valid", 1);
    sim.step();
    sim.poke("req_valid", 0);
    sim.step(); // LOOKUP: hit
    EXPECT_EQ(sim.peek("resp_valid"), 1u);
    EXPECT_EQ(sim.peek("resp_rdata"), 0xabcdu);
    EXPECT_EQ(sim.peek("mem_req"), 0u);
}

TEST(MemorySim, GshareLearnsTakenBranch)
{
    Design d = shippedDesign("fetch").load();
    RtlDesign rtl = elaborate(d, "gshare").rtl;
    GateSim sim(rtl);
    sim.poke("rst", 1);
    sim.step();
    sim.poke("rst", 0);

    const uint64_t pc = 0x3f;
    sim.poke("lookup_pc", pc);
    sim.eval();
    EXPECT_EQ(sim.peek("predict_taken"), 0u); // cold counters

    // Train taken repeatedly. The global history register shifts
    // with every update, scattering the first updates across PHT
    // indices; once the 8-bit GHR saturates at all-ones the index
    // stabilizes and the 2-bit counter there climbs past the taken
    // threshold.
    sim.poke("update_en", 1);
    sim.poke("update_pc", pc);
    sim.poke("update_taken", 1);
    for (int i = 0; i < 12; ++i)
        sim.step();
    sim.poke("update_en", 0);
    // Probe lookups across PCs: with GHR = 0xff the trained index
    // pc ^ 0xff falls in the probed range.
    bool any_taken = false;
    for (uint64_t probe = 0; probe < 64; ++probe) {
        sim.poke("lookup_pc", probe);
        sim.eval();
        any_taken |= sim.peek("predict_taken") == 1;
    }
    EXPECT_TRUE(any_taken);
}

} // namespace
} // namespace ucx
