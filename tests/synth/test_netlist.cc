#include <gtest/gtest.h>

#include "synth/netlist.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(Netlist, AddTracksInputs)
{
    Netlist n;
    GateId i0 = n.add({GateOp::Input, {}});
    GateId i1 = n.add({GateOp::Input, {}});
    n.add({GateOp::And, {i0, i1}});
    EXPECT_EQ(n.inputBits.size(), 2u);
    EXPECT_EQ(n.gates.size(), 3u);
}

TEST(Netlist, WrongArityPanics)
{
    Netlist n;
    GateId i0 = n.add({GateOp::Input, {}});
    EXPECT_THROW(n.add({GateOp::And, {i0}}), UcxPanic);
    EXPECT_THROW(n.add({GateOp::Not, {i0, i0}}), UcxPanic);
}

TEST(Netlist, CountsByKind)
{
    Netlist n;
    GateId i0 = n.add({GateOp::Input, {}});
    GateId d = n.add({GateOp::Dff, {i0}});
    GateId x = n.add({GateOp::Xor, {i0, d}});
    n.add({GateOp::Not, {x}});
    EXPECT_EQ(n.numDffs(), 1u);
    EXPECT_EQ(n.numCombGates(), 2u);
    EXPECT_EQ(n.numNets(), 4u);
}

TEST(Netlist, MemInHasNoNet)
{
    Netlist n;
    GateId i0 = n.add({GateOp::Input, {}});
    n.add({GateOp::MemIn, {i0}});
    EXPECT_EQ(n.numNets(), 1u);
}

TEST(Netlist, TopoOrderRespectsCombEdges)
{
    Netlist n;
    GateId i0 = n.add({GateOp::Input, {}});
    GateId a = n.add({GateOp::Not, {i0}});
    GateId b = n.add({GateOp::And, {a, i0}});
    auto order = n.topoOrder();
    auto pos = [&](GateId g) {
        for (size_t i = 0; i < order.size(); ++i)
            if (order[i] == g)
                return i;
        return order.size();
    };
    EXPECT_LT(pos(i0), pos(a));
    EXPECT_LT(pos(a), pos(b));
}

TEST(Netlist, TopoOrderAllowsRegisterCycles)
{
    // q feeds its own next-state logic: fine through a DFF.
    Netlist n;
    GateId dff = n.add({GateOp::Dff, {invalidGate}});
    GateId inv = n.add({GateOp::Not, {dff}});
    n.gates[dff].in[0] = inv;
    EXPECT_NO_THROW(n.topoOrder());
    EXPECT_NO_THROW(n.check());
}

TEST(Netlist, CombinationalCycleThrows)
{
    Netlist n;
    // Two gates feeding each other — ids assigned forward, then the
    // first input patched to create the cycle.
    GateId i0 = n.add({GateOp::Input, {}});
    GateId a = n.add({GateOp::And, {i0, i0}});
    GateId b = n.add({GateOp::Or, {a, i0}});
    n.gates[a].in[1] = b;
    EXPECT_THROW(n.topoOrder(), UcxError);
}

TEST(Netlist, ConeEndpoints)
{
    Netlist n;
    GateId i0 = n.add({GateOp::Input, {}});
    GateId inv = n.add({GateOp::Not, {i0}});
    GateId dff = n.add({GateOp::Dff, {inv}});
    GateId out = n.add({GateOp::And, {dff, i0}});
    n.outputBits.push_back(out);
    auto endpoints = n.coneEndpoints();
    // One for the DFF's d pin, one for the output bit.
    ASSERT_EQ(endpoints.size(), 2u);
    EXPECT_EQ(endpoints[0], inv);
    EXPECT_EQ(endpoints[1], out);
}

TEST(Netlist, ConeSources)
{
    Netlist n;
    GateId c0 = n.add({GateOp::Const0, {}});
    GateId i0 = n.add({GateOp::Input, {}});
    GateId dff = n.add({GateOp::Dff, {i0}});
    GateId inv = n.add({GateOp::Not, {i0}});
    EXPECT_TRUE(n.isConeSource(c0));
    EXPECT_TRUE(n.isConeSource(i0));
    EXPECT_TRUE(n.isConeSource(dff));
    EXPECT_FALSE(n.isConeSource(inv));
}

} // namespace
} // namespace ucx
