#include <cmath>

#include <gtest/gtest.h>

#include "core/validation.hh"
#include "data/paper_data.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

Dataset
cvDataset(uint64_t seed, size_t projects, size_t per_project)
{
    Rng rng(seed);
    Dataset d;
    for (size_t p = 0; p < projects; ++p) {
        double b = rng.normal(0.0, 0.3);
        for (size_t c = 0; c < per_project; ++c) {
            Component comp;
            comp.project = "proj" + std::to_string(p);
            comp.name = "comp" + std::to_string(c);
            double stmts = rng.uniform(100.0, 4000.0);
            comp.metrics[static_cast<size_t>(Metric::Stmts)] = stmts;
            comp.metrics[static_cast<size_t>(Metric::FanInLC)] =
                rng.uniform(1000.0, 20000.0);
            comp.effort = std::exp(b + std::log(0.005 * stmts) +
                                   rng.normal(0.0, 0.25));
            d.add(comp);
        }
    }
    return d;
}

TEST(Validation, LoocvProducesOneRecordPerComponent)
{
    Dataset d = cvDataset(1, 4, 5);
    auto cv = leaveOneComponentOut(d, {Metric::Stmts});
    EXPECT_EQ(cv.records.size(), 20u);
    for (const auto &r : cv.records) {
        EXPECT_GT(r.predicted, 0.0);
        EXPECT_GT(r.actual, 0.0);
        EXPECT_NEAR(r.logError,
                    std::log(r.predicted / r.actual), 1e-12);
    }
}

TEST(Validation, LoocvErrorNearGenerativeSigma)
{
    Dataset d = cvDataset(3, 5, 6);
    auto cv = leaveOneComponentOut(d, {Metric::Stmts});
    // Out-of-sample rms log error should be in the vicinity of the
    // generating sigma (0.25), a bit above due to estimation noise.
    EXPECT_GT(cv.rmsLogError(), 0.15);
    EXPECT_LT(cv.rmsLogError(), 0.55);
    EXPECT_LT(std::abs(cv.meanLogError()), 0.2);
    EXPECT_GT(cv.withinFactorTwo(), 0.8);
}

TEST(Validation, ProjectHoldOutWorseThanComponentHoldOut)
{
    // Predicting a whole unseen team with rho = 1 must be harder
    // than predicting one component of a calibrated team.
    Dataset d = cvDataset(5, 5, 6);
    double loco =
        leaveOneComponentOut(d, {Metric::Stmts}).rmsLogError();
    double lopo =
        leaveOneProjectOut(d, {Metric::Stmts}).rmsLogError();
    EXPECT_GE(lopo, loco - 0.05);
}

TEST(Validation, PaperDatasetDee1Generalizes)
{
    // On the paper's own data: DEE1 should predict held-out
    // components within roughly its in-sample accuracy band.
    auto cv = leaveOneComponentOut(
        paperDataset(), {Metric::Stmts, Metric::FanInLC});
    EXPECT_EQ(cv.records.size(), 18u);
    // In-sample sigma is 0.46; generous out-of-sample ceiling.
    EXPECT_LT(cv.rmsLogError(), 1.0);
    EXPECT_GT(cv.withinFactorTwo(), 0.5);
}

TEST(Validation, PaperDatasetGoodBeatsBadOutOfSample)
{
    // The in-sample ranking (Stmts beats Cells) must survive
    // cross-validation, otherwise the paper's conclusion would be
    // an artifact of overfitting.
    auto good = leaveOneComponentOut(paperDataset(),
                                     {Metric::Stmts});
    auto bad = leaveOneComponentOut(paperDataset(),
                                    {Metric::Cells});
    EXPECT_LT(good.rmsLogError(), bad.rmsLogError());
}

TEST(Validation, RequiresMinimumData)
{
    Dataset tiny = cvDataset(2, 1, 1);
    EXPECT_THROW(leaveOneComponentOut(tiny, {Metric::Stmts}),
                 UcxError);
    EXPECT_THROW(leaveOneProjectOut(tiny, {Metric::Stmts}),
                 UcxError);
}

TEST(Validation, SummariesRejectEmpty)
{
    CrossValidationResult empty;
    EXPECT_THROW(empty.rmsLogError(), UcxError);
    EXPECT_THROW(empty.meanLogError(), UcxError);
    EXPECT_THROW(empty.withinFactorTwo(), UcxError);
}

} // namespace
} // namespace ucx
