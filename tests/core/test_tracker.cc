#include <cmath>

#include <gtest/gtest.h>

#include "core/tracker.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

MetricValues
makeMetrics(double stmts, double fan)
{
    MetricValues v{};
    v[static_cast<size_t>(Metric::Stmts)] = stmts;
    v[static_cast<size_t>(Metric::FanInLC)] = fan;
    return v;
}

Dataset
historyDataset(uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    for (int p = 0; p < 4; ++p) {
        double b = rng.normal(0.0, 0.3);
        for (int c = 0; c < 5; ++c) {
            Component comp;
            comp.project = "past" + std::to_string(p);
            comp.name = "comp" + std::to_string(c);
            double stmts = rng.uniform(100.0, 4000.0);
            double fan = rng.uniform(1000.0, 20000.0);
            comp.metrics = makeMetrics(stmts, fan);
            comp.effort = std::exp(
                b + std::log(0.004 * stmts + 0.0004 * fan) +
                rng.normal(0.0, 0.2));
            d.add(comp);
        }
    }
    return d;
}

TEST(Tracker, NoRhoBeforeFirstCompletion)
{
    ProductivityTracker tracker(historyDataset(1), "current");
    EXPECT_FALSE(tracker.currentRho().has_value());
    EXPECT_EQ(tracker.completedInProject(), 0u);
}

TEST(Tracker, EstimatesWithRhoOneInitially)
{
    ProductivityTracker tracker(historyDataset(3), "current");
    std::vector<PendingComponent> pending = {
        {"fetch", makeMetrics(1000, 8000)},
        {"decode", makeMetrics(500, 4000)},
    };
    auto estimates = tracker.estimate(pending);
    ASSERT_EQ(estimates.size(), 2u);
    for (const auto &e : estimates) {
        EXPECT_GT(e.median, 0.0);
        EXPECT_GT(e.mean, e.median);
        EXPECT_LT(e.low90, e.median);
        EXPECT_GT(e.high90, e.median);
    }
    // Bigger component -> bigger estimate.
    EXPECT_GT(estimates[0].median, estimates[1].median);
}

TEST(Tracker, LearnsSlowTeamProductivity)
{
    // The current team is 2x slower than typical (rho = 0.5). After
    // completions, the tracker should estimate rho < 1 and inflate
    // predictions accordingly.
    ProductivityTracker tracker(historyDataset(5), "current");
    Rng rng(99);
    for (int c = 0; c < 5; ++c) {
        double stmts = rng.uniform(500.0, 3000.0);
        double fan = rng.uniform(3000.0, 15000.0);
        double typical = 0.004 * stmts + 0.0004 * fan;
        tracker.completeComponent("done" + std::to_string(c),
                                  makeMetrics(stmts, fan),
                                  2.0 * typical);
    }
    ASSERT_TRUE(tracker.currentRho().has_value());
    EXPECT_LT(*tracker.currentRho(), 0.85);
    EXPECT_EQ(tracker.completedInProject(), 5u);

    // Predictions for this team exceed the rho=1 baseline.
    std::vector<PendingComponent> pending = {
        {"next", makeMetrics(1000, 8000)}};
    double with_rho = tracker.estimate(pending)[0].median;
    double base = tracker.estimator().predictMedian(
        pending[0].metrics, 1.0);
    EXPECT_GT(with_rho, base);
}

TEST(Tracker, RelativeEstimatesNormalized)
{
    ProductivityTracker tracker(historyDataset(7), "current");
    std::vector<PendingComponent> pending = {
        {"big", makeMetrics(4000, 20000)},
        {"small", makeMetrics(200, 1500)},
    };
    auto rel = tracker.relativeEstimate(pending);
    ASSERT_EQ(rel.size(), 2u);
    EXPECT_DOUBLE_EQ(rel[0].median, 1.0);
    EXPECT_LT(rel[1].median, 1.0);
    EXPECT_GT(rel[1].median, 0.0);
}

TEST(Tracker, RefitHappensOnCompletion)
{
    ProductivityTracker tracker(historyDataset(9), "current");
    double sigma_before = tracker.estimator().sigmaEps();
    tracker.completeComponent("c0", makeMetrics(1000, 9000), 7.0);
    // The estimator was refit over a bigger dataset; accuracy value
    // changes (any change proves the refit ran).
    EXPECT_EQ(tracker.estimator().componentsUsed(), 21u);
    (void)sigma_before;
}

} // namespace
} // namespace ucx
