/**
 * @file
 * Full-stack integration test: µHDL source -> accounting procedure
 * -> synthesis metrics -> dataset -> mixed-effects fit -> prediction
 * — the complete µComplexity methodology on designs this repository
 * actually compiles, with efforts drawn from the generative model so
 * the fit has a known ground truth.
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/estimator.hh"
#include "core/measure.hh"
#include "core/tracker.hh"
#include "designs/registry.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

/** Measure one shipped design with the accounting procedure. */
MetricValues
measure(const std::string &name)
{
    const ShippedDesign &sd = shippedDesign(name);
    Design design = sd.load();
    return measureComponent(design, sd.top).metrics;
}

TEST(EndToEnd, MeasureFitPredictRoundTrip)
{
    // Ground truth: effort = (1/rho_team) * (w1*Stmts + w2*FanInLC)
    // * lognormal noise — exactly the paper's Eq. 2/3.
    const double w1 = 0.01;
    const double w2 = 0.002;
    const double sigma_eps = 0.15;
    struct Team
    {
        const char *name;
        double rho;
        std::vector<const char *> components;
    };
    const Team teams[] = {
        {"alpha", 1.4,
         {"alu", "decoder", "regfile", "serial_mul", "div_unit",
          "scoreboard"}},
        {"beta", 0.7,
         {"fetch", "cache_ctrl", "memctrl", "mmu_lite",
          "issue_queue", "rob"}},
        {"gamma", 1.0,
         {"lsq", "exec_cluster", "rat_standard", "rat_sliding"}},
    };

    Rng rng(20051210);
    Dataset dataset;
    for (const Team &team : teams) {
        for (const char *name : team.components) {
            Component c;
            c.project = team.name;
            c.name = name;
            c.metrics = measure(name);
            double stmts =
                c.metrics[static_cast<size_t>(Metric::Stmts)];
            double fan =
                c.metrics[static_cast<size_t>(Metric::FanInLC)];
            c.effort = (w1 * stmts + w2 * fan) / team.rho *
                       rng.lognormal(0.0, sigma_eps);
            dataset.add(c);
        }
    }

    FittedEstimator fit = fitEstimator(
        dataset, {Metric::Stmts, Metric::FanInLC});

    // Residual noise recovered within sampling error.
    EXPECT_LT(fit.sigmaEps(), 0.35);
    // Productivity ordering recovered: alpha > gamma > beta.
    EXPECT_GT(fit.productivity("alpha"), fit.productivity("gamma"));
    EXPECT_GT(fit.productivity("gamma"), fit.productivity("beta"));
    // And roughly the right magnitudes.
    EXPECT_NEAR(fit.productivity("alpha") / fit.productivity("beta"),
                1.4 / 0.7, 0.8);

    // Predict a held-out component (pipeline, by team gamma) and
    // check the 90% interval covers its generated effort most of
    // the time; with one draw just check the right scale.
    MetricValues pipeline_metrics = measure("pipeline");
    double stmts =
        pipeline_metrics[static_cast<size_t>(Metric::Stmts)];
    double fan =
        pipeline_metrics[static_cast<size_t>(Metric::FanInLC)];
    double truth = (w1 * stmts + w2 * fan) / 1.0;
    double predicted = fit.predictMedian(pipeline_metrics,
                                         fit.productivity("gamma"));
    EXPECT_NEAR(std::log(predicted / truth), 0.0, 0.5);
}

TEST(EndToEnd, TrackerOverMeasuredDesigns)
{
    // A tracker seeded with measured components from two teams
    // learns the ongoing team's productivity from completions.
    const double w1 = 0.01;
    const double w2 = 0.002;
    Rng rng(77);

    Dataset history;
    for (const char *name :
         {"alu", "decoder", "regfile", "serial_mul", "rob",
          "issue_queue"}) {
        Component c;
        c.project = "past";
        c.name = name;
        c.metrics = measure(name);
        double stmts = c.metrics[static_cast<size_t>(Metric::Stmts)];
        double fan =
            c.metrics[static_cast<size_t>(Metric::FanInLC)];
        c.effort =
            (w1 * stmts + w2 * fan) * rng.lognormal(0.0, 0.15);
        history.add(c);
    }
    // Second historical team so the random effect is identified.
    for (const char *name :
         {"fetch", "cache_ctrl", "memctrl", "mmu_lite"}) {
        Component c;
        c.project = "past2";
        c.name = name;
        c.metrics = measure(name);
        double stmts = c.metrics[static_cast<size_t>(Metric::Stmts)];
        double fan =
            c.metrics[static_cast<size_t>(Metric::FanInLC)];
        c.effort = (w1 * stmts + w2 * fan) / 1.2 *
                   rng.lognormal(0.0, 0.15);
        history.add(c);
    }

    ProductivityTracker tracker(std::move(history), "now");
    // The new team is 2x slower (rho = 0.5).
    for (const char *name : {"lsq", "exec_cluster", "div_unit"}) {
        MetricValues m = measure(name);
        double stmts = m[static_cast<size_t>(Metric::Stmts)];
        double fan = m[static_cast<size_t>(Metric::FanInLC)];
        tracker.completeComponent(
            name, m,
            2.0 * (w1 * stmts + w2 * fan) *
                rng.lognormal(0.0, 0.1));
    }
    ASSERT_TRUE(tracker.currentRho().has_value());
    EXPECT_LT(*tracker.currentRho(), 0.8);
}

} // namespace
} // namespace ucx
