/**
 * @file
 * Property tests of the accounting procedure (paper Section 2.2):
 * count-once invariance under instance replication, determinism, and
 * parameter-minimization behavior.
 */

#include <gtest/gtest.h>

#include "core/measure.hh"
#include "hdl/design.hh"

namespace ucx
{
namespace
{

/**
 * A non-trivial unparameterized leaf plus a wrapper with N
 * instances. The leaf has no parameters so minimization cannot
 * shrink it, and each instance gets distinct inputs so structural
 * hashing cannot legitimately merge the copies.
 */
std::string
wrapperSource(int copies)
{
    std::string src = R"(
module leaf (
    input  wire [11:0] a,
    input  wire [11:0] b,
    output wire [23:0] p
);
    assign p = a * b;
endmodule
module wrapper (
    input  wire [11:0] x,
    input  wire [11:0] y,
    output wire [23:0] out
);
)";
    for (int i = 0; i < copies; ++i) {
        std::string n = std::to_string(i);
        src += "    wire [23:0] p" + n + ";\n";
        src += "    leaf u" + n + " (.a(x ^ 12'd" +
               std::to_string(i * 37 + 1) + "), .b(y), .p(p" + n +
               "));\n";
    }
    src += "    assign out = p0";
    for (int i = 1; i < copies; ++i)
        src += " ^ p" + std::to_string(i);
    src += ";\nendmodule\n";
    return src;
}

ComponentMeasurement
measureWrapper(int copies, AccountingMode mode)
{
    Design d;
    d.addSource(wrapperSource(copies));
    return measureComponent(d, "wrapper", mode);
}

double
metric(const ComponentMeasurement &m, Metric which)
{
    return m.metrics[static_cast<size_t>(which)];
}

TEST(AccountingProps, ReplicationInvariance)
{
    // Count-once: 1 vs 4 identical instances measure (almost) the
    // same with the procedure — only the wrapper's XOR glue differs.
    auto one = measureWrapper(1, AccountingMode::WithProcedure);
    auto four = measureWrapper(4, AccountingMode::WithProcedure);
    double c1 = metric(one, Metric::Cells);
    double c4 = metric(four, Metric::Cells);
    // The leaf multiplier is hundreds of cells; the extra glue is
    // tens. Require the difference to be a small fraction of the
    // leaf.
    EXPECT_LT(c4 - c1, 0.25 * c1);
    // Without the procedure, four copies cost roughly four leaves.
    auto four_raw =
        measureWrapper(4, AccountingMode::WithoutProcedure);
    auto one_raw =
        measureWrapper(1, AccountingMode::WithoutProcedure);
    EXPECT_GT(metric(four_raw, Metric::Cells),
              3.0 * metric(one_raw, Metric::Cells));
}

TEST(AccountingProps, ReplicationCensusStillCounted)
{
    auto four = measureWrapper(4, AccountingMode::WithProcedure);
    EXPECT_EQ(four.moduleCounts.at("leaf"), 4u);
    EXPECT_EQ(four.moduleCounts.at("wrapper"), 1u);
    EXPECT_EQ(four.measuredParams.size(), 2u);
}

TEST(AccountingProps, Deterministic)
{
    auto a = measureWrapper(3, AccountingMode::WithProcedure);
    auto b = measureWrapper(3, AccountingMode::WithProcedure);
    for (Metric m : allMetrics()) {
        EXPECT_DOUBLE_EQ(a.metrics[static_cast<size_t>(m)],
                         b.metrics[static_cast<size_t>(m)])
            << metricName(m);
    }
}

TEST(AccountingProps, ProcedureShrinksReplicatedDesigns)
{
    // Partitioned measurement carries a small fixed overhead (each
    // module's ports are counted as boundary pins), so for a
    // replication-free design the procedure may cost a few percent.
    // As soon as instances repeat, it must win — and by more as the
    // replication grows.
    for (int copies : {1, 2, 4}) {
        auto with = measureWrapper(copies,
                                   AccountingMode::WithProcedure);
        auto without = measureWrapper(
            copies, AccountingMode::WithoutProcedure);
        for (Metric m : {Metric::Cells, Metric::Nets,
                         Metric::FanInLC, Metric::AreaL}) {
            double slack = copies == 1
                               ? metric(without, m) * 0.15 + 80.0
                               : 0.0;
            EXPECT_LE(metric(with, m), metric(without, m) + slack)
                << metricName(m) << " copies=" << copies;
        }
    }
    // The win grows with replication.
    auto with4 = measureWrapper(4, AccountingMode::WithProcedure);
    auto without4 =
        measureWrapper(4, AccountingMode::WithoutProcedure);
    EXPECT_LT(metric(with4, Metric::Cells),
              0.5 * metric(without4, Metric::Cells));
}

TEST(AccountingProps, ParameterMinimizationMonotone)
{
    // A parameterized variant: the minimized width never exceeds
    // the default and stays positive.
    Design d;
    d.addSource(
        "module pleaf #(parameter W = 12) (\n"
        "    input wire [W-1:0] a, input wire [W-1:0] b,\n"
        "    output wire [2*W-1:0] p);\n"
        "  assign p = a * b;\n"
        "endmodule");
    auto params = minimizeParameters(d, "pleaf");
    EXPECT_LE(params.at("W"), 12);
    EXPECT_GE(params.at("W"), 1);
}

TEST(AccountingProps, MinimizationIdempotent)
{
    Design d;
    d.addSource(
        "module pleaf #(parameter W = 12) (\n"
        "    input wire [W-1:0] a, input wire [W-1:0] b,\n"
        "    output wire [2*W-1:0] p);\n"
        "  assign p = a * b;\n"
        "endmodule");
    auto once = minimizeParameters(d, "pleaf");
    auto twice = minimizeParameters(d, "pleaf");
    EXPECT_EQ(once, twice);
}

TEST(AccountingProps, UnparameterizedLeafHasNoMinimization)
{
    Design d;
    d.addSource(wrapperSource(1));
    EXPECT_TRUE(minimizeParameters(d, "leaf").empty());
}

TEST(AccountingProps, SourceMetricsInvariantUnderReplication)
{
    // Stmts grows with the wrapper's source (more instances are
    // more statements), but the *leaf's* contribution is written
    // once: a 4-copy wrapper has strictly fewer statements than 4x
    // the 1-copy wrapper.
    auto one = measureWrapper(1, AccountingMode::WithProcedure);
    auto four = measureWrapper(4, AccountingMode::WithProcedure);
    EXPECT_GT(metric(four, Metric::Stmts),
              metric(one, Metric::Stmts));
    EXPECT_LT(metric(four, Metric::Stmts),
              4.0 * metric(one, Metric::Stmts));
}

} // namespace
} // namespace ucx
