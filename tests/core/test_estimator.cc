#include <cmath>

#include <gtest/gtest.h>

#include "core/estimator.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

/** Synthetic calibration set drawn from the paper's model. */
Dataset
syntheticDataset(uint64_t seed, double w_stmts, double w_fan,
                 double s_eps, double s_rho)
{
    Rng rng(seed);
    Dataset d;
    for (int p = 0; p < 5; ++p) {
        double b = rng.normal(0.0, s_rho);
        for (int c = 0; c < 6; ++c) {
            Component comp;
            comp.project = "proj" + std::to_string(p);
            comp.name = "comp" + std::to_string(c);
            double stmts = rng.uniform(100.0, 4000.0);
            double fan = rng.uniform(1000.0, 20000.0);
            comp.metrics[static_cast<size_t>(Metric::Stmts)] = stmts;
            comp.metrics[static_cast<size_t>(Metric::FanInLC)] = fan;
            // Irrelevant noise metric.
            comp.metrics[static_cast<size_t>(Metric::AreaS)] =
                rng.uniform(1e3, 1e6);
            comp.effort = std::exp(
                b + std::log(w_stmts * stmts + w_fan * fan) +
                rng.normal(0.0, s_eps));
            d.add(comp);
        }
    }
    return d;
}

TEST(Estimator, FitRecoversAccuracy)
{
    Dataset d = syntheticDataset(1, 0.004, 0.0004, 0.3, 0.4);
    FittedEstimator fit =
        fitEstimator(d, {Metric::Stmts, Metric::FanInLC});
    EXPECT_NEAR(fit.sigmaEps(), 0.3, 0.12);
    EXPECT_GT(fit.sigmaRho(), 0.1);
    EXPECT_EQ(fit.componentsUsed(), 30u);
    EXPECT_EQ(fit.mode(), FitMode::MixedEffects);
}

TEST(Estimator, IrrelevantMetricFitsWorse)
{
    Dataset d = syntheticDataset(3, 0.004, 0.0004, 0.25, 0.3);
    FittedEstimator good = fitEstimator(d, {Metric::Stmts});
    FittedEstimator bad = fitEstimator(d, {Metric::AreaS});
    EXPECT_LT(good.sigmaEps(), bad.sigmaEps());
}

TEST(Estimator, PredictMedianUsesWeightsAndRho)
{
    Dataset d = syntheticDataset(5, 0.004, 0.0004, 0.3, 0.4);
    FittedEstimator fit =
        fitEstimator(d, {Metric::Stmts, Metric::FanInLC});
    MetricValues v{};
    v[static_cast<size_t>(Metric::Stmts)] = 1000.0;
    v[static_cast<size_t>(Metric::FanInLC)] = 5000.0;
    double base = fit.predictMedian(v, 1.0);
    double expect = fit.weights()[0] * 1000.0 +
                    fit.weights()[1] * 5000.0;
    EXPECT_NEAR(base, expect, 1e-9);
    // Paper Eq. 1: a team twice as productive takes half the time.
    EXPECT_NEAR(fit.predictMedian(v, 2.0), base / 2.0, 1e-9);
}

TEST(Estimator, PredictMeanAppliesEq4)
{
    Dataset d = syntheticDataset(7, 0.004, 0.0004, 0.3, 0.4);
    FittedEstimator fit = fitEstimator(d, {Metric::Stmts});
    MetricValues v{};
    v[static_cast<size_t>(Metric::Stmts)] = 500.0;
    double median = fit.predictMedian(v);
    double mean = fit.predictMean(v);
    double s2 = fit.sigmaEps() * fit.sigmaEps() +
                fit.sigmaRho() * fit.sigmaRho();
    EXPECT_NEAR(mean, median * std::exp(s2 / 2.0), 1e-9);
    EXPECT_GT(mean, median);
}

TEST(Estimator, ConfidenceIntervalBracketsMedian)
{
    Dataset d = syntheticDataset(9, 0.004, 0.0004, 0.3, 0.4);
    FittedEstimator fit = fitEstimator(d, {Metric::Stmts});
    auto [lo, hi] = fit.confidenceInterval(10.0, 0.90);
    EXPECT_LT(lo, 10.0);
    EXPECT_GT(hi, 10.0);
    // Symmetric in log space.
    EXPECT_NEAR(lo * hi, 100.0, 1e-6);
}

TEST(Estimator, ProductivityLookup)
{
    Dataset d = syntheticDataset(11, 0.004, 0.0004, 0.3, 0.4);
    FittedEstimator fit = fitEstimator(d, {Metric::Stmts});
    EXPECT_EQ(fit.productivities().size(), 5u);
    EXPECT_GT(fit.productivity("proj0"), 0.0);
    EXPECT_THROW(fit.productivity("nope"), UcxError);
}

TEST(Estimator, PooledModeHasUnitRho)
{
    Dataset d = syntheticDataset(13, 0.004, 0.0004, 0.3, 0.4);
    FittedEstimator fit =
        fitEstimator(d, {Metric::Stmts}, FitMode::Pooled);
    EXPECT_EQ(fit.mode(), FitMode::Pooled);
    EXPECT_DOUBLE_EQ(fit.sigmaRho(), 0.0);
    for (const auto &[name, rho] : fit.productivities()) {
        (void)name;
        EXPECT_DOUBLE_EQ(rho, 1.0);
    }
}

TEST(Estimator, PredictRejectsBadInput)
{
    Dataset d = syntheticDataset(15, 0.004, 0.0004, 0.3, 0.4);
    FittedEstimator fit = fitEstimator(d, {Metric::Stmts});
    MetricValues zero{};
    EXPECT_THROW(fit.predictMedian(zero), UcxError);
    MetricValues v{};
    v[static_cast<size_t>(Metric::Stmts)] = 100.0;
    EXPECT_THROW(fit.predictMedian(v, 0.0), UcxError);
}

TEST(Estimator, Dee1IsStmtsPlusFanInLC)
{
    Dataset d = syntheticDataset(17, 0.004, 0.0004, 0.3, 0.4);
    FittedEstimator dee1 = fitDee1(d);
    ASSERT_EQ(dee1.metrics().size(), 2u);
    EXPECT_EQ(dee1.metrics()[0], Metric::Stmts);
    EXPECT_EQ(dee1.metrics()[1], Metric::FanInLC);
}

} // namespace
} // namespace ucx
