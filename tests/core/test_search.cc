#include <cmath>

#include <gtest/gtest.h>

#include "core/search.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

/**
 * Dataset where effort is driven by Stmts and FanInLC; every other
 * metric is noise with matching scale.
 */
Dataset
plantedDataset(uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    for (int p = 0; p < 4; ++p) {
        double b = rng.normal(0.0, 0.3);
        for (int c = 0; c < 5; ++c) {
            Component comp;
            comp.project = "proj" + std::to_string(p);
            comp.name = "comp" + std::to_string(c);
            double stmts = rng.uniform(100.0, 4000.0);
            double fan = rng.uniform(1000.0, 20000.0);
            for (Metric m : allMetrics()) {
                comp.metrics[static_cast<size_t>(m)] =
                    rng.uniform(10.0, 10000.0);
            }
            comp.metrics[static_cast<size_t>(Metric::Stmts)] = stmts;
            comp.metrics[static_cast<size_t>(Metric::FanInLC)] = fan;
            comp.effort = std::exp(
                b + std::log(0.004 * stmts + 0.0004 * fan) +
                rng.normal(0.0, 0.2));
            d.add(comp);
        }
    }
    return d;
}

TEST(Search, SinglesSortedBySigma)
{
    Dataset d = plantedDataset(21);
    auto ranked = rankSingleMetrics(d);
    ASSERT_EQ(ranked.size(), numMetrics);
    for (size_t i = 1; i < ranked.size(); ++i) {
        EXPECT_LE(ranked[i - 1].fit.sigmaEps(),
                  ranked[i].fit.sigmaEps());
    }
}

TEST(Search, PlantedMetricsRankTop)
{
    Dataset d = plantedDataset(23);
    auto ranked = rankSingleMetrics(d);
    // The two planted drivers must rank in the top three.
    auto rank_of = [&](Metric m) {
        for (size_t i = 0; i < ranked.size(); ++i)
            if (ranked[i].metrics[0] == m)
                return i;
        return ranked.size();
    };
    EXPECT_LT(rank_of(Metric::Stmts), 3u);
    EXPECT_LT(rank_of(Metric::FanInLC), 3u);
}

TEST(Search, PairCountIs55)
{
    Dataset d = plantedDataset(25);
    auto pairs = rankMetricPairs(d);
    EXPECT_EQ(pairs.size(), numMetrics * (numMetrics - 1) / 2);
    for (const auto &entry : pairs)
        EXPECT_EQ(entry.metrics.size(), 2u);
}

TEST(Search, BestPairBeatsItsSingles)
{
    Dataset d = plantedDataset(27);
    auto pairs = rankMetricPairs(d);
    auto singles = rankSingleMetrics(d);
    // The best pair is at least as accurate as the best single
    // (more parameters, nested model, small numerical slack).
    EXPECT_LE(pairs[0].fit.sigmaEps(),
              singles[0].fit.sigmaEps() + 0.02);
}

TEST(Search, PlantedPairNearTop)
{
    Dataset d = plantedDataset(29);
    auto pairs = rankMetricPairs(d);
    // The planted combination must appear among the best 5 pairs.
    size_t rank = pairs.size();
    for (size_t i = 0; i < pairs.size(); ++i) {
        bool has_stmts = pairs[i].metrics[0] == Metric::Stmts ||
                         pairs[i].metrics[1] == Metric::Stmts;
        bool has_fan = pairs[i].metrics[0] == Metric::FanInLC ||
                       pairs[i].metrics[1] == Metric::FanInLC;
        if (has_stmts && has_fan) {
            rank = i;
            break;
        }
    }
    EXPECT_LT(rank, 5u);
}

} // namespace
} // namespace ucx
