#include <cmath>

#include <gtest/gtest.h>

#include "core/dataset.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

Component
makeComponent(const std::string &project, const std::string &name,
              double effort, double stmts, double faninlc)
{
    Component c;
    c.project = project;
    c.name = name;
    c.effort = effort;
    c.metrics[static_cast<size_t>(Metric::Stmts)] = stmts;
    c.metrics[static_cast<size_t>(Metric::FanInLC)] = faninlc;
    return c;
}

Dataset
smallDataset()
{
    Dataset d;
    d.add(makeComponent("P1", "a", 2.0, 100, 1000));
    d.add(makeComponent("P1", "b", 4.0, 200, 2500));
    d.add(makeComponent("P2", "c", 1.0, 60, 700));
    d.add(makeComponent("P2", "d", 8.0, 500, 4000));
    return d;
}

TEST(Dataset, AddAndSize)
{
    Dataset d = smallDataset();
    EXPECT_EQ(d.size(), 4u);
    EXPECT_EQ(d.components()[1].fullName(), "P1-b");
}

TEST(Dataset, RejectsBadComponents)
{
    Dataset d;
    Component no_effort = makeComponent("P", "x", 0.0, 1, 1);
    EXPECT_THROW(d.add(no_effort), UcxError);
    Component no_project = makeComponent("", "x", 1.0, 1, 1);
    EXPECT_THROW(d.add(no_project), UcxError);
    Component no_name = makeComponent("P", "", 1.0, 1, 1);
    EXPECT_THROW(d.add(no_name), UcxError);
}

TEST(Dataset, ProjectsInFirstAppearanceOrder)
{
    Dataset d = smallDataset();
    auto projects = d.projects();
    ASSERT_EQ(projects.size(), 2u);
    EXPECT_EQ(projects[0], "P1");
    EXPECT_EQ(projects[1], "P2");
}

TEST(Dataset, FilterProject)
{
    Dataset d = smallDataset();
    Dataset p2 = d.filterProject("P2");
    EXPECT_EQ(p2.size(), 2u);
    EXPECT_EQ(p2.components()[0].project, "P2");
}

TEST(Dataset, ToNlmeDataShape)
{
    Dataset d = smallDataset();
    NlmeData data =
        d.toNlmeData({Metric::Stmts, Metric::FanInLC});
    ASSERT_EQ(data.groups.size(), 2u);
    EXPECT_EQ(data.groups[0].name, "P1");
    EXPECT_EQ(data.groups[0].y.size(), 2u);
    EXPECT_EQ(data.groups[0].x.cols(), 2u);
    // y is log effort.
    EXPECT_NEAR(data.groups[0].y[0], std::log(2.0), 1e-12);
    // Covariates in requested order.
    EXPECT_DOUBLE_EQ(data.groups[0].x(0, 0), 100.0);
    EXPECT_DOUBLE_EQ(data.groups[0].x(0, 1), 1000.0);
    EXPECT_NO_THROW(data.validate());
}

TEST(Dataset, ZeroPolicyClampToOneIsDefault)
{
    Dataset d = smallDataset();
    d.add(makeComponent("P2", "zero", 3.0, 0.0, 0.0));
    NlmeData data = d.toNlmeData({Metric::Stmts});
    // The zero component is kept, floored at 1 (the policy that
    // reproduces the paper's FFs row).
    size_t total = 0;
    for (const auto &g : data.groups)
        total += g.y.size();
    EXPECT_EQ(total, 5u);
    EXPECT_DOUBLE_EQ(data.groups[1].x(2, 0), 1.0);
}

TEST(Dataset, ZeroPolicyDropAndError)
{
    Dataset d = smallDataset();
    d.add(makeComponent("P2", "zero", 3.0, 0.0, 0.0));
    NlmeData data = d.toNlmeData({Metric::Stmts}, ZeroPolicy::Drop);
    size_t total = 0;
    for (const auto &g : data.groups)
        total += g.y.size();
    EXPECT_EQ(total, 4u);
    EXPECT_THROW(d.toNlmeData({Metric::Stmts}, ZeroPolicy::Error),
                 UcxError);
}

TEST(Dataset, ClampOnlyTouchesAllZeroRows)
{
    Dataset d = smallDataset();
    // Zero Stmts but non-zero FanInLC: the pair row is usable as-is
    // and must not be clamped.
    d.add(makeComponent("P2", "halfzero", 3.0, 0.0, 500.0));
    NlmeData data =
        d.toNlmeData({Metric::Stmts, Metric::FanInLC});
    EXPECT_DOUBLE_EQ(data.groups[1].x(2, 0), 0.0);
    EXPECT_DOUBLE_EQ(data.groups[1].x(2, 1), 500.0);
}

TEST(Dataset, UsableComponentsMatchesNlmeOrder)
{
    Dataset d = smallDataset();
    d.add(makeComponent("P1", "zero", 3.0, 0.0, 0.0));
    auto usable =
        d.usableComponents({Metric::Stmts}, ZeroPolicy::Drop);
    NlmeData data = d.toNlmeData({Metric::Stmts}, ZeroPolicy::Drop);
    size_t total = 0;
    for (const auto &g : data.groups)
        total += g.y.size();
    EXPECT_EQ(usable.size(), total);
    // Grouped order: all P1 rows first.
    EXPECT_EQ(usable[0].project, "P1");
    EXPECT_EQ(usable[1].project, "P1");
    EXPECT_EQ(usable[2].project, "P2");
}

TEST(Dataset, EmptyMetricSelectionThrows)
{
    Dataset d = smallDataset();
    EXPECT_THROW(d.toNlmeData({}), UcxError);
}

} // namespace
} // namespace ucx
