#include <sstream>

#include <gtest/gtest.h>

#include "core/database.hh"
#include "core/estimator.hh"
#include "data/paper_data.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(Database, RoundTripPaperDataset)
{
    const Dataset &original = paperDataset();
    std::stringstream buffer;
    saveDatasetCsv(original, buffer);
    Dataset loaded = loadDatasetCsv(buffer);

    ASSERT_EQ(loaded.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
        const Component &a = original.components()[i];
        const Component &b = loaded.components()[i];
        EXPECT_EQ(a.project, b.project);
        EXPECT_EQ(a.name, b.name);
        EXPECT_DOUBLE_EQ(a.effort, b.effort);
        for (Metric m : allMetrics()) {
            EXPECT_DOUBLE_EQ(a.metrics[static_cast<size_t>(m)],
                             b.metrics[static_cast<size_t>(m)])
                << a.fullName() << " " << metricName(m);
        }
    }
}

TEST(Database, HeaderIsSelfDescribing)
{
    std::stringstream buffer;
    saveDatasetCsv(paperDataset(), buffer);
    std::string header;
    std::getline(buffer, header);
    EXPECT_NE(header.find("project"), std::string::npos);
    EXPECT_NE(header.find("FanInLC"), std::string::npos);
    EXPECT_NE(header.find("Stmts"), std::string::npos);
}

TEST(Database, LoadedDatasetFitsIdentically)
{
    // The persistence layer must not perturb the regression.
    std::stringstream buffer;
    saveDatasetCsv(paperDataset(), buffer);
    Dataset loaded = loadDatasetCsv(buffer);
    FittedEstimator original = fitDee1(paperDataset());
    FittedEstimator reloaded = fitDee1(loaded);
    EXPECT_NEAR(original.sigmaEps(), reloaded.sigmaEps(), 1e-9);
    EXPECT_NEAR(original.weights()[0], reloaded.weights()[0], 1e-12);
}

TEST(Database, RejectsEmptyInput)
{
    std::stringstream empty;
    EXPECT_THROW(loadDatasetCsv(empty), UcxError);
}

TEST(Database, RejectsWrongHeader)
{
    std::stringstream bad("a,b,c\n1,2,3\n");
    EXPECT_THROW(loadDatasetCsv(bad), UcxError);
}

TEST(Database, RejectsWrongFieldCount)
{
    std::stringstream buffer;
    saveDatasetCsv(paperDataset(), buffer);
    std::string text = buffer.str();
    text += "OnlyTwo,Fields\n";
    std::stringstream bad(text);
    EXPECT_THROW(loadDatasetCsv(bad), UcxError);
}

TEST(Database, RejectsNonNumericEffort)
{
    std::stringstream buffer;
    saveDatasetCsv(paperDataset(), buffer);
    std::string text = buffer.str();
    text += "Team,Comp,lots,1,2,3,4,5,6,7,8,9,10,11\n";
    std::stringstream bad(text);
    EXPECT_THROW(loadDatasetCsv(bad), UcxError);
}

TEST(Database, SkipsBlankLinesAndHandlesCrLf)
{
    std::stringstream buffer;
    saveDatasetCsv(paperDataset(), buffer);
    // Re-join with CRLF and stray blank lines.
    std::string text;
    std::string line;
    while (std::getline(buffer, line))
        text += line + "\r\n\r\n";
    std::stringstream crlf(text);
    Dataset loaded = loadDatasetCsv(crlf);
    EXPECT_EQ(loaded.size(), paperDataset().size());
}

TEST(Database, QuotedFieldsRoundTrip)
{
    Dataset d;
    Component c;
    c.project = "Team, with comma";
    c.name = "has \"quotes\"";
    c.effort = 2.5;
    c.metrics[static_cast<size_t>(Metric::Stmts)] = 100;
    d.add(c);
    std::stringstream buffer;
    saveDatasetCsv(d, buffer);
    Dataset loaded = loadDatasetCsv(buffer);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.components()[0].project, "Team, with comma");
    EXPECT_EQ(loaded.components()[0].name, "has \"quotes\"");
}

TEST(Database, FileRoundTrip)
{
    std::string path = "/tmp/ucx_db_test.csv";
    saveDatasetFile(paperDataset(), path);
    Dataset loaded = loadDatasetFile(path);
    EXPECT_EQ(loaded.size(), paperDataset().size());
    EXPECT_THROW(loadDatasetFile("/nonexistent/nope.csv"), UcxError);
}

} // namespace
} // namespace ucx
