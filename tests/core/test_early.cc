#include <cmath>

#include <gtest/gtest.h>

#include "core/early.hh"
#include "designs/registry.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(ScalingLaw, RecoversExactPowerLaw)
{
    // m = 3 * p^2.
    std::vector<std::pair<double, double>> pts;
    for (double p : {1.0, 2.0, 4.0, 8.0})
        pts.push_back({p, 3.0 * p * p});
    ScalingFit fit = fitScalingLaw(pts);
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(std::exp(fit.alpha), 3.0, 1e-9);
    EXPECT_NEAR(fit.beta, 2.0, 1e-9);
    EXPECT_NEAR(fit.rmsLog, 0.0, 1e-9);
    EXPECT_NEAR(fit.predict(16.0), 3.0 * 256.0, 1e-6);
}

TEST(ScalingLaw, LinearLawHasUnitExponent)
{
    std::vector<std::pair<double, double>> pts = {
        {2, 10}, {4, 20}, {8, 40}};
    ScalingFit fit = fitScalingLaw(pts);
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.beta, 1.0, 1e-9);
}

TEST(ScalingLaw, InvalidWithInsufficientData)
{
    EXPECT_FALSE(fitScalingLaw({}).valid);
    EXPECT_FALSE(fitScalingLaw({{2.0, 5.0}}).valid);
    // All-zero metrics (e.g. FFs of a combinational block).
    EXPECT_FALSE(
        fitScalingLaw({{2.0, 0.0}, {4.0, 0.0}}).valid);
    // Identical params cannot identify an exponent.
    EXPECT_FALSE(
        fitScalingLaw({{4.0, 5.0}, {4.0, 7.0}}).valid);
    EXPECT_DOUBLE_EQ(fitScalingLaw({}).predict(3.0), 0.0);
}

TEST(ScalingLaw, RejectsNonPositiveParams)
{
    EXPECT_THROW(fitScalingLaw({{0.0, 1.0}, {2.0, 2.0}}),
                 UcxError);
}

TEST(Early, ExecClusterLanesExtrapolate)
{
    // Calibrate on 1..3 lanes, predict 6 lanes, compare to truth.
    const ShippedDesign &sd = shippedDesign("exec_cluster");
    Design design = sd.load();
    EarlyEstimator early(design, sd.top, "LANES");
    early.calibrate({1, 2, 3});

    MetricValues predicted = early.predictMetrics(6);
    MetricValues actual = early.measureActual(6);
    for (Metric m : {Metric::Cells, Metric::Nets, Metric::AreaL}) {
        double p = predicted[static_cast<size_t>(m)];
        double a = actual[static_cast<size_t>(m)];
        ASSERT_GT(a, 0.0) << metricName(m);
        // Extrapolation 2x beyond the calibration range within 40%.
        EXPECT_NEAR(p / a, 1.0, 0.4) << metricName(m);
    }
    // The cluster grows superlinearly in lanes (bypass network).
    EXPECT_GT(early.law(Metric::Cells).beta, 0.9);
}

TEST(Early, MmuEntriesRoughlyLinear)
{
    const ShippedDesign &sd = shippedDesign("mmu_lite");
    Design design = sd.load();
    EarlyEstimator early(design, sd.top, "ENTRIES");
    early.calibrate({2, 4, 8});
    // Per-entry replication: cells scale close to linearly.
    double beta = early.law(Metric::Cells).beta;
    EXPECT_GT(beta, 0.7);
    EXPECT_LT(beta, 1.4);
    // Prediction at 16 entries within 35% of truth.
    double p = early.predictMetric(Metric::Cells, 16);
    double a = early.measureActual(
        16)[static_cast<size_t>(Metric::Cells)];
    EXPECT_NEAR(p / a, 1.0, 0.35);
}

TEST(Early, SourceMetricsParameterIndependent)
{
    const ShippedDesign &sd = shippedDesign("mmu_lite");
    Design design = sd.load();
    EarlyEstimator early(design, sd.top, "ENTRIES");
    early.calibrate({2, 4});
    EXPECT_DOUBLE_EQ(early.predictMetric(Metric::Stmts, 2),
                     early.predictMetric(Metric::Stmts, 64));
    EXPECT_GT(early.predictMetric(Metric::LoC, 8), 0.0);
}

TEST(Early, Validation)
{
    const ShippedDesign &sd = shippedDesign("alu");
    Design design = sd.load();
    EXPECT_THROW(EarlyEstimator(design, "alu", "NOPE"), UcxError);
    EXPECT_THROW(EarlyEstimator(design, "ghost", "W"), UcxError);
    EarlyEstimator early(design, "alu", "W");
    EXPECT_THROW(early.calibrate({4}), UcxError);
    EXPECT_THROW(early.predictMetric(Metric::Cells, 8), UcxError);
}

} // namespace
} // namespace ucx
