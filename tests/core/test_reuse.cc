#include <gtest/gtest.h>

#include "core/reuse.hh"
#include "data/paper_data.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

MetricValues
dee1Metrics(double stmts, double fan)
{
    MetricValues v{};
    v[static_cast<size_t>(Metric::Stmts)] = stmts;
    v[static_cast<size_t>(Metric::FanInLC)] = fan;
    return v;
}

TEST(Reuse, AafFormulaKnownValues)
{
    // 0.4 DM + 0.3 CM + 0.3 IM.
    ReuseFactors half{0.5, 0.5, 0.5, 0.05};
    EXPECT_NEAR(adaptationAdjustment(half), 0.5, 1e-12);
    ReuseFactors full{1.0, 1.0, 1.0, 0.05};
    EXPECT_NEAR(adaptationAdjustment(full), 1.0, 1e-12);
    ReuseFactors design_only{1.0, 0.0, 0.0, 0.0};
    EXPECT_NEAR(adaptationAdjustment(design_only), 0.4, 1e-12);
}

TEST(Reuse, UnmodifiedReuseIsNotFree)
{
    // Paper: "Integrating a reused component incurs some design
    // effort, even if it requires no modification at all."
    ReuseFactors untouched{0.0, 0.0, 0.0, 0.05};
    EXPECT_DOUBLE_EQ(adaptationAdjustment(untouched), 0.05);
}

TEST(Reuse, MonotoneInEachFactor)
{
    ReuseFactors base{0.2, 0.2, 0.2, 0.05};
    double aaf = adaptationAdjustment(base);
    for (int which = 0; which < 3; ++which) {
        ReuseFactors more = base;
        if (which == 0)
            more.designModified = 0.6;
        else if (which == 1)
            more.codeModified = 0.6;
        else
            more.integration = 0.6;
        EXPECT_GT(adaptationAdjustment(more), aaf);
    }
}

TEST(Reuse, RejectsOutOfRange)
{
    ReuseFactors bad{1.5, 0.0, 0.0, 0.05};
    EXPECT_THROW(adaptationAdjustment(bad), UcxError);
    ReuseFactors neg{0.0, -0.1, 0.0, 0.05};
    EXPECT_THROW(adaptationAdjustment(neg), UcxError);
}

TEST(Reuse, ReusedPredictionScalesFreshPrediction)
{
    FittedEstimator dee1 = fitDee1(paperDataset());
    MetricValues v = dee1Metrics(1200, 8000);
    double fresh = dee1.predictMedian(v);
    ReuseFactors factors{0.25, 0.5, 0.3, 0.05};
    double reused = predictReusedMedian(dee1, v, factors);
    EXPECT_NEAR(reused, fresh * adaptationAdjustment(factors),
                1e-12);
    EXPECT_LT(reused, fresh);
}

TEST(Reuse, MixedDesignSumsComponents)
{
    FittedEstimator dee1 = fitDee1(paperDataset());
    std::vector<MetricValues> fresh = {dee1Metrics(900, 6000),
                                       dee1Metrics(400, 3000)};
    ReuseFactors factors{0.0, 0.1, 0.2, 0.05};
    std::vector<std::pair<MetricValues, ReuseFactors>> reused = {
        {dee1Metrics(2000, 15000), factors}};
    double total = predictMixedDesign(dee1, fresh, reused);
    double expect = dee1.predictMedian(fresh[0]) +
                    dee1.predictMedian(fresh[1]) +
                    predictReusedMedian(dee1, reused[0].first,
                                        factors);
    EXPECT_NEAR(total, expect, 1e-12);
}

TEST(Reuse, ReuseVsScratchCrossover)
{
    // A heavily modified reused component approaches (but never
    // exceeds) from-scratch effort.
    FittedEstimator dee1 = fitDee1(paperDataset());
    MetricValues v = dee1Metrics(1500, 9000);
    double fresh = dee1.predictMedian(v);
    for (double frac : {0.1, 0.4, 0.7, 1.0}) {
        ReuseFactors f{frac, frac, frac, 0.05};
        EXPECT_LE(predictReusedMedian(dee1, v, f), fresh + 1e-9);
    }
}

} // namespace
} // namespace ucx
