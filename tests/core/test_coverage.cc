/**
 * @file
 * Monte-Carlo coverage test of the paper's confidence-interval
 * machinery (Figure 3): when efforts truly follow the generative
 * model, the 90% interval built from the fitted sigma_eps must cover
 * roughly 90% of fresh components.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/estimator.hh"
#include "util/rng.hh"

namespace ucx
{
namespace
{

TEST(Coverage, NinetyPercentIntervalCoversAboutNinety)
{
    Rng rng(424242);
    const double w = 0.006;
    const double sigma_eps = 0.35;
    const double sigma_rho = 0.3;

    // One big calibration set keeps parameter-estimation noise out
    // of the coverage measurement.
    Dataset train;
    std::vector<double> team_b;
    for (int p = 0; p < 8; ++p) {
        double b = rng.normal(0.0, sigma_rho);
        team_b.push_back(b);
        for (int c = 0; c < 8; ++c) {
            Component comp;
            comp.project = "p" + std::to_string(p);
            comp.name = "c" + std::to_string(c);
            double stmts = rng.uniform(100.0, 5000.0);
            comp.metrics[static_cast<size_t>(Metric::Stmts)] = stmts;
            comp.effort = std::exp(b + std::log(w * stmts) +
                                   rng.normal(0.0, sigma_eps));
            train.add(comp);
        }
    }
    FittedEstimator fit = fitEstimator(train, {Metric::Stmts});

    // Fresh components from the calibrated teams: predict with the
    // estimated team rho; the interval covers the epsilon spread.
    int covered = 0;
    const int trials = 1000;
    for (int t = 0; t < trials; ++t) {
        int team = static_cast<int>(rng.below(8));
        double stmts = rng.uniform(100.0, 5000.0);
        double actual =
            std::exp(team_b[static_cast<size_t>(team)] +
                     std::log(w * stmts) +
                     rng.normal(0.0, sigma_eps));
        MetricValues v{};
        v[static_cast<size_t>(Metric::Stmts)] = stmts;
        double median = fit.predictMedian(
            v, fit.productivity("p" + std::to_string(team)));
        auto [lo, hi] = fit.confidenceInterval(median, 0.90);
        covered += actual >= lo && actual <= hi;
    }
    double rate = static_cast<double>(covered) / trials;
    // Allow for estimation error in sigma_eps and rho.
    EXPECT_GT(rate, 0.84);
    EXPECT_LT(rate, 0.96);
}

TEST(Coverage, IntervalWidthMatchesSigma)
{
    // A direct check of the Figure 3 math on synthetic data: the
    // fraction of log-errors inside +-z90 * sigma must be ~90%.
    Rng rng(7);
    const double sigma = 0.5;
    int inside = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double eps = rng.lognormal(0.0, sigma);
        // 90% factors for sigma = 0.5 are about (0.44, 2.28).
        inside += eps >= 0.4394 && eps <= 2.2756;
    }
    EXPECT_NEAR(static_cast<double>(inside) / n, 0.90, 0.01);
}

} // namespace
} // namespace ucx
