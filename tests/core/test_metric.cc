#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/metric.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(Metric, AllMetricsCount)
{
    EXPECT_EQ(allMetrics().size(), numMetrics);
    EXPECT_EQ(numMetrics, 11u);
}

TEST(Metric, NamesMatchPaperTable3)
{
    EXPECT_EQ(metricName(Metric::Stmts), "Stmts");
    EXPECT_EQ(metricName(Metric::LoC), "LoC");
    EXPECT_EQ(metricName(Metric::FanInLC), "FanInLC");
    EXPECT_EQ(metricName(Metric::Nets), "Nets");
    EXPECT_EQ(metricName(Metric::Freq), "Freq");
    EXPECT_EQ(metricName(Metric::AreaL), "AreaL");
    EXPECT_EQ(metricName(Metric::PowerD), "PowerD");
    EXPECT_EQ(metricName(Metric::PowerS), "PowerS");
    EXPECT_EQ(metricName(Metric::AreaS), "AreaS");
    EXPECT_EQ(metricName(Metric::Cells), "Cells");
    EXPECT_EQ(metricName(Metric::FFs), "FFs");
}

TEST(Metric, NamesAreUnique)
{
    std::set<std::string> names;
    for (Metric m : allMetrics())
        names.insert(metricName(m));
    EXPECT_EQ(names.size(), numMetrics);
}

TEST(Metric, LookupByNameCaseInsensitive)
{
    EXPECT_EQ(metricFromName("faninlc"), Metric::FanInLC);
    EXPECT_EQ(metricFromName("STMTS"), Metric::Stmts);
    EXPECT_EQ(metricFromName("LoC"), Metric::LoC);
}

TEST(Metric, LookupUnknownThrows)
{
    EXPECT_THROW(metricFromName("bogus"), UcxError);
}

TEST(Metric, DescriptionsAndToolsNonEmpty)
{
    for (Metric m : allMetrics()) {
        EXPECT_FALSE(metricDescription(m).empty());
        EXPECT_FALSE(metricTool(m).empty());
    }
}

TEST(Metric, SelectMetricsOrdersBySelection)
{
    MetricValues v{};
    v[static_cast<size_t>(Metric::Stmts)] = 10.0;
    v[static_cast<size_t>(Metric::FanInLC)] = 20.0;
    auto sel = selectMetrics(v, {Metric::FanInLC, Metric::Stmts});
    ASSERT_EQ(sel.size(), 2u);
    EXPECT_DOUBLE_EQ(sel[0], 20.0);
    EXPECT_DOUBLE_EQ(sel[1], 10.0);
}

} // namespace
} // namespace ucx
