/**
 * @file
 * Tests of the accounting procedure (paper Section 2.2) and the full
 * measurement driver.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "core/measure.hh"
#include "designs/registry.hh"

namespace ucx
{
namespace
{

double
metric(const ComponentMeasurement &m, Metric which)
{
    return m.metrics[static_cast<size_t>(which)];
}

TEST(Minimize, PicksSmallestNonDegenerateWidth)
{
    // The replication {(W-1){1'b0}} makes W = 1 fail to elaborate;
    // the minimal non-degenerate W is 2.
    Design d = shippedDesign("alu").load();
    auto params = minimizeParameters(d, "alu");
    ASSERT_EQ(params.count("W"), 1u);
    EXPECT_EQ(params.at("W"), 2);
}

TEST(Minimize, LoopBoundParametersScaleToOne)
{
    Design d;
    d.addSource(
        "module m #(parameter N = 8) (input wire [N-1:0] a, "
        "output wire [N-1:0] y);\n"
        "  genvar g;\n"
        "  generate\n"
        "    for (g = 0; g < N; g = g + 1) begin : l\n"
        "      assign y[g] = ~a[g];\n"
        "    end\n"
        "  endgenerate\n"
        "endmodule");
    auto params = minimizeParameters(d, "m");
    EXPECT_EQ(params.at("N"), 1);
}

TEST(Minimize, GenerateIfGuardKeepsParameterAboveThreshold)
{
    // The wide branch only exists when W > 4; minimizing below 5
    // would lose it.
    Design d;
    d.addSource(
        "module m #(parameter W = 16) (input wire [W-1:0] a, "
        "output wire y);\n"
        "  if (W > 4) begin\n"
        "    assign y = ^a;\n"
        "  end else begin\n"
        "    assign y = a[0];\n"
        "  end\n"
        "endmodule");
    auto params = minimizeParameters(d, "m");
    EXPECT_EQ(params.at("W"), 5);
}

TEST(Minimize, ModuleWithoutParamsEmpty)
{
    Design d;
    d.addSource("module m (input wire a, output wire y);\n"
                "  assign y = ~a;\nendmodule");
    EXPECT_TRUE(minimizeParameters(d, "m").empty());
}

TEST(Measure, SourceMetricsIndependentOfAccounting)
{
    Design d = shippedDesign("exec_cluster").load();
    auto with =
        measureComponent(d, "exec_cluster",
                         AccountingMode::WithProcedure);
    auto without =
        measureComponent(d, "exec_cluster",
                         AccountingMode::WithoutProcedure);
    EXPECT_DOUBLE_EQ(metric(with, Metric::LoC),
                     metric(without, Metric::LoC));
    EXPECT_DOUBLE_EQ(metric(with, Metric::Stmts),
                     metric(without, Metric::Stmts));
    EXPECT_GT(metric(with, Metric::LoC), 0.0);
}

TEST(Measure, AccountingShrinksReplicatedDesigns)
{
    // exec_cluster instantiates four ALUs; with the accounting
    // procedure the ALU is counted once at minimal parameters, so
    // every synthesis metric shrinks.
    Design d = shippedDesign("exec_cluster").load();
    auto with =
        measureComponent(d, "exec_cluster",
                         AccountingMode::WithProcedure);
    auto without =
        measureComponent(d, "exec_cluster",
                         AccountingMode::WithoutProcedure);
    for (Metric m : {Metric::FanInLC, Metric::Nets, Metric::Cells,
                     Metric::AreaL}) {
        EXPECT_LT(metric(with, m), metric(without, m))
            << metricName(m);
    }
    EXPECT_EQ(with.moduleCounts.at("alu"), 4u);
}

TEST(Measure, AccountingNeutralForFlatDesigns)
{
    // The decoder has no parameters to shrink and no replicated
    // instances: both accountings agree.
    Design d = shippedDesign("decoder").load();
    auto with = measureComponent(d, "decoder",
                                 AccountingMode::WithProcedure);
    auto without = measureComponent(
        d, "decoder", AccountingMode::WithoutProcedure);
    // W is the only parameter; the decoder hard-codes 32-bit field
    // positions, so its minimal W is close to the default and the
    // difference is small.
    double ratio = metric(without, Metric::Nets) /
                   std::max(metric(with, Metric::Nets), 1.0);
    EXPECT_LT(ratio, 1.5);
}

TEST(Measure, ModuleCountsCoverHierarchy)
{
    Design d = shippedDesign("pipeline").load();
    auto m = measureComponent(d, "pipeline");
    EXPECT_EQ(m.moduleCounts.at("pipeline"), 1u);
    EXPECT_EQ(m.moduleCounts.at("alu"), 1u);
    EXPECT_EQ(m.moduleCounts.at("decoder"), 1u);
    EXPECT_EQ(m.moduleCounts.at("regfile"), 1u);
    // All four types were measured.
    EXPECT_EQ(m.measuredParams.size(), 4u);
}

TEST(Measure, MinimizedParamsRecorded)
{
    Design d = shippedDesign("mmu_lite").load();
    auto m = measureComponent(d, "mmu_lite");
    const auto &params = m.measuredParams.at("mmu_lite");
    // ENTRIES minimizes below its default of 8.
    EXPECT_LT(params.at("ENTRIES"), 8);
    EXPECT_GE(params.at("ENTRIES"), 1);
}

TEST(Measure, FrequencyIsMinOverModules)
{
    Design d = shippedDesign("pipeline").load();
    auto whole = measureComponent(d, "pipeline");
    // The component frequency cannot exceed the slowest measured
    // module; sanity: it is positive and below 2 GHz.
    EXPECT_GT(metric(whole, Metric::Freq), 1.0);
    EXPECT_LT(metric(whole, Metric::Freq), 2000.0);
}

} // namespace
} // namespace ucx
