/**
 * @file
 * warm_restart — fixture driver of the disk-tier warm-restart test.
 *
 * Runs a representative measure → fit workload through an
 * EstimationSession (honoring UCX_CACHE_DIR and UCX_THREADS) and
 * prints a deterministic summary to stdout. Run twice against the
 * same fresh cache directory by tools/warm_restart.cmake, which then
 * asserts:
 *
 *   - both runs' stdout is byte-identical (a disk hit feeds the
 *     pipeline exactly the bytes a recompute would);
 *   - the second run recomputed zero synthesis passes and took
 *     every artifact from disk.
 *
 * Pass/disk statistics go to the --stats file as "name=value" lines
 * so the assertion never disturbs the stdout under comparison.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "engine/session.hh"
#include "obs/metrics.hh"
#include "util/error.hh"
#include "util/str.hh"

using namespace ucx;

namespace
{

/** Sum of all "synth.pass.*<suffix>" counters. */
uint64_t
sumPassCounters(const obs::MetricsSnapshot &snapshot,
                const std::string &suffix)
{
    uint64_t total = 0;
    for (const auto &c : snapshot.counters) {
        if (c.name.rfind("synth.pass.", 0) == 0 &&
            c.name.size() >= suffix.size() &&
            c.name.compare(c.name.size() - suffix.size(),
                           suffix.size(), suffix) == 0) {
            total += c.value;
        }
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string stats_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--stats" && i + 1 < argc) {
            stats_path = argv[++i];
        } else {
            std::cerr << "usage: warm_restart --stats FILE\n";
            return 2;
        }
    }

    // The pass-recompute counters below only tick while obs
    // collection is on; force it so the harness need not export
    // UCX_OBS (which would also change bench-style outputs).
    obs::setEnabled(true);

    try {
        EstimationSession session;

        // Measure: a hierarchical design through the full pipeline.
        ComponentMeasurement fetch =
            session.measureShipped("fetch");
        std::cout << "fetch";
        for (double v : fetch.metrics)
            std::cout << " " << fmtCompact(v, 6);
        std::cout << "\n";

        // Build: every shipped design through the pass manager.
        for (const BuiltDesign &built : session.buildShipped()) {
            std::cout << built.name << " luts="
                      << built.metrics.luts
                      << " freq=" << fmtFixed(built.metrics.freqMHz, 3)
                      << " fanInLC=" << built.metrics.fanInLC << "\n";
        }

        // Lint: runs the dfa pass, whose DfaSummary artifact must
        // round-trip the disk tier like any synthesis artifact.
        LintReport lint = session.lintShipped("fetch");
        std::cout << "lint fetch findings=" << lint.size()
                  << " warnings="
                  << lint.count(LintSeverity::Warning)
                  << " notes=" << lint.count(LintSeverity::Note)
                  << "\n";

        // Fit: the recommended DEE1 (pooled mode keeps the fixture
        // fast; the FittedEstimator artifact still round-trips the
        // disk tier).
        FittedEstimator dee1 =
            session.fit(EstimatorSpec::dee1(FitMode::Pooled));
        std::cout << "dee1 sigma=" << fmtCompact(dee1.sigmaEps(), 6);
        for (double w : dee1.weights())
            std::cout << " w=" << fmtCompact(w, 6);
        std::cout << "\n";

        if (!stats_path.empty()) {
            obs::MetricsSnapshot snapshot =
                obs::Registry::instance().snapshot();
            ArtifactCache::Stats cache = session.cache().stats();
            std::ofstream out(stats_path, std::ios::trunc);
            out << "pass_runs="
                << sumPassCounters(snapshot, ".runs") << "\n"
                << "pass_cache_hits="
                << sumPassCounters(snapshot, ".cache_hits") << "\n"
                << "disk_hits=" << cache.diskHits << "\n"
                << "disk_misses=" << cache.diskMisses << "\n"
                << "disk_writes=" << cache.diskWrites << "\n"
                << "disk_corrupt=" << cache.diskCorrupt << "\n"
                << "disk_bytes=" << cache.diskBytes << "\n";
            if (!out) {
                std::cerr << "warm_restart: cannot write "
                          << stats_path << "\n";
                return 2;
            }
        }
    } catch (const UcxError &e) {
        std::cerr << "warm_restart: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
