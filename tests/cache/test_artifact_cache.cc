/**
 * @file
 * Tests of the content-addressed ArtifactCache and CacheKey: typed
 * roundtrips, LRU eviction, first-insert-wins, the disabled path,
 * key construction (distinct parameter bindings never alias), and
 * thread safety of concurrent memoization.
 */

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/artifact_cache.hh"
#include "cache/key.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

TEST(CacheKey, BuildsCanonicalString)
{
    CacheKey key("elab");
    key.add("alu");
    key.add(int64_t{7});
    EXPECT_EQ(key.str(), "elab|alu|7");
    EXPECT_FALSE(key.empty());
    EXPECT_TRUE(CacheKey().empty());
}

TEST(CacheKey, ParamsAreVerbatimSoDistinctBindingsNeverAlias)
{
    // The binding is serialized, not hashed: two different
    // parameterizations cannot collide by construction.
    CacheKey a("elab");
    a.addParams({{"W", 8}, {"DEPTH", 4}});
    CacheKey b("elab");
    b.addParams({{"W", 4}, {"DEPTH", 8}});
    CacheKey c("elab");
    c.addParams({{"W", 8}, {"DEPTH", 4}});
    EXPECT_NE(a.str(), b.str());
    EXPECT_EQ(a.str(), c.str());
    EXPECT_NE(a.str().find("W=8"), std::string::npos);
}

TEST(CacheKey, ChildExtendsParent)
{
    CacheKey base("synth");
    base.addHash(0x1234u);
    CacheKey child = base.child("lower");
    EXPECT_NE(child.str(), base.str());
    EXPECT_EQ(child.str().find(base.str()), 0u);
}

TEST(Fnv1a, SeparatesNearbyInputs)
{
    EXPECT_NE(fnv1a("a"), fnv1a("b"));
    EXPECT_NE(fnv1aMix(1, 2.0), fnv1aMix(1, 2.5));
    EXPECT_NE(fnv1aMix(1, uint64_t{2}), fnv1aMix(2, uint64_t{1}));
    // Stable across calls (content-addressed keys must be).
    EXPECT_EQ(fnv1a("alu"), fnv1a("alu"));
}

TEST(ArtifactCache, TypedRoundtrip)
{
    ArtifactCache cache(8);
    CacheKey key("t");
    key.add("x");
    EXPECT_EQ(cache.get<int>(key), nullptr);
    cache.put<int>(key, std::make_shared<const int>(42));
    auto hit = cache.get<int>(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, 42);
}

TEST(ArtifactCache, FirstInsertWins)
{
    ArtifactCache cache(8);
    CacheKey key("t");
    key.add("x");
    cache.put<int>(key, std::make_shared<const int>(1));
    cache.put<int>(key, std::make_shared<const int>(2));
    EXPECT_EQ(*cache.get<int>(key), 1);
}

TEST(ArtifactCache, TypeMismatchPanics)
{
    ArtifactCache cache(8);
    CacheKey key("t");
    key.add("x");
    cache.put<int>(key, std::make_shared<const int>(1));
    EXPECT_THROW(cache.get<double>(key), UcxPanic);
}

TEST(ArtifactCache, EvictsLeastRecentlyUsed)
{
    ArtifactCache cache(2);
    CacheKey a("k");
    a.add("a");
    CacheKey b("k");
    b.add("b");
    CacheKey c("k");
    c.add("c");
    cache.put<int>(a, std::make_shared<const int>(1));
    cache.put<int>(b, std::make_shared<const int>(2));
    // Touch a so b becomes the LRU entry.
    EXPECT_NE(cache.get<int>(a), nullptr);
    cache.put<int>(c, std::make_shared<const int>(3));
    EXPECT_EQ(cache.get<int>(b), nullptr);
    EXPECT_NE(cache.get<int>(a), nullptr);
    EXPECT_NE(cache.get<int>(c), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ArtifactCache, DisabledCacheMissesAndDropsInserts)
{
    ArtifactCache cache(8, /*enabled=*/false);
    CacheKey key("t");
    key.add("x");
    EXPECT_FALSE(cache.enabled());
    cache.put<int>(key, std::make_shared<const int>(42));
    EXPECT_EQ(cache.get<int>(key), nullptr);
    EXPECT_EQ(cache.stats().entries, 0u);

    cache.setEnabled(true);
    cache.put<int>(key, std::make_shared<const int>(42));
    EXPECT_NE(cache.get<int>(key), nullptr);
}

TEST(ArtifactCache, GetOrComputeMemoizes)
{
    ArtifactCache cache(8);
    CacheKey key("t");
    key.add("x");
    int calls = 0;
    auto compute = [&] {
        ++calls;
        return 7;
    };
    auto first = cache.getOrCompute<int>(key, compute);
    auto second = cache.getOrCompute<int>(key, compute);
    EXPECT_EQ(*first, 7);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(first.get(), second.get()); // shared storage
    EXPECT_GE(cache.stats().hits, 1u);
}

TEST(ArtifactCache, StatsTrackHitsAndMisses)
{
    ArtifactCache cache(8);
    CacheKey key("t");
    key.add("x");
    EXPECT_EQ(cache.get<int>(key), nullptr); // miss
    cache.put<int>(key, std::make_shared<const int>(1));
    cache.get<int>(key); // hit
    ArtifactCache::Stats s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.5);
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    // Statistics survive clear().
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ArtifactCache, ConcurrentGetOrComputeIsSafeAndConsistent)
{
    // 8 threads hammer 16 keys; every thread must observe the same
    // value per key and the cache must stay structurally sound.
    ArtifactCache cache(64);
    constexpr int kThreads = 8;
    constexpr int kKeys = 16;
    constexpr int kRounds = 200;
    std::atomic<int> mismatches{0};

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int r = 0; r < kRounds; ++r) {
                int k = r % kKeys;
                CacheKey key("conc");
                key.add(int64_t{k});
                auto v = cache.getOrCompute<int>(
                    key, [&] { return k * 3; });
                if (*v != k * 3)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(cache.stats().entries, static_cast<size_t>(kKeys));
    for (int k = 0; k < kKeys; ++k) {
        CacheKey key("conc");
        key.add(int64_t{k});
        auto v = cache.get<int>(key);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, k * 3);
    }
}

} // namespace
} // namespace ucx
