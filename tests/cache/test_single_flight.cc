/**
 * @file
 * Tests of the single-flight getOrCompute contract: concurrent
 * callers of one cold key share one computation (the others wait and
 * count cache.artifact.dedup_wait), a failed flight releases the key
 * for retry, and a cold buildAll produces the same miss count at any
 * thread count — the regression pin for the dedup guarantee.
 */

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/artifact_cache.hh"
#include "cache/key.hh"
#include "designs/registry.hh"
#include "exec/context.hh"

namespace ucx
{
namespace
{

CacheKey
key(const std::string &name)
{
    CacheKey k("single_flight");
    k.add(name);
    return k;
}

TEST(SingleFlight, ConcurrentCallersComputeOnce)
{
    ArtifactCache cache(64);
    const size_t callers = 8;
    std::atomic<size_t> computes{0};
    std::atomic<size_t> waiting{0};

    // All callers line up on the same cold key; the producer holds
    // the flight open until every other caller has arrived, so the
    // dedup path is exercised deterministically.
    std::vector<std::thread> threads;
    std::vector<int> results(callers, 0);
    for (size_t t = 0; t < callers; ++t) {
        threads.emplace_back([&, t] {
            ++waiting;
            results[t] = *cache.getOrCompute<int>(key("shared"), [&] {
                ++computes;
                while (waiting.load() < callers)
                    std::this_thread::yield();
                // Give the stragglers time to block on the flight.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                return 99;
            });
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(computes.load(), 1u);
    for (int r : results)
        EXPECT_EQ(r, 99);

    ArtifactCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    // Every non-owner either waited on the flight or hit the stored
    // entry (if it arrived after publication).
    EXPECT_EQ(stats.dedupWaits + stats.hits, callers - 1);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(SingleFlight, DedupWaitCounterCounts)
{
    ArtifactCache cache(64);
    std::atomic<bool> release{false};

    std::thread owner([&] {
        cache.getOrCompute<int>(key("counted"), [&] {
            // Hold the flight open until the waiter is counted.
            while (cache.stats().dedupWaits < 1)
                std::this_thread::yield();
            release = true;
            return 1;
        });
    });
    std::thread waiter([&] {
        // Arrive strictly second: the owner is inside its producer.
        while (!release.load() && cache.stats().misses < 1)
            std::this_thread::yield();
        int v = *cache.getOrCompute<int>(key("counted"),
                                         [] { return 2; });
        EXPECT_EQ(v, 1);
    });
    owner.join();
    waiter.join();

    ArtifactCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.dedupWaits, 1u);
}

TEST(SingleFlight, FailedFlightPropagatesAndReleasesKey)
{
    ArtifactCache cache(64);
    EXPECT_THROW(cache.getOrCompute<int>(
                     key("flaky"),
                     []() -> int {
                         throw std::runtime_error("producer died");
                     }),
                 std::runtime_error);
    // The failed key is released: a retry computes (and stores).
    int v = *cache.getOrCompute<int>(key("flaky"), [] { return 7; });
    EXPECT_EQ(v, 7);
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SingleFlight, FailedFlightPropagatesToWaiters)
{
    ArtifactCache cache(64);
    std::atomic<size_t> arrived{0};
    const size_t callers = 4;
    std::atomic<size_t> threw{0};

    std::vector<std::thread> threads;
    for (size_t t = 0; t < callers; ++t) {
        threads.emplace_back([&] {
            ++arrived;
            try {
                cache.getOrCompute<int>(key("doomed"), [&]() -> int {
                    while (arrived.load() < callers)
                        std::this_thread::yield();
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(10));
                    throw std::runtime_error("shared failure");
                });
            } catch (const std::runtime_error &) {
                ++threw;
            }
        });
    }
    for (auto &th : threads)
        th.join();

    // The owner threw, and every waiter that joined the flight got
    // the same exception; late arrivals re-ran the producer (the key
    // was released) and threw on their own.
    EXPECT_EQ(threw.load(), callers);
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(SingleFlight, DisabledCacheComputesWithoutCounting)
{
    ArtifactCache cache(64, false);
    int v = *cache.getOrCompute<int>(key("off"), [] { return 5; });
    EXPECT_EQ(v, 5);
    ArtifactCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.dedupWaits, 0u);
    EXPECT_EQ(stats.entries, 0u);
}

TEST(SingleFlight, ColdBuildAllMissCountIsThreadInvariant)
{
    // The dedup regression pin: a cold whole-registry build computes
    // each artifact exactly once whether one thread walks the graph
    // or eight race over it, so the miss/entry counts are identical
    // and the serial run never dedup-waits.
    ArtifactCache serial_cache(4096);
    ExecContext serial = ExecContext::withThreads(1);
    buildAll(serial, &serial_cache);
    ArtifactCache::Stats serial_stats = serial_cache.stats();

    ArtifactCache parallel_cache(4096);
    ExecContext parallel = ExecContext::withThreads(8);
    buildAll(parallel, &parallel_cache);
    ArtifactCache::Stats parallel_stats = parallel_cache.stats();

    EXPECT_EQ(serial_stats.dedupWaits, 0u);
    EXPECT_EQ(parallel_stats.misses, serial_stats.misses);
    // A lookup that hits serially may dedup-wait in the race, but
    // the two outcomes partition the same non-miss lookups.
    EXPECT_EQ(parallel_stats.hits + parallel_stats.dedupWaits,
              serial_stats.hits + serial_stats.dedupWaits);
    EXPECT_EQ(parallel_stats.entries, serial_stats.entries);
    EXPECT_EQ(parallel_stats.evictions, 0u);
    EXPECT_EQ(serial_stats.evictions, 0u);
}

} // namespace
} // namespace ucx
