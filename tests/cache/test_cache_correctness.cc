/**
 * @file
 * The cache's core contract: caching can skip work but never change
 * a result. Every comparison here is exact (==, not near) — a cache
 * hit must be byte-identical to a recompute, cold or warm, serial
 * or through an 8-thread pool, and distinct parameter bindings must
 * never alias to each other's artifacts.
 */

#include <gtest/gtest.h>

#include "core/measure.hh"
#include "designs/registry.hh"
#include "exec/context.hh"
#include "synth/pass.hh"
#include "util/error.hh"

namespace ucx
{
namespace
{

void
expectIdentical(const ComponentMeasurement &a,
                const ComponentMeasurement &b)
{
    for (Metric m : allMetrics()) {
        size_t i = static_cast<size_t>(m);
        EXPECT_EQ(a.metrics[i], b.metrics[i]) << metricName(m);
    }
    EXPECT_EQ(a.moduleCounts, b.moduleCounts);
    EXPECT_EQ(a.measuredParams, b.measuredParams);
}

void
expectIdentical(const SynthMetrics &a, const SynthMetrics &b)
{
    EXPECT_EQ(a.gateCount, b.gateCount);
    EXPECT_EQ(a.nets, b.nets);
    EXPECT_EQ(a.ffs, b.ffs);
    EXPECT_EQ(a.cells, b.cells);
    EXPECT_EQ(a.luts, b.luts);
    EXPECT_EQ(a.lutDepth, b.lutDepth);
    EXPECT_EQ(a.fanInLC, b.fanInLC);
    EXPECT_EQ(a.fanInLCExact, b.fanInLCExact);
    EXPECT_EQ(a.freqMHz, b.freqMHz);
    EXPECT_EQ(a.freqAsicMHz, b.freqAsicMHz);
    EXPECT_EQ(a.areaLogicUm2, b.areaLogicUm2);
    EXPECT_EQ(a.areaStorageUm2, b.areaStorageUm2);
    EXPECT_EQ(a.powerDynamicMw, b.powerDynamicMw);
    EXPECT_EQ(a.powerStaticUw, b.powerStaticUw);
}

TEST(CacheCorrectness, MeasurementIdenticalCacheOnAndOff)
{
    for (const char *name : {"alu", "exec_cluster", "mmu_lite"}) {
        const ShippedDesign &sd = shippedDesign(name);
        Design design = sd.load();

        ComponentMeasurement plain =
            measureComponent(design, sd.top);

        ArtifactCache cache;
        MeasureOptions opts;
        opts.cache = &cache;
        ComponentMeasurement cached =
            measureComponent(design, sd.top, opts);
        expectIdentical(plain, cached);
    }
}

TEST(CacheCorrectness, ColdAndWarmMeasurementsIdentical)
{
    const ShippedDesign &sd = shippedDesign("issue_queue");
    Design design = sd.load();

    ArtifactCache cache;
    MeasureOptions opts;
    opts.cache = &cache;
    ComponentMeasurement cold =
        measureComponent(design, sd.top, opts);
    uint64_t misses_after_cold = cache.stats().misses;

    ComponentMeasurement warm =
        measureComponent(design, sd.top, opts);
    expectIdentical(cold, warm);

    // The warm run is answered from the cache: the whole-measurement
    // memo hits and no new misses accrue.
    EXPECT_EQ(cache.stats().misses, misses_after_cold);
    EXPECT_GT(cache.stats().hits, 0u);
}

TEST(CacheCorrectness, WithoutProcedureModeAlsoIdentical)
{
    const ShippedDesign &sd = shippedDesign("exec_cluster");
    Design design = sd.load();

    MeasureOptions plain_opts;
    plain_opts.mode = AccountingMode::WithoutProcedure;
    ComponentMeasurement plain =
        measureComponent(design, sd.top, plain_opts);

    ArtifactCache cache;
    MeasureOptions cached_opts = plain_opts;
    cached_opts.cache = &cache;
    ComponentMeasurement cached =
        measureComponent(design, sd.top, cached_opts);
    expectIdentical(plain, cached);
}

TEST(CacheCorrectness, AccountingModesNeverShareEntries)
{
    // One shared cache, both accounting modes: the mode is part of
    // the key, so the (different) results must not cross-pollute.
    const ShippedDesign &sd = shippedDesign("exec_cluster");
    Design design = sd.load();

    ArtifactCache cache;
    MeasureOptions with;
    with.cache = &cache;
    MeasureOptions without;
    without.mode = AccountingMode::WithoutProcedure;
    without.cache = &cache;

    ComponentMeasurement a = measureComponent(design, sd.top, with);
    ComponentMeasurement b =
        measureComponent(design, sd.top, without);
    // exec_cluster multiply instantiates the ALU, so flattening
    // must inflate Cells; equality would mean key aliasing.
    EXPECT_GT(b.metrics[static_cast<size_t>(Metric::Cells)],
              a.metrics[static_cast<size_t>(Metric::Cells)]);
    expectIdentical(a, measureComponent(design, sd.top, with));
    expectIdentical(b, measureComponent(design, sd.top, without));
}

TEST(CacheCorrectness, DistinctParameterBindingsNeverAlias)
{
    // Same design, same top, different parameter binding -> keys
    // differ, and a shared cache returns the right artifacts for
    // each binding (compared against uncached runs).
    const ShippedDesign &sd = shippedDesign("alu");
    Design design = sd.load();

    ElabOptions w4;
    w4.topParams["W"] = 4;
    ElabOptions w8;
    w8.topParams["W"] = 8;
    EXPECT_NE(elabCacheKey(design, sd.top, w4).str(),
              elabCacheKey(design, sd.top, w8).str());

    ArtifactCache cache;
    auto through = [&](const ElabOptions &opts,
                       ArtifactCache *c) {
        auto elab = elaborateShared(design, sd.top, opts, c);
        PipelineRun run;
        if (c) {
            run.cache = c;
            run.base = synthCacheKey(
                elabCacheKey(design, sd.top, opts), {});
        }
        return synthesizeWithPasses(elab->rtl, {}, run);
    };

    SynthMetrics cached4 = through(w4, &cache);
    SynthMetrics cached8 = through(w8, &cache);
    expectIdentical(cached4, through(w4, nullptr));
    expectIdentical(cached8, through(w8, nullptr));
    EXPECT_NE(cached4.cells, cached8.cells);

    // Warm repeats with both bindings resident stay correct.
    expectIdentical(cached4, through(w4, &cache));
    expectIdentical(cached8, through(w8, &cache));
}

TEST(CacheCorrectness, BuildAllIdenticalAcrossThreadsAndCache)
{
    std::vector<BuiltDesign> reference = buildAll();

    ArtifactCache cache;
    for (size_t threads : {size_t{1}, size_t{8}}) {
        ExecContext ctx = ExecContext::withThreads(threads);
        std::vector<BuiltDesign> built = buildAll(ctx, &cache);
        ASSERT_EQ(built.size(), reference.size());
        for (size_t i = 0; i < built.size(); ++i) {
            EXPECT_EQ(built[i].name, reference[i].name);
            expectIdentical(built[i].metrics,
                            reference[i].metrics);
        }
    }
    EXPECT_GT(cache.stats().hits, 0u); // second sweep was warm
}

TEST(CacheCorrectness, ParallelBuildSharesOneCacheSafely)
{
    // 8 workers populate one cache concurrently (cold), then a warm
    // serial pass must reproduce the same metrics from the cached
    // artifacts alone.
    ArtifactCache cache;
    ExecContext ctx = ExecContext::withThreads(8);
    std::vector<BuiltDesign> cold = buildAll(ctx, &cache);

    uint64_t misses_after_cold = cache.stats().misses;
    std::vector<BuiltDesign> warm =
        buildAll(ExecContext::serial(), &cache);
    EXPECT_EQ(cache.stats().misses, misses_after_cold);
    for (size_t i = 0; i < cold.size(); ++i)
        expectIdentical(cold[i].metrics, warm[i].metrics);
}

TEST(CacheCorrectness, MeasureErrorNamesTheComponent)
{
    Design d;
    d.addSource("module broken (input wire a, output wire y);\n"
                "  assign y = nosuchwire;\n"
                "endmodule");
    try {
        measureComponent(d, "broken");
        FAIL() << "expected UcxError";
    } catch (const UcxError &e) {
        EXPECT_NE(std::string(e.what()).find("component 'broken'"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace ucx
