/**
 * @file
 * The headline reproduction test: refit every estimator of paper
 * Table 4 on the paper's own data and compare the resulting
 * sigma_eps (and the DEE1 AIC/BIC of Section 5.1.1) against the
 * published values.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/estimator.hh"
#include "core/search.hh"
#include "data/paper_data.hh"

namespace ucx
{
namespace
{

/** Single-metric accuracy vs the published Table 4 row. */
class SingleMetricReproduction
    : public ::testing::TestWithParam<PaperSigma>
{};

TEST_P(SingleMetricReproduction, MixedSigmaNearPaper)
{
    const PaperSigma &ref = GetParam();
    FittedEstimator fit =
        fitEstimator(paperDataset(), {ref.metric});
    // Tolerance scales with the published value: the good
    // estimators should land close; the noisy ones (sigma > 1)
    // within ~15%.
    double tol = std::max(0.08, 0.15 * ref.sigmaMixed);
    EXPECT_NEAR(fit.sigmaEps(), ref.sigmaMixed, tol)
        << metricName(ref.metric);
}

TEST_P(SingleMetricReproduction, PooledSigmaNearPaper)
{
    const PaperSigma &ref = GetParam();
    FittedEstimator fit = fitEstimator(paperDataset(), {ref.metric},
                                       FitMode::Pooled);
    double tol = std::max(0.10, 0.15 * ref.sigmaPooled);
    EXPECT_NEAR(fit.sigmaEps(), ref.sigmaPooled, tol)
        << metricName(ref.metric);
}

INSTANTIATE_TEST_SUITE_P(
    Table4, SingleMetricReproduction,
    ::testing::ValuesIn(paperSigmas()),
    [](const ::testing::TestParamInfo<PaperSigma> &info) {
        return metricName(info.param.metric);
    });

TEST(Reproduction, Dee1SigmaNearPaper)
{
    FittedEstimator dee1 = fitDee1(paperDataset());
    EXPECT_NEAR(dee1.sigmaEps(), paperDee1Reference().sigmaMixed,
                0.08);
}

TEST(Reproduction, Dee1PooledSigmaNearPaper)
{
    FittedEstimator dee1 =
        fitDee1(paperDataset(), FitMode::Pooled);
    EXPECT_NEAR(dee1.sigmaEps(), paperDee1Reference().sigmaPooled,
                0.08);
}

TEST(Reproduction, Dee1InformationCriteria)
{
    // Section 5.1.1: DEE1 AIC 34.8, BIC 38.4; Stmts AIC 37.0,
    // BIC 39.7.
    FittedEstimator dee1 = fitDee1(paperDataset());
    FittedEstimator stmts =
        fitEstimator(paperDataset(), {Metric::Stmts});
    EXPECT_NEAR(dee1.aic(), paperDee1Reference().aicDee1, 2.5);
    EXPECT_NEAR(dee1.bic(), paperDee1Reference().bicDee1, 2.5);
    EXPECT_NEAR(stmts.aic(), paperDee1Reference().aicStmts, 2.5);
    EXPECT_NEAR(stmts.bic(), paperDee1Reference().bicStmts, 2.5);
    // The paper's conclusion: DEE1 fits better than Stmts alone on
    // both criteria.
    EXPECT_LT(dee1.aic(), stmts.aic());
    EXPECT_LT(dee1.bic(), stmts.bic());
}

TEST(Reproduction, GoodEstimatorsBeatBadOnes)
{
    // The paper's qualitative split: {Stmts, LoC, FanInLC, Nets}
    // are usable; {Freq, AreaL, PowerD, PowerS, AreaS, Cells, FFs}
    // are not.
    const Dataset &d = paperDataset();
    double worst_good = 0.0;
    for (Metric m : {Metric::Stmts, Metric::LoC, Metric::FanInLC,
                     Metric::Nets}) {
        worst_good = std::max(worst_good,
                              fitEstimator(d, {m}).sigmaEps());
    }
    double best_bad = 1e9;
    for (Metric m : {Metric::Freq, Metric::AreaL, Metric::PowerD,
                     Metric::PowerS, Metric::AreaS, Metric::Cells,
                     Metric::FFs}) {
        best_bad =
            std::min(best_bad, fitEstimator(d, {m}).sigmaEps());
    }
    EXPECT_LT(worst_good, best_bad);
}

TEST(Reproduction, ProductivityAdjustmentAlwaysHelps)
{
    // Section 5.2 / Table 4 last row: dropping rho degrades every
    // usable estimator.
    const Dataset &d = paperDataset();
    for (Metric m : {Metric::Stmts, Metric::LoC, Metric::FanInLC,
                     Metric::Nets, Metric::Freq}) {
        double mixed = fitEstimator(d, {m}).sigmaEps();
        double pooled =
            fitEstimator(d, {m}, FitMode::Pooled).sigmaEps();
        EXPECT_LT(mixed, pooled + 1e-6) << metricName(m);
    }
}

TEST(Reproduction, Dee1PerComponentEstimatesTrackPaper)
{
    // Figure 5: our fitted DEE1 predictions (deflated by each
    // team's productivity) should track the paper's printed DEE1
    // column.
    FittedEstimator dee1 = fitDee1(paperDataset());
    const auto &paper_est = paperDee1Estimates();
    const auto &components = paperDataset().components();
    double log_rms = 0.0;
    for (size_t i = 0; i < components.size(); ++i) {
        const Component &c = components[i];
        double mine = dee1.predictMedian(
            c.metrics, dee1.productivity(c.project));
        double ratio = mine / paper_est[i];
        log_rms += std::log(ratio) * std::log(ratio);
    }
    log_rms = std::sqrt(log_rms / components.size());
    // Within ~35% RMS of the authors' own fitted values.
    EXPECT_LT(log_rms, 0.35);
}

TEST(Reproduction, Leon3PipelineUnderestimated)
{
    // Figure 5's discussed outlier: every good estimator
    // underestimates the Leon3 pipeline (reported 24 person-months,
    // DEE1 estimate ~12.8).
    FittedEstimator dee1 = fitDee1(paperDataset());
    const Component &pipe = paperDataset().components()[0];
    ASSERT_EQ(pipe.fullName(), "Leon3-Pipeline");
    double est = dee1.predictMedian(pipe.metrics,
                                    dee1.productivity("Leon3"));
    EXPECT_LT(est, pipe.effort * 0.75);
}

TEST(Reproduction, NoAccountingDegradesSynthesisEstimators)
{
    // Section 5.3 / Figure 6: without the accounting procedure,
    // FanInLC and Nets collapse (published 1.18 and 1.07); Stmts
    // and LoC are untouched; DEE1 moves little.
    const Dataset &with = paperDataset();
    const Dataset &without = paperDatasetNoAccounting();

    double fan_with =
        fitEstimator(with, {Metric::FanInLC}).sigmaEps();
    double fan_without =
        fitEstimator(without, {Metric::FanInLC}).sigmaEps();
    EXPECT_GT(fan_without, fan_with + 0.2);
    EXPECT_NEAR(fan_without,
                paperNoAccountingReference().sigmaFanInLC, 0.35);

    double nets_without =
        fitEstimator(without, {Metric::Nets}).sigmaEps();
    EXPECT_NEAR(nets_without,
                paperNoAccountingReference().sigmaNets, 0.35);

    double stmts_with =
        fitEstimator(with, {Metric::Stmts}).sigmaEps();
    double stmts_without =
        fitEstimator(without, {Metric::Stmts}).sigmaEps();
    EXPECT_NEAR(stmts_with, stmts_without, 1e-6);

    double dee1_with = fitDee1(with).sigmaEps();
    double dee1_without = fitDee1(without).sigmaEps();
    EXPECT_LT(std::abs(dee1_without - dee1_with), 0.15);
}

TEST(Reproduction, ProductivitiesMedianAroundOne)
{
    // mu = 0 means the median team has rho = 1; with four teams the
    // fitted productivities should straddle 1.
    FittedEstimator dee1 = fitDee1(paperDataset());
    int above = 0;
    int below = 0;
    for (const auto &[team, rho] : dee1.productivities()) {
        (void)team;
        above += rho > 1.0;
        below += rho < 1.0;
    }
    EXPECT_GE(above, 1);
    EXPECT_GE(below, 1);
}

} // namespace
} // namespace ucx
