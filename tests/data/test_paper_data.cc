#include <gtest/gtest.h>

#include "data/paper_data.hh"

namespace ucx
{
namespace
{

TEST(PaperData, EighteenComponentsFourProjects)
{
    const Dataset &d = paperDataset();
    EXPECT_EQ(d.size(), 18u);
    auto projects = d.projects();
    ASSERT_EQ(projects.size(), 4u);
    EXPECT_EQ(projects[0], "Leon3");
    EXPECT_EQ(projects[1], "PUMA");
    EXPECT_EQ(projects[2], "IVM");
    EXPECT_EQ(projects[3], "RAT");
}

TEST(PaperData, ComponentCountsPerProject)
{
    const Dataset &d = paperDataset();
    EXPECT_EQ(d.filterProject("Leon3").size(), 4u);
    EXPECT_EQ(d.filterProject("PUMA").size(), 5u);
    EXPECT_EQ(d.filterProject("IVM").size(), 7u);
    EXPECT_EQ(d.filterProject("RAT").size(), 2u);
}

TEST(PaperData, SpotCheckTable4Rows)
{
    const Dataset &d = paperDataset();
    const Component &pipe = d.components()[0];
    EXPECT_EQ(pipe.fullName(), "Leon3-Pipeline");
    EXPECT_DOUBLE_EQ(pipe.effort, 24.0);
    EXPECT_DOUBLE_EQ(
        pipe.metrics[static_cast<size_t>(Metric::Stmts)], 2070.0);
    EXPECT_DOUBLE_EQ(
        pipe.metrics[static_cast<size_t>(Metric::FanInLC)], 10502.0);
    EXPECT_DOUBLE_EQ(
        pipe.metrics[static_cast<size_t>(Metric::FFs)], 1062.0);

    const Component &ivm_mem = d.components()[14];
    EXPECT_EQ(ivm_mem.fullName(), "IVM-Memory");
    EXPECT_DOUBLE_EQ(
        ivm_mem.metrics[static_cast<size_t>(Metric::Nets)], 23247.0);
    EXPECT_DOUBLE_EQ(
        ivm_mem.metrics[static_cast<size_t>(Metric::AreaS)],
        625952.0);
}

TEST(PaperData, KnownZeroFfRows)
{
    // IVM-Decode and IVM-Execute report zero flip-flops in Table 4;
    // the Drop policy removes exactly those two rows, while the
    // default ClampToOne keeps all 18 with the zeros floored at 1.
    const Dataset &d = paperDataset();
    auto dropped = d.usableComponents({Metric::FFs},
                                      ZeroPolicy::Drop);
    EXPECT_EQ(dropped.size(), 16u);
    for (const auto &c : dropped) {
        EXPECT_NE(c.fullName(), "IVM-Decode");
        EXPECT_NE(c.fullName(), "IVM-Execute");
    }
    auto clamped = d.usableComponents({Metric::FFs});
    EXPECT_EQ(clamped.size(), 18u);
    for (const auto &c : clamped)
        EXPECT_GE(c.metrics[static_cast<size_t>(Metric::FFs)], 1.0);
}

TEST(PaperData, Table2MatchesTable4ExceptRat)
{
    // The paper's own Table 2 and Table 4 disagree on the RAT rows
    // (0.3/0.5 vs 0.6/1.0); we preserve both as printed.
    const auto &t2 = paperTable2Efforts();
    const Dataset &d = paperDataset();
    ASSERT_EQ(t2.size(), d.size());
    for (size_t i = 0; i < t2.size(); ++i) {
        const Component &c = d.components()[i];
        EXPECT_EQ(t2[i].project, c.project);
        EXPECT_EQ(t2[i].component, c.name);
        if (c.project != "RAT") {
            EXPECT_DOUBLE_EQ(t2[i].personMonths, c.effort);
        } else {
            EXPECT_DOUBLE_EQ(t2[i].personMonths * 2.0, c.effort);
        }
    }
}

TEST(PaperData, Table1Characteristics)
{
    const auto &t1 = paperTable1();
    ASSERT_EQ(t1.size(), 3u);
    EXPECT_EQ(t1[0].name, "Leon3");
    EXPECT_EQ(t1[0].isa, "Sparc V8");
    EXPECT_EQ(t1[0].pipelineStages, 7);
    EXPECT_TRUE(t1[0].multiprocessorSupport);
    EXPECT_EQ(t1[1].name, "PUMA");
    EXPECT_EQ(t1[1].pipelineStages, 9);
    EXPECT_EQ(t1[2].name, "IVM");
    EXPECT_EQ(t1[2].branchPredictor, "Tournament");
}

TEST(PaperData, SigmaReferenceShape)
{
    const auto &sigmas = paperSigmas();
    ASSERT_EQ(sigmas.size(), numMetrics);
    // Published ordering: every pooled sigma except AreaS is worse
    // than (or equal to) the mixed sigma.
    for (const auto &s : sigmas)
        EXPECT_GE(s.sigmaPooled + 1e-9, s.sigmaMixed);
    // Stmts is the best single metric in the published table.
    EXPECT_DOUBLE_EQ(sigmas[0].sigmaMixed, 0.50);
}

TEST(PaperData, Dee1EstimatesAlignWithDataset)
{
    const auto &dee1 = paperDee1Estimates();
    ASSERT_EQ(dee1.size(), 18u);
    EXPECT_DOUBLE_EQ(dee1[0], 12.8); // Leon3-Pipeline
    EXPECT_DOUBLE_EQ(dee1[17], 1.0); // RAT-Sliding
}

TEST(PaperData, NoAccountingInflatesOnlySynthesisMetrics)
{
    const Dataset &with = paperDataset();
    const Dataset &without = paperDatasetNoAccounting();
    ASSERT_EQ(with.size(), without.size());
    for (size_t i = 0; i < with.size(); ++i) {
        const Component &a = with.components()[i];
        const Component &b = without.components()[i];
        // Source metrics identical.
        EXPECT_DOUBLE_EQ(
            a.metrics[static_cast<size_t>(Metric::Stmts)],
            b.metrics[static_cast<size_t>(Metric::Stmts)]);
        EXPECT_DOUBLE_EQ(
            a.metrics[static_cast<size_t>(Metric::LoC)],
            b.metrics[static_cast<size_t>(Metric::LoC)]);
        // Synthesis metrics never shrink; frequency never rises.
        EXPECT_GE(b.metrics[static_cast<size_t>(Metric::Nets)],
                  a.metrics[static_cast<size_t>(Metric::Nets)]);
        EXPECT_GE(b.metrics[static_cast<size_t>(Metric::Cells)],
                  a.metrics[static_cast<size_t>(Metric::Cells)]);
        EXPECT_LE(b.metrics[static_cast<size_t>(Metric::Freq)],
                  a.metrics[static_cast<size_t>(Metric::Freq)] +
                      1e-9);
    }
}

TEST(PaperData, NoAccountingConcentratedInIvm)
{
    // Paper Section 5.3: IVM is the main contributor; Leon3 has
    // practically none.
    const Dataset &with = paperDataset();
    const Dataset &without = paperDatasetNoAccounting();
    double ivm_ratio = 0.0;
    double leon_ratio = 0.0;
    int ivm_n = 0;
    int leon_n = 0;
    for (size_t i = 0; i < with.size(); ++i) {
        const Component &a = with.components()[i];
        const Component &b = without.components()[i];
        double r = b.metrics[static_cast<size_t>(Metric::Nets)] /
                   a.metrics[static_cast<size_t>(Metric::Nets)];
        if (a.project == "IVM") {
            ivm_ratio += r;
            ++ivm_n;
        } else if (a.project == "Leon3") {
            leon_ratio += r;
            ++leon_n;
        }
    }
    EXPECT_GT(ivm_ratio / ivm_n, 3.0);
    EXPECT_LT(leon_ratio / leon_n, 1.2);
}

} // namespace
} // namespace ucx
