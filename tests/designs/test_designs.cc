/**
 * @file
 * Every shipped synthetic design must parse, elaborate, lower, and
 * synthesize cleanly; spot behavioral checks run on the smaller
 * ones.
 */

#include <gtest/gtest.h>

#include "designs/registry.hh"
#include "synth/elaborate.hh"
#include "synth/metrics.hh"
#include "util/error.hh"

#include "../synth/gate_sim.hh"

namespace ucx
{
namespace
{

class ShippedDesignTest
    : public ::testing::TestWithParam<ShippedDesign>
{};

TEST_P(ShippedDesignTest, ParsesAndElaborates)
{
    const ShippedDesign &sd = GetParam();
    Design design = sd.load();
    EXPECT_TRUE(design.hasModule(sd.top));
    ElabResult r = elaborate(design, sd.top);
    EXPECT_NO_THROW(r.rtl.check());
    EXPECT_GE(r.rtl.inputs.size(), 1u);
}

TEST_P(ShippedDesignTest, SynthesizesWithPlausibleMetrics)
{
    const ShippedDesign &sd = GetParam();
    Design design = sd.load();
    ElabResult r = elaborate(design, sd.top);
    SynthMetrics m = synthesize(r.rtl);
    EXPECT_GT(m.nets, 0u);
    EXPECT_GT(m.freqMHz, 1.0);
    EXPECT_LT(m.freqMHz, 2000.0);
    EXPECT_GE(m.fanInLC, 1u);
    EXPECT_GT(m.powerStaticUw, 0.0);
    // LUT estimate and exact cone count track each other. The LUT
    // packing can undercount shared wide cones by up to ~10x
    // (several endpoints recount one shared cone), so the band is
    // loose; the quantities must still be the same order of
    // magnitude.
    double ratio = static_cast<double>(m.fanInLC) /
                   static_cast<double>(std::max<size_t>(
                       m.fanInLCExact, 1));
    EXPECT_GT(ratio, 0.05) << sd.name;
    EXPECT_LT(ratio, 12.0) << sd.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, ShippedDesignTest, ::testing::ValuesIn(shippedDesigns()),
    [](const ::testing::TestParamInfo<ShippedDesign> &info) {
        return info.param.name;
    });

TEST(DesignsRegistry, LookupByName)
{
    EXPECT_EQ(shippedDesign("alu").top, "alu");
    EXPECT_THROW(shippedDesign("nope"), UcxError);
    EXPECT_GE(shippedDesigns().size(), 12u);
}

TEST(DesignsBehavior, AluAddsAndFlags)
{
    Design d = shippedDesign("alu").load();
    RtlDesign rtl = elaborate(d, "alu").rtl;
    GateSim sim(rtl);
    sim.poke("a", 100);
    sim.poke("b", 23);
    sim.poke("op", 0); // add
    sim.eval();
    EXPECT_EQ(sim.peek("y"), 123u);
    EXPECT_EQ(sim.peek("zero"), 0u);
    sim.poke("b", 100);
    sim.poke("op", 1); // sub
    sim.eval();
    EXPECT_EQ(sim.peek("y"), 0u);
    EXPECT_EQ(sim.peek("zero"), 1u);
    sim.poke("a", 0x8000);
    sim.poke("b", 0);
    sim.poke("op", 0);
    sim.eval();
    EXPECT_EQ(sim.peek("neg"), 1u);
}

TEST(DesignsBehavior, AluComparatorAndShift)
{
    Design d = shippedDesign("alu").load();
    RtlDesign rtl = elaborate(d, "alu").rtl;
    GateSim sim(rtl);
    sim.poke("a", 5);
    sim.poke("b", 9);
    sim.poke("op", 8); // slt
    sim.eval();
    EXPECT_EQ(sim.peek("y"), 1u);
    sim.poke("op", 6); // shl 1
    sim.eval();
    EXPECT_EQ(sim.peek("y"), 10u);
}

TEST(DesignsBehavior, SerialMultiplier)
{
    Design d = shippedDesign("serial_mul").load();
    RtlDesign rtl = elaborate(d, "serial_mul").rtl;
    GateSim sim(rtl);
    sim.poke("rst", 1);
    sim.step();
    sim.poke("rst", 0);
    sim.poke("a", 123);
    sim.poke("b", 45);
    sim.poke("start", 1);
    sim.step();
    sim.poke("start", 0);
    uint64_t done = 0;
    for (int cycle = 0; cycle < 40 && !done; ++cycle) {
        sim.step();
        done = sim.peek("done");
    }
    ASSERT_EQ(done, 1u);
    EXPECT_EQ(sim.peek("product"), 123u * 45u);
}

TEST(DesignsBehavior, ExecClusterLanesIndependent)
{
    Design d = shippedDesign("exec_cluster").load();
    RtlDesign rtl = elaborate(d, "exec_cluster").rtl;
    GateSim sim(rtl);
    // Lane 0: 3+4, lane 1: 10-2, lanes 2,3: 0.
    uint64_t a = 3 | (10ull << 16);
    uint64_t b = 4 | (2ull << 16);
    uint64_t op = 0 | (1ull << 4);
    sim.poke("rst", 0);
    sim.poke("op_a_flat", a);
    sim.poke("op_b_flat", b);
    sim.poke("op_sel_flat", op);
    sim.poke("byp_a_sel_flat", 0);
    sim.eval();
    uint64_t result = sim.peek("result_flat");
    EXPECT_EQ(result & 0xffff, 7u);
    EXPECT_EQ((result >> 16) & 0xffff, 8u);
}

TEST(DesignsBehavior, DividerComputesQuotientAndRemainder)
{
    Design d = shippedDesign("div_unit").load();
    RtlDesign rtl = elaborate(d, "div_unit").rtl;
    GateSim sim(rtl);
    struct Case { uint64_t a, b; };
    sim.poke("rst", 1);
    sim.step();
    sim.poke("rst", 0);
    for (Case c : {Case{1000, 7}, Case{65535, 255}, Case{5, 9},
                   Case{42, 42}}) {
        sim.poke("dividend", c.a);
        sim.poke("divisor", c.b);
        sim.poke("start", 1);
        sim.step();
        sim.poke("start", 0);
        uint64_t done = 0;
        for (int cycle = 0; cycle < 40 && !done; ++cycle) {
            sim.step();
            done = sim.peek("done");
        }
        ASSERT_EQ(done, 1u) << c.a << "/" << c.b;
        EXPECT_EQ(sim.peek("quotient"), c.a / c.b)
            << c.a << "/" << c.b;
        EXPECT_EQ(sim.peek("remainder"), c.a % c.b)
            << c.a << "/" << c.b;
        EXPECT_EQ(sim.peek("div_by_zero"), 0u);
    }
    // Division by zero flags immediately.
    sim.poke("dividend", 10);
    sim.poke("divisor", 0);
    sim.poke("start", 1);
    sim.step();
    EXPECT_EQ(sim.peek("done"), 1u);
    EXPECT_EQ(sim.peek("div_by_zero"), 1u);
}

TEST(DesignsBehavior, ScoreboardStallsOnRawHazards)
{
    Design d = shippedDesign("scoreboard").load();
    RtlDesign rtl = elaborate(d, "scoreboard").rtl;
    GateSim sim(rtl);
    sim.poke("rst", 1);
    sim.step();
    sim.poke("rst", 0);

    // Cycle 1: slot 0 writes r5 with latency 3; no dependence.
    sim.poke("i0_valid", 1);
    sim.poke("i0_rs1", 1);
    sim.poke("i0_rs2", 2);
    sim.poke("i0_rd", 5);
    sim.poke("i0_writes", 1);
    sim.poke("i0_latency", 3);
    // Slot 1 reads r5 in the same bundle: intra-bundle stall.
    sim.poke("i1_valid", 1);
    sim.poke("i1_rs1", 5);
    sim.poke("i1_rs2", 3);
    sim.poke("i1_rd", 6);
    sim.poke("i1_writes", 1);
    sim.poke("i1_latency", 1);
    sim.eval();
    EXPECT_EQ(sim.peek("i0_stall"), 0u);
    EXPECT_EQ(sim.peek("i1_stall"), 1u);
    sim.step();

    // Next cycle: r5 still in flight; a consumer of r5 stalls.
    sim.poke("i0_rs1", 5);
    sim.poke("i0_rs2", 0);
    sim.poke("i0_rd", 7);
    sim.eval();
    EXPECT_EQ(sim.peek("i0_stall"), 1u);

    // An independent instruction does not.
    sim.poke("i0_rs1", 8);
    sim.eval();
    EXPECT_EQ(sim.peek("i0_stall"), 0u);

    // After the latency drains, the consumer proceeds.
    sim.poke("i0_valid", 0);
    sim.poke("i1_valid", 0);
    for (int i = 0; i < 4; ++i)
        sim.step();
    sim.poke("i0_valid", 1);
    sim.poke("i0_rs1", 5);
    sim.eval();
    EXPECT_EQ(sim.peek("i0_stall"), 0u);
}

TEST(DesignsStructure, PipelineInstantiatesSubmodules)
{
    Design d = shippedDesign("pipeline").load();
    ElabResult r = elaborate(d, "pipeline");
    std::map<std::string, size_t> counts;
    r.top.countModules(counts);
    EXPECT_EQ(counts["decoder"], 1u);
    EXPECT_EQ(counts["alu"], 1u);
    EXPECT_EQ(counts["regfile"], 1u);
    EXPECT_EQ(counts["pipeline"], 1u);
    // The 5-stage pipeline carries a healthy register count.
    SynthMetrics m = synthesize(r.rtl);
    EXPECT_GT(m.ffs, 100u);
}

TEST(DesignsStructure, ExecClusterReplicatesAlus)
{
    Design d = shippedDesign("exec_cluster").load();
    ElabResult r = elaborate(d, "exec_cluster");
    std::map<std::string, size_t> counts;
    r.top.countModules(counts);
    EXPECT_EQ(counts["alu"], 4u); // one per lane
}

TEST(DesignsStructure, SlidingRatBiggerThanStandard)
{
    // Matches the paper's RAT data: the sliding-window variant
    // costs more logic than the standard one.
    Design std_rat = shippedDesign("rat_standard").load();
    Design sld_rat = shippedDesign("rat_sliding").load();
    SynthMetrics m_std =
        synthesize(elaborate(std_rat, "rat_standard").rtl);
    SynthMetrics m_sld =
        synthesize(elaborate(sld_rat, "rat_sliding").rtl);
    EXPECT_GT(m_sld.fanInLC, m_std.fanInLC);
    EXPECT_GT(m_sld.areaStorageUm2, m_std.areaStorageUm2);
}

} // namespace
} // namespace ucx
