/**
 * @file
 * Quickstart: calibrate the recommended DEE1 estimator on the
 * published µComplexity dataset and estimate the design effort of a
 * new processor component from its metrics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "engine/session.hh"
#include "util/str.hh"

using namespace ucx;

int
main()
{
    // 1. Calibrate DEE1 (Stmts + FanInLC) on the paper's 18
    //    components from 4 projects. The fit returns the weights of
    //    Equation 1, the accuracy sigma_eps, and per-team
    //    productivities rho_i. The session owns the UCX_THREADS
    //    pool and the artifact cache (same numbers at any count,
    //    cached or not), and memoizes repeated fits.
    EstimationSession session;
    FittedEstimator dee1 = session.fit(EstimatorSpec::dee1());

    std::cout << "Calibrated DEE1 on the published dataset:\n"
              << "  w_Stmts   = " << fmtCompact(dee1.weights()[0], 6)
              << "\n  w_FanInLC = "
              << fmtCompact(dee1.weights()[1], 6)
              << "\n  sigma_eps = " << fmtFixed(dee1.sigmaEps(), 3)
              << " (paper: 0.46)"
              << "\n  sigma_rho = " << fmtFixed(dee1.sigmaRho(), 3)
              << "\n\n";

    // 2. Estimate a new component. Suppose your team just finished
    //    the RTL of a load-store unit: 1500 HDL statements, logic
    //    cones summing to 9000 fan-ins.
    MetricValues lsu{};
    lsu[static_cast<size_t>(Metric::Stmts)] = 1500;
    lsu[static_cast<size_t>(Metric::FanInLC)] = 9000;

    // With no calibration data for your team yet, use rho = 1
    // (a median-productivity team).
    Prediction p = session.predict(dee1, lsu);
    double median = p.median;
    double mean = p.mean;
    double lo = p.lo90;
    double hi = p.hi90;

    std::cout << "Estimate for a new load-store unit "
              << "(Stmts=1500, FanInLC=9000):\n"
              << "  median effort: " << fmtFixed(median, 1)
              << " person-months\n"
              << "  mean effort:   " << fmtFixed(mean, 1)
              << " person-months (Eq. 4)\n"
              << "  90% interval:  [" << fmtFixed(lo, 1) << ", "
              << fmtFixed(hi, 1) << "] person-months\n\n";

    // 3. If the designing team is known to be fast (rho > 1) or
    //    slow (rho < 1), Equation 1 divides by rho.
    std::cout << "Same component by a rho = 0.7 team: "
              << fmtFixed(dee1.predictMedian(lsu, 0.7), 1)
              << " person-months\n";
    std::cout << "Same component by a rho = 1.4 team: "
              << fmtFixed(dee1.predictMedian(lsu, 1.4), 1)
              << " person-months\n";
    return 0;
}
