/**
 * @file
 * The Section 3.1.1 usage loop: a project starts with no
 * team-specific calibration, assumes rho = 1, and re-fits the model
 * as components complete verification, converging on the team's
 * true productivity and sharpening the estimates for the remaining
 * components.
 *
 * The "true" team simulated here is 1.6x slower than the median
 * (rho = 0.625); watch the tracker discover that.
 */

#include <cmath>
#include <iostream>

#include "core/tracker.hh"
#include "engine/session.hh"
#include "util/rng.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

namespace
{

MetricValues
makeMetrics(double stmts, double fan)
{
    MetricValues v{};
    v[static_cast<size_t>(Metric::Stmts)] = stmts;
    v[static_cast<size_t>(Metric::FanInLC)] = fan;
    return v;
}

} // namespace

int
main()
{
    const double true_rho = 0.625; // slower-than-median team

    // Past-project history: the published dataset.
    EstimationSession session;
    ProductivityTracker tracker(session.accountedDataset(),
                                "NewCore");

    // The plan: eight components, measured up front (metrics are
    // available at RTL-complete, long before verification ends).
    struct Planned
    {
        const char *name;
        double stmts;
        double fan;
    };
    const Planned plan[] = {
        {"Fetch", 900, 7000},   {"Decode", 700, 2500},
        {"Rename", 600, 3500},  {"Issue", 800, 8000},
        {"Execute", 1400, 12000}, {"Memory", 1100, 9000},
        {"Retire", 500, 4000},  {"DebugUnit", 300, 1500},
    };

    std::cout << "Initial estimates (no team history, rho = 1):\n\n";
    std::vector<PendingComponent> pending;
    for (const Planned &p : plan)
        pending.push_back({p.name, makeMetrics(p.stmts, p.fan)});
    Table t0({"Component", "median PM", "90% interval"});
    t0.setAlign(2, Align::Left);
    for (const auto &e : tracker.estimate(pending)) {
        t0.addRow({e.name, fmtFixed(e.median, 1),
                   "[" + fmtFixed(e.low90, 1) + ", " +
                       fmtFixed(e.high90, 1) + "]"});
    }
    std::cout << t0.render() << "\n";

    // Components complete one by one; the team's actual efforts are
    // drawn from the generative model with the true rho.
    Rng rng(2005);
    std::cout << "Completing components and re-calibrating "
                 "(true rho = "
              << fmtFixed(true_rho, 3) << "):\n\n";
    Table tc({"After completing", "rho estimate",
              "median PM for 'Execute'"});
    const FittedEstimator &initial = tracker.estimator();
    for (size_t i = 0; i < 5; ++i) {
        const Planned &p = plan[i];
        MetricValues metrics = makeMetrics(p.stmts, p.fan);
        double typical = initial.predictMedian(metrics, 1.0);
        double actual = typical / true_rho *
                        rng.lognormal(0.0, 0.25);
        tracker.completeComponent(p.name, metrics, actual);

        std::vector<PendingComponent> exec = {
            {"Execute", makeMetrics(1400, 12000)}};
        double est = tracker.estimate(exec)[0].median;
        tc.addRow({p.name,
                   fmtFixed(tracker.currentRho().value(), 3),
                   fmtFixed(est, 1)});
    }
    std::cout << tc.render() << "\n";

    std::cout
        << "The rho estimate shrinks toward the team's true "
           "productivity as evidence\naccumulates, and the "
           "remaining-component estimates inflate accordingly\n"
           "(a rho < 1 team needs proportionally more "
           "person-months; Eq. 1).\n";
    return 0;
}
