/**
 * @file
 * Print a Synplify-style synthesis report for a shipped component:
 * gate histogram, LUT usage (the source of the paper's FanInLC
 * estimate), and the exact logic-cone distribution — all pulled
 * from one EstimationSession::synthesisReport() call, which runs
 * the pass-manager pipeline through the session cache.
 */

#include <iostream>

#include "engine/session.hh"

using namespace ucx;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "fetch";
    EstimationSession session;
    DesignReport r = session.synthesisReport(name);
    std::cout << "Synthesis report for '" << r.name << "' ("
              << r.description << ")\n\n";

    for (const auto &warning : r.warnings)
        std::cout << "  warning: " << warning << "\n";

    std::cout << r.report.render() << "\n";

    std::cout << "FPGA: " << static_cast<int>(r.fpga.freqMHz)
              << " MHz (" << r.fpga.criticalPathNs << " ns)  ASIC: "
              << static_cast<int>(r.asic.freqMHz) << " MHz ("
              << r.asic.criticalPathNs << " ns)\n";
    return 0;
}
