/**
 * @file
 * Print a Synplify-style synthesis report for a shipped component:
 * gate histogram, LUT usage (the source of the paper's FanInLC
 * estimate), and the exact logic-cone distribution.
 */

#include <iostream>

#include "designs/registry.hh"
#include "synth/elaborate.hh"
#include "synth/lower.hh"
#include "synth/report.hh"
#include "synth/timing.hh"

using namespace ucx;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "fetch";
    const ShippedDesign &sd = shippedDesign(name);
    std::cout << "Synthesis report for '" << sd.name << "' ("
              << sd.description << ")\n\n";

    Design design = sd.load();
    ElabResult elab = elaborate(design, sd.top);
    for (const auto &warning : elab.warnings)
        std::cout << "  warning: " << warning << "\n";

    Netlist netlist = lowerToGates(elab.rtl);
    SynthReport report = buildReport(netlist);
    std::cout << report.render() << "\n";

    TimingReport fpga = staFpga(mapToLuts(netlist));
    TimingReport asic = staAsic(netlist);
    std::cout << "FPGA: " << static_cast<int>(fpga.freqMHz)
              << " MHz (" << fpga.criticalPathNs << " ns)  ASIC: "
              << static_cast<int>(asic.freqMHz) << " MHz ("
              << asic.criticalPathNs << " ns)\n";
    return 0;
}
