/**
 * @file
 * The Section 3.1.1 "continuously updated database" as a file:
 * persist the calibration dataset as CSV, append a freshly measured
 * and completed component, reload, and refit — the workflow an
 * organization would run across projects and years.
 */

#include <iostream>

#include "core/database.hh"
#include "engine/session.hh"
#include "util/str.hh"

using namespace ucx;

int
main()
{
    const std::string path = "/tmp/ucomplexity_calibration.csv";

    // Seed the database with the published dataset.
    EstimationSession session;
    saveDatasetFile(session.accountedDataset(), path);
    std::cout << "Wrote calibration database: " << path << "\n";

    // A new component completes: measure its RTL and record the
    // reported effort next to the metrics.
    ComponentMeasurement m = session.measureShipped("fetch");

    Dataset db = loadDatasetFile(path);
    Component done;
    done.project = "NewCore";
    done.name = "Fetch";
    done.metrics = m.metrics;
    done.effort = 1.1; // person-months reported by the team
    db.add(done);
    saveDatasetFile(db, path);
    std::cout << "Appended NewCore-Fetch (Stmts="
              << fmtCompact(
                     m.metrics[static_cast<size_t>(Metric::Stmts)],
                     0)
              << ", FanInLC="
              << fmtCompact(m.metrics[static_cast<size_t>(
                                Metric::FanInLC)],
                            0)
              << ", effort=1.1 PM) and saved.\n\n";

    // Any later session reloads and refits.
    Dataset reloaded = loadDatasetFile(path);
    FittedEstimator dee1 =
        session.fitOn(reloaded, EstimatorSpec::dee1());
    std::cout << "Refit DEE1 on " << reloaded.size()
              << " components:\n"
              << "  sigma_eps       = "
              << fmtFixed(dee1.sigmaEps(), 3) << "\n"
              << "  rho(NewCore)    = "
              << fmtFixed(dee1.productivity("NewCore"), 2) << "\n"
              << "  rho(Leon3)      = "
              << fmtFixed(dee1.productivity("Leon3"), 2) << "\n";
    return 0;
}
