/**
 * @file
 * End-to-end scenario: measure a real (µHDL) RTL component with the
 * full pipeline — parse, apply the Section 2.2 accounting procedure,
 * synthesize — then feed the measured metrics into a DEE1 estimator
 * calibrated on the published dataset.
 *
 * This is the workflow the paper proposes for early estimation: the
 * metrics are measurable as soon as a module is written, 1-2 years
 * before RTL verification completes (Figure 1).
 */

#include <iostream>

#include "engine/session.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    EstimationSession session;
    FittedEstimator dee1 = session.fit(EstimatorSpec::dee1());

    std::cout << "Measuring shipped uHDL components and estimating "
                 "their design effort\n(DEE1 calibrated on the "
                 "published dataset, rho = 1):\n\n";

    Table t({"Component", "Stmts", "FanInLC", "median PM",
             "90% interval", "module types"});
    t.setAlign(4, Align::Left);
    for (const char *name :
         {"alu", "decoder", "regfile", "fetch", "cache_ctrl",
          "memctrl", "issue_queue", "rob", "lsq", "exec_cluster",
          "rat_standard", "rat_sliding", "pipeline"}) {
        // Full measurement with the accounting procedure: each
        // module type counted once, parameters minimized.
        ComponentMeasurement m = session.measureShipped(name);

        Prediction p = session.predict(dee1, m.metrics);
        double median = p.median;
        double lo = p.lo90;
        double hi = p.hi90;
        t.addRow({name,
                  fmtCompact(m.metrics[static_cast<size_t>(
                                 Metric::Stmts)], 0),
                  fmtCompact(m.metrics[static_cast<size_t>(
                                 Metric::FanInLC)], 0),
                  fmtFixed(median, 2),
                  "[" + fmtFixed(lo, 2) + ", " + fmtFixed(hi, 2) +
                      "]",
                  std::to_string(m.moduleCounts.size())});
    }
    std::cout << t.render() << "\n";

    // Show the accounting procedure's decisions for one component.
    ComponentMeasurement m = session.measureShipped("exec_cluster");
    std::cout << "Accounting decisions for 'exec_cluster':\n";
    for (const auto &[module, count] : m.moduleCounts) {
        std::cout << "  module '" << module << "': " << count
                  << " instance(s), measured once at params {";
        bool first = true;
        for (const auto &[p, v] : m.measuredParams.at(module)) {
            std::cout << (first ? "" : ", ") << p << "=" << v;
            first = false;
        }
        std::cout << "}\n";
    }
    std::cout << "\nNote: the absolute person-month scale borrows "
                 "the paper's calibration;\nthese synthetic "
                 "components are far smaller than the paper's "
                 "(e.g. a full\nfetch unit), so the point is the "
                 "pipeline, not the absolute numbers.\n";
    return 0;
}
