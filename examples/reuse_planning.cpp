/**
 * @file
 * Reuse planning (the paper's Section 2.5 future-work item, built
 * out in core/reuse.hh): compare the effort of a next-generation
 * design under different reuse strategies, with uncertainty bands.
 *
 * Scenario: a team plans "NewCore v2". Several v1 components can be
 * reused with varying degrees of modification; the architects want
 * to know what the reuse program is worth in person-months.
 */

#include <iostream>

#include "core/reuse.hh"
#include "engine/session.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

namespace
{

MetricValues
dee1Metrics(double stmts, double fan)
{
    MetricValues v{};
    v[static_cast<size_t>(Metric::Stmts)] = stmts;
    v[static_cast<size_t>(Metric::FanInLC)] = fan;
    return v;
}

} // namespace

int
main()
{
    EstimationSession session;
    FittedEstimator dee1 = session.fit(EstimatorSpec::dee1());

    struct Plan
    {
        const char *name;
        MetricValues metrics;
        ReuseFactors reuse; ///< Planned reuse for strategy B.
    };
    const Plan plan[] = {
        {"Fetch", dee1Metrics(1400, 15000),
         {0.30, 0.40, 0.30, 0.05}}, // new predictor, reused rest
        {"Decode", dee1Metrics(900, 4500),
         {0.05, 0.10, 0.15, 0.05}}, // ISA unchanged
        {"Rename", dee1Metrics(600, 3300),
         {0.00, 0.00, 0.10, 0.05}}, // reused untouched
        {"Issue", dee1Metrics(650, 8000),
         {0.60, 0.70, 0.50, 0.05}}, // wider window: heavy rework
        {"Execute", dee1Metrics(1000, 11000),
         {0.20, 0.25, 0.25, 0.05}},
        {"Memory", dee1Metrics(2200, 19000),
         {0.50, 0.60, 0.60, 0.05}}, // new LSQ
        {"Retire", dee1Metrics(1000, 6600),
         {0.00, 0.05, 0.10, 0.05}},
    };

    Table t({"Component", "from scratch (PM)", "AAF",
             "with reuse (PM)", "saved"});
    double scratch_total = 0.0;
    double reuse_total = 0.0;
    for (const Plan &p : plan) {
        double fresh = dee1.predictMedian(p.metrics);
        double aaf = adaptationAdjustment(p.reuse);
        double reused = predictReusedMedian(dee1, p.metrics, p.reuse);
        scratch_total += fresh;
        reuse_total += reused;
        t.addRow({p.name, fmtFixed(fresh, 1), fmtFixed(aaf, 2),
                  fmtFixed(reused, 1),
                  fmtFixed(fresh - reused, 1)});
    }
    t.addRule();
    t.addRow({"Total", fmtFixed(scratch_total, 1), "",
              fmtFixed(reuse_total, 1),
              fmtFixed(scratch_total - reuse_total, 1)});
    std::cout << t.render() << "\n";

    auto [lo_s, hi_s] =
        dee1.confidenceInterval(scratch_total, 0.90);
    auto [lo_r, hi_r] = dee1.confidenceInterval(reuse_total, 0.90);
    std::cout << "90% intervals (whole project): from scratch ["
              << fmtFixed(lo_s, 0) << ", " << fmtFixed(hi_s, 0)
              << "] PM; with reuse [" << fmtFixed(lo_r, 0) << ", "
              << fmtFixed(hi_r, 0) << "] PM.\n\n";
    std::cout
        << "Even 'free' reuse charges the minimum integration floor "
           "(5% here):\nunderstanding interfaces, hookup, and "
           "regression re-runs are never free\n(Section 2.5).\n";
    return 0;
}
