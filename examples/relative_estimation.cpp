/**
 * @file
 * Relative effort estimation (Section 3.1.1): when the team's
 * productivity is unknown and volatile, set rho = 1 and use the
 * model for *relative* statements only — "a component with an
 * estimated design effort of x is likely to take half as many
 * person-months as one with estimated design effort 2x". The paper
 * suggests using this to staff verification teams and to spot the
 * components likely to gate project completion.
 */

#include <algorithm>
#include <iostream>

#include "core/tracker.hh"
#include "engine/session.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    // Measure a full synthetic front-end + back-end, one component
    // per shipped design, with the accounting procedure.
    EstimationSession session;
    ProductivityTracker tracker(session.accountedDataset(),
                                "NewCore");

    std::vector<PendingComponent> pending;
    for (const char *name :
         {"fetch", "decoder", "rat_standard", "issue_queue",
          "exec_cluster", "lsq", "rob", "cache_ctrl"}) {
        ComponentMeasurement m = session.measureShipped(name);
        pending.push_back({name, m.metrics});
    }

    auto rel = tracker.relativeEstimate(pending);
    std::sort(rel.begin(), rel.end(),
              [](const ComponentEstimate &a,
                 const ComponentEstimate &b) {
                  return a.median > b.median;
              });

    std::cout << "Relative effort (largest component = 1.0); "
                 "suggested verification-\nengineer allocation for "
                 "a 20-person pool:\n\n";
    double total = 0.0;
    for (const auto &e : rel)
        total += e.median;
    Table t({"Component", "relative effort", "share", "engineers"});
    for (const auto &e : rel) {
        double share = e.median / total;
        t.addRow({e.name, fmtFixed(e.median, 3),
                  fmtFixed(100.0 * share, 1) + "%",
                  fmtFixed(20.0 * share, 1)});
    }
    std::cout << t.render() << "\n";

    std::cout << "Critical path candidate: '" << rel.front().name
              << "' - likely to gate completion; consider assigning "
                 "it first\n(Section 3.1.1).\n";
    return 0;
}
