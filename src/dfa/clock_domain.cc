#include "dfa/clock_domain.hh"

#include <map>
#include <set>

#include "dfa/worklist.hh"

namespace ucx
{
namespace dfa
{

namespace
{

/** @return The base name an lvalue expression assigns, or "". */
std::string
lvalueBase(const Expr &lhs)
{
    switch (lhs.kind) {
      case ExprKind::Ident:
      case ExprKind::Index:
      case ExprKind::Range:
        return lhs.name;
      default:
        return "";
    }
}

/** Invoke @p fn on every (expr, name, line) read inside @p expr. */
template <typename Fn>
void
forEachRead(const Expr &expr, Fn &&fn)
{
    if (expr.kind == ExprKind::Ident ||
        expr.kind == ExprKind::Index ||
        expr.kind == ExprKind::Range)
        fn(expr, expr.name, expr.line);
    if (expr.a)
        forEachRead(*expr.a, fn);
    if (expr.b)
        forEachRead(*expr.b, fn);
    if (expr.c)
        forEachRead(*expr.c, fn);
    for (const ExprPtr &part : expr.parts)
        forEachRead(*part, fn);
}

/** Invoke @p fn on every (expr, name, line) the statements read. */
template <typename Fn>
void
forEachStmtRead(const Stmt &stmt, Fn &&fn)
{
    if (stmt.cond)
        forEachRead(*stmt.cond, fn);
    if (stmt.subject)
        forEachRead(*stmt.subject, fn);
    if (stmt.rhs)
        forEachRead(*stmt.rhs, fn);
    if (stmt.lhs) {
        // Lvalue index / range bounds are reads too.
        if (stmt.lhs->a)
            forEachRead(*stmt.lhs->a, fn);
        if (stmt.lhs->b)
            forEachRead(*stmt.lhs->b, fn);
    }
    if (stmt.loopInit)
        forEachRead(*stmt.loopInit, fn);
    if (stmt.loopStep)
        forEachRead(*stmt.loopStep, fn);
    for (const CaseItem &item : stmt.items) {
        for (const ExprPtr &label : item.labels)
            forEachRead(*label, fn);
        if (item.body)
            forEachStmtRead(*item.body, fn);
    }
    for (const StmtPtr &child : stmt.stmts)
        forEachStmtRead(*child, fn);
    if (stmt.thenStmt)
        forEachStmtRead(*stmt.thenStmt, fn);
    if (stmt.elseStmt)
        forEachStmtRead(*stmt.elseStmt, fn);
}

/** Collect every base name the statement tree assigns. */
void
collectAssigned(const Stmt &stmt, std::set<std::string> &out)
{
    if (stmt.kind == StmtKind::Assign && stmt.lhs) {
        std::string base = lvalueBase(*stmt.lhs);
        if (!base.empty())
            out.insert(base);
    }
    for (const StmtPtr &child : stmt.stmts)
        collectAssigned(*child, out);
    if (stmt.thenStmt)
        collectAssigned(*stmt.thenStmt, out);
    if (stmt.elseStmt)
        collectAssigned(*stmt.elseStmt, out);
    for (const CaseItem &item : stmt.items)
        if (item.body)
            collectAssigned(*item.body, out);
}

/** How one name gets its value, for taint propagation. */
struct Def
{
    enum class Kind
    {
        Seq,  ///< Register: taint = {clock}, pure.
        Cont, ///< assign: taint = union of sources.
        Comb, ///< Comb always: coarse union of block reads.
    };
    Kind kind;
    std::string clock;              ///< Seq only.
    std::vector<std::string> reads; ///< Cont / Comb sources.
    bool bareIdent = false;         ///< Cont: rhs is one Ident.
};

/** Analyze one module's items (generate bodies pre-flattened). */
void
analyzeModule(const std::string &moduleName,
              const std::vector<const Item *> &items,
              ClockDomainResult &out)
{
    // ---- Gather defs, clocks, and the name universe. -----------
    std::map<std::string, std::vector<Def>> defs;
    std::set<std::string> clocks;
    struct SeqBlock
    {
        std::string clock;
        const Stmt *body;
    };
    std::vector<SeqBlock> seqBlocks;
    std::vector<const Item *> dataItems; // clock-as-data scan

    for (const Item *item : items) {
        if (item->kind == ItemKind::ContAssign) {
            dataItems.push_back(item);
            if (!item->lhs || !item->rhs)
                continue;
            std::string base = lvalueBase(*item->lhs);
            if (base.empty())
                continue;
            Def def;
            def.kind = Def::Kind::Cont;
            def.bareIdent = item->rhs->kind == ExprKind::Ident;
            std::set<std::string> reads;
            forEachRead(*item->rhs,
                        [&](const Expr &, const std::string &n,
                            int) { reads.insert(n); });
            def.reads.assign(reads.begin(), reads.end());
            defs[base].push_back(std::move(def));
        } else if (item->kind == ItemKind::Always && item->body) {
            dataItems.push_back(item);
            std::set<std::string> assigned;
            collectAssigned(*item->body, assigned);
            if (item->sequential && !item->edges.empty()) {
                const std::string &clock = item->edges[0].signal;
                clocks.insert(clock);
                seqBlocks.push_back({clock, item->body.get()});
                for (const std::string &reg : assigned) {
                    Def def;
                    def.kind = Def::Kind::Seq;
                    def.clock = clock;
                    defs[reg].push_back(std::move(def));
                    out.domains.push_back(
                        {moduleName, reg, clock});
                }
            } else if (!item->sequential) {
                std::set<std::string> reads;
                forEachStmtRead(
                    *item->body,
                    [&](const Expr &, const std::string &n, int) {
                        reads.insert(n);
                    });
                Def def;
                def.kind = Def::Kind::Comb;
                def.reads.assign(reads.begin(), reads.end());
                for (const std::string &name : assigned)
                    defs[name].push_back(def);
            }
        }
    }

    // ---- Name universe and worklist edges. ---------------------
    std::map<std::string, uint32_t> ids;
    auto idOf = [&](const std::string &name) {
        auto it = ids.find(name);
        if (it != ids.end())
            return it->second;
        uint32_t id = static_cast<uint32_t>(ids.size());
        ids.emplace(name, id);
        return id;
    };
    for (const auto &entry : defs) {
        idOf(entry.first);
        for (const Def &def : entry.second)
            for (const std::string &src : def.reads)
                idOf(src);
    }
    std::vector<const std::string *> names(ids.size());
    for (const auto &entry : ids)
        names[entry.second] = &entry.first;

    Worklist work(ids.size());
    for (const auto &entry : defs) {
        uint32_t to = ids.at(entry.first);
        for (const Def &def : entry.second)
            for (const std::string &src : def.reads)
                work.addEdge(ids.at(src), to);
    }

    // ---- Fixpoint on the (clock set, through-logic) lattice. ---
    std::vector<std::set<std::string>> taint(ids.size());
    std::vector<uint8_t> through(ids.size(), 0);
    work.pushAll();
    out.iterations += work.solve([&](uint32_t id) {
        auto it = defs.find(*names[id]);
        if (it == defs.end())
            return false; // input or undriven: stays untainted
        std::set<std::string> next;
        bool nextThrough = false;
        for (const Def &def : it->second) {
            switch (def.kind) {
              case Def::Kind::Seq:
                // A flop re-times its input: output belongs to
                // the flop's own domain, glitch-free.
                next.insert(def.clock);
                break;
              case Def::Kind::Cont:
              case Def::Kind::Comb:
                for (const std::string &src : def.reads) {
                    uint32_t sid = ids.at(src);
                    next.insert(taint[sid].begin(),
                                taint[sid].end());
                    if (through[sid])
                        nextThrough = true;
                }
                if (def.kind == Def::Kind::Comb ||
                    !def.bareIdent)
                    nextThrough = true;
                break;
            }
        }
        if (next == taint[id] &&
            nextThrough == (through[id] != 0))
            return false;
        // Union with the old state keeps the step monotone even
        // with self-referential defs.
        taint[id].insert(next.begin(), next.end());
        through[id] = through[id] || nextThrough;
        return true;
    });

    auto taintOf = [&](const std::string &name)
        -> const std::set<std::string> * {
        auto it = ids.find(name);
        return it == ids.end() ? nullptr : &taint[it->second];
    };
    auto isThrough = [&](const std::string &name) {
        auto it = ids.find(name);
        return it != ids.end() && through[it->second] != 0;
    };

    // ---- Crossings at every capturing flop. --------------------
    // Key: signal | from | to; unsynchronized verdicts win.
    std::map<std::string, ClockDomainResult::Crossing> crossings;
    for (const SeqBlock &block : seqBlocks) {
        auto record = [&](const std::string &name, int line,
                          bool synchronized) {
            const std::set<std::string> *domains = taintOf(name);
            if (!domains)
                return;
            for (const std::string &from : *domains) {
                if (from == block.clock)
                    continue;
                std::string key =
                    name + '|' + from + '|' + block.clock;
                auto it = crossings.find(key);
                if (it == crossings.end())
                    crossings.emplace(
                        key, ClockDomainResult::Crossing{
                                 moduleName, name, from,
                                 block.clock, line, synchronized});
                else if (!synchronized)
                    it->second.synchronized = false;
            }
        };
        // Bare register-to-register captures are the synchronizer
        // idiom; every other read is a raw crossing.
        std::set<const Expr *> bareRhs;
        std::vector<const Stmt *> stack = {block.body};
        while (!stack.empty()) {
            const Stmt *stmt = stack.back();
            stack.pop_back();
            if (stmt->kind == StmtKind::Assign && stmt->rhs &&
                stmt->rhs->kind == ExprKind::Ident)
                bareRhs.insert(stmt->rhs.get());
            for (const StmtPtr &child : stmt->stmts)
                stack.push_back(child.get());
            if (stmt->thenStmt)
                stack.push_back(stmt->thenStmt.get());
            if (stmt->elseStmt)
                stack.push_back(stmt->elseStmt.get());
            for (const CaseItem &item : stmt->items)
                if (item.body)
                    stack.push_back(item.body.get());
        }
        forEachStmtRead(
            *block.body,
            [&](const Expr &expr, const std::string &name,
                int line) {
                bool sync = bareRhs.count(&expr) != 0 &&
                            !isThrough(name);
                record(name, line, sync);
            });
    }
    for (auto &entry : crossings)
        out.crossings.push_back(std::move(entry.second));

    // ---- Clocks read as data. ----------------------------------
    std::set<std::string> reportedClocks;
    auto checkClockRead = [&](const Expr &,
                              const std::string &name, int line) {
        if (clocks.count(name) && !reportedClocks.count(name)) {
            reportedClocks.insert(name);
            out.clockAsData.push_back({moduleName, name, line});
        }
    };
    for (const Item *item : dataItems) {
        if (item->kind == ItemKind::ContAssign && item->rhs)
            forEachRead(*item->rhs, checkClockRead);
        else if (item->kind == ItemKind::Always && item->body)
            forEachStmtRead(*item->body, checkClockRead);
    }
}

/** Flatten items, recursing through generate bodies. */
void
flattenItems(const std::vector<ItemPtr> &items,
             std::vector<const Item *> &out)
{
    for (const ItemPtr &item : items) {
        switch (item->kind) {
          case ItemKind::GenFor:
            flattenItems(item->genBody, out);
            break;
          case ItemKind::GenIf:
            flattenItems(item->genThen, out);
            flattenItems(item->genElse, out);
            break;
          default:
            out.push_back(item.get());
            break;
        }
    }
}

} // namespace

ClockDomainResult
analyzeClockDomains(const Design &design)
{
    ClockDomainResult out;
    for (const std::string &name : design.moduleNames()) {
        std::vector<const Item *> items;
        flattenItems(design.module(name).items, items);
        analyzeModule(name, items, out);
    }
    return out;
}

} // namespace dfa
} // namespace ucx
