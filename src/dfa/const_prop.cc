#include "dfa/const_prop.hh"

#include "dfa/worklist.hh"
#include "util/error.hh"

namespace ucx
{
namespace dfa
{

namespace
{

/**
 * The combined analysis domain: node ids first, then signal ids
 * shifted past them. Signals and expression nodes constrain each
 * other (a Sig node reads a signal's state; a signal's state is its
 * driver node's value), so both live in one worklist.
 */
struct Domain
{
    explicit Domain(const RtlDesign &rtl)
        : numNodes(static_cast<uint32_t>(rtl.nodes.size()))
    {
    }

    uint32_t numNodes;

    uint32_t ofNode(NodeId node) const { return node; }
    uint32_t ofSignal(SigId sig) const { return numNodes + sig; }
    bool isNode(uint32_t id) const { return id < numNodes; }
    SigId toSignal(uint32_t id) const { return id - numNodes; }
};

/** All-ones mask of a width (widths >= 64 are saturating). */
uint64_t
onesOf(int width)
{
    if (width >= 64)
        return ~uint64_t(0);
    if (width <= 0)
        return 0;
    return (uint64_t(1) << width) - 1;
}

/** Evaluate one node from its operand/signal states. */
ConstValue
evalNode(const RtlDesign &rtl, const RtlNode &node,
         const std::vector<ConstValue> &nodes,
         const std::vector<ConstValue> &signals)
{
    // Values wider than a machine word cannot be tracked exactly;
    // treat them as runtime-dependent rather than mis-fold.
    if (node.width > 64)
        return ConstValue::top();

    auto arg = [&](size_t i) -> const ConstValue & {
        return nodes[node.args[i]];
    };
    auto mask = [&](uint64_t v) {
        return ConstValue::constant(maskToWidth(v, node.width));
    };
    // Join of a strict binary op: Bottom dominates (still
    // optimistic), then Top, else both are constants.
    auto binary = [&](auto &&op) -> ConstValue {
        const ConstValue &a = arg(0);
        const ConstValue &b = arg(1);
        if (a.isBottom() || b.isBottom())
            return ConstValue::bottom();
        if (a.isTop() || b.isTop())
            return ConstValue::top();
        return mask(op(a.value, b.value));
    };

    switch (node.op) {
      case RtlOp::Const:
        return mask(node.constVal);
      case RtlOp::Sig:
        return signals[node.sig];
      case RtlOp::Slice: {
        const ConstValue &a = arg(0);
        if (!a.isConst())
            return a;
        uint64_t v = node.lo >= 64 ? 0 : a.value >> node.lo;
        return mask(v);
      }
      case RtlOp::Concat: {
        // First operand is most significant.
        uint64_t v = 0;
        for (size_t i = 0; i < node.args.size(); ++i) {
            const ConstValue &a = arg(i);
            int w = rtl.nodes[node.args[i]].width;
            if (a.isBottom())
                return ConstValue::bottom();
            if (a.isTop() || w >= 64)
                return ConstValue::top();
            v = (v << w) | maskToWidth(a.value, w);
        }
        return mask(v);
      }
      case RtlOp::Not: {
        const ConstValue &a = arg(0);
        if (!a.isConst())
            return a;
        return mask(~a.value);
      }
      case RtlOp::And: {
        // Short-circuit: x & 0 == 0 even when x is unknown.
        const ConstValue &a = arg(0);
        const ConstValue &b = arg(1);
        if (a.equals(0) || b.equals(0))
            return mask(0);
        return binary([](uint64_t x, uint64_t y) { return x & y; });
      }
      case RtlOp::Or: {
        uint64_t ones = onesOf(node.width);
        const ConstValue &a = arg(0);
        const ConstValue &b = arg(1);
        if (a.equals(ones) || b.equals(ones))
            return mask(ones);
        return binary([](uint64_t x, uint64_t y) { return x | y; });
      }
      case RtlOp::Xor:
        return binary([](uint64_t x, uint64_t y) { return x ^ y; });
      case RtlOp::RedAnd: {
        const ConstValue &a = arg(0);
        int w = rtl.nodes[node.args[0]].width;
        if (!a.isConst())
            return a;
        return mask(maskToWidth(a.value, w) == onesOf(w) ? 1 : 0);
      }
      case RtlOp::RedOr: {
        const ConstValue &a = arg(0);
        if (!a.isConst())
            return a;
        return mask(a.value != 0 ? 1 : 0);
      }
      case RtlOp::RedXor: {
        const ConstValue &a = arg(0);
        if (!a.isConst())
            return a;
        return mask(
            static_cast<uint64_t>(__builtin_popcountll(a.value)) &
            1);
      }
      case RtlOp::LogNot: {
        const ConstValue &a = arg(0);
        if (!a.isConst())
            return a;
        return mask(a.value == 0 ? 1 : 0);
      }
      case RtlOp::Add:
        return binary([](uint64_t x, uint64_t y) { return x + y; });
      case RtlOp::Sub:
        return binary([](uint64_t x, uint64_t y) { return x - y; });
      case RtlOp::Mul:
        return binary([](uint64_t x, uint64_t y) { return x * y; });
      case RtlOp::Eq:
        return binary(
            [](uint64_t x, uint64_t y) { return x == y ? 1 : 0; });
      case RtlOp::Lt:
        return binary(
            [](uint64_t x, uint64_t y) { return x < y ? 1 : 0; });
      case RtlOp::Mux: {
        const ConstValue &sel = arg(0);
        if (sel.isBottom())
            return ConstValue::bottom();
        if (sel.isConst())
            return sel.value != 0 ? arg(1) : arg(2);
        return ConstValue::join(arg(1), arg(2));
      }
      case RtlOp::Shl: {
        const ConstValue &a = arg(0);
        const ConstValue &b = arg(1);
        if (a.equals(0))
            return mask(0);
        if (a.isBottom() || b.isBottom())
            return ConstValue::bottom();
        if (a.isTop() || b.isTop())
            return ConstValue::top();
        return mask(b.value >= 64 ? 0 : a.value << b.value);
      }
      case RtlOp::Shr: {
        const ConstValue &a = arg(0);
        const ConstValue &b = arg(1);
        if (a.equals(0))
            return mask(0);
        if (a.isBottom() || b.isBottom())
            return ConstValue::bottom();
        if (a.isTop() || b.isTop())
            return ConstValue::top();
        return mask(b.value >= 64 ? 0 : a.value >> b.value);
      }
      case RtlOp::MemRead:
        return ConstValue::top();
    }
    return ConstValue::top();
}

} // namespace

ConstPropResult
propagateConstants(const RtlDesign &rtl)
{
    Domain dom(rtl);
    ConstPropResult out;
    out.nodes.assign(rtl.nodes.size(), ConstValue::bottom());
    out.signals.assign(rtl.signals.size(), ConstValue::bottom());

    Worklist work(rtl.nodes.size() + rtl.signals.size());

    // Dependency edges: an operand node feeds its consumer node, a
    // signal feeds every Sig node reading it, and a driver node
    // feeds its signal.
    for (NodeId n = 0; n < rtl.nodes.size(); ++n) {
        const RtlNode &node = rtl.nodes[n];
        for (NodeId a : node.args)
            work.addEdge(dom.ofNode(a), dom.ofNode(n));
        if (node.op == RtlOp::Sig)
            work.addEdge(dom.ofSignal(node.sig), dom.ofNode(n));
    }
    for (SigId s = 0; s < rtl.signals.size(); ++s) {
        if (rtl.signals[s].driver != invalidNode)
            work.addEdge(dom.ofNode(rtl.signals[s].driver),
                         dom.ofSignal(s));
    }

    work.pushAll();
    std::vector<uint8_t> forceTop(rtl.signals.size(), 0);
    auto transfer = [&](uint32_t id) {
        if (dom.isNode(id)) {
            ConstValue next = ConstValue::join(
                out.nodes[id],
                evalNode(rtl, rtl.nodes[id], out.nodes,
                         out.signals));
            if (next != out.nodes[id]) {
                out.nodes[id] = next;
                return true;
            }
            return false;
        }
        SigId s = dom.toSignal(id);
        const RtlSignal &sig = rtl.signals[s];
        ConstValue next;
        if (sig.kind == SigKind::Input)
            next = ConstValue::top();
        else if (sig.driver == invalidNode)
            next = ConstValue::top(); // undriven: value undefined
        else
            next = out.nodes[sig.driver];
        if (next.isConst())
            next = ConstValue::constant(
                maskToWidth(next.value, sig.width));
        if (forceTop[s])
            next = ConstValue::top();
        next = ConstValue::join(out.signals[s], next);
        if (next != out.signals[s]) {
            out.signals[s] = next;
            return true;
        }
        return false;
    };
    out.iterations = work.solve(transfer);

    // A signal still Bottom after the solve sits in a dependency
    // cycle nothing external resolves (mutually-fed registers, a
    // pipeline whose valid chain feeds its own flush). Its value is
    // NOT known constant — only under-constrained — so conclusions
    // supported by Bottom neighbors (a reset value winning a join
    // against Bottom) would be unsound to report. Promote every
    // such signal to Top and re-solve until no Bottom signal
    // remains; genuine constants (folded by short-circuit rules,
    // not by absorption) survive the promotion.
    for (;;) {
        bool promoted = false;
        for (SigId s = 0; s < rtl.signals.size(); ++s) {
            if (out.signals[s].isBottom() && !forceTop[s]) {
                forceTop[s] = 1;
                work.push(dom.ofSignal(s));
                promoted = true;
            }
        }
        if (!promoted)
            break;
        out.iterations += work.solve(transfer);
    }

    for (const RtlNode &node : rtl.nodes) {
        if (node.op == RtlOp::Mux &&
            out.nodes[node.args[0]].isConst())
            ++out.constMuxCount;
    }
    return out;
}

} // namespace dfa
} // namespace ucx
