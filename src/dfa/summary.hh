/**
 * @file
 * DfaSummary — the cached artifact of the dataflow analyses.
 *
 * One value object holding everything the four ucx::dfa analyses
 * concluded about a design: constant signals, dead logic, reads
 * before any guaranteed write, and clock-domain structure. It is a
 * plain serializable struct (names, not SigIds, so it stays
 * meaningful without the RtlDesign it came from) registered with
 * the artifact serde registry, which makes "dfa" a first-class
 * pass: memoized in the two-tier cache and restored from disk on
 * warm restarts like any synthesis artifact. The lint layer
 * translates a summary into dfa.* findings without re-running any
 * analysis.
 */

#ifndef UCX_DFA_SUMMARY_HH
#define UCX_DFA_SUMMARY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hdl/design.hh"
#include "synth/netlist.hh"
#include "synth/rtl.hh"

namespace ucx
{

/** Everything the dataflow analyses concluded about one design. */
struct DfaSummary
{
    // ---- Constant propagation ----------------------------------
    /** One non-input signal that settled to a single constant. */
    struct ConstSignal
    {
        std::string name;   ///< Hierarchical signal name.
        uint64_t value = 0; ///< The settled value.
        int width = 1;
        uint8_t kind = 0;   ///< SigKind of the signal.
    };
    std::vector<ConstSignal> constSignals;

    /** Signals whose driver is a mux with a constant select. */
    std::vector<std::string> constMuxSignals;

    /** All mux nodes (named or not) with a constant select. */
    uint64_t constMuxCount = 0;

    // ---- Liveness ----------------------------------------------
    /** Wires whose value can never reach an observable sink. */
    std::vector<std::string> deadWires;

    /** Registers that are written but never read. */
    std::vector<std::string> deadRegs;

    /** Dead combinational gates in the lowered netlist. */
    uint64_t deadCombGates = 0;

    // ---- Reaching definitions ----------------------------------
    /** One procedural read before any guaranteed write. */
    struct ReadBeforeWrite
    {
        std::string module;
        std::string signal;
        int line = 0;
    };
    std::vector<ReadBeforeWrite> readBeforeWrite;

    // ---- Clock domains -----------------------------------------
    /** One register and the clock domain it settles in. */
    struct RegDomain
    {
        std::string module;
        std::string reg;
        std::string clock;
    };
    std::vector<RegDomain> domains;

    /** One observed clock-domain crossing. */
    struct Crossing
    {
        std::string module;
        std::string signal;
        std::string fromClock;
        std::string toClock;
        int line = 0;
        bool synchronized = false;
    };
    std::vector<Crossing> crossings;

    /** One clock read as ordinary data. */
    struct ClockData
    {
        std::string module;
        std::string clock;
        int line = 0;
    };
    std::vector<ClockData> clockAsData;

    // ---- Fixpoint accounting -----------------------------------
    uint64_t constIterations = 0;
    uint64_t livenessIterations = 0;
    uint64_t reachingIterations = 0;
    uint64_t clockIterations = 0;
};

/**
 * Run all four dataflow analyses over one design.
 *
 * @param design  Parsed design (AST-level analyses).
 * @param rtl     Elaborated design (const prop, liveness).
 * @param netlist Lowered netlist (gate-level liveness).
 * @return The combined summary, deterministically ordered.
 */
DfaSummary computeDfaSummary(const Design &design,
                             const RtlDesign &rtl,
                             const Netlist &netlist);

} // namespace ucx

#endif // UCX_DFA_SUMMARY_HH
