/**
 * @file
 * The "dfa" pipeline pass: dataflow analyses as a cached artifact.
 */

#ifndef UCX_DFA_PASS_HH
#define UCX_DFA_PASS_HH

#include "dfa/summary.hh"
#include "hdl/design.hh"
#include "synth/pass.hh"

namespace ucx
{

/**
 * @return The "dfa" pass: all four dataflow analyses into
 *         PipelineContext::dfa. Needs the "lower" artifact; the
 *         parsed design must outlive the pipeline run (the AST
 *         analyses read it directly — it is covered by the cache
 *         key, which hashes the design source).
 */
Pass dfaPass(const Design *design);

} // namespace ucx

#endif // UCX_DFA_PASS_HH
