/**
 * @file
 * ucx::dfa — clock-domain inference and CDC detection.
 *
 * Per module, every sequential always block names its clock (the
 * first edge in the sensitivity list; later edges are asynchronous
 * resets). Registers assigned under a clock belong to that clock's
 * domain, and their outputs are "pure": the flop re-times whatever
 * it captured. Domain membership then flows forward through
 * continuous assignments and combinational blocks on a
 * set-of-clocks lattice driven by the worklist engine — wires fed
 * from two domains carry both.
 *
 * A crossing is observed where a sequential block clocked by c
 * reads a value tainted by some other domain d. The classic
 * two-flop synchronizer front end — `sync <= other_domain_reg`,
 * a bare register-to-register capture with no logic in between —
 * is reported as a synchronized crossing; anything where the
 * foreign value passes through combinational logic before the
 * capturing flop is flagged unsynchronized (glitches on the logic
 * output can be latched mid-settle). Reading a clock as ordinary
 * data is reported separately.
 */

#ifndef UCX_DFA_CLOCK_DOMAIN_HH
#define UCX_DFA_CLOCK_DOMAIN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hdl/design.hh"

namespace ucx
{
namespace dfa
{

/** Fixpoint result of clock-domain inference for a design. */
struct ClockDomainResult
{
    /** One register and the clock domain it settles in. */
    struct RegDomain
    {
        std::string module;
        std::string reg;
        std::string clock;
    };

    /** One observed domain crossing at a capturing flop. */
    struct Crossing
    {
        std::string module;
        std::string signal;    ///< The value read across domains.
        std::string fromClock; ///< Domain the value is tainted by.
        std::string toClock;   ///< Domain of the capturing block.
        int line = 0;
        bool synchronized = false;
    };

    /** One read of a clock in a data expression. */
    struct ClockData
    {
        std::string module;
        std::string clock;
        int line = 0;
    };

    std::vector<RegDomain> domains;
    std::vector<Crossing> crossings;
    std::vector<ClockData> clockAsData;

    /** Transfer applications until the fixpoint. */
    uint64_t iterations = 0;
};

/**
 * Infer clock domains and find crossings in every module.
 *
 * @param design Parsed design.
 * @return Domains, crossings, and clock-as-data reads.
 */
ClockDomainResult analyzeClockDomains(const Design &design);

} // namespace dfa
} // namespace ucx

#endif // UCX_DFA_CLOCK_DOMAIN_HH
