/**
 * @file
 * ucx::dfa — reaching definitions over procedural blocks.
 *
 * A definite-assignment walk of every combinational always block:
 * a read of a name the block itself assigns, at a point where no
 * assignment is guaranteed to have executed yet, uses last
 * iteration's value — a latch in disguise that simulators and
 * synthesis disagree on. Control flow is handled structurally
 * (if joins on intersection, case joins on intersection only when
 * a default arm exists), which converges without iteration because
 * procedural µHDL has no backward branches other than for loops,
 * and those are walked under an at-least-once assumption.
 * Sequential blocks are skipped: reading a register's previous
 * value there is the whole point.
 */

#ifndef UCX_DFA_REACHING_HH
#define UCX_DFA_REACHING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hdl/design.hh"

namespace ucx
{
namespace dfa
{

/** Fixpoint result of the definite-assignment analysis. */
struct ReachingResult
{
    /** One read that can observe a stale value. */
    struct Finding
    {
        std::string module;
        std::string signal;
        int line = 0;
    };

    /** Reads before any guaranteed write, one per (block, name). */
    std::vector<Finding> findings;

    /** Statements visited until the result was stable. */
    uint64_t iterations = 0;
};

/**
 * Run definite assignment over every combinational always block.
 *
 * @param design Parsed design.
 * @return Read-before-write findings in source order.
 */
ReachingResult analyzeReachingDefs(const Design &design);

} // namespace dfa
} // namespace ucx

#endif // UCX_DFA_REACHING_HH
