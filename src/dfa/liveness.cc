#include "dfa/liveness.hh"

#include <algorithm>

#include "dfa/worklist.hh"

namespace ucx
{
namespace dfa
{

namespace
{

/**
 * Node-cone walker with epoch-stamped visited marks, so scanning
 * every signal's cone costs one allocation total instead of one
 * per signal.
 */
class ConeReader
{
  public:
    explicit ConeReader(const RtlDesign &rtl)
        : rtl_(rtl), stamp_(rtl.nodes.size(), 0)
    {
    }

    /** Collect the signals read anywhere in the cone of @p root. */
    void collect(NodeId root, std::vector<SigId> &out)
    {
        ++epoch_;
        if (root == invalidNode)
            return;
        stack_.clear();
        stack_.push_back(root);
        stamp_[root] = epoch_;
        while (!stack_.empty()) {
            NodeId n = stack_.back();
            stack_.pop_back();
            const RtlNode &node = rtl_.nodes[n];
            if (node.op == RtlOp::Sig)
                out.push_back(node.sig);
            for (NodeId a : node.args) {
                if (stamp_[a] != epoch_) {
                    stamp_[a] = epoch_;
                    stack_.push_back(a);
                }
            }
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
    }

  private:
    const RtlDesign &rtl_;
    std::vector<uint32_t> stamp_;
    std::vector<NodeId> stack_;
    uint32_t epoch_ = 0;
};

} // namespace

LivenessResult
analyzeLiveness(const RtlDesign &rtl)
{
    LivenessResult out;
    out.live.assign(rtl.signals.size(), 0);

    // reads[s]: the signals signal s's driver (or next-state) cone
    // reads; readers[r]: the inverse.
    ConeReader cones(rtl);
    std::vector<std::vector<SigId>> reads(rtl.signals.size());
    std::vector<std::vector<SigId>> readers(rtl.signals.size());
    for (SigId s = 0; s < rtl.signals.size(); ++s) {
        cones.collect(rtl.signals[s].driver, reads[s]);
        for (SigId r : reads[s])
            readers[r].push_back(s);
    }

    // Roots: primary outputs, and everything a memory write port
    // reads (writes define future state the design can observe).
    std::vector<uint8_t> root(rtl.signals.size(), 0);
    for (SigId s : rtl.outputs)
        root[s] = 1;
    {
        std::vector<SigId> portReads;
        for (const RtlMemory &mem : rtl.memories) {
            for (const MemWritePort &port : mem.writePorts) {
                cones.collect(port.addr, portReads);
                cones.collect(port.data, portReads);
                cones.collect(port.enable, portReads);
            }
        }
        for (SigId s : portReads)
            root[s] = 1;
    }

    // live(s) = root(s) or some reader of s is live; when s turns
    // live, everything s's own driver reads must be revisited.
    Worklist work(rtl.signals.size());
    for (SigId s = 0; s < rtl.signals.size(); ++s)
        for (SigId r : reads[s])
            work.addEdge(s, r);
    work.pushAll();
    out.iterations = work.solve([&](uint32_t id) {
        SigId s = id;
        if (out.live[s])
            return false;
        bool live = root[s] != 0;
        if (!live) {
            for (SigId reader : readers[s]) {
                if (out.live[reader]) {
                    live = true;
                    break;
                }
            }
        }
        if (live) {
            out.live[s] = 1;
            return true;
        }
        return false;
    });
    return out;
}

NetlistLiveness
analyzeNetlistLiveness(const Netlist &netlist)
{
    NetlistLiveness out;
    out.live.assign(netlist.gates.size(), 0);

    // Backward reachability from every endpoint: primary outputs,
    // register d-pins, memory write pins. Dff/MemOut gates are
    // traversed through (their q side feeds logic; their fanin is a
    // sequential edge but still "live" logic).
    std::vector<GateId> stack;
    auto push = [&](GateId g) {
        if (g != invalidGate && !out.live[g]) {
            out.live[g] = 1;
            stack.push_back(g);
        }
    };
    for (GateId g : netlist.outputBits)
        push(g);
    for (GateId g = 0; g < netlist.gates.size(); ++g) {
        const Gate &gate = netlist.gates[g];
        if (gate.op == GateOp::Dff || gate.op == GateOp::MemIn ||
            gate.op == GateOp::MemOut)
            push(g);
    }
    while (!stack.empty()) {
        GateId g = stack.back();
        stack.pop_back();
        ++out.iterations;
        for (GateId in : netlist.gates[g].in)
            push(in);
    }

    for (GateId g = 0; g < netlist.gates.size(); ++g) {
        const Gate &gate = netlist.gates[g];
        bool counts = gate.op == GateOp::Not ||
                      gate.op == GateOp::And ||
                      gate.op == GateOp::Or ||
                      gate.op == GateOp::Xor ||
                      gate.op == GateOp::Mux;
        if (counts && !out.live[g])
            ++out.deadCombGates;
    }
    return out;
}

} // namespace dfa
} // namespace ucx
