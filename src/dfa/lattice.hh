/**
 * @file
 * ucx::dfa — the constant lattice.
 *
 * The three-level lattice every forward constant analysis in the
 * repo shares:
 *
 *           Top  (value unknown / runtime-dependent)
 *            |
 *        Const(v) (compile-time constant v)
 *            |
 *          Bottom (no information yet — optimistic start)
 *
 * join() moves up the lattice: Bottom is the identity, two equal
 * constants stay that constant, two different constants (or anything
 * joined with Top) collapse to Top. Transfer functions are monotone
 * over this order, so a worklist iteration terminates at the least
 * fixpoint in at most 2 steps per node.
 *
 * Header-only on purpose: the gate-level const_fold pass in
 * src/synth uses the lattice without linking ucx_dfa (which itself
 * links ucx_synth).
 */

#ifndef UCX_DFA_LATTICE_HH
#define UCX_DFA_LATTICE_HH

#include <cstdint>

namespace ucx
{
namespace dfa
{

/** One value of the constant lattice. */
struct ConstValue
{
    /** Lattice level. */
    enum class Kind : uint8_t
    {
        Bottom, ///< No information yet (optimistic initial state).
        Const,  ///< Known compile-time constant.
        Top,    ///< Runtime-dependent.
    };

    Kind kind = Kind::Bottom;
    uint64_t value = 0; ///< Payload when kind == Const.

    /** @return The Bottom element. */
    static ConstValue bottom() { return {}; }

    /** @return The Top element. */
    static ConstValue top() { return {Kind::Top, 0}; }

    /** @return The constant @p v. */
    static ConstValue constant(uint64_t v)
    {
        return {Kind::Const, v};
    }

    bool isBottom() const { return kind == Kind::Bottom; }
    bool isConst() const { return kind == Kind::Const; }
    bool isTop() const { return kind == Kind::Top; }

    /** @return True when this is the constant @p v. */
    bool equals(uint64_t v) const
    {
        return kind == Kind::Const && value == v;
    }

    bool operator==(const ConstValue &o) const
    {
        return kind == o.kind &&
               (kind != Kind::Const || value == o.value);
    }
    bool operator!=(const ConstValue &o) const
    {
        return !(*this == o);
    }

    /** @return The least upper bound of @p a and @p b. */
    static ConstValue join(const ConstValue &a, const ConstValue &b)
    {
        if (a.isBottom())
            return b;
        if (b.isBottom())
            return a;
        if (a.isTop() || b.isTop())
            return top();
        return a.value == b.value ? a : top();
    }
};

/**
 * @return @p value truncated to @p width bits; widths of 64 or more
 *         (or nonpositive, which never reaches a valid node) pass
 *         the value through untouched.
 */
inline uint64_t
maskToWidth(uint64_t value, int width)
{
    if (width <= 0 || width >= 64)
        return value;
    return value & ((uint64_t(1) << width) - 1);
}

} // namespace dfa
} // namespace ucx

#endif // UCX_DFA_LATTICE_HH
