/**
 * @file
 * ucx::dfa — the generic worklist fixpoint engine.
 *
 * A dataflow analysis over n nodes is: a dependency graph (when
 * node u's state changes, which nodes must be revisited?) plus a
 * transfer function (recompute node v's state from its inputs; did
 * it change?). The engine owns the iteration strategy: a FIFO
 * worklist with an on-queue bitmap, seeded in ascending node order,
 * so a given (graph, transfer) pair always visits nodes in the same
 * sequence — the iteration count it reports is deterministic, not
 * just the fixpoint itself.
 *
 * Transfer functions must be monotone over their lattice; with a
 * finite-height lattice the engine terminates at the least fixpoint.
 * Header-only so analyses over any node type (RTL signals, netlist
 * gates, AST names) instantiate it without link dependencies.
 */

#ifndef UCX_DFA_WORKLIST_HH
#define UCX_DFA_WORKLIST_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace ucx
{
namespace dfa
{

/** FIFO worklist fixpoint driver over nodes 0 .. n-1. */
class Worklist
{
  public:
    /** Create an engine over @p n nodes with no edges. */
    explicit Worklist(size_t n) : successors_(n), queued_(n, 0) {}

    /** @return The number of nodes. */
    size_t size() const { return successors_.size(); }

    /**
     * Declare that @p to must be revisited whenever @p from 's
     * state changes.
     */
    void addEdge(uint32_t from, uint32_t to)
    {
        successors_[from].push_back(to);
    }

    /** Enqueue one node (no-op when already queued). */
    void push(uint32_t node)
    {
        if (!queued_[node]) {
            queued_[node] = 1;
            queue_.push_back(node);
        }
    }

    /** Enqueue every node, in ascending order. */
    void pushAll()
    {
        for (uint32_t node = 0; node < size(); ++node)
            push(node);
    }

    /**
     * Run to fixpoint: pop nodes until the queue drains, calling
     * @p transfer on each; when it returns true (state changed),
     * every declared successor is re-enqueued.
     *
     * @param transfer Callable bool(uint32_t node).
     * @return The number of transfer applications ("iterations").
     */
    template <typename Transfer>
    uint64_t solve(Transfer &&transfer)
    {
        uint64_t iterations = 0;
        while (!queue_.empty()) {
            uint32_t node = queue_.front();
            queue_.pop_front();
            queued_[node] = 0;
            ++iterations;
            if (transfer(node)) {
                for (uint32_t succ : successors_[node])
                    push(succ);
            }
        }
        return iterations;
    }

  private:
    std::vector<std::vector<uint32_t>> successors_;
    std::vector<uint8_t> queued_;
    std::deque<uint32_t> queue_;
};

} // namespace dfa
} // namespace ucx

#endif // UCX_DFA_WORKLIST_HH
