#include "dfa/pass.hh"

#include "util/error.hh"

namespace ucx
{

Pass
dfaPass(const Design *design)
{
    Pass pass;
    pass.name = "dfa";
    pass.deps = {"lower"};
    pass.artifactType = &typeid(DfaSummary);
    pass.run = [design](PipelineContext &ctx) {
        ensure(ctx.netlist != nullptr,
               "dfa pass needs the lowered netlist");
        ctx.dfa = std::make_shared<const DfaSummary>(
            computeDfaSummary(*design, *ctx.rtl, *ctx.netlist));
    };
    pass.save = [](const PipelineContext &ctx) {
        return std::static_pointer_cast<const void>(ctx.dfa);
    };
    pass.load = [](PipelineContext &ctx,
                   std::shared_ptr<const void> artifact) {
        ctx.dfa =
            std::static_pointer_cast<const DfaSummary>(artifact);
    };
    return pass;
}

} // namespace ucx
