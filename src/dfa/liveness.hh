/**
 * @file
 * ucx::dfa — signal liveness, at RTL and netlist level.
 *
 * Backward analyses on the boolean lattice (dead < live). The RTL
 * flavor starts from the design's observable sinks — primary
 * outputs and memory write ports — and propagates through driver
 * expressions: a signal is live only when some live consumer reads
 * it. Registers get no special treatment, so a register whose value
 * never reaches a sink is dead even though it toggles every cycle
 * (precise write-never-read detection, across the flattened module
 * hierarchy). The netlist flavor is the gate-level equivalent the
 * dead-logic lint rule and the const_fold pass both use: backward
 * reachability from output bits and every state-element pin.
 */

#ifndef UCX_DFA_LIVENESS_HH
#define UCX_DFA_LIVENESS_HH

#include <cstdint>
#include <vector>

#include "synth/netlist.hh"
#include "synth/rtl.hh"

namespace ucx
{
namespace dfa
{

/** Fixpoint result of RTL-level liveness. */
struct LivenessResult
{
    /** 1 when the signal's value can reach an observable sink. */
    std::vector<uint8_t> live;

    /** Transfer applications until the fixpoint. */
    uint64_t iterations = 0;
};

/**
 * Run backward liveness over an elaborated design.
 *
 * @param rtl Elaborated design.
 * @return Per-SigId liveness.
 */
LivenessResult analyzeLiveness(const RtlDesign &rtl);

/** Gate-level liveness of one lowered netlist. */
struct NetlistLiveness
{
    /** 1 when the gate is reachable (backward) from an endpoint. */
    std::vector<uint8_t> live;

    /** Combinational gates no endpoint can observe. */
    uint64_t deadCombGates = 0;

    /** Transfer applications until the fixpoint. */
    uint64_t iterations = 0;
};

/**
 * Backward reachability from primary outputs, flip-flops, and
 * memory pins over a gate netlist.
 *
 * @param netlist Lowered netlist.
 * @return Per-GateId liveness and the dead combinational count.
 */
NetlistLiveness analyzeNetlistLiveness(const Netlist &netlist);

} // namespace dfa
} // namespace ucx

#endif // UCX_DFA_LIVENESS_HH
