/**
 * @file
 * ucx::dfa — constant propagation over elaborated word-level RTL.
 *
 * A forward analysis on the ConstValue lattice: primary inputs and
 * memory reads start at Top, everything else at Bottom (optimistic),
 * and the worklist engine drives signal states and expression-node
 * values to the least fixpoint. Because registers start at Bottom,
 * the analysis sees through sequential feedback: a register whose
 * next-state expression always evaluates to one constant is itself
 * constant, which the purely combinational const_eval of the HDL
 * front end cannot conclude.
 */

#ifndef UCX_DFA_CONST_PROP_HH
#define UCX_DFA_CONST_PROP_HH

#include <cstdint>
#include <vector>

#include "dfa/lattice.hh"
#include "synth/rtl.hh"

namespace ucx
{
namespace dfa
{

/** Fixpoint result of constant propagation. */
struct ConstPropResult
{
    /** Final lattice value of every signal, indexed by SigId. */
    std::vector<ConstValue> signals;

    /** Final lattice value of every node, indexed by NodeId. */
    std::vector<ConstValue> nodes;

    /** Transfer applications until the fixpoint. */
    uint64_t iterations = 0;

    /** Mux nodes whose select settled to a constant. */
    uint64_t constMuxCount = 0;
};

/**
 * Run constant propagation to fixpoint.
 *
 * @param rtl Elaborated design.
 * @return Per-signal and per-node constant lattice values.
 */
ConstPropResult propagateConstants(const RtlDesign &rtl);

} // namespace dfa
} // namespace ucx

#endif // UCX_DFA_CONST_PROP_HH
