#include "dfa/reaching.hh"

#include <set>

namespace ucx
{
namespace dfa
{

namespace
{

/** @return The base name an lvalue expression assigns, or "". */
std::string
lvalueBase(const Expr &lhs)
{
    switch (lhs.kind) {
      case ExprKind::Ident:
      case ExprKind::Index:
      case ExprKind::Range:
        return lhs.name;
      default:
        return "";
    }
}

/** Invoke @p fn on every (name, line) read inside @p expr. */
template <typename Fn>
void
forEachRead(const Expr &expr, Fn &&fn)
{
    if (expr.kind == ExprKind::Ident)
        fn(expr.name, expr.line);
    if (expr.kind == ExprKind::Index ||
        expr.kind == ExprKind::Range)
        fn(expr.name, expr.line);
    if (expr.a)
        forEachRead(*expr.a, fn);
    if (expr.b)
        forEachRead(*expr.b, fn);
    if (expr.c)
        forEachRead(*expr.c, fn);
    for (const ExprPtr &part : expr.parts)
        forEachRead(*part, fn);
}

/** Collect every base name the statement tree assigns. */
void
collectAssigned(const Stmt &stmt, std::set<std::string> &out)
{
    if (stmt.kind == StmtKind::Assign && stmt.lhs) {
        std::string base = lvalueBase(*stmt.lhs);
        if (!base.empty())
            out.insert(base);
    }
    for (const StmtPtr &child : stmt.stmts)
        collectAssigned(*child, out);
    if (stmt.thenStmt)
        collectAssigned(*stmt.thenStmt, out);
    if (stmt.elseStmt)
        collectAssigned(*stmt.elseStmt, out);
    for (const CaseItem &item : stmt.items)
        if (item.body)
            collectAssigned(*item.body, out);
}

/** Walks one combinational block tracking definitely-assigned names. */
class BlockWalker
{
  public:
    BlockWalker(const std::string &module,
                const std::set<std::string> &assignedInBlock,
                ReachingResult &out)
        : module_(module), assigned_(assignedInBlock), out_(out)
    {
    }

    /** Walk @p stmt, updating @p definite in place. */
    void walk(const Stmt &stmt, std::set<std::string> &definite)
    {
        ++out_.iterations;
        switch (stmt.kind) {
          case StmtKind::Block:
            for (const StmtPtr &child : stmt.stmts)
                walk(*child, definite);
            break;
          case StmtKind::If: {
            if (stmt.cond)
                checkReads(*stmt.cond, definite);
            std::set<std::string> thenSet = definite;
            std::set<std::string> elseSet = definite;
            if (stmt.thenStmt)
                walk(*stmt.thenStmt, thenSet);
            if (stmt.elseStmt)
                walk(*stmt.elseStmt, elseSet);
            else
                elseSet = definite; // fall-through keeps old state
            // Definite after the if: assigned on both paths.
            for (const std::string &name : thenSet)
                if (elseSet.count(name))
                    definite.insert(name);
            break;
          }
          case StmtKind::Case: {
            if (stmt.subject)
                checkReads(*stmt.subject, definite);
            bool hasDefault = false;
            std::vector<std::set<std::string>> arms;
            for (const CaseItem &item : stmt.items) {
                for (const ExprPtr &label : item.labels)
                    checkReads(*label, definite);
                if (item.labels.empty())
                    hasDefault = true;
                std::set<std::string> armSet = definite;
                if (item.body)
                    walk(*item.body, armSet);
                arms.push_back(std::move(armSet));
            }
            // Without a default some value may leave the case
            // untouched, so nothing new becomes definite.
            if (hasDefault && !arms.empty()) {
                std::set<std::string> meet = arms[0];
                for (size_t i = 1; i < arms.size(); ++i) {
                    std::set<std::string> next;
                    for (const std::string &name : arms[i])
                        if (meet.count(name))
                            next.insert(name);
                    meet = std::move(next);
                }
                definite.insert(meet.begin(), meet.end());
            }
            break;
          }
          case StmtKind::Assign: {
            if (stmt.rhs)
                checkReads(*stmt.rhs, definite);
            if (stmt.lhs) {
                // Index / range bounds of the lvalue are reads.
                if (stmt.lhs->a)
                    checkReads(*stmt.lhs->a, definite);
                if (stmt.lhs->b)
                    checkReads(*stmt.lhs->b, definite);
                std::string base = lvalueBase(*stmt.lhs);
                if (!base.empty())
                    definite.insert(base);
            }
            break;
          }
          case StmtKind::For: {
            if (stmt.loopInit)
                checkReads(*stmt.loopInit, definite);
            std::set<std::string> bodySet = definite;
            bodySet.insert(stmt.loopVar);
            // Later iterations legitimately read what earlier ones
            // wrote, so inside the body every name the body assigns
            // anywhere counts as defined (optimistic).
            std::set<std::string> bodyAssigns;
            if (stmt.thenStmt)
                collectAssigned(*stmt.thenStmt, bodyAssigns);
            bodySet.insert(bodyAssigns.begin(), bodyAssigns.end());
            if (stmt.cond)
                checkReads(*stmt.cond, bodySet);
            if (stmt.thenStmt)
                walk(*stmt.thenStmt, bodySet);
            if (stmt.loopStep)
                checkReads(*stmt.loopStep, bodySet);
            // Loop bounds are compile-time constants; assume the
            // body ran at least once, so its assignments hold
            // afterwards (optimistic — avoids cascades of noise
            // from one zero-trip loop).
            definite.insert(bodyAssigns.begin(), bodyAssigns.end());
            break;
          }
        }
    }

  private:
    void checkReads(const Expr &expr,
                    const std::set<std::string> &definite)
    {
        forEachRead(expr, [&](const std::string &name, int line) {
            if (!assigned_.count(name) || definite.count(name) ||
                reported_.count(name))
                return;
            reported_.insert(name);
            out_.findings.push_back({module_, name, line});
        });
    }

    const std::string &module_;
    const std::set<std::string> &assigned_;
    ReachingResult &out_;
    std::set<std::string> reported_;
};

/** Walk one item list, recursing through generate bodies. */
void
walkItems(const std::string &module,
          const std::vector<ItemPtr> &items, ReachingResult &out)
{
    for (const ItemPtr &item : items) {
        switch (item->kind) {
          case ItemKind::Always: {
            if (item->sequential || !item->body)
                break;
            std::set<std::string> assigned;
            collectAssigned(*item->body, assigned);
            BlockWalker walker(module, assigned, out);
            std::set<std::string> definite;
            walker.walk(*item->body, definite);
            break;
          }
          case ItemKind::GenFor:
            walkItems(module, item->genBody, out);
            break;
          case ItemKind::GenIf:
            walkItems(module, item->genThen, out);
            walkItems(module, item->genElse, out);
            break;
          default:
            break;
        }
    }
}

} // namespace

ReachingResult
analyzeReachingDefs(const Design &design)
{
    ReachingResult out;
    for (const std::string &name : design.moduleNames())
        walkItems(name, design.module(name).items, out);
    return out;
}

} // namespace dfa
} // namespace ucx
