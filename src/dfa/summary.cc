#include "dfa/summary.hh"

#include <set>

#include "dfa/clock_domain.hh"
#include "dfa/const_prop.hh"
#include "dfa/liveness.hh"
#include "dfa/reaching.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/tracelog.hh"

namespace ucx
{

DfaSummary
computeDfaSummary(const Design &design, const RtlDesign &rtl,
                  const Netlist &netlist)
{
    obs::ScopedSpan span("dfa.analyze");
    obs::TraceScope trace("dfa.analyze");

    DfaSummary out;

    // ---- Constant propagation ----------------------------------
    // The elaborator marks primary outputs as plain wires and lists
    // them in rtl.outputs (alongside pseudo-outputs for child
    // instance pins, whose names carry the instance path). Recover
    // the Output kind here so the lint layer can tell a constant
    // port from a constant internal net.
    std::vector<uint8_t> isOutput(rtl.signals.size(), 0);
    for (SigId s : rtl.outputs)
        if (rtl.signals[s].name.find('.') == std::string::npos)
            isOutput[s] = 1;

    dfa::ConstPropResult consts = dfa::propagateConstants(rtl);
    out.constIterations = consts.iterations;
    out.constMuxCount = consts.constMuxCount;
    for (SigId s = 0; s < rtl.signals.size(); ++s) {
        const RtlSignal &sig = rtl.signals[s];
        if (sig.kind == SigKind::Input)
            continue;
        if (consts.signals[s].isConst())
            out.constSignals.push_back(
                {sig.name, consts.signals[s].value, sig.width,
                 static_cast<uint8_t>(isOutput[s]
                                          ? SigKind::Output
                                          : sig.kind)});
        if (sig.driver != invalidNode) {
            const RtlNode &driver = rtl.nodes[sig.driver];
            if (driver.op == RtlOp::Mux &&
                consts.nodes[driver.args[0]].isConst())
                out.constMuxSignals.push_back(sig.name);
        }
    }

    // ---- Clock domains -----------------------------------------
    // Run before liveness: the elaborated RTL models clocking
    // implicitly (edge lists are consumed by elaboration), so a
    // clock distribution wire has no RTL-level reader and would
    // look dead. The AST-level clock inventory tells us which
    // port/base names to exempt.
    dfa::ClockDomainResult clocks = dfa::analyzeClockDomains(design);
    std::set<std::string> clockNames;
    for (const auto &d : clocks.domains)
        clockNames.insert(d.clock);

    // ---- Liveness ----------------------------------------------
    auto isClockWire = [&](const std::string &name) {
        size_t dot = name.rfind('.');
        const std::string base =
            dot == std::string::npos ? name : name.substr(dot + 1);
        return clockNames.count(base) != 0;
    };
    dfa::LivenessResult live = dfa::analyzeLiveness(rtl);
    out.livenessIterations = live.iterations;
    for (SigId s = 0; s < rtl.signals.size(); ++s) {
        const RtlSignal &sig = rtl.signals[s];
        if (live.live[s])
            continue;
        if (sig.kind == SigKind::Wire && !isClockWire(sig.name))
            out.deadWires.push_back(sig.name);
        else if (sig.kind == SigKind::Reg)
            out.deadRegs.push_back(sig.name);
    }
    dfa::NetlistLiveness gateLive =
        dfa::analyzeNetlistLiveness(netlist);
    out.livenessIterations += gateLive.iterations;
    out.deadCombGates = gateLive.deadCombGates;

    // ---- Reaching definitions ----------------------------------
    dfa::ReachingResult reaching = dfa::analyzeReachingDefs(design);
    out.reachingIterations = reaching.iterations;
    for (const dfa::ReachingResult::Finding &f : reaching.findings)
        out.readBeforeWrite.push_back(
            {f.module, f.signal, f.line});

    out.clockIterations = clocks.iterations;
    for (const auto &d : clocks.domains)
        out.domains.push_back({d.module, d.reg, d.clock});
    for (const auto &c : clocks.crossings)
        out.crossings.push_back({c.module, c.signal, c.fromClock,
                                 c.toClock, c.line,
                                 c.synchronized});
    for (const auto &c : clocks.clockAsData)
        out.clockAsData.push_back({c.module, c.clock, c.line});

    if (obs::enabled()) {
        obs::counter("dfa.runs").add(1);
        obs::counter("dfa.const.iterations")
            .add(out.constIterations);
        obs::counter("dfa.liveness.iterations")
            .add(out.livenessIterations);
        obs::counter("dfa.reaching.iterations")
            .add(out.reachingIterations);
        obs::counter("dfa.clock.iterations")
            .add(out.clockIterations);
    }
    return out;
}

} // namespace ucx
