#include "hdl/ast.hh"

namespace ucx
{

ExprPtr
makeNumber(uint64_t value, int width, int line)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Number;
    e->value = value;
    e->literalWidth = width;
    e->line = line;
    return e;
}

ExprPtr
makeIdent(std::string name, int line)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Ident;
    e->name = std::move(name);
    e->line = line;
    return e;
}

ExprPtr
Expr::clone() const
{
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = line;
    e->value = value;
    e->literalWidth = literalWidth;
    e->name = name;
    e->unOp = unOp;
    e->binOp = binOp;
    if (a)
        e->a = a->clone();
    if (b)
        e->b = b->clone();
    if (c)
        e->c = c->clone();
    for (const auto &p : parts)
        e->parts.push_back(p->clone());
    return e;
}

StmtPtr
Stmt::clone() const
{
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->line = line;
    for (const auto &child : stmts)
        s->stmts.push_back(child->clone());
    if (cond)
        s->cond = cond->clone();
    if (thenStmt)
        s->thenStmt = thenStmt->clone();
    if (elseStmt)
        s->elseStmt = elseStmt->clone();
    if (subject)
        s->subject = subject->clone();
    for (const auto &item : items) {
        CaseItem ci;
        for (const auto &l : item.labels)
            ci.labels.push_back(l->clone());
        if (item.body)
            ci.body = item.body->clone();
        s->items.push_back(std::move(ci));
    }
    if (lhs)
        s->lhs = lhs->clone();
    if (rhs)
        s->rhs = rhs->clone();
    s->nonBlocking = nonBlocking;
    s->loopVar = loopVar;
    if (loopInit)
        s->loopInit = loopInit->clone();
    if (loopStep)
        s->loopStep = loopStep->clone();
    return s;
}

ItemPtr
Item::clone() const
{
    auto i = std::make_unique<Item>();
    i->kind = kind;
    i->line = line;
    i->isReg = isReg;
    if (msb)
        i->msb = msb->clone();
    if (lsb)
        i->lsb = lsb->clone();
    i->names = names;
    if (arrayLeft)
        i->arrayLeft = arrayLeft->clone();
    if (arrayRight)
        i->arrayRight = arrayRight->clone();
    i->param.name = param.name;
    i->param.isLocal = param.isLocal;
    i->param.line = param.line;
    if (param.value)
        i->param.value = param.value->clone();
    if (lhs)
        i->lhs = lhs->clone();
    if (rhs)
        i->rhs = rhs->clone();
    i->sequential = sequential;
    i->edges = edges;
    if (body)
        i->body = body->clone();
    i->moduleName = moduleName;
    i->instName = instName;
    for (const auto &c : paramOverrides) {
        Connection conn;
        conn.port = c.port;
        if (c.expr)
            conn.expr = c.expr->clone();
        i->paramOverrides.push_back(std::move(conn));
    }
    for (const auto &c : connections) {
        Connection conn;
        conn.port = c.port;
        if (c.expr)
            conn.expr = c.expr->clone();
        i->connections.push_back(std::move(conn));
    }
    i->genvar = genvar;
    if (genInit)
        i->genInit = genInit->clone();
    if (genCond)
        i->genCond = genCond->clone();
    if (genStep)
        i->genStep = genStep->clone();
    for (const auto &child : genBody)
        i->genBody.push_back(child->clone());
    i->genLabel = genLabel;
    if (genIfCond)
        i->genIfCond = genIfCond->clone();
    for (const auto &child : genThen)
        i->genThen.push_back(child->clone());
    for (const auto &child : genElse)
        i->genElse.push_back(child->clone());
    i->genvarNames = genvarNames;
    return i;
}

} // namespace ucx
