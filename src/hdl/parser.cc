#include "hdl/parser.hh"

#include "hdl/lexer.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/error.hh"

namespace ucx
{

Parser::Parser(std::vector<Token> tokens, std::string file)
    : tokens_(std::move(tokens)), file_(std::move(file))
{
    require(!tokens_.empty() && tokens_.back().kind == Tok::Eof,
            "token stream must end in Eof");
}

void
Parser::error(const std::string &msg) const
{
    const Token &t = peek();
    fatal(file_ + ":" + std::to_string(t.line) + ": " + msg +
          " (found " + tokName(t.kind) +
          (t.text.empty() ? "" : " '" + t.text + "'") + ")");
}

const Token &
Parser::peek(size_t ahead) const
{
    size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
}

const Token &
Parser::advance()
{
    const Token &t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size())
        ++pos_;
    return t;
}

bool
Parser::check(Tok kind) const
{
    return peek().kind == kind;
}

bool
Parser::match(Tok kind)
{
    if (!check(kind))
        return false;
    advance();
    return true;
}

const Token &
Parser::expect(Tok kind, const std::string &context)
{
    if (!check(kind))
        error("expected " + std::string(tokName(kind)) + " " + context);
    return advance();
}

SourceFile
Parser::parse()
{
    obs::ScopedSpan span("hdl.parse");
    SourceFile sf;
    sf.file = file_;
    while (!check(Tok::Eof)) {
        if (!check(Tok::KwModule))
            error("expected 'module' at top level");
        sf.modules.push_back(parseModule());
    }
    if (obs::enabled()) {
        static obs::Counter &modules =
            obs::counter("hdl.parse.modules");
        static obs::Counter &items = obs::counter("hdl.parse.items");
        modules.add(sf.modules.size());
        for (const Module &m : sf.modules)
            items.add(m.items.size());
    }
    return sf;
}

Module
Parser::parseModule()
{
    Module mod;
    mod.line = peek().line;
    expect(Tok::KwModule, "to start a module");
    mod.name = expect(Tok::Identifier, "after 'module'").text;

    if (match(Tok::Hash)) {
        expect(Tok::LParen, "after '#'");
        do {
            match(Tok::KwParameter); // keyword optional after comma
            mod.params.push_back(parseParam(false));
        } while (match(Tok::Comma));
        expect(Tok::RParen, "to close parameter list");
    }

    expect(Tok::LParen, "to open the port list");
    if (!check(Tok::RParen)) {
        do {
            parsePortGroup(mod.ports);
        } while (match(Tok::Comma));
    }
    expect(Tok::RParen, "to close the port list");
    expect(Tok::Semicolon, "after the module header");

    while (!check(Tok::KwEndmodule)) {
        if (check(Tok::Eof))
            error("unterminated module '" + mod.name + "'");
        ItemPtr item = parseItem();
        if (item)
            mod.items.push_back(std::move(item));
    }
    expect(Tok::KwEndmodule, "to close the module");
    return mod;
}

Param
Parser::parseParam(bool is_local)
{
    Param p;
    p.isLocal = is_local;
    p.line = peek().line;
    p.name = expect(Tok::Identifier, "as parameter name").text;
    expect(Tok::Assign, "after parameter name");
    p.value = parseExpr();
    return p;
}

void
Parser::parsePortGroup(std::vector<Port> &ports)
{
    PortDir dir = PortDir::Input;
    if (match(Tok::KwInput))
        dir = PortDir::Input;
    else if (match(Tok::KwOutput))
        dir = PortDir::Output;
    else if (match(Tok::KwInout))
        dir = PortDir::Inout;
    else
        error("expected a port direction");

    bool is_reg = false;
    if (match(Tok::KwReg))
        is_reg = true;
    else
        match(Tok::KwWire);
    match(Tok::KwSigned);

    Port port;
    port.dir = dir;
    port.isReg = is_reg;
    port.line = peek().line;
    parseRange(port.msb, port.lsb);
    port.name = expect(Tok::Identifier, "as port name").text;
    ports.push_back(std::move(port));
}

bool
Parser::parseRange(ExprPtr &msb, ExprPtr &lsb)
{
    if (!match(Tok::LBracket))
        return false;
    msb = parseExpr();
    expect(Tok::Colon, "inside a range");
    lsb = parseExpr();
    expect(Tok::RBracket, "to close a range");
    return true;
}

ItemPtr
Parser::parseItem()
{
    switch (peek().kind) {
      case Tok::KwWire:
      case Tok::KwReg:
        return parseNetDecl();
      case Tok::KwInteger:
        return parseIntegerDecl();
      case Tok::KwGenvar:
        return parseGenvarDecl();
      case Tok::KwLocalparam:
        return parseLocalparam();
      case Tok::KwParameter: {
        // Body parameter declaration; treated like localparam with
        // override-ability handled at elaboration.
        advance();
        auto item = std::make_unique<Item>();
        item->kind = ItemKind::Localparam;
        item->line = peek().line;
        item->param = parseParam(false);
        expect(Tok::Semicolon, "after parameter declaration");
        return item;
      }
      case Tok::KwAssign:
        return parseContAssign();
      case Tok::KwAlways:
        return parseAlways();
      case Tok::KwGenerate: {
        advance();
        auto region = std::make_unique<Item>();
        // A generate region is just a container; we inline its items
        // into a GenIf with constant-true condition for simplicity.
        region->kind = ItemKind::GenIf;
        region->line = peek().line;
        region->genIfCond = makeNumber(1, -1, peek().line);
        while (!check(Tok::KwEndgenerate)) {
            if (check(Tok::Eof))
                error("unterminated generate region");
            ItemPtr item = parseItem();
            if (item)
                region->genThen.push_back(std::move(item));
        }
        expect(Tok::KwEndgenerate, "to close generate");
        return region;
      }
      case Tok::KwFor:
        return parseGenFor();
      case Tok::KwIf:
        return parseGenIf();
      case Tok::Identifier:
        return parseInstance();
      default:
        error("expected a module item");
    }
}

ItemPtr
Parser::parseNetDecl()
{
    auto item = std::make_unique<Item>();
    item->kind = ItemKind::Net;
    item->line = peek().line;
    item->isReg = check(Tok::KwReg);
    advance(); // wire or reg
    match(Tok::KwSigned);
    parseRange(item->msb, item->lsb);

    item->names.push_back(
        expect(Tok::Identifier, "as net name").text);
    if (match(Tok::LBracket)) {
        item->arrayLeft = parseExpr();
        expect(Tok::Colon, "inside memory bounds");
        item->arrayRight = parseExpr();
        expect(Tok::RBracket, "to close memory bounds");
    } else {
        while (match(Tok::Comma)) {
            item->names.push_back(
                expect(Tok::Identifier, "as net name").text);
        }
    }
    expect(Tok::Semicolon, "after net declaration");
    return item;
}

ItemPtr
Parser::parseIntegerDecl()
{
    // Procedural loop variables: compile-time only, same handling as
    // genvars.
    expect(Tok::KwInteger, "to start integer declaration");
    auto item = std::make_unique<Item>();
    item->kind = ItemKind::Genvar;
    item->line = peek().line;
    do {
        item->genvarNames.push_back(
            expect(Tok::Identifier, "as integer name").text);
    } while (match(Tok::Comma));
    expect(Tok::Semicolon, "after integer declaration");
    return item;
}

ItemPtr
Parser::parseGenvarDecl()
{
    expect(Tok::KwGenvar, "to start genvar declaration");
    auto item = std::make_unique<Item>();
    item->kind = ItemKind::Genvar;
    item->line = peek().line;
    do {
        item->genvarNames.push_back(
            expect(Tok::Identifier, "as genvar name").text);
    } while (match(Tok::Comma));
    expect(Tok::Semicolon, "after genvar declaration");
    return item;
}

ItemPtr
Parser::parseLocalparam()
{
    expect(Tok::KwLocalparam, "to start localparam");
    auto item = std::make_unique<Item>();
    item->kind = ItemKind::Localparam;
    item->line = peek().line;
    item->param = parseParam(true);
    expect(Tok::Semicolon, "after localparam");
    return item;
}

ItemPtr
Parser::parseContAssign()
{
    expect(Tok::KwAssign, "to start continuous assignment");
    auto item = std::make_unique<Item>();
    item->kind = ItemKind::ContAssign;
    item->line = peek().line;
    item->lhs = parseLvalue();
    expect(Tok::Assign, "in continuous assignment");
    item->rhs = parseExpr();
    expect(Tok::Semicolon, "after continuous assignment");
    return item;
}

ItemPtr
Parser::parseAlways()
{
    expect(Tok::KwAlways, "to start always block");
    auto item = std::make_unique<Item>();
    item->kind = ItemKind::Always;
    item->line = peek().line;
    expect(Tok::At, "after 'always'");

    if (match(Tok::Star)) {
        item->sequential = false;
    } else {
        expect(Tok::LParen, "after '@'");
        if (match(Tok::Star)) {
            item->sequential = false;
        } else if (check(Tok::KwPosedge) || check(Tok::KwNegedge)) {
            item->sequential = true;
            do {
                EdgeEvent ev;
                if (match(Tok::KwPosedge)) {
                    ev.posedge = true;
                } else {
                    expect(Tok::KwNegedge, "in sensitivity list");
                    ev.posedge = false;
                }
                ev.signal =
                    expect(Tok::Identifier, "after edge keyword").text;
                item->edges.push_back(std::move(ev));
                // Accept both ',' and 'or' separators.
                if (match(Tok::Comma))
                    continue;
                if (check(Tok::Identifier) && peek().text == "or") {
                    advance();
                    continue;
                }
                break;
            } while (true);
        } else {
            // Plain identifier sensitivity list: combinational.
            item->sequential = false;
            do {
                expect(Tok::Identifier, "in sensitivity list");
                if (match(Tok::Comma))
                    continue;
                if (check(Tok::Identifier) && peek().text == "or") {
                    advance();
                    continue;
                }
                break;
            } while (true);
        }
        expect(Tok::RParen, "to close sensitivity list");
    }

    item->body = parseStmt();
    return item;
}

ItemPtr
Parser::parseInstance()
{
    auto item = std::make_unique<Item>();
    item->kind = ItemKind::Instance;
    item->line = peek().line;
    item->moduleName = expect(Tok::Identifier, "as module name").text;

    if (match(Tok::Hash)) {
        expect(Tok::LParen, "after '#'");
        do {
            Connection conn;
            expect(Tok::Dot, "in parameter override");
            conn.port =
                expect(Tok::Identifier, "as parameter name").text;
            expect(Tok::LParen, "after parameter name");
            conn.expr = parseExpr();
            expect(Tok::RParen, "to close parameter override");
            item->paramOverrides.push_back(std::move(conn));
        } while (match(Tok::Comma));
        expect(Tok::RParen, "to close parameter overrides");
    }

    item->instName = expect(Tok::Identifier, "as instance name").text;
    expect(Tok::LParen, "to open port connections");
    if (!check(Tok::RParen)) {
        do {
            Connection conn;
            expect(Tok::Dot, "in port connection");
            conn.port = expect(Tok::Identifier, "as port name").text;
            expect(Tok::LParen, "after port name");
            if (!check(Tok::RParen))
                conn.expr = parseExpr();
            expect(Tok::RParen, "to close port connection");
            item->connections.push_back(std::move(conn));
        } while (match(Tok::Comma));
    }
    expect(Tok::RParen, "to close port connections");
    expect(Tok::Semicolon, "after instantiation");
    return item;
}

std::vector<ItemPtr>
Parser::parseGenBlock()
{
    std::vector<ItemPtr> items;
    if (match(Tok::KwBegin)) {
        if (match(Tok::Colon))
            expect(Tok::Identifier, "as generate block label");
        while (!check(Tok::KwEnd)) {
            if (check(Tok::Eof))
                error("unterminated generate block");
            ItemPtr item = parseItem();
            if (item)
                items.push_back(std::move(item));
        }
        expect(Tok::KwEnd, "to close generate block");
    } else {
        items.push_back(parseItem());
    }
    return items;
}

ItemPtr
Parser::parseGenFor()
{
    auto item = std::make_unique<Item>();
    item->kind = ItemKind::GenFor;
    item->line = peek().line;
    expect(Tok::KwFor, "to start generate for");
    expect(Tok::LParen, "after 'for'");
    item->genvar = expect(Tok::Identifier, "as loop variable").text;
    expect(Tok::Assign, "in loop init");
    item->genInit = parseExpr();
    expect(Tok::Semicolon, "after loop init");
    item->genCond = parseExpr();
    expect(Tok::Semicolon, "after loop condition");
    std::string step_var =
        expect(Tok::Identifier, "as loop step variable").text;
    if (step_var != item->genvar)
        error("loop step must assign the loop variable");
    expect(Tok::Assign, "in loop step");
    item->genStep = parseExpr();
    expect(Tok::RParen, "to close loop header");
    item->genBody = parseGenBlock();
    return item;
}

ItemPtr
Parser::parseGenIf()
{
    auto item = std::make_unique<Item>();
    item->kind = ItemKind::GenIf;
    item->line = peek().line;
    expect(Tok::KwIf, "to start generate if");
    expect(Tok::LParen, "after 'if'");
    item->genIfCond = parseExpr();
    expect(Tok::RParen, "to close generate if condition");
    item->genThen = parseGenBlock();
    if (match(Tok::KwElse)) {
        if (check(Tok::KwIf)) {
            item->genElse.push_back(parseGenIf());
        } else {
            item->genElse = parseGenBlock();
        }
    }
    return item;
}

StmtPtr
Parser::parseStmt()
{
    switch (peek().kind) {
      case Tok::KwBegin:
        return parseBlock();
      case Tok::KwIf:
        return parseIf();
      case Tok::KwCase:
        advance();
        return parseCase(false);
      case Tok::KwCasez:
        advance();
        return parseCase(true);
      case Tok::KwFor:
        return parseFor();
      case Tok::Identifier:
      case Tok::LBrace:
        return parseAssignStmt();
      default:
        error("expected a statement");
    }
}

StmtPtr
Parser::parseBlock()
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Block;
    s->line = peek().line;
    expect(Tok::KwBegin, "to open block");
    if (match(Tok::Colon))
        expect(Tok::Identifier, "as block label");
    while (!check(Tok::KwEnd)) {
        if (check(Tok::Eof))
            error("unterminated begin/end block");
        s->stmts.push_back(parseStmt());
    }
    expect(Tok::KwEnd, "to close block");
    return s;
}

StmtPtr
Parser::parseIf()
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::If;
    s->line = peek().line;
    expect(Tok::KwIf, "to start if");
    expect(Tok::LParen, "after 'if'");
    s->cond = parseExpr();
    expect(Tok::RParen, "to close if condition");
    s->thenStmt = parseStmt();
    if (match(Tok::KwElse))
        s->elseStmt = parseStmt();
    return s;
}

StmtPtr
Parser::parseCase(bool casez)
{
    (void)casez; // casez wildcards are not supported in labels; the
                 // keyword is accepted for source compatibility.
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Case;
    s->line = peek().line;
    expect(Tok::LParen, "after 'case'");
    s->subject = parseExpr();
    expect(Tok::RParen, "to close case subject");
    while (!check(Tok::KwEndcase)) {
        if (check(Tok::Eof))
            error("unterminated case statement");
        CaseItem item;
        if (match(Tok::KwDefault)) {
            match(Tok::Colon);
        } else {
            do {
                item.labels.push_back(parseExpr());
            } while (match(Tok::Comma));
            expect(Tok::Colon, "after case labels");
        }
        item.body = parseStmt();
        s->items.push_back(std::move(item));
    }
    expect(Tok::KwEndcase, "to close case");
    return s;
}

StmtPtr
Parser::parseFor()
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::For;
    s->line = peek().line;
    expect(Tok::KwFor, "to start for loop");
    expect(Tok::LParen, "after 'for'");
    s->loopVar = expect(Tok::Identifier, "as loop variable").text;
    expect(Tok::Assign, "in loop init");
    s->loopInit = parseExpr();
    expect(Tok::Semicolon, "after loop init");
    s->cond = parseExpr();
    expect(Tok::Semicolon, "after loop condition");
    std::string step_var =
        expect(Tok::Identifier, "as loop step variable").text;
    if (step_var != s->loopVar)
        error("loop step must assign the loop variable");
    expect(Tok::Assign, "in loop step");
    s->loopStep = parseExpr();
    expect(Tok::RParen, "to close loop header");
    s->thenStmt = parseStmt();
    return s;
}

StmtPtr
Parser::parseAssignStmt()
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Assign;
    s->line = peek().line;
    s->lhs = parseLvalue();
    if (match(Tok::NonBlocking)) {
        s->nonBlocking = true;
    } else {
        expect(Tok::Assign, "in assignment");
        s->nonBlocking = false;
    }
    s->rhs = parseExpr();
    expect(Tok::Semicolon, "after assignment");
    return s;
}

ExprPtr
Parser::parseLvalue()
{
    if (check(Tok::LBrace)) {
        // Concatenation lvalue.
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Concat;
        e->line = peek().line;
        advance();
        do {
            e->parts.push_back(parseLvalue());
        } while (match(Tok::Comma));
        expect(Tok::RBrace, "to close lvalue concatenation");
        return e;
    }

    const Token &id = expect(Tok::Identifier, "as assignment target");
    ExprPtr e = makeIdent(id.text, id.line);
    while (check(Tok::LBracket)) {
        advance();
        ExprPtr first = parseExpr();
        if (match(Tok::Colon)) {
            auto range = std::make_unique<Expr>();
            range->kind = ExprKind::Range;
            range->line = id.line;
            range->name = e->name;
            range->a = std::move(first);
            range->b = parseExpr();
            expect(Tok::RBracket, "to close part select");
            require(e->kind == ExprKind::Ident,
                    "part select only allowed on plain identifiers");
            e = std::move(range);
        } else {
            auto idx = std::make_unique<Expr>();
            idx->kind = ExprKind::Index;
            idx->line = id.line;
            idx->a = std::move(e);
            idx->b = std::move(first);
            expect(Tok::RBracket, "to close index");
            e = std::move(idx);
        }
    }
    return e;
}

ExprPtr
Parser::parseExpr()
{
    return parseTernary();
}

ExprPtr
Parser::parseTernary()
{
    ExprPtr cond = parseLogOr();
    if (!match(Tok::Question))
        return cond;
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Ternary;
    e->line = cond->line;
    e->a = std::move(cond);
    e->b = parseExpr();
    expect(Tok::Colon, "in ternary expression");
    e->c = parseExpr();
    return e;
}

namespace
{

ExprPtr
makeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Binary;
    e->binOp = op;
    e->line = lhs->line;
    e->a = std::move(lhs);
    e->b = std::move(rhs);
    return e;
}

} // namespace

ExprPtr
Parser::parseLogOr()
{
    ExprPtr e = parseLogAnd();
    while (match(Tok::PipePipe))
        e = makeBinary(BinOp::LogOr, std::move(e), parseLogAnd());
    return e;
}

ExprPtr
Parser::parseLogAnd()
{
    ExprPtr e = parseBitOr();
    while (match(Tok::AmpAmp))
        e = makeBinary(BinOp::LogAnd, std::move(e), parseBitOr());
    return e;
}

ExprPtr
Parser::parseBitOr()
{
    ExprPtr e = parseBitXor();
    while (match(Tok::Pipe))
        e = makeBinary(BinOp::Or, std::move(e), parseBitXor());
    return e;
}

ExprPtr
Parser::parseBitXor()
{
    ExprPtr e = parseBitAnd();
    while (match(Tok::Caret))
        e = makeBinary(BinOp::Xor, std::move(e), parseBitAnd());
    return e;
}

ExprPtr
Parser::parseBitAnd()
{
    ExprPtr e = parseEquality();
    while (match(Tok::Amp))
        e = makeBinary(BinOp::And, std::move(e), parseEquality());
    return e;
}

ExprPtr
Parser::parseEquality()
{
    ExprPtr e = parseRelational();
    while (true) {
        if (match(Tok::EqEq))
            e = makeBinary(BinOp::Eq, std::move(e), parseRelational());
        else if (match(Tok::BangEq))
            e = makeBinary(BinOp::Ne, std::move(e), parseRelational());
        else
            break;
    }
    return e;
}

ExprPtr
Parser::parseRelational()
{
    ExprPtr e = parseShift();
    while (true) {
        if (match(Tok::Lt))
            e = makeBinary(BinOp::Lt, std::move(e), parseShift());
        else if (match(Tok::NonBlocking)) // '<=' is Le in expressions
            e = makeBinary(BinOp::Le, std::move(e), parseShift());
        else if (match(Tok::Gt))
            e = makeBinary(BinOp::Gt, std::move(e), parseShift());
        else if (match(Tok::GtEq))
            e = makeBinary(BinOp::Ge, std::move(e), parseShift());
        else
            break;
    }
    return e;
}

ExprPtr
Parser::parseShift()
{
    ExprPtr e = parseAdditive();
    while (true) {
        if (match(Tok::Shl))
            e = makeBinary(BinOp::Shl, std::move(e), parseAdditive());
        else if (match(Tok::Shr))
            e = makeBinary(BinOp::Shr, std::move(e), parseAdditive());
        else
            break;
    }
    return e;
}

ExprPtr
Parser::parseAdditive()
{
    ExprPtr e = parseMultiplicative();
    while (true) {
        if (match(Tok::Plus))
            e = makeBinary(BinOp::Add, std::move(e),
                           parseMultiplicative());
        else if (match(Tok::Minus))
            e = makeBinary(BinOp::Sub, std::move(e),
                           parseMultiplicative());
        else
            break;
    }
    return e;
}

ExprPtr
Parser::parseMultiplicative()
{
    ExprPtr e = parseUnary();
    while (true) {
        if (match(Tok::Star))
            e = makeBinary(BinOp::Mul, std::move(e), parseUnary());
        else if (match(Tok::Slash))
            e = makeBinary(BinOp::Div, std::move(e), parseUnary());
        else if (match(Tok::Percent))
            e = makeBinary(BinOp::Mod, std::move(e), parseUnary());
        else
            break;
    }
    return e;
}

ExprPtr
Parser::parseUnary()
{
    auto make_unary = [&](UnOp op) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Unary;
        e->unOp = op;
        e->line = peek().line;
        e->a = parseUnary();
        return e;
    };
    if (match(Tok::Tilde))
        return make_unary(UnOp::BitNot);
    if (match(Tok::Bang))
        return make_unary(UnOp::Not);
    if (match(Tok::Minus))
        return make_unary(UnOp::Minus);
    if (match(Tok::Plus))
        return make_unary(UnOp::Plus);
    if (match(Tok::Amp))
        return make_unary(UnOp::RedAnd);
    if (match(Tok::Pipe))
        return make_unary(UnOp::RedOr);
    if (match(Tok::Caret))
        return make_unary(UnOp::RedXor);
    return parsePrimary();
}

ExprPtr
Parser::parsePrimary()
{
    if (check(Tok::Number)) {
        const Token &t = advance();
        return makeNumber(t.value, t.width, t.line);
    }
    if (match(Tok::LParen)) {
        ExprPtr e = parseExpr();
        expect(Tok::RParen, "to close parenthesized expression");
        return e;
    }
    if (check(Tok::LBrace)) {
        int line = peek().line;
        advance();
        ExprPtr first = parseExpr();
        if (check(Tok::LBrace)) {
            // Replication {n{expr}}.
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::Repl;
            e->line = line;
            e->a = std::move(first);
            e->b = parseExpr();
            expect(Tok::RBrace, "to close replication body");
            expect(Tok::RBrace, "to close replication");
            return e;
        }
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Concat;
        e->line = line;
        e->parts.push_back(std::move(first));
        while (match(Tok::Comma))
            e->parts.push_back(parseExpr());
        expect(Tok::RBrace, "to close concatenation");
        return e;
    }
    if (check(Tok::Identifier)) {
        const Token &id = advance();
        ExprPtr e = makeIdent(id.text, id.line);
        while (check(Tok::LBracket)) {
            advance();
            ExprPtr first = parseExpr();
            if (match(Tok::Colon)) {
                auto range = std::make_unique<Expr>();
                range->kind = ExprKind::Range;
                range->line = id.line;
                require(e->kind == ExprKind::Ident,
                        "part select only allowed on identifiers");
                range->name = e->name;
                range->a = std::move(first);
                range->b = parseExpr();
                expect(Tok::RBracket, "to close part select");
                e = std::move(range);
            } else {
                auto idx = std::make_unique<Expr>();
                idx->kind = ExprKind::Index;
                idx->line = id.line;
                idx->a = std::move(e);
                idx->b = std::move(first);
                expect(Tok::RBracket, "to close index");
                e = std::move(idx);
            }
        }
        return e;
    }
    error("expected an expression");
}

SourceFile
parseSource(const std::string &source, const std::string &file)
{
    // Per-file span so the trace shows which sources cost the time;
    // the name is only built when collection is on.
    obs::ScopedSpan span(
        obs::enabled() ? "hdl.file:" + file : std::string());
    Lexer lexer(source, file);
    Parser parser(lexer.tokenize(), file);
    return parser.parse();
}

} // namespace ucx
