/**
 * @file
 * Constant expression evaluation for µHDL: parameter values, widths,
 * generate bounds.
 *
 * This is also where the paper's notion of "degenerate
 * parameterization" becomes checkable: the elaborator uses these
 * evaluations to decide which generate loops and conditionals
 * survive constant propagation (paper Section 2.2).
 */

#ifndef UCX_HDL_CONST_EVAL_HH
#define UCX_HDL_CONST_EVAL_HH

#include <cstdint>
#include <map>
#include <string>

#include "hdl/ast.hh"

namespace ucx
{

/** Environment mapping parameter/genvar names to constant values. */
using ConstEnv = std::map<std::string, int64_t>;

/**
 * Evaluate a constant expression.
 *
 * @param expr Expression containing only literals, names bound in
 *             @p env, and pure operators.
 * @param env  Name bindings.
 * @return The value; throws UcxError on unbound names, division by
 *         zero, or non-constant constructs (selects, concats of
 *         signals).
 */
int64_t evalConst(const Expr &expr, const ConstEnv &env);

/**
 * Check whether an expression is constant under an environment
 * (i.e. evalConst would succeed).
 *
 * @param expr Expression to test.
 * @param env  Name bindings.
 * @return True when the expression is a compile-time constant.
 */
bool isConst(const Expr &expr, const ConstEnv &env);

} // namespace ucx

#endif // UCX_HDL_CONST_EVAL_HH
