#include "hdl/lexer.hh"

#include <cctype>
#include <unordered_map>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/error.hh"

namespace ucx
{

const char *
tokName(Tok tok)
{
    switch (tok) {
      case Tok::Identifier: return "identifier";
      case Tok::Number: return "number";
      case Tok::KwModule: return "'module'";
      case Tok::KwEndmodule: return "'endmodule'";
      case Tok::KwInput: return "'input'";
      case Tok::KwOutput: return "'output'";
      case Tok::KwInout: return "'inout'";
      case Tok::KwWire: return "'wire'";
      case Tok::KwReg: return "'reg'";
      case Tok::KwParameter: return "'parameter'";
      case Tok::KwLocalparam: return "'localparam'";
      case Tok::KwAssign: return "'assign'";
      case Tok::KwAlways: return "'always'";
      case Tok::KwBegin: return "'begin'";
      case Tok::KwEnd: return "'end'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwCase: return "'case'";
      case Tok::KwCasez: return "'casez'";
      case Tok::KwEndcase: return "'endcase'";
      case Tok::KwDefault: return "'default'";
      case Tok::KwFor: return "'for'";
      case Tok::KwGenerate: return "'generate'";
      case Tok::KwEndgenerate: return "'endgenerate'";
      case Tok::KwGenvar: return "'genvar'";
      case Tok::KwPosedge: return "'posedge'";
      case Tok::KwNegedge: return "'negedge'";
      case Tok::KwInteger: return "'integer'";
      case Tok::KwSigned: return "'signed'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::Comma: return "','";
      case Tok::Semicolon: return "';'";
      case Tok::Colon: return "':'";
      case Tok::Dot: return "'.'";
      case Tok::Hash: return "'#'";
      case Tok::At: return "'@'";
      case Tok::Question: return "'?'";
      case Tok::Assign: return "'='";
      case Tok::NonBlocking: return "'<='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Amp: return "'&'";
      case Tok::Pipe: return "'|'";
      case Tok::Caret: return "'^'";
      case Tok::Tilde: return "'~'";
      case Tok::Bang: return "'!'";
      case Tok::AmpAmp: return "'&&'";
      case Tok::PipePipe: return "'||'";
      case Tok::EqEq: return "'=='";
      case Tok::BangEq: return "'!='";
      case Tok::Lt: return "'<'";
      case Tok::Gt: return "'>'";
      case Tok::GtEq: return "'>='";
      case Tok::Shl: return "'<<'";
      case Tok::Shr: return "'>>'";
      case Tok::Eof: return "end of input";
    }
    return "?";
}

namespace
{

const std::unordered_map<std::string, Tok> &
keywords()
{
    static const std::unordered_map<std::string, Tok> map = {
        {"module", Tok::KwModule},
        {"endmodule", Tok::KwEndmodule},
        {"input", Tok::KwInput},
        {"output", Tok::KwOutput},
        {"inout", Tok::KwInout},
        {"wire", Tok::KwWire},
        {"reg", Tok::KwReg},
        {"parameter", Tok::KwParameter},
        {"localparam", Tok::KwLocalparam},
        {"assign", Tok::KwAssign},
        {"always", Tok::KwAlways},
        {"begin", Tok::KwBegin},
        {"end", Tok::KwEnd},
        {"if", Tok::KwIf},
        {"else", Tok::KwElse},
        {"case", Tok::KwCase},
        {"casez", Tok::KwCasez},
        {"endcase", Tok::KwEndcase},
        {"default", Tok::KwDefault},
        {"for", Tok::KwFor},
        {"generate", Tok::KwGenerate},
        {"endgenerate", Tok::KwEndgenerate},
        {"genvar", Tok::KwGenvar},
        {"posedge", Tok::KwPosedge},
        {"negedge", Tok::KwNegedge},
        {"integer", Tok::KwInteger},
        {"signed", Tok::KwSigned},
    };
    return map;
}

} // namespace

Lexer::Lexer(std::string source, std::string file)
    : source_(std::move(source)), file_(std::move(file))
{}

void
Lexer::error(const std::string &msg) const
{
    fatal(file_ + ":" + std::to_string(line_) + ":" +
          std::to_string(column_) + ": " + msg);
}

char
Lexer::peek(size_t ahead) const
{
    if (pos_ + ahead >= source_.size())
        return '\0';
    return source_[pos_ + ahead];
}

char
Lexer::advance()
{
    char c = source_[pos_++];
    if (c == '\n') {
        ++line_;
        column_ = 1;
    } else {
        ++column_;
    }
    return c;
}

bool
Lexer::atEnd() const
{
    return pos_ >= source_.size();
}

void
Lexer::skipWhitespaceAndComments()
{
    while (!atEnd()) {
        char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (!atEnd() && peek() != '\n')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            int start_line = line_;
            advance();
            advance();
            while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
                advance();
            if (atEnd()) {
                line_ = start_line;
                error("unterminated block comment");
            }
            advance();
            advance();
        } else {
            break;
        }
    }
}

Token
Lexer::makeToken(Tok kind) const
{
    Token t;
    t.kind = kind;
    t.line = line_;
    t.column = column_;
    return t;
}

Token
Lexer::lexNumber()
{
    Token t = makeToken(Tok::Number);

    auto read_digits = [&](int base) {
        uint64_t v = 0;
        bool any = false;
        while (!atEnd()) {
            char c = peek();
            int digit = -1;
            if (c == '_') {
                advance();
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c)))
                digit = c - '0';
            else if (base == 16 && std::isxdigit(
                         static_cast<unsigned char>(c)))
                digit = std::tolower(c) - 'a' + 10;
            else
                break;
            if (digit >= base)
                break;
            v = v * base + static_cast<uint64_t>(digit);
            t.text += c;
            any = true;
            advance();
        }
        if (!any)
            error("expected digits in numeric literal");
        return v;
    };

    uint64_t first = 0;
    bool have_first = false;
    if (peek() != '\'') {
        first = read_digits(10);
        have_first = true;
    }

    if (peek() == '\'') {
        advance();
        char basec = static_cast<char>(
            std::tolower(static_cast<unsigned char>(peek())));
        int base = 0;
        switch (basec) {
          case 'b': base = 2; break;
          case 'o': base = 8; break;
          case 'd': base = 10; break;
          case 'h': base = 16; break;
          default:
            error("bad base character in sized literal");
        }
        advance();
        t.text += '\'';
        t.text += basec;
        t.value = read_digits(base);
        t.width = have_first ? static_cast<int>(first) : -1;
        if (t.width == 0)
            error("literal width must be >= 1");
    } else {
        t.value = first;
        t.width = -1;
    }
    return t;
}

Token
Lexer::lexIdentifierOrKeyword()
{
    Token t = makeToken(Tok::Identifier);
    while (!atEnd()) {
        char c = peek();
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '$') {
            t.text += c;
            advance();
        } else {
            break;
        }
    }
    auto it = keywords().find(t.text);
    if (it != keywords().end())
        t.kind = it->second;
    return t;
}

Token
Lexer::lexOperator()
{
    Token t = makeToken(Tok::Eof);
    char c = advance();
    switch (c) {
      case '(': t.kind = Tok::LParen; break;
      case ')': t.kind = Tok::RParen; break;
      case '[': t.kind = Tok::LBracket; break;
      case ']': t.kind = Tok::RBracket; break;
      case '{': t.kind = Tok::LBrace; break;
      case '}': t.kind = Tok::RBrace; break;
      case ',': t.kind = Tok::Comma; break;
      case ';': t.kind = Tok::Semicolon; break;
      case ':': t.kind = Tok::Colon; break;
      case '.': t.kind = Tok::Dot; break;
      case '#': t.kind = Tok::Hash; break;
      case '@': t.kind = Tok::At; break;
      case '?': t.kind = Tok::Question; break;
      case '+': t.kind = Tok::Plus; break;
      case '-': t.kind = Tok::Minus; break;
      case '*': t.kind = Tok::Star; break;
      case '/': t.kind = Tok::Slash; break;
      case '%': t.kind = Tok::Percent; break;
      case '~': t.kind = Tok::Tilde; break;
      case '^': t.kind = Tok::Caret; break;
      case '&':
        if (peek() == '&') {
            advance();
            t.kind = Tok::AmpAmp;
        } else {
            t.kind = Tok::Amp;
        }
        break;
      case '|':
        if (peek() == '|') {
            advance();
            t.kind = Tok::PipePipe;
        } else {
            t.kind = Tok::Pipe;
        }
        break;
      case '=':
        if (peek() == '=') {
            advance();
            t.kind = Tok::EqEq;
        } else {
            t.kind = Tok::Assign;
        }
        break;
      case '!':
        if (peek() == '=') {
            advance();
            t.kind = Tok::BangEq;
        } else {
            t.kind = Tok::Bang;
        }
        break;
      case '<':
        if (peek() == '=') {
            advance();
            t.kind = Tok::NonBlocking;
        } else if (peek() == '<') {
            advance();
            t.kind = Tok::Shl;
        } else {
            t.kind = Tok::Lt;
        }
        break;
      case '>':
        if (peek() == '=') {
            advance();
            t.kind = Tok::GtEq;
        } else if (peek() == '>') {
            advance();
            t.kind = Tok::Shr;
        } else {
            t.kind = Tok::Gt;
        }
        break;
      default:
        error(std::string("unexpected character '") + c + "'");
    }
    return t;
}

std::vector<Token>
Lexer::tokenize()
{
    obs::ScopedSpan span("hdl.lex");
    std::vector<Token> tokens;
    while (true) {
        skipWhitespaceAndComments();
        if (atEnd())
            break;
        char c = peek();
        int line = line_;
        int col = column_;
        Token t;
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
            t = lexNumber();
        } else if (std::isalpha(static_cast<unsigned char>(c)) ||
                   c == '_' || c == '$') {
            t = lexIdentifierOrKeyword();
        } else {
            t = lexOperator();
        }
        t.line = line;
        t.column = col;
        tokens.push_back(std::move(t));
    }
    Token eof = makeToken(Tok::Eof);
    tokens.push_back(eof);
    if (obs::enabled()) {
        static obs::Counter &files = obs::counter("hdl.lex.files");
        static obs::Counter &count = obs::counter("hdl.lex.tokens");
        files.add(1);
        count.add(tokens.size());
    }
    return tokens;
}

} // namespace ucx
