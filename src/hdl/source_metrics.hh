/**
 * @file
 * Source metrics of paper Table 3: LoC (lines of HDL code) and Stmts
 * (HDL statements).
 *
 * Following the paper, these are measured on the source text/AST and
 * need no synthesis; they are available as soon as a module is
 * written (Section 2.5 requires metrics measurable before
 * verification starts).
 */

#ifndef UCX_HDL_SOURCE_METRICS_HH
#define UCX_HDL_SOURCE_METRICS_HH

#include <cstddef>
#include <string>

#include "hdl/ast.hh"

namespace ucx
{

/** Measured source metrics of one source text or module. */
struct SourceMetrics
{
    size_t loc = 0;   ///< Code lines (excluding blank/comment-only).
    size_t stmts = 0; ///< Statement count (see countStmts).
};

/**
 * Count lines of code in µHDL source text. Blank lines and lines
 * containing only comments do not count; a line with any code does.
 *
 * @param source Full source text.
 * @return Number of code lines.
 */
size_t countLoc(const std::string &source);

/**
 * Count statements in a module: declarations (one per declared
 * name), continuous assignments, procedural statements (assignments,
 * if, case arms, for), instantiations, and generate constructs.
 *
 * @param module Parsed module.
 * @return Statement count.
 */
size_t countStmts(const Module &module);

/**
 * Measure a whole source file: LoC from the text, Stmts summed over
 * its modules.
 *
 * @param source Source text.
 * @param file   File name for diagnostics.
 * @return Both source metrics.
 */
SourceMetrics measureSource(const std::string &source,
                            const std::string &file = "<input>");

} // namespace ucx

#endif // UCX_HDL_SOURCE_METRICS_HH
