/**
 * @file
 * Lexer for µHDL source text.
 *
 * Also the authority for the paper's two source metrics: it exposes
 * the line/comment structure that the LoC counter needs.
 */

#ifndef UCX_HDL_LEXER_HH
#define UCX_HDL_LEXER_HH

#include <string>
#include <vector>

#include "hdl/token.hh"

namespace ucx
{

/** Converts µHDL source text into a token stream. */
class Lexer
{
  public:
    /**
     * Create a lexer.
     *
     * @param source Full source text.
     * @param file   File name used in diagnostics.
     */
    explicit Lexer(std::string source, std::string file = "<input>");

    /**
     * Lex the whole input.
     *
     * @return All tokens, terminated by one Tok::Eof token. Throws
     *         UcxError on malformed input (bad literal, stray char,
     *         unterminated block comment).
     */
    std::vector<Token> tokenize();

    /** @return The file name given at construction. */
    const std::string &file() const { return file_; }

  private:
    [[noreturn]] void error(const std::string &msg) const;

    char peek(size_t ahead = 0) const;
    char advance();
    bool atEnd() const;
    void skipWhitespaceAndComments();

    Token lexNumber();
    Token lexIdentifierOrKeyword();
    Token lexOperator();

    Token makeToken(Tok kind) const;

    std::string source_;
    std::string file_;
    size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
};

} // namespace ucx

#endif // UCX_HDL_LEXER_HH
