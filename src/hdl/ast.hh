/**
 * @file
 * Abstract syntax tree for µHDL.
 *
 * Plain structs with a kind tag; consumers dispatch on the kind.
 * Ownership is by std::unique_ptr down the tree.
 */

#ifndef UCX_HDL_AST_HH
#define UCX_HDL_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ucx
{

// ---------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------

/** Expression node kinds. */
enum class ExprKind
{
    Number,   ///< Literal, possibly sized.
    Ident,    ///< Signal, parameter, or genvar reference.
    Index,    ///< Bit select or memory-word select base[idx].
    Range,    ///< Part select base[msb:lsb].
    Unary,    ///< Unary or reduction operator.
    Binary,   ///< Binary operator.
    Ternary,  ///< cond ? a : b.
    Concat,   ///< {a, b, ...}.
    Repl,     ///< {n{expr}}.
};

/** Unary operator kinds. */
enum class UnOp
{
    Plus, Minus, Not, BitNot, RedAnd, RedOr, RedXor,
};

/** Binary operator kinds. */
enum class BinOp
{
    Add, Sub, Mul, Div, Mod,
    And, Or, Xor,
    LogAnd, LogOr,
    Eq, Ne, Lt, Le, Gt, Ge,
    Shl, Shr,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** One expression node. */
struct Expr
{
    ExprKind kind;
    int line = 0;

    // Number.
    uint64_t value = 0;
    int literalWidth = -1; ///< -1 for unsized literals.

    // Ident / Index / Range base name.
    std::string name;

    // Unary / Binary operators.
    UnOp unOp = UnOp::Plus;
    BinOp binOp = BinOp::Add;

    // Children: operands / index / range bounds / concat parts /
    // replication (count in a, body in b).
    ExprPtr a;
    ExprPtr b;
    ExprPtr c;
    std::vector<ExprPtr> parts;

    /** Deep copy (used when unrolling generate loops). */
    ExprPtr clone() const;
};

/** @return A number literal expression. */
ExprPtr makeNumber(uint64_t value, int width = -1, int line = 0);

/** @return An identifier expression. */
ExprPtr makeIdent(std::string name, int line = 0);

// ---------------------------------------------------------------
// Statements (procedural code inside always blocks)
// ---------------------------------------------------------------

/** Statement node kinds. */
enum class StmtKind
{
    Block,  ///< begin ... end.
    If,     ///< if/else.
    Case,   ///< case/casez.
    Assign, ///< Blocking or non-blocking assignment.
    For,    ///< Procedural for loop with integer induction.
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** One arm of a case statement. */
struct CaseItem
{
    std::vector<ExprPtr> labels; ///< Empty for the default arm.
    StmtPtr body;
};

/** One procedural statement. */
struct Stmt
{
    StmtKind kind;
    int line = 0;

    std::vector<StmtPtr> stmts; ///< Block children.

    ExprPtr cond;               ///< If/For condition.
    StmtPtr thenStmt;           ///< If-then / For body.
    StmtPtr elseStmt;           ///< If-else.

    ExprPtr subject;            ///< Case subject.
    std::vector<CaseItem> items; ///< Case arms.

    // Assignment.
    ExprPtr lhs;
    ExprPtr rhs;
    bool nonBlocking = false;

    // For loop: name and bounds of the induction variable.
    std::string loopVar;
    ExprPtr loopInit;
    ExprPtr loopStep; ///< RHS of the step assignment.

    /** Deep copy (used when unrolling generate loops). */
    StmtPtr clone() const;
};

// ---------------------------------------------------------------
// Module items
// ---------------------------------------------------------------

/** Port direction. */
enum class PortDir
{
    Input,
    Output,
    Inout,
};

/** An ANSI-style port declaration in the module header. */
struct Port
{
    PortDir dir = PortDir::Input;
    bool isReg = false;   ///< Declared as output reg.
    ExprPtr msb;          ///< Null for 1-bit ports.
    ExprPtr lsb;
    std::string name;
    int line = 0;
};

/** A module parameter (or localparam). */
struct Param
{
    std::string name;
    ExprPtr value;
    bool isLocal = false;
    int line = 0;
};

/** Module item kinds. */
enum class ItemKind
{
    Net,         ///< wire/reg declaration (possibly a memory).
    Localparam,  ///< localparam declaration.
    ContAssign,  ///< assign lhs = rhs.
    Always,      ///< always block.
    Instance,    ///< Module instantiation.
    GenFor,      ///< generate for loop.
    GenIf,       ///< generate if.
    Genvar,      ///< genvar declaration.
};

/** Clock/reset edge sensitivity of a sequential always block. */
struct EdgeEvent
{
    bool posedge = true;
    std::string signal;
};

struct Item;
using ItemPtr = std::unique_ptr<Item>;

/** One named connection of an instantiation. */
struct Connection
{
    std::string port;
    ExprPtr expr; ///< Null for unconnected ports: .p().
};

/** One module item. */
struct Item
{
    ItemKind kind;
    int line = 0;

    // Net declaration.
    bool isReg = false;
    ExprPtr msb;
    ExprPtr lsb;
    std::vector<std::string> names;
    ExprPtr arrayLeft;  ///< Memory bound: reg [..] m [left:right].
    ExprPtr arrayRight;

    // Localparam.
    Param param;

    // Continuous assignment.
    ExprPtr lhs;
    ExprPtr rhs;

    // Always block.
    bool sequential = false;       ///< True for @(posedge ...).
    std::vector<EdgeEvent> edges;  ///< Edge list when sequential.
    StmtPtr body;

    // Instance.
    std::string moduleName;
    std::string instName;
    std::vector<Connection> paramOverrides;
    std::vector<Connection> connections;

    // Generate for.
    std::string genvar;
    ExprPtr genInit;
    ExprPtr genCond;
    ExprPtr genStep;
    std::vector<ItemPtr> genBody;
    std::string genLabel;

    // Generate if.
    ExprPtr genIfCond;
    std::vector<ItemPtr> genThen;
    std::vector<ItemPtr> genElse;

    // Genvar declaration.
    std::vector<std::string> genvarNames;

    /** Deep copy (used when unrolling nested generates). */
    ItemPtr clone() const;
};

/** One µHDL module. */
struct Module
{
    std::string name;
    std::vector<Param> params; ///< Header parameters, in order.
    std::vector<Port> ports;
    std::vector<ItemPtr> items;
    int line = 0;
};

/** A parsed source file: a list of modules. */
struct SourceFile
{
    std::string file;
    std::vector<Module> modules;
};

} // namespace ucx

#endif // UCX_HDL_AST_HH
