/**
 * @file
 * Recursive-descent parser for µHDL.
 */

#ifndef UCX_HDL_PARSER_HH
#define UCX_HDL_PARSER_HH

#include <string>
#include <vector>

#include "hdl/ast.hh"
#include "hdl/token.hh"

namespace ucx
{

/** Parses a token stream into a SourceFile AST. */
class Parser
{
  public:
    /**
     * Create a parser.
     *
     * @param tokens Token stream ending in Tok::Eof.
     * @param file   File name used in diagnostics.
     */
    Parser(std::vector<Token> tokens, std::string file = "<input>");

    /**
     * Parse the whole input.
     *
     * @return The parsed source file. Throws UcxError with a
     *         line-numbered message on syntax errors.
     */
    SourceFile parse();

  private:
    [[noreturn]] void error(const std::string &msg) const;

    const Token &peek(size_t ahead = 0) const;
    const Token &advance();
    bool check(Tok kind) const;
    bool match(Tok kind);
    const Token &expect(Tok kind, const std::string &context);

    Module parseModule();
    Param parseParam(bool is_local);
    void parsePortGroup(std::vector<Port> &ports);
    ItemPtr parseItem();
    ItemPtr parseNetDecl();
    ItemPtr parseIntegerDecl();
    ItemPtr parseGenvarDecl();
    ItemPtr parseLocalparam();
    ItemPtr parseContAssign();
    ItemPtr parseAlways();
    ItemPtr parseInstance();
    ItemPtr parseGenFor();
    ItemPtr parseGenIf();
    std::vector<ItemPtr> parseGenBlock();

    StmtPtr parseStmt();
    StmtPtr parseBlock();
    StmtPtr parseIf();
    StmtPtr parseCase(bool casez);
    StmtPtr parseFor();
    StmtPtr parseAssignStmt();

    ExprPtr parseExpr();
    ExprPtr parseTernary();
    ExprPtr parseLogOr();
    ExprPtr parseLogAnd();
    ExprPtr parseBitOr();
    ExprPtr parseBitXor();
    ExprPtr parseBitAnd();
    ExprPtr parseEquality();
    ExprPtr parseRelational();
    ExprPtr parseShift();
    ExprPtr parseAdditive();
    ExprPtr parseMultiplicative();
    ExprPtr parseUnary();
    ExprPtr parsePrimary();
    ExprPtr parseLvalue();

    /** Parse an optional [msb:lsb] range into out parameters. */
    bool parseRange(ExprPtr &msb, ExprPtr &lsb);

    std::vector<Token> tokens_;
    std::string file_;
    size_t pos_ = 0;
};

/**
 * Convenience: lex and parse source text in one call.
 *
 * @param source µHDL source text.
 * @param file   File name for diagnostics.
 * @return The parsed source file.
 */
SourceFile parseSource(const std::string &source,
                       const std::string &file = "<input>");

} // namespace ucx

#endif // UCX_HDL_PARSER_HH
