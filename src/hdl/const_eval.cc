#include "hdl/const_eval.hh"

#include "util/error.hh"

namespace ucx
{

int64_t
evalConst(const Expr &expr, const ConstEnv &env)
{
    switch (expr.kind) {
      case ExprKind::Number:
        return static_cast<int64_t>(expr.value);
      case ExprKind::Ident: {
        auto it = env.find(expr.name);
        require(it != env.end(),
                "'" + expr.name + "' is not a constant (line " +
                    std::to_string(expr.line) + ")");
        return it->second;
      }
      case ExprKind::Unary: {
        int64_t v = evalConst(*expr.a, env);
        switch (expr.unOp) {
          case UnOp::Plus: return v;
          case UnOp::Minus: return -v;
          case UnOp::Not: return v == 0 ? 1 : 0;
          case UnOp::BitNot: return ~v;
          case UnOp::RedAnd:
          case UnOp::RedOr:
          case UnOp::RedXor:
            fatal("reduction operators are not constant expressions");
        }
        break;
      }
      case ExprKind::Binary: {
        int64_t a = evalConst(*expr.a, env);
        int64_t b = evalConst(*expr.b, env);
        switch (expr.binOp) {
          case BinOp::Add: return a + b;
          case BinOp::Sub: return a - b;
          case BinOp::Mul: return a * b;
          case BinOp::Div:
            require(b != 0, "constant division by zero");
            return a / b;
          case BinOp::Mod:
            require(b != 0, "constant modulo by zero");
            return a % b;
          case BinOp::And: return a & b;
          case BinOp::Or: return a | b;
          case BinOp::Xor: return a ^ b;
          case BinOp::LogAnd: return (a != 0 && b != 0) ? 1 : 0;
          case BinOp::LogOr: return (a != 0 || b != 0) ? 1 : 0;
          case BinOp::Eq: return a == b ? 1 : 0;
          case BinOp::Ne: return a != b ? 1 : 0;
          case BinOp::Lt: return a < b ? 1 : 0;
          case BinOp::Le: return a <= b ? 1 : 0;
          case BinOp::Gt: return a > b ? 1 : 0;
          case BinOp::Ge: return a >= b ? 1 : 0;
          case BinOp::Shl:
            // Shift in uint64_t: a 64-bit-or-wider shift yields 0
            // (every bit shifted out), and the unsigned left shift
            // never hits signed-overflow UB. Only a negative amount
            // is a malformed constant.
            require(b >= 0, "bad constant shift amount");
            if (b >= 64)
                return 0;
            return static_cast<int64_t>(
                static_cast<uint64_t>(a) << b);
          case BinOp::Shr:
            require(b >= 0, "bad constant shift amount");
            if (b >= 64)
                return 0;
            return static_cast<int64_t>(
                static_cast<uint64_t>(a) >> b);
        }
        break;
      }
      case ExprKind::Ternary:
        return evalConst(*expr.a, env) != 0 ? evalConst(*expr.b, env)
                                            : evalConst(*expr.c, env);
      case ExprKind::Index:
      case ExprKind::Range:
      case ExprKind::Concat:
      case ExprKind::Repl:
        fatal("expression is not a compile-time constant (line " +
              std::to_string(expr.line) + ")");
    }
    panic("unreachable expression kind in evalConst");
}

bool
isConst(const Expr &expr, const ConstEnv &env)
{
    switch (expr.kind) {
      case ExprKind::Number:
        return true;
      case ExprKind::Ident:
        return env.count(expr.name) > 0;
      case ExprKind::Unary:
        return expr.unOp != UnOp::RedAnd && expr.unOp != UnOp::RedOr &&
               expr.unOp != UnOp::RedXor && isConst(*expr.a, env);
      case ExprKind::Binary:
        return isConst(*expr.a, env) && isConst(*expr.b, env);
      case ExprKind::Ternary:
        return isConst(*expr.a, env) && isConst(*expr.b, env) &&
               isConst(*expr.c, env);
      case ExprKind::Index:
      case ExprKind::Range:
      case ExprKind::Concat:
      case ExprKind::Repl:
        return false;
    }
    return false;
}

} // namespace ucx
