/**
 * @file
 * Token definitions for the µHDL front end.
 *
 * µHDL is the Verilog-2001 subset implemented by this reproduction:
 * enough of the language to express the synthetic processor
 * components in src/designs and to exercise the paper's accounting
 * procedure (parameters, generate loops, hierarchical designs).
 */

#ifndef UCX_HDL_TOKEN_HH
#define UCX_HDL_TOKEN_HH

#include <cstdint>
#include <string>

namespace ucx
{

/** Kinds of µHDL tokens. */
enum class Tok
{
    // Literals and identifiers.
    Identifier,
    Number,      ///< Possibly sized/based literal.
    // Keywords.
    KwModule, KwEndmodule, KwInput, KwOutput, KwInout, KwWire, KwReg,
    KwParameter, KwLocalparam, KwAssign, KwAlways, KwBegin, KwEnd,
    KwIf, KwElse, KwCase, KwCasez, KwEndcase, KwDefault, KwFor,
    KwGenerate, KwEndgenerate, KwGenvar, KwPosedge, KwNegedge,
    KwInteger, KwSigned,
    // Punctuation.
    LParen, RParen, LBracket, RBracket, LBrace, RBrace,
    Comma, Semicolon, Colon, Dot, Hash, At, Question,
    // Operators.
    Assign,        ///< =
    NonBlocking,   ///< <=  (also less-equal; parser disambiguates)
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    AmpAmp, PipePipe, EqEq, BangEq,
    Lt, Gt, GtEq, Shl, Shr,
    // End of input.
    Eof,
};

/** @return A printable name for a token kind (for diagnostics). */
const char *tokName(Tok tok);

/** One lexed token. */
struct Token
{
    Tok kind = Tok::Eof;
    std::string text;   ///< Source spelling (identifiers, numbers).
    uint64_t value = 0; ///< Numeric value for Tok::Number.
    int width = -1;     ///< Literal bit width, -1 when unsized.
    int line = 0;       ///< 1-based source line.
    int column = 0;     ///< 1-based source column.
};

} // namespace ucx

#endif // UCX_HDL_TOKEN_HH
