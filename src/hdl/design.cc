#include "hdl/design.hh"

#include "hdl/parser.hh"
#include "util/error.hh"

namespace ucx
{

void
Design::addSource(const std::string &source, const std::string &file)
{
    SourceFile sf = parseSource(source, file);
    for (auto &mod : sf.modules)
        addModule(std::move(mod));
    source_ += source;
    if (!source_.empty() && source_.back() != '\n')
        source_ += '\n';
}

void
Design::addModule(Module module)
{
    // Take the key before moving: the RHS of the map assignment is
    // sequenced before the subscript expression.
    std::string name = module.name;
    require(modules_.find(name) == modules_.end(),
            "duplicate module '" + name + "'");
    order_.push_back(name);
    modules_[name] = std::make_shared<Module>(std::move(module));
}

const Module &
Design::module(const std::string &name) const
{
    auto it = modules_.find(name);
    require(it != modules_.end(), "unknown module '" + name + "'");
    return *it->second;
}

bool
Design::hasModule(const std::string &name) const
{
    return modules_.find(name) != modules_.end();
}

} // namespace ucx
