/**
 * @file
 * A design: a set of parsed modules with name lookup, the unit the
 * elaborator and the accounting procedure operate on.
 */

#ifndef UCX_HDL_DESIGN_HH
#define UCX_HDL_DESIGN_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hdl/ast.hh"

namespace ucx
{

/** A collection of modules forming one design. */
class Design
{
  public:
    /** Create an empty design. */
    Design() = default;

    /**
     * Parse source text and add its modules.
     *
     * @param source µHDL source text.
     * @param file   File name for diagnostics.
     */
    void addSource(const std::string &source,
                   const std::string &file = "<input>");

    /**
     * Add an already-parsed module.
     *
     * @param module Module to add; duplicate names are an error.
     */
    void addModule(Module module);

    /**
     * Look a module up by name.
     *
     * @param name Module name.
     * @return The module; throws UcxError when missing.
     */
    const Module &module(const std::string &name) const;

    /** @return True when a module with this name exists. */
    bool hasModule(const std::string &name) const;

    /** @return All module names in insertion order. */
    const std::vector<std::string> &moduleNames() const
    {
        return order_;
    }

    /** @return Concatenated source text of everything added. */
    const std::string &sourceText() const { return source_; }

  private:
    std::map<std::string, std::shared_ptr<Module>> modules_;
    std::vector<std::string> order_;
    std::string source_;
};

} // namespace ucx

#endif // UCX_HDL_DESIGN_HH
