#include "hdl/source_metrics.hh"

#include <cctype>

#include "hdl/parser.hh"

namespace ucx
{

size_t
countLoc(const std::string &source)
{
    size_t loc = 0;
    bool in_block_comment = false;
    bool line_has_code = false;
    bool in_line_comment = false;

    for (size_t i = 0; i <= source.size(); ++i) {
        char c = i < source.size() ? source[i] : '\n';
        if (c == '\n') {
            if (line_has_code)
                ++loc;
            line_has_code = false;
            in_line_comment = false;
            continue;
        }
        if (in_line_comment)
            continue;
        if (in_block_comment) {
            if (c == '*' && i + 1 < source.size() &&
                source[i + 1] == '/') {
                in_block_comment = false;
                ++i;
            }
            continue;
        }
        if (c == '/' && i + 1 < source.size()) {
            if (source[i + 1] == '/') {
                in_line_comment = true;
                ++i;
                continue;
            }
            if (source[i + 1] == '*') {
                in_block_comment = true;
                ++i;
                continue;
            }
        }
        if (!std::isspace(static_cast<unsigned char>(c)))
            line_has_code = true;
    }
    return loc;
}

namespace
{

size_t countStmt(const Stmt &stmt);

size_t
countStmtList(const std::vector<StmtPtr> &stmts)
{
    size_t n = 0;
    for (const auto &s : stmts)
        n += countStmt(*s);
    return n;
}

size_t
countStmt(const Stmt &stmt)
{
    switch (stmt.kind) {
      case StmtKind::Block:
        return countStmtList(stmt.stmts);
      case StmtKind::If: {
        size_t n = 1 + countStmt(*stmt.thenStmt);
        if (stmt.elseStmt)
            n += countStmt(*stmt.elseStmt);
        return n;
      }
      case StmtKind::Case: {
        size_t n = 1;
        for (const auto &item : stmt.items)
            n += countStmt(*item.body);
        return n;
      }
      case StmtKind::Assign:
        return 1;
      case StmtKind::For:
        return 1 + countStmt(*stmt.thenStmt);
    }
    return 0;
}

size_t countItem(const Item &item);

size_t
countItemList(const std::vector<ItemPtr> &items)
{
    size_t n = 0;
    for (const auto &i : items)
        n += countItem(*i);
    return n;
}

size_t
countItem(const Item &item)
{
    switch (item.kind) {
      case ItemKind::Net:
        return item.names.size();
      case ItemKind::Localparam:
        return 1;
      case ItemKind::ContAssign:
        return 1;
      case ItemKind::Always:
        return 1 + countStmt(*item.body);
      case ItemKind::Instance:
        return 1;
      case ItemKind::GenFor:
        return 1 + countItemList(item.genBody);
      case ItemKind::GenIf: {
        size_t n = 1 + countItemList(item.genThen);
        n += countItemList(item.genElse);
        return n;
      }
      case ItemKind::Genvar:
        return item.genvarNames.size();
    }
    return 0;
}

} // namespace

size_t
countStmts(const Module &module)
{
    // Ports and parameters count one statement each: they are
    // declarations the designer wrote.
    size_t n = module.ports.size() + module.params.size();
    n += countItemList(module.items);
    return n;
}

SourceMetrics
measureSource(const std::string &source, const std::string &file)
{
    SourceMetrics m;
    m.loc = countLoc(source);
    SourceFile sf = parseSource(source, file);
    for (const auto &mod : sf.modules)
        m.stmts += countStmts(mod);
    return m;
}

} // namespace ucx
