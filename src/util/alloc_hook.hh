/**
 * @file
 * Counting allocator hook — heap-allocation accounting for tests
 * and benchmarks.
 *
 * Linking the `ucx_alloc_hook` library into a binary replaces the
 * global operator new/delete with counting wrappers around malloc/
 * free. Counts are kept twice: per thread (plain thread-local
 * integers, so a worker can assert *its own* steady state without
 * cross-thread noise) and process-wide (relaxed atomics). The hook
 * itself never allocates and costs two increments per call, so
 * steady-state assertions measure the code under test, not the
 * instrument.
 *
 * This is deliberately NOT linked into the core libraries: only the
 * allocation tests and perf_microbench opt in, so ordinary binaries
 * keep the system allocator untouched.
 */

#ifndef UCX_UTIL_ALLOC_HOOK_HH
#define UCX_UTIL_ALLOC_HOOK_HH

#include <cstdint>

namespace ucx
{

/** Snapshot of allocation counters from the counting hook. */
struct AllocCounts
{
    /** Number of operator new (all variants) calls. */
    uint64_t allocs = 0;
    /** Number of operator delete (all variants) calls. */
    uint64_t frees = 0;
    /** Total bytes requested through operator new. */
    uint64_t bytes = 0;
};

/** @return Process-wide allocation counts since process start. */
AllocCounts allocCountsGlobal();

/**
 * @return The calling thread's allocation counts since the thread
 *         first allocated.
 */
AllocCounts allocCountsThread();

/**
 * Export the process-wide counts as obs counters
 * `alloc.hook.{allocs,frees,bytes}` (set-to-current semantics via
 * reset+add, so repeated publishes do not double count). No-op while
 * obs collection is disabled.
 */
void publishAllocCounters();

} // namespace ucx

#endif // UCX_UTIL_ALLOC_HOOK_HH
