/**
 * @file
 * Deterministic random number generator wrapper.
 *
 * All stochastic code in µComplexity (multi-start optimization,
 * synthetic-data property tests, Monte-Carlo checks) draws through
 * this wrapper so runs are reproducible from a single seed.
 */

#ifndef UCX_UTIL_RNG_HH
#define UCX_UTIL_RNG_HH

#include <cstdint>

namespace ucx
{

/**
 * xoshiro256** generator with convenience draws.
 *
 * Chosen over std::mt19937 for a stable cross-platform stream that is
 * part of this library's contract (tests depend on the stream).
 */
class Rng
{
  public:
    /**
     * Create a generator.
     *
     * @param seed Any value; expanded through SplitMix64.
     */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return The next raw 64-bit draw. */
    uint64_t next();

    /** @return A uniform double in [0, 1). */
    double uniform();

    /**
     * @param lo Lower bound (inclusive).
     * @param hi Upper bound (exclusive).
     * @return A uniform double in [lo, hi).
     */
    double uniform(double lo, double hi);

    /**
     * @param mean  Mean of the normal distribution.
     * @param sigma Standard deviation, must be >= 0.
     * @return A normal draw via Box-Muller.
     */
    double normal(double mean = 0.0, double sigma = 1.0);

    /**
     * @param mu    Mean of the underlying normal (log scale).
     * @param sigma Standard deviation of the underlying normal.
     * @return A lognormal draw exp(N(mu, sigma^2)).
     */
    double lognormal(double mu, double sigma);

    /**
     * @param n Exclusive upper bound, must be > 0.
     * @return A uniform integer in [0, n).
     */
    uint64_t below(uint64_t n);

    /**
     * Derive an independent child stream (counter-based splitting).
     *
     * The child seed is a SplitMix64 hash of this generator's
     * current state and @p streamId, so distinct ids give decorrelated
     * streams and splitting neither advances this generator nor
     * inherits its Box-Muller spare. Task i of a parallel loop draws
     * from split(i): the draws are a pure function of (root seed, i),
     * independent of thread count and scheduling order.
     *
     * @param streamId Stream number (the task/replicate index).
     * @return A fresh generator for that stream.
     */
    Rng split(uint64_t streamId) const;

  private:
    uint64_t state_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace ucx

#endif // UCX_UTIL_RNG_HH
