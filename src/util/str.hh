/**
 * @file
 * Small string utilities used across the µComplexity libraries.
 */

#ifndef UCX_UTIL_STR_HH
#define UCX_UTIL_STR_HH

#include <string>
#include <vector>

namespace ucx
{

/**
 * Split a string on a single-character delimiter.
 *
 * @param text  Input text.
 * @param delim Delimiter character.
 * @return The (possibly empty) fields between delimiters.
 */
std::vector<std::string> split(const std::string &text, char delim);

/**
 * Split a string on runs of whitespace, dropping empty fields.
 *
 * @param text Input text.
 * @return The non-empty whitespace-separated tokens.
 */
std::vector<std::string> splitWs(const std::string &text);

/** @return @p text with leading and trailing whitespace removed. */
std::string trim(const std::string &text);

/** @return @p text converted to lower case (ASCII only). */
std::string toLower(const std::string &text);

/** @return True when @p text starts with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** @return True when @p text ends with @p suffix. */
bool endsWith(const std::string &text, const std::string &suffix);

/**
 * Join strings with a separator.
 *
 * @param parts Pieces to join.
 * @param sep   Separator inserted between consecutive pieces.
 * @return The joined string.
 */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/**
 * Format a double with a fixed number of decimals.
 *
 * @param value    Value to format.
 * @param decimals Digits after the decimal point.
 * @return The formatted value.
 */
std::string fmtFixed(double value, int decimals);

/**
 * Format a double compactly: integers without a decimal point,
 * otherwise with up to @p decimals digits, trailing zeros trimmed.
 *
 * @param value    Value to format.
 * @param decimals Maximum digits after the decimal point.
 * @return The formatted value.
 */
std::string fmtCompact(double value, int decimals = 4);

} // namespace ucx

#endif // UCX_UTIL_STR_HH
