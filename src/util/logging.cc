#include "util/logging.hh"

#include <iostream>

namespace ucx
{

namespace
{

LogLevel globalLevel = LogLevel::Info;

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (level >= globalLevel)
        std::cerr << tag << msg << std::endl;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
debug(const std::string &msg)
{
    emit(LogLevel::Debug, "debug: ", msg);
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Info, "info: ", msg);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, "warn: ", msg);
}

} // namespace ucx
