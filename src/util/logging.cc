#include "util/logging.hh"

#include <cstdlib>
#include <iostream>

#include "util/str.hh"

namespace ucx
{

namespace
{

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("UCX_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::Info;
    std::string name = toLower(trim(env));
    if (name == "debug")
        return LogLevel::Debug;
    if (name == "info")
        return LogLevel::Info;
    if (name == "warn" || name == "warning")
        return LogLevel::Warn;
    if (name == "error")
        return LogLevel::Error;
    if (name == "quiet")
        return LogLevel::Quiet;
    return LogLevel::Info;
}

LogLevel &
globalLevel()
{
    // Initialized from UCX_LOG_LEVEL at first use of the logger, so
    // benches and examples can be made verbose without recompiling.
    static LogLevel level = levelFromEnv();
    return level;
}

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (level >= globalLevel())
        std::cerr << tag << msg << std::endl;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel() = level;
}

LogLevel
logLevel()
{
    return globalLevel();
}

void
debug(const std::string &msg)
{
    emit(LogLevel::Debug, "debug: ", msg);
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Info, "info: ", msg);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, "warn: ", msg);
}

void
error(const std::string &msg)
{
    emit(LogLevel::Error, "error: ", msg);
}

} // namespace ucx
