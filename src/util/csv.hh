/**
 * @file
 * Minimal CSV writer used by benches to optionally dump machine-
 * readable series next to the human-readable tables.
 */

#ifndef UCX_UTIL_CSV_HH
#define UCX_UTIL_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace ucx
{

/**
 * Streams rows of fields to an ostream in RFC-4180 style (quotes
 * fields containing commas, quotes, or newlines).
 */
class CsvWriter
{
  public:
    /**
     * Create a writer.
     *
     * @param out Stream the CSV rows are appended to.
     */
    explicit CsvWriter(std::ostream &out);

    /**
     * Write one row.
     *
     * @param fields Field values; escaped as needed.
     */
    void writeRow(const std::vector<std::string> &fields);

  private:
    static std::string escape(const std::string &field);

    std::ostream &out_;
};

} // namespace ucx

#endif // UCX_UTIL_CSV_HH
