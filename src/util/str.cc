#include "util/str.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

namespace ucx
{

std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> out;
    std::string field;
    std::istringstream in(text);
    while (std::getline(in, field, delim))
        out.push_back(field);
    if (!text.empty() && text.back() == delim)
        out.push_back("");
    if (text.empty())
        out.push_back("");
    return out;
}

std::vector<std::string>
splitWs(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string tok;
    while (in >> tok)
        out.push_back(tok);
    return out;
}

std::string
trim(const std::string &text)
{
    size_t b = 0;
    size_t e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    return text.substr(b, e - b);
}

std::string
toLower(const std::string &text)
{
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
fmtFixed(double value, int decimals)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(decimals);
    out << value;
    return out.str();
}

std::string
fmtCompact(double value, int decimals)
{
    if (std::isfinite(value) && value == std::floor(value) &&
        std::abs(value) < 1e15) {
        std::ostringstream out;
        out << static_cast<long long>(value);
        return out.str();
    }
    std::string s = fmtFixed(value, decimals);
    while (!s.empty() && s.back() == '0')
        s.pop_back();
    if (!s.empty() && s.back() == '.')
        s.pop_back();
    return s;
}

} // namespace ucx
