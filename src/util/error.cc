#include "util/error.hh"

namespace ucx
{

void
fatal(const std::string &msg)
{
    throw UcxError(msg);
}

void
panic(const std::string &msg)
{
    throw UcxPanic(msg);
}

void
require(bool cond, const std::string &msg)
{
    if (!cond)
        fatal(msg);
}

void
require(bool cond, const char *msg)
{
    if (!cond)
        fatal(msg);
}

void
ensure(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

void
ensure(bool cond, const char *msg)
{
    if (!cond)
        panic(msg);
}

} // namespace ucx
