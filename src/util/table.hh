/**
 * @file
 * Fixed-width ASCII table formatter.
 *
 * Every bench binary renders its reproduction of a paper table or
 * figure series through this formatter so output stays uniform and
 * diffable.
 */

#ifndef UCX_UTIL_TABLE_HH
#define UCX_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace ucx
{

/** Horizontal alignment of a table column. */
enum class Align
{
    Left,
    Right,
};

/**
 * Accumulates rows of string cells and renders them as an aligned
 * ASCII table with a header rule.
 */
class Table
{
  public:
    /**
     * Create a table.
     *
     * @param headers Column titles; fixes the column count.
     */
    explicit Table(std::vector<std::string> headers);

    /**
     * Set the alignment of one column (default: left for the first
     * column, right for the rest).
     *
     * @param col   Column index.
     * @param align Desired alignment.
     */
    void setAlign(size_t col, Align align);

    /**
     * Append a row of preformatted cells.
     *
     * @param cells One string per column.
     */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator rule before the next row. */
    void addRule();

    /** @return The number of data rows added so far. */
    size_t rows() const { return rows_.size(); }

    /** @return The rendered table as a single string. */
    std::string render() const;

  private:
    struct Row
    {
        bool rule = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<Row> rows_;
};

} // namespace ucx

#endif // UCX_UTIL_TABLE_HH
