/**
 * @file
 * Error-handling primitives shared by every µComplexity library.
 *
 * Follows the gem5 convention of separating user-caused failures
 * (fatal -> UcxError) from internal invariant violations
 * (panic -> UcxPanic).
 */

#ifndef UCX_UTIL_ERROR_HH
#define UCX_UTIL_ERROR_HH

#include <stdexcept>
#include <string>

namespace ucx
{

/**
 * Exception thrown when an operation cannot continue because of a
 * condition caused by the caller (bad input file, singular matrix
 * supplied by the user, unknown metric name, ...).
 */
class UcxError : public std::runtime_error
{
  public:
    explicit UcxError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Exception thrown when an internal invariant is violated; indicates a
 * bug in µComplexity itself rather than in its inputs.
 */
class UcxPanic : public std::logic_error
{
  public:
    explicit UcxPanic(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/**
 * Throw a UcxError with a printf-free formatted message.
 *
 * @param msg Description of the user-facing failure.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Throw a UcxPanic. Use for conditions that can only arise from an
 * internal bug.
 *
 * @param msg Description of the violated invariant.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Check a user-facing precondition; throws UcxError when it fails.
 *
 * @param cond Condition that must hold.
 * @param msg  Message used when the condition fails.
 */
void require(bool cond, const std::string &msg);

/**
 * String-literal overload: the message is only materialized into a
 * std::string on failure, so checks in allocation-free hot paths
 * (the fitting kernels) cost a branch, not a heap allocation.
 */
void require(bool cond, const char *msg);

/**
 * Check an internal invariant; throws UcxPanic when it fails.
 *
 * @param cond Condition that must hold.
 * @param msg  Message used when the condition fails.
 */
void ensure(bool cond, const std::string &msg);

/** String-literal overload; see require(bool, const char *). */
void ensure(bool cond, const char *msg);

} // namespace ucx

#endif // UCX_UTIL_ERROR_HH
