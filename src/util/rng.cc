#include "util/rng.hh"

#include <cmath>

#include "util/error.hh"

namespace ucx
{

namespace
{

uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &w : state_)
        w = splitMix64(s);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::normal(double mean, double sigma)
{
    require(sigma >= 0.0, "normal draw needs sigma >= 0");
    if (haveSpare_) {
        haveSpare_ = false;
        return mean + sigma * spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    haveSpare_ = true;
    return mean + sigma * r * std::cos(theta);
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

Rng
Rng::split(uint64_t streamId) const
{
    // Hash the full state with the stream id through SplitMix64.
    // Deliberately const: the derivation must not depend on how many
    // draws interleave with other split() calls, or per-task streams
    // would stop being a pure function of (seed, streamId).
    uint64_t x = streamId;
    uint64_t seed = splitMix64(x);
    for (uint64_t w : state_) {
        x ^= w;
        seed ^= splitMix64(x);
    }
    return Rng(seed);
}

uint64_t
Rng::below(uint64_t n)
{
    require(n > 0, "below() needs n > 0");
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t draw = 0;
    do {
        draw = next();
    } while (draw >= limit);
    return draw % n;
}

} // namespace ucx
