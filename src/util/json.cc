#include "util/json.hh"

#include <cctype>
#include <cstdlib>

#include "util/error.hh"

namespace ucx
{
namespace json
{

namespace
{

/** Nesting bound: deep enough for any ucx report, shallow enough to
 *  keep malicious input from exhausting the stack. */
constexpr int kMaxDepth = 256;

} // namespace

/** Recursive-descent parser over the input text. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        Value root = parseValue(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after the top-level value");
        return root;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw UcxError("json: " + what + " at offset " +
                       std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Value
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting deeper than " + std::to_string(kMaxDepth));
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': return makeString(parseString());
          case 't': return parseKeyword("true", makeBool(true));
          case 'f': return parseKeyword("false", makeBool(false));
          case 'n': return parseKeyword("null", Value());
          default: return parseNumber();
        }
    }

    Value
    parseKeyword(const std::string &word, Value value)
    {
        if (text_.compare(pos_, word.size(), word) != 0)
            fail("invalid literal");
        pos_ += word.size();
        return value;
    }

    Value
    parseNumber()
    {
        size_t start = pos_;
        if (consume('-')) {
        }
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            fail("invalid number");
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
            fail("leading zero in number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (consume('.')) {
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                fail("digits required after decimal point");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (consume('e') || consume('E')) {
            if (!consume('+'))
                consume('-');
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                fail("digits required in exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        Value v;
        v.type_ = Value::Type::Number;
        v.number_ = std::strtod(text_.c_str() + start, nullptr);
        return v;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += parseUnicodeEscape(); break;
              default: fail("unknown escape");
            }
        }
    }

    std::string
    parseUnicodeEscape()
    {
        unsigned cp = parseHex4();
        // Surrogate pair: a high surrogate must be followed by
        // "\uDC00".."\uDFFF"; encode the combined code point.
        if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (!consume('\\') || !consume('u'))
                fail("lone high surrogate");
            unsigned lo = parseHex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
                fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
        }
        std::string out;
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        return out;
    }

    unsigned
    parseHex4()
    {
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            char c = peek();
            ++pos_;
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape");
        }
        return value;
    }

    Value
    parseArray(int depth)
    {
        expect('[');
        Value v;
        v.type_ = Value::Type::Array;
        skipWs();
        if (consume(']'))
            return v;
        for (;;) {
            v.items_.push_back(parseValue(depth + 1));
            skipWs();
            if (consume(']'))
                return v;
            expect(',');
        }
    }

    Value
    parseObject(int depth)
    {
        expect('{');
        Value v;
        v.type_ = Value::Type::Object;
        skipWs();
        if (consume('}'))
            return v;
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.members_.emplace_back(std::move(key),
                                    parseValue(depth + 1));
            skipWs();
            if (consume('}'))
                return v;
            expect(',');
        }
    }

    static Value
    makeBool(bool b)
    {
        Value v;
        v.type_ = Value::Type::Bool;
        v.bool_ = b;
        return v;
    }

    static Value
    makeString(std::string s)
    {
        Value v;
        v.type_ = Value::Type::String;
        v.string_ = std::move(s);
        return v;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

Value
Value::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

bool
Value::asBool() const
{
    require(type_ == Type::Bool, "json: value is not a bool");
    return bool_;
}

double
Value::asNumber() const
{
    require(type_ == Type::Number, "json: value is not a number");
    return number_;
}

const std::string &
Value::asString() const
{
    require(type_ == Type::String, "json: value is not a string");
    return string_;
}

const std::vector<Value> &
Value::items() const
{
    require(type_ == Type::Array, "json: value is not an array");
    return items_;
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    require(type_ == Type::Object, "json: value is not an object");
    return members_;
}

const Value *
Value::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[name, value] : members_)
        if (name == key)
            return &value;
    return nullptr;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    require(v != nullptr, "json: missing member '" + key + "'");
    return *v;
}

} // namespace json
} // namespace ucx
