/**
 * @file
 * Minimal JSON value parser for the tooling layer (ucx_obsdiff reads
 * BENCH_<name>.json reports; tests round-trip the Perfetto export).
 *
 * Full RFC 8259 input grammar (objects, arrays, strings with
 * escapes, numbers, true/false/null); values are immutable once
 * parsed. Object members preserve input order and duplicate keys
 * keep the first occurrence on lookup. Malformed input throws
 * UcxError with a byte offset.
 */

#ifndef UCX_UTIL_JSON_HH
#define UCX_UTIL_JSON_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ucx
{
namespace json
{

/** One parsed JSON value. */
class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /**
     * Parse a complete JSON document.
     *
     * @param text JSON text; trailing whitespace is allowed, any
     *             other trailing content is an error.
     * @return The root value.
     */
    static Value parse(const std::string &text);

    /** @return The value's type. */
    Type type() const { return type_; }

    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** @return The boolean payload; value must be a Bool. */
    bool asBool() const;

    /** @return The numeric payload; value must be a Number. */
    double asNumber() const;

    /** @return The string payload; value must be a String. */
    const std::string &asString() const;

    /** @return The elements; value must be an Array. */
    const std::vector<Value> &items() const;

    /** @return The members in input order; must be an Object. */
    const std::vector<std::pair<std::string, Value>> &members() const;

    /**
     * Object member lookup.
     *
     * @param key Member name.
     * @return The member value, or nullptr when absent (or when
     *         this value is not an object).
     */
    const Value *find(const std::string &key) const;

    /**
     * Required member lookup; throws UcxError naming @p key when the
     * member is absent or this value is not an object.
     *
     * @param key Member name.
     * @return The member value.
     */
    const Value &at(const std::string &key) const;

    Value() = default;

  private:
    friend class Parser;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> items_;
    std::vector<std::pair<std::string, Value>> members_;
};

} // namespace json
} // namespace ucx

#endif // UCX_UTIL_JSON_HH
