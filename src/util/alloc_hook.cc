#include "util/alloc_hook.hh"

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/metrics.hh"

namespace
{

// Process-wide tallies. Relaxed is enough: readers only want a
// consistent-enough snapshot, never ordering against other memory.
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};
std::atomic<uint64_t> g_bytes{0};

// Per-thread tallies: plain integers, no synchronization needed.
thread_local uint64_t t_allocs = 0;
thread_local uint64_t t_frees = 0;
thread_local uint64_t t_bytes = 0;

void *
countedAlloc(size_t size)
{
    t_allocs += 1;
    t_bytes += size;
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
    // malloc(0) may return nullptr legitimately; operator new must
    // return a unique pointer, so round zero up.
    return std::malloc(size ? size : 1);
}

void
countedFree(void *ptr)
{
    if (!ptr)
        return;
    t_frees += 1;
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(ptr);
}

void *
countedAllocAligned(size_t size, size_t align)
{
    t_allocs += 1;
    t_bytes += size;
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
    void *ptr = nullptr;
    if (posix_memalign(&ptr, align < sizeof(void *) ? sizeof(void *)
                                                    : align,
                       size ? size : align) != 0)
        return nullptr;
    return ptr;
}

} // namespace

// ---------------------------------------------------------------
// Global replacement operators. Defining any of these in a linked
// object file overrides the toolchain defaults for the whole binary.
// ---------------------------------------------------------------

void *
operator new(size_t size)
{
    void *ptr = countedAlloc(size);
    if (!ptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](size_t size)
{
    void *ptr = countedAlloc(size);
    if (!ptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new(size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new[](size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new(size_t size, std::align_val_t align)
{
    void *ptr = countedAllocAligned(size, static_cast<size_t>(align));
    if (!ptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](size_t size, std::align_val_t align)
{
    void *ptr = countedAllocAligned(size, static_cast<size_t>(align));
    if (!ptr)
        throw std::bad_alloc();
    return ptr;
}

void
operator delete(void *ptr) noexcept
{
    countedFree(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    countedFree(ptr);
}

void
operator delete(void *ptr, size_t) noexcept
{
    countedFree(ptr);
}

void
operator delete[](void *ptr, size_t) noexcept
{
    countedFree(ptr);
}

void
operator delete(void *ptr, const std::nothrow_t &) noexcept
{
    countedFree(ptr);
}

void
operator delete[](void *ptr, const std::nothrow_t &) noexcept
{
    countedFree(ptr);
}

void
operator delete(void *ptr, std::align_val_t) noexcept
{
    countedFree(ptr);
}

void
operator delete[](void *ptr, std::align_val_t) noexcept
{
    countedFree(ptr);
}

void
operator delete(void *ptr, size_t, std::align_val_t) noexcept
{
    countedFree(ptr);
}

void
operator delete[](void *ptr, size_t, std::align_val_t) noexcept
{
    countedFree(ptr);
}

namespace ucx
{

AllocCounts
allocCountsGlobal()
{
    AllocCounts c;
    c.allocs = g_allocs.load(std::memory_order_relaxed);
    c.frees = g_frees.load(std::memory_order_relaxed);
    c.bytes = g_bytes.load(std::memory_order_relaxed);
    return c;
}

AllocCounts
allocCountsThread()
{
    AllocCounts c;
    c.allocs = t_allocs;
    c.frees = t_frees;
    c.bytes = t_bytes;
    return c;
}

void
publishAllocCounters()
{
    if (!obs::enabled())
        return;
    AllocCounts c = allocCountsGlobal();
    static obs::Counter &allocs = obs::counter("alloc.hook.allocs");
    static obs::Counter &frees = obs::counter("alloc.hook.frees");
    static obs::Counter &bytes = obs::counter("alloc.hook.bytes");
    allocs.reset();
    allocs.add(c.allocs);
    frees.reset();
    frees.add(c.frees);
    bytes.reset();
    bytes.add(c.bytes);
}

} // namespace ucx
