#include "util/table.hh"

#include <algorithm>
#include <sstream>

#include "util/error.hh"

namespace ucx
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    require(!headers_.empty(), "table needs at least one column");
    aligns_.assign(headers_.size(), Align::Right);
    aligns_[0] = Align::Left;
}

void
Table::setAlign(size_t col, Align align)
{
    require(col < aligns_.size(), "column index out of range");
    aligns_[col] = align;
}

void
Table::addRow(std::vector<std::string> cells)
{
    require(cells.size() == headers_.size(),
            "row width does not match header width");
    rows_.push_back(Row{false, std::move(cells)});
}

void
Table::addRule()
{
    rows_.push_back(Row{true, {}});
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const Row &row : rows_) {
        if (row.rule)
            continue;
        for (size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto pad = [](const std::string &s, size_t w, Align a) {
        std::string fill(w - s.size(), ' ');
        return a == Align::Left ? s + fill : fill + s;
    };

    std::ostringstream out;
    auto emitRule = [&]() {
        for (size_t c = 0; c < widths.size(); ++c) {
            out << std::string(widths[c] + 2, '-');
            if (c + 1 < widths.size())
                out << '+';
        }
        out << '\n';
    };

    for (size_t c = 0; c < headers_.size(); ++c) {
        out << ' ' << pad(headers_[c], widths[c], aligns_[c]) << ' ';
        if (c + 1 < headers_.size())
            out << '|';
    }
    out << '\n';
    emitRule();

    for (const Row &row : rows_) {
        if (row.rule) {
            emitRule();
            continue;
        }
        for (size_t c = 0; c < row.cells.size(); ++c) {
            out << ' ' << pad(row.cells[c], widths[c], aligns_[c]) << ' ';
            if (c + 1 < row.cells.size())
                out << '|';
        }
        out << '\n';
    }
    return out.str();
}

} // namespace ucx
