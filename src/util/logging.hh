/**
 * @file
 * Minimal leveled logging for µComplexity tools.
 *
 * Benches and examples print their tables on stdout; diagnostics go
 * through this logger on stderr so table output stays machine-parsable.
 */

#ifndef UCX_UTIL_LOGGING_HH
#define UCX_UTIL_LOGGING_HH

#include <string>

namespace ucx
{

/** Severity of a log message. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Quiet = 4,
};

/**
 * Set the global minimum severity that is printed.
 *
 * The initial level comes from the UCX_LOG_LEVEL environment
 * variable (debug|info|warn|error|quiet, case-insensitive; read at
 * first use of the logger) and defaults to Info when the variable is
 * unset or unrecognized.
 *
 * @param level Messages below this level are suppressed.
 */
void setLogLevel(LogLevel level);

/** @return The current global minimum severity. */
LogLevel logLevel();

/** Print a debug-level message to stderr. */
void debug(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Print a warning to stderr. */
void warn(const std::string &msg);

/** Print an error to stderr (ranked above warnings). */
void error(const std::string &msg);

} // namespace ucx

#endif // UCX_UTIL_LOGGING_HH
