#include "nlme/mixed_model.hh"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "nlme/criteria.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/tracelog.hh"
#include "opt/multistart.hh"
#include "opt/transform.hh"
#include "opt/workspace.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace ucx
{

bool
MixedModelConfig::defaultAnalyticGradient()
{
    static const bool on = [] {
        const char *env = std::getenv("UCX_ANALYTIC_GRAD");
        return !(env && *env != '\0' && std::string(env) == "0");
    }();
    return on;
}

MixedModel::MixedModel(NlmeData data, MixedModelConfig config)
    : data_(std::move(data)), config_(config)
{
    data_.validate();
    soa_ = nlme::SoaData::fromData(data_);
}

std::optional<std::vector<std::vector<double>>>
MixedModel::residuals(const std::vector<double> &weights) const
{
    require(weights.size() == data_.numCovariates(),
            "weight count does not match covariates");
    FitWorkspace &ws = threadFitWorkspace();
    if (nlme::residualKernel(soa_, weights.data(), ws) !=
        nlme::KernelStatus::Ok)
        return std::nullopt; // invalid weights, never "no data"
    std::vector<std::vector<double>> out;
    out.reserve(soa_.ngroups);
    for (size_t g = 0; g < soa_.ngroups; ++g) {
        out.emplace_back(ws.resid.begin() + soa_.offsets[g],
                         ws.resid.begin() + soa_.offsets[g + 1]);
    }
    return out;
}

double
MixedModel::logLikelihood(const std::vector<double> &weights,
                          double sigma_eps, double sigma_rho) const
{
    require(weights.size() == data_.numCovariates(),
            "weight count does not match covariates");
    require(sigma_eps > 0.0, "sigma_eps must be > 0");
    require(sigma_rho >= 0.0, "sigma_rho must be >= 0");

    FitWorkspace &ws = threadFitWorkspace();
    if (nlme::residualKernel(soa_, weights.data(), ws) !=
        nlme::KernelStatus::Ok)
        return -std::numeric_limits<double>::infinity();

    double var_e = sigma_eps * sigma_eps;
    double var_r = sigma_rho * sigma_rho;
    return nlme::logLikKernel(soa_, ws.resid.data(), var_e, var_r);
}

std::vector<double>
MixedModel::empiricalBayes(const std::vector<double> &weights,
                           double sigma_eps, double sigma_rho) const
{
    require(weights.size() == data_.numCovariates(),
            "weight count does not match covariates");
    FitWorkspace &ws = threadFitWorkspace();
    require(nlme::residualKernel(soa_, weights.data(), ws) ==
                nlme::KernelStatus::Ok,
            "invalid weights in empiricalBayes");
    double var_e = sigma_eps * sigma_eps;
    double var_r = sigma_rho * sigma_rho;

    std::vector<double> b(soa_.ngroups);
    nlme::empiricalBayesKernel(soa_, ws.resid.data(), var_e, var_r,
                               b.data());
    return b;
}

MixedFit
MixedModel::fit(const ExecContext &ctx) const
{
    obs::ScopedSpan span("nlme.mixed.fit");
    obs::TraceScope trace("nlme.mixed.fit");
    const size_t ncov = data_.numCovariates();
    const size_t nobs = data_.totalObservations();

    // Starting weights: put the linear predictor on the scale of the
    // observed efforts; exp(mean(y)) spread evenly across metrics.
    double ybar = 0.0;
    std::vector<double> mbar(ncov, 0.0);
    for (const auto &g : data_.groups) {
        for (size_t j = 0; j < g.y.size(); ++j) {
            ybar += g.y[j];
            for (size_t k = 0; k < ncov; ++k)
                mbar[k] += g.x(j, k);
        }
    }
    ybar /= static_cast<double>(nobs);
    for (double &m : mbar)
        m /= static_cast<double>(nobs);

    std::vector<double> theta0;
    for (size_t k = 0; k < ncov; ++k) {
        double denom = std::max(mbar[k], 1e-12) *
                       static_cast<double>(ncov);
        theta0.push_back(std::exp(ybar) / denom);
    }
    theta0.push_back(0.5); // sigma_eps
    theta0.push_back(0.5); // sigma_rho

    std::vector<Constraint> cons(ncov + 2, Constraint::Positive);
    ParamTransform transform(cons);
    std::vector<double> u0 = transform.toUnconstrained(theta0);

    const double min_sigma = config_.minSigma;
    const nlme::SoaData &soa = soa_;

    // Allocation-free steady state: the objective writes the
    // constrained parameters and all per-observation scratch into
    // the calling thread's workspace. All constraints are Positive,
    // so theta_i = exp(u_i) — elementwise identical to
    // ParamTransform::toConstrained.
    Objective nll = [&, min_sigma](const std::vector<double> &u) {
        FitWorkspace &ws = threadFitWorkspace();
        ws.ensure(soa.nobs, ncov + 2);
        double *theta = ws.theta.data();
        for (size_t i = 0; i < ncov + 2; ++i)
            theta[i] = std::exp(u[i]);
        double se = std::max(theta[ncov], min_sigma);
        double sr = std::max(theta[ncov + 1], min_sigma);
        if (nlme::residualKernel(soa, theta, ws) !=
            nlme::KernelStatus::Ok)
            return std::numeric_limits<double>::infinity();
        double ll = nlme::logLikKernel(soa, ws.resid.data(), se * se,
                                       sr * sr);
        return -ll;
    };

    // Analytic gradient of the negative marginal log-likelihood in
    // the unconstrained space: d(-ll)/du_i = -dll/dtheta_i * theta_i
    // (exp chain rule), with the sigma clamp contributing zero
    // derivative below min_sigma.
    Gradient grad = [&, min_sigma](const std::vector<double> &u,
                                   std::vector<double> &out) {
        FitWorkspace &ws = threadFitWorkspace();
        ws.ensure(soa.nobs, ncov + 2);
        double *theta = ws.theta.data();
        for (size_t i = 0; i < ncov + 2; ++i)
            theta[i] = std::exp(u[i]);
        double se = std::max(theta[ncov], min_sigma);
        double sr = std::max(theta[ncov + 1], min_sigma);
        if (nlme::residualKernel(soa, theta, ws) !=
            nlme::KernelStatus::Ok) {
            // Objective is +inf here; BFGS only differentiates at
            // accepted (finite) points, so a zero direction is safe.
            for (size_t i = 0; i < ncov + 2; ++i)
                out[i] = 0.0;
            return;
        }
        double *g = ws.grad.data();
        nlme::logLikGradKernel(soa, se, sr, ws, g);
        for (size_t k = 0; k < ncov; ++k)
            out[k] = -g[k] * theta[k];
        out[ncov] =
            theta[ncov] >= min_sigma ? -g[ncov] * theta[ncov] : 0.0;
        out[ncov + 1] = theta[ncov + 1] >= min_sigma
                            ? -g[ncov + 1] * theta[ncov + 1]
                            : 0.0;
    };

    MultistartConfig ms;
    ms.starts = config_.starts;
    ms.seed = config_.seed;
    OptResult opt = multistartMinimize(
        nll, config_.analyticGradient ? &grad : nullptr, u0, ms, ctx);

    std::vector<double> theta = transform.toConstrained(opt.x);
    MixedFit fit;
    fit.weights.assign(theta.begin(), theta.begin() + ncov);
    fit.sigmaEps = std::max(theta[ncov], min_sigma);
    fit.sigmaRho = std::max(theta[ncov + 1], min_sigma);
    fit.logLik = -opt.fx;
    fit.nParams = ncov + 2;
    fit.aic = aic(fit.logLik, fit.nParams);
    fit.bic = bic(fit.logLik, fit.nParams, nobs);
    fit.converged = opt.converged;
    fit.trace = std::move(opt.trace);
    if (trace.active()) {
        trace.arg("groups", std::to_string(data_.groups.size()))
            .arg("converged", fit.converged ? "1" : "0");
    }
    if (obs::enabled()) {
        static obs::Counter &fits = obs::counter("nlme.mixed.fits");
        fits.add(1);
    }
    if (!fit.converged) {
        error("mixed-effects fit did not converge (" +
              std::to_string(opt.evaluations) +
              " evaluations, logLik " + fmtCompact(fit.logLik, 4) +
              ")");
    }

    fit.ranef = empiricalBayes(fit.weights, fit.sigmaEps, fit.sigmaRho);
    for (const auto &g : data_.groups)
        fit.groupNames.push_back(g.name);
    for (double b : fit.ranef)
        fit.productivity.push_back(std::exp(-b));
    return fit;
}

} // namespace ucx
