#include "nlme/mixed_model.hh"

#include <cmath>

#include "nlme/criteria.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/tracelog.hh"
#include "opt/multistart.hh"
#include "opt/transform.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace ucx
{

namespace
{

/**
 * Log-density of a zero-mean MVN with compound-symmetric covariance
 * sigma_e^2 I + sigma_r^2 J, evaluated at residual vector r, using
 * the closed-form inverse and determinant of that structure.
 */
double
groupLogLik(const std::vector<double> &r, double var_e, double var_r)
{
    double n = static_cast<double>(r.size());
    double tau = var_e + n * var_r;

    double ss = 0.0;
    double s = 0.0;
    for (double v : r) {
        ss += v * v;
        s += v;
    }

    double log_det = (n - 1.0) * std::log(var_e) + std::log(tau);
    double quad = (ss - (var_r / tau) * s * s) / var_e;
    return -0.5 * (n * std::log(2.0 * M_PI) + log_det + quad);
}

} // namespace

MixedModel::MixedModel(NlmeData data, MixedModelConfig config)
    : data_(std::move(data)), config_(config)
{
    data_.validate();
}

std::vector<std::vector<double>>
MixedModel::residuals(const std::vector<double> &weights) const
{
    std::vector<std::vector<double>> out;
    out.reserve(data_.groups.size());
    for (const auto &g : data_.groups) {
        std::vector<double> r(g.y.size());
        for (size_t j = 0; j < g.y.size(); ++j) {
            double lin = 0.0;
            for (size_t k = 0; k < weights.size(); ++k)
                lin += weights[k] * g.x(j, k);
            if (lin <= 0.0)
                return {}; // signal invalid weights
            r[j] = g.y[j] - std::log(lin);
        }
        out.push_back(std::move(r));
    }
    return out;
}

double
MixedModel::logLikelihood(const std::vector<double> &weights,
                          double sigma_eps, double sigma_rho) const
{
    require(weights.size() == data_.numCovariates(),
            "weight count does not match covariates");
    require(sigma_eps > 0.0, "sigma_eps must be > 0");
    require(sigma_rho >= 0.0, "sigma_rho must be >= 0");

    auto res = residuals(weights);
    if (res.empty())
        return -std::numeric_limits<double>::infinity();

    double var_e = sigma_eps * sigma_eps;
    double var_r = sigma_rho * sigma_rho;
    double ll = 0.0;
    for (const auto &r : res)
        ll += groupLogLik(r, var_e, var_r);
    return ll;
}

std::vector<double>
MixedModel::empiricalBayes(const std::vector<double> &weights,
                           double sigma_eps, double sigma_rho) const
{
    auto res = residuals(weights);
    require(!res.empty(), "invalid weights in empiricalBayes");
    double var_e = sigma_eps * sigma_eps;
    double var_r = sigma_rho * sigma_rho;

    std::vector<double> b;
    b.reserve(res.size());
    for (const auto &r : res) {
        double n = static_cast<double>(r.size());
        double sum = 0.0;
        for (double v : r)
            sum += v;
        // Posterior mean of b_i given the group residuals: shrinkage
        // of the group mean toward zero.
        b.push_back(var_r * sum / (var_e + n * var_r));
    }
    return b;
}

MixedFit
MixedModel::fit(const ExecContext &ctx) const
{
    obs::ScopedSpan span("nlme.mixed.fit");
    obs::TraceScope trace("nlme.mixed.fit");
    const size_t ncov = data_.numCovariates();
    const size_t nobs = data_.totalObservations();

    // Starting weights: put the linear predictor on the scale of the
    // observed efforts; exp(mean(y)) spread evenly across metrics.
    double ybar = 0.0;
    std::vector<double> mbar(ncov, 0.0);
    for (const auto &g : data_.groups) {
        for (size_t j = 0; j < g.y.size(); ++j) {
            ybar += g.y[j];
            for (size_t k = 0; k < ncov; ++k)
                mbar[k] += g.x(j, k);
        }
    }
    ybar /= static_cast<double>(nobs);
    for (double &m : mbar)
        m /= static_cast<double>(nobs);

    std::vector<double> theta0;
    for (size_t k = 0; k < ncov; ++k) {
        double denom = std::max(mbar[k], 1e-12) *
                       static_cast<double>(ncov);
        theta0.push_back(std::exp(ybar) / denom);
    }
    theta0.push_back(0.5); // sigma_eps
    theta0.push_back(0.5); // sigma_rho

    std::vector<Constraint> cons(ncov + 2, Constraint::Positive);
    ParamTransform transform(cons);
    std::vector<double> u0 = transform.toUnconstrained(theta0);

    const double min_sigma = config_.minSigma;
    Objective nll = [&](const std::vector<double> &u) {
        std::vector<double> theta = transform.toConstrained(u);
        std::vector<double> w(theta.begin(), theta.begin() + ncov);
        double se = std::max(theta[ncov], min_sigma);
        double sr = std::max(theta[ncov + 1], min_sigma);
        double ll = logLikelihood(w, se, sr);
        return -ll;
    };

    MultistartConfig ms;
    ms.starts = config_.starts;
    ms.seed = config_.seed;
    OptResult opt = multistartMinimize(nll, u0, ms, ctx);

    std::vector<double> theta = transform.toConstrained(opt.x);
    MixedFit fit;
    fit.weights.assign(theta.begin(), theta.begin() + ncov);
    fit.sigmaEps = std::max(theta[ncov], min_sigma);
    fit.sigmaRho = std::max(theta[ncov + 1], min_sigma);
    fit.logLik = -opt.fx;
    fit.nParams = ncov + 2;
    fit.aic = aic(fit.logLik, fit.nParams);
    fit.bic = bic(fit.logLik, fit.nParams, nobs);
    fit.converged = opt.converged;
    fit.trace = std::move(opt.trace);
    if (trace.active()) {
        trace.arg("groups", std::to_string(data_.groups.size()))
            .arg("converged", fit.converged ? "1" : "0");
    }
    if (obs::enabled()) {
        static obs::Counter &fits = obs::counter("nlme.mixed.fits");
        fits.add(1);
    }
    if (!fit.converged) {
        error("mixed-effects fit did not converge (" +
              std::to_string(opt.evaluations) +
              " evaluations, logLik " + fmtCompact(fit.logLik, 4) +
              ")");
    }

    fit.ranef = empiricalBayes(fit.weights, fit.sigmaEps, fit.sigmaRho);
    for (const auto &g : data_.groups)
        fit.groupNames.push_back(g.name);
    for (double b : fit.ranef)
        fit.productivity.push_back(std::exp(-b));
    return fit;
}

} // namespace ucx
