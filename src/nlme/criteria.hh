/**
 * @file
 * Information criteria used to compare fitted models (paper
 * Section 5.1.1 reports AIC/BIC for DEE1 vs Stmts).
 */

#ifndef UCX_NLME_CRITERIA_HH
#define UCX_NLME_CRITERIA_HH

#include <cstddef>

namespace ucx
{

/**
 * Akaike's information criterion.
 *
 * @param log_lik  Maximized log-likelihood.
 * @param n_params Number of free parameters.
 * @return AIC = -2 log_lik + 2 n_params (lower is better).
 */
double aic(double log_lik, size_t n_params);

/**
 * Bayesian information criterion.
 *
 * @param log_lik  Maximized log-likelihood.
 * @param n_params Number of free parameters.
 * @param n_obs    Number of observations.
 * @return BIC = -2 log_lik + n_params ln(n_obs) (lower is better).
 */
double bic(double log_lik, size_t n_params, size_t n_obs);

} // namespace ucx

#endif // UCX_NLME_CRITERIA_HH
