#include "nlme/profile.hh"

#include <cmath>

#include "exec/task_graph.hh"
#include "opt/multistart.hh"
#include "opt/transform.hh"
#include "stats/normal.hh"
#include "util/error.hh"

namespace ucx
{

namespace
{

/** Pack the free (non-fixed) parameters for the inner optimizer. */
struct FreeLayout
{
    size_t ncov;
    MixedParam fixed;
    size_t weightIndex;

    size_t
    count() const
    {
        return ncov + 2 - 1;
    }

    /** Build full parameter vectors from free ones + fixed value. */
    void
    unpack(const std::vector<double> &free_params, double fixed_value,
           std::vector<double> &weights, double &sigma_eps,
           double &sigma_rho) const
    {
        weights.clear();
        size_t cursor = 0;
        for (size_t k = 0; k < ncov; ++k) {
            if (fixed == MixedParam::Weight && k == weightIndex)
                weights.push_back(fixed_value);
            else
                weights.push_back(free_params[cursor++]);
        }
        if (fixed == MixedParam::SigmaEps)
            sigma_eps = fixed_value;
        else
            sigma_eps = free_params[cursor++];
        if (fixed == MixedParam::SigmaRho)
            sigma_rho = fixed_value;
        else
            sigma_rho = free_params[cursor++];
    }

    /** Extract the free starting values from an ML fit. */
    std::vector<double>
    packStart(const MixedFit &fit) const
    {
        std::vector<double> start;
        for (size_t k = 0; k < ncov; ++k) {
            if (!(fixed == MixedParam::Weight && k == weightIndex))
                start.push_back(std::max(fit.weights[k], 1e-12));
        }
        if (fixed != MixedParam::SigmaEps)
            start.push_back(std::max(fit.sigmaEps, 1e-6));
        if (fixed != MixedParam::SigmaRho)
            start.push_back(std::max(fit.sigmaRho, 1e-6));
        return start;
    }
};

} // namespace

double
profileLogLik(const MixedModel &model, const MixedFit &fit,
              MixedParam param, size_t weight_index, double value,
              size_t starts, const ExecContext &ctx)
{
    require(value > 0.0, "profiled parameter must be > 0");
    size_t ncov = fit.weights.size();
    require(param != MixedParam::Weight || weight_index < ncov,
            "weight index out of range");

    FreeLayout layout{ncov, param, weight_index};
    ParamTransform transform(std::vector<Constraint>(
        layout.count(), Constraint::Positive));

    Objective nll = [&](const std::vector<double> &u) {
        std::vector<double> free_params = transform.toConstrained(u);
        std::vector<double> weights;
        double se = 0.0;
        double sr = 0.0;
        layout.unpack(free_params, value, weights, se, sr);
        se = std::max(se, 1e-6);
        sr = std::max(sr, 1e-6);
        return -model.logLikelihood(weights, se, sr);
    };

    std::vector<double> start = layout.packStart(fit);
    MultistartConfig ms;
    ms.starts = starts;
    ms.jitterSigma = 0.5;
    OptResult opt = multistartMinimize(
        nll, transform.toUnconstrained(start), ms, ctx);
    return -opt.fx;
}

ProfileInterval
profileInterval(const MixedModel &model, const MixedFit &fit,
                MixedParam param, size_t weight_index,
                const ProfileConfig &config, const ExecContext &ctx)
{
    require(config.level > 0.0 && config.level < 1.0,
            "confidence level must be in (0,1)");

    double mle = 0.0;
    switch (param) {
      case MixedParam::Weight:
        require(weight_index < fit.weights.size(),
                "weight index out of range");
        mle = fit.weights[weight_index];
        break;
      case MixedParam::SigmaEps:
        mle = fit.sigmaEps;
        break;
      case MixedParam::SigmaRho:
        mle = fit.sigmaRho;
        break;
    }
    require(mle > 0.0, "MLE must be positive to profile");

    // chi2_{1} quantile from the normal quantile.
    double z = Normal::stdQuantile(0.5 + config.level / 2.0);
    double threshold = fit.logLik - 0.5 * z * z;

    auto pll = [&](double v) {
        return profileLogLik(model, fit, param, weight_index, v,
                             config.starts, ctx);
    };

    ProfileInterval interval;
    interval.level = config.level;

    // Walk outward geometrically until the profile drops below the
    // threshold, then bisect.
    auto search = [&](bool upward) -> std::pair<double, bool> {
        double factor = upward ? 1.6 : 1.0 / 1.6;
        double inside = mle;
        double candidate = mle * factor;
        double limit_hi = mle * config.rangeFactor;
        double limit_lo = mle / config.rangeFactor;
        while (candidate <= limit_hi && candidate >= limit_lo) {
            if (pll(candidate) < threshold)
                break;
            inside = candidate;
            candidate *= factor;
        }
        if (candidate > limit_hi || candidate < limit_lo) {
            // Never crossed: open interval at the cap.
            return {inside, true};
        }
        // Bisection between inside (ll >= threshold) and candidate.
        double lo = std::min(inside, candidate);
        double hi = std::max(inside, candidate);
        for (int it = 0; it < 60; ++it) {
            double mid = std::sqrt(lo * hi); // geometric midpoint
            bool mid_inside = pll(mid) >= threshold;
            if (upward) {
                if (mid_inside)
                    lo = mid;
                else
                    hi = mid;
            } else {
                if (mid_inside)
                    hi = mid;
                else
                    lo = mid;
            }
            if (hi / lo - 1.0 < config.tolerance)
                break;
        }
        return {upward ? lo : hi, false};
    };

    // The walks in the two directions are independent; submit them
    // as two graph nodes (each is a sequential bisection, so this
    // is the natural grain) and join in a fixed order.
    TaskGraph graph(ctx);
    auto upper =
        graph.submit([&search] { return search(true); },
                     "nlme.profile.upper");
    auto lower =
        graph.submit([&search] { return search(false); },
                     "nlme.profile.lower");
    auto ub = upper.take();
    auto lb = lower.take();
    interval.upper = ub.first;
    interval.upperOpen = ub.second;
    interval.lower = lb.first;
    interval.lowerOpen = lb.second;
    return interval;
}

} // namespace ucx
