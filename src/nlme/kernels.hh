/**
 * @file
 * Zero-allocation structure-of-arrays fitting kernels for the
 * µComplexity mixed-effects hot path.
 *
 * Every bootstrap replicate, multistart restart, profile-CI
 * direction and CV fold re-evaluates the compound-symmetric marginal
 * log-likelihood thousands of times. These kernels make one
 * evaluation cheap and allocation-free:
 *
 *  - SoaData flattens a validated NlmeData once per model into
 *    contiguous group-major responses, column-major covariates and a
 *    group offset table;
 *  - the residual and log-likelihood kernels write only into
 *    caller-owned FitWorkspace buffers (opt/workspace.hh), never the
 *    heap;
 *  - the gradient kernel evaluates the *analytic* derivatives of the
 *    marginal log-likelihood w.r.t. (w, sigma_eps, sigma_rho) fused
 *    with the value, replacing O(p) central-difference likelihood
 *    calls per BFGS gradient.
 *
 * Operation-order contract: the kernels perform bit-identical
 * floating-point arithmetic to the original scalar path (per
 * observation, the linear predictor accumulates over covariates in
 * ascending k; per group, the residual sums accumulate in ascending
 * j; groups reduce in data order), so every printed result of the
 * library is byte-identical to the pre-kernel code.
 */

#ifndef UCX_NLME_KERNELS_HH
#define UCX_NLME_KERNELS_HH

#include <cstddef>
#include <vector>

#include "nlme/data.hh"
#include "opt/workspace.hh"

namespace ucx
{
namespace nlme
{

/**
 * Structure-of-arrays view of a grouped data set, built once per
 * fitter. Responses are group-major and contiguous; covariates are
 * column-major (column k occupies [k*nobs, (k+1)*nobs)), so the
 * per-covariate accumulation in the kernels is a unit-stride sweep.
 */
struct SoaData
{
    size_t nobs = 0;             ///< Total observations.
    size_t ncov = 0;             ///< Covariate columns.
    size_t ngroups = 0;          ///< Groups.
    std::vector<double> y;       ///< Responses, group-major.
    std::vector<double> x;       ///< Covariates, column-major.
    std::vector<size_t> offsets; ///< ngroups+1 group boundaries.

    /**
     * Flatten a validated data set.
     *
     * @param data Grouped observations (validate() must hold).
     * @return The SoA view.
     */
    static SoaData fromData(const NlmeData &data);

    /** @return Pointer to covariate column @p k. */
    const double *
    col(size_t k) const
    {
        return x.data() + k * nobs;
    }
};

/** Outcome of the residual kernel. */
enum class KernelStatus
{
    Ok,             ///< Residuals are valid.
    InvalidWeights, ///< Some w.x was <= 0 (log undefined).
};

/**
 * Fused linear-predictor + residual kernel.
 *
 * Computes lin_j = sum_k w_k x_jk (ascending k, matching the scalar
 * path bit-for-bit) and r_j = y_j - log(lin_j) into the workspace's
 * lin/resid buffers. No allocation once the workspace has reached
 * the problem size.
 *
 * @param d  SoA data.
 * @param w  Weight vector of length d.ncov.
 * @param ws Caller-owned workspace; ensure()d by this call.
 * @return InvalidWeights when any linear predictor is <= 0; the
 *         residual buffer is unspecified in that case.
 */
KernelStatus residualKernel(const SoaData &d, const double *w,
                            FitWorkspace &ws);

/**
 * Compound-symmetric marginal log-likelihood from residuals.
 *
 * Per group: log MVN density with covariance var_e I + var_r J via
 * the closed-form determinant and inverse, summed over groups in
 * data order — the exact operation order of the original scalar
 * implementation.
 *
 * @param d     SoA data.
 * @param resid Residuals (ws.resid after residualKernel).
 * @param var_e Residual variance sigma_eps^2.
 * @param var_r Random-effect variance sigma_rho^2.
 * @return The marginal log-likelihood.
 */
double logLikKernel(const SoaData &d, const double *resid, double var_e,
                    double var_r);

/**
 * Fused value + analytic gradient of the marginal log-likelihood.
 *
 * On top of the value (identical to logLikKernel), computes
 *
 *   dll/dw_k        = sum_j ((r_j - c s) / var_e) x_jk / lin_j,
 *   dll/dsigma_eps  = 2 sigma_eps * dll/dvar_e,
 *   dll/dsigma_rho  = 2 sigma_rho * dll/dvar_r,
 *
 * with c = var_r / tau, tau = var_e + n var_r per group, writing the
 * ncov+2 partials into @p grad as [w_0..w_{ncov-1}, sigma_eps,
 * sigma_rho]. Requires ws.lin/ws.resid from a prior residualKernel
 * call at the same weights.
 *
 * @param d         SoA data.
 * @param sigma_eps Residual log-sd (> 0).
 * @param sigma_rho Random-effect log-sd (>= 0).
 * @param ws        Workspace holding lin/resid; coef is scratch.
 * @param grad      Output buffer of length d.ncov + 2.
 * @return The marginal log-likelihood.
 */
double logLikGradKernel(const SoaData &d, double sigma_eps,
                        double sigma_rho, FitWorkspace &ws,
                        double *grad);

/**
 * Empirical-Bayes posterior means from residuals: shrinkage of each
 * group's residual mean toward zero.
 *
 * @param d     SoA data.
 * @param resid Residuals (ws.resid after residualKernel).
 * @param var_e Residual variance.
 * @param var_r Random-effect variance.
 * @param b     Output buffer of length d.ngroups.
 */
void empiricalBayesKernel(const SoaData &d, const double *resid,
                          double var_e, double var_r, double *b);

} // namespace nlme
} // namespace ucx

#endif // UCX_NLME_KERNELS_HH
