#include "nlme/pooled.hh"

#include <cmath>
#include <limits>

#include "nlme/criteria.hh"
#include "obs/metrics.hh"
#include "opt/workspace.hh"
#include "obs/span.hh"
#include "obs/tracelog.hh"
#include "opt/multistart.hh"
#include "opt/transform.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ucx
{

PooledModel::PooledModel(NlmeData data, PooledModelConfig config)
    : data_(std::move(data)), config_(config)
{
    data_.validate();
    soa_ = nlme::SoaData::fromData(data_);
}

double
PooledModel::rss(const std::vector<double> &weights) const
{
    require(weights.size() == data_.numCovariates(),
            "weight count does not match covariates");
    FitWorkspace &ws = threadFitWorkspace();
    if (nlme::residualKernel(soa_, weights.data(), ws) !=
        nlme::KernelStatus::Ok)
        return std::numeric_limits<double>::infinity();
    // Observations are group-major in the SoA view, so this single
    // sweep accumulates in the exact order of the old nested loops.
    const double *resid = ws.resid.data();
    double ss = 0.0;
    for (size_t j = 0; j < soa_.nobs; ++j)
        ss += resid[j] * resid[j];
    return ss;
}

PooledFit
PooledModel::fit(const ExecContext &ctx) const
{
    obs::ScopedSpan span("nlme.pooled.fit");
    obs::TraceScope trace("nlme.pooled.fit");
    const size_t ncov = data_.numCovariates();
    const size_t nobs = data_.totalObservations();

    double ybar = 0.0;
    std::vector<double> mbar(ncov, 0.0);
    for (const auto &g : data_.groups) {
        for (size_t j = 0; j < g.y.size(); ++j) {
            ybar += g.y[j];
            for (size_t k = 0; k < ncov; ++k)
                mbar[k] += g.x(j, k);
        }
    }
    ybar /= static_cast<double>(nobs);
    for (double &m : mbar)
        m /= static_cast<double>(nobs);

    std::vector<double> theta0;
    for (size_t k = 0; k < ncov; ++k) {
        theta0.push_back(std::exp(ybar) /
                         (std::max(mbar[k], 1e-12) *
                          static_cast<double>(ncov)));
    }

    ParamTransform transform(
        std::vector<Constraint>(ncov, Constraint::Positive));
    std::vector<double> u0 = transform.toUnconstrained(theta0);

    // With sigma profiled out, ML in the weights reduces to least
    // squares on the log scale.
    Objective obj = [&](const std::vector<double> &u) {
        return rss(transform.toConstrained(u));
    };

    MultistartConfig ms;
    ms.starts = config_.starts;
    ms.seed = config_.seed;
    OptResult opt = multistartMinimize(obj, u0, ms, ctx);

    PooledFit fit;
    fit.weights = transform.toConstrained(opt.x);
    double n = static_cast<double>(nobs);
    double var_ml = opt.fx / n; // ML variance estimate
    fit.sigmaEps = std::sqrt(var_ml);
    fit.logLik = -0.5 * n * (std::log(2.0 * M_PI * var_ml) + 1.0);
    fit.nParams = ncov + 1;
    fit.aic = aic(fit.logLik, fit.nParams);
    fit.bic = bic(fit.logLik, fit.nParams, nobs);
    fit.converged = opt.converged;
    fit.trace = std::move(opt.trace);
    if (trace.active()) {
        trace.arg("groups", std::to_string(data_.groups.size()))
            .arg("converged", fit.converged ? "1" : "0");
    }
    if (obs::enabled()) {
        static obs::Counter &fits = obs::counter("nlme.pooled.fits");
        fits.add(1);
    }
    if (!fit.converged) {
        error("pooled fit did not converge (" +
              std::to_string(opt.evaluations) + " evaluations)");
    }
    return fit;
}

} // namespace ucx
