/**
 * @file
 * Generic one-random-intercept NLME fitters: Laplace approximation
 * and adaptive Gauss-Hermite quadrature (AGHQ).
 *
 * These integrate the random effect numerically for an arbitrary
 * mean function, like SAS PROC NLMIXED does. For the µComplexity
 * model the intercept is additive in log space, so both must agree
 * with the analytic MixedModel — that agreement is a key correctness
 * property tested in tests/nlme/.
 */

#ifndef UCX_NLME_GENERIC_HH
#define UCX_NLME_GENERIC_HH

#include <functional>

#include "nlme/data.hh"
#include "nlme/mixed_model.hh"

namespace ucx
{

/**
 * Conditional mean of one observation given the random effect.
 *
 * @param weights Fixed-effect parameter vector (all > 0).
 * @param x       Covariate row of the observation.
 * @param b       Random-effect value for the group.
 * @return The conditional mean of the response.
 */
using MeanFn = std::function<double(const std::vector<double> &weights,
                                    const std::vector<double> &x,
                                    double b)>;

/** @return The µComplexity mean b + log(w . x). */
MeanFn logLinearMean();

/** Integration scheme for the random effect. */
enum class Integration
{
    Laplace, ///< Second-order Laplace approximation.
    Aghq,    ///< Adaptive Gauss-Hermite quadrature.
};

/** Configuration for the generic fitter. */
struct GenericNlmeConfig
{
    Integration integration = Integration::Aghq;
    size_t quadraturePoints = 15; ///< AGHQ node count.
    size_t starts = 4;            ///< Multi-start count.
    uint64_t seed = 77;           ///< Multi-start jitter seed.
};

/**
 * Generic nonlinear mixed-effects fitter for the model
 *
 *     y_ij = mean(w, x_ij, b_i) + N(0, sigma_eps^2),
 *     b_i ~ N(0, sigma_rho^2).
 */
class GenericNlme
{
  public:
    /**
     * Create a fitter.
     *
     * @param data   Grouped observations; validated on construction.
     * @param mean   Conditional mean function.
     * @param config Fitter configuration.
     */
    GenericNlme(NlmeData data, MeanFn mean, GenericNlmeConfig config = {});

    /**
     * Approximate marginal log-likelihood at the given parameters.
     *
     * @param weights   Fixed effects; all > 0.
     * @param sigma_eps Residual sd; > 0.
     * @param sigma_rho Random-effect sd; > 0.
     * @return The integrated log-likelihood under the configured
     *         scheme.
     */
    double logLikelihood(const std::vector<double> &weights,
                         double sigma_eps, double sigma_rho) const;

    /**
     * Fit by maximizing the approximated marginal likelihood.
     *
     * @param ctx Execution context for the multi-start search.
     * @return Fitted parameters; ranef holds the per-group posterior
     *         modes.
     */
    MixedFit fit(const ExecContext &ctx = ExecContext::serial()) const;

  private:
    /**
     * Find the mode of the per-group joint log-density in b and its
     * negative second derivative there (by safeguarded Newton).
     */
    void groupMode(const NlmeGroup &group,
                   const std::vector<double> &weights, double var_e,
                   double var_r, double &b_mode, double &curvature) const;

    /** Joint log-density of one group at random-effect value b. */
    double groupJoint(const NlmeGroup &group,
                      const std::vector<double> &weights, double var_e,
                      double var_r, double b) const;

    NlmeData data_;
    MeanFn mean_;
    GenericNlmeConfig config_;
};

} // namespace ucx

#endif // UCX_NLME_GENERIC_HH
