/**
 * @file
 * Profile-likelihood confidence intervals for the mixed-effects
 * model parameters.
 *
 * The paper reports only point estimates of sigma_eps; a downstream
 * user comparing estimators on a small dataset (18 points!) needs to
 * know how uncertain those sigmas are. The profile interval for a
 * parameter is the set of values whose profile log-likelihood stays
 * within chi2_{1,level}/2 of the maximum, re-optimizing all other
 * parameters at each candidate value.
 */

#ifndef UCX_NLME_PROFILE_HH
#define UCX_NLME_PROFILE_HH

#include <cstddef>

#include "exec/context.hh"
#include "nlme/mixed_model.hh"

namespace ucx
{

/** Which parameter of the mixed model to profile. */
enum class MixedParam
{
    Weight,   ///< One of the w_k (select with weightIndex).
    SigmaEps, ///< Residual log-sd.
    SigmaRho, ///< Random-effect log-sd.
};

/** A profile-likelihood confidence interval. */
struct ProfileInterval
{
    double lower = 0.0;      ///< Lower bound.
    double upper = 0.0;      ///< Upper bound.
    double level = 0.95;     ///< Confidence level used.
    bool lowerOpen = false;  ///< Search hit its range cap below.
    bool upperOpen = false;  ///< Search hit its range cap above.
};

/** Configuration for the profiler. */
struct ProfileConfig
{
    double level = 0.95;   ///< Confidence level in (0,1).
    size_t starts = 2;     ///< Multi-starts per profile point.
    double rangeFactor = 400.0; ///< Max multiplicative search range.
    double tolerance = 1e-3;    ///< Relative bisection tolerance.
};

/**
 * Profile one parameter of a fitted mixed model.
 *
 * @param model        The model (provides the likelihood).
 * @param fit          Its ML fit (center of the profile).
 * @param param        Which parameter to profile.
 * @param weight_index Index of the weight when param == Weight.
 * @param config       Profiler options.
 * @param ctx          Execution context: the upward and downward
 *                     boundary searches run as two parallel tasks,
 *                     and inner re-optimizations use its pool.
 * @return The profile interval around the MLE.
 */
ProfileInterval profileInterval(const MixedModel &model,
                                const MixedFit &fit, MixedParam param,
                                size_t weight_index = 0,
                                const ProfileConfig &config = {},
                                const ExecContext &ctx =
                                    ExecContext::serial());

/**
 * The profile log-likelihood: max over all other parameters with one
 * parameter fixed.
 *
 * @param model        The model.
 * @param fit          ML fit used for starting values.
 * @param param        Which parameter is fixed.
 * @param weight_index Index of the weight when param == Weight.
 * @param value        The fixed value (> 0).
 * @param starts       Multi-start count for the inner optimization.
 * @param ctx          Execution context for the inner optimization.
 * @return The maximized log-likelihood at the fixed value.
 */
double profileLogLik(const MixedModel &model, const MixedFit &fit,
                     MixedParam param, size_t weight_index,
                     double value, size_t starts = 2,
                     const ExecContext &ctx = ExecContext::serial());

} // namespace ucx

#endif // UCX_NLME_PROFILE_HH
