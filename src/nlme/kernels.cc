#include "nlme/kernels.hh"

#include <cmath>

#include "util/error.hh"

namespace ucx
{
namespace nlme
{

SoaData
SoaData::fromData(const NlmeData &data)
{
    SoaData d;
    d.ngroups = data.groups.size();
    d.ncov = data.numCovariates();
    d.offsets.reserve(d.ngroups + 1);
    d.offsets.push_back(0);
    for (const auto &g : data.groups) {
        d.nobs += g.y.size();
        d.offsets.push_back(d.nobs);
    }
    d.y.reserve(d.nobs);
    for (const auto &g : data.groups)
        d.y.insert(d.y.end(), g.y.begin(), g.y.end());
    d.x.assign(d.nobs * d.ncov, 0.0);
    size_t row = 0;
    for (const auto &g : data.groups) {
        for (size_t j = 0; j < g.y.size(); ++j, ++row)
            for (size_t k = 0; k < d.ncov; ++k)
                d.x[k * d.nobs + row] = g.x(j, k);
    }
    return d;
}

KernelStatus
residualKernel(const SoaData &d, const double *w, FitWorkspace &ws)
{
    ws.ensure(d.nobs, d.ncov + 2);
    double *lin = ws.lin.data();
    double *resid = ws.resid.data();

    // lin_j accumulates w_k x_jk in ascending k — the same
    // per-element addition order as the scalar j-outer/k-inner loop,
    // but as unit-stride column sweeps.
    for (size_t j = 0; j < d.nobs; ++j)
        lin[j] = 0.0;
    for (size_t k = 0; k < d.ncov; ++k) {
        const double wk = w[k];
        const double *xk = d.col(k);
        for (size_t j = 0; j < d.nobs; ++j)
            lin[j] += wk * xk[j];
    }
    for (size_t j = 0; j < d.nobs; ++j)
        if (!(lin[j] > 0.0))
            return KernelStatus::InvalidWeights;
    const double *y = d.y.data();
    for (size_t j = 0; j < d.nobs; ++j)
        resid[j] = y[j] - std::log(lin[j]);
    return KernelStatus::Ok;
}

double
logLikKernel(const SoaData &d, const double *resid, double var_e,
             double var_r)
{
    double ll = 0.0;
    for (size_t g = 0; g < d.ngroups; ++g) {
        const size_t lo = d.offsets[g];
        const size_t hi = d.offsets[g + 1];
        double n = static_cast<double>(hi - lo);
        double tau = var_e + n * var_r;

        double ss = 0.0;
        double s = 0.0;
        for (size_t j = lo; j < hi; ++j) {
            double v = resid[j];
            ss += v * v;
            s += v;
        }

        double log_det = (n - 1.0) * std::log(var_e) + std::log(tau);
        double quad = (ss - (var_r / tau) * s * s) / var_e;
        ll += -0.5 * (n * std::log(2.0 * M_PI) + log_det + quad);
    }
    return ll;
}

double
logLikGradKernel(const SoaData &d, double sigma_eps, double sigma_rho,
                 FitWorkspace &ws, double *grad)
{
    const double var_e = sigma_eps * sigma_eps;
    const double var_r = sigma_rho * sigma_rho;
    const double *lin = ws.lin.data();
    const double *resid = ws.resid.data();
    double *coef = ws.coef.data();

    double ll = 0.0;
    double dve = 0.0; // d ll / d var_e
    double dvr = 0.0; // d ll / d var_r
    for (size_t g = 0; g < d.ngroups; ++g) {
        const size_t lo = d.offsets[g];
        const size_t hi = d.offsets[g + 1];
        double n = static_cast<double>(hi - lo);
        double tau = var_e + n * var_r;
        double c = var_r / tau;

        double ss = 0.0;
        double s = 0.0;
        for (size_t j = lo; j < hi; ++j) {
            double v = resid[j];
            ss += v * v;
            s += v;
        }

        double log_det = (n - 1.0) * std::log(var_e) + std::log(tau);
        double quad = (ss - (var_r / tau) * s * s) / var_e;
        ll += -0.5 * (n * std::log(2.0 * M_PI) + log_det + quad);

        // d ll / d r_j = -(r_j - c s)/var_e; chained through
        // d r_j / d w_k = -x_jk / lin_j this leaves the positive
        // per-observation coefficient accumulated below.
        for (size_t j = lo; j < hi; ++j)
            coef[j] = ((resid[j] - c * s) / var_e) / lin[j];

        // Partials of -0.5 (log_det + quad) in the variances; the
        // n log 2pi term is constant.
        dve += -0.5 * ((n - 1.0) / var_e + 1.0 / tau -
                       ss / (var_e * var_e) +
                       var_r * s * s * (var_e + tau) /
                           (tau * tau * var_e * var_e));
        dvr += -0.5 * (n / tau - s * s / (tau * tau));
    }

    for (size_t k = 0; k < d.ncov; ++k) {
        const double *xk = d.col(k);
        double gk = 0.0;
        for (size_t j = 0; j < d.nobs; ++j)
            gk += coef[j] * xk[j];
        grad[k] = gk;
    }
    grad[d.ncov] = 2.0 * sigma_eps * dve;
    grad[d.ncov + 1] = 2.0 * sigma_rho * dvr;
    return ll;
}

void
empiricalBayesKernel(const SoaData &d, const double *resid,
                     double var_e, double var_r, double *b)
{
    for (size_t g = 0; g < d.ngroups; ++g) {
        const size_t lo = d.offsets[g];
        const size_t hi = d.offsets[g + 1];
        double n = static_cast<double>(hi - lo);
        double sum = 0.0;
        for (size_t j = lo; j < hi; ++j)
            sum += resid[j];
        // Posterior mean of b_g given the group residuals: shrinkage
        // of the group mean toward zero.
        b[g] = var_r * sum / (var_e + n * var_r);
    }
}

} // namespace nlme
} // namespace ucx
