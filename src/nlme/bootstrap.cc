#include "nlme/bootstrap.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "exec/task_graph.hh"
#include "nlme/kernels.hh"
#include "obs/metrics.hh"
#include "opt/workspace.hh"
#include "obs/span.hh"
#include "obs/tracelog.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace ucx
{

std::vector<double>
BootstrapResult::sigmaEpsSamples() const
{
    std::vector<double> out;
    out.reserve(fits.size());
    for (const auto &f : fits)
        if (f.converged)
            out.push_back(f.sigmaEps);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<double>
BootstrapResult::sigmaRhoSamples() const
{
    std::vector<double> out;
    out.reserve(fits.size());
    for (const auto &f : fits)
        if (f.converged)
            out.push_back(f.sigmaRho);
    std::sort(out.begin(), out.end());
    return out;
}

std::pair<double, double>
BootstrapResult::sigmaEpsInterval(double level) const
{
    require(level > 0.0 && level < 1.0, "level must be in (0,1)");
    require(!fits.empty(), "no bootstrap replicates");
    std::vector<double> s = sigmaEpsSamples();
    require(!s.empty(), "no converged bootstrap replicates");
    double tail = (1.0 - level) / 2.0;
    auto at = [&](double p) {
        double idx = p * static_cast<double>(s.size() - 1);
        size_t lo = static_cast<size_t>(idx);
        size_t hi = std::min(lo + 1, s.size() - 1);
        double frac = idx - static_cast<double>(lo);
        return s[lo] + frac * (s[hi] - s[lo]);
    };
    return {at(tail), at(1.0 - tail)};
}

BootstrapResult
parametricBootstrap(const NlmeData &data, const MixedFit &fit,
                    const BootstrapConfig &config,
                    const ExecContext &ctx)
{
    require(config.replicates >= 1, "need at least one replicate");
    data.validate();
    require(fit.weights.size() == data.numCovariates(),
            "fit does not match data");

    obs::ScopedSpan span("nlme.bootstrap");
    obs::TraceScope trace("nlme.bootstrap");
    if (trace.active())
        trace.arg("replicates", std::to_string(config.replicates));
    Rng root(config.seed);
    BootstrapResult result;

    // The fitted linear predictor is the same for every replicate
    // (only the noise changes), so compute log(w . m_ij) once per
    // observation through the SoA kernel instead of once per
    // replicate x observation. Group-major order matches the
    // replicate loop below.
    nlme::SoaData soa = nlme::SoaData::fromData(data);
    std::vector<double> mu(soa.nobs);
    {
        FitWorkspace &ws = threadFitWorkspace();
        ensure(nlme::residualKernel(soa, fit.weights.data(), ws) ==
                   nlme::KernelStatus::Ok,
               "non-positive linear predictor in bootstrap");
        for (size_t j = 0; j < soa.nobs; ++j)
            mu[j] = std::log(ws.lin[j]);
    }

    // Replicate `rep` simulates and refits entirely from its own
    // split stream, so the fit in slot `rep` does not depend on how
    // replicates are scheduled across threads. Each replicate is
    // one graph node: a nested fit that itself parallelizes shares
    // the same pool instead of serializing, and the index-ordered
    // join keeps the result vector thread-count-invariant.
    TaskGraph graph(ctx);
    result.fits = graph.map(config.replicates, [&](size_t rep) {
        using Clock = std::chrono::steady_clock;
        Clock::time_point rep_start;
        bool timing = obs::enabled();
        if (timing)
            rep_start = Clock::now();
        // Runs on whichever worker picked up the chunk, so replicate
        // events land on per-worker Perfetto tracks.
        obs::TraceScope rep_trace("nlme.bootstrap.replicate");
        if (rep_trace.active())
            rep_trace.arg("rep", std::to_string(rep));
        Rng rng = root.split(rep);
        NlmeData sim = data;
        size_t row = 0;
        for (auto &group : sim.groups) {
            double b = rng.normal(0.0, fit.sigmaRho);
            for (size_t j = 0; j < group.y.size(); ++j, ++row) {
                group.y[j] =
                    b + mu[row] + rng.normal(0.0, fit.sigmaEps);
            }
        }
        MixedModelConfig mc;
        mc.starts = config.starts;
        mc.seed = rng.next();
        MixedModel model(sim, mc);
        MixedFit refit = model.fit(ctx);
        if (timing) {
            static obs::Counter &reps =
                obs::counter("nlme.bootstrap.replicates");
            static obs::Histogram &times =
                obs::histogram("nlme.bootstrap.replicate_us");
            reps.add(1);
            times.observe(
                std::chrono::duration<double, std::micro>(
                    Clock::now() - rep_start)
                    .count());
        }
        return refit;
    });

    for (const MixedFit &f : result.fits)
        result.nonConverged += f.converged ? 0 : 1;
    if (result.nonConverged > 0) {
        if (obs::enabled()) {
            static obs::Counter &bad =
                obs::counter("nlme.bootstrap.non_converged");
            bad.add(result.nonConverged);
        }
        error("bootstrap: " + std::to_string(result.nonConverged) +
              " of " + std::to_string(config.replicates) +
              " replicates did not converge; excluded from "
              "percentile intervals");
    }
    return result;
}

} // namespace ucx
