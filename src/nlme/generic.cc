#include "nlme/generic.hh"

#include <cmath>
#include <limits>

#include "nlme/criteria.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/tracelog.hh"
#include "opt/multistart.hh"
#include "opt/transform.hh"
#include "stats/gauss_hermite.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ucx
{

MeanFn
logLinearMean()
{
    return [](const std::vector<double> &w, const std::vector<double> &x,
              double b) {
        double lin = 0.0;
        for (size_t k = 0; k < w.size(); ++k)
            lin += w[k] * x[k];
        if (lin <= 0.0)
            return -std::numeric_limits<double>::infinity();
        return b + std::log(lin);
    };
}

GenericNlme::GenericNlme(NlmeData data, MeanFn mean,
                         GenericNlmeConfig config)
    : data_(std::move(data)), mean_(std::move(mean)), config_(config)
{
    data_.validate();
    require(config_.quadraturePoints >= 1 &&
                config_.quadraturePoints <= 64,
            "quadraturePoints must be in [1,64]");
}

double
GenericNlme::groupJoint(const NlmeGroup &group,
                        const std::vector<double> &weights, double var_e,
                        double var_r, double b) const
{
    std::vector<double> xrow(group.x.cols());
    double ll = -0.5 * (std::log(2.0 * M_PI * var_r) + b * b / var_r);
    for (size_t j = 0; j < group.y.size(); ++j) {
        for (size_t c = 0; c < xrow.size(); ++c)
            xrow[c] = group.x(j, c);
        double mu = mean_(weights, xrow, b);
        if (!std::isfinite(mu))
            return -std::numeric_limits<double>::infinity();
        double resid = group.y[j] - mu;
        ll += -0.5 * (std::log(2.0 * M_PI * var_e) +
                      resid * resid / var_e);
    }
    return ll;
}

void
GenericNlme::groupMode(const NlmeGroup &group,
                       const std::vector<double> &weights, double var_e,
                       double var_r, double &b_mode,
                       double &curvature) const
{
    // Safeguarded Newton on h(b) = groupJoint(..., b) with numeric
    // derivatives; h is smooth and unimodal for reasonable means.
    double b = 0.0;
    const double step = 1e-5;
    for (int it = 0; it < 100; ++it) {
        double hp = groupJoint(group, weights, var_e, var_r, b + step);
        double h0 = groupJoint(group, weights, var_e, var_r, b);
        double hm = groupJoint(group, weights, var_e, var_r, b - step);
        double d1 = (hp - hm) / (2.0 * step);
        double d2 = (hp - 2.0 * h0 + hm) / (step * step);
        if (!std::isfinite(d1) || !std::isfinite(d2) || d2 >= 0.0) {
            // Fall back to a coarse scan when curvature is unusable.
            double best_b = b;
            double best_h = h0;
            for (double cand = -5.0; cand <= 5.0; cand += 0.05) {
                double h = groupJoint(group, weights, var_e, var_r,
                                      cand);
                if (h > best_h) {
                    best_h = h;
                    best_b = cand;
                }
            }
            b = best_b;
            hp = groupJoint(group, weights, var_e, var_r, b + step);
            h0 = best_h;
            hm = groupJoint(group, weights, var_e, var_r, b - step);
            d2 = (hp - 2.0 * h0 + hm) / (step * step);
            break;
        }
        double delta = d1 / d2;
        // Newton step (d2 < 0 at a maximum): b_new = b - d1/d2.
        double b_new = b - delta;
        if (std::abs(b_new - b) < 1e-12) {
            b = b_new;
            break;
        }
        b = b_new;
    }
    b_mode = b;
    double hp = groupJoint(group, weights, var_e, var_r, b + step);
    double h0 = groupJoint(group, weights, var_e, var_r, b);
    double hm = groupJoint(group, weights, var_e, var_r, b - step);
    curvature = -(hp - 2.0 * h0 + hm) / (step * step);
    if (!(curvature > 0.0))
        curvature = 1.0 / var_r; // conservative fallback
}

double
GenericNlme::logLikelihood(const std::vector<double> &weights,
                           double sigma_eps, double sigma_rho) const
{
    require(sigma_eps > 0.0 && sigma_rho > 0.0,
            "generic NLME needs positive sigmas");
    double var_e = sigma_eps * sigma_eps;
    double var_r = sigma_rho * sigma_rho;

    // The compute-once table replaces a per-thread recompute; the
    // cached rule is bit-identical to a fresh gaussHermite(n).
    static const GaussHermiteRule empty_rule;
    const GaussHermiteRule &rule =
        config_.integration == Integration::Aghq
            ? gaussHermiteCached(config_.quadraturePoints)
            : empty_rule;

    double total = 0.0;
    for (const auto &g : data_.groups) {
        double b_mode = 0.0;
        double curv = 0.0;
        groupMode(g, weights, var_e, var_r, b_mode, curv);
        double h_mode = groupJoint(g, weights, var_e, var_r, b_mode);
        if (!std::isfinite(h_mode))
            return -std::numeric_limits<double>::infinity();

        if (config_.integration == Integration::Laplace) {
            // log \int e^h db ~= h(b*) + 0.5 log(2 pi / curv).
            total += h_mode + 0.5 * std::log(2.0 * M_PI / curv);
        } else {
            // AGHQ centered at the mode, scaled by the curvature:
            // \int e^h db ~= sqrt(2) s sum_q w_q e^{x_q^2}
            //                e^{h(b* + sqrt(2) s x_q)}.
            double s = 1.0 / std::sqrt(curv);
            double sum = 0.0;
            for (size_t q = 0; q < rule.nodes.size(); ++q) {
                double xq = rule.nodes[q];
                double b = b_mode + std::sqrt(2.0) * s * xq;
                double h = groupJoint(g, weights, var_e, var_r, b);
                sum += rule.weights[q] *
                       std::exp(h - h_mode + xq * xq);
            }
            total += h_mode + std::log(std::sqrt(2.0) * s * sum);
        }
    }
    return total;
}

MixedFit
GenericNlme::fit(const ExecContext &ctx) const
{
    obs::ScopedSpan span("nlme.generic.fit");
    obs::TraceScope trace("nlme.generic.fit");
    const size_t ncov = data_.numCovariates();
    const size_t nobs = data_.totalObservations();

    double ybar = 0.0;
    std::vector<double> mbar(ncov, 0.0);
    for (const auto &g : data_.groups) {
        for (size_t j = 0; j < g.y.size(); ++j) {
            ybar += g.y[j];
            for (size_t k = 0; k < ncov; ++k)
                mbar[k] += g.x(j, k);
        }
    }
    ybar /= static_cast<double>(nobs);
    for (double &m : mbar)
        m /= static_cast<double>(nobs);

    std::vector<double> theta0;
    for (size_t k = 0; k < ncov; ++k) {
        theta0.push_back(std::exp(ybar) /
                         (std::max(mbar[k], 1e-12) *
                          static_cast<double>(ncov)));
    }
    theta0.push_back(0.5);
    theta0.push_back(0.5);

    ParamTransform transform(
        std::vector<Constraint>(ncov + 2, Constraint::Positive));
    std::vector<double> u0 = transform.toUnconstrained(theta0);

    Objective nll = [&](const std::vector<double> &u) {
        std::vector<double> theta = transform.toConstrained(u);
        std::vector<double> w(theta.begin(), theta.begin() + ncov);
        double se = std::max(theta[ncov], 1e-6);
        double sr = std::max(theta[ncov + 1], 1e-6);
        return -logLikelihood(w, se, sr);
    };

    MultistartConfig ms;
    ms.starts = config_.starts;
    ms.seed = config_.seed;
    OptResult opt = multistartMinimize(nll, u0, ms, ctx);

    std::vector<double> theta = transform.toConstrained(opt.x);
    MixedFit fit;
    fit.weights.assign(theta.begin(), theta.begin() + ncov);
    fit.sigmaEps = std::max(theta[ncov], 1e-6);
    fit.sigmaRho = std::max(theta[ncov + 1], 1e-6);
    fit.logLik = -opt.fx;
    fit.nParams = ncov + 2;
    fit.aic = aic(fit.logLik, fit.nParams);
    fit.bic = bic(fit.logLik, fit.nParams, nobs);
    fit.converged = opt.converged;
    fit.trace = std::move(opt.trace);
    if (trace.active()) {
        trace.arg("groups", std::to_string(data_.groups.size()))
            .arg("converged", fit.converged ? "1" : "0");
    }
    if (obs::enabled()) {
        static obs::Counter &fits = obs::counter("nlme.generic.fits");
        fits.add(1);
    }
    if (!fit.converged) {
        error("generic NLME fit did not converge (" +
              std::to_string(opt.evaluations) + " evaluations)");
    }

    double var_e = fit.sigmaEps * fit.sigmaEps;
    double var_r = fit.sigmaRho * fit.sigmaRho;
    for (const auto &g : data_.groups) {
        double b_mode = 0.0;
        double curv = 0.0;
        groupMode(g, fit.weights, var_e, var_r, b_mode, curv);
        fit.groupNames.push_back(g.name);
        fit.ranef.push_back(b_mode);
        fit.productivity.push_back(std::exp(-b_mode));
    }
    return fit;
}

} // namespace ucx
