/**
 * @file
 * Grouped data layout shared by all regression fitters.
 *
 * A group is one design project/team (Leon3, PUMA, IVM, RAT in the
 * paper); an observation inside a group is one component with its
 * log design effort and metric vector.
 */

#ifndef UCX_NLME_DATA_HH
#define UCX_NLME_DATA_HH

#include <string>
#include <vector>

#include "linalg/matrix.hh"

namespace ucx
{

/** One subject/team with its observations. */
struct NlmeGroup
{
    std::string name;       ///< Team identifier (paper: SUBJECT=team).
    std::vector<double> y;  ///< Responses: log reported effort.
    Matrix x;               ///< Covariates; row j = metrics of obs j.
};

/** A full grouped data set. */
struct NlmeData
{
    std::vector<NlmeGroup> groups;

    /** @return Total number of observations across all groups. */
    size_t totalObservations() const;

    /** @return Number of covariate columns (0 when empty). */
    size_t numCovariates() const;

    /**
     * Validate shape invariants: at least one group, equal covariate
     * counts, y size matching x rows, strictly positive covariate
     * row sums (the model takes log of w.x).
     *
     * Throws UcxError when a check fails.
     */
    void validate() const;
};

} // namespace ucx

#endif // UCX_NLME_DATA_HH
