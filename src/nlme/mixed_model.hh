/**
 * @file
 * The µComplexity nonlinear mixed-effects model (paper Section 3.1),
 * fitted by exact maximum likelihood.
 *
 * Model, after the paper's log transformation (Appendix A):
 *
 *     log Eff_ij = b_i + log( sum_k w_k * m_ijk ) + N(0, sigma_eps^2)
 *     b_i ~ N(0, sigma_rho^2),   productivity rho_i = exp(-b_i)
 *
 * Because the random intercept b_i enters additively, the marginal
 * distribution of each group's log efforts is multivariate normal
 * with compound-symmetric covariance sigma_eps^2 I + sigma_rho^2 J.
 * The marginal likelihood is therefore *analytic*: no Laplace or
 * quadrature approximation is needed (those live in generic.hh as
 * cross-checks). This is the same ML criterion SAS PROC NLMIXED and
 * R nlme(method="ML") maximize for this model.
 */

#ifndef UCX_NLME_MIXED_MODEL_HH
#define UCX_NLME_MIXED_MODEL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exec/context.hh"
#include "nlme/data.hh"
#include "nlme/kernels.hh"
#include "obs/trace.hh"

namespace ucx
{

/** Result of a mixed-effects fit. */
struct MixedFit
{
    std::vector<double> weights;      ///< Fitted w_k (all > 0).
    double sigmaEps = 0.0;            ///< Residual log-sd (paper's key
                                      ///< accuracy number).
    double sigmaRho = 0.0;            ///< Random-effect log-sd.
    double logLik = 0.0;              ///< Maximized log-likelihood.
    double aic = 0.0;                 ///< Akaike information criterion.
    double bic = 0.0;                 ///< Bayesian information criterion.
    size_t nParams = 0;               ///< Free parameters counted in
                                      ///< AIC/BIC.
    bool converged = false;           ///< Optimizer reported success.

    std::vector<std::string> groupNames; ///< Group order for ranef.
    std::vector<double> ranef;        ///< Empirical-Bayes b_i.
    std::vector<double> productivity; ///< rho_i = exp(-b_i).

    /**
     * Per-iteration optimizer history of the winning start (negative
     * log-likelihood as the objective), SAS-iteration-history style.
     */
    obs::ConvergenceTrace trace;
};

/** Configuration for the mixed-effects fitter. */
struct MixedModelConfig
{
    size_t starts = 8;        ///< Multi-start count.
    uint64_t seed = 20051204; ///< Multi-start jitter seed.
    double minSigma = 1e-6;   ///< Lower clamp on sigmas during search.

    /**
     * Polish the BFGS stage with the analytic marginal gradient
     * (kernels.hh) instead of central finite differences, cutting
     * the likelihood evaluations per BFGS iteration from p+3 to ~1.
     * Defaults from the UCX_ANALYTIC_GRAD environment variable
     * (unset or "1" = on; "0" = the finite-difference escape hatch).
     */
    bool analyticGradient = defaultAnalyticGradient();

    /** @return The UCX_ANALYTIC_GRAD-driven default. */
    static bool defaultAnalyticGradient();
};

/** Exact-ML fitter for the µComplexity mixed-effects model. */
class MixedModel
{
  public:
    /**
     * Create a fitter over a validated data set.
     *
     * @param data   Grouped observations; validated on construction.
     * @param config Fitter configuration.
     */
    explicit MixedModel(NlmeData data, MixedModelConfig config = {});

    /**
     * Fit the model by maximum likelihood.
     *
     * @param ctx Execution context; the multi-start search runs
     *            through its pool. The fit is byte-identical at any
     *            thread count.
     * @return The fitted parameters and diagnostics.
     */
    MixedFit fit(const ExecContext &ctx = ExecContext::serial()) const;

    /**
     * Exact marginal log-likelihood at given parameters.
     *
     * @param weights   Metric weights w_k; all > 0.
     * @param sigma_eps Residual log-sd; > 0.
     * @param sigma_rho Random-effect log-sd; >= 0.
     * @return The marginal log-likelihood.
     */
    double logLikelihood(const std::vector<double> &weights,
                         double sigma_eps, double sigma_rho) const;

    /**
     * Empirical-Bayes (posterior mean) random effects at given
     * parameters.
     *
     * @param weights   Metric weights.
     * @param sigma_eps Residual log-sd.
     * @param sigma_rho Random-effect log-sd.
     * @return One b_i per group, in data order.
     */
    std::vector<double> empiricalBayes(const std::vector<double> &weights,
                                       double sigma_eps,
                                       double sigma_rho) const;

    /** @return The data set the fitter was built over. */
    const NlmeData &data() const { return data_; }

    /** @return The flattened structure-of-arrays view of the data. */
    const nlme::SoaData &soa() const { return soa_; }

    /**
     * Per-group residuals r_ij = y_ij - log(w . m_ij).
     *
     * @param weights Metric weights (size must match covariates).
     * @return The residuals, or std::nullopt when the weights make
     *         some linear predictor non-positive (log undefined).
     *         A constructed model always has at least one non-empty
     *         group (validate() enforces it), so — unlike the old
     *         empty-vector signal — an invalid-weights result can
     *         never be confused with an empty data set.
     */
    std::optional<std::vector<std::vector<double>>> residuals(
        const std::vector<double> &weights) const;

  private:
    NlmeData data_;
    MixedModelConfig config_;
    nlme::SoaData soa_; ///< Built once at construction.
};

} // namespace ucx

#endif // UCX_NLME_MIXED_MODEL_HH
