#include "nlme/data.hh"

#include "util/error.hh"

namespace ucx
{

size_t
NlmeData::totalObservations() const
{
    size_t n = 0;
    for (const auto &g : groups)
        n += g.y.size();
    return n;
}

size_t
NlmeData::numCovariates() const
{
    if (groups.empty())
        return 0;
    return groups[0].x.cols();
}

void
NlmeData::validate() const
{
    require(!groups.empty(), "data set has no groups");
    size_t ncov = groups[0].x.cols();
    require(ncov >= 1, "data set has no covariates");
    for (const auto &g : groups) {
        require(!g.y.empty(), "group '" + g.name + "' is empty");
        require(g.x.rows() == g.y.size(),
                "group '" + g.name + "': x rows != y size");
        require(g.x.cols() == ncov,
                "group '" + g.name + "': covariate count mismatch");
        for (size_t r = 0; r < g.x.rows(); ++r) {
            double sum = 0.0;
            bool negative = false;
            for (size_t c = 0; c < ncov; ++c) {
                sum += g.x(r, c);
                negative = negative || g.x(r, c) < 0.0;
            }
            require(!negative,
                    "group '" + g.name + "': negative metric value");
            require(sum > 0.0,
                    "group '" + g.name +
                        "': all-zero metric row (log undefined)");
        }
    }
}

} // namespace ucx
