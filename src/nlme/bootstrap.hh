/**
 * @file
 * Parametric bootstrap for the mixed-effects fit: simulate new
 * response vectors from the fitted generative model (same metric
 * matrix, fresh lognormal productivities and errors), refit, and
 * summarize the sampling distribution of the parameters.
 *
 * This quantifies how stable the paper's sigma_eps comparisons are
 * given only 18 components — the kind of uncertainty statement the
 * paper leaves implicit.
 */

#ifndef UCX_NLME_BOOTSTRAP_HH
#define UCX_NLME_BOOTSTRAP_HH

#include <cstdint>
#include <vector>

#include "exec/context.hh"
#include "nlme/mixed_model.hh"

namespace ucx
{

/** Result of a parametric bootstrap. */
struct BootstrapResult
{
    std::vector<MixedFit> fits; ///< One refit per replicate.

    /**
     * Replicates whose refit did not converge. Their fits stay in
     * fits (indexed by replicate), but the sample/interval accessors
     * below exclude them so the percentile intervals are not skewed
     * by unconverged optimizer output.
     */
    size_t nonConverged = 0;

    /** @return sigma_eps of every converged replicate, sorted. */
    std::vector<double> sigmaEpsSamples() const;

    /** @return sigma_rho of every converged replicate, sorted. */
    std::vector<double> sigmaRhoSamples() const;

    /**
     * Percentile interval of sigma_eps over converged replicates.
     *
     * @param level Coverage in (0,1).
     * @return (lower, upper) empirical quantiles.
     */
    std::pair<double, double> sigmaEpsInterval(double level) const;
};

/** Configuration for the bootstrap. */
struct BootstrapConfig
{
    size_t replicates = 200; ///< Number of simulated refits.
    uint64_t seed = 8862005; ///< RNG seed.
    size_t starts = 2;       ///< Multi-starts per refit.
};

/**
 * Run a parametric bootstrap.
 *
 * Replicate i simulates and refits from the RNG stream split(i) of
 * the seed, so the whole result is byte-identical at any thread
 * count — replicates run through ctx's pool, results land in
 * replicate order.
 *
 * @param data   The original grouped data (metric matrix reused).
 * @param fit    The ML fit whose parameters generate the replicates.
 * @param config Bootstrap options.
 * @param ctx    Execution context for the replicate loop.
 * @return All replicate fits.
 */
BootstrapResult parametricBootstrap(const NlmeData &data,
                                    const MixedFit &fit,
                                    const BootstrapConfig &config = {},
                                    const ExecContext &ctx =
                                        ExecContext::serial());

} // namespace ucx

#endif // UCX_NLME_BOOTSTRAP_HH
