/**
 * @file
 * Parametric bootstrap for the mixed-effects fit: simulate new
 * response vectors from the fitted generative model (same metric
 * matrix, fresh lognormal productivities and errors), refit, and
 * summarize the sampling distribution of the parameters.
 *
 * This quantifies how stable the paper's sigma_eps comparisons are
 * given only 18 components — the kind of uncertainty statement the
 * paper leaves implicit.
 */

#ifndef UCX_NLME_BOOTSTRAP_HH
#define UCX_NLME_BOOTSTRAP_HH

#include <cstdint>
#include <vector>

#include "nlme/mixed_model.hh"

namespace ucx
{

/** Result of a parametric bootstrap. */
struct BootstrapResult
{
    std::vector<MixedFit> fits; ///< One refit per replicate.

    /** @return sigma_eps of every replicate, sorted ascending. */
    std::vector<double> sigmaEpsSamples() const;

    /** @return sigma_rho of every replicate, sorted ascending. */
    std::vector<double> sigmaRhoSamples() const;

    /**
     * Percentile interval of sigma_eps.
     *
     * @param level Coverage in (0,1).
     * @return (lower, upper) empirical quantiles.
     */
    std::pair<double, double> sigmaEpsInterval(double level) const;
};

/** Configuration for the bootstrap. */
struct BootstrapConfig
{
    size_t replicates = 200; ///< Number of simulated refits.
    uint64_t seed = 8862005; ///< RNG seed.
    size_t starts = 2;       ///< Multi-starts per refit.
};

/**
 * Run a parametric bootstrap.
 *
 * @param data   The original grouped data (metric matrix reused).
 * @param fit    The ML fit whose parameters generate the replicates.
 * @param config Bootstrap options.
 * @return All replicate fits.
 */
BootstrapResult parametricBootstrap(const NlmeData &data,
                                    const MixedFit &fit,
                                    const BootstrapConfig &config = {});

} // namespace ucx

#endif // UCX_NLME_BOOTSTRAP_HH
