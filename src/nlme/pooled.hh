/**
 * @file
 * Pooled model without productivity adjustment (paper Section 3.2):
 * all rho_i fixed to 1, leaving the nonlinear regression
 *
 *     log Eff_ij = log( sum_k w_k m_ijk ) + N(0, sigma_eps^2).
 *
 * This produces the "sigma_eps (rho_i = 1)" row of paper Table 4.
 */

#ifndef UCX_NLME_POOLED_HH
#define UCX_NLME_POOLED_HH

#include <cstdint>
#include <vector>

#include "exec/context.hh"
#include "nlme/data.hh"
#include "nlme/kernels.hh"
#include "obs/trace.hh"

namespace ucx
{

/** Result of a pooled (no random effect) fit. */
struct PooledFit
{
    std::vector<double> weights; ///< Fitted w_k (all > 0).
    double sigmaEps = 0.0;       ///< ML residual log-sd.
    double logLik = 0.0;         ///< Maximized log-likelihood.
    double aic = 0.0;            ///< Akaike information criterion.
    double bic = 0.0;            ///< Bayesian information criterion.
    size_t nParams = 0;          ///< Parameters counted in AIC/BIC.
    bool converged = false;      ///< Optimizer reported success.

    /**
     * Per-iteration optimizer history of the winning start (residual
     * sum of squares as the objective).
     */
    obs::ConvergenceTrace trace;
};

/** Configuration for the pooled fitter. */
struct PooledModelConfig
{
    size_t starts = 8;        ///< Multi-start count.
    uint64_t seed = 19521205; ///< Multi-start jitter seed.
};

/** ML fitter for the pooled model. */
class PooledModel
{
  public:
    /**
     * Create a fitter; grouping in the data is ignored except for
     * validation.
     *
     * @param data   Grouped observations.
     * @param config Fitter configuration.
     */
    explicit PooledModel(NlmeData data, PooledModelConfig config = {});

    /**
     * Fit the pooled model by maximum likelihood.
     *
     * @param ctx Execution context for the multi-start search.
     */
    PooledFit fit(const ExecContext &ctx = ExecContext::serial()) const;

    /**
     * Residual sum of squares of log errors at given weights.
     *
     * @param weights Metric weights; all > 0.
     * @return sum over observations of (y - log(w.x))^2, or +inf for
     *         weights making any linear predictor non-positive.
     */
    double rss(const std::vector<double> &weights) const;

  private:
    NlmeData data_;
    PooledModelConfig config_;
    nlme::SoaData soa_; ///< Built once at construction.
};

} // namespace ucx

#endif // UCX_NLME_POOLED_HH
