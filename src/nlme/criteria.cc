#include "nlme/criteria.hh"

#include <cmath>

#include "util/error.hh"

namespace ucx
{

double
aic(double log_lik, size_t n_params)
{
    return -2.0 * log_lik + 2.0 * static_cast<double>(n_params);
}

double
bic(double log_lik, size_t n_params, size_t n_obs)
{
    require(n_obs >= 1, "bic needs at least one observation");
    return -2.0 * log_lik +
           static_cast<double>(n_params) *
               std::log(static_cast<double>(n_obs));
}

} // namespace ucx
