#include "io/artifact_serde.hh"

#include <mutex>

#include "io/registry.hh"
#include "util/error.hh"

namespace ucx
{
namespace io
{

namespace
{

// ------------------------------------------------ small helpers

/** Decode an enum stored as a varint, range-checked. */
template <typename E>
E
decodeEnum(Decoder &d, uint64_t max_value, const char *what)
{
    uint64_t v = d.u64();
    if (v > max_value)
        d.fail(std::string(what) + " value " + std::to_string(v) +
               " out of range");
    return static_cast<E>(v);
}

/** Decode a width/depth-style int that must be >= 1. */
int
decodePositive(Decoder &d, const char *what)
{
    int64_t v = d.i64();
    if (v < 1 || v > INT32_MAX)
        d.fail(std::string(what) + " " + std::to_string(v) +
               " out of range");
    return static_cast<int>(v);
}

void
encodeIds(Encoder &e, const std::vector<uint32_t> &ids)
{
    e.u64(ids.size());
    for (uint32_t id : ids)
        e.u32(id);
}

std::vector<uint32_t>
decodeIds(Decoder &d)
{
    size_t n = d.seq();
    std::vector<uint32_t> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(d.u32());
    return out;
}

void
encodeMetricValues(Encoder &e, const MetricValues &values)
{
    for (double v : values)
        e.f64(v);
}

MetricValues
decodeMetricValues(Decoder &d)
{
    MetricValues values{};
    for (size_t i = 0; i < numMetrics; ++i)
        values[i] = d.f64();
    return values;
}

// ------------------------------------------------ nested structs

void
encodeInstance(Encoder &e, const InstanceInfo &v)
{
    e.str(v.moduleName);
    e.str(v.path);
    e.u64(v.params.size());
    for (const auto &[name, value] : v.params) {
        e.str(name);
        e.i64(value);
    }
    e.u64(v.children.size());
    for (const InstanceInfo &child : v.children)
        encodeInstance(e, child);
}

InstanceInfo
decodeInstance(Decoder &d)
{
    InstanceInfo v;
    v.moduleName = d.str();
    v.path = d.str();
    size_t params = d.seq(2);
    for (size_t i = 0; i < params; ++i) {
        std::string name = d.str();
        v.params[name] = d.i64();
    }
    size_t children = d.seq(2);
    v.children.reserve(children);
    for (size_t i = 0; i < children; ++i)
        v.children.push_back(decodeInstance(d));
    return v;
}

void
encodeGenerateStats(Encoder &e, const GenerateStats &v)
{
    e.u64(v.loopTrips.size());
    for (const auto &[site, trips] : v.loopTrips) {
        e.str(site);
        e.u64(trips.size());
        for (int64_t trip : trips)
            e.i64(trip);
    }
    e.u64(v.ifBranches.size());
    for (const auto &[site, branches] : v.ifBranches) {
        e.str(site);
        e.u64(branches.size());
        for (int branch : branches)
            e.i64(branch);
    }
}

GenerateStats
decodeGenerateStats(Decoder &d)
{
    GenerateStats v;
    size_t loops = d.seq(2);
    for (size_t i = 0; i < loops; ++i) {
        std::string site = d.str();
        auto &trips = v.loopTrips[site];
        size_t n = d.seq();
        for (size_t j = 0; j < n; ++j)
            trips.insert(d.i64());
    }
    size_t ifs = d.seq(2);
    for (size_t i = 0; i < ifs; ++i) {
        std::string site = d.str();
        auto &branches = v.ifBranches[site];
        size_t n = d.seq();
        for (size_t j = 0; j < n; ++j) {
            int64_t branch = d.i64();
            if (branch < 0 || branch > 1)
                d.fail("generate-if branch " +
                       std::to_string(branch) + " out of range");
            branches.insert(static_cast<int>(branch));
        }
    }
    return v;
}

void
encodeTimingReport(Encoder &e, const TimingReport &v)
{
    e.f64(v.criticalPathNs);
    e.f64(v.freqMHz);
}

TimingReport
decodeTimingReport(Decoder &d)
{
    TimingReport v;
    v.criticalPathNs = d.f64();
    v.freqMHz = d.f64();
    return v;
}

std::once_flag registerOnce;

} // namespace

// ---------------------------------------------------- RtlDesign

void
Serde<RtlDesign>::encode(Encoder &e, const RtlDesign &v)
{
    e.u64(v.signals.size());
    for (const RtlSignal &s : v.signals) {
        e.str(s.name);
        e.i64(s.width);
        e.u64(static_cast<uint64_t>(s.kind));
        e.u32(s.driver);
    }
    e.u64(v.nodes.size());
    for (const RtlNode &n : v.nodes) {
        e.u64(static_cast<uint64_t>(n.op));
        e.i64(n.width);
        e.u64(n.constVal);
        e.u32(n.sig);
        e.i64(n.lo);
        e.u32(n.mem);
        encodeIds(e, n.args);
    }
    e.u64(v.memories.size());
    for (const RtlMemory &m : v.memories) {
        e.str(m.name);
        e.i64(m.width);
        e.i64(m.depth);
        e.u64(m.writePorts.size());
        for (const MemWritePort &p : m.writePorts) {
            e.u32(p.addr);
            e.u32(p.data);
            e.u32(p.enable);
        }
    }
    encodeIds(e, v.inputs);
    encodeIds(e, v.outputs);
}

RtlDesign
Serde<RtlDesign>::decode(Decoder &d)
{
    RtlDesign v;
    size_t signals = d.seq(4);
    for (size_t i = 0; i < signals; ++i) {
        std::string name = d.str();
        int width = decodePositive(d, "signal width");
        auto kind = decodeEnum<SigKind>(
            d, static_cast<uint64_t>(SigKind::Output), "SigKind");
        NodeId driver = d.u32();
        if (v.hasSignal(name))
            d.fail("duplicate signal '" + name + "'");
        SigId id = v.addSignal(name, width, kind);
        v.signals[id].driver = driver;
    }
    size_t nodes = d.seq(6);
    v.nodes.reserve(nodes);
    for (size_t i = 0; i < nodes; ++i) {
        RtlNode n;
        n.op = decodeEnum<RtlOp>(
            d, static_cast<uint64_t>(RtlOp::MemRead), "RtlOp");
        n.width = decodePositive(d, "node width");
        n.constVal = d.u64();
        n.sig = d.u32();
        int64_t lo = d.i64();
        if (lo < 0 || lo > INT32_MAX)
            d.fail("slice low bit " + std::to_string(lo) +
                   " out of range");
        n.lo = static_cast<int>(lo);
        n.mem = d.u32();
        n.args = decodeIds(d);
        v.nodes.push_back(std::move(n));
    }
    size_t memories = d.seq(4);
    v.memories.reserve(memories);
    for (size_t i = 0; i < memories; ++i) {
        RtlMemory m;
        m.name = d.str();
        m.width = decodePositive(d, "memory width");
        m.depth = decodePositive(d, "memory depth");
        size_t ports = d.seq(3);
        m.writePorts.reserve(ports);
        for (size_t j = 0; j < ports; ++j) {
            MemWritePort p;
            p.addr = d.u32();
            p.data = d.u32();
            p.enable = d.u32();
            m.writePorts.push_back(p);
        }
        v.memories.push_back(std::move(m));
    }
    v.inputs = decodeIds(d);
    v.outputs = decodeIds(d);
    return v;
}

// ---------------------------------------------------- ElabResult

void
Serde<ElabResult>::encode(Encoder &e, const ElabResult &v)
{
    Serde<RtlDesign>::encode(e, v.rtl);
    encodeInstance(e, v.top);
    encodeGenerateStats(e, v.stats);
    e.u64(v.warnings.size());
    for (const std::string &w : v.warnings)
        e.str(w);
}

ElabResult
Serde<ElabResult>::decode(Decoder &d)
{
    ElabResult v;
    v.rtl = Serde<RtlDesign>::decode(d);
    v.top = decodeInstance(d);
    v.stats = decodeGenerateStats(d);
    size_t warnings = d.seq();
    v.warnings.reserve(warnings);
    for (size_t i = 0; i < warnings; ++i)
        v.warnings.push_back(d.str());
    return v;
}

// ------------------------------------------------------- Netlist

void
Serde<Netlist>::encode(Encoder &e, const Netlist &v)
{
    e.u64(v.gates.size());
    for (const Gate &g : v.gates) {
        e.u64(static_cast<uint64_t>(g.op));
        encodeIds(e, g.in);
        e.u32(g.mem);
        e.u32(g.bit);
    }
    encodeIds(e, v.inputBits);
    encodeIds(e, v.outputBits);
    e.u64(v.memoryBits);
}

Netlist
Serde<Netlist>::decode(Decoder &d)
{
    Netlist v;
    size_t gates = d.seq(4);
    v.gates.reserve(gates);
    for (size_t i = 0; i < gates; ++i) {
        Gate g;
        g.op = decodeEnum<GateOp>(
            d, static_cast<uint64_t>(GateOp::MemIn), "GateOp");
        g.in = decodeIds(d);
        g.mem = d.u32();
        g.bit = d.u32();
        v.gates.push_back(std::move(g));
    }
    v.inputBits = decodeIds(d);
    v.outputBits = decodeIds(d);
    v.memoryBits = d.u64();
    return v;
}

// --------------------------------------------------- CellMapping

void
Serde<CellMapping>::encode(Encoder &e, const CellMapping &v)
{
    e.u64(v.cells);
    e.u64(v.combCells);
    e.u64(v.seqCells);
    e.f64(v.areaLogicUm2);
    e.f64(v.areaStorageUm2);
    e.f64(v.leakageUw);
}

CellMapping
Serde<CellMapping>::decode(Decoder &d)
{
    CellMapping v;
    v.cells = d.u64();
    v.combCells = d.u64();
    v.seqCells = d.u64();
    v.areaLogicUm2 = d.f64();
    v.areaStorageUm2 = d.f64();
    v.leakageUw = d.f64();
    return v;
}

// ---------------------------------------------------- LutMapping

void
Serde<LutMapping>::encode(Encoder &e, const LutMapping &v)
{
    e.u64(v.luts.size());
    for (const Lut &lut : v.luts) {
        e.u32(lut.root);
        encodeIds(e, lut.inputs);
        e.i64(lut.depth);
    }
    e.i64(v.maxDepth);
}

LutMapping
Serde<LutMapping>::decode(Decoder &d)
{
    LutMapping v;
    size_t luts = d.seq(3);
    v.luts.reserve(luts);
    for (size_t i = 0; i < luts; ++i) {
        Lut lut;
        lut.root = d.u32();
        lut.inputs = decodeIds(d);
        lut.depth = static_cast<int>(d.i64());
        v.luts.push_back(std::move(lut));
    }
    v.maxDepth = static_cast<int>(d.i64());
    return v;
}

// ---------------------------------------------------- ConeReport

void
Serde<ConeReport>::encode(Encoder &e, const ConeReport &v)
{
    e.u64(v.cones.size());
    for (const Cone &c : v.cones) {
        e.u32(c.endpointDriver);
        e.u64(c.gateCount);
        e.u64(c.inputCount);
    }
    e.u64(v.fanInSum);
    e.u64(v.maxInputs);
}

ConeReport
Serde<ConeReport>::decode(Decoder &d)
{
    ConeReport v;
    size_t cones = d.seq(3);
    v.cones.reserve(cones);
    for (size_t i = 0; i < cones; ++i) {
        Cone c;
        c.endpointDriver = d.u32();
        c.gateCount = d.u64();
        c.inputCount = d.u64();
        v.cones.push_back(c);
    }
    v.fanInSum = d.u64();
    v.maxInputs = d.u64();
    return v;
}

// ------------------------------------------------- TimingSummary

void
Serde<TimingSummary>::encode(Encoder &e, const TimingSummary &v)
{
    encodeTimingReport(e, v.fpga);
    encodeTimingReport(e, v.asic);
}

TimingSummary
Serde<TimingSummary>::decode(Decoder &d)
{
    TimingSummary v;
    v.fpga = decodeTimingReport(d);
    v.asic = decodeTimingReport(d);
    return v;
}

// --------------------------------------------------- PowerReport

void
Serde<PowerReport>::encode(Encoder &e, const PowerReport &v)
{
    e.f64(v.dynamicMw);
    e.f64(v.staticUw);
}

PowerReport
Serde<PowerReport>::decode(Decoder &d)
{
    PowerReport v;
    v.dynamicMw = d.f64();
    v.staticUw = d.f64();
    return v;
}

// -------------------------------------------------- SynthMetrics

void
Serde<SynthMetrics>::encode(Encoder &e, const SynthMetrics &v)
{
    e.u64(v.fanInLC);
    e.u64(v.fanInLCExact);
    e.u64(v.nets);
    e.u64(v.cells);
    e.u64(v.ffs);
    e.f64(v.areaLogicUm2);
    e.f64(v.areaStorageUm2);
    e.f64(v.powerDynamicMw);
    e.f64(v.powerStaticUw);
    e.f64(v.freqMHz);
    e.f64(v.freqAsicMHz);
    e.u64(v.luts);
    e.i64(v.lutDepth);
    e.u64(v.gateCount);
}

SynthMetrics
Serde<SynthMetrics>::decode(Decoder &d)
{
    SynthMetrics v;
    v.fanInLC = d.u64();
    v.fanInLCExact = d.u64();
    v.nets = d.u64();
    v.cells = d.u64();
    v.ffs = d.u64();
    v.areaLogicUm2 = d.f64();
    v.areaStorageUm2 = d.f64();
    v.powerDynamicMw = d.f64();
    v.powerStaticUw = d.f64();
    v.freqMHz = d.f64();
    v.freqAsicMHz = d.f64();
    v.luts = d.u64();
    v.lutDepth = static_cast<int>(d.i64());
    v.gateCount = d.u64();
    return v;
}

// ------------------------------------------ ComponentMeasurement

void
Serde<ComponentMeasurement>::encode(Encoder &e,
                                    const ComponentMeasurement &v)
{
    encodeMetricValues(e, v.metrics);
    e.u64(v.moduleCounts.size());
    for (const auto &[module, count] : v.moduleCounts) {
        e.str(module);
        e.u64(count);
    }
    e.u64(v.measuredParams.size());
    for (const auto &[module, params] : v.measuredParams) {
        e.str(module);
        e.u64(params.size());
        for (const auto &[name, value] : params) {
            e.str(name);
            e.i64(value);
        }
    }
}

ComponentMeasurement
Serde<ComponentMeasurement>::decode(Decoder &d)
{
    ComponentMeasurement v;
    v.metrics = decodeMetricValues(d);
    size_t modules = d.seq(2);
    for (size_t i = 0; i < modules; ++i) {
        std::string module = d.str();
        v.moduleCounts[module] = d.u64();
    }
    size_t measured = d.seq(2);
    for (size_t i = 0; i < measured; ++i) {
        std::string module = d.str();
        auto &params = v.measuredParams[module];
        size_t n = d.seq(2);
        for (size_t j = 0; j < n; ++j) {
            std::string name = d.str();
            params[name] = d.i64();
        }
    }
    return v;
}

// ------------------------------------------------------- Dataset

void
Serde<Dataset>::encode(Encoder &e, const Dataset &v)
{
    e.u64(v.size());
    for (const Component &c : v.components()) {
        e.str(c.project);
        e.str(c.name);
        e.f64(c.effort);
        encodeMetricValues(e, c.metrics);
    }
}

Dataset
Serde<Dataset>::decode(Decoder &d)
{
    Dataset v;
    size_t components = d.seq(10);
    for (size_t i = 0; i < components; ++i) {
        Component c;
        c.project = d.str();
        c.name = d.str();
        c.effort = d.f64();
        c.metrics = decodeMetricValues(d);
        if (c.project.empty() || c.name.empty())
            d.fail("component with an empty project or name");
        if (!(c.effort > 0.0))
            d.fail("component '" + c.fullName() +
                   "' with effort <= 0");
        v.add(std::move(c));
    }
    return v;
}

// ---------------------------------------------- ConvergenceTrace

void
Serde<obs::ConvergenceTrace>::encode(Encoder &e,
                                     const obs::ConvergenceTrace &v)
{
    e.str(v.algorithm);
    e.u64(v.restarts);
    e.boolean(v.converged);
    e.u64(v.samples_.size());
    for (const obs::IterationSample &s : v.samples_) {
        e.u64(s.iteration);
        e.f64(s.objective);
        e.f64(s.gradNorm);
        e.f64(s.stepSize);
        e.f64(s.simplexSpread);
        e.u64(s.evaluations);
    }
    e.u64(v.stride_);
    e.u64(v.seen_);
}

obs::ConvergenceTrace
Serde<obs::ConvergenceTrace>::decode(Decoder &d)
{
    obs::ConvergenceTrace v;
    v.algorithm = d.str();
    v.restarts = d.u64();
    v.converged = d.boolean();
    size_t samples = d.seq(6);
    v.samples_.reserve(samples);
    for (size_t i = 0; i < samples; ++i) {
        obs::IterationSample s;
        s.iteration = d.u64();
        s.objective = d.f64();
        s.gradNorm = d.f64();
        s.stepSize = d.f64();
        s.simplexSpread = d.f64();
        s.evaluations = d.u64();
        v.samples_.push_back(s);
    }
    v.stride_ = d.u64();
    if (v.stride_ == 0)
        d.fail("trace stride of 0");
    v.seen_ = d.u64();
    return v;
}

// ----------------------------------------------- FittedEstimator

void
Serde<FittedEstimator>::encode(Encoder &e, const FittedEstimator &v)
{
    e.u64(v.metrics_.size());
    for (Metric m : v.metrics_)
        e.u64(static_cast<uint64_t>(m));
    e.u64(v.weights_.size());
    for (double w : v.weights_)
        e.f64(w);
    e.f64(v.sigmaEps_);
    e.f64(v.sigmaRho_);
    e.f64(v.logLik_);
    e.f64(v.aic_);
    e.f64(v.bic_);
    e.u64(static_cast<uint64_t>(v.mode_));
    e.u64(v.nUsed_);
    e.boolean(v.converged_);
    e.u64(v.rho_.size());
    for (const auto &[project, rho] : v.rho_) {
        e.str(project);
        e.f64(rho);
    }
    Serde<obs::ConvergenceTrace>::encode(e, v.trace_);
}

FittedEstimator
Serde<FittedEstimator>::decode(Decoder &d)
{
    FittedEstimator v;
    size_t metrics = d.seq();
    v.metrics_.reserve(metrics);
    for (size_t i = 0; i < metrics; ++i)
        v.metrics_.push_back(decodeEnum<Metric>(
            d, static_cast<uint64_t>(numMetrics) - 1, "Metric"));
    size_t weights = d.seq(8);
    v.weights_.reserve(weights);
    for (size_t i = 0; i < weights; ++i)
        v.weights_.push_back(d.f64());
    v.sigmaEps_ = d.f64();
    v.sigmaRho_ = d.f64();
    v.logLik_ = d.f64();
    v.aic_ = d.f64();
    v.bic_ = d.f64();
    v.mode_ = decodeEnum<FitMode>(
        d, static_cast<uint64_t>(FitMode::Pooled), "FitMode");
    v.nUsed_ = d.u64();
    v.converged_ = d.boolean();
    size_t projects = d.seq(9);
    for (size_t i = 0; i < projects; ++i) {
        std::string project = d.str();
        v.rho_[project] = d.f64();
    }
    v.trace_ = Serde<obs::ConvergenceTrace>::decode(d);
    return v;
}

// ---------------------------------------------------- LintReport

void
Serde<LintReport>::encode(Encoder &e, const LintReport &v)
{
    e.u64(v.size());
    for (const LintDiagnostic &diag : v.diagnostics()) {
        e.str(diag.rule);
        e.u64(static_cast<uint64_t>(diag.severity));
        e.str(diag.design);
        e.str(diag.object);
        e.i64(diag.line);
        e.str(diag.message);
        e.str(diag.hint);
    }
}

LintReport
Serde<LintReport>::decode(Decoder &d)
{
    LintReport v;
    size_t findings = d.seq(7);
    for (size_t i = 0; i < findings; ++i) {
        LintDiagnostic diag;
        diag.rule = d.str();
        diag.severity = decodeEnum<LintSeverity>(
            d, static_cast<uint64_t>(LintSeverity::Error),
            "LintSeverity");
        diag.design = d.str();
        diag.object = d.str();
        diag.line = static_cast<int>(d.i64());
        diag.message = d.str();
        diag.hint = d.str();
        try {
            lintRule(diag.rule);
        } catch (const UcxError &) {
            d.fail("unknown lint rule '" + diag.rule + "'");
        }
        v.add(std::move(diag));
    }
    return v;
}

// ---------------------------------------------------- DfaSummary

void
Serde<DfaSummary>::encode(Encoder &e, const DfaSummary &v)
{
    e.u64(v.constSignals.size());
    for (const DfaSummary::ConstSignal &c : v.constSignals) {
        e.str(c.name);
        e.u64(c.value);
        e.i64(c.width);
        e.u64(c.kind);
    }
    e.u64(v.constMuxSignals.size());
    for (const std::string &name : v.constMuxSignals)
        e.str(name);
    e.u64(v.constMuxCount);
    e.u64(v.deadWires.size());
    for (const std::string &name : v.deadWires)
        e.str(name);
    e.u64(v.deadRegs.size());
    for (const std::string &name : v.deadRegs)
        e.str(name);
    e.u64(v.deadCombGates);
    e.u64(v.readBeforeWrite.size());
    for (const DfaSummary::ReadBeforeWrite &r : v.readBeforeWrite) {
        e.str(r.module);
        e.str(r.signal);
        e.i64(r.line);
    }
    e.u64(v.domains.size());
    for (const DfaSummary::RegDomain &r : v.domains) {
        e.str(r.module);
        e.str(r.reg);
        e.str(r.clock);
    }
    e.u64(v.crossings.size());
    for (const DfaSummary::Crossing &c : v.crossings) {
        e.str(c.module);
        e.str(c.signal);
        e.str(c.fromClock);
        e.str(c.toClock);
        e.i64(c.line);
        e.boolean(c.synchronized);
    }
    e.u64(v.clockAsData.size());
    for (const DfaSummary::ClockData &c : v.clockAsData) {
        e.str(c.module);
        e.str(c.clock);
        e.i64(c.line);
    }
    e.u64(v.constIterations);
    e.u64(v.livenessIterations);
    e.u64(v.reachingIterations);
    e.u64(v.clockIterations);
}

DfaSummary
Serde<DfaSummary>::decode(Decoder &d)
{
    DfaSummary v;
    size_t consts = d.seq(4);
    v.constSignals.reserve(consts);
    for (size_t i = 0; i < consts; ++i) {
        DfaSummary::ConstSignal c;
        c.name = d.str();
        c.value = d.u64();
        c.width = decodePositive(d, "const signal width");
        uint64_t kind = d.u64();
        if (kind > static_cast<uint64_t>(SigKind::Output))
            d.fail("SigKind value " + std::to_string(kind) +
                   " out of range");
        c.kind = static_cast<uint8_t>(kind);
        v.constSignals.push_back(std::move(c));
    }
    size_t muxes = d.seq();
    v.constMuxSignals.reserve(muxes);
    for (size_t i = 0; i < muxes; ++i)
        v.constMuxSignals.push_back(d.str());
    v.constMuxCount = d.u64();
    size_t wires = d.seq();
    v.deadWires.reserve(wires);
    for (size_t i = 0; i < wires; ++i)
        v.deadWires.push_back(d.str());
    size_t regs = d.seq();
    v.deadRegs.reserve(regs);
    for (size_t i = 0; i < regs; ++i)
        v.deadRegs.push_back(d.str());
    v.deadCombGates = d.u64();
    size_t reads = d.seq(3);
    v.readBeforeWrite.reserve(reads);
    for (size_t i = 0; i < reads; ++i) {
        DfaSummary::ReadBeforeWrite r;
        r.module = d.str();
        r.signal = d.str();
        r.line = static_cast<int>(d.i64());
        v.readBeforeWrite.push_back(std::move(r));
    }
    size_t domains = d.seq(3);
    v.domains.reserve(domains);
    for (size_t i = 0; i < domains; ++i) {
        DfaSummary::RegDomain r;
        r.module = d.str();
        r.reg = d.str();
        r.clock = d.str();
        v.domains.push_back(std::move(r));
    }
    size_t crossings = d.seq(6);
    v.crossings.reserve(crossings);
    for (size_t i = 0; i < crossings; ++i) {
        DfaSummary::Crossing c;
        c.module = d.str();
        c.signal = d.str();
        c.fromClock = d.str();
        c.toClock = d.str();
        c.line = static_cast<int>(d.i64());
        c.synchronized = d.boolean();
        v.crossings.push_back(std::move(c));
    }
    size_t clocks = d.seq(3);
    v.clockAsData.reserve(clocks);
    for (size_t i = 0; i < clocks; ++i) {
        DfaSummary::ClockData c;
        c.module = d.str();
        c.clock = d.str();
        c.line = static_cast<int>(d.i64());
        v.clockAsData.push_back(std::move(c));
    }
    v.constIterations = d.u64();
    v.livenessIterations = d.u64();
    v.reachingIterations = d.u64();
    v.clockIterations = d.u64();
    return v;
}

// -------------------------------------------------- registration

void
registerArtifactSerdes()
{
    std::call_once(registerOnce, [] {
        registerSerde<RtlDesign>("RtlDesign");
        registerSerde<ElabResult>("ElabResult");
        registerSerde<Netlist>("Netlist");
        registerSerde<CellMapping>("CellMapping");
        registerSerde<LutMapping>("LutMapping");
        registerSerde<ConeReport>("ConeReport");
        registerSerde<TimingSummary>("TimingSummary");
        registerSerde<PowerReport>("PowerReport");
        registerSerde<SynthMetrics>("SynthMetrics");
        registerSerde<ComponentMeasurement>("ComponentMeasurement");
        registerSerde<Dataset>("Dataset");
        registerSerde<obs::ConvergenceTrace>("ConvergenceTrace");
        registerSerde<FittedEstimator>("FittedEstimator");
        registerSerde<LintReport>("LintReport");
        registerSerde<DfaSummary>("DfaSummary");
    });
}

} // namespace io
} // namespace ucx
