/**
 * @file
 * ucx::io — the versioned binary artifact codec.
 *
 * Every cached artifact travels as one self-describing *frame*:
 *
 *     offset  size  field
 *          0     4  magic "UCXA"
 *          4     2  container version (kContainerVersion, LE)
 *          6     2  artifact schema version (Serde<T>::kVersion)
 *          8     4  artifact type tag (Serde<T>::kTypeTag)
 *         12     8  payload length in bytes
 *         20     8  XXH64 checksum of the payload
 *         28     -  payload (Encoder output)
 *
 * The payload is a compact byte stream: LEB128 varints for unsigned
 * integers and lengths, zigzag varints for signed integers, raw
 * little-endian bit patterns for doubles (lossless — a decoded
 * artifact is value-identical to the encoded one, which is what
 * keeps a disk cache hit byte-identical to a recompute), and
 * length-prefixed strings.
 *
 * Serialization of a type T is described by specializing Serde<T>:
 *
 *     template <> struct Serde<Foo> {
 *         static constexpr uint32_t kTypeTag = fourcc("FOO!");
 *         static constexpr uint16_t kVersion = 1;
 *         static void encode(Encoder &e, const Foo &v);
 *         static Foo decode(Decoder &d);
 *     };
 *
 * Every malformed input — truncation, bit flips (caught by the
 * checksum), bad magic, container/schema version or type-tag
 * mismatches, trailing garbage — fails with a typed SerdeError
 * naming the byte offset of the fault. Nothing in this layer knows
 * about domain types; artifact_serde.hh provides the
 * specializations, and the registry (registry.hh) erases them for
 * the cache.
 */

#ifndef UCX_IO_SERDE_HH
#define UCX_IO_SERDE_HH

#include <cstdint>
#include <cstring>
#include <string>

#include "util/error.hh"

namespace ucx
{
namespace io
{

/**
 * Error decoding a malformed artifact: truncated, corrupted, or of
 * an unexpected type/version. Carries the byte offset at which the
 * fault was detected; the message names it too.
 */
class SerdeError : public UcxError
{
  public:
    /**
     * @param what   Description of the fault.
     * @param offset Byte offset (into the frame or payload being
     *               decoded) at which it was detected.
     */
    SerdeError(const std::string &what, size_t offset)
        : UcxError("serde: " + what + " at offset " +
                   std::to_string(offset)),
          offset_(offset)
    {}

    /** @return Byte offset of the detected fault. */
    size_t offset() const { return offset_; }

  private:
    size_t offset_;
};

/**
 * XXH64 — the 64-bit xxHash checksum (Yann Collet's algorithm),
 * guarding frame payloads against bit rot and torn writes.
 *
 * @param data Bytes to hash.
 * @param size Byte count.
 * @param seed Hash seed (0 for frames).
 * @return The 64-bit digest.
 */
uint64_t xxhash64(const void *data, size_t size, uint64_t seed = 0);

/** Four-character type tag, e.g. fourcc("NETL"). */
constexpr uint32_t
fourcc(const char (&s)[5])
{
    return static_cast<uint32_t>(static_cast<unsigned char>(s[0])) |
           static_cast<uint32_t>(static_cast<unsigned char>(s[1]))
               << 8 |
           static_cast<uint32_t>(static_cast<unsigned char>(s[2]))
               << 16 |
           static_cast<uint32_t>(static_cast<unsigned char>(s[3]))
               << 24;
}

/** @return The printable "NETL" form of a type tag. */
std::string fourccName(uint32_t tag);

/** Serialization descriptor; specialize per artifact type. */
template <typename T> struct Serde;

/** Appends the compact payload encoding to a byte string. */
class Encoder
{
  public:
    /** Append one raw byte. */
    void
    u8(uint8_t v)
    {
        bytes_.push_back(static_cast<char>(v));
    }

    /** Append an unsigned integer as a LEB128 varint. */
    void
    u64(uint64_t v)
    {
        while (v >= 0x80) {
            u8(static_cast<uint8_t>(v) | 0x80);
            v >>= 7;
        }
        u8(static_cast<uint8_t>(v));
    }

    /** Append a 32-bit unsigned integer (same varint wire form). */
    void u32(uint32_t v) { u64(v); }

    /** Append a signed integer as a zigzag varint. */
    void
    i64(int64_t v)
    {
        u64((static_cast<uint64_t>(v) << 1) ^
            static_cast<uint64_t>(v >> 63));
    }

    /** Append a double as its little-endian bit pattern (lossless). */
    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        for (int i = 0; i < 8; ++i)
            u8(static_cast<uint8_t>(bits >> (8 * i)));
    }

    /** Append a bool as one byte (0/1). */
    void boolean(bool v) { u8(v ? 1 : 0); }

    /** Append a length-prefixed string. */
    void
    str(const std::string &v)
    {
        u64(v.size());
        bytes_.append(v);
    }

    /** @return The bytes encoded so far. */
    const std::string &bytes() const { return bytes_; }

    /** @return The encoded bytes, moved out. */
    std::string take() { return std::move(bytes_); }

  private:
    std::string bytes_;
};

/** Bounds-checked reader of an Encoder payload. */
class Decoder
{
  public:
    /**
     * @param data Payload bytes (not owned; must outlive the
     *             decoder).
     * @param size Payload size.
     */
    Decoder(const void *data, size_t size)
        : data_(static_cast<const uint8_t *>(data)), size_(size)
    {}

    /** @return One raw byte; SerdeError past the end. */
    uint8_t
    u8()
    {
        if (pos_ >= size_)
            fail("truncated input");
        return data_[pos_++];
    }

    /** @return A LEB128 varint; SerdeError on truncation/overflow. */
    uint64_t
    u64()
    {
        uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            uint8_t byte = u8();
            v |= static_cast<uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
        }
        fail("varint longer than 64 bits");
    }

    /** @return A 32-bit varint; SerdeError when out of range. */
    uint32_t
    u32()
    {
        uint64_t v = u64();
        if (v > 0xffffffffull)
            fail("varint exceeds 32 bits");
        return static_cast<uint32_t>(v);
    }

    /** @return A zigzag-decoded signed integer. */
    int64_t
    i64()
    {
        uint64_t v = u64();
        return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
    }

    /** @return A double from its bit pattern. */
    double
    f64()
    {
        uint64_t bits = 0;
        for (int i = 0; i < 8; ++i)
            bits |= static_cast<uint64_t>(u8()) << (8 * i);
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    /** @return A bool; SerdeError on any byte other than 0/1. */
    bool
    boolean()
    {
        uint8_t v = u8();
        if (v > 1)
            fail("boolean byte is neither 0 nor 1");
        return v == 1;
    }

    /** @return A length-prefixed string. */
    std::string
    str()
    {
        uint64_t n = u64();
        if (n > remaining())
            fail("string length " + std::to_string(n) +
                 " exceeds the remaining " +
                 std::to_string(remaining()) + " bytes");
        std::string out(reinterpret_cast<const char *>(data_ + pos_),
                        static_cast<size_t>(n));
        pos_ += static_cast<size_t>(n);
        return out;
    }

    /**
     * Read a sequence length and sanity-bound it: every element of
     * a sequence occupies at least @p min_element_bytes, so a
     * length claiming more elements than the remaining bytes could
     * hold is corruption — caught here instead of by an attempted
     * multi-gigabyte allocation.
     *
     * @param min_element_bytes Minimum wire size of one element.
     * @return The element count.
     */
    size_t
    seq(size_t min_element_bytes = 1)
    {
        uint64_t n = u64();
        if (min_element_bytes > 0 &&
            n > remaining() / min_element_bytes)
            fail("sequence length " + std::to_string(n) +
                 " exceeds the remaining input");
        return static_cast<size_t>(n);
    }

    /** @return Current read offset into the payload. */
    size_t offset() const { return pos_; }

    /** @return Bytes left to read. */
    size_t remaining() const { return size_ - pos_; }

    /** @return True when every byte has been consumed. */
    bool done() const { return pos_ == size_; }

    /** SerdeError unless the input was consumed exactly. */
    void
    expectEnd()
    {
        if (!done())
            fail(std::to_string(remaining()) +
                 " trailing bytes after the payload");
    }

    /** Throw a SerdeError at the current offset. */
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw SerdeError(what, pos_);
    }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

// ------------------------------------------------------- framing

/** Frame magic ("UCXA") as the first four bytes. */
inline constexpr char kFrameMagic[4] = {'U', 'C', 'X', 'A'};

/** Version of the container layout itself. */
inline constexpr uint16_t kContainerVersion = 1;

/** Fixed frame header size in bytes. */
inline constexpr size_t kFrameHeaderSize = 28;

/** Byte offsets of the header fields (for SerdeError reporting). */
inline constexpr size_t kFrameOffMagic = 0;
inline constexpr size_t kFrameOffContainer = 4;
inline constexpr size_t kFrameOffVersion = 6;
inline constexpr size_t kFrameOffTypeTag = 8;
inline constexpr size_t kFrameOffPayloadSize = 12;
inline constexpr size_t kFrameOffChecksum = 20;

/** Parsed frame header. */
struct FrameHeader
{
    uint16_t containerVersion = 0;
    uint16_t version = 0;  ///< Artifact schema version.
    uint32_t typeTag = 0;  ///< Serde<T>::kTypeTag.
    uint64_t payloadSize = 0;
    uint64_t checksum = 0; ///< XXH64 of the payload.
};

/**
 * Wrap a payload into a framed artifact.
 *
 * @param type_tag Artifact type tag.
 * @param version  Artifact schema version.
 * @param payload  Encoder output.
 * @return Header + payload bytes.
 */
std::string frame(uint32_t type_tag, uint16_t version,
                  const std::string &payload);

/**
 * Parse and validate a frame header: magic, container version, and
 * that the payload length matches the actual byte count. Does NOT
 * verify the checksum (peek is what directory tools use to list
 * entries without reading payload contents).
 *
 * @param framed Full frame bytes.
 * @return The header; throws SerdeError naming the faulty offset.
 */
FrameHeader peekFrame(const std::string &framed);

/**
 * peekFrame plus checksum verification of the payload.
 *
 * @param framed Full frame bytes.
 * @return The header; throws SerdeError on any mismatch.
 */
FrameHeader readFrame(const std::string &framed);

/**
 * Encode one artifact into a complete frame.
 *
 * @param value The artifact.
 * @return Frame bytes (header + payload).
 */
template <typename T>
std::string
encodeArtifact(const T &value)
{
    Encoder e;
    Serde<T>::encode(e, value);
    return frame(Serde<T>::kTypeTag, Serde<T>::kVersion, e.bytes());
}

/**
 * Decode one artifact from a complete frame, verifying checksum,
 * type tag, and schema version.
 *
 * @param framed Frame bytes.
 * @return The decoded artifact; throws SerdeError on any fault.
 */
template <typename T>
T
decodeArtifact(const std::string &framed)
{
    FrameHeader h = readFrame(framed);
    if (h.typeTag != Serde<T>::kTypeTag)
        throw SerdeError("type tag '" + fourccName(h.typeTag) +
                             "' does not match expected '" +
                             fourccName(Serde<T>::kTypeTag) + "'",
                         kFrameOffTypeTag);
    if (h.version != Serde<T>::kVersion)
        throw SerdeError(
            "schema version " + std::to_string(h.version) +
                " does not match expected " +
                std::to_string(Serde<T>::kVersion) + " for '" +
                fourccName(h.typeTag) + "'",
            kFrameOffVersion);
    Decoder d(framed.data() + kFrameHeaderSize, h.payloadSize);
    T value = Serde<T>::decode(d);
    d.expectEnd();
    return value;
}

} // namespace io
} // namespace ucx

#endif // UCX_IO_SERDE_HH
