/**
 * @file
 * DiskStore — the content-addressed on-disk artifact tier.
 *
 * Each entry is one file under the store directory, addressed by
 * the XXH64 hash of its canonical cache-key string and sharded two
 * levels deep to keep directories small:
 *
 *     <dir>/aa/bb/<16-hex-digit key hash>.ucx
 *
 * (aa/bb are the first four hex digits of the hash.) A file holds a
 * small container — magic "UCXF", file version, the *full* key
 * string — followed by the framed artifact (serde.hh). Storing the
 * key verbatim makes hash collisions harmless (a mismatched key
 * reads as a miss, never as wrong data) and lets ucx_cachectl list
 * a store without a key database.
 *
 * Writes are crash-safe: the entry is written to a temporary file
 * in the same shard directory and atomically renamed into place, so
 * a concurrent reader (or another process) sees either no file or a
 * complete one — never a torn write. An entry that already exists
 * is left alone (artifacts are deterministic, so whoever got there
 * first wrote the same bytes).
 *
 * This layer moves bytes only; checksum/version validation of the
 * framed artifact is the caller's job (the cache decodes through
 * the SerdeRegistry and treats any SerdeError as a removable
 * corrupt entry). I/O failures never throw out of read/write — a
 * broken disk degrades the cache to a recompute, not an error.
 */

#ifndef UCX_IO_DISK_STORE_HH
#define UCX_IO_DISK_STORE_HH

#include <string>

namespace ucx
{
namespace io
{

/** File magic of one on-disk cache entry ("UCXF"). */
inline constexpr char kEntryMagic[4] = {'U', 'C', 'X', 'F'};

/** Version of the entry file container. */
inline constexpr uint16_t kEntryVersion = 1;

/** Content-addressed, sharded, atomic-write file store. */
class DiskStore
{
  public:
    /**
     * Open (and lazily create) a store rooted at @p dir.
     *
     * @param dir Store directory; must be non-empty.
     */
    explicit DiskStore(std::string dir);

    /** @return UCX_CACHE_DIR, or "" when unset (disk tier off). */
    static std::string dirFromEnv();

    /** @return The store root directory. */
    const std::string &dir() const { return dir_; }

    /** @return The sharded entry path of a cache key. */
    std::string pathFor(const std::string &key) const;

    /** Outcome of a read. */
    enum class ReadStatus
    {
        Hit,    ///< Entry found; @p framed holds the artifact frame.
        Miss,   ///< No entry (or a hash collision with another key).
        Corrupt ///< Malformed entry file; it has been removed.
    };

    /**
     * Read the entry of a key.
     *
     * @param key    Canonical cache-key string.
     * @param framed Receives the framed artifact bytes on Hit.
     * @return Hit, Miss, or Corrupt (never throws).
     */
    ReadStatus read(const std::string &key,
                    std::string &framed) const;

    /**
     * Write an entry (write-temp-then-rename). A pre-existing entry
     * is kept untouched.
     *
     * @param key    Canonical cache-key string.
     * @param framed Framed artifact bytes.
     * @return True when a new entry landed on disk; false when the
     *         entry already existed or the write failed (logged,
     *         never thrown).
     */
    bool write(const std::string &key,
               const std::string &framed) const;

    /**
     * Remove the entry of a key (used for corrupt frames detected
     * above this layer). Missing files are fine.
     *
     * @param key Canonical cache-key string.
     */
    void remove(const std::string &key) const;

    // ------------------------- entry file container (cachectl too)

    /** @return The entry-file bytes wrapping @p framed under @p key. */
    static std::string packEntry(const std::string &key,
                                 const std::string &framed);

    /**
     * Split an entry file into its key and framed artifact.
     *
     * @param bytes  Full entry-file bytes.
     * @param key    Receives the stored key string.
     * @param framed Receives the framed artifact bytes.
     * @return False on a malformed container (bad magic/version/
     *         lengths).
     */
    static bool unpackEntry(const std::string &bytes,
                            std::string &key, std::string &framed);

    /**
     * Read a whole file into a string.
     *
     * @param path  File path.
     * @param bytes Receives the contents.
     * @return False when the file cannot be read.
     */
    static bool readFile(const std::string &path,
                         std::string &bytes);

  private:
    std::string dir_;
};

} // namespace io
} // namespace ucx

#endif // UCX_IO_DISK_STORE_HH
