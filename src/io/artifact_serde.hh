/**
 * @file
 * Serde specializations for every cached artifact type.
 *
 * One specialization per artifact the two-tier ArtifactCache can
 * persist: elaboration results, RTL designs, netlists, both mapping
 * flavors, cone/timing/power/metrics reports, component
 * measurements, datasets, fitted estimators, and lint reports. Each
 * carries a fourcc wire tag and its own schema version — bump the
 * version whenever a type's fields change, and old disk entries
 * degrade to cache misses instead of mis-decoding.
 *
 * registerArtifactSerdes() publishes them all into the process-wide
 * SerdeRegistry; it is idempotent and cheap, so every entry point
 * that wants the disk tier (EstimationSession, CLIs) just calls it.
 */

#ifndef UCX_IO_ARTIFACT_SERDE_HH
#define UCX_IO_ARTIFACT_SERDE_HH

#include "core/dataset.hh"
#include "core/estimator.hh"
#include "core/measure.hh"
#include "dfa/summary.hh"
#include "io/serde.hh"
#include "lint/diagnostic.hh"
#include "obs/trace.hh"
#include "synth/cones.hh"
#include "synth/elaborate.hh"
#include "synth/mapper.hh"
#include "synth/metrics.hh"
#include "synth/netlist.hh"
#include "synth/pass.hh"
#include "synth/power.hh"
#include "synth/rtl.hh"
#include "synth/timing.hh"

namespace ucx
{
namespace io
{

/**
 * Register every artifact codec below with SerdeRegistry::global().
 * Idempotent (guarded by std::call_once); call it from any entry
 * point before enabling the cache's disk tier.
 */
void registerArtifactSerdes();

template <> struct Serde<RtlDesign>
{
    static constexpr uint32_t kTypeTag = fourcc("RTLD");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const RtlDesign &v);
    static RtlDesign decode(Decoder &d);
};

template <> struct Serde<ElabResult>
{
    static constexpr uint32_t kTypeTag = fourcc("ELAB");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const ElabResult &v);
    static ElabResult decode(Decoder &d);
};

template <> struct Serde<Netlist>
{
    static constexpr uint32_t kTypeTag = fourcc("NETL");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const Netlist &v);
    static Netlist decode(Decoder &d);
};

template <> struct Serde<CellMapping>
{
    static constexpr uint32_t kTypeTag = fourcc("CMAP");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const CellMapping &v);
    static CellMapping decode(Decoder &d);
};

template <> struct Serde<LutMapping>
{
    static constexpr uint32_t kTypeTag = fourcc("LMAP");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const LutMapping &v);
    static LutMapping decode(Decoder &d);
};

template <> struct Serde<ConeReport>
{
    static constexpr uint32_t kTypeTag = fourcc("CONE");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const ConeReport &v);
    static ConeReport decode(Decoder &d);
};

template <> struct Serde<TimingSummary>
{
    static constexpr uint32_t kTypeTag = fourcc("TIMG");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const TimingSummary &v);
    static TimingSummary decode(Decoder &d);
};

template <> struct Serde<PowerReport>
{
    static constexpr uint32_t kTypeTag = fourcc("POWR");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const PowerReport &v);
    static PowerReport decode(Decoder &d);
};

template <> struct Serde<SynthMetrics>
{
    static constexpr uint32_t kTypeTag = fourcc("SMET");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const SynthMetrics &v);
    static SynthMetrics decode(Decoder &d);
};

template <> struct Serde<ComponentMeasurement>
{
    static constexpr uint32_t kTypeTag = fourcc("MEAS");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const ComponentMeasurement &v);
    static ComponentMeasurement decode(Decoder &d);
};

template <> struct Serde<Dataset>
{
    static constexpr uint32_t kTypeTag = fourcc("DSET");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const Dataset &v);
    static Dataset decode(Decoder &d);
};

/** Sub-codec of FittedEstimator; registered for completeness. */
template <> struct Serde<obs::ConvergenceTrace>
{
    static constexpr uint32_t kTypeTag = fourcc("TRAC");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const obs::ConvergenceTrace &v);
    static obs::ConvergenceTrace decode(Decoder &d);
};

template <> struct Serde<FittedEstimator>
{
    static constexpr uint32_t kTypeTag = fourcc("FEST");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const FittedEstimator &v);
    static FittedEstimator decode(Decoder &d);
};

template <> struct Serde<LintReport>
{
    static constexpr uint32_t kTypeTag = fourcc("LINT");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const LintReport &v);
    static LintReport decode(Decoder &d);
};

template <> struct Serde<DfaSummary>
{
    static constexpr uint32_t kTypeTag = fourcc("DFAS");
    static constexpr uint16_t kVersion = 1;
    static void encode(Encoder &e, const DfaSummary &v);
    static DfaSummary decode(Decoder &d);
};

} // namespace io
} // namespace ucx

#endif // UCX_IO_ARTIFACT_SERDE_HH
