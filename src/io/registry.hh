/**
 * @file
 * SerdeRegistry — runtime, type-erased directory of artifact codecs.
 *
 * The two-tier ArtifactCache is type-erased (it stores
 * shared_ptr<const void> behind std::type_info), while Serde<T> is
 * a compile-time trait; the registry bridges the two without making
 * the cache library depend on domain types. Each registered codec
 * erases encodeArtifact<T>/decodeArtifact<T> behind std::function,
 * keyed both by std::type_index (the cache's view) and by the wire
 * type tag (the view of tools reading .ucx files).
 *
 * Artifact types that are *not* registered simply bypass the disk
 * tier — the memory tier keeps working for them, so registration is
 * an opt-in per type, not a correctness requirement.
 *
 * Registration normally happens once per process through
 * registerArtifactSerdes() (artifact_serde.hh); add() is idempotent
 * for an identical re-registration and panics on a conflicting one
 * (two types claiming one tag would corrupt the on-disk store).
 */

#ifndef UCX_IO_REGISTRY_HH
#define UCX_IO_REGISTRY_HH

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <typeinfo>
#include <unordered_map>
#include <vector>

#include "io/serde.hh"

namespace ucx
{
namespace io
{

/** One type-erased artifact codec. */
struct ArtifactCodec
{
    std::string name;      ///< Human name, e.g. "Netlist".
    uint32_t typeTag = 0;  ///< Serde<T>::kTypeTag.
    uint16_t version = 0;  ///< Serde<T>::kVersion.
    const std::type_info *type = nullptr;

    /** Encode an artifact into frame bytes. */
    std::function<std::string(const std::shared_ptr<const void> &)>
        encode;

    /** Decode frame bytes; throws SerdeError on malformed input. */
    std::function<std::shared_ptr<const void>(const std::string &)>
        decode;
};

/** Thread-safe process-wide codec directory. */
class SerdeRegistry
{
  public:
    /** @return The process-wide registry. */
    static SerdeRegistry &global();

    /**
     * Register a codec. Re-registering the same (type, tag,
     * version) is a no-op; a conflicting registration (same tag for
     * another type, same type under another tag) is an internal bug
     * (UcxPanic).
     *
     * @param codec Complete codec (non-null hooks).
     */
    void add(ArtifactCodec codec);

    /**
     * @param type Artifact dynamic type.
     * @return The codec, or null when the type is unregistered.
     */
    const ArtifactCodec *byType(const std::type_info &type) const;

    /**
     * @param tag Wire type tag.
     * @return The codec, or null when the tag is unknown.
     */
    const ArtifactCodec *byTag(uint32_t tag) const;

    /** @return Every registered codec, sorted by name. */
    std::vector<const ArtifactCodec *> codecs() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::type_index,
                       std::unique_ptr<ArtifactCodec>>
        byType_;
    std::unordered_map<uint32_t, const ArtifactCodec *> byTag_;
};

/**
 * Build and register the codec of one Serde-specialized type.
 *
 * @param name Human-readable type name for tools and diagnostics.
 */
template <typename T>
void
registerSerde(const std::string &name)
{
    ArtifactCodec codec;
    codec.name = name;
    codec.typeTag = Serde<T>::kTypeTag;
    codec.version = Serde<T>::kVersion;
    codec.type = &typeid(T);
    codec.encode = [](const std::shared_ptr<const void> &value) {
        return encodeArtifact<T>(
            *std::static_pointer_cast<const T>(value));
    };
    codec.decode =
        [](const std::string &framed) -> std::shared_ptr<const void> {
        return std::static_pointer_cast<const void>(
            std::make_shared<const T>(decodeArtifact<T>(framed)));
    };
    SerdeRegistry::global().add(std::move(codec));
}

} // namespace io
} // namespace ucx

#endif // UCX_IO_REGISTRY_HH
