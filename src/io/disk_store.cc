#include "io/disk_store.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "io/serde.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace fs = std::filesystem;

namespace ucx
{
namespace io
{

namespace
{

std::string
hexHash(const std::string &key)
{
    static const char *digits = "0123456789abcdef";
    uint64_t h = xxhash64(key.data(), key.size());
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

/** Unique-enough temp suffix: pid is cross-process, the counter
 *  cross-thread; rename makes the final step atomic either way. */
std::string
tempSuffix()
{
    static std::atomic<uint64_t> counter{0};
    return ".tmp." +
           std::to_string(static_cast<uint64_t>(::getpid())) + "." +
           std::to_string(counter.fetch_add(1));
}

} // namespace

DiskStore::DiskStore(std::string dir) : dir_(std::move(dir))
{
    require(!dir_.empty(), "disk store needs a directory");
}

std::string
DiskStore::dirFromEnv()
{
    const char *env = std::getenv("UCX_CACHE_DIR");
    return env != nullptr ? std::string(env) : std::string();
}

std::string
DiskStore::pathFor(const std::string &key) const
{
    std::string hash = hexHash(key);
    return dir_ + "/" + hash.substr(0, 2) + "/" + hash.substr(2, 2) +
           "/" + hash + ".ucx";
}

DiskStore::ReadStatus
DiskStore::read(const std::string &key, std::string &framed) const
{
    std::string path = pathFor(key);
    std::error_code ec;
    if (!fs::exists(path, ec) || ec)
        return ReadStatus::Miss;
    std::string bytes;
    if (!readFile(path, bytes))
        return ReadStatus::Miss;
    std::string stored_key;
    if (!unpackEntry(bytes, stored_key, framed)) {
        fs::remove(path, ec);
        framed.clear();
        return ReadStatus::Corrupt;
    }
    if (stored_key != key) {
        // A 64-bit hash collision with a different key: the entry
        // legitimately belongs to someone else, so it stays.
        framed.clear();
        return ReadStatus::Miss;
    }
    return ReadStatus::Hit;
}

bool
DiskStore::write(const std::string &key,
                 const std::string &framed) const
{
    std::string path = pathFor(key);
    std::error_code ec;
    if (fs::exists(path, ec))
        return false;
    fs::path target(path);
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
        warn("cache disk tier: cannot create " +
             target.parent_path().string() + ": " + ec.message());
        return false;
    }
    fs::path tmp = target;
    tmp += tempSuffix();
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("cache disk tier: cannot write " + tmp.string());
            return false;
        }
        std::string bytes = packEntry(key, framed);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            out.close();
            fs::remove(tmp, ec);
            warn("cache disk tier: short write to " + tmp.string());
            return false;
        }
    }
    fs::rename(tmp, target, ec);
    if (ec) {
        fs::remove(tmp, ec);
        warn("cache disk tier: cannot publish " + path + ": " +
             ec.message());
        return false;
    }
    return true;
}

void
DiskStore::remove(const std::string &key) const
{
    std::error_code ec;
    fs::remove(pathFor(key), ec);
}

std::string
DiskStore::packEntry(const std::string &key,
                     const std::string &framed)
{
    std::string out;
    out.reserve(sizeof(kEntryMagic) + 2 + 4 + key.size() +
                framed.size());
    out.append(kEntryMagic, sizeof(kEntryMagic));
    out.push_back(static_cast<char>(kEntryVersion & 0xff));
    out.push_back(static_cast<char>(kEntryVersion >> 8));
    uint32_t len = static_cast<uint32_t>(key.size());
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
    out.append(key);
    out.append(framed);
    return out;
}

bool
DiskStore::unpackEntry(const std::string &bytes, std::string &key,
                       std::string &framed)
{
    constexpr size_t kHeader = sizeof(kEntryMagic) + 2 + 4;
    if (bytes.size() < kHeader)
        return false;
    if (std::memcmp(bytes.data(), kEntryMagic,
                    sizeof(kEntryMagic)) != 0)
        return false;
    uint16_t version = static_cast<uint16_t>(
        static_cast<uint8_t>(bytes[4]) |
        static_cast<uint16_t>(static_cast<uint8_t>(bytes[5])) << 8);
    if (version != kEntryVersion)
        return false;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<uint32_t>(
                   static_cast<uint8_t>(bytes[6 + i]))
               << (8 * i);
    if (bytes.size() - kHeader < len)
        return false;
    key = bytes.substr(kHeader, len);
    framed = bytes.substr(kHeader + len);
    return true;
}

bool
DiskStore::readFile(const std::string &path, std::string &bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    return in.good() || in.eof();
}

} // namespace io
} // namespace ucx
