#include "io/registry.hh"

#include <algorithm>

#include "util/error.hh"

namespace ucx
{
namespace io
{

SerdeRegistry &
SerdeRegistry::global()
{
    static SerdeRegistry registry;
    return registry;
}

void
SerdeRegistry::add(ArtifactCodec codec)
{
    ensure(codec.type != nullptr && codec.encode && codec.decode,
           "serde codec registration is incomplete");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = byType_.find(std::type_index(*codec.type));
    if (it != byType_.end()) {
        ensure(it->second->typeTag == codec.typeTag &&
                   it->second->version == codec.version,
               "type '" + codec.name +
                   "' re-registered with a different tag or "
                   "version");
        return;
    }
    auto tag_it = byTag_.find(codec.typeTag);
    if (tag_it != byTag_.end())
        panic("serde tag '" + fourccName(codec.typeTag) +
              "' already registered for type '" +
              tag_it->second->name + "'");
    auto owned = std::make_unique<ArtifactCodec>(std::move(codec));
    const ArtifactCodec *raw = owned.get();
    byType_.emplace(std::type_index(*raw->type), std::move(owned));
    byTag_.emplace(raw->typeTag, raw);
}

const ArtifactCodec *
SerdeRegistry::byType(const std::type_info &type) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = byType_.find(std::type_index(type));
    return it == byType_.end() ? nullptr : it->second.get();
}

const ArtifactCodec *
SerdeRegistry::byTag(uint32_t tag) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = byTag_.find(tag);
    return it == byTag_.end() ? nullptr : it->second;
}

std::vector<const ArtifactCodec *>
SerdeRegistry::codecs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const ArtifactCodec *> out;
    out.reserve(byType_.size());
    for (const auto &[idx, codec] : byType_)
        out.push_back(codec.get());
    std::sort(out.begin(), out.end(),
              [](const ArtifactCodec *a, const ArtifactCodec *b) {
                  return a->name < b->name;
              });
    return out;
}

} // namespace io
} // namespace ucx
