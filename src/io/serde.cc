#include "io/serde.hh"

namespace ucx
{
namespace io
{

namespace
{

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ull;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

uint64_t
rotl(uint64_t v, int r)
{
    return (v << r) | (v >> (64 - r));
}

uint64_t
read64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v; // Little-endian hosts only (the whole wire format is).
}

uint32_t
read32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

uint64_t
round_(uint64_t acc, uint64_t input)
{
    acc += input * kPrime2;
    acc = rotl(acc, 31);
    acc *= kPrime1;
    return acc;
}

uint64_t
mergeRound(uint64_t acc, uint64_t val)
{
    acc ^= round_(0, val);
    acc = acc * kPrime1 + kPrime4;
    return acc;
}

void
appendLe16(std::string &out, uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>(v >> 8));
}

void
appendLe32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
appendLe64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint16_t
le16At(const std::string &bytes, size_t off)
{
    return static_cast<uint16_t>(
        static_cast<uint8_t>(bytes[off]) |
        static_cast<uint16_t>(static_cast<uint8_t>(bytes[off + 1]))
            << 8);
}

uint32_t
le32At(const std::string &bytes, size_t off)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(
                 static_cast<uint8_t>(bytes[off + i]))
             << (8 * i);
    return v;
}

uint64_t
le64At(const std::string &bytes, size_t off)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(
                 static_cast<uint8_t>(bytes[off + i]))
             << (8 * i);
    return v;
}

} // namespace

uint64_t
xxhash64(const void *data, size_t size, uint64_t seed)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    const uint8_t *end = p + size;
    uint64_t h;

    if (size >= 32) {
        uint64_t v1 = seed + kPrime1 + kPrime2;
        uint64_t v2 = seed + kPrime2;
        uint64_t v3 = seed;
        uint64_t v4 = seed - kPrime1;
        const uint8_t *limit = end - 32;
        do {
            v1 = round_(v1, read64(p));
            v2 = round_(v2, read64(p + 8));
            v3 = round_(v3, read64(p + 16));
            v4 = round_(v4, read64(p + 24));
            p += 32;
        } while (p <= limit);
        h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
        h = mergeRound(h, v1);
        h = mergeRound(h, v2);
        h = mergeRound(h, v3);
        h = mergeRound(h, v4);
    } else {
        h = seed + kPrime5;
    }

    h += static_cast<uint64_t>(size);

    while (p + 8 <= end) {
        h ^= round_(0, read64(p));
        h = rotl(h, 27) * kPrime1 + kPrime4;
        p += 8;
    }
    if (p + 4 <= end) {
        h ^= static_cast<uint64_t>(read32(p)) * kPrime1;
        h = rotl(h, 23) * kPrime2 + kPrime3;
        p += 4;
    }
    while (p < end) {
        h ^= static_cast<uint64_t>(*p) * kPrime5;
        h = rotl(h, 11) * kPrime1;
        ++p;
    }

    h ^= h >> 33;
    h *= kPrime2;
    h ^= h >> 29;
    h *= kPrime3;
    h ^= h >> 32;
    return h;
}

std::string
fourccName(uint32_t tag)
{
    std::string out;
    for (int i = 0; i < 4; ++i) {
        char c = static_cast<char>((tag >> (8 * i)) & 0xff);
        out += (c >= 0x20 && c < 0x7f) ? c : '?';
    }
    return out;
}

std::string
frame(uint32_t type_tag, uint16_t version,
      const std::string &payload)
{
    std::string out;
    out.reserve(kFrameHeaderSize + payload.size());
    out.append(kFrameMagic, sizeof(kFrameMagic));
    appendLe16(out, kContainerVersion);
    appendLe16(out, version);
    appendLe32(out, type_tag);
    appendLe64(out, payload.size());
    appendLe64(out, xxhash64(payload.data(), payload.size()));
    out.append(payload);
    return out;
}

FrameHeader
peekFrame(const std::string &framed)
{
    if (framed.size() < kFrameHeaderSize)
        throw SerdeError("frame shorter than its " +
                             std::to_string(kFrameHeaderSize) +
                             "-byte header",
                         framed.size());
    if (std::memcmp(framed.data(), kFrameMagic,
                    sizeof(kFrameMagic)) != 0)
        throw SerdeError("bad frame magic", kFrameOffMagic);
    FrameHeader h;
    h.containerVersion = le16At(framed, kFrameOffContainer);
    if (h.containerVersion != kContainerVersion)
        throw SerdeError(
            "container version " +
                std::to_string(h.containerVersion) +
                " does not match expected " +
                std::to_string(kContainerVersion),
            kFrameOffContainer);
    h.version = le16At(framed, kFrameOffVersion);
    h.typeTag = le32At(framed, kFrameOffTypeTag);
    h.payloadSize = le64At(framed, kFrameOffPayloadSize);
    if (framed.size() - kFrameHeaderSize != h.payloadSize)
        throw SerdeError(
            "payload length field claims " +
                std::to_string(h.payloadSize) + " bytes but " +
                std::to_string(framed.size() - kFrameHeaderSize) +
                " are present",
            kFrameOffPayloadSize);
    h.checksum = le64At(framed, kFrameOffChecksum);
    return h;
}

FrameHeader
readFrame(const std::string &framed)
{
    FrameHeader h = peekFrame(framed);
    uint64_t actual = xxhash64(framed.data() + kFrameHeaderSize,
                               h.payloadSize);
    if (actual != h.checksum)
        throw SerdeError("payload checksum mismatch",
                         kFrameOffChecksum);
    return h;
}

} // namespace io
} // namespace ucx
