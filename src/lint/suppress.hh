/**
 * @file
 * ucx::lint — suppression / baseline files.
 *
 * A suppression file is a line-oriented text format; each non-empty,
 * non-comment line names one suppression:
 *
 *     <rule> <design> <object>   # optional trailing comment
 *
 * Any of the three fields may be "*" (match everything) and empty
 * design/object fields in a diagnostic match the literal "-" used
 * when baselining. Matching diagnostics are dropped from a report
 * before severity gating, so a baseline freezes the current findings
 * while still failing on anything new.
 */

#ifndef UCX_LINT_SUPPRESS_HH
#define UCX_LINT_SUPPRESS_HH

#include <string>
#include <vector>

#include "lint/diagnostic.hh"

namespace ucx
{

/** One parsed suppression line. */
struct LintSuppression
{
    std::string rule;    ///< Rule id or "*".
    std::string design;  ///< Design name, "-" for empty, or "*".
    std::string object;  ///< Object name, "-" for empty, or "*".
    std::string comment; ///< Trailing "# ..." text, if any.

    /** @return Whether this suppression matches @p d. */
    bool matches(const LintDiagnostic &d) const;
};

/** A set of suppressions read from (or destined for) a file. */
class LintSuppressions
{
  public:
    /** Create an empty set. */
    LintSuppressions() = default;

    /**
     * Parse suppression-file text.
     *
     * @param text File contents.
     * @return The parsed set; throws UcxError on malformed lines or
     *         unknown non-wildcard rule ids.
     */
    static LintSuppressions parse(const std::string &text);

    /**
     * Read and parse a suppression file.
     *
     * @param path File path.
     * @return The parsed set; throws UcxError when unreadable.
     */
    static LintSuppressions fromFile(const std::string &path);

    /**
     * Build a baseline suppressing exactly the findings of
     * @p report, one line per distinct (rule, design, object).
     *
     * @param report  Findings to freeze.
     * @param comment Comment attached to every generated line.
     * @return The baseline set.
     */
    static LintSuppressions baselineOf(
        const LintReport &report,
        const std::string &comment = "baselined");

    /** Append one suppression. */
    void add(LintSuppression suppression);

    /** @return All suppressions in file order. */
    const std::vector<LintSuppression> &entries() const
    {
        return entries_;
    }

    /** @return Whether any entry matches @p d. */
    bool matches(const LintDiagnostic &d) const;

    /**
     * Remove matching diagnostics from a report.
     *
     * @param report Report to filter in place.
     * @return The number of diagnostics removed.
     */
    size_t apply(LintReport &report) const;

    /** @return The file representation; parse() round-trips it. */
    std::string serialize() const;

  private:
    std::vector<LintSuppression> entries_;
};

} // namespace ucx

#endif // UCX_LINT_SUPPRESS_HH
