/**
 * @file
 * ucx::lint — accounting rule family ("acct.*"), enforcing the
 * paper's Section 2.2 procedure on measured components and on the
 * calibration dataset:
 *
 *  - the component partition must be disjoint (no module type in two
 *    components, no component twice);
 *  - each module type is counted once, not per instance;
 *  - parameters are measured at their minimal non-degenerate values
 *    (cross-checked against the verbatim parameter-binding segment
 *    of the elaboration cache key, the representation PR 3 made
 *    collision-proof).
 */

#ifndef UCX_LINT_ACCOUNT_RULES_HH
#define UCX_LINT_ACCOUNT_RULES_HH

#include <string>
#include <utility>
#include <vector>

#include "cache/artifact_cache.hh"
#include "core/dataset.hh"
#include "core/measure.hh"
#include "hdl/design.hh"
#include "lint/diagnostic.hh"

namespace ucx
{

/**
 * Check one measured component against §2.2: every module type
 * measured at its minimal non-degenerate parameterization
 * (acct.non-minimal-params) and counted once, not per instance
 * (acct.duplicate-type).
 *
 * @param design      The component's design.
 * @param top         The component's top module.
 * @param design_name Name used in diagnostics.
 * @param measurement The measurement to validate.
 * @param cache       Memo store for the re-minimization
 *                    elaborations; null recomputes uncached.
 * @return The findings (unsorted).
 */
LintReport lintAccountingMeasurement(
    const Design &design, const std::string &top,
    const std::string &design_name,
    const ComponentMeasurement &measurement,
    ArtifactCache *cache = nullptr);

/**
 * Check a partition of measured components for disjointness: a
 * module type contributing to two components is double-counted
 * (acct.overlap), and a component name appearing twice is a
 * malformed partition (acct.duplicate-component).
 *
 * @param partition (component name, measurement) pairs.
 * @return The findings (unsorted).
 */
LintReport lintAccountingPartition(
    const std::vector<std::pair<std::string, ComponentMeasurement>>
        &partition);

/**
 * Check a calibration dataset's accounting hygiene: duplicate
 * component identities (acct.duplicate-component), nonpositive
 * reported efforts (acct.nonpositive-effort), and identical metric
 * vectors within one project (acct.duplicate-metrics — the
 * signature of a component measured into two partition cells).
 *
 * @param dataset      Dataset to validate.
 * @param dataset_name Name used in diagnostics.
 * @return The findings (unsorted).
 */
LintReport lintDatasetAccounting(const Dataset &dataset,
                                 const std::string &dataset_name);

} // namespace ucx

#endif // UCX_LINT_ACCOUNT_RULES_HH
