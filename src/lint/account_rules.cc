#include "lint/account_rules.hh"

#include <cmath>
#include <map>
#include <set>

#include "cache/key.hh"
#include "util/error.hh"

namespace ucx
{

namespace
{

/** Verbatim "name=value,..." rendering of a parameter binding. */
std::string
bindingText(const std::map<std::string, int64_t> &params)
{
    // Reuse the cache-key encoding so the lint message shows the
    // exact collision-proof segment the artifact cache keys on.
    CacheKey key("");
    key.addParams(params);
    std::string text = key.str();
    // Strip the "|" separator the namespace-less key starts with.
    return text.size() > 1 ? text.substr(1) : "(none)";
}

} // namespace

LintReport
lintAccountingMeasurement(const Design &design,
                          const std::string &top,
                          const std::string &design_name,
                          const ComponentMeasurement &measurement,
                          ArtifactCache *cache)
{
    LintReport out;

    // Count-once rule: a WithProcedure measurement records one
    // binding per reachable module type. A measurement holding only
    // the top binding while the instance census shows repeated
    // types was taken per-instance.
    bool per_type =
        measurement.measuredParams.size() > 1 ||
        (measurement.measuredParams.size() == 1 &&
         measurement.measuredParams.begin()->first == top &&
         measurement.moduleCounts.size() <= 1);
    if (!per_type) {
        for (const auto &[module_name, count] :
             measurement.moduleCounts) {
            if (count <= 1)
                continue;
            out.add("acct.duplicate-type", design_name, module_name,
                    "module type '" + module_name +
                        "' is instantiated " +
                        std::to_string(count) +
                        " times and was measured per instance")
                .hint = "measure with the Section 2.2 accounting "
                        "procedure (count each type once)";
        }
        return out;
    }

    // Minimal-parameter rule: re-derive the minimal non-degenerate
    // binding per module type and compare verbatim.
    for (const auto &[module_name, params] :
         measurement.measuredParams) {
        if (!design.hasModule(module_name))
            continue;
        std::map<std::string, int64_t> minimal =
            minimizeParameters(design, module_name, cache);
        if (params != minimal) {
            out.add("acct.non-minimal-params", design_name,
                    module_name,
                    "measured binding {" + bindingText(params) +
                        "} is not the minimal non-degenerate "
                        "binding {" +
                        bindingText(minimal) + "}")
                .hint = "scale parameters down before measuring "
                        "(paper Section 2.2)";
        }
    }
    return out;
}

LintReport
lintAccountingPartition(
    const std::vector<std::pair<std::string, ComponentMeasurement>>
        &partition)
{
    LintReport out;

    std::set<std::string> seen;
    std::map<std::string, std::string> owner; // module type -> comp
    for (const auto &[name, measurement] : partition) {
        if (!seen.insert(name).second) {
            out.add("acct.duplicate-component", "", name,
                    "component '" + name +
                        "' appears more than once in the "
                        "partition")
                .hint = "partition cells must be disjoint";
        }
        for (const auto &[module_name, count] :
             measurement.moduleCounts) {
            (void)count;
            auto [it, inserted] =
                owner.emplace(module_name, name);
            if (!inserted && it->second != name) {
                out.add("acct.overlap", "", module_name,
                        "module type '" + module_name +
                            "' belongs to components '" +
                            it->second + "' and '" + name + "'")
                    .hint = "assign each module type to exactly "
                            "one component";
            }
        }
    }
    return out;
}

LintReport
lintDatasetAccounting(const Dataset &dataset,
                      const std::string &dataset_name)
{
    LintReport out;

    std::set<std::string> names;
    for (const Component &c : dataset.components()) {
        if (!names.insert(c.fullName()).second) {
            out.add("acct.duplicate-component", dataset_name,
                    c.fullName(),
                    "component '" + c.fullName() +
                        "' appears more than once in the dataset")
                .hint = "each component is one data point";
        }
        if (!(c.effort > 0.0) || !std::isfinite(c.effort)) {
            out.add("acct.nonpositive-effort", dataset_name,
                    c.fullName(),
                    "reported effort " + std::to_string(c.effort) +
                        " person-months is not positive and "
                        "finite")
                .hint = "log(effort) is undefined; fix the "
                        "reported value";
        }
    }

    // Identical metric vectors inside one project suggest the same
    // logic measured into two partition cells.
    const auto &components = dataset.components();
    for (size_t i = 0; i < components.size(); ++i) {
        for (size_t j = i + 1; j < components.size(); ++j) {
            const Component &a = components[i];
            const Component &b = components[j];
            if (a.project != b.project)
                continue;
            if (a.metrics == b.metrics) {
                out.add("acct.duplicate-metrics", dataset_name,
                        a.fullName() + "/" + b.fullName(),
                        "components '" + a.fullName() + "' and '" +
                            b.fullName() +
                            "' have identical metric vectors")
                    .hint = "was the same component measured "
                            "twice?";
            }
        }
    }
    return out;
}

} // namespace ucx
