/**
 * @file
 * dfa.* lint rules: translating a DfaSummary into findings.
 *
 * The analyses live in src/dfa and produce a plain summary; this
 * translation owns severity and message wording, so the dfa
 * library never depends on the lint layer (and a cached summary
 * re-renders to findings without re-running any analysis).
 */

#ifndef UCX_LINT_DFA_RULES_HH
#define UCX_LINT_DFA_RULES_HH

#include <string>

#include "dfa/summary.hh"
#include "lint/diagnostic.hh"

namespace ucx
{

/**
 * Render a dataflow summary as dfa.* findings.
 *
 * @param summary     Analysis results.
 * @param design_name Name used in diagnostics.
 * @return One finding per reportable fact, unsorted.
 */
LintReport dfaFindings(const DfaSummary &summary,
                       const std::string &design_name);

} // namespace ucx

#endif // UCX_LINT_DFA_RULES_HH
