/**
 * @file
 * ucx::lint — pre-fit dataset rule family ("fit.*").
 *
 * These checks run on the regression input the NLME fitter (paper
 * Section 3) is about to see, before any optimizer iteration:
 *
 *  - fit.nonfinite: a metric value or effort is NaN/Inf (Error —
 *    the likelihood is undefined);
 *  - fit.empty: no usable rows or no covariate columns (Error);
 *  - fit.zero-variance: a regressor column constant across all
 *    components (Warning — the weight is unidentifiable);
 *  - fit.collinear: two regressor columns nearly collinear by
 *    absolute Pearson correlation (Warning, Error above a stricter
 *    threshold);
 *  - fit.small-group: a team with too few components to support its
 *    own productivity random effect rho_i (Warning for singletons,
 *    Note at the configurable soft floor).
 */

#ifndef UCX_LINT_DATASET_RULES_HH
#define UCX_LINT_DATASET_RULES_HH

#include <string>
#include <vector>

#include "core/dataset.hh"
#include "core/metric.hh"
#include "lint/diagnostic.hh"

namespace ucx
{

/** Tunable thresholds for the fit.* rules. */
struct FitLintOptions
{
    /** |Pearson r| at or above which fit.collinear warns. */
    double warnCorrelation = 0.999;
    /** |Pearson r| at or above which fit.collinear is an Error. */
    double errorCorrelation = 1.0 - 1e-9;
    /** Group sizes strictly below this get a fit.small-group Note;
     *  singleton groups always get a Warning. */
    size_t softMinGroup = 3;
};

/**
 * Run every "fit.*" rule over the regression input a (dataset,
 * metric subset, zero policy) triple would produce.
 *
 * The checks observe the same usable-component view the fitter
 * does: rows removed or clamped by the ZeroPolicy are judged after
 * that treatment, so a column that is constant only because of
 * clamping is still reported.
 *
 * @param dataset      Calibration dataset.
 * @param metrics      Metric subset used as covariates.
 * @param policy       Treatment of all-zero rows (as for the fit).
 * @param dataset_name Name used in diagnostics.
 * @param options      Rule thresholds.
 * @return The findings (unsorted).
 */
LintReport lintFitInputs(const Dataset &dataset,
                         const std::vector<Metric> &metrics,
                         ZeroPolicy policy,
                         const std::string &dataset_name,
                         const FitLintOptions &options = {});

} // namespace ucx

#endif // UCX_LINT_DATASET_RULES_HH
