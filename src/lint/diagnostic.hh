/**
 * @file
 * ucx::lint — diagnostic model and rule catalog.
 *
 * A LintDiagnostic is one finding: a rule id, a severity, a location
 * (design, object within the design, source line), a message, and a
 * fix hint. A LintReport is an ordered collection of findings with
 * canonical sorting (so reports are byte-identical at any thread
 * count), severity counting, and text/JSON export mirroring the obs
 * snapshot schema ("ucx.lint.v1" next to "ucx.obs.v1").
 *
 * Rules live in a static catalog (lintRuleCatalog()): three families,
 * matching the paper's input requirements —
 *  - "hdl"  (§4.3 substrate): well-formed HDL and netlists;
 *  - "acct" (§2.2): disjoint partitions, count-once, minimal
 *    parameters;
 *  - "fit"  (§3): regression inputs the NLME fit will not silently
 *    degrade on.
 */

#ifndef UCX_LINT_DIAGNOSTIC_HH
#define UCX_LINT_DIAGNOSTIC_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace ucx
{

/** Severity of one lint finding. */
enum class LintSeverity
{
    Note,    ///< Informational; never fails a run.
    Warning, ///< Suspicious; fails the CLI unless suppressed.
    Error,   ///< Malformed input; fails measurement/fit early.
};

/** @return "note", "warning", or "error". */
const char *lintSeverityName(LintSeverity severity);

/**
 * Parse a severity name (case-insensitive).
 *
 * @param name "note", "warning"/"warn", or "error".
 * @return The severity; throws UcxError for unknown names.
 */
LintSeverity lintSeverityFromName(const std::string &name);

/** Catalog entry describing one lint rule. */
struct LintRuleInfo
{
    std::string id;        ///< Rule id, e.g. "hdl.comb-loop".
    std::string family;    ///< "hdl", "acct", or "fit".
    LintSeverity severity; ///< Default severity of findings.
    std::string summary;   ///< One-line description.
};

/** @return Every rule, sorted by id. */
const std::vector<LintRuleInfo> &lintRuleCatalog();

/**
 * Look a rule up by id.
 *
 * @param id Rule id such as "fit.collinear".
 * @return The catalog entry; throws UcxError for unknown ids.
 */
const LintRuleInfo &lintRule(const std::string &id);

/** One lint finding. */
struct LintDiagnostic
{
    std::string rule;      ///< Catalog rule id.
    LintSeverity severity = LintSeverity::Warning;
    std::string design;    ///< Design/component/dataset name ("" n/a).
    std::string object;    ///< Module.signal, team, metric pair, ...
    int line = 0;          ///< Source line (0 when not applicable).
    std::string message;   ///< What is wrong.
    std::string hint;      ///< How to fix it.

    /**
     * @return The canonical suppression key "rule design object" —
     *         the triple a suppression-file entry matches against.
     */
    std::string key() const;

    /** @return One-line rendering used by text export and errors. */
    std::string format() const;
};

/** An ordered, sortable collection of findings. */
class LintReport
{
  public:
    /**
     * Append a finding built from the catalog defaults.
     *
     * @param rule    Catalog rule id (must exist).
     * @param design  Design/component/dataset name.
     * @param object  Object within the design.
     * @param message What is wrong.
     * @param line    Source line, 0 when unknown.
     * @return The appended diagnostic (for tweaks).
     */
    LintDiagnostic &add(const std::string &rule,
                        const std::string &design,
                        const std::string &object,
                        const std::string &message, int line = 0);

    /** Append an explicit diagnostic. */
    void add(LintDiagnostic diagnostic);

    /** Append every finding of another report. */
    void merge(const LintReport &other);

    /** @return All findings in current order. */
    const std::vector<LintDiagnostic> &diagnostics() const
    {
        return diagnostics_;
    }

    /** @return The number of findings. */
    size_t size() const { return diagnostics_.size(); }

    /** @return True when there are no findings. */
    bool empty() const { return diagnostics_.empty(); }

    /**
     * Sort findings canonically (severity desc, rule, design,
     * object, line, message) and drop exact duplicates. Reports
     * assembled from parallel per-design runs become byte-identical
     * to a serial run after this.
     */
    void sortCanonical();

    /**
     * Keep only findings satisfying a predicate.
     *
     * @param keep Predicate; false drops the finding.
     * @return The number of findings removed.
     */
    size_t filter(
        const std::function<bool(const LintDiagnostic &)> &keep);

    /**
     * @param at_least Minimum severity.
     * @return Number of findings at or above that severity.
     */
    size_t count(LintSeverity at_least) const;

    /** @return True when any Error-severity finding is present. */
    bool hasError() const
    {
        return count(LintSeverity::Error) > 0;
    }

    /**
     * @param at_least Minimum severity.
     * @return The first finding at or above it in current order, or
     *         null when none.
     */
    const LintDiagnostic *firstAtLeast(LintSeverity at_least) const;

    /**
     * @return Human-readable listing, one finding per line, followed
     *         by a severity summary line; "" for an empty report.
     */
    std::string text() const;

    /**
     * @return JSON export:
     *
     *     {
     *       "schema": "ucx.lint.v1",
     *       "counts": { "error": n, "warning": n, "note": n },
     *       "findings": [ { "rule", "severity", "design",
     *                       "object", "line", "message",
     *                       "hint" }, ... ]
     *     }
     */
    std::string json() const;

  private:
    std::vector<LintDiagnostic> diagnostics_;
};

/**
 * Export a finished report to ucx::obs: bumps one
 * "lint.rule.<id>" counter per finding and sets the
 * "lint.findings" gauge to the report size.
 *
 * @param report A finished (post-suppression) report.
 */
void recordLintObs(const LintReport &report);

} // namespace ucx

#endif // UCX_LINT_DIAGNOSTIC_HH
