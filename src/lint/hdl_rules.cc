#include "lint/hdl_rules.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "dfa/liveness.hh"
#include "hdl/const_eval.hh"
#include "util/error.hh"

namespace ucx
{

namespace
{

// ---------------------------------------------------------------
// Width inference
// ---------------------------------------------------------------

/** Declared widths of the signals of one module (-1 = unknown). */
struct DeclWidths
{
    std::map<std::string, int> net;    ///< Nets and ports.
    std::map<std::string, int> memory; ///< Memory word widths.
};

/** Evaluate a range declaration to a width; -1 when not constant. */
int
rangeWidth(const Expr *msb, const Expr *lsb, const ConstEnv &env)
{
    if (!msb)
        return 1;
    try {
        int64_t hi = evalConst(*msb, env);
        int64_t lo = lsb ? evalConst(*lsb, env) : 0;
        if (hi < lo)
            return -1;
        return static_cast<int>(hi - lo + 1);
    } catch (const UcxError &) {
        return -1;
    }
}

/**
 * Base identifier of an Ident/Index/Range lvalue chain ("" when
 * the base is not a plain identifier). The parser stores an index's
 * base in Expr::a (possibly another Index for memory-word-then-bit
 * chains); only Ident and Range carry the name directly.
 */
const std::string &
baseName(const Expr &e)
{
    static const std::string empty;
    const Expr *p = &e;
    while (p->kind == ExprKind::Index && p->a)
        p = p->a.get();
    if (p->kind == ExprKind::Ident || p->kind == ExprKind::Range)
        return p->name;
    return empty;
}

/**
 * Width of an expression in read position, following the
 * self-determined sizing rules the elaborator applies; -1 unknown.
 */
int
exprWidth(const Expr &e, const ConstEnv &env, const DeclWidths &w)
{
    switch (e.kind) {
    case ExprKind::Number:
        return e.literalWidth; // -1 for unsized literals
    case ExprKind::Ident: {
        auto it = w.net.find(e.name);
        if (it != w.net.end())
            return it->second;
        return -1; // parameter, genvar, or undeclared
    }
    case ExprKind::Index: {
        auto mit = w.memory.find(baseName(e));
        if (mit != w.memory.end())
            return mit->second; // memory word select
        return 1;               // bit select
    }
    case ExprKind::Range: {
        try {
            int64_t hi = evalConst(*e.a, env);
            int64_t lo = evalConst(*e.b, env);
            if (hi < lo)
                return -1;
            return static_cast<int>(hi - lo + 1);
        } catch (const UcxError &) {
            return -1;
        }
    }
    case ExprKind::Unary:
        switch (e.unOp) {
        case UnOp::Not:
        case UnOp::RedAnd:
        case UnOp::RedOr:
        case UnOp::RedXor:
            return 1;
        default:
            return exprWidth(*e.a, env, w);
        }
    case ExprKind::Binary:
        switch (e.binOp) {
        case BinOp::LogAnd:
        case BinOp::LogOr:
        case BinOp::Eq:
        case BinOp::Ne:
        case BinOp::Lt:
        case BinOp::Le:
        case BinOp::Gt:
        case BinOp::Ge:
            return 1;
        case BinOp::Shl:
        case BinOp::Shr:
            return exprWidth(*e.a, env, w);
        default: {
            int wa = exprWidth(*e.a, env, w);
            int wb = exprWidth(*e.b, env, w);
            if (wa < 0 || wb < 0)
                return -1;
            return std::max(wa, wb);
        }
        }
    case ExprKind::Ternary: {
        int wb = exprWidth(*e.b, env, w);
        int wc = exprWidth(*e.c, env, w);
        if (wb < 0 || wc < 0)
            return -1;
        return std::max(wb, wc);
    }
    case ExprKind::Concat: {
        int total = 0;
        for (const ExprPtr &part : e.parts) {
            int wp = exprWidth(*part, env, w);
            if (wp < 0)
                return -1;
            total += wp;
        }
        return total;
    }
    case ExprKind::Repl: {
        try {
            int64_t n = evalConst(*e.a, env);
            int wb = exprWidth(*e.b, env, w);
            if (n < 0 || wb < 0)
                return -1;
            return static_cast<int>(n) * wb;
        } catch (const UcxError &) {
            return -1;
        }
    }
    }
    return -1;
}

/** Width of an lvalue expression; -1 unknown. */
int
lvalueWidth(const Expr &e, const ConstEnv &env, const DeclWidths &w)
{
    switch (e.kind) {
    case ExprKind::Ident: {
        auto it = w.net.find(e.name);
        return it != w.net.end() ? it->second : -1;
    }
    case ExprKind::Index: {
        auto mit = w.memory.find(baseName(e));
        if (mit != w.memory.end())
            return mit->second;
        return 1;
    }
    case ExprKind::Range:
        return exprWidth(e, env, w);
    case ExprKind::Concat: {
        int total = 0;
        for (const ExprPtr &part : e.parts) {
            int wp = lvalueWidth(*part, env, w);
            if (wp < 0)
                return -1;
            total += wp;
        }
        return total;
    }
    default:
        return -1;
    }
}

// ---------------------------------------------------------------
// Per-module scan
// ---------------------------------------------------------------

/** How a signal is driven by one source. */
enum class DriveShape
{
    Whole, ///< The full vector, e.g. "assign y = ...".
    Field, ///< A bit/part select or a concat member.
};

/** One declared signal of a module. */
struct SigDecl
{
    int line = 0;
    bool isReg = false;
    bool isMemory = false;
    bool isInput = false;
    bool isOutput = false;
};

/** Accumulated usage facts of one module. */
struct ModuleScan
{
    ConstEnv env; ///< Parameter and localparam bindings (defaults).
    DeclWidths widths;
    std::map<std::string, SigDecl> decls;
    std::set<std::string> read;
    /** Signal -> drive shape of each independent driving source. */
    std::map<std::string, std::vector<DriveShape>> drivers;
    /** Signal -> whether any driver is a continuous/instance one. */
    std::set<std::string> contDriven;
    std::set<std::string> loopVars; ///< Procedural/genvar induction.
};

/** Record every identifier read inside an expression. */
void
collectReads(const Expr &e, ModuleScan &scan)
{
    switch (e.kind) {
    case ExprKind::Number:
        return;
    case ExprKind::Ident:
        scan.read.insert(e.name);
        return;
    case ExprKind::Range:
        scan.read.insert(e.name);
        break;
    case ExprKind::Index:
        // Base name arrives via the recursion into e.a (an Ident
        // or nested Index); e.name is empty here.
        break;
    default:
        break;
    }
    if (e.a)
        collectReads(*e.a, scan);
    if (e.b)
        collectReads(*e.b, scan);
    if (e.c)
        collectReads(*e.c, scan);
    for (const ExprPtr &part : e.parts)
        collectReads(*part, scan);
}

/**
 * Record the base signals an lvalue drives into @p targets (shape
 * per base), and the reads its selects perform.
 */
void
collectLvalue(const Expr &e, ModuleScan &scan,
              std::map<std::string, DriveShape> &targets)
{
    switch (e.kind) {
    case ExprKind::Ident:
        targets.emplace(e.name, DriveShape::Whole);
        return;
    case ExprKind::Index: {
        const std::string &base = baseName(e);
        if (!base.empty())
            targets.emplace(base, DriveShape::Field);
        // Index expressions are reads; the base itself is not.
        for (const Expr *p = &e;
             p->kind == ExprKind::Index && p->a; p = p->a.get())
            if (p->b)
                collectReads(*p->b, scan);
        return;
    }
    case ExprKind::Range:
        targets.emplace(e.name, DriveShape::Field);
        if (e.a)
            collectReads(*e.a, scan);
        if (e.b)
            collectReads(*e.b, scan);
        return;
    case ExprKind::Concat:
        for (const ExprPtr &part : e.parts)
            collectLvalue(*part, scan, targets);
        return;
    default:
        // Not a valid lvalue; elaboration reports it.
        collectReads(e, scan);
        return;
    }
}

/** Does @p s assign @p name on every execution path? */
bool
assignsOnAllPaths(const Stmt &s, const std::string &name)
{
    switch (s.kind) {
    case StmtKind::Block:
        for (const StmtPtr &child : s.stmts)
            if (assignsOnAllPaths(*child, name))
                return true;
        return false;
    case StmtKind::Assign: {
        // Any assignment (whole or field) counts as covering: the
        // latch rule is per-signal, not per-bit.
        std::map<std::string, DriveShape> targets;
        ModuleScan scratch;
        collectLvalue(*s.lhs, scratch, targets);
        return targets.find(name) != targets.end();
    }
    case StmtKind::If:
        return s.thenStmt && s.elseStmt &&
               assignsOnAllPaths(*s.thenStmt, name) &&
               assignsOnAllPaths(*s.elseStmt, name);
    case StmtKind::Case: {
        bool has_default = false;
        for (const CaseItem &item : s.items) {
            if (!item.body || !assignsOnAllPaths(*item.body, name))
                return false;
            if (item.labels.empty())
                has_default = true;
        }
        return has_default;
    }
    case StmtKind::For:
        // Loop bounds are compile-time constants in µHDL and a
        // zero-trip loop is already degenerate; treat the body as
        // executing at least once.
        return s.thenStmt && assignsOnAllPaths(*s.thenStmt, name);
    }
    return false;
}

/** Scan a statement tree: reads, writes, constant conditions. */
void
scanStmt(const Stmt &s, ModuleScan &scan, const std::string &module,
         LintReport &out, const std::string &design_name,
         std::map<std::string, DriveShape> &targets)
{
    switch (s.kind) {
    case StmtKind::Block:
        for (const StmtPtr &child : s.stmts)
            scanStmt(*child, scan, module, out, design_name,
                     targets);
        return;
    case StmtKind::Assign:
        collectLvalue(*s.lhs, scan, targets);
        collectReads(*s.rhs, scan);
        return;
    case StmtKind::If: {
        collectReads(*s.cond, scan);
        if (isConst(*s.cond, ConstEnv{})) {
            out.add("hdl.const-condition", design_name,
                    module, "if condition is always " +
                        std::to_string(evalConst(*s.cond, {})),
                    s.line)
                .hint = "remove the dead branch";
        } else if (isConst(*s.cond, scan.env)) {
            LintDiagnostic &d = out.add(
                "hdl.const-condition", design_name, module,
                "if condition is constant under default "
                "parameters",
                s.line);
            d.severity = LintSeverity::Note;
            d.hint = "intended? the branch is dead at defaults";
        }
        if (s.thenStmt)
            scanStmt(*s.thenStmt, scan, module, out, design_name,
                     targets);
        if (s.elseStmt)
            scanStmt(*s.elseStmt, scan, module, out, design_name,
                     targets);
        return;
    }
    case StmtKind::Case: {
        collectReads(*s.subject, scan);
        if (isConst(*s.subject, ConstEnv{})) {
            out.add("hdl.const-condition", design_name, module,
                    "case subject is compile-time constant",
                    s.line)
                .hint = "only one arm can ever be taken";
        }
        for (const CaseItem &item : s.items) {
            for (const ExprPtr &label : item.labels)
                collectReads(*label, scan);
            if (item.body)
                scanStmt(*item.body, scan, module, out, design_name,
                         targets);
        }
        return;
    }
    case StmtKind::For:
        scan.loopVars.insert(s.loopVar);
        if (s.loopInit)
            collectReads(*s.loopInit, scan);
        if (s.cond)
            collectReads(*s.cond, scan);
        if (s.loopStep)
            collectReads(*s.loopStep, scan);
        if (s.thenStmt)
            scanStmt(*s.thenStmt, scan, module, out, design_name,
                     targets);
        return;
    }
}

/** Walk ternary conditions of an expression tree. */
void
checkTernaryConds(const Expr &e, const ModuleScan &scan,
                  const std::string &module, LintReport &out,
                  const std::string &design_name)
{
    if (e.kind == ExprKind::Ternary && e.a) {
        if (isConst(*e.a, ConstEnv{})) {
            out.add("hdl.const-condition", design_name, module,
                    "ternary condition is always " +
                        std::to_string(evalConst(*e.a, {})),
                    e.line)
                .hint = "fold the select away";
        } else if (isConst(*e.a, scan.env)) {
            LintDiagnostic &d = out.add(
                "hdl.const-condition", design_name, module,
                "ternary condition is constant under default "
                "parameters",
                e.line);
            d.severity = LintSeverity::Note;
            d.hint = "intended? one arm is dead at defaults";
        }
    }
    if (e.a)
        checkTernaryConds(*e.a, scan, module, out, design_name);
    if (e.b)
        checkTernaryConds(*e.b, scan, module, out, design_name);
    if (e.c)
        checkTernaryConds(*e.c, scan, module, out, design_name);
    for (const ExprPtr &part : e.parts)
        checkTernaryConds(*part, scan, module, out, design_name);
}

/** Every expression reachable from an item, for ternary checks. */
void
forEachItemExpr(const Item &item,
                const std::function<void(const Expr &)> &fn)
{
    std::function<void(const Stmt &)> walkStmt =
        [&](const Stmt &s) {
            if (s.cond)
                fn(*s.cond);
            if (s.subject)
                fn(*s.subject);
            if (s.lhs)
                fn(*s.lhs);
            if (s.rhs)
                fn(*s.rhs);
            for (const CaseItem &ci : s.items)
                for (const ExprPtr &label : ci.labels)
                    fn(*label);
            for (const StmtPtr &child : s.stmts)
                walkStmt(*child);
            if (s.thenStmt)
                walkStmt(*s.thenStmt);
            if (s.elseStmt)
                walkStmt(*s.elseStmt);
            for (const CaseItem &ci : s.items)
                if (ci.body)
                    walkStmt(*ci.body);
        };
    if (item.lhs)
        fn(*item.lhs);
    if (item.rhs)
        fn(*item.rhs);
    if (item.body)
        walkStmt(*item.body);
    for (const Connection &conn : item.connections)
        if (conn.expr)
            fn(*conn.expr);
    for (const Connection &conn : item.paramOverrides)
        if (conn.expr)
            fn(*conn.expr);
}

// Forward declaration: items recurse through generate bodies.
void scanItems(const std::vector<ItemPtr> &items, const Design &design,
               const std::string &module, ModuleScan &scan,
               LintReport &out, const std::string &design_name);

/** Declared widths of a child module's ports under a binding. */
std::map<std::string, std::pair<PortDir, int>>
childPortWidths(const Module &child, const ConstEnv &child_env)
{
    std::map<std::string, std::pair<PortDir, int>> out;
    for (const Port &port : child.ports) {
        out[port.name] = {port.dir,
                          rangeWidth(port.msb.get(), port.lsb.get(),
                                     child_env)};
    }
    return out;
}

/** Scan one instance item: connection reads/writes, width checks. */
void
scanInstance(const Item &item, const Design &design,
             const std::string &module, ModuleScan &scan,
             LintReport &out, const std::string &design_name)
{
    const Module *child = design.hasModule(item.moduleName)
                              ? &design.module(item.moduleName)
                              : nullptr;
    for (const Connection &conn : item.paramOverrides)
        if (conn.expr)
            collectReads(*conn.expr, scan);

    if (!child) {
        // Unknown module: elaboration will fail; treat connection
        // expressions as reads so they do not look dangling.
        for (const Connection &conn : item.connections)
            if (conn.expr)
                collectReads(*conn.expr, scan);
        return;
    }

    // Bind the child's parameters: defaults, then overrides that
    // evaluate under the parent's constants.
    ConstEnv child_env;
    for (const Param &p : child->params) {
        try {
            child_env[p.name] = evalConst(*p.value, child_env);
        } catch (const UcxError &) {
        }
    }
    for (const Connection &ov : item.paramOverrides) {
        if (!ov.expr)
            continue;
        try {
            child_env[ov.port] = evalConst(*ov.expr, scan.env);
        } catch (const UcxError &) {
            child_env.erase(ov.port);
        }
    }
    auto ports = childPortWidths(*child, child_env);

    for (const Connection &conn : item.connections) {
        auto pit = ports.find(conn.port);
        if (pit == ports.end()) {
            if (conn.expr)
                collectReads(*conn.expr, scan);
            continue; // unknown port: elaboration reports it
        }
        PortDir dir = pit->second.first;
        int port_width = pit->second.second;
        if (!conn.expr)
            continue;
        if (dir == PortDir::Input) {
            collectReads(*conn.expr, scan);
            int expr_width =
                exprWidth(*conn.expr, scan.env, scan.widths);
            if (port_width > 0 && expr_width > 0 &&
                port_width != expr_width) {
                out.add("hdl.width-mismatch", design_name, module,
                        "input port '" + conn.port +
                            "' of instance '" + item.instName +
                            "' is " + std::to_string(port_width) +
                            " bits but is bound to " +
                            std::to_string(expr_width) + " bits",
                        item.line)
                    .hint = "resize the bound expression";
            }
        } else {
            std::map<std::string, DriveShape> targets;
            collectLvalue(*conn.expr, scan, targets);
            for (const auto &[name, shape] : targets) {
                scan.drivers[name].push_back(shape);
                scan.contDriven.insert(name);
            }
            int expr_width =
                lvalueWidth(*conn.expr, scan.env, scan.widths);
            if (port_width > 0 && expr_width > 0 &&
                port_width != expr_width) {
                out.add("hdl.width-mismatch", design_name, module,
                        "output port '" + conn.port +
                            "' of instance '" + item.instName +
                            "' is " + std::to_string(port_width) +
                            " bits but drives " +
                            std::to_string(expr_width) + " bits",
                        item.line)
                    .hint = "resize the connected signal";
            }
        }
    }
}

void
scanItems(const std::vector<ItemPtr> &items, const Design &design,
          const std::string &module, ModuleScan &scan,
          LintReport &out, const std::string &design_name)
{
    for (const ItemPtr &ip : items) {
        const Item &item = *ip;
        switch (item.kind) {
        case ItemKind::Net: {
            bool is_memory = item.arrayLeft != nullptr;
            int width = rangeWidth(item.msb.get(), item.lsb.get(),
                                   scan.env);
            for (const std::string &name : item.names) {
                SigDecl d;
                d.line = item.line;
                d.isReg = item.isReg;
                d.isMemory = is_memory;
                scan.decls.emplace(name, d);
                if (is_memory)
                    scan.widths.memory[name] = width;
                else
                    scan.widths.net[name] = width;
            }
            if (item.arrayLeft)
                collectReads(*item.arrayLeft, scan);
            if (item.arrayRight)
                collectReads(*item.arrayRight, scan);
            break;
        }
        case ItemKind::Localparam:
            try {
                scan.env[item.param.name] =
                    evalConst(*item.param.value, scan.env);
            } catch (const UcxError &) {
            }
            break;
        case ItemKind::ContAssign: {
            std::map<std::string, DriveShape> targets;
            collectLvalue(*item.lhs, scan, targets);
            collectReads(*item.rhs, scan);
            for (const auto &[name, shape] : targets) {
                scan.drivers[name].push_back(shape);
                scan.contDriven.insert(name);
            }
            int lw = lvalueWidth(*item.lhs, scan.env, scan.widths);
            int rw = exprWidth(*item.rhs, scan.env, scan.widths);
            if (lw > 0 && rw > 0 && lw != rw) {
                LintDiagnostic &d = out.add(
                    "hdl.width-mismatch", design_name, module,
                    "assignment of a " + std::to_string(rw) +
                        "-bit expression to a " +
                        std::to_string(lw) + "-bit target" +
                        (rw > lw ? " truncates" : " zero-extends"),
                    item.line);
                if (rw < lw)
                    d.severity = LintSeverity::Note;
                d.hint = "make both sides the same width";
            }
            break;
        }
        case ItemKind::Always: {
            for (const EdgeEvent &edge : item.edges)
                scan.read.insert(edge.signal);
            std::map<std::string, DriveShape> targets;
            if (item.body)
                scanStmt(*item.body, scan, module, out,
                         design_name, targets);
            for (const auto &[name, shape] : targets)
                scan.drivers[name].push_back(shape);
            // Latch inference: combinational block with a target
            // not assigned on every path.
            if (!item.sequential && item.body) {
                for (const auto &[name, shape] : targets) {
                    (void)shape;
                    auto dit = scan.decls.find(name);
                    if (dit != scan.decls.end() &&
                        dit->second.isMemory)
                        continue;
                    if (!assignsOnAllPaths(*item.body, name)) {
                        out.add("hdl.inferred-latch", design_name,
                                module,
                                "'" + name +
                                    "' is not assigned on every "
                                    "path of a combinational "
                                    "always block",
                                item.line)
                            .hint = "add a default assignment "
                                    "before the branches";
                    }
                }
            }
            break;
        }
        case ItemKind::Instance:
            scanInstance(item, design, module, scan, out,
                         design_name);
            break;
        case ItemKind::GenFor:
            scan.loopVars.insert(item.genvar);
            if (item.genInit)
                collectReads(*item.genInit, scan);
            if (item.genCond)
                collectReads(*item.genCond, scan);
            if (item.genStep)
                collectReads(*item.genStep, scan);
            scanItems(item.genBody, design, module, scan, out,
                      design_name);
            break;
        case ItemKind::GenIf:
            if (item.genIfCond)
                collectReads(*item.genIfCond, scan);
            scanItems(item.genThen, design, module, scan, out,
                      design_name);
            scanItems(item.genElse, design, module, scan, out,
                      design_name);
            break;
        case ItemKind::Genvar:
            for (const std::string &name : item.genvarNames)
                scan.loopVars.insert(name);
            break;
        }
        forEachItemExpr(item, [&](const Expr &e) {
            checkTernaryConds(e, scan, module, out, design_name);
        });
    }
}

/** Run every AST rule over one module. */
void
lintModule(const Module &mod, const Design &design,
           const std::string &design_name, LintReport &out)
{
    ModuleScan scan;

    // Parameter defaults, in declaration order.
    for (const Param &p : mod.params) {
        try {
            scan.env[p.name] = evalConst(*p.value, scan.env);
        } catch (const UcxError &) {
        }
    }

    // Port declarations.
    for (const Port &port : mod.ports) {
        SigDecl d;
        d.line = port.line;
        d.isReg = port.isReg;
        d.isInput = port.dir == PortDir::Input;
        d.isOutput = port.dir != PortDir::Input;
        scan.decls.emplace(port.name, d);
        scan.widths.net[port.name] = rangeWidth(
            port.msb.get(), port.lsb.get(), scan.env);
        if (port.msb)
            collectReads(*port.msb, scan);
        if (port.lsb)
            collectReads(*port.lsb, scan);
    }
    // Port range expressions read only parameters; undo the reads.
    scan.read.clear();

    scanItems(mod.items, design, mod.name, scan, out, design_name);

    // Per-signal drive rules.
    for (const auto &[name, decl] : scan.decls) {
        const std::vector<DriveShape> *drv = nullptr;
        auto dit = scan.drivers.find(name);
        if (dit != scan.drivers.end())
            drv = &dit->second;
        size_t whole = 0;
        size_t field = 0;
        if (drv) {
            for (DriveShape shape : *drv)
                (shape == DriveShape::Whole ? whole : field)++;
        }

        // hdl.multi-driven: two whole drivers, or a whole driver
        // plus an independent field driver, or a register that is
        // also continuously driven.
        if (whole >= 2 || (whole >= 1 && field >= 1)) {
            out.add("hdl.multi-driven", design_name,
                    mod.name + "." + name,
                    "'" + name + "' is driven by " +
                        std::to_string(whole + field) +
                        " independent sources",
                    decl.line)
                .hint = "keep exactly one driver per signal";
        } else if (decl.isReg && !decl.isMemory && whole + field > 0 &&
                   scan.contDriven.count(name) > 0) {
            out.add("hdl.multi-driven", design_name,
                    mod.name + "." + name,
                    "register '" + name +
                        "' is driven by a continuous assignment "
                        "or instance output",
                    decl.line)
                .hint = "drive registers from always blocks only";
        }

        // hdl.undriven: nothing drives a non-input signal.
        if (!decl.isInput && !decl.isMemory && whole + field == 0) {
            out.add("hdl.undriven", design_name,
                    mod.name + "." + name,
                    std::string(decl.isReg ? "register '"
                                           : "wire '") +
                        name + "' is never driven",
                    decl.line)
                .hint = "drive it or delete it";
        }

        // hdl.unused: nothing reads a non-output signal.
        if (!decl.isOutput && scan.read.count(name) == 0 &&
            scan.loopVars.count(name) == 0) {
            out.add("hdl.unused", design_name,
                    mod.name + "." + name,
                    std::string(decl.isMemory ? "memory '"
                                              : "signal '") +
                        name + "' is never read",
                    decl.line)
                .hint = "use it or delete it";
        }
    }
}

} // namespace

LintReport
lintModules(const Design &design, const std::string &design_name)
{
    LintReport out;
    for (const std::string &name : design.moduleNames())
        lintModule(design.module(name), design, design_name, out);
    return out;
}

namespace
{

/**
 * Bit-level combinational-loop detector mirroring the resolution
 * order of gate lowering (lower.cc): wiring ops (Sig, Slice,
 * Concat) resolve one bit at a time, so a word-level
 * self-reference like "chain[(g+1)*W-1:g*W] = f(chain[g*W-1:...])"
 * is legal as long as no single *bit* depends on itself; a logic
 * op materializes its whole operand subtree, so it depends on
 * every bit of every signal underneath it.
 */
class CombLoopScan
{
  public:
    CombLoopScan(const RtlDesign &rtl, const std::string &design_name,
                 LintReport &out)
        : rtl_(rtl), design_name_(design_name), out_(&out)
    {
    }

    void
    run()
    {
        for (SigId sig = 0; sig < rtl_.signals.size(); ++sig)
            visitSigBits(sig);
    }

  private:
    using BitKey = std::pair<SigId, int>;

    void
    visitSigBits(SigId sig)
    {
        for (int b = 0; b < rtl_.signals[sig].width; ++b)
            visitSigBit(sig, b);
    }

    void
    visitSigBit(SigId sig, int b)
    {
        const RtlSignal &s = rtl_.signals[sig];
        // Inputs and register q outputs are sequential sources; the
        // register next-state expression is walked from run() via
        // its own driver, where a purely combinational cycle would
        // surface through the wires it reads.
        if (s.kind == SigKind::Input || s.kind == SigKind::Reg)
            return;
        BitKey key{sig, b};
        if (done_.count(key))
            return;
        if (!inProgress_.insert(key).second) {
            reportCycle(sig);
            return;
        }
        bitStack_.push_back(key);
        if (s.driver != invalidNode)
            walkWiringBit(s.driver, b);
        bitStack_.pop_back();
        inProgress_.erase(key);
        done_.insert(key);
    }

    /** Bit @p b of a node, resolving wiring ops bit-precisely. */
    void
    walkWiringBit(NodeId id, int b)
    {
        const RtlNode &n = rtl_.nodes[id];
        switch (n.op) {
        case RtlOp::Const:
            return;
        case RtlOp::Sig:
            visitSigBit(n.sig, b);
            return;
        case RtlOp::Slice:
            walkWiringBit(n.args[0], n.lo + b);
            return;
        case RtlOp::Concat: {
            // Args are most-significant first; walk from the last
            // (least significant) accumulating widths.
            int offset = b;
            for (auto it = n.args.rbegin(); it != n.args.rend();
                 ++it) {
                int w = rtl_.nodes[*it].width;
                if (offset < w) {
                    walkWiringBit(*it, offset);
                    return;
                }
                offset -= w;
            }
            return;
        }
        default:
            // A real logic node: lowering materializes it fully, so
            // this bit depends on the whole subtree.
            walkLogic(id);
            return;
        }
    }

    /** Every signal bit a fully-lowered node subtree reads. */
    void
    walkLogic(NodeId id)
    {
        if (!logicSeen_.insert(id).second)
            return;
        const RtlNode &n = rtl_.nodes[id];
        for (NodeId arg : n.args) {
            const RtlNode &a = rtl_.nodes[arg];
            switch (a.op) {
            case RtlOp::Const:
            case RtlOp::Sig:
            case RtlOp::Slice:
            case RtlOp::Concat:
                // Wiring operand: lowered one bit at a time.
                for (int b = 0; b < a.width; ++b)
                    walkWiringBit(arg, b);
                break;
            default:
                walkLogic(arg);
                break;
            }
        }
    }

    void
    reportCycle(SigId closing)
    {
        // Collect the distinct signals on the in-progress path from
        // the closing signal onward.
        std::vector<std::string> names;
        std::set<std::string> seen;
        auto it = std::find_if(bitStack_.begin(), bitStack_.end(),
                               [&](const BitKey &k) {
                                   return k.first == closing;
                               });
        for (; it != bitStack_.end(); ++it) {
            const std::string &name =
                rtl_.signals[it->first].name;
            if (seen.insert(name).second)
                names.push_back(name);
        }
        std::sort(names.begin(), names.end());
        std::string joined;
        for (const std::string &name : names)
            joined += (joined.empty() ? "" : " -> ") + name;
        std::string object = rtl_.signals[closing].name;
        if (!reported_.insert(object).second)
            return;
        out_->add("hdl.comb-loop", design_name_, object,
                  "combinational loop through: " + joined)
            .hint = "break the cycle with a register";
    }

    const RtlDesign &rtl_;
    std::string design_name_;
    LintReport *out_;
    std::set<BitKey> inProgress_;
    std::set<BitKey> done_;
    std::set<NodeId> logicSeen_;
    std::vector<BitKey> bitStack_;
    std::set<std::string> reported_;
};

} // namespace

LintReport
lintRtlStructure(const RtlDesign &rtl,
                 const std::string &design_name)
{
    LintReport out;
    CombLoopScan(rtl, design_name, out).run();
    return out;
}

LintReport
lintNetlistStructure(const Netlist &netlist,
                     const std::string &design_name)
{
    LintReport out;

    // The gate-level liveness analysis owns the traversal (shared
    // with the const-fold pass); this rule only words the finding.
    uint64_t dead =
        dfa::analyzeNetlistLiveness(netlist).deadCombGates;
    if (dead > 0) {
        out.add("hdl.dead-logic", design_name, "netlist",
                std::to_string(dead) +
                    " combinational gate(s) are unreachable from "
                    "every output, register, and memory pin")
            .hint = "dead logic inflates area/power metrics";
    }
    return out;
}

LintReport
lintElabWarnings(const std::vector<std::string> &warnings,
                 const std::string &design_name)
{
    LintReport out;
    auto quoted = [](const std::string &text, size_t which) {
        size_t pos = 0;
        for (size_t i = 0; i <= which; ++i) {
            size_t open = text.find('\'', pos);
            if (open == std::string::npos)
                return std::string();
            size_t close = text.find('\'', open + 1);
            if (close == std::string::npos)
                return std::string();
            if (i == which)
                return text.substr(open + 1, close - open - 1);
            pos = close + 1;
        }
        return std::string();
    };
    for (const std::string &w : warnings) {
        if (w.rfind("input port", 0) == 0) {
            std::string port = quoted(w, 0);
            std::string inst = quoted(w, 1);
            out.add("hdl.unconnected-input", design_name,
                    inst + "." + port, w)
                .hint = "connect the port or tie it explicitly";
        } else if (w.find("is undriven") != std::string::npos ||
                   w.find("never assigned") != std::string::npos ||
                   w.find("partially driven") !=
                       std::string::npos) {
            out.add("hdl.undriven", design_name, quoted(w, 0), w)
                .hint = "drive every bit of the signal";
        } else {
            out.add("hdl.elab-warning", design_name, "", w);
        }
    }
    return out;
}

} // namespace ucx
