#include "lint/dataset_rules.hh"

#include <cmath>
#include <cstdio>
#include <map>

#include "util/error.hh"

namespace ucx
{

namespace
{

/** Absolute Pearson correlation of two equal-length columns;
 *  returns -1 when either column has no variance. */
double
absCorrelation(const std::vector<double> &a,
               const std::vector<double> &b)
{
    size_t n = a.size();
    double mean_a = 0.0, mean_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
        mean_a += a[i];
        mean_b += b[i];
    }
    mean_a /= static_cast<double>(n);
    mean_b /= static_cast<double>(n);
    double sab = 0.0, saa = 0.0, sbb = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double da = a[i] - mean_a;
        double db = b[i] - mean_b;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if (saa <= 0.0 || sbb <= 0.0)
        return -1.0;
    return std::fabs(sab / std::sqrt(saa * sbb));
}

std::string
fmtCorr(double r)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", r);
    return buf;
}

} // namespace

LintReport
lintFitInputs(const Dataset &dataset,
              const std::vector<Metric> &metrics, ZeroPolicy policy,
              const std::string &dataset_name,
              const FitLintOptions &options)
{
    LintReport out;

    // Non-finite raw values make the likelihood undefined no matter
    // what the ZeroPolicy later does, so judge the raw dataset.
    for (const Component &c : dataset.components()) {
        if (!std::isfinite(c.effort)) {
            out.add("fit.nonfinite", dataset_name, c.fullName(),
                    "reported effort is not finite")
                .hint = "fix the reported value";
        }
        for (Metric m : metrics) {
            double v = c.metrics[static_cast<size_t>(m)];
            if (!std::isfinite(v)) {
                out.add("fit.nonfinite", dataset_name, c.fullName(),
                        "metric " + metricName(m) +
                            " is not finite")
                    .hint = "re-measure the component";
            }
        }
    }
    if (out.hasError())
        return out;

    if (metrics.empty()) {
        out.add("fit.empty", dataset_name, "",
                "no covariate columns selected")
            .hint = "pick at least one metric";
        return out;
    }

    std::vector<Component> usable;
    try {
        usable = dataset.usableComponents(metrics, policy);
    } catch (const UcxError &e) {
        out.add("fit.empty", dataset_name, "",
                std::string("regression input cannot be built: ") +
                    e.what())
            .hint = "use ZeroPolicy::ClampToOne or drop the "
                    "offending components";
        return out;
    }
    if (usable.empty()) {
        out.add("fit.empty", dataset_name, "",
                "no usable components after applying the zero "
                "policy")
            .hint = "the selected metrics are zero on every "
                    "component";
        return out;
    }

    // Columns as the fitter sees them (post zero-policy treatment).
    std::vector<std::vector<double>> columns(
        metrics.size(), std::vector<double>(usable.size()));
    for (size_t row = 0; row < usable.size(); ++row) {
        std::vector<double> values =
            selectMetrics(usable[row].metrics, metrics);
        for (size_t col = 0; col < metrics.size(); ++col)
            columns[col][row] = values[col];
    }

    for (size_t col = 0; col < metrics.size(); ++col) {
        bool constant = true;
        for (double v : columns[col])
            if (v != columns[col].front()) {
                constant = false;
                break;
            }
        if (constant && usable.size() > 1) {
            out.add("fit.zero-variance", dataset_name,
                    metricName(metrics[col]),
                    "regressor " + metricName(metrics[col]) +
                        " is constant (" +
                        std::to_string(columns[col].front()) +
                        ") across all " +
                        std::to_string(usable.size()) +
                        " components")
                .hint = "its weight is unidentifiable; drop the "
                        "metric from the subset";
        }
    }

    for (size_t i = 0; i < metrics.size(); ++i) {
        for (size_t j = i + 1; j < metrics.size(); ++j) {
            double r = absCorrelation(columns[i], columns[j]);
            if (r < options.warnCorrelation)
                continue;
            LintDiagnostic &d = out.add(
                "fit.collinear", dataset_name,
                metricName(metrics[i]) + "/" +
                    metricName(metrics[j]),
                "regressors " + metricName(metrics[i]) + " and " +
                    metricName(metrics[j]) +
                    " are nearly collinear (|r| = " + fmtCorr(r) +
                    ")");
            d.hint = "the weight split between them is "
                     "ill-conditioned";
            if (r >= options.errorCorrelation)
                d.severity = LintSeverity::Error;
        }
    }

    // Group sizes: the model estimates one productivity rho_i per
    // team; a singleton team's rho_i is confounded with its single
    // residual.
    std::map<std::string, size_t> group_sizes;
    for (const Component &c : usable)
        ++group_sizes[c.project];
    for (const auto &[project, n] : group_sizes) {
        if (n >= options.softMinGroup)
            continue;
        LintDiagnostic &d = out.add(
            "fit.small-group", dataset_name, project,
            "team '" + project + "' has " + std::to_string(n) +
                " usable component(s); its random effect rho_i "
                "rests on " +
                std::to_string(n) + " observation(s)");
        d.hint = "treat this team's productivity estimate with "
                 "caution";
        if (n > 1)
            d.severity = LintSeverity::Note;
    }

    return out;
}

} // namespace ucx
