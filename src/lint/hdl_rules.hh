/**
 * @file
 * ucx::lint — HDL/netlist rule family ("hdl.*").
 *
 * Two layers, matching where each defect is visible:
 *
 *  - AST rules (lintModules): per-module checks over the parsed
 *    source — undriven/unused/multiply-driven signals, width
 *    mismatches in assignments and port bindings, inferred latches,
 *    constant conditions / dead branches. These run without
 *    elaborating, so they also fire on modules a top never reaches.
 *
 *  - Structural rules (lintRtlStructure / lintNetlistStructure):
 *    checks over the elaborated word-level RTL and the lowered gate
 *    netlist — combinational loops (which would otherwise blow the
 *    stack in gate lowering) and dead logic. These run as "lint" /
 *    "lintnet" passes through the synthesis pass manager (lint.hh),
 *    so their artifacts memoize like any other pass artifact.
 */

#ifndef UCX_LINT_HDL_RULES_HH
#define UCX_LINT_HDL_RULES_HH

#include <string>

#include "hdl/design.hh"
#include "lint/diagnostic.hh"
#include "synth/netlist.hh"
#include "synth/rtl.hh"

namespace ucx
{

/**
 * Run every AST-level "hdl.*" rule over all modules of a design.
 *
 * @param design      Parsed design.
 * @param design_name Name used in diagnostics (registry key or top).
 * @return The findings (unsorted).
 */
LintReport lintModules(const Design &design,
                       const std::string &design_name);

/**
 * Run structural rules over elaborated word-level RTL: currently
 * combinational-loop detection (hdl.comb-loop, Error). Safe on RTL
 * that would crash gate lowering.
 *
 * @param rtl         Elaborated design.
 * @param design_name Name used in diagnostics.
 * @return The findings (unsorted).
 */
LintReport lintRtlStructure(const RtlDesign &rtl,
                            const std::string &design_name);

/**
 * Run structural rules over a lowered gate netlist: dead-logic
 * detection (hdl.dead-logic, Note) — combinational gates unreachable
 * from every output, register, or memory pin.
 *
 * @param netlist     Lowered netlist.
 * @param design_name Name used in diagnostics.
 * @return The findings (unsorted).
 */
LintReport lintNetlistStructure(const Netlist &netlist,
                                const std::string &design_name);

/**
 * Translate elaboration warnings (unconnected inputs, undriven or
 * partially driven wires, never-assigned registers) into diagnostics
 * under the matching rule ids.
 *
 * @param warnings    ElabResult::warnings.
 * @param design_name Name used in diagnostics.
 * @return The findings (unsorted).
 */
LintReport lintElabWarnings(const std::vector<std::string> &warnings,
                            const std::string &design_name);

} // namespace ucx

#endif // UCX_LINT_HDL_RULES_HH
