/**
 * @file
 * ucx::lint — facade and pass-manager wiring.
 *
 * lintHdlDesign() is the one-call entry: it runs every AST rule,
 * elaborates (downgrading elaboration failures to hdl.elab-error
 * findings instead of exceptions), translates elaboration warnings,
 * and then drives the structural rules through the synthesis pass
 * manager as real passes — "lint" over the elaborated RTL and
 * "lintnet" over the lowered netlist — so their reports memoize in
 * the ArtifactCache like any other pipeline artifact. The netlist
 * stage is skipped while Error findings (notably hdl.comb-loop,
 * which would not survive gate lowering) are present.
 */

#ifndef UCX_LINT_LINT_HH
#define UCX_LINT_LINT_HH

#include <string>

#include "cache/artifact_cache.hh"
#include "hdl/design.hh"
#include "lint/account_rules.hh"
#include "lint/dataset_rules.hh"
#include "lint/diagnostic.hh"
#include "lint/hdl_rules.hh"
#include "lint/suppress.hh"
#include "synth/pass.hh"

namespace ucx
{

/** @return The "lint" pass: RTL structural rules (hdl.comb-loop)
 *          into PipelineContext::lint. */
Pass lintPass(const std::string &design_name);

/** @return The "lintnet" pass: netlist structural rules
 *          (hdl.dead-logic) into PipelineContext::lintNet. Needs
 *          the "lower" artifact. */
Pass lintNetPass(const std::string &design_name);

/** Options of a full-design lint run. */
struct LintRunOptions
{
    /** Elaboration options (top parameters, black-boxing). */
    ElabOptions elab;
    /** Pass configuration (keyed into cached lint artifacts). */
    PassConfig config;
    /** Memo store; null reruns everything. */
    ArtifactCache *cache = nullptr;
    /**
     * Also lower to gates and run the netlist rules (hdl.dead-logic
     * notes). Skipped automatically when Error findings exist.
     */
    bool netlistRules = true;
    /**
     * Also run the dataflow analyses and render dfa.* findings
     * (constant signals, dead logic, read-before-write, CDC).
     * Runs with the netlist stage, so it obeys the same Error
     * gating and @p netlistRules switch.
     */
    bool dfaRules = true;
};

/**
 * Lint one design end to end: AST rules on every module,
 * elaboration of @p top (failures become hdl.elab-error findings),
 * elaboration-warning translation, and the structural passes.
 *
 * @param design      Parsed design.
 * @param top         Top module to elaborate.
 * @param design_name Name used in diagnostics.
 * @param options     Elaboration/cache/pass options.
 * @return The canonical (sorted, deduplicated) report.
 */
LintReport lintHdlDesign(const Design &design,
                         const std::string &top,
                         const std::string &design_name,
                         const LintRunOptions &options = {});

} // namespace ucx

#endif // UCX_LINT_LINT_HH
