#include "lint/dfa_rules.hh"

#include "synth/rtl.hh"

namespace ucx
{

LintReport
dfaFindings(const DfaSummary &summary,
            const std::string &design_name)
{
    LintReport report;

    for (const DfaSummary::ConstSignal &sig :
         summary.constSignals) {
        bool isOutput =
            sig.kind == static_cast<uint8_t>(SigKind::Output);
        std::string message =
            "settles to the constant " +
            std::to_string(sig.value) + " (" +
            std::to_string(sig.width) + "-bit) at the dataflow "
            "fixpoint";
        if (isOutput) {
            report
                .add("dfa.const-output", design_name, sig.name,
                     message)
                .hint = "a constant output usually means a "
                        "disabled feature or a wiring bug";
        } else {
            report
                .add("dfa.const-signal", design_name, sig.name,
                     message)
                .hint = "constant logic synthesizes away; "
                        "consider a localparam";
        }
    }

    for (const std::string &name : summary.constMuxSignals) {
        report
            .add("dfa.const-condition", design_name, name,
                 "driven by a mux whose select settles to one "
                 "constant; the other branch is dead")
            .hint = "the condition may be a stale configuration "
                    "check";
    }

    for (const std::string &name : summary.deadWires) {
        report
            .add("dfa.dead-signal", design_name, name,
                 "value can never reach an output or state "
                 "element")
            .hint = "dead fanin inflates the netlist before "
                    "mapping";
    }
    for (const std::string &name : summary.deadRegs) {
        report
            .add("dfa.write-never-read", design_name, name,
                 "register is written every cycle but never read")
            .hint = "remove the register or wire its value to a "
                    "consumer";
    }

    for (const DfaSummary::ReadBeforeWrite &read :
         summary.readBeforeWrite) {
        report
            .add("dfa.read-before-write", design_name,
                 read.module + "." + read.signal,
                 "combinational block reads this signal before "
                 "any guaranteed write on some path",
                 read.line)
            .hint = "assign a default at the top of the block";
    }

    for (const DfaSummary::Crossing &crossing :
         summary.crossings) {
        if (crossing.synchronized)
            continue;
        report
            .add("dfa.cdc-unsync", design_name,
                 crossing.module + "." + crossing.signal,
                 "crosses from clock domain '" +
                     crossing.fromClock + "' into '" +
                     crossing.toClock +
                     "' through combinational logic",
                 crossing.line)
            .hint = "capture the raw signal in a two-flop "
                    "synchronizer before using it";
    }

    for (const DfaSummary::ClockData &clock : summary.clockAsData) {
        report
            .add("dfa.clock-as-data", design_name,
                 clock.module + "." + clock.clock,
                 "clock is read as ordinary data", clock.line)
            .hint = "gate or sample enables, not the clock wire "
                    "itself";
    }

    return report;
}

} // namespace ucx
