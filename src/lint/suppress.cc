#include "lint/suppress.hh"

#include <fstream>
#include <set>
#include <sstream>

#include "util/error.hh"
#include "util/str.hh"

namespace ucx
{

namespace
{

bool
fieldMatches(const std::string &pattern, const std::string &value)
{
    if (pattern == "*")
        return true;
    if (pattern == "-")
        return value.empty();
    return pattern == value;
}

} // namespace

bool
LintSuppression::matches(const LintDiagnostic &d) const
{
    return fieldMatches(rule, d.rule) &&
           fieldMatches(design, d.design) &&
           fieldMatches(object, d.object);
}

LintSuppressions
LintSuppressions::parse(const std::string &text)
{
    LintSuppressions out;
    int line_no = 0;
    for (const std::string &raw : split(text, '\n')) {
        ++line_no;
        std::string line = raw;
        std::string comment;
        size_t hash = line.find('#');
        if (hash != std::string::npos) {
            comment = trim(line.substr(hash + 1));
            line = line.substr(0, hash);
        }
        line = trim(line);
        if (line.empty())
            continue;
        std::vector<std::string> fields = splitWs(line);
        if (fields.size() != 3)
            throw UcxError(
                "suppression line " + std::to_string(line_no) +
                ": expected '<rule> <design> <object>', got '" +
                trim(raw) + "'");
        if (fields[0] != "*")
            lintRule(fields[0]); // reject unknown rule ids
        LintSuppression s;
        s.rule = fields[0];
        s.design = fields[1];
        s.object = fields[2];
        s.comment = comment;
        out.add(std::move(s));
    }
    return out;
}

LintSuppressions
LintSuppressions::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw UcxError("cannot read suppression file '" + path +
                       "'");
    std::ostringstream text;
    text << in.rdbuf();
    try {
        return parse(text.str());
    } catch (const UcxError &e) {
        throw UcxError("suppression file '" + path +
                       "': " + e.what());
    }
}

LintSuppressions
LintSuppressions::baselineOf(const LintReport &report,
                             const std::string &comment)
{
    LintSuppressions out;
    std::set<std::string> seen;
    for (const LintDiagnostic &d : report.diagnostics()) {
        if (!seen.insert(d.key()).second)
            continue;
        LintSuppression s;
        s.rule = d.rule;
        s.design = d.design.empty() ? "-" : d.design;
        s.object = d.object.empty() ? "-" : d.object;
        s.comment = comment;
        out.add(std::move(s));
    }
    return out;
}

void
LintSuppressions::add(LintSuppression suppression)
{
    entries_.push_back(std::move(suppression));
}

bool
LintSuppressions::matches(const LintDiagnostic &d) const
{
    for (const LintSuppression &s : entries_)
        if (s.matches(d))
            return true;
    return false;
}

size_t
LintSuppressions::apply(LintReport &report) const
{
    if (entries_.empty())
        return 0;
    return report.filter(
        [&](const LintDiagnostic &d) { return !matches(d); });
}

std::string
LintSuppressions::serialize() const
{
    std::string out;
    for (const LintSuppression &s : entries_) {
        out += s.rule + " " + s.design + " " + s.object;
        if (!s.comment.empty())
            out += "  # " + s.comment;
        out += '\n';
    }
    return out;
}

} // namespace ucx
