#include "lint/diagnostic.hh"

#include <algorithm>
#include <map>

#include "obs/export.hh"
#include "obs/metrics.hh"
#include "util/error.hh"
#include "util/str.hh"

namespace ucx
{

const char *
lintSeverityName(LintSeverity severity)
{
    switch (severity) {
    case LintSeverity::Note:
        return "note";
    case LintSeverity::Warning:
        return "warning";
    case LintSeverity::Error:
        return "error";
    }
    return "unknown";
}

LintSeverity
lintSeverityFromName(const std::string &name)
{
    std::string low = toLower(name);
    if (low == "note")
        return LintSeverity::Note;
    if (low == "warning" || low == "warn")
        return LintSeverity::Warning;
    if (low == "error")
        return LintSeverity::Error;
    throw UcxError("unknown lint severity '" + name + "'");
}

const std::vector<LintRuleInfo> &
lintRuleCatalog()
{
    static const std::vector<LintRuleInfo> catalog = {
        {"acct.duplicate-component", "acct", LintSeverity::Error,
         "a component appears more than once in a partition or "
         "dataset"},
        {"acct.duplicate-metrics", "acct", LintSeverity::Warning,
         "two components of one project have identical metric "
         "vectors"},
        {"acct.duplicate-type", "acct", LintSeverity::Warning,
         "a module type was counted per-instance instead of once"},
        {"acct.non-minimal-params", "acct", LintSeverity::Warning,
         "a module was measured above its minimal non-degenerate "
         "parameterization"},
        {"acct.nonpositive-effort", "acct", LintSeverity::Error,
         "a component reports zero or negative design effort"},
        {"acct.overlap", "acct", LintSeverity::Error,
         "a module type belongs to more than one component of a "
         "partition"},
        {"dfa.cdc-unsync", "dfa", LintSeverity::Warning,
         "a value crosses clock domains through combinational "
         "logic before the capturing flop"},
        {"dfa.clock-as-data", "dfa", LintSeverity::Warning,
         "a clock is read as ordinary data"},
        {"dfa.const-condition", "dfa", LintSeverity::Warning,
         "a mux select settles to one constant at the dataflow "
         "fixpoint; a branch is dead"},
        {"dfa.const-output", "dfa", LintSeverity::Warning,
         "a primary output settles to one constant value"},
        {"dfa.const-signal", "dfa", LintSeverity::Note,
         "a signal settles to one constant value"},
        {"dfa.dead-signal", "dfa", LintSeverity::Note,
         "a wire's value can never reach an output or state "
         "element"},
        {"dfa.read-before-write", "dfa", LintSeverity::Warning,
         "a combinational block reads a signal it assigns before "
         "any guaranteed write"},
        {"dfa.write-never-read", "dfa", LintSeverity::Warning,
         "a register is written but its value is never read"},
        {"fit.collinear", "fit", LintSeverity::Warning,
         "two regressor columns are nearly collinear"},
        {"fit.empty", "fit", LintSeverity::Error,
         "the regression input has no usable rows or columns"},
        {"fit.nonfinite", "fit", LintSeverity::Error,
         "a metric value or effort is NaN or infinite"},
        {"fit.small-group", "fit", LintSeverity::Warning,
         "a team has too few components to support its random "
         "effect"},
        {"fit.zero-variance", "fit", LintSeverity::Warning,
         "a regressor column is constant across all components"},
        {"hdl.comb-loop", "hdl", LintSeverity::Error,
         "combinational logic forms a cycle"},
        {"hdl.const-condition", "hdl", LintSeverity::Warning,
         "a condition is compile-time constant; a branch is dead"},
        {"hdl.dead-logic", "hdl", LintSeverity::Note,
         "gates are unreachable from any output or state element"},
        {"hdl.elab-error", "hdl", LintSeverity::Error,
         "the design does not elaborate"},
        {"hdl.elab-warning", "hdl", LintSeverity::Warning,
         "elaboration produced a warning with no dedicated rule"},
        {"hdl.inferred-latch", "hdl", LintSeverity::Warning,
         "a combinational always block does not assign a signal on "
         "every path"},
        {"hdl.multi-driven", "hdl", LintSeverity::Error,
         "a signal has more than one driver"},
        {"hdl.unconnected-input", "hdl", LintSeverity::Warning,
         "an instance input port is unconnected"},
        {"hdl.undriven", "hdl", LintSeverity::Warning,
         "a signal is never driven"},
        {"hdl.unused", "hdl", LintSeverity::Warning,
         "a signal is never read"},
        {"hdl.width-mismatch", "hdl", LintSeverity::Warning,
         "assignment or port-binding widths disagree"},
    };
    return catalog;
}

const LintRuleInfo &
lintRule(const std::string &id)
{
    for (const LintRuleInfo &rule : lintRuleCatalog())
        if (rule.id == id)
            return rule;
    throw UcxError("unknown lint rule '" + id + "'");
}

std::string
LintDiagnostic::key() const
{
    std::string out = rule;
    out += ' ';
    out += design.empty() ? "-" : design;
    out += ' ';
    out += object.empty() ? "-" : object;
    return out;
}

std::string
LintDiagnostic::format() const
{
    std::string out = lintSeverityName(severity);
    out += " [" + rule + "] ";
    if (!design.empty())
        out += design + ": ";
    if (!object.empty()) {
        out += object;
        if (line > 0)
            out += ":" + std::to_string(line);
        out += ": ";
    }
    out += message;
    if (!hint.empty())
        out += " (hint: " + hint + ")";
    return out;
}

LintDiagnostic &
LintReport::add(const std::string &rule, const std::string &design,
                const std::string &object,
                const std::string &message, int line)
{
    const LintRuleInfo &info = lintRule(rule);
    LintDiagnostic d;
    d.rule = info.id;
    d.severity = info.severity;
    d.design = design;
    d.object = object;
    d.line = line;
    d.message = message;
    diagnostics_.push_back(std::move(d));
    return diagnostics_.back();
}

void
LintReport::add(LintDiagnostic diagnostic)
{
    lintRule(diagnostic.rule); // reject unknown rule ids
    diagnostics_.push_back(std::move(diagnostic));
}

void
LintReport::merge(const LintReport &other)
{
    diagnostics_.insert(diagnostics_.end(),
                        other.diagnostics_.begin(),
                        other.diagnostics_.end());
}

void
LintReport::sortCanonical()
{
    auto order = [](const LintDiagnostic &a,
                    const LintDiagnostic &b) {
        if (a.severity != b.severity)
            return a.severity > b.severity;
        if (a.rule != b.rule)
            return a.rule < b.rule;
        if (a.design != b.design)
            return a.design < b.design;
        if (a.object != b.object)
            return a.object < b.object;
        if (a.line != b.line)
            return a.line < b.line;
        return a.message < b.message;
    };
    std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                     order);
    auto same = [](const LintDiagnostic &a,
                   const LintDiagnostic &b) {
        return a.severity == b.severity && a.rule == b.rule &&
               a.design == b.design && a.object == b.object &&
               a.line == b.line && a.message == b.message;
    };
    diagnostics_.erase(std::unique(diagnostics_.begin(),
                                   diagnostics_.end(), same),
                       diagnostics_.end());
}

size_t
LintReport::filter(
    const std::function<bool(const LintDiagnostic &)> &keep)
{
    size_t before = diagnostics_.size();
    diagnostics_.erase(
        std::remove_if(diagnostics_.begin(), diagnostics_.end(),
                       [&](const LintDiagnostic &d) {
                           return !keep(d);
                       }),
        diagnostics_.end());
    return before - diagnostics_.size();
}

size_t
LintReport::count(LintSeverity at_least) const
{
    size_t n = 0;
    for (const LintDiagnostic &d : diagnostics_)
        if (d.severity >= at_least)
            ++n;
    return n;
}

const LintDiagnostic *
LintReport::firstAtLeast(LintSeverity at_least) const
{
    for (const LintDiagnostic &d : diagnostics_)
        if (d.severity >= at_least)
            return &d;
    return nullptr;
}

std::string
LintReport::text() const
{
    if (diagnostics_.empty())
        return "";
    std::string out;
    for (const LintDiagnostic &d : diagnostics_) {
        out += d.format();
        out += '\n';
    }
    out += std::to_string(count(LintSeverity::Error)) + " error(s), " +
           std::to_string(count(LintSeverity::Warning) -
                          count(LintSeverity::Error)) +
           " warning(s), " +
           std::to_string(size() - count(LintSeverity::Warning)) +
           " note(s)\n";
    return out;
}

std::string
LintReport::json() const
{
    size_t errors = count(LintSeverity::Error);
    size_t warnings = count(LintSeverity::Warning) - errors;
    size_t notes = size() - errors - warnings;
    std::string out = "{\"schema\":\"ucx.lint.v1\",\"counts\":{";
    out += "\"error\":" + std::to_string(errors);
    out += ",\"warning\":" + std::to_string(warnings);
    out += ",\"note\":" + std::to_string(notes);
    out += "},\"findings\":[";
    bool first = true;
    for (const LintDiagnostic &d : diagnostics_) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"rule\":\"" + obs::jsonEscape(d.rule) + "\"";
        out += ",\"severity\":\"";
        out += lintSeverityName(d.severity);
        out += "\"";
        out += ",\"design\":\"" + obs::jsonEscape(d.design) + "\"";
        out += ",\"object\":\"" + obs::jsonEscape(d.object) + "\"";
        out += ",\"line\":" + std::to_string(d.line);
        out += ",\"message\":\"" + obs::jsonEscape(d.message) + "\"";
        out += ",\"hint\":\"" + obs::jsonEscape(d.hint) + "\"}";
    }
    out += "]}";
    return out;
}

void
recordLintObs(const LintReport &report)
{
    if (!obs::enabled())
        return;
    for (const LintDiagnostic &d : report.diagnostics())
        obs::counter("lint.rule." + d.rule).add(1);
    obs::gauge("lint.findings")
        .set(static_cast<double>(report.size()));
}

} // namespace ucx
