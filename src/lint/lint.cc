#include "lint/lint.hh"

#include "dfa/pass.hh"
#include "lint/dfa_rules.hh"
#include "util/error.hh"

namespace ucx
{

namespace
{

/** Build one lint Pass writing into the given context slot. */
Pass
makeLintPass(std::string name,
             std::shared_ptr<const LintReport> PipelineContext::*slot,
             std::function<LintReport(PipelineContext &)> produce)
{
    Pass pass;
    pass.name = std::move(name);
    pass.artifactType = &typeid(LintReport);
    pass.run = [slot, produce = std::move(produce)](
                   PipelineContext &ctx) {
        LintReport report = produce(ctx);
        report.sortCanonical();
        ctx.*slot =
            std::make_shared<const LintReport>(std::move(report));
    };
    pass.save = [slot](const PipelineContext &ctx) {
        return std::static_pointer_cast<const void>(ctx.*slot);
    };
    pass.load = [slot](PipelineContext &ctx,
                       std::shared_ptr<const void> artifact) {
        ctx.*slot =
            std::static_pointer_cast<const LintReport>(artifact);
    };
    return pass;
}

} // namespace

Pass
lintPass(const std::string &design_name)
{
    return makeLintPass(
        "lint", &PipelineContext::lint,
        [design_name](PipelineContext &ctx) {
            return lintRtlStructure(*ctx.rtl, design_name);
        });
}

Pass
lintNetPass(const std::string &design_name)
{
    return makeLintPass(
        "lintnet", &PipelineContext::lintNet,
        [design_name](PipelineContext &ctx) {
            ensure(ctx.netlist != nullptr,
                   "lintnet pass needs the lowered netlist");
            return lintNetlistStructure(*ctx.netlist, design_name);
        });
}

LintReport
lintHdlDesign(const Design &design, const std::string &top,
              const std::string &design_name,
              const LintRunOptions &options)
{
    LintReport report = lintModules(design, design_name);

    std::shared_ptr<const ElabResult> elab;
    try {
        elab = elaborateShared(design, top, options.elab,
                               options.cache);
    } catch (const UcxError &e) {
        report.add("hdl.elab-error", design_name, top, e.what())
            .hint = "fix the elaboration error first; deeper "
                    "checks need an elaborated design";
        report.sortCanonical();
        return report;
    }
    report.merge(lintElabWarnings(elab->warnings, design_name));

    // The structural rules run as pipeline passes; their reports
    // carry the design name, so the name joins the cache key.
    PipelineRun run;
    if (options.cache) {
        run.cache = options.cache;
        run.base =
            synthCacheKey(elabCacheKey(design, top, options.elab),
                          options.config)
                .add(design_name);
    }
    PipelineContext ctx = runPasses(
        elab->rtl, {lintPass(design_name)}, options.config, run);
    if (ctx.lint)
        report.merge(*ctx.lint);

    // Gate lowering does not survive the defects the Error rules
    // catch (a combinational loop recurses forever), so the netlist
    // stage only runs on an error-free design.
    if (options.netlistRules && !report.hasError()) {
        std::vector<Pass> passes;
        for (const Pass &pass : defaultPassList())
            if (pass.name == "lower")
                passes.push_back(pass);
        if (options.dfaRules)
            passes.push_back(dfaPass(&design));
        passes.push_back(lintNetPass(design_name));
        PipelineContext net_ctx =
            runPasses(elab->rtl, passes, options.config, run);
        if (net_ctx.lintNet)
            report.merge(*net_ctx.lintNet);
        if (net_ctx.dfa)
            report.merge(dfaFindings(*net_ctx.dfa, design_name));
    }

    report.sortCanonical();
    return report;
}

} // namespace ucx
