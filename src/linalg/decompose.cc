#include "linalg/decompose.hh"

#include <cmath>

#include "util/error.hh"

namespace ucx
{

namespace
{

/** Small-matrix cutoff for the stack-buffer factor/solve paths. */
constexpr size_t kSmallN = 4;

} // namespace

Cholesky::Cholesky(const Matrix &a)
{
    require(a.square(), "Cholesky needs a square matrix");
    size_t n = a.rows();
    l_ = Matrix(n, n);
    if (n >= 1 && n <= kSmallN) {
        // Fixed-size fast path: the covariance blocks the fitters
        // factor are 2x2..4x4, so run the identical elimination on a
        // stack buffer with the per-element bounds checks hoisted
        // out. Statement order matches the general loop exactly, so
        // the factor is bit-identical.
        const double *ad = a.data().data();
        double lf[kSmallN * kSmallN] = {0.0};
        for (size_t j = 0; j < n; ++j) {
            double diag = ad[j * n + j];
            for (size_t k = 0; k < j; ++k)
                diag -= lf[j * n + k] * lf[j * n + k];
            require(diag > 0.0, "matrix is not positive definite");
            lf[j * n + j] = std::sqrt(diag);
            for (size_t i = j + 1; i < n; ++i) {
                double sum = ad[i * n + j];
                for (size_t k = 0; k < j; ++k)
                    sum -= lf[i * n + k] * lf[j * n + k];
                lf[i * n + j] = sum / lf[j * n + j];
            }
        }
        for (size_t r = 0; r < n; ++r)
            for (size_t c = 0; c <= r; ++c)
                l_(r, c) = lf[r * n + c];
        return;
    }
    for (size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (size_t k = 0; k < j; ++k)
            diag -= l_(j, k) * l_(j, k);
        require(diag > 0.0, "matrix is not positive definite");
        l_(j, j) = std::sqrt(diag);
        for (size_t i = j + 1; i < n; ++i) {
            double sum = a(i, j);
            for (size_t k = 0; k < j; ++k)
                sum -= l_(i, k) * l_(j, k);
            l_(i, j) = sum / l_(j, j);
        }
    }
}

Vector
Cholesky::solve(const Vector &b) const
{
    size_t n = l_.rows();
    require(b.size() == n, "rhs size mismatch in Cholesky::solve");
    if (n >= 1 && n <= kSmallN) {
        // Same substitutions as below on stack buffers (one fewer
        // heap vector, unchecked element reads); identical operation
        // order keeps the solution bit-identical.
        const double *lf = l_.data().data();
        double y[kSmallN];
        double x[kSmallN];
        for (size_t i = 0; i < n; ++i) {
            double sum = b[i];
            for (size_t k = 0; k < i; ++k)
                sum -= lf[i * n + k] * y[k];
            y[i] = sum / lf[i * n + i];
        }
        for (size_t ii = n; ii-- > 0;) {
            double sum = y[ii];
            for (size_t k = ii + 1; k < n; ++k)
                sum -= lf[k * n + ii] * x[k];
            x[ii] = sum / lf[ii * n + ii];
        }
        return Vector(x, x + n);
    }
    // Forward substitution L y = b.
    Vector y(n);
    for (size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (size_t k = 0; k < i; ++k)
            sum -= l_(i, k) * y[k];
        y[i] = sum / l_(i, i);
    }
    // Back substitution L^T x = y.
    Vector x(n);
    for (size_t ii = n; ii-- > 0;) {
        double sum = y[ii];
        for (size_t k = ii + 1; k < n; ++k)
            sum -= l_(k, ii) * x[k];
        x[ii] = sum / l_(ii, ii);
    }
    return x;
}

double
Cholesky::logDet() const
{
    double sum = 0.0;
    for (size_t i = 0; i < l_.rows(); ++i)
        sum += std::log(l_(i, i));
    return 2.0 * sum;
}

Lu::Lu(const Matrix &a)
    : lu_(a)
{
    require(a.square(), "LU needs a square matrix");
    size_t n = a.rows();
    perm_.resize(n);
    for (size_t i = 0; i < n; ++i)
        perm_[i] = i;

    for (size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        size_t pivot = col;
        double best = std::abs(lu_(col, col));
        for (size_t r = col + 1; r < n; ++r) {
            if (std::abs(lu_(r, col)) > best) {
                best = std::abs(lu_(r, col));
                pivot = r;
            }
        }
        require(best > 1e-300, "singular matrix in LU");
        if (pivot != col) {
            for (size_t c = 0; c < n; ++c)
                std::swap(lu_(pivot, c), lu_(col, c));
            std::swap(perm_[pivot], perm_[col]);
            sign_ = -sign_;
        }
        for (size_t r = col + 1; r < n; ++r) {
            lu_(r, col) /= lu_(col, col);
            double f = lu_(r, col);
            for (size_t c = col + 1; c < n; ++c)
                lu_(r, c) -= f * lu_(col, c);
        }
    }
}

Vector
Lu::solve(const Vector &b) const
{
    size_t n = lu_.rows();
    require(b.size() == n, "rhs size mismatch in Lu::solve");
    Vector y(n);
    for (size_t i = 0; i < n; ++i) {
        double sum = b[perm_[i]];
        for (size_t k = 0; k < i; ++k)
            sum -= lu_(i, k) * y[k];
        y[i] = sum;
    }
    Vector x(n);
    for (size_t ii = n; ii-- > 0;) {
        double sum = y[ii];
        for (size_t k = ii + 1; k < n; ++k)
            sum -= lu_(ii, k) * x[k];
        x[ii] = sum / lu_(ii, ii);
    }
    return x;
}

double
Lu::det() const
{
    double d = sign_;
    for (size_t i = 0; i < lu_.rows(); ++i)
        d *= lu_(i, i);
    return d;
}

Qr::Qr(const Matrix &a)
    : qr_(a)
{
    require(a.rows() >= a.cols(), "QR needs rows >= cols");
    size_t m = a.rows();
    size_t n = a.cols();
    betas_.assign(n, 0.0);

    for (size_t j = 0; j < n; ++j) {
        // Householder vector for column j.
        double nrm = 0.0;
        for (size_t i = j; i < m; ++i)
            nrm += qr_(i, j) * qr_(i, j);
        nrm = std::sqrt(nrm);
        if (nrm == 0.0) {
            betas_[j] = 0.0;
            continue;
        }
        double alpha = qr_(j, j) >= 0 ? -nrm : nrm;
        double v0 = qr_(j, j) - alpha;
        qr_(j, j) = alpha;
        // Store v in the subdiagonal (scaled so v0 is implicit).
        double vnorm2 = v0 * v0;
        for (size_t i = j + 1; i < m; ++i)
            vnorm2 += qr_(i, j) * qr_(i, j);
        if (vnorm2 == 0.0) {
            betas_[j] = 0.0;
            continue;
        }
        betas_[j] = 2.0 / vnorm2;
        // Apply the reflector to the trailing columns. We keep v's
        // tail in place below the diagonal and remember v0 via the
        // scaling trick: normalize tail by v0 at apply time instead.
        for (size_t c = j + 1; c < n; ++c) {
            double s = v0 * qr_(j, c);
            for (size_t i = j + 1; i < m; ++i)
                s += qr_(i, j) * qr_(i, c);
            s *= betas_[j];
            qr_(j, c) -= s * v0;
            for (size_t i = j + 1; i < m; ++i)
                qr_(i, c) -= s * qr_(i, j);
        }
        // Persist v0 by scaling the stored tail so that v0 == 1.
        for (size_t i = j + 1; i < m; ++i)
            qr_(i, j) /= v0;
        betas_[j] *= v0 * v0;
    }
}

Vector
Qr::solveLeastSquares(const Vector &b) const
{
    size_t m = qr_.rows();
    size_t n = qr_.cols();
    require(b.size() == m, "rhs size mismatch in Qr");
    Vector y(b);
    // Apply Q^T: for each reflector j with implicit v0 == 1.
    for (size_t j = 0; j < n; ++j) {
        if (betas_[j] == 0.0)
            continue;
        double s = y[j];
        for (size_t i = j + 1; i < m; ++i)
            s += qr_(i, j) * y[i];
        s *= betas_[j];
        y[j] -= s;
        for (size_t i = j + 1; i < m; ++i)
            y[i] -= s * qr_(i, j);
    }
    // Back substitution with R (upper n x n block).
    Vector x(n);
    for (size_t ii = n; ii-- > 0;) {
        double sum = y[ii];
        for (size_t k = ii + 1; k < n; ++k)
            sum -= qr_(ii, k) * x[k];
        require(std::abs(qr_(ii, ii)) > 1e-300,
                "rank-deficient matrix in QR solve");
        x[ii] = sum / qr_(ii, ii);
    }
    return x;
}

bool
Qr::fullRank() const
{
    for (size_t i = 0; i < qr_.cols(); ++i)
        if (std::abs(qr_(i, i)) < 1e-12)
            return false;
    return true;
}

} // namespace ucx
