/**
 * @file
 * Matrix decompositions: Cholesky, LU (partial pivoting), and
 * Householder QR. These back the multivariate-normal likelihood in
 * the mixed-effects model and the least-squares baselines.
 */

#ifndef UCX_LINALG_DECOMPOSE_HH
#define UCX_LINALG_DECOMPOSE_HH

#include "linalg/matrix.hh"

namespace ucx
{

/**
 * Cholesky factorization A = L * L^T of a symmetric positive-definite
 * matrix.
 */
class Cholesky
{
  public:
    /**
     * Factorize a symmetric positive-definite matrix.
     *
     * @param a Square SPD matrix; throws UcxError if not SPD.
     */
    explicit Cholesky(const Matrix &a);

    /** @return The lower-triangular factor L. */
    const Matrix &lower() const { return l_; }

    /**
     * Solve A x = b using the factorization.
     *
     * @param b Right-hand side, length = dimension of A.
     * @return The solution x.
     */
    Vector solve(const Vector &b) const;

    /** @return log(det(A)) computed stably from the factor. */
    double logDet() const;

  private:
    Matrix l_;
};

/** LU factorization with partial pivoting, P A = L U. */
class Lu
{
  public:
    /**
     * Factorize a square matrix.
     *
     * @param a Square matrix; throws UcxError if singular to working
     *          precision.
     */
    explicit Lu(const Matrix &a);

    /**
     * Solve A x = b.
     *
     * @param b Right-hand side.
     * @return The solution x.
     */
    Vector solve(const Vector &b) const;

    /** @return det(A), including the pivot sign. */
    double det() const;

  private:
    Matrix lu_;
    std::vector<size_t> perm_;
    int sign_ = 1;
};

/** Householder QR factorization A = Q R for m >= n. */
class Qr
{
  public:
    /**
     * Factorize a tall (or square) matrix.
     *
     * @param a Matrix with rows() >= cols().
     */
    explicit Qr(const Matrix &a);

    /**
     * Least-squares solve: minimize ||A x - b||_2.
     *
     * @param b Right-hand side, length = rows of A.
     * @return The least-squares solution x (length = cols of A).
     */
    Vector solveLeastSquares(const Vector &b) const;

    /** @return True when R has no near-zero diagonal (full rank). */
    bool fullRank() const;

  private:
    Matrix qr_;            ///< Packed Householder vectors + R.
    Vector betas_;         ///< Householder scaling factors.
};

} // namespace ucx

#endif // UCX_LINALG_DECOMPOSE_HH
