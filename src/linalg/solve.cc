#include "linalg/solve.hh"

#include "linalg/decompose.hh"

namespace ucx
{

Vector
solveLinear(const Matrix &a, const Vector &b)
{
    return Lu(a).solve(b);
}

Vector
solveSpd(const Matrix &a, const Vector &b)
{
    return Cholesky(a).solve(b);
}

Vector
leastSquares(const Matrix &x, const Vector &y)
{
    return Qr(x).solveLeastSquares(y);
}

Matrix
inverse(const Matrix &a)
{
    Lu lu(a);
    size_t n = a.rows();
    Matrix inv(n, n);
    Vector e(n, 0.0);
    for (size_t c = 0; c < n; ++c) {
        e[c] = 1.0;
        Vector col = lu.solve(e);
        for (size_t r = 0; r < n; ++r)
            inv(r, c) = col[r];
        e[c] = 0.0;
    }
    return inv;
}

} // namespace ucx
