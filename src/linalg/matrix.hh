/**
 * @file
 * Dense row-major matrix and vector helpers.
 *
 * Sized for statistics work (tens of rows/columns): clarity and
 * correctness over blocking/SIMD.
 */

#ifndef UCX_LINALG_MATRIX_HH
#define UCX_LINALG_MATRIX_HH

#include <cstddef>
#include <vector>

namespace ucx
{

/** Column vector represented as a flat array of doubles. */
using Vector = std::vector<double>;

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Create an empty 0x0 matrix. */
    Matrix() = default;

    /**
     * Create a rows x cols matrix.
     *
     * @param rows Number of rows.
     * @param cols Number of columns.
     * @param fill Initial value of every element.
     */
    Matrix(size_t rows, size_t cols, double fill = 0.0);

    /**
     * Create a matrix from nested initializer data (rows of equal
     * length).
     *
     * @param rows Row data; all rows must have the same length.
     */
    static Matrix fromRows(const std::vector<Vector> &rows);

    /**
     * @param n Dimension.
     * @return The n x n identity matrix.
     */
    static Matrix identity(size_t n);

    /** @return Number of rows. */
    size_t rows() const { return rows_; }

    /** @return Number of columns. */
    size_t cols() const { return cols_; }

    /** Element access (unchecked in release semantics, asserted). */
    double &operator()(size_t r, size_t c);

    /** Element access, const. */
    double operator()(size_t r, size_t c) const;

    /** @return The transpose of this matrix. */
    Matrix transposed() const;

    /** @return True when the matrix is square. */
    bool square() const { return rows_ == cols_; }

    /** @return Raw storage, row-major. */
    const std::vector<double> &data() const { return data_; }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

/** @return a + b elementwise; sizes must match. */
Vector add(const Vector &a, const Vector &b);

/** @return a - b elementwise; sizes must match. */
Vector sub(const Vector &a, const Vector &b);

/** @return s * a elementwise. */
Vector scale(const Vector &a, double s);

/** @return Dot product of a and b; sizes must match. */
double dot(const Vector &a, const Vector &b);

/** @return Euclidean norm of a. */
double norm(const Vector &a);

/** @return Largest absolute element of a (0 for empty). */
double maxAbs(const Vector &a);

/** @return Matrix product a * b; inner dimensions must match. */
Matrix matmul(const Matrix &a, const Matrix &b);

/** @return Matrix-vector product a * x. */
Vector matvec(const Matrix &a, const Vector &x);

/**
 * Matrix-vector product written into a caller-owned buffer — the
 * allocation-free variant used by the optimizer inner loops. Values
 * are bit-identical to matvec(); @p out is resized when needed and
 * must not alias @p x.
 *
 * @param a   Matrix.
 * @param x   Input vector (a.cols() long).
 * @param out Output vector; receives a * x.
 */
void matvecInto(const Matrix &a, const Vector &x, Vector &out);

/** @return a + b elementwise; shapes must match. */
Matrix add(const Matrix &a, const Matrix &b);

/** @return s * a elementwise. */
Matrix scale(const Matrix &a, double s);

/** @return Largest absolute elementwise difference between a and b. */
double maxAbsDiff(const Matrix &a, const Matrix &b);

} // namespace ucx

#endif // UCX_LINALG_MATRIX_HH
