#include "linalg/matrix.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace ucx
{

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{}

Matrix
Matrix::fromRows(const std::vector<Vector> &rows)
{
    if (rows.empty())
        return Matrix();
    Matrix m(rows.size(), rows[0].size());
    for (size_t r = 0; r < rows.size(); ++r) {
        require(rows[r].size() == m.cols_, "ragged rows in fromRows");
        for (size_t c = 0; c < m.cols_; ++c)
            m(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double &
Matrix::operator()(size_t r, size_t c)
{
    ensure(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

double
Matrix::operator()(size_t r, size_t c) const
{
    ensure(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            t(c, r) = (*this)(r, c);
    return t;
}

Vector
add(const Vector &a, const Vector &b)
{
    require(a.size() == b.size(), "vector size mismatch in add");
    Vector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

Vector
sub(const Vector &a, const Vector &b)
{
    require(a.size() == b.size(), "vector size mismatch in sub");
    Vector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] - b[i];
    return out;
}

Vector
scale(const Vector &a, double s)
{
    Vector out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] * s;
    return out;
}

double
dot(const Vector &a, const Vector &b)
{
    require(a.size() == b.size(), "vector size mismatch in dot");
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

double
norm(const Vector &a)
{
    return std::sqrt(dot(a, a));
}

double
maxAbs(const Vector &a)
{
    double m = 0.0;
    for (double v : a)
        m = std::max(m, std::abs(v));
    return m;
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    require(a.cols() == b.rows(), "matmul inner dimension mismatch");
    Matrix out(a.rows(), b.cols());
    for (size_t r = 0; r < a.rows(); ++r) {
        for (size_t k = 0; k < a.cols(); ++k) {
            double av = a(r, k);
            if (av == 0.0)
                continue;
            for (size_t c = 0; c < b.cols(); ++c)
                out(r, c) += av * b(k, c);
        }
    }
    return out;
}

Vector
matvec(const Matrix &a, const Vector &x)
{
    Vector out;
    matvecInto(a, x, out);
    return out;
}

void
matvecInto(const Matrix &a, const Vector &x, Vector &out)
{
    require(a.cols() == x.size(), "matvec dimension mismatch");
    out.assign(a.rows(), 0.0);
    const double *data = a.data().data();
    const size_t cols = a.cols();
    for (size_t r = 0; r < a.rows(); ++r) {
        const double *row = data + r * cols;
        for (size_t c = 0; c < cols; ++c)
            out[r] += row[c] * x[c];
    }
}

Matrix
add(const Matrix &a, const Matrix &b)
{
    require(a.rows() == b.rows() && a.cols() == b.cols(),
            "matrix shape mismatch in add");
    Matrix out(a.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            out(r, c) = a(r, c) + b(r, c);
    return out;
}

Matrix
scale(const Matrix &a, double s)
{
    Matrix out(a.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            out(r, c) = a(r, c) * s;
    return out;
}

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    require(a.rows() == b.rows() && a.cols() == b.cols(),
            "matrix shape mismatch in maxAbsDiff");
    double m = 0.0;
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            m = std::max(m, std::abs(a(r, c) - b(r, c)));
    return m;
}

} // namespace ucx
