/**
 * @file
 * High-level solve helpers built on the decompositions.
 */

#ifndef UCX_LINALG_SOLVE_HH
#define UCX_LINALG_SOLVE_HH

#include "linalg/matrix.hh"

namespace ucx
{

/**
 * Solve a general square system A x = b via LU.
 *
 * @param a Square coefficient matrix.
 * @param b Right-hand side.
 * @return The solution x.
 */
Vector solveLinear(const Matrix &a, const Vector &b);

/**
 * Solve an SPD system A x = b via Cholesky.
 *
 * @param a Symmetric positive-definite matrix.
 * @param b Right-hand side.
 * @return The solution x.
 */
Vector solveSpd(const Matrix &a, const Vector &b);

/**
 * Ordinary least squares: minimize ||X beta - y||_2 via QR.
 *
 * @param x Design matrix (rows = observations).
 * @param y Response vector.
 * @return The coefficient vector beta.
 */
Vector leastSquares(const Matrix &x, const Vector &y);

/**
 * Invert a square matrix via LU (for the small covariance matrices
 * used in reporting; prefer solve* for systems).
 *
 * @param a Square matrix.
 * @return The inverse of a.
 */
Matrix inverse(const Matrix &a);

} // namespace ucx

#endif // UCX_LINALG_SOLVE_HH
