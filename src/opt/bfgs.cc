#include "opt/bfgs.hh"

#include <cmath>
#include <limits>

#include "linalg/matrix.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/error.hh"

namespace ucx
{

std::vector<double>
numericGradient(const Objective &f, const std::vector<double> &x,
                double rel_step)
{
    std::vector<double> g(x.size());
    std::vector<double> xp(x);
    for (size_t i = 0; i < x.size(); ++i) {
        double h = rel_step * std::max(1.0, std::abs(x[i]));
        double orig = xp[i];
        xp[i] = orig + h;
        double fp = f(xp);
        xp[i] = orig - h;
        double fm = f(xp);
        xp[i] = orig;
        g[i] = (fp - fm) / (2.0 * h);
    }
    return g;
}

std::vector<double>
numericHessian(const Objective &f, const std::vector<double> &x,
               double rel_step)
{
    size_t n = x.size();
    std::vector<double> hess(n * n, 0.0);
    std::vector<double> xp(x);
    double f0 = f(x);
    std::vector<double> h(n);
    for (size_t i = 0; i < n; ++i)
        h[i] = rel_step * std::max(1.0, std::abs(x[i]));

    for (size_t i = 0; i < n; ++i) {
        // Diagonal: (f(x+h) - 2 f(x) + f(x-h)) / h^2.
        double oi = xp[i];
        xp[i] = oi + h[i];
        double fp = f(xp);
        xp[i] = oi - h[i];
        double fm = f(xp);
        xp[i] = oi;
        hess[i * n + i] = (fp - 2.0 * f0 + fm) / (h[i] * h[i]);
        for (size_t j = i + 1; j < n; ++j) {
            double oj = xp[j];
            xp[i] = oi + h[i];
            xp[j] = oj + h[j];
            double fpp = f(xp);
            xp[j] = oj - h[j];
            double fpm = f(xp);
            xp[i] = oi - h[i];
            double fmm = f(xp);
            xp[j] = oj + h[j];
            double fmp = f(xp);
            xp[i] = oi;
            xp[j] = oj;
            double v = (fpp - fpm - fmp + fmm) / (4.0 * h[i] * h[j]);
            hess[i * n + j] = v;
            hess[j * n + i] = v;
        }
    }
    return hess;
}

namespace
{

/**
 * Shared BFGS body: the classic algorithm with the gradient supplied
 * by @p grad_fn — either analytic (the GradObjective path) or the
 * central-difference fallback. Identical line search, update and
 * convergence tests either way.
 */
OptResult
bfgsImpl(const Objective &f, const Gradient &grad_fn,
         const std::vector<double> &start, const BfgsConfig &config,
         bool analytic)
{
    require(!start.empty(), "bfgs needs a non-empty start point");
    const size_t n = start.size();

    obs::ScopedSpan obs_span("opt.bfgs");
    OptResult result;
    result.trace.algorithm = "bfgs";
    const double nan = std::numeric_limits<double>::quiet_NaN();
    auto eval = [&](const std::vector<double> &x) {
        ++result.evaluations;
        double v = f(x);
        return std::isfinite(v) ? v
                                : std::numeric_limits<double>::max();
    };
    size_t grad_evals = 0;

    std::vector<double> x = start;
    double fx = eval(x);
    std::vector<double> g(n);
    grad_fn(x, g);
    ++grad_evals;
    Matrix hinv = Matrix::identity(n);
    result.trace.record(
        {0, fx, maxAbs(g), nan, nan, result.evaluations});

    for (size_t it = 0; it < config.maxIterations; ++it) {
        ++result.iterations;
        if (maxAbs(g) < config.gradTol) {
            result.converged = true;
            break;
        }

        // Search direction d = -Hinv * g.
        Vector d = matvec(hinv, g);
        for (double &v : d)
            v = -v;
        double slope = dot(d, g);
        if (slope >= 0.0) {
            // Reset to steepest descent when curvature info goes bad.
            hinv = Matrix::identity(n);
            d = scale(g, -1.0);
            slope = dot(d, g);
        }

        // Backtracking Armijo line search.
        double alpha = 1.0;
        double fnew = fx;
        std::vector<double> xnew(x);
        bool accepted = false;
        for (int ls = 0; ls < 60; ++ls) {
            for (size_t i = 0; i < n; ++i)
                xnew[i] = x[i] + alpha * d[i];
            fnew = eval(xnew);
            if (fnew <= fx + 1e-4 * alpha * slope) {
                accepted = true;
                break;
            }
            alpha *= 0.5;
        }
        if (!accepted) {
            result.converged = maxAbs(g) < 1e-4;
            break;
        }

        std::vector<double> gnew(n);
        grad_fn(xnew, gnew);
        ++grad_evals;

        // BFGS inverse-Hessian update.
        Vector s = sub(xnew, x);
        Vector yv = sub(gnew, g);
        double sy = dot(s, yv);
        if (sy > 1e-12) {
            double rho = 1.0 / sy;
            // hinv = (I - rho s y^T) hinv (I - rho y s^T) + rho s s^T
            Vector hy = matvec(hinv, yv);
            double yhy = dot(yv, hy);
            for (size_t i = 0; i < n; ++i) {
                for (size_t j = 0; j < n; ++j) {
                    hinv(i, j) += rho * rho * yhy * s[i] * s[j] -
                                  rho * (s[i] * hy[j] + hy[i] * s[j]) +
                                  rho * s[i] * s[j];
                }
            }
        }

        double step = norm(s);
        x = std::move(xnew);
        fx = fnew;
        g = std::move(gnew);
        result.trace.record({result.iterations, fx, maxAbs(g), step,
                             nan, result.evaluations});
        if (step < config.stepTol) {
            result.converged = true;
            break;
        }
    }

    result.x = x;
    result.fx = fx;
    result.trace.converged = result.converged;
    if (obs::enabled()) {
        static obs::Counter &runs = obs::counter("opt.bfgs.runs");
        static obs::Counter &iters =
            obs::counter("opt.bfgs.iterations");
        static obs::Counter &evals =
            obs::counter("opt.bfgs.evaluations");
        runs.add(1);
        iters.add(result.iterations);
        evals.add(result.evaluations);
        if (analytic) {
            static obs::Counter &gevals =
                obs::counter("opt.bfgs.gradient_evaluations");
            gevals.add(grad_evals);
        }
    }
    return result;
}

} // namespace

OptResult
bfgs(const Objective &f, const std::vector<double> &start,
     const BfgsConfig &config)
{
    // Central-difference fallback; numericGradient's probe calls are
    // deliberately not counted in result.evaluations (historical
    // contract relied on by the convergence traces).
    Gradient fd = [&f, &config](const std::vector<double> &x,
                                std::vector<double> &g) {
        g = numericGradient(f, x, config.fdStep);
    };
    return bfgsImpl(f, fd, start, config, false);
}

OptResult
bfgs(const Objective &f, const Gradient &grad,
     const std::vector<double> &start, const BfgsConfig &config)
{
    return bfgsImpl(f, grad, start, config, true);
}

} // namespace ucx
