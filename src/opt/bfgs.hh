/**
 * @file
 * BFGS quasi-Newton minimizer with numeric gradients; used to polish
 * Nelder-Mead solutions of the likelihood fits.
 */

#ifndef UCX_OPT_BFGS_HH
#define UCX_OPT_BFGS_HH

#include "opt/objective.hh"

namespace ucx
{

/** Configuration for the BFGS minimizer. */
struct BfgsConfig
{
    double gradTol = 1e-8;        ///< Convergence on gradient norm.
    double stepTol = 1e-12;       ///< Convergence on step size.
    size_t maxIterations = 500;   ///< Iteration budget.
    double fdStep = 1e-6;         ///< Relative finite-difference step.
};

/**
 * Minimize a smooth objective with BFGS and a backtracking Armijo
 * line search; gradients are central finite differences.
 *
 * @param f      Objective to minimize.
 * @param start  Initial point.
 * @param config Algorithm parameters.
 * @return Best point found and bookkeeping.
 */
OptResult bfgs(const Objective &f, const std::vector<double> &start,
               const BfgsConfig &config = {});

/**
 * Minimize with a caller-supplied gradient (the GradObjective path):
 * identical algorithm, line search and convergence tests, but every
 * gradient is one call to @p grad instead of 2p objective
 * evaluations of central differencing.
 *
 * @param f      Objective to minimize.
 * @param grad   In-place gradient of f.
 * @param start  Initial point.
 * @param config Algorithm parameters.
 * @return Best point found and bookkeeping.
 */
OptResult bfgs(const Objective &f, const Gradient &grad,
               const std::vector<double> &start,
               const BfgsConfig &config = {});

/**
 * Central-difference gradient of f at x.
 *
 * @param f       Objective.
 * @param x       Evaluation point.
 * @param rel_step Relative step size per coordinate.
 * @return The numeric gradient.
 */
std::vector<double> numericGradient(const Objective &f,
                                    const std::vector<double> &x,
                                    double rel_step = 1e-6);

/**
 * Numeric Hessian of f at x by central differences of the gradient;
 * used for observed-information standard errors.
 *
 * @param f        Objective.
 * @param x        Evaluation point.
 * @param rel_step Relative step size per coordinate.
 * @return Row-major n*n Hessian (flattened).
 */
std::vector<double> numericHessian(const Objective &f,
                                   const std::vector<double> &x,
                                   double rel_step = 1e-4);

} // namespace ucx

#endif // UCX_OPT_BFGS_HH
