/**
 * @file
 * Per-thread, grow-only scratch workspaces for the fitting hot path.
 *
 * A single likelihood evaluation used to allocate a fresh
 * vector-of-vectors of residuals plus per-group temporaries; under a
 * 200-replicate bootstrap or an 8-way multistart that is millions of
 * short-lived heap allocations. A FitWorkspace owns those buffers
 * instead: it is handed out one-per-thread (thread_local slots, so
 * workers of the shared ExecContext pool never contend on it), its
 * buffers only ever grow, and after the first evaluation of a given
 * problem size every further evaluation on that thread is
 * allocation-free.
 *
 * The workspace is pure scratch — no state survives an evaluation —
 * so interleaved fits of different models on one thread (bootstrap
 * replicate after replicate, nested profile searches) reuse the same
 * slot safely. Growth events and per-thread slot creation are
 * exported as obs counters (opt.workspace.threads /
 * opt.workspace.growths) so steady-state regressions show up in
 * BENCH diffs.
 */

#ifndef UCX_OPT_WORKSPACE_HH
#define UCX_OPT_WORKSPACE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ucx
{

/** Grow-only scratch buffers for one likelihood/gradient evaluation. */
struct FitWorkspace
{
    std::vector<double> lin;   ///< Linear predictor per observation.
    std::vector<double> resid; ///< Residual per observation.
    std::vector<double> coef;  ///< Per-observation gradient coefficients.
    std::vector<double> theta; ///< Constrained-parameter scratch.
    std::vector<double> grad;  ///< Gradient scratch (nparams).

    /** Times any buffer of this workspace had to grow. */
    uint64_t growths = 0;

    /**
     * Make every per-observation buffer at least @p nobs long and
     * the parameter buffers at least @p nparams long. Buffers never
     * shrink; once the high-water mark is reached this is free.
     *
     * @param nobs    Observation capacity needed.
     * @param nparams Parameter capacity needed.
     */
    void ensure(size_t nobs, size_t nparams);
};

/**
 * The calling thread's workspace slot.
 *
 * Each thread that evaluates a likelihood — the caller's thread for
 * serial fits, each pool worker for parallel bootstrap/multistart —
 * lazily creates exactly one workspace and keeps it for the thread's
 * lifetime. No locking, no sharing, no contention.
 *
 * @return The thread-local workspace.
 */
FitWorkspace &threadFitWorkspace();

/** Aggregate statistics over every workspace slot ever created. */
struct WorkspacePoolStats
{
    uint64_t threads = 0; ///< Distinct thread slots created.
    uint64_t growths = 0; ///< Total buffer-growth events.
};

/** @return Process-wide workspace pool statistics. */
WorkspacePoolStats workspacePoolStats();

} // namespace ucx

#endif // UCX_OPT_WORKSPACE_HH
