/**
 * @file
 * Box-constraint transforms: map constrained model parameters
 * (positive weights, positive sigmas) to the unconstrained space the
 * optimizers work in.
 */

#ifndef UCX_OPT_TRANSFORM_HH
#define UCX_OPT_TRANSFORM_HH

#include <cstddef>
#include <vector>

namespace ucx
{

/** Kind of constraint on one parameter. */
enum class Constraint
{
    None,        ///< Unconstrained (identity transform).
    Positive,    ///< (0, inf) via exp/log.
    NonNegative, ///< [0, inf) via softplus.
};

/**
 * Elementwise transform between a constrained parameter vector and
 * its unconstrained optimizer-space image.
 */
class ParamTransform
{
  public:
    /**
     * Create a transform.
     *
     * @param constraints One constraint per parameter.
     */
    explicit ParamTransform(std::vector<Constraint> constraints);

    /** @return Number of parameters. */
    size_t size() const { return constraints_.size(); }

    /**
     * Map a constrained point into unconstrained space.
     *
     * @param theta Constrained parameters (must satisfy constraints).
     * @return The unconstrained image.
     */
    std::vector<double> toUnconstrained(
        const std::vector<double> &theta) const;

    /**
     * Map an unconstrained point back into the constrained space.
     *
     * @param u Unconstrained parameters.
     * @return The constrained parameters.
     */
    std::vector<double> toConstrained(const std::vector<double> &u) const;

  private:
    std::vector<Constraint> constraints_;
};

/** Numerically safe softplus log(1 + e^x). */
double softplus(double x);

/** Inverse of softplus; y must be > 0. */
double softplusInv(double y);

} // namespace ucx

#endif // UCX_OPT_TRANSFORM_HH
