#include "opt/nelder_mead.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/error.hh"

namespace ucx
{

namespace
{

/** One simplex vertex: point plus cached objective value. */
struct Vertex
{
    std::vector<double> x;
    double fx;
};

double
diameter(const std::vector<Vertex> &simplex)
{
    double d = 0.0;
    const auto &base = simplex[0].x;
    for (size_t v = 1; v < simplex.size(); ++v)
        for (size_t i = 0; i < base.size(); ++i)
            d = std::max(d, std::abs(simplex[v].x[i] - base[i]));
    return d;
}

} // namespace

OptResult
nelderMead(const Objective &f, const std::vector<double> &start,
           const NelderMeadConfig &config)
{
    require(!start.empty(), "nelderMead needs a non-empty start point");
    const size_t n = start.size();

    obs::ScopedSpan span("opt.nelder_mead");
    OptResult result;
    result.trace.algorithm = "nelder_mead";
    auto eval = [&](const std::vector<double> &x) {
        ++result.evaluations;
        double v = f(x);
        return std::isfinite(v) ? v
                                : std::numeric_limits<double>::max();
    };

    // Build the initial simplex around the start point.
    std::vector<Vertex> simplex;
    simplex.reserve(n + 1);
    simplex.push_back({start, eval(start)});
    for (size_t i = 0; i < n; ++i) {
        std::vector<double> x = start;
        double step = config.initialStep;
        if (x[i] != 0.0)
            step *= std::max(1.0, std::abs(x[i]));
        x[i] += step;
        simplex.push_back({x, eval(x)});
    }

    auto byValue = [](const Vertex &a, const Vertex &b) {
        return a.fx < b.fx;
    };

    const double nan = std::numeric_limits<double>::quiet_NaN();
    bool restarted = false;
    while (result.evaluations < config.maxEvaluations) {
        std::sort(simplex.begin(), simplex.end(), byValue);
        ++result.iterations;

        double spread = simplex.back().fx - simplex.front().fx;
        result.trace.record({result.iterations - 1,
                             simplex.front().fx, nan,
                             diameter(simplex), spread,
                             result.evaluations});
        if (spread < config.fTol && diameter(simplex) < config.xTol) {
            if (restarted) {
                result.converged = true;
                break;
            }
            // One restart with a fresh simplex around the best point
            // guards against false convergence on a degenerate
            // simplex.
            restarted = true;
            result.trace.restarts += 1;
            std::vector<double> best = simplex.front().x;
            simplex.clear();
            simplex.push_back({best, eval(best)});
            for (size_t i = 0; i < n; ++i) {
                std::vector<double> x = best;
                x[i] += config.initialStep * 0.1 *
                        std::max(1.0, std::abs(x[i]));
                simplex.push_back({x, eval(x)});
            }
            continue;
        }

        // Centroid of all vertices but the worst.
        std::vector<double> centroid(n, 0.0);
        for (size_t v = 0; v + 1 < simplex.size(); ++v)
            for (size_t i = 0; i < n; ++i)
                centroid[i] += simplex[v].x[i];
        for (double &c : centroid)
            c /= static_cast<double>(n);

        const Vertex &worst = simplex.back();
        auto blend = [&](double t) {
            std::vector<double> x(n);
            for (size_t i = 0; i < n; ++i)
                x[i] = centroid[i] + t * (worst.x[i] - centroid[i]);
            return x;
        };

        // Reflection.
        std::vector<double> xr = blend(-1.0);
        double fr = eval(xr);
        if (fr < simplex.front().fx) {
            // Expansion.
            std::vector<double> xe = blend(-2.0);
            double fe = eval(xe);
            if (fe < fr)
                simplex.back() = {std::move(xe), fe};
            else
                simplex.back() = {std::move(xr), fr};
            continue;
        }
        if (fr < simplex[simplex.size() - 2].fx) {
            simplex.back() = {std::move(xr), fr};
            continue;
        }
        // Contraction (outside if the reflected point improved on the
        // worst, inside otherwise).
        bool outside = fr < worst.fx;
        std::vector<double> xc = blend(outside ? -0.5 : 0.5);
        double fc = eval(xc);
        if (fc < std::min(fr, worst.fx)) {
            simplex.back() = {std::move(xc), fc};
            continue;
        }
        // Shrink toward the best vertex.
        for (size_t v = 1; v < simplex.size(); ++v) {
            for (size_t i = 0; i < n; ++i) {
                simplex[v].x[i] = simplex[0].x[i] +
                                  0.5 * (simplex[v].x[i] -
                                         simplex[0].x[i]);
            }
            simplex[v].fx = eval(simplex[v].x);
        }
    }

    std::sort(simplex.begin(), simplex.end(), byValue);
    result.x = simplex.front().x;
    result.fx = simplex.front().fx;
    result.trace.record({result.iterations, result.fx, nan,
                         diameter(simplex),
                         simplex.back().fx - simplex.front().fx,
                         result.evaluations});
    result.trace.converged = result.converged;
    if (obs::enabled()) {
        static obs::Counter &runs = obs::counter("opt.nm.runs");
        static obs::Counter &iters = obs::counter("opt.nm.iterations");
        static obs::Counter &evals =
            obs::counter("opt.nm.evaluations");
        runs.add(1);
        iters.add(result.iterations);
        evals.add(result.evaluations);
    }
    return result;
}

} // namespace ucx
