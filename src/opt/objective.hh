/**
 * @file
 * Common objective-function plumbing shared by the optimizers.
 */

#ifndef UCX_OPT_OBJECTIVE_HH
#define UCX_OPT_OBJECTIVE_HH

#include <functional>
#include <vector>

#include "obs/trace.hh"

namespace ucx
{

/** Scalar objective over a parameter vector (to be minimized). */
using Objective = std::function<double(const std::vector<double> &)>;

/**
 * In-place gradient evaluator paired with an Objective: writes
 * df/dx into the (pre-sized) output vector. Supplying one to BFGS
 * replaces the central-difference fallback — analytic gradients cut
 * the objective evaluations per iteration from p+3 to ~1 on the
 * NLME hot path (see nlme/kernels.hh).
 */
using Gradient = std::function<void(const std::vector<double> &x,
                                    std::vector<double> &grad)>;

/** Result of an optimization run. */
struct OptResult
{
    std::vector<double> x;     ///< Minimizer found.
    double fx = 0.0;           ///< Objective value at x.
    size_t evaluations = 0;    ///< Objective evaluations used.
    size_t iterations = 0;     ///< Iterations performed.
    bool converged = false;    ///< Tolerance met before budget ran out.
    obs::ConvergenceTrace trace; ///< Per-iteration history.
};

} // namespace ucx

#endif // UCX_OPT_OBJECTIVE_HH
