/**
 * @file
 * Multi-start minimization driver: Nelder-Mead from several jittered
 * starting points, best solution polished with BFGS.
 *
 * The two-metric likelihood surfaces of the µComplexity fits have
 * ridges where one weight collapses to zero; multi-start keeps the
 * fitter out of those local traps.
 */

#ifndef UCX_OPT_MULTISTART_HH
#define UCX_OPT_MULTISTART_HH

#include <cstdint>

#include "exec/context.hh"
#include "opt/objective.hh"

namespace ucx
{

/** Configuration for the multi-start driver. */
struct MultistartConfig
{
    size_t starts = 8;          ///< Number of starting points.
    double jitterSigma = 1.0;   ///< Log-space jitter around start.
    uint64_t seed = 12345;      ///< RNG seed for jitter.
    bool polishWithBfgs = true; ///< Run BFGS from the best NM point.
};

/**
 * Run multi-start minimization.
 *
 * Start s jitters with the RNG stream split(s) of the seed, so the
 * result is a pure function of (f, start, config) — byte-identical
 * whether the starts run serially or across ctx's pool. Ties between
 * starts break toward the lowest start index. When ctx is parallel,
 * f must be safe to evaluate concurrently.
 *
 * @param f      Objective to minimize (unconstrained space).
 * @param start  Nominal starting point; other starts are jittered
 *               copies.
 * @param config Driver parameters.
 * @param ctx    Execution context; starts run through its pool.
 * @return The best result across all starts.
 */
OptResult multistartMinimize(const Objective &f,
                             const std::vector<double> &start,
                             const MultistartConfig &config = {},
                             const ExecContext &ctx =
                                 ExecContext::serial());

/**
 * Multi-start minimization with an optional analytic gradient: the
 * Nelder-Mead exploration stage is unchanged (derivative-free), but
 * the BFGS polish differentiates through @p grad instead of central
 * finite differences when one is supplied.
 *
 * @param f      Objective to minimize (unconstrained space).
 * @param grad   In-place gradient of f, or nullptr for the
 *               finite-difference polish.
 * @param start  Nominal starting point.
 * @param config Driver parameters.
 * @param ctx    Execution context; starts run through its pool.
 * @return The best result across all starts.
 */
OptResult multistartMinimize(const Objective &f, const Gradient *grad,
                             const std::vector<double> &start,
                             const MultistartConfig &config = {},
                             const ExecContext &ctx =
                                 ExecContext::serial());

} // namespace ucx

#endif // UCX_OPT_MULTISTART_HH
