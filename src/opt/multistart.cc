#include "opt/multistart.hh"

#include <limits>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "opt/bfgs.hh"
#include "opt/nelder_mead.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{

OptResult
multistartMinimize(const Objective &f, const std::vector<double> &start,
                   const MultistartConfig &config,
                   const ExecContext &ctx)
{
    return multistartMinimize(f, nullptr, start, config, ctx);
}

OptResult
multistartMinimize(const Objective &f, const Gradient *grad,
                   const std::vector<double> &start,
                   const MultistartConfig &config,
                   const ExecContext &ctx)
{
    require(config.starts >= 1, "multistart needs at least one start");
    obs::ScopedSpan span("opt.multistart");
    Rng root(config.seed);

    // Each start jitters from its own split stream and lands in its
    // own result slot, so the reduction below sees the same
    // candidates in the same order at any thread count.
    std::vector<OptResult> runs =
        ctx.parallelMap(config.starts, [&](size_t s) {
            std::vector<double> x0 = start;
            if (s > 0) {
                Rng rng = root.split(s);
                for (double &v : x0)
                    v += rng.normal(0.0, config.jitterSigma);
            }
            return nelderMead(f, x0);
        });

    OptResult best;
    best.fx = std::numeric_limits<double>::max();
    for (OptResult &r : runs) {
        if (r.fx < best.fx) {
            best = std::move(r);
        }
    }
    // The trace follows the winning start; the other starts show up
    // only as restarts.
    best.trace.restarts += config.starts - 1;

    if (config.polishWithBfgs) {
        OptResult polished =
            grad ? bfgs(f, *grad, best.x) : bfgs(f, best.x);
        if (polished.fx < best.fx) {
            polished.evaluations += best.evaluations;
            obs::ConvergenceTrace combined = std::move(best.trace);
            combined.append(polished.trace);
            polished.trace = std::move(combined);
            best = std::move(polished);
        }
    }
    if (obs::enabled()) {
        static obs::Counter &runs =
            obs::counter("opt.multistart.runs");
        static obs::Counter &starts =
            obs::counter("opt.multistart.starts");
        runs.add(1);
        starts.add(config.starts);
    }
    return best;
}

} // namespace ucx
