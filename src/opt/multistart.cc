#include "opt/multistart.hh"

#include <limits>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "opt/bfgs.hh"
#include "opt/nelder_mead.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{

OptResult
multistartMinimize(const Objective &f, const std::vector<double> &start,
                   const MultistartConfig &config)
{
    require(config.starts >= 1, "multistart needs at least one start");
    obs::ScopedSpan span("opt.multistart");
    Rng rng(config.seed);

    OptResult best;
    best.fx = std::numeric_limits<double>::max();

    for (size_t s = 0; s < config.starts; ++s) {
        std::vector<double> x0 = start;
        if (s > 0) {
            for (double &v : x0)
                v += rng.normal(0.0, config.jitterSigma);
        }
        OptResult r = nelderMead(f, x0);
        if (r.fx < best.fx) {
            best = std::move(r);
        }
    }
    // The trace follows the winning start; the other starts show up
    // only as restarts.
    best.trace.restarts += config.starts - 1;

    if (config.polishWithBfgs) {
        OptResult polished = bfgs(f, best.x);
        if (polished.fx < best.fx) {
            polished.evaluations += best.evaluations;
            obs::ConvergenceTrace combined = std::move(best.trace);
            combined.append(polished.trace);
            polished.trace = std::move(combined);
            best = std::move(polished);
        }
    }
    if (obs::enabled()) {
        static obs::Counter &runs =
            obs::counter("opt.multistart.runs");
        static obs::Counter &starts =
            obs::counter("opt.multistart.starts");
        runs.add(1);
        starts.add(config.starts);
    }
    return best;
}

} // namespace ucx
