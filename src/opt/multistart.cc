#include "opt/multistart.hh"

#include <limits>

#include "opt/bfgs.hh"
#include "opt/nelder_mead.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace ucx
{

OptResult
multistartMinimize(const Objective &f, const std::vector<double> &start,
                   const MultistartConfig &config)
{
    require(config.starts >= 1, "multistart needs at least one start");
    Rng rng(config.seed);

    OptResult best;
    best.fx = std::numeric_limits<double>::max();

    for (size_t s = 0; s < config.starts; ++s) {
        std::vector<double> x0 = start;
        if (s > 0) {
            for (double &v : x0)
                v += rng.normal(0.0, config.jitterSigma);
        }
        OptResult r = nelderMead(f, x0);
        if (r.fx < best.fx) {
            best = std::move(r);
        }
    }

    if (config.polishWithBfgs) {
        OptResult polished = bfgs(f, best.x);
        if (polished.fx < best.fx) {
            polished.evaluations += best.evaluations;
            best = std::move(polished);
        }
    }
    return best;
}

} // namespace ucx
