#include "opt/workspace.hh"

#include <atomic>
#include <mutex>
#include <vector>

#include "obs/metrics.hh"

namespace ucx
{

namespace
{

std::atomic<uint64_t> g_threads{0};
std::atomic<uint64_t> g_growths{0};

// Every slot ever handed out, never freed. Anchoring the slots in a
// globally reachable structure (itself leaked) keeps LeakSanitizer
// quiet about the deliberate leak while preserving the property the
// leak buys: a slot stays valid past its thread's exit and past
// static teardown.
std::mutex g_registry_mu;
std::vector<FitWorkspace *> *g_registry = nullptr;

void
registerSlot(FitWorkspace *ws)
{
    std::lock_guard<std::mutex> lock(g_registry_mu);
    if (g_registry == nullptr)
        g_registry = new std::vector<FitWorkspace *>();
    g_registry->push_back(ws);
}

void
countGrowth()
{
    g_growths.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
        static obs::Counter &growths =
            obs::counter("opt.workspace.growths");
        growths.add(1);
    }
}

} // namespace

void
FitWorkspace::ensure(size_t nobs, size_t nparams)
{
    auto grow = [&](std::vector<double> &buf, size_t n) {
        if (buf.size() < n) {
            buf.resize(n, 0.0);
            ++growths;
            countGrowth();
        }
    };
    grow(lin, nobs);
    grow(resid, nobs);
    grow(coef, nobs);
    grow(theta, nparams);
    grow(grad, nparams);
}

FitWorkspace &
threadFitWorkspace()
{
    // One slot per thread, created on first touch and kept for the
    // thread's lifetime; pool workers of an ExecContext each own one.
    thread_local FitWorkspace *slot = [] {
        g_threads.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) {
            static obs::Counter &threads =
                obs::counter("opt.workspace.threads");
            threads.add(1);
        }
        // Leaked deliberately: workers can outlive static teardown
        // order, and one small slot per thread is bounded by the
        // pool size. The registry keeps the block reachable.
        FitWorkspace *ws = new FitWorkspace();
        registerSlot(ws);
        return ws;
    }();
    return *slot;
}

WorkspacePoolStats
workspacePoolStats()
{
    WorkspacePoolStats stats;
    stats.threads = g_threads.load(std::memory_order_relaxed);
    stats.growths = g_growths.load(std::memory_order_relaxed);
    return stats;
}

} // namespace ucx
