/**
 * @file
 * Nelder-Mead downhill simplex minimizer.
 *
 * The derivative-free workhorse for the NLME likelihoods, whose
 * profiled objectives are smooth but awkward to differentiate near
 * the sigma -> 0 boundary.
 */

#ifndef UCX_OPT_NELDER_MEAD_HH
#define UCX_OPT_NELDER_MEAD_HH

#include "opt/objective.hh"

namespace ucx
{

/** Configuration for the Nelder-Mead minimizer. */
struct NelderMeadConfig
{
    double initialStep = 0.5;   ///< Initial simplex edge length.
    double fTol = 1e-12;        ///< Absolute spread tolerance on f.
    double xTol = 1e-10;        ///< Simplex diameter tolerance.
    size_t maxEvaluations = 40000; ///< Evaluation budget.
};

/**
 * Minimize an objective with the Nelder-Mead simplex method
 * (standard reflection/expansion/contraction/shrink coefficients,
 * with the adaptive restart of O'Neill applied once on convergence).
 *
 * @param f      Objective to minimize.
 * @param start  Initial point; also sets the dimension.
 * @param config Algorithm parameters.
 * @return Best point found and bookkeeping.
 */
OptResult nelderMead(const Objective &f, const std::vector<double> &start,
                     const NelderMeadConfig &config = {});

} // namespace ucx

#endif // UCX_OPT_NELDER_MEAD_HH
