#include "opt/transform.hh"

#include <cmath>

#include "util/error.hh"

namespace ucx
{

double
softplus(double x)
{
    if (x > 30.0)
        return x;
    if (x < -30.0)
        return std::exp(x);
    return std::log1p(std::exp(x));
}

double
softplusInv(double y)
{
    require(y > 0.0, "softplusInv needs y > 0");
    if (y > 30.0)
        return y;
    return std::log(std::expm1(y));
}

ParamTransform::ParamTransform(std::vector<Constraint> constraints)
    : constraints_(std::move(constraints))
{}

std::vector<double>
ParamTransform::toUnconstrained(const std::vector<double> &theta) const
{
    require(theta.size() == constraints_.size(),
            "parameter size mismatch in toUnconstrained");
    std::vector<double> u(theta.size());
    for (size_t i = 0; i < theta.size(); ++i) {
        switch (constraints_[i]) {
          case Constraint::None:
            u[i] = theta[i];
            break;
          case Constraint::Positive:
            require(theta[i] > 0.0,
                    "positive-constrained parameter must be > 0");
            u[i] = std::log(theta[i]);
            break;
          case Constraint::NonNegative:
            u[i] = softplusInv(std::max(theta[i], 1e-12));
            break;
        }
    }
    return u;
}

std::vector<double>
ParamTransform::toConstrained(const std::vector<double> &u) const
{
    require(u.size() == constraints_.size(),
            "parameter size mismatch in toConstrained");
    std::vector<double> theta(u.size());
    for (size_t i = 0; i < u.size(); ++i) {
        switch (constraints_[i]) {
          case Constraint::None:
            theta[i] = u[i];
            break;
          case Constraint::Positive:
            theta[i] = std::exp(u[i]);
            break;
          case Constraint::NonNegative:
            theta[i] = softplus(u[i]);
            break;
        }
    }
    return theta;
}

} // namespace ucx
