#include "data/paper_data.hh"

#include "util/error.hh"

namespace ucx
{

const std::vector<ProcessorCharacteristics> &
paperTable1()
{
    static const std::vector<ProcessorCharacteristics> table = {
        {"Leon3", "Sparc V8", "In-order", 7, "1, 1", "1, 1", "None",
         "Blocking", true, "VHDL-89"},
        {"PUMA", "PPC subset", "Out-of-order", 9, "2, 2", "4, 2",
         "Gshare", "Non-block", false, "Verilog-95"},
        {"IVM", "Alpha subset", "Out-of-order", 7, "8, 4", "4, 8",
         "Tournament", "Not modeled", false, "Verilog-95"},
    };
    return table;
}

namespace
{

/** One raw row of paper Table 4. */
struct Row
{
    const char *project;
    const char *name;
    double effort;  ///< Table 4 column 2.
    double dee1;    ///< Authors' fitted DEE1 estimate (column 3).
    double stmts, loc, faninlc, nets, freq;
    double areal, powerd, powers, areas, cells, ffs;
};

// Verbatim from paper Table 4. Columns: Effort, DEE1, Stmts, LoC,
// FanInLC, Nets, Freq, AreaL, PowerD, PowerS, AreaS, Cells, FFs.
const Row rawRows[] = {
    {"Leon3", "Pipeline", 24, 12.8, 2070, 2814, 10502, 4299, 56, 50199,
     80, 409, 68411, 3586, 1062},
    {"Leon3", "Cache", 6, 7.3, 1172, 1092, 6325, 1980, 94, 37456, 57,
     332, 12556, 3, 210},
    {"Leon3", "MMU", 6, 4.4, 721, 1943, 3149, 1130, 84, 60136, 23, 287,
     112765, 246, 699},
    {"Leon3", "MemCtrl", 6, 5.4, 938, 1421, 2692, 853, 138, 7394, 5, 2,
     11938, 704, 275},
    {"PUMA", "Fetch", 3, 2.2, 586, 1490, 5192, 1292, 68, 147096, 226,
     3513, 555168, 1809, 1786},
    {"PUMA", "Decode", 4, 6.2, 1998, 3416, 4724, 5662, 65, 78076, 11,
     526, 47604, 5189, 464},
    {"PUMA", "ROB", 4, 2.2, 503, 913, 6965, 9840, 41, 82527, 733, 816,
     1022, 9709, 922},
    {"PUMA", "Execute", 12, 12.6, 3762, 9613, 18260, 10681, 49, 92473,
     44, 1370, 119746, 10867, 1725},
    {"PUMA", "Memory", 1, 3.3, 976, 2251, 5034, 1089, 60, 43418, 80,
     602, 115841, 4337, 1549},
    {"IVM", "Fetch", 10, 8, 1432, 4972, 15726, 4914, 71, 212663, 8, 2,
     135074, 1859, 1661},
    {"IVM", "Decode", 2, 1.7, 391, 963, 1044, 504, 104, 2022, 2, 6, 73,
     2, 0},
    {"IVM", "Rename", 4, 2.7, 566, 2519, 3307, 1134, 159, 70146, 1, 1,
     26740, 121, 510},
    {"IVM", "Issue", 4, 3.6, 624, 2704, 8063, 4603, 60, 90388, 2, 1,
     68667, 3414, 2729},
    {"IVM", "Execute", 3, 5.4, 961, 4083, 11045, 4476, 91, 619561, 5, 5,
     154655, 940, 0},
    {"IVM", "Memory", 10, 11.6, 2240, 5308, 19021, 23247, 54, 267753,
     73, 2, 625952, 12050, 2510},
    {"IVM", "Retire", 5, 5, 1021, 2278, 6635, 3357, 71, 36100, 2, 1,
     50375, 1923, 924},
    {"RAT", "Standard", 0.6, 0.7, 64, 250, 3889, 2905, 137, 34254, 4,
     275, 17603, 2596, 288},
    {"RAT", "Sliding", 1, 1, 78, 334, 5586, 4936, 119, 52210, 10, 459,
     60713, 4507, 612},
};

Component
toComponent(const Row &row)
{
    Component c;
    c.project = row.project;
    c.name = row.name;
    c.effort = row.effort;
    c.metrics[static_cast<size_t>(Metric::Stmts)] = row.stmts;
    c.metrics[static_cast<size_t>(Metric::LoC)] = row.loc;
    c.metrics[static_cast<size_t>(Metric::FanInLC)] = row.faninlc;
    c.metrics[static_cast<size_t>(Metric::Nets)] = row.nets;
    c.metrics[static_cast<size_t>(Metric::Freq)] = row.freq;
    c.metrics[static_cast<size_t>(Metric::AreaL)] = row.areal;
    c.metrics[static_cast<size_t>(Metric::PowerD)] = row.powerd;
    c.metrics[static_cast<size_t>(Metric::PowerS)] = row.powers;
    c.metrics[static_cast<size_t>(Metric::AreaS)] = row.areas;
    c.metrics[static_cast<size_t>(Metric::Cells)] = row.cells;
    c.metrics[static_cast<size_t>(Metric::FFs)] = row.ffs;
    return c;
}

/**
 * Instance-multiplicity / parameter-inflation factors used to
 * reconstruct the no-accounting measurements (paper Section 5.3).
 *
 * The paper explains the pattern but not the factors; these are
 * synthetic, chosen to reflect the described design structure:
 * IVM models a 4-issue Alpha superscalar "with many cases of
 * multiple instantiations of the same component, and of
 * parameterized components"; the narrower PUMA and the 4-way RAT
 * have fewer; the single-issue Leon3 "has practically no such types
 * of components".
 */
struct InflationRow
{
    const char *full_name;
    double factor; ///< Multiplier on additive synthesis metrics.
};

// Note that a *uniform* per-project factor would be absorbed by the
// productivity random effect; what destroys the fit (and what the
// paper describes) is the dispersion *within* a project: IVM's 8-wide
// fetch and many-ported wakeup/issue replicate enormously while its
// decode barely does.
const InflationRow inflation[] = {
    {"Leon3-Pipeline", 1.0}, {"Leon3-Cache", 1.12},
    {"Leon3-MMU", 1.0},      {"Leon3-MemCtrl", 1.04},
    {"PUMA-Fetch", 1.23},    {"PUMA-Decode", 2.4},
    {"PUMA-ROB", 1.45},      {"PUMA-Execute", 4.2},
    {"PUMA-Memory", 1.08},   {"IVM-Fetch", 13.0},
    {"IVM-Decode", 1.16},    {"IVM-Rename", 2.4},
    {"IVM-Issue", 11.0},     {"IVM-Execute", 18.0},
    {"IVM-Memory", 3.6},     {"IVM-Retire", 1.75},
    {"RAT-Standard", 1.2},   {"RAT-Sliding", 1.45},
};

double
inflationFactor(const std::string &full_name)
{
    for (const auto &row : inflation)
        if (full_name == row.full_name)
            return row.factor;
    panic("no inflation factor for " + full_name);
}

} // namespace

const Dataset &
paperDataset()
{
    static const Dataset dataset = [] {
        Dataset d;
        for (const Row &row : rawRows)
            d.add(toComponent(row));
        return d;
    }();
    return dataset;
}

const std::vector<ReportedEffort> &
paperTable2Efforts()
{
    static const std::vector<ReportedEffort> table = {
        {"Leon3", "Pipeline", 24}, {"Leon3", "Cache", 6},
        {"Leon3", "MMU", 6},       {"Leon3", "MemCtrl", 6},
        {"PUMA", "Fetch", 3},      {"PUMA", "Decode", 4},
        {"PUMA", "ROB", 4},        {"PUMA", "Execute", 12},
        {"PUMA", "Memory", 1},     {"IVM", "Fetch", 10},
        {"IVM", "Decode", 2},      {"IVM", "Rename", 4},
        {"IVM", "Issue", 4},       {"IVM", "Execute", 3},
        {"IVM", "Memory", 10},     {"IVM", "Retire", 5},
        {"RAT", "Standard", 0.3},  {"RAT", "Sliding", 0.5},
    };
    return table;
}

const std::vector<PaperSigma> &
paperSigmas()
{
    static const std::vector<PaperSigma> table = {
        {Metric::Stmts, 0.50, 0.60},  {Metric::LoC, 0.55, 0.69},
        {Metric::FanInLC, 0.55, 0.82}, {Metric::Nets, 0.67, 1.08},
        {Metric::Freq, 0.94, 1.12},   {Metric::AreaL, 1.23, 1.35},
        {Metric::PowerD, 1.34, 1.82}, {Metric::PowerS, 1.44, 3.21},
        {Metric::AreaS, 2.07, 2.07},  {Metric::Cells, 2.09, 2.55},
        {Metric::FFs, 2.14, 2.18},
    };
    return table;
}

const PaperDee1Reference &
paperDee1Reference()
{
    static const PaperDee1Reference ref;
    return ref;
}

const std::vector<double> &
paperDee1Estimates()
{
    static const std::vector<double> estimates = [] {
        std::vector<double> v;
        for (const Row &row : rawRows)
            v.push_back(row.dee1);
        return v;
    }();
    return estimates;
}

const Dataset &
paperDatasetNoAccounting()
{
    static const Dataset dataset = [] {
        Dataset d;
        for (const Row &row : rawRows) {
            Component c = toComponent(row);
            double f = inflationFactor(c.fullName());
            // Additive synthesis metrics scale with replication and
            // parameter inflation; source metrics are untouched; max
            // frequency degrades mildly as structures grow.
            for (Metric m : {Metric::FanInLC, Metric::Nets,
                             Metric::AreaL, Metric::PowerD,
                             Metric::PowerS, Metric::AreaS,
                             Metric::Cells, Metric::FFs}) {
                c.metrics[static_cast<size_t>(m)] *= f;
            }
            size_t freq = static_cast<size_t>(Metric::Freq);
            c.metrics[freq] /= 1.0 + 0.15 * (f - 1.0);
            d.add(c);
        }
        return d;
    }();
    return dataset;
}

const PaperNoAccountingReference &
paperNoAccountingReference()
{
    static const PaperNoAccountingReference ref;
    return ref;
}

} // namespace ucx
