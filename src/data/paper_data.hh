/**
 * @file
 * The published µComplexity evaluation data, embedded verbatim.
 *
 * This is the paper's own measurement of the Leon3, PUMA, IVM, and
 * RAT designs (Tables 1, 2, and 4), used to reproduce the regression
 * results exactly. The HDL/synthesis substrate in ucx_hdl/ucx_synth
 * exists to run the same pipeline on designs we do have the source
 * for; the original processors' HDL is not redistributable, but the
 * paper prints every measured value, so the statistics replay on the
 * real numbers.
 */

#ifndef UCX_DATA_PAPER_DATA_HH
#define UCX_DATA_PAPER_DATA_HH

#include <string>
#include <vector>

#include "core/dataset.hh"
#include "core/metric.hh"

namespace ucx
{

/** One row of paper Table 1 (processor characteristics). */
struct ProcessorCharacteristics
{
    std::string name;
    std::string isa;
    std::string execution;
    int pipelineStages;
    std::string fetchIssueWidth;
    std::string dispatchRetireWidth;
    std::string branchPredictor;
    std::string caches;
    bool multiprocessorSupport;
    std::string hdlLanguage;
};

/** @return The three processor rows of paper Table 1. */
const std::vector<ProcessorCharacteristics> &paperTable1();

/**
 * @return The calibration dataset of paper Table 4: 18 components
 *         from 4 projects with reported effort and all 11 metric
 *         values. The effort column follows Table 4 (RAT rows 0.6 /
 *         1.0; note the paper's own Table 2 lists 0.3 / 0.5 for the
 *         RAT — see paperTable2Efforts()).
 */
const Dataset &paperDataset();

/** One reported-effort row of paper Table 2. */
struct ReportedEffort
{
    std::string project;
    std::string component;
    double personMonths;
};

/** @return Paper Table 2 exactly as printed (RAT rows 0.3 / 0.5). */
const std::vector<ReportedEffort> &paperTable2Efforts();

/**
 * Reference accuracy values printed in the paper, used by tests and
 * EXPERIMENTS.md to compare our fits against the published fits.
 */
struct PaperSigma
{
    Metric metric;        ///< Single-metric estimator.
    double sigmaMixed;    ///< Table 4 penultimate row.
    double sigmaPooled;   ///< Table 4 last row (rho_i = 1).
};

/** @return The published sigma_eps for each single-metric estimator. */
const std::vector<PaperSigma> &paperSigmas();

/** Published DEE1 reference values (paper Section 5.1.1). */
struct PaperDee1Reference
{
    double sigmaMixed = 0.46;  ///< Table 4.
    double sigmaPooled = 0.53; ///< Table 4 last row.
    double aicDee1 = 34.8;     ///< Section 5.1.1.
    double bicDee1 = 38.4;     ///< Section 5.1.1.
    double aicStmts = 37.0;    ///< Section 5.1.1.
    double bicStmts = 39.7;    ///< Section 5.1.1.
};

/** @return The published DEE1 accuracy numbers. */
const PaperDee1Reference &paperDee1Reference();

/**
 * DEE1 estimate column of paper Table 4 (the per-component values
 * the authors' fitted DEE1 produced), in paperDataset() order.
 */
const std::vector<double> &paperDee1Estimates();

/**
 * The dataset measured *without* the accounting procedure (paper
 * Section 5.3, Figure 6).
 *
 * The paper never tabulates these raw metric values; it reports the
 * resulting sigma_eps (FanInLC 1.18, Nets 1.07, "Stmts and LoC
 * unchanged", "DEE1 changes little") and explains the mechanism:
 * multiple instantiation and generous parameterizations concentrated
 * in IVM (a 4-issue superscalar), some in PUMA, almost none in
 * Leon3/RAT. This function reconstructs the no-accounting
 * measurements by scaling each component's *synthesis* metrics with
 * that component's instance-multiplicity and parameter-inflation
 * factor (documented per component in paper_data.cc); source metrics
 * (Stmts, LoC) are unchanged because the accounting procedure never
 * affected them. The reconstruction preserves the mechanism and the
 * published outcome shape; the raw values are synthetic.
 */
const Dataset &paperDatasetNoAccounting();

/** Published no-accounting sigma_eps where the paper quotes them. */
struct PaperNoAccountingReference
{
    double sigmaFanInLC = 1.18; ///< Section 5.3.
    double sigmaNets = 1.07;    ///< Section 5.3.
};

/** @return The quoted no-accounting reference values. */
const PaperNoAccountingReference &paperNoAccountingReference();

} // namespace ucx

#endif // UCX_DATA_PAPER_DATA_HH
